# Empty compiler generated dependencies file for rdma_aggregation.
# This may be replaced when dependencies are built.
