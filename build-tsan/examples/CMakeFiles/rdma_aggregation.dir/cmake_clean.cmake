file(REMOVE_RECURSE
  "CMakeFiles/rdma_aggregation.dir/rdma_aggregation.cpp.o"
  "CMakeFiles/rdma_aggregation.dir/rdma_aggregation.cpp.o.d"
  "rdma_aggregation"
  "rdma_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
