# Empty compiler generated dependencies file for int_fat_tree.
# This may be replaced when dependencies are built.
