file(REMOVE_RECURSE
  "CMakeFiles/int_fat_tree.dir/int_fat_tree.cpp.o"
  "CMakeFiles/int_fat_tree.dir/int_fat_tree.cpp.o.d"
  "int_fat_tree"
  "int_fat_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/int_fat_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
