file(REMOVE_RECURSE
  "CMakeFiles/operator_queries.dir/operator_queries.cpp.o"
  "CMakeFiles/operator_queries.dir/operator_queries.cpp.o.d"
  "operator_queries"
  "operator_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
