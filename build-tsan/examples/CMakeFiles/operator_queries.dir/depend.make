# Empty dependencies file for operator_queries.
# This may be replaced when dependencies are built.
