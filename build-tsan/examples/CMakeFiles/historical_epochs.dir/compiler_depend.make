# Empty compiler generated dependencies file for historical_epochs.
# This may be replaced when dependencies are built.
