file(REMOVE_RECURSE
  "CMakeFiles/historical_epochs.dir/historical_epochs.cpp.o"
  "CMakeFiles/historical_epochs.dir/historical_epochs.cpp.o.d"
  "historical_epochs"
  "historical_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/historical_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
