# Empty dependencies file for flow_anomaly_monitor.
# This may be replaced when dependencies are built.
