file(REMOVE_RECURSE
  "CMakeFiles/flow_anomaly_monitor.dir/flow_anomaly_monitor.cpp.o"
  "CMakeFiles/flow_anomaly_monitor.dir/flow_anomaly_monitor.cpp.o.d"
  "flow_anomaly_monitor"
  "flow_anomaly_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_anomaly_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
