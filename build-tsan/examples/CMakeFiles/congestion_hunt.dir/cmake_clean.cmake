file(REMOVE_RECURSE
  "CMakeFiles/congestion_hunt.dir/congestion_hunt.cpp.o"
  "CMakeFiles/congestion_hunt.dir/congestion_hunt.cpp.o.d"
  "congestion_hunt"
  "congestion_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
