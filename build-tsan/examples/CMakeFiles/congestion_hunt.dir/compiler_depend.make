# Empty compiler generated dependencies file for congestion_hunt.
# This may be replaced when dependencies are built.
