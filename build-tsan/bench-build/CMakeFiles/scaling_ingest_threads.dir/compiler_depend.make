# Empty compiler generated dependencies file for scaling_ingest_threads.
# This may be replaced when dependencies are built.
