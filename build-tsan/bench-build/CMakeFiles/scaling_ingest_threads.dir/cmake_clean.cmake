file(REMOVE_RECURSE
  "../bench/scaling_ingest_threads"
  "../bench/scaling_ingest_threads.pdb"
  "CMakeFiles/scaling_ingest_threads.dir/scaling_ingest_threads.cpp.o"
  "CMakeFiles/scaling_ingest_threads.dir/scaling_ingest_threads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_ingest_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
