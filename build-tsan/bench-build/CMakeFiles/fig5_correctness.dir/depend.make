# Empty dependencies file for fig5_correctness.
# This may be replaced when dependencies are built.
