file(REMOVE_RECURSE
  "../bench/fig5_correctness"
  "../bench/fig5_correctness.pdb"
  "CMakeFiles/fig5_correctness.dir/fig5_correctness.cpp.o"
  "CMakeFiles/fig5_correctness.dir/fig5_correctness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
