file(REMOVE_RECURSE
  "../bench/table1_backends"
  "../bench/table1_backends.pdb"
  "CMakeFiles/table1_backends.dir/table1_backends.cpp.o"
  "CMakeFiles/table1_backends.dir/table1_backends.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
