# Empty dependencies file for table1_backends.
# This may be replaced when dependencies are built.
