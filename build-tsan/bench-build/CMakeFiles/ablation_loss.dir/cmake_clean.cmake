file(REMOVE_RECURSE
  "../bench/ablation_loss"
  "../bench/ablation_loss.pdb"
  "CMakeFiles/ablation_loss.dir/ablation_loss.cpp.o"
  "CMakeFiles/ablation_loss.dir/ablation_loss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
