file(REMOVE_RECURSE
  "../bench/ablation_cas"
  "../bench/ablation_cas.pdb"
  "CMakeFiles/ablation_cas.dir/ablation_cas.cpp.o"
  "CMakeFiles/ablation_cas.dir/ablation_cas.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
