# Empty compiler generated dependencies file for ablation_cas.
# This may be replaced when dependencies are built.
