file(REMOVE_RECURSE
  "../bench/ablation_policies"
  "../bench/ablation_policies.pdb"
  "CMakeFiles/ablation_policies.dir/ablation_policies.cpp.o"
  "CMakeFiles/ablation_policies.dir/ablation_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
