file(REMOVE_RECURSE
  "../bench/ablation_event_detect"
  "../bench/ablation_event_detect.pdb"
  "CMakeFiles/ablation_event_detect.dir/ablation_event_detect.cpp.o"
  "CMakeFiles/ablation_event_detect.dir/ablation_event_detect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_event_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
