# Empty compiler generated dependencies file for ablation_event_detect.
# This may be replaced when dependencies are built.
