file(REMOVE_RECURSE
  "../bench/ablation_spread"
  "../bench/ablation_spread.pdb"
  "CMakeFiles/ablation_spread.dir/ablation_spread.cpp.o"
  "CMakeFiles/ablation_spread.dir/ablation_spread.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
