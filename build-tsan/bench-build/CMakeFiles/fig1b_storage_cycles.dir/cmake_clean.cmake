file(REMOVE_RECURSE
  "../bench/fig1b_storage_cycles"
  "../bench/fig1b_storage_cycles.pdb"
  "CMakeFiles/fig1b_storage_cycles.dir/fig1b_storage_cycles.cpp.o"
  "CMakeFiles/fig1b_storage_cycles.dir/fig1b_storage_cycles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_storage_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
