# Empty compiler generated dependencies file for fig1b_storage_cycles.
# This may be replaced when dependencies are built.
