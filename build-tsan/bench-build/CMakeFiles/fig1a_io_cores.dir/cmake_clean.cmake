file(REMOVE_RECURSE
  "../bench/fig1a_io_cores"
  "../bench/fig1a_io_cores.pdb"
  "CMakeFiles/fig1a_io_cores.dir/fig1a_io_cores.cpp.o"
  "CMakeFiles/fig1a_io_cores.dir/fig1a_io_cores.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_io_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
