# Empty compiler generated dependencies file for fig1a_io_cores.
# This may be replaced when dependencies are built.
