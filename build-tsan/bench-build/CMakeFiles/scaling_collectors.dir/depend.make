# Empty dependencies file for scaling_collectors.
# This may be replaced when dependencies are built.
