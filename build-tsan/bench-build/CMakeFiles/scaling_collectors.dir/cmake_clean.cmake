file(REMOVE_RECURSE
  "../bench/scaling_collectors"
  "../bench/scaling_collectors.pdb"
  "CMakeFiles/scaling_collectors.dir/scaling_collectors.cpp.o"
  "CMakeFiles/scaling_collectors.dir/scaling_collectors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_collectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
