file(REMOVE_RECURSE
  "../bench/fig4_aging"
  "../bench/fig4_aging.pdb"
  "CMakeFiles/fig4_aging.dir/fig4_aging.cpp.o"
  "CMakeFiles/fig4_aging.dir/fig4_aging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
