# Empty compiler generated dependencies file for fig4_aging.
# This may be replaced when dependencies are built.
