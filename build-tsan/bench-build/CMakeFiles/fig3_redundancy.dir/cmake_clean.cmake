file(REMOVE_RECURSE
  "../bench/fig3_redundancy"
  "../bench/fig3_redundancy.pdb"
  "CMakeFiles/fig3_redundancy.dir/fig3_redundancy.cpp.o"
  "CMakeFiles/fig3_redundancy.dir/fig3_redundancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
