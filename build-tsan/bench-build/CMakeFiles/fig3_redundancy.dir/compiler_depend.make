# Empty compiler generated dependencies file for fig3_redundancy.
# This may be replaced when dependencies are built.
