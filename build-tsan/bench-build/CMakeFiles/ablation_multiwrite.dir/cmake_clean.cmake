file(REMOVE_RECURSE
  "../bench/ablation_multiwrite"
  "../bench/ablation_multiwrite.pdb"
  "CMakeFiles/ablation_multiwrite.dir/ablation_multiwrite.cpp.o"
  "CMakeFiles/ablation_multiwrite.dir/ablation_multiwrite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
