# Empty dependencies file for ablation_multiwrite.
# This may be replaced when dependencies are built.
