# Empty dependencies file for dart_baseline.
# This may be replaced when dependencies are built.
