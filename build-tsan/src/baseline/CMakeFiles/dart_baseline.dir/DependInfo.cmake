
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/confluo_like.cpp" "src/baseline/CMakeFiles/dart_baseline.dir/confluo_like.cpp.o" "gcc" "src/baseline/CMakeFiles/dart_baseline.dir/confluo_like.cpp.o.d"
  "/root/repo/src/baseline/cost_model.cpp" "src/baseline/CMakeFiles/dart_baseline.dir/cost_model.cpp.o" "gcc" "src/baseline/CMakeFiles/dart_baseline.dir/cost_model.cpp.o.d"
  "/root/repo/src/baseline/dpdk_stack.cpp" "src/baseline/CMakeFiles/dart_baseline.dir/dpdk_stack.cpp.o" "gcc" "src/baseline/CMakeFiles/dart_baseline.dir/dpdk_stack.cpp.o.d"
  "/root/repo/src/baseline/kafka_like.cpp" "src/baseline/CMakeFiles/dart_baseline.dir/kafka_like.cpp.o" "gcc" "src/baseline/CMakeFiles/dart_baseline.dir/kafka_like.cpp.o.d"
  "/root/repo/src/baseline/report_gen.cpp" "src/baseline/CMakeFiles/dart_baseline.dir/report_gen.cpp.o" "gcc" "src/baseline/CMakeFiles/dart_baseline.dir/report_gen.cpp.o.d"
  "/root/repo/src/baseline/socket_stack.cpp" "src/baseline/CMakeFiles/dart_baseline.dir/socket_stack.cpp.o" "gcc" "src/baseline/CMakeFiles/dart_baseline.dir/socket_stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/dart_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
