file(REMOVE_RECURSE
  "CMakeFiles/dart_baseline.dir/confluo_like.cpp.o"
  "CMakeFiles/dart_baseline.dir/confluo_like.cpp.o.d"
  "CMakeFiles/dart_baseline.dir/cost_model.cpp.o"
  "CMakeFiles/dart_baseline.dir/cost_model.cpp.o.d"
  "CMakeFiles/dart_baseline.dir/dpdk_stack.cpp.o"
  "CMakeFiles/dart_baseline.dir/dpdk_stack.cpp.o.d"
  "CMakeFiles/dart_baseline.dir/kafka_like.cpp.o"
  "CMakeFiles/dart_baseline.dir/kafka_like.cpp.o.d"
  "CMakeFiles/dart_baseline.dir/report_gen.cpp.o"
  "CMakeFiles/dart_baseline.dir/report_gen.cpp.o.d"
  "CMakeFiles/dart_baseline.dir/socket_stack.cpp.o"
  "CMakeFiles/dart_baseline.dir/socket_stack.cpp.o.d"
  "libdart_baseline.a"
  "libdart_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
