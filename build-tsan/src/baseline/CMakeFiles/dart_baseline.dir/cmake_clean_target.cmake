file(REMOVE_RECURSE
  "libdart_baseline.a"
)
