# Empty dependencies file for dart_core.
# This may be replaced when dependencies are built.
