file(REMOVE_RECURSE
  "libdart_core.a"
)
