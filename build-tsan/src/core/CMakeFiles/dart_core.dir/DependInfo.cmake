
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/dart_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/dart_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/atomics_store.cpp" "src/core/CMakeFiles/dart_core.dir/atomics_store.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/atomics_store.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/dart_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/coding.cpp" "src/core/CMakeFiles/dart_core.dir/coding.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/coding.cpp.o.d"
  "/root/repo/src/core/collector.cpp" "src/core/CMakeFiles/dart_core.dir/collector.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/collector.cpp.o.d"
  "/root/repo/src/core/config_io.cpp" "src/core/CMakeFiles/dart_core.dir/config_io.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/config_io.cpp.o.d"
  "/root/repo/src/core/control.cpp" "src/core/CMakeFiles/dart_core.dir/control.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/control.cpp.o.d"
  "/root/repo/src/core/epoch.cpp" "src/core/CMakeFiles/dart_core.dir/epoch.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/epoch.cpp.o.d"
  "/root/repo/src/core/epoch_rotation.cpp" "src/core/CMakeFiles/dart_core.dir/epoch_rotation.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/epoch_rotation.cpp.o.d"
  "/root/repo/src/core/ingest_pipeline.cpp" "src/core/CMakeFiles/dart_core.dir/ingest_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/ingest_pipeline.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/core/CMakeFiles/dart_core.dir/oracle.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/oracle.cpp.o.d"
  "/root/repo/src/core/query.cpp" "src/core/CMakeFiles/dart_core.dir/query.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/query.cpp.o.d"
  "/root/repo/src/core/query_protocol.cpp" "src/core/CMakeFiles/dart_core.dir/query_protocol.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/query_protocol.cpp.o.d"
  "/root/repo/src/core/query_service.cpp" "src/core/CMakeFiles/dart_core.dir/query_service.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/query_service.cpp.o.d"
  "/root/repo/src/core/report_crafter.cpp" "src/core/CMakeFiles/dart_core.dir/report_crafter.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/report_crafter.cpp.o.d"
  "/root/repo/src/core/reporter.cpp" "src/core/CMakeFiles/dart_core.dir/reporter.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/reporter.cpp.o.d"
  "/root/repo/src/core/spread.cpp" "src/core/CMakeFiles/dart_core.dir/spread.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/spread.cpp.o.d"
  "/root/repo/src/core/store.cpp" "src/core/CMakeFiles/dart_core.dir/store.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/dart_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rdma/CMakeFiles/dart_rdma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
