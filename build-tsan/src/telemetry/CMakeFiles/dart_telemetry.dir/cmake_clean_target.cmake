file(REMOVE_RECURSE
  "libdart_telemetry.a"
)
