file(REMOVE_RECURSE
  "CMakeFiles/dart_telemetry.dir/backends.cpp.o"
  "CMakeFiles/dart_telemetry.dir/backends.cpp.o.d"
  "CMakeFiles/dart_telemetry.dir/event_detect.cpp.o"
  "CMakeFiles/dart_telemetry.dir/event_detect.cpp.o.d"
  "CMakeFiles/dart_telemetry.dir/flow.cpp.o"
  "CMakeFiles/dart_telemetry.dir/flow.cpp.o.d"
  "CMakeFiles/dart_telemetry.dir/heavy_hitters.cpp.o"
  "CMakeFiles/dart_telemetry.dir/heavy_hitters.cpp.o.d"
  "CMakeFiles/dart_telemetry.dir/int_fabric.cpp.o"
  "CMakeFiles/dart_telemetry.dir/int_fabric.cpp.o.d"
  "CMakeFiles/dart_telemetry.dir/int_path.cpp.o"
  "CMakeFiles/dart_telemetry.dir/int_path.cpp.o.d"
  "CMakeFiles/dart_telemetry.dir/int_wire.cpp.o"
  "CMakeFiles/dart_telemetry.dir/int_wire.cpp.o.d"
  "CMakeFiles/dart_telemetry.dir/wire_fabric.cpp.o"
  "CMakeFiles/dart_telemetry.dir/wire_fabric.cpp.o.d"
  "CMakeFiles/dart_telemetry.dir/workload.cpp.o"
  "CMakeFiles/dart_telemetry.dir/workload.cpp.o.d"
  "libdart_telemetry.a"
  "libdart_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
