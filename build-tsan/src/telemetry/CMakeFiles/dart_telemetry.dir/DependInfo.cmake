
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/backends.cpp" "src/telemetry/CMakeFiles/dart_telemetry.dir/backends.cpp.o" "gcc" "src/telemetry/CMakeFiles/dart_telemetry.dir/backends.cpp.o.d"
  "/root/repo/src/telemetry/event_detect.cpp" "src/telemetry/CMakeFiles/dart_telemetry.dir/event_detect.cpp.o" "gcc" "src/telemetry/CMakeFiles/dart_telemetry.dir/event_detect.cpp.o.d"
  "/root/repo/src/telemetry/flow.cpp" "src/telemetry/CMakeFiles/dart_telemetry.dir/flow.cpp.o" "gcc" "src/telemetry/CMakeFiles/dart_telemetry.dir/flow.cpp.o.d"
  "/root/repo/src/telemetry/heavy_hitters.cpp" "src/telemetry/CMakeFiles/dart_telemetry.dir/heavy_hitters.cpp.o" "gcc" "src/telemetry/CMakeFiles/dart_telemetry.dir/heavy_hitters.cpp.o.d"
  "/root/repo/src/telemetry/int_fabric.cpp" "src/telemetry/CMakeFiles/dart_telemetry.dir/int_fabric.cpp.o" "gcc" "src/telemetry/CMakeFiles/dart_telemetry.dir/int_fabric.cpp.o.d"
  "/root/repo/src/telemetry/int_path.cpp" "src/telemetry/CMakeFiles/dart_telemetry.dir/int_path.cpp.o" "gcc" "src/telemetry/CMakeFiles/dart_telemetry.dir/int_path.cpp.o.d"
  "/root/repo/src/telemetry/int_wire.cpp" "src/telemetry/CMakeFiles/dart_telemetry.dir/int_wire.cpp.o" "gcc" "src/telemetry/CMakeFiles/dart_telemetry.dir/int_wire.cpp.o.d"
  "/root/repo/src/telemetry/wire_fabric.cpp" "src/telemetry/CMakeFiles/dart_telemetry.dir/wire_fabric.cpp.o" "gcc" "src/telemetry/CMakeFiles/dart_telemetry.dir/wire_fabric.cpp.o.d"
  "/root/repo/src/telemetry/workload.cpp" "src/telemetry/CMakeFiles/dart_telemetry.dir/workload.cpp.o" "gcc" "src/telemetry/CMakeFiles/dart_telemetry.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/dart_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/dart_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/switchsim/CMakeFiles/dart_switch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rdma/CMakeFiles/dart_rdma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
