# Empty compiler generated dependencies file for dart_telemetry.
# This may be replaced when dependencies are built.
