
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/memory_region.cpp" "src/rdma/CMakeFiles/dart_rdma.dir/memory_region.cpp.o" "gcc" "src/rdma/CMakeFiles/dart_rdma.dir/memory_region.cpp.o.d"
  "/root/repo/src/rdma/multiwrite.cpp" "src/rdma/CMakeFiles/dart_rdma.dir/multiwrite.cpp.o" "gcc" "src/rdma/CMakeFiles/dart_rdma.dir/multiwrite.cpp.o.d"
  "/root/repo/src/rdma/qp.cpp" "src/rdma/CMakeFiles/dart_rdma.dir/qp.cpp.o" "gcc" "src/rdma/CMakeFiles/dart_rdma.dir/qp.cpp.o.d"
  "/root/repo/src/rdma/rnic.cpp" "src/rdma/CMakeFiles/dart_rdma.dir/rnic.cpp.o" "gcc" "src/rdma/CMakeFiles/dart_rdma.dir/rnic.cpp.o.d"
  "/root/repo/src/rdma/roce.cpp" "src/rdma/CMakeFiles/dart_rdma.dir/roce.cpp.o" "gcc" "src/rdma/CMakeFiles/dart_rdma.dir/roce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/dart_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
