file(REMOVE_RECURSE
  "CMakeFiles/dart_rdma.dir/memory_region.cpp.o"
  "CMakeFiles/dart_rdma.dir/memory_region.cpp.o.d"
  "CMakeFiles/dart_rdma.dir/multiwrite.cpp.o"
  "CMakeFiles/dart_rdma.dir/multiwrite.cpp.o.d"
  "CMakeFiles/dart_rdma.dir/qp.cpp.o"
  "CMakeFiles/dart_rdma.dir/qp.cpp.o.d"
  "CMakeFiles/dart_rdma.dir/rnic.cpp.o"
  "CMakeFiles/dart_rdma.dir/rnic.cpp.o.d"
  "CMakeFiles/dart_rdma.dir/roce.cpp.o"
  "CMakeFiles/dart_rdma.dir/roce.cpp.o.d"
  "libdart_rdma.a"
  "libdart_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
