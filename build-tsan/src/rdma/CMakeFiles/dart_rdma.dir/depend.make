# Empty dependencies file for dart_rdma.
# This may be replaced when dependencies are built.
