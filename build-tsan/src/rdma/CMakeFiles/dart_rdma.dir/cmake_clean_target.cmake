file(REMOVE_RECURSE
  "libdart_rdma.a"
)
