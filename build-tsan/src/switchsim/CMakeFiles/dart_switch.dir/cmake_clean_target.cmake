file(REMOVE_RECURSE
  "libdart_switch.a"
)
