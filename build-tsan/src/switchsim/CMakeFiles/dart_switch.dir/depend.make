# Empty dependencies file for dart_switch.
# This may be replaced when dependencies are built.
