file(REMOVE_RECURSE
  "CMakeFiles/dart_switch.dir/dart_switch.cpp.o"
  "CMakeFiles/dart_switch.dir/dart_switch.cpp.o.d"
  "CMakeFiles/dart_switch.dir/externs.cpp.o"
  "CMakeFiles/dart_switch.dir/externs.cpp.o.d"
  "CMakeFiles/dart_switch.dir/topology.cpp.o"
  "CMakeFiles/dart_switch.dir/topology.cpp.o.d"
  "libdart_switch.a"
  "libdart_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
