
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switchsim/dart_switch.cpp" "src/switchsim/CMakeFiles/dart_switch.dir/dart_switch.cpp.o" "gcc" "src/switchsim/CMakeFiles/dart_switch.dir/dart_switch.cpp.o.d"
  "/root/repo/src/switchsim/externs.cpp" "src/switchsim/CMakeFiles/dart_switch.dir/externs.cpp.o" "gcc" "src/switchsim/CMakeFiles/dart_switch.dir/externs.cpp.o.d"
  "/root/repo/src/switchsim/topology.cpp" "src/switchsim/CMakeFiles/dart_switch.dir/topology.cpp.o" "gcc" "src/switchsim/CMakeFiles/dart_switch.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/dart_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rdma/CMakeFiles/dart_rdma.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/dart_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
