file(REMOVE_RECURSE
  "libdart_common.a"
)
