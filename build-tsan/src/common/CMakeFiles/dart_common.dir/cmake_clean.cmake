file(REMOVE_RECURSE
  "CMakeFiles/dart_common.dir/bytes.cpp.o"
  "CMakeFiles/dart_common.dir/bytes.cpp.o.d"
  "CMakeFiles/dart_common.dir/cycles.cpp.o"
  "CMakeFiles/dart_common.dir/cycles.cpp.o.d"
  "CMakeFiles/dart_common.dir/hash.cpp.o"
  "CMakeFiles/dart_common.dir/hash.cpp.o.d"
  "CMakeFiles/dart_common.dir/kvconfig.cpp.o"
  "CMakeFiles/dart_common.dir/kvconfig.cpp.o.d"
  "CMakeFiles/dart_common.dir/logging.cpp.o"
  "CMakeFiles/dart_common.dir/logging.cpp.o.d"
  "CMakeFiles/dart_common.dir/random.cpp.o"
  "CMakeFiles/dart_common.dir/random.cpp.o.d"
  "CMakeFiles/dart_common.dir/stats.cpp.o"
  "CMakeFiles/dart_common.dir/stats.cpp.o.d"
  "CMakeFiles/dart_common.dir/table.cpp.o"
  "CMakeFiles/dart_common.dir/table.cpp.o.d"
  "libdart_common.a"
  "libdart_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
