# Empty dependencies file for dart_common.
# This may be replaced when dependencies are built.
