# Empty dependencies file for dart_net.
# This may be replaced when dependencies are built.
