file(REMOVE_RECURSE
  "CMakeFiles/dart_net.dir/checksum.cpp.o"
  "CMakeFiles/dart_net.dir/checksum.cpp.o.d"
  "CMakeFiles/dart_net.dir/headers.cpp.o"
  "CMakeFiles/dart_net.dir/headers.cpp.o.d"
  "CMakeFiles/dart_net.dir/netsim.cpp.o"
  "CMakeFiles/dart_net.dir/netsim.cpp.o.d"
  "CMakeFiles/dart_net.dir/packet.cpp.o"
  "CMakeFiles/dart_net.dir/packet.cpp.o.d"
  "libdart_net.a"
  "libdart_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
