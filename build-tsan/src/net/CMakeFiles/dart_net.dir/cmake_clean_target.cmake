file(REMOVE_RECURSE
  "libdart_net.a"
)
