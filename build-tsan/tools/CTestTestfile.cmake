# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_calc_success "/root/repo/build-tsan/tools/dart_calc" "success" "--alpha=0.745" "--n=2")
set_tests_properties(tool_calc_success PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_calc_optimal "/root/repo/build-tsan/tools/dart_calc" "optimal" "--alpha=0.25")
set_tests_properties(tool_calc_optimal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_calc_provision "/root/repo/build-tsan/tools/dart_calc" "provision" "--flows=1e8" "--target=0.993")
set_tests_properties(tool_calc_provision PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_calc_sweep "/root/repo/build-tsan/tools/dart_calc" "sweep" "--n=2")
set_tests_properties(tool_calc_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_calc_usage_error "/root/repo/build-tsan/tools/dart_calc" "bogus")
set_tests_properties(tool_calc_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_archive_usage "/root/repo/build-tsan/tools/dart_archive" "info" "/nonexistent.dart")
set_tests_properties(tool_archive_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
