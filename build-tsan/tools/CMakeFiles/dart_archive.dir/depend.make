# Empty dependencies file for dart_archive.
# This may be replaced when dependencies are built.
