file(REMOVE_RECURSE
  "CMakeFiles/dart_archive.dir/dart_archive.cpp.o"
  "CMakeFiles/dart_archive.dir/dart_archive.cpp.o.d"
  "dart_archive"
  "dart_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
