# Empty dependencies file for dart_calc.
# This may be replaced when dependencies are built.
