file(REMOVE_RECURSE
  "CMakeFiles/dart_calc.dir/dart_calc.cpp.o"
  "CMakeFiles/dart_calc.dir/dart_calc.cpp.o.d"
  "dart_calc"
  "dart_calc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_calc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
