# Empty compiler generated dependencies file for test_query_protocol.
# This may be replaced when dependencies are built.
