file(REMOVE_RECURSE
  "CMakeFiles/test_query_protocol.dir/core/test_query_protocol.cpp.o"
  "CMakeFiles/test_query_protocol.dir/core/test_query_protocol.cpp.o.d"
  "test_query_protocol"
  "test_query_protocol.pdb"
  "test_query_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
