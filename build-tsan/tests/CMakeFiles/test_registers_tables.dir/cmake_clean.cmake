file(REMOVE_RECURSE
  "CMakeFiles/test_registers_tables.dir/switchsim/test_registers_tables.cpp.o"
  "CMakeFiles/test_registers_tables.dir/switchsim/test_registers_tables.cpp.o.d"
  "test_registers_tables"
  "test_registers_tables.pdb"
  "test_registers_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_registers_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
