# Empty dependencies file for test_registers_tables.
# This may be replaced when dependencies are built.
