# Empty compiler generated dependencies file for test_multiwrite.
# This may be replaced when dependencies are built.
