file(REMOVE_RECURSE
  "CMakeFiles/test_multiwrite.dir/rdma/test_multiwrite.cpp.o"
  "CMakeFiles/test_multiwrite.dir/rdma/test_multiwrite.cpp.o.d"
  "test_multiwrite"
  "test_multiwrite.pdb"
  "test_multiwrite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
