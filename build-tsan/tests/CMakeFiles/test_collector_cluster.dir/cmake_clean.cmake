file(REMOVE_RECURSE
  "CMakeFiles/test_collector_cluster.dir/core/test_collector_cluster.cpp.o"
  "CMakeFiles/test_collector_cluster.dir/core/test_collector_cluster.cpp.o.d"
  "test_collector_cluster"
  "test_collector_cluster.pdb"
  "test_collector_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collector_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
