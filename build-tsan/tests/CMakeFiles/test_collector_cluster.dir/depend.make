# Empty dependencies file for test_collector_cluster.
# This may be replaced when dependencies are built.
