# Empty compiler generated dependencies file for test_roce.
# This may be replaced when dependencies are built.
