file(REMOVE_RECURSE
  "CMakeFiles/test_roce.dir/rdma/test_roce.cpp.o"
  "CMakeFiles/test_roce.dir/rdma/test_roce.cpp.o.d"
  "test_roce"
  "test_roce.pdb"
  "test_roce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
