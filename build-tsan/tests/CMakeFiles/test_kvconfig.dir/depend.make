# Empty dependencies file for test_kvconfig.
# This may be replaced when dependencies are built.
