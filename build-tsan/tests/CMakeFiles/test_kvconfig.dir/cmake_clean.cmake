file(REMOVE_RECURSE
  "CMakeFiles/test_kvconfig.dir/common/test_kvconfig.cpp.o"
  "CMakeFiles/test_kvconfig.dir/common/test_kvconfig.cpp.o.d"
  "test_kvconfig"
  "test_kvconfig.pdb"
  "test_kvconfig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
