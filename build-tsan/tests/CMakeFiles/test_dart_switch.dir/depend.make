# Empty dependencies file for test_dart_switch.
# This may be replaced when dependencies are built.
