file(REMOVE_RECURSE
  "CMakeFiles/test_dart_switch.dir/switchsim/test_dart_switch.cpp.o"
  "CMakeFiles/test_dart_switch.dir/switchsim/test_dart_switch.cpp.o.d"
  "test_dart_switch"
  "test_dart_switch.pdb"
  "test_dart_switch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dart_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
