file(REMOVE_RECURSE
  "CMakeFiles/test_report_crafter.dir/core/test_report_crafter.cpp.o"
  "CMakeFiles/test_report_crafter.dir/core/test_report_crafter.cpp.o.d"
  "test_report_crafter"
  "test_report_crafter.pdb"
  "test_report_crafter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_crafter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
