# Empty dependencies file for test_report_crafter.
# This may be replaced when dependencies are built.
