# Empty compiler generated dependencies file for test_link_shaping.
# This may be replaced when dependencies are built.
