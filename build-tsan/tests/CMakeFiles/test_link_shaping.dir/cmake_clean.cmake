file(REMOVE_RECURSE
  "CMakeFiles/test_link_shaping.dir/net/test_link_shaping.cpp.o"
  "CMakeFiles/test_link_shaping.dir/net/test_link_shaping.cpp.o.d"
  "test_link_shaping"
  "test_link_shaping.pdb"
  "test_link_shaping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
