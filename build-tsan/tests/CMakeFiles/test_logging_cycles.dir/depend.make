# Empty dependencies file for test_logging_cycles.
# This may be replaced when dependencies are built.
