file(REMOVE_RECURSE
  "CMakeFiles/test_logging_cycles.dir/common/test_logging_cycles.cpp.o"
  "CMakeFiles/test_logging_cycles.dir/common/test_logging_cycles.cpp.o.d"
  "test_logging_cycles"
  "test_logging_cycles.pdb"
  "test_logging_cycles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logging_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
