# Empty compiler generated dependencies file for test_heavy_hitters.
# This may be replaced when dependencies are built.
