file(REMOVE_RECURSE
  "CMakeFiles/test_heavy_hitters.dir/telemetry/test_heavy_hitters.cpp.o"
  "CMakeFiles/test_heavy_hitters.dir/telemetry/test_heavy_hitters.cpp.o.d"
  "test_heavy_hitters"
  "test_heavy_hitters.pdb"
  "test_heavy_hitters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heavy_hitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
