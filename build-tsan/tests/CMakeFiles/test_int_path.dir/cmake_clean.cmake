file(REMOVE_RECURSE
  "CMakeFiles/test_int_path.dir/telemetry/test_int_path.cpp.o"
  "CMakeFiles/test_int_path.dir/telemetry/test_int_path.cpp.o.d"
  "test_int_path"
  "test_int_path.pdb"
  "test_int_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_int_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
