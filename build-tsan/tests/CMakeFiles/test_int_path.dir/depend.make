# Empty dependencies file for test_int_path.
# This may be replaced when dependencies are built.
