# Empty compiler generated dependencies file for test_report_gen.
# This may be replaced when dependencies are built.
