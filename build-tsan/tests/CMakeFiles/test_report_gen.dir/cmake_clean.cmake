file(REMOVE_RECURSE
  "CMakeFiles/test_report_gen.dir/baseline/test_report_gen.cpp.o"
  "CMakeFiles/test_report_gen.dir/baseline/test_report_gen.cpp.o.d"
  "test_report_gen"
  "test_report_gen.pdb"
  "test_report_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
