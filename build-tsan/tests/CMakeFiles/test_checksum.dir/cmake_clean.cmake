file(REMOVE_RECURSE
  "CMakeFiles/test_checksum.dir/net/test_checksum.cpp.o"
  "CMakeFiles/test_checksum.dir/net/test_checksum.cpp.o.d"
  "test_checksum"
  "test_checksum.pdb"
  "test_checksum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
