file(REMOVE_RECURSE
  "CMakeFiles/test_spread.dir/core/test_spread.cpp.o"
  "CMakeFiles/test_spread.dir/core/test_spread.cpp.o.d"
  "test_spread"
  "test_spread.pdb"
  "test_spread[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
