# Empty compiler generated dependencies file for test_spread.
# This may be replaced when dependencies are built.
