file(REMOVE_RECURSE
  "CMakeFiles/test_wire_fabric.dir/telemetry/test_wire_fabric.cpp.o"
  "CMakeFiles/test_wire_fabric.dir/telemetry/test_wire_fabric.cpp.o.d"
  "test_wire_fabric"
  "test_wire_fabric.pdb"
  "test_wire_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
