# Empty compiler generated dependencies file for test_wire_fabric.
# This may be replaced when dependencies are built.
