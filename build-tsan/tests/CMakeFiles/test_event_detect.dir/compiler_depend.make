# Empty compiler generated dependencies file for test_event_detect.
# This may be replaced when dependencies are built.
