file(REMOVE_RECURSE
  "CMakeFiles/test_event_detect.dir/telemetry/test_event_detect.cpp.o"
  "CMakeFiles/test_event_detect.dir/telemetry/test_event_detect.cpp.o.d"
  "test_event_detect"
  "test_event_detect.pdb"
  "test_event_detect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
