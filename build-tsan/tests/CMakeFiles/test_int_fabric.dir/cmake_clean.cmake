file(REMOVE_RECURSE
  "CMakeFiles/test_int_fabric.dir/telemetry/test_int_fabric.cpp.o"
  "CMakeFiles/test_int_fabric.dir/telemetry/test_int_fabric.cpp.o.d"
  "test_int_fabric"
  "test_int_fabric.pdb"
  "test_int_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_int_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
