# Empty compiler generated dependencies file for test_int_fabric.
# This may be replaced when dependencies are built.
