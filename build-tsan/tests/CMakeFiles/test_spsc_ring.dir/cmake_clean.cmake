file(REMOVE_RECURSE
  "CMakeFiles/test_spsc_ring.dir/common/test_spsc_ring.cpp.o"
  "CMakeFiles/test_spsc_ring.dir/common/test_spsc_ring.cpp.o.d"
  "test_spsc_ring"
  "test_spsc_ring.pdb"
  "test_spsc_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spsc_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
