# Empty dependencies file for test_spsc_ring.
# This may be replaced when dependencies are built.
