# Empty compiler generated dependencies file for test_confluo.
# This may be replaced when dependencies are built.
