file(REMOVE_RECURSE
  "CMakeFiles/test_confluo.dir/baseline/test_confluo.cpp.o"
  "CMakeFiles/test_confluo.dir/baseline/test_confluo.cpp.o.d"
  "test_confluo"
  "test_confluo.pdb"
  "test_confluo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_confluo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
