# Empty compiler generated dependencies file for test_atomics_store.
# This may be replaced when dependencies are built.
