file(REMOVE_RECURSE
  "CMakeFiles/test_atomics_store.dir/core/test_atomics_store.cpp.o"
  "CMakeFiles/test_atomics_store.dir/core/test_atomics_store.cpp.o.d"
  "test_atomics_store"
  "test_atomics_store.pdb"
  "test_atomics_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomics_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
