file(REMOVE_RECURSE
  "CMakeFiles/test_kafka.dir/baseline/test_kafka.cpp.o"
  "CMakeFiles/test_kafka.dir/baseline/test_kafka.cpp.o.d"
  "test_kafka"
  "test_kafka.pdb"
  "test_kafka[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kafka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
