# Empty compiler generated dependencies file for test_kafka.
# This may be replaced when dependencies are built.
