# Empty dependencies file for test_loss_robustness.
# This may be replaced when dependencies are built.
