file(REMOVE_RECURSE
  "CMakeFiles/test_loss_robustness.dir/integration/test_loss_robustness.cpp.o"
  "CMakeFiles/test_loss_robustness.dir/integration/test_loss_robustness.cpp.o.d"
  "test_loss_robustness"
  "test_loss_robustness.pdb"
  "test_loss_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loss_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
