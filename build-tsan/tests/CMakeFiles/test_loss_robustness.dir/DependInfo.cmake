
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_loss_robustness.cpp" "tests/CMakeFiles/test_loss_robustness.dir/integration/test_loss_robustness.cpp.o" "gcc" "tests/CMakeFiles/test_loss_robustness.dir/integration/test_loss_robustness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/telemetry/CMakeFiles/dart_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/switchsim/CMakeFiles/dart_switch.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/dart_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rdma/CMakeFiles/dart_rdma.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/dart_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
