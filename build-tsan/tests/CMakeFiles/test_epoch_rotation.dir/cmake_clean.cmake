file(REMOVE_RECURSE
  "CMakeFiles/test_epoch_rotation.dir/core/test_epoch_rotation.cpp.o"
  "CMakeFiles/test_epoch_rotation.dir/core/test_epoch_rotation.cpp.o.d"
  "test_epoch_rotation"
  "test_epoch_rotation.pdb"
  "test_epoch_rotation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epoch_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
