# Empty dependencies file for test_epoch_rotation.
# This may be replaced when dependencies are built.
