# Empty dependencies file for test_externs.
# This may be replaced when dependencies are built.
