file(REMOVE_RECURSE
  "CMakeFiles/test_externs.dir/switchsim/test_externs.cpp.o"
  "CMakeFiles/test_externs.dir/switchsim/test_externs.cpp.o.d"
  "test_externs"
  "test_externs.pdb"
  "test_externs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_externs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
