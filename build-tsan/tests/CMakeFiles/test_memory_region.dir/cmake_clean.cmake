file(REMOVE_RECURSE
  "CMakeFiles/test_memory_region.dir/rdma/test_memory_region.cpp.o"
  "CMakeFiles/test_memory_region.dir/rdma/test_memory_region.cpp.o.d"
  "test_memory_region"
  "test_memory_region.pdb"
  "test_memory_region[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
