# Empty compiler generated dependencies file for test_reporter_oracle.
# This may be replaced when dependencies are built.
