file(REMOVE_RECURSE
  "CMakeFiles/test_reporter_oracle.dir/core/test_reporter_oracle.cpp.o"
  "CMakeFiles/test_reporter_oracle.dir/core/test_reporter_oracle.cpp.o.d"
  "test_reporter_oracle"
  "test_reporter_oracle.pdb"
  "test_reporter_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reporter_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
