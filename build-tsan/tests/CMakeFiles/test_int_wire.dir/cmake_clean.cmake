file(REMOVE_RECURSE
  "CMakeFiles/test_int_wire.dir/telemetry/test_int_wire.cpp.o"
  "CMakeFiles/test_int_wire.dir/telemetry/test_int_wire.cpp.o.d"
  "test_int_wire"
  "test_int_wire.pdb"
  "test_int_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_int_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
