# Empty dependencies file for test_int_wire.
# This may be replaced when dependencies are built.
