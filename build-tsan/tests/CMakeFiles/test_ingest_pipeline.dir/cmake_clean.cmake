file(REMOVE_RECURSE
  "CMakeFiles/test_ingest_pipeline.dir/core/test_ingest_pipeline.cpp.o"
  "CMakeFiles/test_ingest_pipeline.dir/core/test_ingest_pipeline.cpp.o.d"
  "test_ingest_pipeline"
  "test_ingest_pipeline.pdb"
  "test_ingest_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ingest_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
