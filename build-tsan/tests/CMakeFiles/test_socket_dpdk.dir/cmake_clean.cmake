file(REMOVE_RECURSE
  "CMakeFiles/test_socket_dpdk.dir/baseline/test_socket_dpdk.cpp.o"
  "CMakeFiles/test_socket_dpdk.dir/baseline/test_socket_dpdk.cpp.o.d"
  "test_socket_dpdk"
  "test_socket_dpdk.pdb"
  "test_socket_dpdk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_socket_dpdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
