# Empty compiler generated dependencies file for test_socket_dpdk.
# This may be replaced when dependencies are built.
