// Tests for the k-ary fat-tree topology: dimensions, addressing, and the
// routing invariants behind the paper's "5-hop fat tree" example.
#include "switchsim/topology.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/hash.hpp"

namespace dart::switchsim {
namespace {

TEST(FatTree, DimensionsK4) {
  const FatTree t(4);
  EXPECT_EQ(t.n_pods(), 4u);
  EXPECT_EQ(t.n_edge(), 8u);
  EXPECT_EQ(t.n_aggregation(), 8u);
  EXPECT_EQ(t.n_core(), 4u);
  EXPECT_EQ(t.n_switches(), 20u);
  EXPECT_EQ(t.n_hosts(), 16u);  // k^3/4
}

TEST(FatTree, DimensionsK8) {
  const FatTree t(8);
  EXPECT_EQ(t.n_core(), 16u);
  EXPECT_EQ(t.n_switches(), 80u);
  EXPECT_EQ(t.n_hosts(), 128u);
}

TEST(FatTree, SwitchIdsAreDisjointAndDescribable) {
  const FatTree t(4);
  std::set<std::uint32_t> ids;
  for (std::uint32_t p = 0; p < t.n_pods(); ++p) {
    for (std::uint32_t i = 0; i < 2; ++i) {
      ids.insert(t.edge_id(p, i));
      ids.insert(t.agg_id(p, i));
    }
  }
  for (std::uint32_t c = 0; c < t.n_core(); ++c) ids.insert(t.core_id(c));
  EXPECT_EQ(ids.size(), t.n_switches());

  const auto edge = t.describe(t.edge_id(2, 1));
  EXPECT_EQ(edge.tier, SwitchTier::kEdge);
  EXPECT_EQ(edge.pod, 2u);
  EXPECT_EQ(edge.index, 1u);
  const auto agg = t.describe(t.agg_id(3, 0));
  EXPECT_EQ(agg.tier, SwitchTier::kAggregation);
  const auto core = t.describe(t.core_id(3));
  EXPECT_EQ(core.tier, SwitchTier::kCore);
  EXPECT_EQ(core.index, 3u);
}

TEST(FatTree, SwitchNames) {
  const FatTree t(4);
  EXPECT_EQ(t.switch_name(t.edge_id(1, 0)), "edge-p1-0");
  EXPECT_EQ(t.switch_name(t.agg_id(0, 1)), "agg-p0-1");
  EXPECT_EQ(t.switch_name(t.core_id(2)), "core-2");
}

TEST(FatTree, HostAddressingScheme) {
  const FatTree t(4);
  // Host 0: pod 0, edge 0, index 0 → 10.0.0.2.
  EXPECT_EQ(t.host_ip(0).str(), "10.0.0.2");
  // Host 3: pod 0, edge 1, index 1 → 10.0.1.3.
  EXPECT_EQ(t.host_ip(3).str(), "10.0.1.3");
  // Host 4: pod 1 begins.
  EXPECT_EQ(t.host_pod(4), 1u);
  EXPECT_EQ(t.host_ip(4).str(), "10.1.0.2");
}

TEST(FatTree, HostIpsUnique) {
  const FatTree t(8);
  std::set<std::uint32_t> ips;
  for (std::uint32_t h = 0; h < t.n_hosts(); ++h) {
    ips.insert(t.host_ip(h).value);
  }
  EXPECT_EQ(ips.size(), t.n_hosts());
}

TEST(FatTree, IntraRackPathIsOneHop) {
  const FatTree t(4);
  // Hosts 0 and 1 share edge switch 0.
  const auto p = t.path(0, 1, 12345);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], t.edge_id(0, 0));
  EXPECT_EQ(t.ecmp_path_count(0, 1), 1u);
}

TEST(FatTree, IntraPodPathIsThreeHops) {
  const FatTree t(4);
  // Host 0 (edge 0) → host 2 (edge 1), both pod 0.
  const auto p = t.path(0, 2, 999);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.front(), t.edge_id(0, 0));
  EXPECT_EQ(t.describe(p[1]).tier, SwitchTier::kAggregation);
  EXPECT_EQ(t.describe(p[1]).pod, 0u);
  EXPECT_EQ(p.back(), t.edge_id(0, 1));
  EXPECT_EQ(t.ecmp_path_count(0, 2), 2u);
}

TEST(FatTree, InterPodPathIsFiveHops) {
  const FatTree t(4);
  // Host 0 (pod 0) → host 15 (pod 3): the paper's 5-hop case.
  const auto p = t.path(0, 15, 424242);
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(t.describe(p[0]).tier, SwitchTier::kEdge);
  EXPECT_EQ(t.describe(p[1]).tier, SwitchTier::kAggregation);
  EXPECT_EQ(t.describe(p[2]).tier, SwitchTier::kCore);
  EXPECT_EQ(t.describe(p[3]).tier, SwitchTier::kAggregation);
  EXPECT_EQ(t.describe(p[4]).tier, SwitchTier::kEdge);
  EXPECT_EQ(t.describe(p[0]).pod, 0u);
  EXPECT_EQ(t.describe(p[4]).pod, 3u);
  EXPECT_EQ(t.ecmp_path_count(0, 15), 4u);  // (k/2)^2
}

TEST(FatTree, EcmpIsDeterministicPerFlowHash) {
  const FatTree t(8);
  const auto p1 = t.path(0, 100, 777);
  const auto p2 = t.path(0, 100, 777);
  EXPECT_EQ(p1, p2);
}

TEST(FatTree, EcmpSpreadsAcrossCores) {
  const FatTree t(8);
  std::set<std::uint32_t> cores_used;
  for (std::uint64_t h = 0; h < 200; ++h) {
    const auto p = t.path(0, 100, h * 0x9E3779B97F4A7C15ull);
    ASSERT_EQ(p.size(), 5u);
    cores_used.insert(p[2]);
  }
  // (k/2)^2 = 16 possible cores; expect most of them exercised.
  EXPECT_GE(cores_used.size(), 12u);
}

TEST(FatTree, CoreRowConsistency) {
  // A core switch in row r (index / half) must connect to aggregation
  // switches with index r in both pods — the structural fat-tree invariant
  // path() must respect or the route would be invalid.
  const FatTree t(4);
  for (std::uint64_t hash = 0; hash < 64; ++hash) {
    const auto p = t.path(0, 15, hash);
    ASSERT_EQ(p.size(), 5u);
    const auto up_agg = t.describe(p[1]);
    const auto core = t.describe(p[2]);
    const auto down_agg = t.describe(p[3]);
    EXPECT_EQ(core.index / 2, up_agg.index);
    EXPECT_EQ(down_agg.index, up_agg.index);
  }
}

// Property sweep over k: structural invariants hold for any size.
class FatTreeSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FatTreeSizes, PathLengthsValid) {
  const FatTree t(GetParam());
  const std::uint32_t hosts = t.n_hosts();
  for (std::uint32_t i = 0; i < std::min(hosts, 30u); ++i) {
    for (std::uint32_t j = 0; j < std::min(hosts, 30u); ++j) {
      if (i == j) continue;
      const auto p = t.path(i, j, i * 131 + j);
      ASSERT_TRUE(p.size() == 1 || p.size() == 3 || p.size() == 5);
      // First/last switches must be the hosts' edges.
      EXPECT_EQ(p.front(), t.host_edge(i));
      EXPECT_EQ(p.back(), t.host_edge(j));
      for (const auto sw : p) EXPECT_LT(sw, t.n_switches());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeSizes, ::testing::Values(2u, 4u, 6u, 8u, 16u));

}  // namespace
}  // namespace dart::switchsim
