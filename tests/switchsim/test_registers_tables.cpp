// Tests for the register-array and match-action-table primitives.
#include "switchsim/registers.hpp"
#include "switchsim/tables.hpp"

#include <gtest/gtest.h>

namespace dart::switchsim {
namespace {

TEST(RegisterArray, InitialValue) {
  RegisterArray<std::uint32_t> regs(8, 42);
  for (std::size_t i = 0; i < regs.size(); ++i) EXPECT_EQ(regs.read(i), 42u);
}

TEST(RegisterArray, WriteAndRead) {
  RegisterArray<std::uint32_t> regs(4);
  regs.write(2, 99);
  EXPECT_EQ(regs.read(2), 99u);
  EXPECT_EQ(regs.read(0), 0u);
}

TEST(RegisterArray, RmwReturnsOldValue) {
  RegisterArray<std::uint32_t> regs(2);
  const auto old = regs.rmw(0, [](std::uint32_t v) { return v + 5; });
  EXPECT_EQ(old, 0u);
  EXPECT_EQ(regs.read(0), 5u);
  const auto old2 = regs.rmw(0, [](std::uint32_t v) { return v * 2; });
  EXPECT_EQ(old2, 5u);
  EXPECT_EQ(regs.read(0), 10u);
}

TEST(RegisterArray, PsnCounterIdiom) {
  // The DART pipeline's per-collector PSN register (§6): 24-bit wrap.
  RegisterArray<std::uint32_t> psn(1);
  psn.write(0, 0x00FFFFFF);
  const auto old =
      psn.rmw(0, [](std::uint32_t v) { return (v + 1) & 0x00FFFFFFu; });
  EXPECT_EQ(old, 0x00FFFFFFu);
  EXPECT_EQ(psn.read(0), 0u);
}

TEST(RegisterArray, SramAccounting) {
  RegisterArray<std::uint32_t> regs(1000);
  EXPECT_EQ(regs.sram_bytes(), 4000u);
}

TEST(ExactTable, HitAndMiss) {
  ExactTable<std::uint32_t, int> t;
  t.insert(7, 70);
  const auto hit = t.lookup(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 70);
  EXPECT_FALSE(t.lookup(8).has_value());
}

TEST(ExactTable, OverwriteAndRemove) {
  ExactTable<std::uint32_t, int> t;
  t.insert(1, 10);
  t.insert(1, 20);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.lookup(1), 20);
  t.remove(1);
  EXPECT_FALSE(t.lookup(1).has_value());
  EXPECT_EQ(t.size(), 0u);
}

TEST(ExactTable, SramScalesWithEntries) {
  ExactTable<std::uint32_t, std::uint64_t> t;
  EXPECT_EQ(t.sram_bytes(), 0u);
  t.insert(1, 1);
  t.insert(2, 2);
  EXPECT_EQ(t.sram_bytes(), 2 * (4 + 8));
}

}  // namespace
}  // namespace dart::switchsim
