// Tests for the DART switch egress pipeline (§6): report crafting, PSN
// registers, collector lookup, and agreement with the host-side crafter.
#include "switchsim/dart_switch.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/collector.hpp"
#include "rdma/roce.hpp"

namespace dart::switchsim {
namespace {

core::DartConfig small_config() {
  core::DartConfig cfg;
  cfg.n_slots = 1024;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 20;
  cfg.master_seed = 0xDA27;
  return cfg;
}

DartSwitchPipeline::Config switch_config(core::WriteMode mode) {
  DartSwitchPipeline::Config sc;
  sc.dart = small_config();
  sc.mac = {0x02, 0, 0, 0, 0, 1};
  sc.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  sc.rng_seed = 7;
  sc.write_mode = mode;
  return sc;
}

core::RemoteStoreInfo fake_collector(std::uint32_t id) {
  core::RemoteStoreInfo info;
  info.collector_id = id;
  info.mac = {0x02, 0xC0, 0, 0, 0, static_cast<std::uint8_t>(id)};
  info.ip = net::Ipv4Addr::from_octets(10, 0, 100, static_cast<std::uint8_t>(id));
  info.qpn = 0x100 + id;
  info.rkey = 0xAB000000 + id;
  info.base_vaddr = 0x0000'1000'0000'0000ull;
  info.n_slots = small_config().n_slots;
  info.slot_bytes = small_config().slot_bytes();
  return info;
}

std::span<const std::byte> bytes_of(const std::string& s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

TEST(DartSwitch, NoCollectorsLoadedMisses) {
  DartSwitchPipeline sw(switch_config(core::WriteMode::kStochastic));
  const std::string key = "k";
  std::vector<std::byte> value(20, std::byte{1});
  const auto frames = sw.on_telemetry(bytes_of(key), value);
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(sw.counters().table_misses, 1u);
}

TEST(DartSwitch, StochasticEmitsOneFrame) {
  DartSwitchPipeline sw(switch_config(core::WriteMode::kStochastic));
  sw.load_collector(fake_collector(0));
  const std::string key = "flow-1";
  std::vector<std::byte> value(20, std::byte{2});
  const auto frames = sw.on_telemetry(bytes_of(key), value);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(sw.counters().reports_emitted, 1u);
}

TEST(DartSwitch, AllSlotsEmitsNFrames) {
  DartSwitchPipeline sw(switch_config(core::WriteMode::kAllSlots));
  sw.load_collector(fake_collector(0));
  const std::string key = "flow-1";
  std::vector<std::byte> value(20, std::byte{2});
  const auto frames = sw.on_telemetry(bytes_of(key), value);
  ASSERT_EQ(frames.size(), 2u);  // N = 2
  // The two frames target different slot addresses (w.h.p. for any key).
  const auto f0 = net::parse_udp_frame(frames[0]);
  const auto f1 = net::parse_udp_frame(frames[1]);
  ASSERT_TRUE(f0 && f1);
  const auto r0 = rdma::parse_request(f0->payload);
  const auto r1 = rdma::parse_request(f1->payload);
  ASSERT_TRUE(r0 && r1);
  EXPECT_NE(r0->reth->vaddr, r1->reth->vaddr);
}

TEST(DartSwitch, FramesAreValidRoce) {
  DartSwitchPipeline sw(switch_config(core::WriteMode::kAllSlots));
  sw.load_collector(fake_collector(3));
  const std::string key = "flow-2";
  std::vector<std::byte> value(20, std::byte{3});
  for (const auto& frame : sw.on_telemetry(bytes_of(key), value)) {
    EXPECT_TRUE(rdma::verify_frame_icrc(frame));
    const auto parsed = net::parse_udp_frame(frame);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->udp.dst_port, net::kRoceV2UdpPort);
    EXPECT_EQ(parsed->ip.dst, fake_collector(3).ip);
    const auto req = rdma::parse_request(parsed->payload);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->bth.opcode, rdma::Opcode::kRcRdmaWriteOnly);
    EXPECT_EQ(req->bth.dest_qp, fake_collector(3).qpn);
    EXPECT_EQ(req->reth->rkey, fake_collector(3).rkey);
    // Payload = checksum (4) + value (20).
    EXPECT_EQ(req->payload.size(), 24u);
  }
}

TEST(DartSwitch, PsnIncrementsPerCollector) {
  DartSwitchPipeline sw(switch_config(core::WriteMode::kStochastic));
  sw.load_collector(fake_collector(0));
  const std::string key = "flow-3";
  std::vector<std::byte> value(20, std::byte{4});
  EXPECT_EQ(sw.psn_of(0), 0u);
  (void)sw.on_telemetry(bytes_of(key), value);
  EXPECT_EQ(sw.psn_of(0), 1u);
  (void)sw.on_telemetry(bytes_of(key), value);
  (void)sw.on_telemetry(bytes_of(key), value);
  EXPECT_EQ(sw.psn_of(0), 3u);
}

TEST(DartSwitch, PsnsOnWireAreSequential) {
  DartSwitchPipeline sw(switch_config(core::WriteMode::kStochastic));
  sw.load_collector(fake_collector(0));
  const std::string key = "flow-4";
  std::vector<std::byte> value(20, std::byte{5});
  std::vector<std::uint32_t> psns;
  for (int i = 0; i < 5; ++i) {
    const auto frames = sw.on_telemetry(bytes_of(key), value);
    ASSERT_EQ(frames.size(), 1u);
    const auto parsed = net::parse_udp_frame(frames[0]);
    const auto req = rdma::parse_request(parsed->payload);
    psns.push_back(req->bth.psn);
  }
  EXPECT_EQ(psns, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(DartSwitch, RoutesKeysToHashedCollector) {
  DartSwitchPipeline sw(switch_config(core::WriteMode::kStochastic));
  constexpr std::uint32_t kCollectors = 4;
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    sw.load_collector(fake_collector(c));
  }
  const HashFamily family(2, 0xDA27);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "flow-" + std::to_string(i);
    std::vector<std::byte> value(20, std::byte{6});
    const auto frames = sw.on_telemetry(bytes_of(key), value);
    ASSERT_EQ(frames.size(), 1u);
    const auto parsed = net::parse_udp_frame(frames[0]);
    const auto want =
        family.collector_of(bytes_of(key), kCollectors);
    EXPECT_EQ(parsed->ip.dst, fake_collector(want).ip);
  }
}

TEST(DartSwitch, MatchesHostSideCrafterBytes) {
  // The P4-modeled pipeline and the host-side ReportCrafter must produce
  // byte-identical frames for the same (key, value, n, psn).
  auto sc = switch_config(core::WriteMode::kAllSlots);
  DartSwitchPipeline sw(sc);
  sw.load_collector(fake_collector(0));

  core::ReportCrafter crafter(sc.dart);
  core::ReporterEndpoint src;
  src.mac = sc.mac;
  src.ip = sc.ip;

  const std::string key = "flow-equal";
  std::vector<std::byte> value(20, std::byte{7});
  const auto frames = sw.on_telemetry(bytes_of(key), value);
  ASSERT_EQ(frames.size(), 2u);
  for (std::uint32_t n = 0; n < 2; ++n) {
    const auto expect =
        crafter.craft_write(fake_collector(0), src, bytes_of(key), value, n,
                            /*psn=*/n);
    EXPECT_EQ(frames[n], expect) << "copy " << n;
  }
}

// --- DTA translator primitives ----------------------------------------------

core::DtaPrimitivesConfig small_primitives() {
  auto prim = core::default_primitives(small_config().master_seed);
  prim.ring.n_entries = 16;
  prim.ring.value_bytes = 8;
  prim.postcards.n_groups = 8;
  prim.postcards.max_hops = 4;
  return prim;
}

DartSwitchPipeline::Config primitive_switch_config() {
  auto sc = switch_config(core::WriteMode::kStochastic);
  sc.primitives = small_primitives();
  return sc;
}

// The three region rows collector `id` would publish (Collector's vaddr
// scheme: disjoint fixed bases per region).
struct PrimitiveRowSet {
  core::RemoteStoreInfo ring;
  core::RemoteStoreInfo counters;
  core::RemoteStoreInfo postcards;
};

PrimitiveRowSet fake_primitive_rows(std::uint32_t id) {
  const auto prim = small_primitives();
  PrimitiveRowSet rows;
  rows.ring = fake_collector(id);
  rows.ring.base_vaddr = core::Collector::kRingBaseVaddr;
  rows.ring.n_slots = prim.ring.n_entries;
  rows.ring.slot_bytes = prim.ring.entry_bytes();
  rows.counters = fake_collector(id);
  rows.counters.base_vaddr = core::Collector::kCounterBaseVaddr;
  rows.counters.n_slots = prim.counters.n_counters;
  rows.counters.slot_bytes = 8;
  rows.postcards = fake_collector(id);
  rows.postcards.base_vaddr = core::Collector::kPostcardBaseVaddr;
  rows.postcards.n_slots = prim.postcards.n_slots();
  rows.postcards.slot_bytes = prim.postcards.slot_bytes();
  return rows;
}

TEST(DartSwitchPrimitives, NoRowsLoadedMissesAllThreeEntryPoints) {
  DartSwitchPipeline sw(primitive_switch_config());
  std::vector<std::byte> value(8, std::byte{1});
  EXPECT_TRUE(sw.on_append_event(bytes_of("k"), value).empty());
  EXPECT_TRUE(sw.on_increment_event(bytes_of("k"), 1).empty());
  EXPECT_TRUE(sw.on_postcard_event(bytes_of("k"), 0, value).empty());
  EXPECT_EQ(sw.counters().table_misses, 3u);
  EXPECT_EQ(sw.counters().reports_emitted, 0u);
  EXPECT_EQ(sw.append_tail_of(0), 0u);  // a miss must not consume a seq
}

TEST(DartSwitchPrimitives, AppendsMatchHostCrafterAndBumpTheTail) {
  const auto sc = primitive_switch_config();
  DartSwitchPipeline sw(sc);
  const auto rows = fake_primitive_rows(0);
  sw.load_primitives(rows.ring, rows.counters, rows.postcards);
  EXPECT_EQ(sw.primitive_collectors_loaded(), 1u);

  core::ReportCrafter crafter(sc.dart);
  core::ReporterEndpoint src;
  src.mac = sc.mac;
  src.ip = sc.ip;

  for (std::uint64_t i = 0; i < 3; ++i) {
    std::vector<std::byte> value(sc.primitives.ring.value_bytes,
                                 std::byte{static_cast<unsigned char>(i)});
    const auto frame = sw.on_append_event(bytes_of("event"), value);
    ASSERT_FALSE(frame.empty());
    // The switch-maintained tail supplies seq i+1; PSNs continue the same
    // per-collector stream the KV path uses.
    const auto expect = crafter.craft_append(
        rows.ring, src, sc.primitives.ring, /*seq=*/i + 1, value,
        /*psn=*/static_cast<std::uint32_t>(i));
    EXPECT_EQ(frame, expect) << "append " << i;
  }
  EXPECT_EQ(sw.append_tail_of(0), 3u);
  EXPECT_EQ(sw.counters().appends_emitted, 3u);
  EXPECT_EQ(sw.counters().reports_emitted, 3u);
}

TEST(DartSwitchPrimitives, IncrementAndPostcardMatchHostCrafter) {
  const auto sc = primitive_switch_config();
  DartSwitchPipeline sw(sc);
  const auto rows = fake_primitive_rows(0);
  sw.load_primitives(rows.ring, rows.counters, rows.postcards);

  core::ReportCrafter crafter(sc.dart);
  core::ReporterEndpoint src;
  src.mac = sc.mac;
  src.ip = sc.ip;

  const auto inc_frame = sw.on_increment_event(bytes_of("flow-i"), 42);
  ASSERT_FALSE(inc_frame.empty());
  EXPECT_EQ(inc_frame,
            crafter.craft_key_increment(rows.counters, src,
                                        sc.primitives.counters,
                                        bytes_of("flow-i"), 42, /*psn=*/0));

  std::vector<std::byte> value(sc.primitives.postcards.value_bytes,
                               std::byte{9});
  const auto pc_frame = sw.on_postcard_event(bytes_of("flow-p"), 2, value);
  ASSERT_FALSE(pc_frame.empty());
  EXPECT_EQ(pc_frame,
            crafter.craft_postcard(rows.postcards, src,
                                   sc.primitives.postcards, bytes_of("flow-p"),
                                   2, value, /*psn=*/1));
  EXPECT_EQ(sw.counters().increments_emitted, 1u);
  EXPECT_EQ(sw.counters().postcards_emitted, 1u);
  EXPECT_EQ(sw.append_tail_of(0), 0u);  // only appends consume the tail
}

TEST(DartSwitchPrimitives, PrimitivesShareThePsnStreamWithKvReports) {
  auto sc = primitive_switch_config();
  DartSwitchPipeline sw(sc);
  sw.load_collector(fake_collector(0));
  const auto rows = fake_primitive_rows(0);
  sw.load_primitives(rows.ring, rows.counters, rows.postcards);

  std::vector<std::byte> kv_value(sc.dart.value_bytes, std::byte{1});
  std::vector<std::byte> ring_value(sc.primitives.ring.value_bytes,
                                    std::byte{2});
  const auto kv = sw.on_telemetry(bytes_of("k"), kv_value);
  ASSERT_EQ(kv.size(), 1u);
  const auto append = sw.on_append_event(bytes_of("k"), ring_value);
  const auto inc = sw.on_increment_event(bytes_of("k"), 5);

  // One register, one stream: KV report psn 0, then append 1, increment 2.
  std::uint32_t want_psn = 0;
  for (const auto* frame : {&kv[0], &append, &inc}) {
    const auto parsed = net::parse_udp_frame(*frame);
    ASSERT_TRUE(parsed.has_value());
    const auto req = rdma::parse_request(parsed->payload);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->bth.psn, want_psn++);
  }
  EXPECT_EQ(sw.psn_of(0), 3u);
}

TEST(DartSwitchPrimitives, UnloadDropsPrimitiveRows) {
  DartSwitchPipeline sw(primitive_switch_config());
  const auto rows = fake_primitive_rows(0);
  sw.load_primitives(rows.ring, rows.counters, rows.postcards);
  EXPECT_EQ(sw.primitive_collectors_loaded(), 1u);
  sw.unload_collector(0);
  EXPECT_EQ(sw.primitive_collectors_loaded(), 0u);
  std::vector<std::byte> value(8, std::byte{1});
  EXPECT_TRUE(sw.on_append_event(bytes_of("k"), value).empty());
  EXPECT_EQ(sw.counters().table_misses, 1u);
}

TEST(DartSwitch, BatchedIngressMatchesPerEventIngress) {
  // on_telemetry_batch precomputes collector ids with the batched XXH64
  // kernel (8-byte keys) and falls back per event otherwise; the frame
  // stream, PSN sequence, and counters must be identical to calling
  // on_telemetry per event on a twin pipeline with the same RNG seed.
  DartSwitchPipeline per_event(switch_config(core::WriteMode::kStochastic));
  DartSwitchPipeline batched(switch_config(core::WriteMode::kStochastic));
  for (std::uint32_t id = 0; id < 3; ++id) {
    per_event.load_collector(fake_collector(id));
    batched.load_collector(fake_collector(id));
  }

  constexpr std::size_t kEvents = 100;  // crosses the 64-lane chunk
  std::vector<std::vector<std::byte>> keys(kEvents);
  std::vector<std::vector<std::byte>> values(kEvents);
  std::vector<DartSwitchPipeline::TelemetryEvent> events(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    if (i % 7 == 3) {  // a few odd-width keys force the scalar fallback
      keys[i].assign(1 + i % 5, static_cast<std::byte>(i));
    } else {
      keys[i].resize(8);
      for (std::size_t b = 0; b < 8; ++b) {
        keys[i][b] = static_cast<std::byte>(i * 31 + b);
      }
    }
    values[i].assign(20, static_cast<std::byte>(i * 3));
    events[i] = {keys[i], values[i]};
  }

  std::vector<std::vector<std::byte>> want;
  for (std::size_t i = 0; i < kEvents; ++i) {
    auto frames = per_event.on_telemetry(keys[i], values[i]);
    for (auto& f : frames) want.push_back(std::move(f));
  }
  const auto got = batched.on_telemetry_batch(events);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "frame " << i;
  }
  EXPECT_EQ(batched.counters().telemetry_events,
            per_event.counters().telemetry_events);
  EXPECT_EQ(batched.counters().reports_emitted,
            per_event.counters().reports_emitted);
}

TEST(DartSwitch, SramBudgetSupportsManyCollectors) {
  // §6: "about 20 bytes of on-switch SRAM per-collector ... tens of
  // thousands of collectors". Our logical accounting must stay in that
  // regime: 50K collectors under 2 MB.
  const std::size_t per = DartSwitchPipeline::sram_bytes_per_collector();
  EXPECT_LE(per, 32u);
  EXPECT_LE(per * 50000, 2u << 20);
}

}  // namespace
}  // namespace dart::switchsim
