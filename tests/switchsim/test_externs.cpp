// Tests for the P4 extern models: RNG, CRC, hash engine, I2E mirror.
#include "switchsim/externs.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/hash.hpp"

namespace dart::switchsim {
namespace {

std::span<const std::byte> bytes_of(const std::string& s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

TEST(RngExtern, InBoundsAndDeterministic) {
  RngExtern a(1), b(1);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next(4);
    EXPECT_LT(va, 4u);
    EXPECT_EQ(va, b.next(4));
  }
}

TEST(RngExtern, CoversAllSlots) {
  RngExtern rng(2);
  std::array<int, 4> counts{};
  for (int i = 0; i < 4000; ++i) ++counts[rng.next(4)];
  for (const int c : counts) EXPECT_GT(c, 800);
}

TEST(CrcExtern, MatchesLibraryCrc) {
  CrcExtern crc;
  const std::string s = "123456789";
  EXPECT_EQ(crc.crc32(bytes_of(s)), 0xCBF43926u);
  EXPECT_EQ(crc.crc16(bytes_of(s)), 0x29B1);
}

TEST(HashEngine, AgreesWithHashFamily) {
  // The switch's hash units and a query client's HashFamily must be the same
  // function — this equality is DART's correctness linchpin.
  HashEngine engine(4, 0xDA27);
  const HashFamily family(4, 0xDA27);
  const std::string key = "flow-xyz";
  const auto kb = bytes_of(key);
  EXPECT_EQ(engine.collector_id(kb, 32), family.collector_of(kb, 32));
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(engine.slot_index(kb, n, 1 << 20),
              family.address_of(kb, n, 1 << 20));
  }
  EXPECT_EQ(engine.key_checksum(kb, 32), family.checksum_of(kb, 32));
}

TEST(Mirror, CloneTruncatesAndTags) {
  MirrorExtern mirror;
  mirror.configure({.id = 5, .truncate_len = 64});

  net::Packet original(std::vector<std::byte>(200, std::byte{0xAB}));
  original.meta().ingress_port = 3;

  const auto clone = mirror.clone(original, 5);
  EXPECT_EQ(clone.size(), 64u);
  EXPECT_TRUE(clone.meta().is_mirror_clone);
  EXPECT_EQ(clone.meta().mirror_session, 5u);
  EXPECT_EQ(clone.meta().ingress_port, 3u);  // metadata carried over
  EXPECT_EQ(mirror.clones_emitted(), 1u);
  // Original untouched.
  EXPECT_EQ(original.size(), 200u);
  EXPECT_FALSE(original.meta().is_mirror_clone);
}

TEST(Mirror, UnknownSessionYieldsEmpty) {
  MirrorExtern mirror;
  net::Packet original(std::vector<std::byte>(10, std::byte{1}));
  const auto clone = mirror.clone(original, 99);
  EXPECT_TRUE(clone.empty());
  EXPECT_FALSE(clone.meta().is_mirror_clone);
}

TEST(Mirror, SessionReconfiguration) {
  MirrorExtern mirror;
  mirror.configure({.id = 1, .truncate_len = 100});
  mirror.configure({.id = 1, .truncate_len = 10});
  net::Packet original(std::vector<std::byte>(50, std::byte{1}));
  EXPECT_EQ(mirror.clone(original, 1).size(), 10u);
}

TEST(Mirror, ShortPacketNotPadded) {
  MirrorExtern mirror;
  mirror.configure({.id = 1, .truncate_len = 128});
  net::Packet original(std::vector<std::byte>(40, std::byte{1}));
  EXPECT_EQ(mirror.clone(original, 1).size(), 40u);
}

}  // namespace
}  // namespace dart::switchsim
