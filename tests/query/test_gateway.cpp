// End-to-end tests for the production query plane (src/query/gateway.hpp):
// in-process sessions and wire clients multiplexed over the collector pool,
// read caching bounded by the epoch machinery, request coalescing, upstream
// timeout synthesis, standing-query push notifications, and the SLO metric
// surface. The harness is the same netsim management-plane shape the
// operator/service tests use: one simulator, explicit ARP, UDP/4800 frames.
#include "query/gateway.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "core/primitives.hpp"
#include "core/query_service.hpp"
#include "net/netsim.hpp"
#include "obs/metric.hpp"

namespace dart::query {
namespace {

using core::kResponseDegraded;
using core::kResponseGatewayTimeout;

std::vector<std::byte> key_of(std::uint64_t k) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &k, 8);
  return out;
}

std::vector<std::byte> value_of(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

// Gateway in front of a 2-collector KV cluster with primitives enabled,
// plus a wire-side OperatorClient whose "services" are the virtual IPs.
class GatewayFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kCollectors = 2;

  void SetUp() override {
    cfg_.n_slots = 1 << 8;
    cfg_.n_addresses = 2;
    cfg_.value_bytes = 8;
    cfg_.master_seed = 0x6A7E;
    cluster_ = std::make_unique<core::CollectorCluster>(cfg_, kCollectors);
    const auto prim = core::default_primitives(cfg_.master_seed);
    for (std::uint32_t c = 0; c < kCollectors; ++c) {
      ASSERT_TRUE(cluster_->collector(c).enable_primitives(prim).ok());
    }

    auto resolver = [this](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
      for (const auto& [addr, node] : arp_) {
        if (addr == ip) return node;
      }
      return std::nullopt;
    };

    QueryGatewayConfig gcfg;
    gcfg.gateway_ip = net::Ipv4Addr::from_octets(10, 9, 2, 254);
    for (std::uint32_t c = 0; c < kCollectors; ++c) {
      const auto svc_ip = net::Ipv4Addr::from_octets(10, 0, 50,
                                                     static_cast<std::uint8_t>(c));
      gcfg.virtual_ips.push_back(
          net::Ipv4Addr::from_octets(10, 9, 2, static_cast<std::uint8_t>(c)));
      gcfg.service_ips.push_back(svc_ip);
      services_.push_back(std::make_unique<core::QueryServiceNode>(
          cluster_->collector(c), svc_ip, resolver));
      services_.back()->set_deployment(&cluster_->crafter(), kCollectors);
    }
    gateway_ = std::make_unique<QueryGateway>(gcfg, cluster_->crafter(),
                                              resolver);

    operator_ip_ = net::Ipv4Addr::from_octets(10, 9, 9, 9);
    wire_op_ = std::make_unique<core::OperatorClient>(
        cluster_->crafter(), operator_ip_, gcfg.virtual_ips, resolver);

    const auto gw_node = sim_.add_node(*gateway_);
    arp_.emplace_back(gcfg.gateway_ip, gw_node);
    for (std::uint32_t c = 0; c < kCollectors; ++c) {
      const auto svc_node = sim_.add_node(*services_[c]);
      arp_.emplace_back(gcfg.service_ips[c], svc_node);
      arp_.emplace_back(gcfg.virtual_ips[c], gw_node);
      sim_.connect(gw_node, svc_node, /*latency_ns=*/1000);
    }
    const auto op_node = sim_.add_node(*wire_op_);
    arp_.emplace_back(operator_ip_, op_node);
    sim_.connect(op_node, gw_node, /*latency_ns=*/1000);
  }

  core::DartConfig cfg_;
  std::unique_ptr<core::CollectorCluster> cluster_;
  net::Simulator sim_{1};
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp_;
  std::vector<std::unique_ptr<core::QueryServiceNode>> services_;
  std::unique_ptr<QueryGateway> gateway_;
  net::Ipv4Addr operator_ip_{};
  std::unique_ptr<core::OperatorClient> wire_op_;
};

TEST_F(GatewayFixture, SessionKvQueriesMatchClusterOracle) {
  auto& session = gateway_->open_session();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> issued;  // id, tag
  for (std::uint64_t tag = 0; tag < 16; ++tag) {
    cluster_->write(key_of(tag), value_of(tag * 101));
    const auto id = session.query(key_of(tag));
    ASSERT_NE(id, 0u);
    issued.emplace_back(id, tag);
  }
  EXPECT_EQ(session.pending(), 16u);
  sim_.run();
  EXPECT_EQ(session.pending(), 0u);
  EXPECT_EQ(session.answered(), 16u);
  for (const auto& [id, tag] : issued) {
    const auto resp = session.take_response(id);
    ASSERT_TRUE(resp.has_value()) << "no answer for tag " << tag;
    EXPECT_EQ(resp->outcome, core::QueryOutcome::kFound);
    EXPECT_EQ(resp->value, value_of(tag * 101));
    EXPECT_EQ(resp->flags, 0u);
    EXPECT_EQ(resp->stale_epochs, 0u);
  }
  EXPECT_EQ(session.degraded(), 0u);
}

TEST_F(GatewayFixture, SessionPrimitiveAndSketchFamiliesForward) {
  auto& session = gateway_->open_session();
  const auto key = key_of(7);
  const auto owner = cluster_->owner_of(key);
  (void)cluster_->collector(owner).counters().fetch_add(key, 40);
  (void)cluster_->collector(owner).counters().fetch_add(key, 2);

  const auto counter_id = session.read_counter(key);
  const auto drain_id = session.drain_ring(0);
  const auto postcard_id = session.read_postcard_group(key);
  const auto sketch_id = session.sketch_estimate(key);  // KV backend: unavailable
  ASSERT_NE(counter_id, 0u);
  ASSERT_NE(drain_id, 0u);
  ASSERT_NE(postcard_id, 0u);
  ASSERT_NE(sketch_id, 0u);
  sim_.run();

  const auto counter = session.take_primitive_response(counter_id);
  ASSERT_TRUE(counter.has_value());
  EXPECT_EQ(counter->op, core::PrimitiveOp::kReadCounter);
  EXPECT_EQ(counter->counter_value, 42u);

  const auto drained = session.take_primitive_response(drain_id);
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->op, core::PrimitiveOp::kDrainRing);
  EXPECT_TRUE(drained->entries.empty());

  const auto postcard = session.take_primitive_response(postcard_id);
  ASSERT_TRUE(postcard.has_value());
  EXPECT_EQ(postcard->op, core::PrimitiveOp::kReadPostcardGroup);

  const auto sketch = session.take_sketch_response(sketch_id);
  ASSERT_TRUE(sketch.has_value());
  EXPECT_TRUE(sketch->unavailable());  // KV-backed collectors have no sketch
  EXPECT_EQ(session.pending(), 0u);
}

TEST_F(GatewayFixture, RepeatReadIsServedFromCacheWithinTheEpoch) {
  auto& session = gateway_->open_session();
  const auto key = key_of(3);
  cluster_->write(key, value_of(33));

  const auto first = session.query(key);
  sim_.run();
  ASSERT_TRUE(session.take_response(first).has_value());
  const auto upstream_after_first = gateway_->upstream_sent();

  const auto second = session.query(key);
  // A cache hit is answered synchronously — no simulator events needed.
  const auto resp = session.take_response(second);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->value, value_of(33));
  EXPECT_EQ(resp->flags, 0u);  // same-epoch hit: age 0, fully fresh
  EXPECT_EQ(resp->stale_epochs, 0u);
  EXPECT_EQ(gateway_->upstream_sent(), upstream_after_first);
  EXPECT_GE(gateway_->cache().hits(), 1u);

  // Epoch tick invalidates (default max age 0): next read goes upstream.
  gateway_->on_epoch(1);
  const auto third = session.query(key);
  EXPECT_FALSE(session.take_response(third).has_value());
  sim_.run();
  EXPECT_TRUE(session.take_response(third).has_value());
  EXPECT_EQ(gateway_->upstream_sent(), upstream_after_first + 1);
}

TEST_F(GatewayFixture, ConcurrentIdenticalReadsCoalesceOntoOneUpstream) {
  auto& a = gateway_->open_session();
  auto& b = gateway_->open_session();
  auto& c = gateway_->open_session();
  const auto key = key_of(9);
  cluster_->write(key, value_of(99));

  const auto ia = a.query(key);
  const auto ib = b.query(key);
  const auto ic = c.query(key);
  EXPECT_EQ(gateway_->inflight(), 1u);
  sim_.run();

  EXPECT_EQ(gateway_->coalesced_total(), 2u);
  EXPECT_EQ(gateway_->upstream_sent(), 1u);
  const auto ra = a.take_response(ia);
  const auto rb = b.take_response(ib);
  const auto rc = c.take_response(ic);
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(ra->value, value_of(99));
  EXPECT_EQ(rb->value, value_of(99));
  EXPECT_EQ(rc->value, value_of(99));
  EXPECT_EQ(rb->request_id, ib);  // each waiter got its own id back
  std::uint64_t served = 0;
  for (const auto& svc : services_) served += svc->requests_served();
  EXPECT_EQ(served, 1u);
}

TEST_F(GatewayFixture, OfflineServiceSynthesizesFlaggedTimeout) {
  auto& session = gateway_->open_session();
  const auto key = key_of(4);
  cluster_->write(key, value_of(44));
  const auto owner = cluster_->owner_of(key);
  services_[owner]->set_online(false);

  const auto id = session.query(key);
  sim_.run();  // sends + retries + deadline events all drain

  EXPECT_EQ(gateway_->upstream_retries(), gateway_->config().max_retries);
  EXPECT_EQ(gateway_->upstream_timeouts(), 1u);
  EXPECT_EQ(gateway_->inflight(), 0u);
  EXPECT_EQ(session.pending(), 0u);
  const auto resp = session.take_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_NE(resp->flags & kResponseDegraded, 0u);
  EXPECT_NE(resp->flags & kResponseGatewayTimeout, 0u);
  EXPECT_EQ(session.degraded(), 1u);

  // The synthesized answer must not poison the cache.
  services_[owner]->set_online(true);
  const auto again = session.query(key);
  sim_.run();
  const auto live = session.take_response(again);
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(live->flags, 0u);
  EXPECT_EQ(live->value, value_of(44));
}

TEST_F(GatewayFixture, WireClientRidesVirtualIpsTransparently) {
  const auto key = key_of(12);
  cluster_->write(key, value_of(120));
  const auto kv_id = wire_op_->query(key);
  const auto drain_id = wire_op_->drain_ring(1);  // collector-addressed op
  const auto counter_id = wire_op_->read_counter(key);
  ASSERT_NE(kv_id, 0u);
  ASSERT_NE(drain_id, 0u);
  ASSERT_NE(counter_id, 0u);
  sim_.run();

  EXPECT_EQ(wire_op_->pending(), 0u);
  EXPECT_EQ(wire_op_->stray_responses(), 0u);
  EXPECT_EQ(wire_op_->unexpected_responses(), 0u);
  const auto kv = wire_op_->take_response(kv_id);
  ASSERT_TRUE(kv.has_value());
  EXPECT_EQ(kv->outcome, core::QueryOutcome::kFound);
  EXPECT_EQ(kv->value, value_of(120));
  const auto drained = wire_op_->take_primitive_response(drain_id);
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->op, core::PrimitiveOp::kDrainRing);
  const auto counter = wire_op_->take_primitive_response(counter_id);
  ASSERT_TRUE(counter.has_value());
  EXPECT_EQ(counter->op, core::PrimitiveOp::kReadCounter);
  EXPECT_EQ(gateway_->requests_total(), 3u);
}

TEST_F(GatewayFixture, WireReadsShareTheGatewayCache) {
  const auto key = key_of(21);
  cluster_->write(key, value_of(210));
  auto& session = gateway_->open_session();
  const auto warm = session.query(key);
  sim_.run();
  ASSERT_TRUE(session.take_response(warm).has_value());

  const auto upstream_before = gateway_->upstream_sent();
  const auto id = wire_op_->query(key);
  sim_.run();
  const auto resp = wire_op_->take_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->value, value_of(210));
  EXPECT_EQ(gateway_->upstream_sent(), upstream_before);  // served from cache
}

TEST_F(GatewayFixture, StandingKeyChangePushesWithoutPolling) {
  auto& session = gateway_->open_session();
  const auto key = key_of(60);
  const auto sub_req = session.subscribe_key_change(key);
  const auto ack = session.take_subscribe_ack(sub_req);
  ASSERT_TRUE(ack.has_value());
  ASSERT_FALSE(ack->rejected());
  EXPECT_NE(ack->subscription_id, 0u);
  EXPECT_EQ(gateway_->n_standing(), 1u);

  // First sighting fires (absent → found transition).
  cluster_->write(key, value_of(1));
  gateway_->on_epoch(1);
  sim_.run();
  auto notes = session.take_notifications();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].kind, core::StandingKind::kKeyChange);
  EXPECT_EQ(notes[0].subscription_id, ack->subscription_id);
  EXPECT_EQ(notes[0].seq, 1u);
  EXPECT_EQ(notes[0].value, 1u);  // found
  EXPECT_EQ(notes[0].key, key);
  EXPECT_EQ(notes[0].aux, value_of(1));

  // Unchanged value: the predicate stays quiet.
  gateway_->on_epoch(2);
  sim_.run();
  EXPECT_TRUE(session.take_notifications().empty());

  // Value change fires again with the next seq.
  cluster_->write(key, value_of(2));
  gateway_->on_epoch(3);
  sim_.run();
  notes = session.take_notifications();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].seq, 2u);
  EXPECT_EQ(notes[0].aux, value_of(2));
  EXPECT_EQ(session.notifications_received(), 2u);

  // Unsubscribe silences it.
  const auto unsub = session.unsubscribe(ack->subscription_id);
  const auto unsub_ack = session.take_subscribe_ack(unsub);
  ASSERT_TRUE(unsub_ack.has_value());
  EXPECT_FALSE(unsub_ack->rejected());
  EXPECT_EQ(gateway_->n_standing(), 0u);
  cluster_->write(key, value_of(3));
  gateway_->on_epoch(4);
  sim_.run();
  EXPECT_TRUE(session.take_notifications().empty());
}

TEST_F(GatewayFixture, StandingCounterThresholdFiresOnUpwardCrossing) {
  auto& session = gateway_->open_session();
  const auto key = key_of(61);
  const auto owner = cluster_->owner_of(key);
  const auto sub_req = session.subscribe_counter_threshold(key, 100);
  const auto ack = session.take_subscribe_ack(sub_req);
  ASSERT_TRUE(ack.has_value());
  ASSERT_FALSE(ack->rejected());

  (void)cluster_->collector(owner).counters().fetch_add(key, 50);
  gateway_->on_epoch(1);
  sim_.run();
  EXPECT_TRUE(session.take_notifications().empty());  // below threshold

  (void)cluster_->collector(owner).counters().fetch_add(key, 60);  // total 110
  gateway_->on_epoch(2);
  sim_.run();
  auto notes = session.take_notifications();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].kind, core::StandingKind::kCounterThreshold);
  EXPECT_EQ(notes[0].value, 110u);

  // Still above: no re-fire until it re-arms below the threshold.
  gateway_->on_epoch(3);
  sim_.run();
  EXPECT_TRUE(session.take_notifications().empty());
}

TEST_F(GatewayFixture, WireSubscriberGetsPushNotifications) {
  // The acceptance e2e: a wire operator registers once, never polls, and a
  // notification frame arrives after the store changes.
  const auto key = key_of(62);
  const auto gw_ip = gateway_->config().gateway_ip;
  const auto sub_req = wire_op_->subscribe_key_change(gw_ip, key);
  ASSERT_NE(sub_req, 0u);
  sim_.run();
  const auto ack = wire_op_->take_subscribe_ack(sub_req);
  ASSERT_TRUE(ack.has_value());
  ASSERT_FALSE(ack->rejected());
  EXPECT_EQ(wire_op_->pending(), 0u);  // the ack retired the request

  cluster_->write(key, value_of(7));
  gateway_->on_epoch(1);
  sim_.run();  // no operator sends here — the notification is pushed

  EXPECT_EQ(wire_op_->notifications_received(), 1u);
  const auto notes = wire_op_->take_notifications();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].subscription_id, ack->subscription_id);
  EXPECT_EQ(notes[0].key, key);
  EXPECT_EQ(notes[0].aux, value_of(7));
  EXPECT_EQ(gateway_->notifications_sent(), 1u);
}

TEST_F(GatewayFixture, BadSubscribePredicatesAreRejected) {
  auto& session = gateway_->open_session();
  // Keyed kind with empty key.
  const auto empty_key = session.subscribe_key_change({});
  const auto a1 = session.take_subscribe_ack(empty_key);
  ASSERT_TRUE(a1.has_value());
  EXPECT_TRUE(a1->rejected());
  EXPECT_EQ(a1->subscription_id, 0u);
  // Top-k with k == 0.
  const auto zero_k = session.subscribe_topk_delta(0, 0);
  const auto a2 = session.take_subscribe_ack(zero_k);
  ASSERT_TRUE(a2.has_value());
  EXPECT_TRUE(a2->rejected());
  // Top-k with out-of-range collector.
  const auto bad_col = session.subscribe_topk_delta(99, 4);
  const auto a3 = session.take_subscribe_ack(bad_col);
  ASSERT_TRUE(a3.has_value());
  EXPECT_TRUE(a3->rejected());
  // Unknown unsubscribe.
  const auto unsub = session.unsubscribe(424242);
  const auto a4 = session.take_subscribe_ack(unsub);
  ASSERT_TRUE(a4.has_value());
  EXPECT_TRUE(a4->rejected());
  EXPECT_EQ(gateway_->subscribes_rejected(), 4u);
  EXPECT_EQ(gateway_->n_standing(), 0u);
}

TEST_F(GatewayFixture, FailoverRetargetReroutesKeyedReads) {
  const auto key = key_of(30);
  cluster_->write(key, value_of(300));
  const auto owner = cluster_->owner_of(key);
  const auto backup = (owner + 1) % kCollectors;

  // The backup adopts the dead owner's keys at the same slot indices (the
  // address hash is collector-independent), as the failover plane does.
  cluster_->collector(backup).store().write(key, value_of(300));
  services_[owner]->set_online(false);
  services_[backup]->begin_takeover(owner, /*stale_epochs=*/1);
  gateway_->retarget(owner, backup);

  auto& session = gateway_->open_session();
  const auto id = session.query(key);
  sim_.run();
  const auto resp = session.take_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->value, value_of(300));
  EXPECT_NE(resp->flags & kResponseDegraded, 0u);  // takeover is marked
  EXPECT_GE(resp->stale_epochs, 1u);
  EXPECT_EQ(gateway_->upstream_timeouts(), 0u);  // rerouted, not timed out
}

TEST_F(GatewayFixture, MetricsExposeGatewayCountersAndLatency) {
  obs::MetricRegistry registry;
  gateway_->bind_metrics(registry, "dart");

  auto& session = gateway_->open_session();
  const auto key = key_of(40);
  cluster_->write(key, value_of(400));
  const auto a = session.query(key);
  sim_.run();
  ASSERT_TRUE(session.take_response(a).has_value());
  const auto b = session.query(key);  // cache hit
  ASSERT_TRUE(session.take_response(b).has_value());

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("dart_gateway_requests_total"), 2.0);
  EXPECT_EQ(snap.value_of("dart_gateway_cache_hits_total"), 1.0);
  EXPECT_EQ(snap.value_of("dart_gateway_upstream_sent_total"), 1.0);
  EXPECT_EQ(snap.value_of("dart_gateway_sessions"), 1.0);
  EXPECT_EQ(snap.value_of("dart_gateway_inflight"), 0.0);
  EXPECT_GE(snap.value_of("dart_gateway_inflight_highwater"), 1.0);
  ASSERT_NE(snap.find("dart_gateway_latency_kv_ns"), nullptr);

  const auto hist = gateway_->latency_kv();
  EXPECT_EQ(hist.total, 2u);  // one live answer + one zero-latency cache hit
  EXPECT_GE(hist.quantile(0.99), 0.0);
}

// --- sketch-backed collector: estimate, top-k, and the top-k-delta standing
// query -----------------------------------------------------------------------

class SketchGatewayFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.n_slots = 1 << 8;
    cfg_.n_addresses = 2;
    cfg_.value_bytes = 8;
    cfg_.master_seed = 0x6A7F;
    crafter_ = std::make_unique<core::ReportCrafter>(cfg_);

    core::StoreBackendConfig choice;
    choice.kind = core::StoreBackendKind::kSketch;
    choice.sketch.rows = 2;
    choice.sketch.cols = 128;
    choice.sketch.seed = 0x5EED;
    choice.sketch.topk_capacity = 8;
    core::CollectorEndpoint ep;
    ep.ip = net::Ipv4Addr::from_octets(10, 0, 100, 0);
    collector_ = std::make_unique<core::Collector>(cfg_, 0, ep, choice);

    auto resolver = [this](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
      for (const auto& [addr, node] : arp_) {
        if (addr == ip) return node;
      }
      return std::nullopt;
    };
    const auto svc_ip = net::Ipv4Addr::from_octets(10, 0, 50, 0);
    service_ = std::make_unique<core::QueryServiceNode>(*collector_, svc_ip,
                                                        resolver);
    QueryGatewayConfig gcfg;
    gcfg.gateway_ip = net::Ipv4Addr::from_octets(10, 9, 2, 254);
    gcfg.virtual_ips = {net::Ipv4Addr::from_octets(10, 9, 2, 0)};
    gcfg.service_ips = {svc_ip};
    gateway_ = std::make_unique<QueryGateway>(gcfg, *crafter_, resolver);

    const auto gw_node = sim_.add_node(*gateway_);
    const auto svc_node = sim_.add_node(*service_);
    arp_.emplace_back(gcfg.gateway_ip, gw_node);
    arp_.emplace_back(gcfg.virtual_ips[0], gw_node);
    arp_.emplace_back(svc_ip, svc_node);
    sim_.connect(gw_node, svc_node, 1000);
  }

  core::DartConfig cfg_;
  std::unique_ptr<core::ReportCrafter> crafter_;
  std::unique_ptr<core::Collector> collector_;
  net::Simulator sim_{1};
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp_;
  std::unique_ptr<core::QueryServiceNode> service_;
  std::unique_ptr<QueryGateway> gateway_;
};

TEST_F(SketchGatewayFixture, EstimateAndTopKDeltaStandingQuery) {
  auto& session = gateway_->open_session();
  const auto hot = key_of(1);
  collector_->sketch().add(hot, 10);

  // The estimate both answers and seeds the heavy-hitter tracker.
  const auto est_id = session.sketch_estimate(hot);
  sim_.run();
  const auto est = session.take_sketch_response(est_id);
  ASSERT_TRUE(est.has_value());
  EXPECT_FALSE(est->unavailable());
  EXPECT_EQ(est->estimate, 10u);

  const auto sub_req = session.subscribe_topk_delta(0, 4);
  const auto ack = session.take_subscribe_ack(sub_req);
  ASSERT_TRUE(ack.has_value());
  ASSERT_FALSE(ack->rejected());

  gateway_->on_epoch(1);
  sim_.run();
  auto notes = session.take_notifications();
  ASSERT_EQ(notes.size(), 1u);  // `hot` entered the (previously empty) top-k
  EXPECT_EQ(notes[0].kind, core::StandingKind::kTopKDelta);
  EXPECT_EQ(notes[0].key, hot);
  EXPECT_EQ(notes[0].value, 10u);

  // No membership change: quiet.
  gateway_->on_epoch(2);
  sim_.run();
  EXPECT_TRUE(session.take_notifications().empty());

  // A new key enters: exactly one delta notification.
  const auto warm = key_of(2);
  collector_->sketch().add(warm, 20);
  const auto est2 = session.sketch_estimate(warm);
  sim_.run();
  ASSERT_TRUE(session.take_sketch_response(est2).has_value());
  gateway_->on_epoch(3);
  sim_.run();
  notes = session.take_notifications();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].key, warm);
  EXPECT_EQ(notes[0].value, 20u);

  // Direct top-k read through the gateway agrees with the backend.
  const auto topk_id = session.sketch_topk(0, 4);
  sim_.run();
  const auto topk = session.take_sketch_response(topk_id);
  ASSERT_TRUE(topk.has_value());
  ASSERT_EQ(topk->hitters.size(), 2u);
  EXPECT_EQ(topk->hitters[0].key, warm);
  EXPECT_EQ(topk->hitters[0].count, 20u);
}

}  // namespace
}  // namespace dart::query
