// Wire-format tests for the gateway v1 frames (core/query_protocol.hpp):
// subscribe request / subscribe ack / standing notification round-trips,
// magic dispatch against the other UDP/4800 families, and malformed-frame
// rejection.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/query_protocol.hpp"

namespace dart::core {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> xs) {
  std::vector<std::byte> out;
  for (int x : xs) out.push_back(static_cast<std::byte>(x));
  return out;
}

TEST(GatewayProtocol, SubscribeRequestRoundTripsAllKinds) {
  SubscribeRequest req;
  req.op = SubscribeOp::kSubscribe;
  req.request_id = 0x0123456789ABCDEFull;
  req.epoch = 0xA1B2C3D4u;
  req.kind = StandingKind::kCounterThreshold;
  req.threshold = 5000;
  req.key = bytes_of({1, 2, 3, 4, 5});

  const auto wire = encode_subscribe_request(req);
  ASSERT_TRUE(is_subscribe_request(wire));
  EXPECT_FALSE(is_subscribe_ack(wire));
  EXPECT_FALSE(is_notification(wire));
  EXPECT_FALSE(is_primitive_request(wire));
  EXPECT_FALSE(is_sketch_request(wire));

  const auto back = parse_subscribe_request(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, req.op);
  EXPECT_EQ(back->request_id, req.request_id);
  EXPECT_EQ(back->epoch, req.epoch);
  EXPECT_EQ(back->kind, req.kind);
  EXPECT_EQ(back->threshold, req.threshold);
  EXPECT_EQ(back->key, req.key);

  SubscribeRequest topk;
  topk.kind = StandingKind::kTopKDelta;
  topk.request_id = 7;
  topk.collector = 3;
  topk.k = 16;
  const auto topk_back = parse_subscribe_request(encode_subscribe_request(topk));
  ASSERT_TRUE(topk_back.has_value());
  EXPECT_EQ(topk_back->kind, StandingKind::kTopKDelta);
  EXPECT_EQ(topk_back->collector, 3u);
  EXPECT_EQ(topk_back->k, 16u);
  EXPECT_TRUE(topk_back->key.empty());

  SubscribeRequest unsub;
  unsub.op = SubscribeOp::kUnsubscribe;
  unsub.request_id = 9;
  unsub.subscription_id = 0xDEADBEEFull;
  const auto unsub_back = parse_subscribe_request(encode_subscribe_request(unsub));
  ASSERT_TRUE(unsub_back.has_value());
  EXPECT_EQ(unsub_back->op, SubscribeOp::kUnsubscribe);
  EXPECT_EQ(unsub_back->subscription_id, 0xDEADBEEFull);
}

TEST(GatewayProtocol, SubscribeAckRoundTripsIncludingRejection) {
  SubscribeAck ack;
  ack.op = SubscribeOp::kSubscribe;
  ack.request_id = 42;
  ack.epoch = 17;
  ack.subscription_id = 1001;
  const auto wire = encode_subscribe_ack(ack);
  ASSERT_TRUE(is_subscribe_ack(wire));
  EXPECT_FALSE(is_subscribe_request(wire));
  const auto back = parse_subscribe_ack(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->request_id, 42u);
  EXPECT_EQ(back->epoch, 17u);
  EXPECT_EQ(back->subscription_id, 1001u);
  EXPECT_FALSE(back->rejected());

  SubscribeAck rejected;
  rejected.request_id = 43;
  rejected.flags = kResponseSubscribeRejected;
  rejected.subscription_id = 0;
  const auto rej_back = parse_subscribe_ack(encode_subscribe_ack(rejected));
  ASSERT_TRUE(rej_back.has_value());
  EXPECT_TRUE(rej_back->rejected());
  EXPECT_EQ(rej_back->subscription_id, 0u);
}

TEST(GatewayProtocol, NotificationRoundTrips) {
  StandingNotification note;
  note.kind = StandingKind::kKeyChange;
  note.subscription_id = 555;
  note.seq = 3;
  note.gateway_epoch = 0x1122334455667788ull;
  note.flags = kResponseDegraded;
  note.value = 1;
  note.key = bytes_of({9, 8, 7});
  note.aux = bytes_of({0x10, 0x20, 0x30, 0x40});

  const auto wire = encode_notification(note);
  ASSERT_TRUE(is_notification(wire));
  EXPECT_FALSE(is_subscribe_ack(wire));
  const auto back = parse_notification(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, note.kind);
  EXPECT_EQ(back->subscription_id, 555u);
  EXPECT_EQ(back->seq, 3u);
  EXPECT_EQ(back->gateway_epoch, note.gateway_epoch);
  EXPECT_EQ(back->flags, kResponseDegraded);
  EXPECT_EQ(back->value, 1u);
  EXPECT_EQ(back->key, note.key);
  EXPECT_EQ(back->aux, note.aux);
}

TEST(GatewayProtocol, SharedResponseHeaderPrefixHoldsForGatewayFrames) {
  // The gateway re-stamps ids/epochs on raw bytes: every request family
  // carries the id at [4, 12) and the epoch at [12, 16), and acks add
  // flags at [16] / stale at [17, 19). Pin that layout for the subscribe
  // family too — gateway.cpp depends on it.
  SubscribeRequest req;
  req.request_id = 0x1111222233334444ull;
  req.epoch = 0xAABBCCDDu;
  req.key = bytes_of({1});
  const auto wire = encode_subscribe_request(req);
  ASSERT_GE(wire.size(), 16u);
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id = (id << 8) | static_cast<std::uint8_t>(wire[4 + i]);
  }
  EXPECT_EQ(id, req.request_id);
  std::uint32_t epoch = 0;
  for (int i = 0; i < 4; ++i) {
    epoch = (epoch << 8) | static_cast<std::uint8_t>(wire[12 + i]);
  }
  EXPECT_EQ(epoch, req.epoch);

  SubscribeAck ack;
  ack.request_id = 0x5555666677778888ull;
  ack.epoch = 0x11223344u;
  ack.flags = kResponseSubscribeRejected;
  ack.stale_epochs = 0x0102;
  const auto awire = encode_subscribe_ack(ack);
  ASSERT_GE(awire.size(), 19u);
  EXPECT_EQ(static_cast<std::uint8_t>(awire[16]), kResponseSubscribeRejected);
  EXPECT_EQ((static_cast<std::uint16_t>(awire[17]) << 8) |
                static_cast<std::uint16_t>(awire[18]),
            0x0102);
}

TEST(GatewayProtocol, MalformedFramesAreRejected) {
  SubscribeRequest req;
  req.request_id = 1;
  req.key = bytes_of({1, 2});
  auto wire = encode_subscribe_request(req);

  // Truncations at every length short of full.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(parse_subscribe_request({wire.data(), len}).has_value())
        << "accepted truncation to " << len;
  }
  // Bad version.
  auto bad_ver = wire;
  bad_ver[2] = std::byte{0x7F};
  EXPECT_FALSE(parse_subscribe_request(bad_ver).has_value());
  // Bad op.
  auto bad_op = wire;
  bad_op[3] = std::byte{9};
  EXPECT_FALSE(parse_subscribe_request(bad_op).has_value());
  // Wrong magic is not even dispatched.
  auto bad_magic = wire;
  bad_magic[0] = std::byte{0x00};
  EXPECT_FALSE(is_subscribe_request(bad_magic));
  EXPECT_FALSE(parse_subscribe_request(bad_magic).has_value());

  StandingNotification note;
  note.subscription_id = 1;
  note.key = bytes_of({1});
  auto nwire = encode_notification(note);
  for (std::size_t len = 0; len < nwire.size(); ++len) {
    EXPECT_FALSE(parse_notification({nwire.data(), len}).has_value())
        << "accepted truncation to " << len;
  }
  // Key length field pointing past the end.
  SubscribeAck ack;
  auto awire = encode_subscribe_ack(ack);
  for (std::size_t len = 0; len < awire.size(); ++len) {
    EXPECT_FALSE(parse_subscribe_ack({awire.data(), len}).has_value());
  }
}

}  // namespace
}  // namespace dart::core
