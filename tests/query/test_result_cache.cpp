// Tests for the gateway's sharded read-side result cache
// (src/query/result_cache.hpp): epoch-bounded staleness, LRU eviction,
// counter accounting, and thread-safety under concurrent access (the
// "ResultCacheHammer" case is the tsan target in tools/check_sanitize.sh).
#include "query/result_cache.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace dart::query {
namespace {

CacheKey key_of(std::uint32_t collector, std::uint8_t family, std::uint8_t op,
                std::uint64_t tag) {
  CacheKey k;
  k.collector = collector;
  k.family = family;
  k.op = op;
  k.key.resize(8);
  std::memcpy(k.key.data(), &tag, 8);
  return k;
}

std::vector<std::byte> payload_of(std::uint8_t fill) {
  return std::vector<std::byte>(32, std::byte{fill});
}

TEST(ResultCache, MissThenHitSameEpoch) {
  ResultCache cache(64);
  const auto k = key_of(0, 1, 0, 42);
  EXPECT_FALSE(cache.get(k, /*now_epoch=*/5, /*max_age=*/0).has_value());
  cache.put(k, payload_of(0xAA), /*epoch=*/5);
  const auto hit = cache.get(k, 5, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->age_epochs, 0u);
  EXPECT_EQ(hit->payload, payload_of(0xAA));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.inserts(), 1u);
}

TEST(ResultCache, AgeIsEpochDeltaAndBoundsExpiry) {
  ResultCache cache(64);
  const auto k = key_of(1, 2, 3, 7);
  cache.put(k, payload_of(0x11), /*epoch=*/10);

  // Within the allowed age: served, and the age rides along so the caller
  // can add it to stale_epochs.
  const auto aged = cache.get(k, /*now_epoch=*/12, /*max_age=*/3);
  ASSERT_TRUE(aged.has_value());
  EXPECT_EQ(aged->age_epochs, 2u);

  // Past the allowed age: a miss, and the entry is evicted on the spot.
  EXPECT_FALSE(cache.get(k, /*now_epoch=*/14, /*max_age=*/3).has_value());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, DefaultMaxAgeServesSameEpochOnly) {
  ResultCache cache(64);
  const auto k = key_of(0, 1, 0, 1);
  cache.put(k, payload_of(0x22), /*epoch=*/3);
  ASSERT_TRUE(cache.get(k, 3, 0).has_value());
  EXPECT_FALSE(cache.get(k, 4, 0).has_value());  // one tick later: expired
}

TEST(ResultCache, RegressedEpochClampsToFresh) {
  // A rotation that regresses the epoch counter (broken harness) must not
  // underflow the age into "infinitely stale" — it clamps to fresh.
  ResultCache cache(64);
  const auto k = key_of(0, 1, 0, 9);
  cache.put(k, payload_of(0x33), /*epoch=*/10);
  const auto hit = cache.get(k, /*now_epoch=*/8, /*max_age=*/0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->age_epochs, 0u);
}

TEST(ResultCache, OverwriteRefreshesEpochAndPayload) {
  ResultCache cache(64);
  const auto k = key_of(2, 1, 1, 5);
  cache.put(k, payload_of(0x44), 1);
  cache.put(k, payload_of(0x55), 2);
  const auto hit = cache.get(k, 2, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->payload, payload_of(0x55));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.inserts(), 2u);
}

TEST(ResultCache, DistinctOpsNeverAlias) {
  // Same key bytes, different (collector, family, op, k) identities: four
  // distinct entries.
  ResultCache cache(64);
  std::uint64_t tag = 77;
  const auto a = key_of(0, 1, 0, tag);
  const auto b = key_of(1, 1, 0, tag);
  const auto c = key_of(0, 2, 2, tag);
  auto d = key_of(0, 3, 1, tag);
  d.k = 8;
  cache.put(a, payload_of(1), 0);
  cache.put(b, payload_of(2), 0);
  cache.put(c, payload_of(3), 0);
  cache.put(d, payload_of(4), 0);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.get(a, 0, 0)->payload, payload_of(1));
  EXPECT_EQ(cache.get(b, 0, 0)->payload, payload_of(2));
  EXPECT_EQ(cache.get(c, 0, 0)->payload, payload_of(3));
  EXPECT_EQ(cache.get(d, 0, 0)->payload, payload_of(4));
}

TEST(ResultCache, CapacityEvictsLeastRecentlyUsed) {
  // Capacity below the shard count degenerates to one entry per shard; keys
  // that land in the same shard evict LRU-first.
  ResultCache cache(16);  // per-shard capacity 1
  // Find three keys in one shard by probing: same shard == an insert evicts.
  std::vector<CacheKey> same_shard;
  const auto probe = key_of(0, 1, 0, 0);
  cache.put(probe, payload_of(0), 0);
  same_shard.push_back(probe);
  for (std::uint64_t tag = 1; same_shard.size() < 3 && tag < 4096; ++tag) {
    const auto k = key_of(0, 1, 0, tag);
    ResultCache scratch(16);
    scratch.put(probe, payload_of(0), 0);
    scratch.put(k, payload_of(1), 0);
    if (!scratch.get(probe, 0, 0).has_value()) same_shard.push_back(k);
  }
  ASSERT_EQ(same_shard.size(), 3u) << "could not find colliding shard keys";

  ResultCache lru(16);
  lru.put(same_shard[0], payload_of(10), 0);
  lru.put(same_shard[1], payload_of(11), 0);  // evicts [0]
  EXPECT_FALSE(lru.get(same_shard[0], 0, 0).has_value());
  ASSERT_TRUE(lru.get(same_shard[1], 0, 0).has_value());
  lru.put(same_shard[2], payload_of(12), 0);  // evicts [1]
  EXPECT_FALSE(lru.get(same_shard[1], 0, 0).has_value());
  EXPECT_TRUE(lru.get(same_shard[2], 0, 0).has_value());
}

TEST(ResultCache, ResultCacheHammer) {
  // Concurrency smoke for the sanitizer matrix: 8 threads hammer a shared
  // key range with mixed gets/puts. The assertion is absence of data races
  // (tsan) plus ledger sanity: every get is exactly one hit or one miss.
  ResultCache cache(256);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr std::uint64_t kKeySpace = 64;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      std::uint64_t state = 0x9E3779B97F4A7C15ull * (t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t tag = (state >> 33) % kKeySpace;
        const auto k = key_of(static_cast<std::uint32_t>(tag % 4),
                              static_cast<std::uint8_t>(1 + tag % 3), 0, tag);
        if ((state & 3) == 0) {
          cache.put(k, payload_of(static_cast<std::uint8_t>(tag)), tag % 8);
        } else {
          const auto hit = cache.get(k, tag % 8, 4);
          if (hit.has_value()) {
            // Entries are only ever written with this tag's fill byte.
            ASSERT_EQ(hit->payload,
                      payload_of(static_cast<std::uint8_t>(tag)));
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const std::uint64_t gets = cache.hits() + cache.misses();
  EXPECT_EQ(gets + cache.inserts(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(cache.size(), 256u + 16u);  // bounded by capacity per shard
}

}  // namespace
}  // namespace dart::query
