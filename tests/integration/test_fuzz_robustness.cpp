// Robustness fuzzing: every wire-facing parser and the RNIC execution path
// must be memory-safe and semantics-preserving under arbitrary and mutated
// input. A telemetry collector's NIC faces the rawest traffic in the
// datacenter; "garbage in → counted drop" is a core invariant of this
// codebase.
//
// Every suite logs its RNG seed on entry and honors a DART_SEED override
// (check::seed_from_env), so a failure in CI is reproducible locally with
// the exact byte stream that triggered it.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include <filesystem>
#include <fstream>

#include "check/property.hpp"
#include "common/kvconfig.hpp"
#include "common/random.hpp"
#include "core/collector.hpp"
#include "core/epoch.hpp"
#include "core/oracle.hpp"
#include "core/query_protocol.hpp"
#include "core/report_crafter.hpp"
#include "rdma/multiwrite.hpp"
#include "rdma/rnic.hpp"
#include "rdma/roce.hpp"
#include "telemetry/int_wire.hpp"

namespace dart {
namespace {

std::vector<std::byte> random_blob(Xoshiro256& rng, std::size_t max_len) {
  std::vector<std::byte> blob(rng.below(max_len + 1));
  for (auto& b : blob) b = static_cast<std::byte>(rng() & 0xFF);
  return blob;
}

TEST(Fuzz, ParsersSurviveRandomBlobs) {
  Xoshiro256 rng(check::seed_from_env(0xF022, "Fuzz.ParsersSurviveRandomBlobs"));
  for (int i = 0; i < 20'000; ++i) {
    const auto blob = random_blob(rng, 256);
    (void)net::parse_udp_frame(blob);
    (void)rdma::parse_request(blob);
    (void)rdma::parse_multiwrite(blob);
    (void)telemetry::int_parse(blob);
    (void)core::parse_query_request(blob);
    (void)core::parse_query_response(blob);
  }
  SUCCEED();  // reaching here without UB/asan findings is the assertion
}

TEST(Fuzz, RnicNeverExecutesRandomBlobs) {
  core::DartConfig cfg;
  cfg.n_slots = 1 << 10;
  cfg.n_addresses = 2;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xF0;
  const core::CollectorEndpoint ep{{2, 0, 0, 0, 0, 1},
                                   net::Ipv4Addr::from_octets(10, 0, 100, 1)};
  core::Collector collector(cfg, 0, ep);
  collector.rnic().set_dta_multiwrite(true);

  Xoshiro256 rng(check::seed_from_env(0xF033, "Fuzz.RnicNeverExecutesRandomBlobs"));
  std::uint64_t executed = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto blob = random_blob(rng, 200);
    if (collector.rnic().process_frame(blob).has_value()) ++executed;
  }
  // A random blob passing Ethernet+IPv4-checksum+UDP+iCRC+rkey validation is
  // astronomically unlikely.
  EXPECT_EQ(executed, 0u);
  // And the store memory is still all zero.
  for (const auto b : collector.store().memory()) {
    ASSERT_EQ(static_cast<std::uint8_t>(b), 0);
  }
}

TEST(Fuzz, MutatedReportsAreRejectedOrSemanticallyIdentical) {
  // Take a valid report frame, flip one random byte, and feed it to a fresh
  // RNIC. Outcome must be: rejected (counted), or executed with EXACTLY the
  // same memory effect as the pristine frame (the flip landed in a field
  // that does not participate in validation or semantics, e.g. MAC bytes or
  // iCRC-masked fields).
  core::DartConfig cfg;
  cfg.n_slots = 1 << 10;
  cfg.n_addresses = 2;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xF1;
  const core::CollectorEndpoint ep{{2, 0, 0, 0, 0, 1},
                                   net::Ipv4Addr::from_octets(10, 0, 100, 1)};

  const core::ReportCrafter crafter(cfg);
  core::ReporterEndpoint src;
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);

  // Reference memory image from the pristine frame.
  core::Collector reference(cfg, 0, ep);
  const auto key = core::sim_key(77);
  std::vector<std::byte> value(8, std::byte{0x3A});
  const auto pristine =
      crafter.craft_write(reference.remote_info(), src, key, value, 0, 0);
  ASSERT_TRUE(reference.rnic().process_frame(pristine).has_value());

  Xoshiro256 rng(check::seed_from_env(0xF044, "Fuzz.MutatedReportsAreRejectedOrSemanticallyIdentical"));
  int executed_mutants = 0;
  for (int i = 0; i < 4'000; ++i) {
    core::Collector target(cfg, 0, ep);
    // Same rkey seed → same rkey as the reference collector.
    auto mutant = pristine;
    const std::size_t pos = rng.below(mutant.size());
    const auto flip = static_cast<std::byte>(1u << rng.below(8));
    mutant[pos] ^= flip;

    const auto completion = target.rnic().process_frame(mutant);
    if (!completion.has_value()) {
      // Rejected: memory must be untouched.
      for (const auto b : target.store().memory()) {
        ASSERT_EQ(static_cast<std::uint8_t>(b), 0) << "flip at " << pos;
      }
      continue;
    }
    ++executed_mutants;
    // Executed: memory must equal the reference image exactly.
    ASSERT_EQ(0, std::memcmp(target.store().memory().data(),
                             reference.store().memory().data(),
                             reference.store().memory().size()))
        << "flip at " << pos;
  }
  // Some mutants execute (flips in MACs / masked fields) — but none with
  // altered semantics. Sanity-check both sides are exercised.
  EXPECT_GT(executed_mutants, 0);
  EXPECT_LT(executed_mutants, 4'000);
}

TEST(Fuzz, QueryEngineSurvivesGarbageStoreMemory) {
  // Fill a store's memory with random bytes and query with every policy:
  // no crash, and results satisfy structural invariants.
  core::DartConfig cfg;
  cfg.n_slots = 1 << 12;
  cfg.n_addresses = 4;
  cfg.checksum_bits = 8;  // small b → plenty of accidental matches
  cfg.value_bytes = 12;
  cfg.master_seed = 0xF2;
  core::DartStore store(cfg);
  Xoshiro256 rng(check::seed_from_env(0xF055, "Fuzz.QueryEngineSurvivesGarbageStoreMemory"));
  for (auto& b : store.memory()) b = static_cast<std::byte>(rng() & 0xFF);

  const core::QueryEngine engine(store);
  int found = 0;
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    for (const auto policy :
         {core::ReturnPolicy::kFirstMatch, core::ReturnPolicy::kSingleDistinct,
          core::ReturnPolicy::kPlurality, core::ReturnPolicy::kConsensusTwo}) {
      const auto r = engine.resolve(core::sim_key(i), policy);
      ASSERT_LE(r.distinct_values, r.checksum_matches);
      ASSERT_LE(r.checksum_matches, cfg.n_addresses);
      if (r.outcome == core::QueryOutcome::kFound) {
        ASSERT_EQ(r.value.size(), cfg.value_bytes);
        ++found;
      } else {
        ASSERT_TRUE(r.value.empty());
      }
    }
  }
  // b=8 on garbage: matches occur at a healthy rate (sanity that the fuzz
  // actually exercised the found path).
  EXPECT_GT(found, 0);
}

TEST(Fuzz, IntTransitOnMutatedPacketsNeverCorruptsMemory) {
  // INT transit push on random/mutated payloads: returns false or grows the
  // stack coherently; int_parse of the result never reads out of bounds.
  Xoshiro256 rng(check::seed_from_env(0xF066, "Fuzz.IntTransitOnMutatedPacketsNeverCorruptsMemory"));
  for (int i = 0; i < 10'000; ++i) {
    auto blob = random_blob(rng, 128);
    const bool pushed = telemetry::int_transit_push(
        blob, {.switch_id = static_cast<std::uint32_t>(rng() & 0xFFFF)});
    const auto parsed = telemetry::int_parse(blob);
    if (pushed) {
      // A successful push implies the blob was a well-formed INT payload;
      // it must still parse afterwards.
      ASSERT_TRUE(parsed.has_value());
    }
  }
  SUCCEED();
}

TEST(Fuzz, KvConfigSurvivesRandomText) {
  Xoshiro256 rng(check::seed_from_env(0xF077, "Fuzz.KvConfigSurvivesRandomText"));
  for (int i = 0; i < 5'000; ++i) {
    std::string text;
    const auto len = rng.below(200);
    for (std::uint64_t c = 0; c < len; ++c) {
      // Printable-ish ASCII plus newlines/controls.
      text.push_back(static_cast<char>(rng.below(96) + 10));
    }
    const auto cfg = KvConfig::parse(text);
    if (cfg.ok()) {
      // Whatever parsed must re-serialize and re-parse stably.
      const auto again = KvConfig::parse(cfg.value().str());
      ASSERT_TRUE(again.ok());
      ASSERT_EQ(again.value().size(), cfg.value().size());
    }
  }
}

TEST(Fuzz, ArchiveReaderSurvivesRandomFiles) {
  namespace fs = std::filesystem;
  const auto path =
      (fs::temp_directory_path() / "dart_fuzz_archive.bin").string();
  Xoshiro256 rng(check::seed_from_env(0xF088, "Fuzz.ArchiveReaderSurvivesRandomFiles"));
  int opened = 0;
  for (int i = 0; i < 300; ++i) {
    auto blob = random_blob(rng, 512);
    // Half the time, start with the valid magic to reach deeper code paths.
    static constexpr char kMagic[8] = {'D', 'A', 'R', 'T', 'A', 'R', 'C', 'H'};
    if (blob.size() >= 8 && (i & 1)) {
      std::memcpy(blob.data(), kMagic, 8);
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(blob.data()),
                static_cast<std::streamsize>(blob.size()));
    }
    const auto reader = core::EpochArchiveReader::open(path);
    if (reader.ok()) ++opened;  // possible only for a coincidentally valid file
  }
  fs::remove(path);
  // Random bytes essentially never form a CRC-valid archive.
  EXPECT_EQ(opened, 0);
}

}  // namespace
}  // namespace dart
