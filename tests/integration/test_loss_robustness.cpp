// Integration: report loss between switches and collectors (§3's robustness
// motivation) — DART's N-way redundancy versus loss rate, over the real
// frame path, plus bursty-loss behaviour on the simulated fabric.
#include <gtest/gtest.h>

#include <cmath>

#include "net/netsim.hpp"
#include "telemetry/int_fabric.hpp"

namespace dart::telemetry {
namespace {

IntFabricConfig fabric_config(double loss, std::uint32_t n_addresses) {
  IntFabricConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.dart.n_slots = 1 << 15;
  cfg.dart.n_addresses = n_addresses;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0x1055;
  cfg.switch_write_mode = core::WriteMode::kAllSlots;
  cfg.report_loss_rate = loss;
  cfg.seed = 13;
  return cfg;
}

double queryability_under_loss(double loss, std::uint32_t n, int flows) {
  IntFabric fabric(fabric_config(loss, n));
  FlowGenerator gen(fabric.topology(), 21);
  std::vector<FlowEndpoints> traced;
  for (int i = 0; i < flows; ++i) {
    traced.push_back(gen.next_flow());
    (void)fabric.trace_flow(traced.back());
  }
  int found = 0;
  for (const auto& f : traced) {
    if (fabric.query_path(f.tuple).has_value()) ++found;
  }
  return static_cast<double>(found) / flows;
}

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, RedundancyBeatsLossApproximately) {
  const double loss = GetParam();
  const double q2 = queryability_under_loss(loss, 2, 1500);
  // At negligible slot-collision load, success ≈ 1 - loss^N.
  EXPECT_NEAR(q2, 1.0 - loss * loss, 0.03) << "loss=" << loss;
}

INSTANTIATE_TEST_SUITE_P(Rates, LossSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3));

TEST(LossRobustness, MoreRedundancyToleratesMoreLoss) {
  const double q1 = queryability_under_loss(0.3, 1, 1200);
  const double q2 = queryability_under_loss(0.3, 2, 1200);
  const double q4 = queryability_under_loss(0.3, 4, 1200);
  EXPECT_GT(q2, q1 + 0.1);
  EXPECT_GT(q4, q2);
  EXPECT_NEAR(q1, 0.7, 0.04);      // 1 - loss
  EXPECT_GT(q4, 0.985);            // 1 - 0.3^4 ≈ 0.992
}

TEST(LossRobustness, ZeroLossIsLossless) {
  EXPECT_DOUBLE_EQ(queryability_under_loss(0.0, 2, 300), 1.0);
}

TEST(LossRobustness, BurstyLossOnFabricLinkStillBounded) {
  // Gilbert-Elliott bursts on a single switch→collector link: average loss
  // ~= stationary mix; DART's per-key independence means queryability still
  // tracks 1 - E[loss]^2 reasonably (bursts correlate *consecutive* reports,
  // and a key's 2 reports are consecutive — so bursty loss is the WORST case
  // for DART; check it degrades but doesn't collapse).
  Xoshiro256 rng(5);
  net::GilbertElliottLoss ge(/*p_gb=*/0.02, /*p_bg=*/0.2, /*good=*/0.01,
                             /*bad=*/0.8);
  // Empirical average loss of this chain:
  int drops = 0;
  constexpr int kProbe = 200000;
  net::GilbertElliottLoss probe = ge;
  for (int i = 0; i < kProbe; ++i) drops += probe.drop(rng) ? 1 : 0;
  const double avg_loss = static_cast<double>(drops) / kProbe;
  // The chain's empirical rate must agree with the stationary analysis
  // (π_bad = p_gb/(p_gb+p_bg)): ≈ 0.0818 for these parameters. This pins the
  // drop-then-transition order — transitioning before sampling biases the
  // rate toward the bad state.
  EXPECT_NEAR(avg_loss, ge.stationary_loss_rate(), 0.01);
  EXPECT_NEAR(ge.stationary_loss_rate(), 0.0818, 0.0001);

  // Per-key: two consecutive trials through a fresh chain replica.
  Xoshiro256 rng2(7);
  net::GilbertElliottLoss chain = ge;
  int both_lost = 0;
  constexpr int kKeys = 100000;
  for (int i = 0; i < kKeys; ++i) {
    const bool l1 = chain.drop(rng2);
    const bool l2 = chain.drop(rng2);
    both_lost += (l1 && l2) ? 1 : 0;
  }
  const double p_fail = static_cast<double>(both_lost) / kKeys;
  // Correlation hurts: P(both lost) > avg_loss² (independent case)...
  EXPECT_GT(p_fail, avg_loss * avg_loss);
  // ...but stays well below avg_loss (a single copy's failure rate).
  EXPECT_LT(p_fail, avg_loss * 0.9);
}

}  // namespace
}  // namespace dart::telemetry
