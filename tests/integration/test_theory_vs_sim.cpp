// Integration: Monte-Carlo simulation vs the §4 closed forms — the same
// validation the paper performs ("simulations adhere to the aforementioned
// theory", §5.1; "almost exactly matches the theoretically predicted 38.7%",
// §5.2), at CI-friendly scale.
#include <gtest/gtest.h>

#include <cstring>

#include "core/analysis.hpp"
#include "core/oracle.hpp"
#include "core/query.hpp"
#include "core/reporter.hpp"

namespace dart::core {
namespace {

std::vector<std::byte> value_of(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

DartConfig config(std::uint32_t n, std::uint32_t bits, std::uint64_t slots) {
  DartConfig cfg;
  cfg.n_slots = slots;
  cfg.n_addresses = n;
  cfg.checksum_bits = bits;
  cfg.value_bytes = 8;
  cfg.master_seed = 0x5EED;
  return cfg;
}

// Writes `keys` distinct keys once each, then queries them all; returns the
// oracle's verdict counts. This is exactly the Fig. 3/4 experiment shape.
VerdictCounts run_fill_and_query(const DartConfig& cfg, std::uint64_t keys,
                                 ReturnPolicy policy) {
  DartStore store(cfg);
  Oracle oracle;
  for (std::uint64_t i = 0; i < keys; ++i) {
    store.write(sim_key(i), value_of(i));
    oracle.record(i, value_of(i));
  }
  const QueryEngine q(store);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)oracle.classify(i, q.resolve(sim_key(i), policy));
  }
  return oracle.counts();
}

struct TheoryCase {
  std::uint32_t n;
  double alpha;  // keys / slots
};

class TheoryVsSim : public ::testing::TestWithParam<TheoryCase> {};

TEST_P(TheoryVsSim, AverageSuccessMatchesIntegratedTheory) {
  const auto p = GetParam();
  constexpr std::uint64_t kSlots = 1 << 17;  // 131072
  const auto keys = static_cast<std::uint64_t>(p.alpha * kSlots);
  const auto counts =
      run_fill_and_query(config(p.n, 32, kSlots), keys, ReturnPolicy::kPlurality);

  const double expect =
      average_success_over_ages(static_cast<double>(keys), kSlots, p.n);
  EXPECT_NEAR(counts.success_rate(), expect, 0.015)
      << "n=" << p.n << " alpha=" << p.alpha;
  // 32-bit checksums: no return errors at this scale (§5.3).
  EXPECT_EQ(counts.error, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    LoadSweep, TheoryVsSim,
    ::testing::Values(TheoryCase{1, 0.5}, TheoryCase{1, 1.0},
                      TheoryCase{2, 0.25}, TheoryCase{2, 0.745},
                      TheoryCase{2, 1.5}, TheoryCase{4, 0.5},
                      TheoryCase{8, 0.25}));

TEST(TheoryVsSim, OldestKeyMatchesPointTheory) {
  // The §5.2 check at 1/100 scale: α = 100e6·24B/3GB ≈ 0.745 with N=2 →
  // oldest-report queryability ≈ 38.7%. We measure the oldest 2% of keys.
  constexpr std::uint64_t kSlots = 1 << 17;
  constexpr double kAlpha = 100e6 * 24.0 / 3e9;  // = 0.8 slots-load... see below
  // The paper's 3GB/24B = 125e6 slots for 100e6 keys: α = 0.8.
  const auto keys = static_cast<std::uint64_t>(kAlpha * kSlots);

  DartConfig cfg = config(2, 32, kSlots);
  DartStore store(cfg);
  Oracle oracle;
  for (std::uint64_t i = 0; i < keys; ++i) {
    store.write(sim_key(i), value_of(i));
    oracle.record(i, value_of(i));
  }
  const QueryEngine q(store);
  const auto oldest_cohort = keys / 50;  // first-written 2%
  for (std::uint64_t i = 0; i < oldest_cohort; ++i) {
    (void)oracle.classify(i, q.resolve(sim_key(i)));
  }
  const double expect = oldest_success(static_cast<double>(keys), kSlots, 2);
  EXPECT_NEAR(oracle.counts().success_rate(), expect, 0.03);
}

TEST(TheoryVsSim, SmallChecksumsProduceReturnErrorsWithinBounds) {
  // Fig. 5's mechanism: shrink b until errors appear, then check the rate
  // sits between the §4 lower and upper bounds (which apply to the oldest
  // keys; we average, so allow the integrated window).
  constexpr std::uint64_t kSlots = 1 << 15;
  constexpr double kAlpha = 1.0;
  constexpr std::uint32_t kBits = 4;
  const auto keys = static_cast<std::uint64_t>(kAlpha * kSlots);
  const auto counts = run_fill_and_query(config(2, kBits, kSlots), keys,
                                         ReturnPolicy::kFirstMatch);
  EXPECT_GT(counts.error, 0u);
  // Integrated bounds over ages [0, α]: bracket loosely.
  const double upper = p_return_error_upper(kAlpha, 2, kBits);
  EXPECT_LT(counts.error_rate(), upper);
  EXPECT_GT(counts.error_rate(), p_return_error_lower(kAlpha, 2, kBits) / 50);
}

TEST(TheoryVsSim, StochasticModeUnderperformsAllSlotsPerReport) {
  // One stochastic report per key fills ~1 slot: queryability must fall
  // between the N=1 curve and the N=2 curve (it hashes over 2 addresses but
  // populates one).
  constexpr std::uint64_t kSlots = 1 << 16;
  constexpr std::uint64_t kKeys = kSlots / 2;  // α = 0.5

  DartConfig cfg = config(2, 32, kSlots);
  cfg.write_mode = WriteMode::kStochastic;
  DartStore store(cfg);
  DartReporter reporter(store, 9);
  Oracle oracle;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    reporter.report(sim_key(i), value_of(i), /*reports=*/1);
    oracle.record(i, value_of(i));
  }
  const QueryEngine q(store);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    (void)oracle.classify(i, q.resolve(sim_key(i)));
  }
  const double got = oracle.counts().success_rate();

  DartConfig all_cfg = config(2, 32, kSlots);
  const auto all_counts =
      run_fill_and_query(all_cfg, kKeys, ReturnPolicy::kPlurality);
  EXPECT_LT(got, all_counts.success_rate());
  EXPECT_GT(got, 0.5);  // still far better than nothing at α=0.5
}

TEST(TheoryVsSim, AmbiguousReturnsWithinBounds) {
  // §4's "empty return, case 2": ≥2 distinct values carrying the correct
  // checksum. Measure at small b where the effect is visible; the paper
  // gives lower/upper bounds (values of overwriters may coincide).
  constexpr std::uint64_t kSlots = 1 << 15;
  constexpr double kAlpha = 1.0;
  constexpr std::uint32_t kBits = 4;
  const auto keys = static_cast<std::uint64_t>(kAlpha * kSlots);

  DartConfig cfg = config(2, kBits, kSlots);
  DartStore store(cfg);
  std::vector<std::byte> value(8);
  for (std::uint64_t i = 0; i < keys; ++i) {
    std::memcpy(value.data(), &i, 8);
    store.write(sim_key(i), value);
  }
  const QueryEngine q(store);
  std::uint64_t ambiguous = 0;
  for (std::uint64_t i = 0; i < keys; ++i) {
    const auto r = q.resolve(sim_key(i), ReturnPolicy::kSingleDistinct);
    if (r.distinct_values >= 2) ++ambiguous;
  }
  const double rate = static_cast<double>(ambiguous) / static_cast<double>(keys);
  // The §4 bounds apply at a fixed age; ambiguity is NON-monotone in age
  // (the one-survivor term peaks mid-life), so compare against the bounds
  // integrated over the measured age range [0, α].
  double int_lower = 0.0, int_upper = 0.0;
  constexpr int kSteps = 200;
  for (int s = 0; s < kSteps; ++s) {
    const double age = kAlpha * (s + 0.5) / kSteps;
    int_lower += p_ambiguous_lower(age, 2, kBits);
    int_upper += p_ambiguous_upper(age, 2, kBits);
  }
  int_lower /= kSteps;
  int_upper /= kSteps;
  EXPECT_GT(rate, int_lower * 0.9);
  EXPECT_LT(rate, int_upper * 1.1);
}

TEST(TheoryVsSim, EmptyReturnsTrackTheoryAtLargeChecksum) {
  // With b=32, empty returns are essentially "all copies overwritten":
  // measured empty rate ≈ integrated (1-e^{-αN})^N over ages.
  constexpr std::uint64_t kSlots = 1 << 16;
  constexpr double kAlpha = 1.0;
  const auto keys = static_cast<std::uint64_t>(kAlpha * kSlots);
  const auto counts =
      run_fill_and_query(config(2, 32, kSlots), keys, ReturnPolicy::kPlurality);
  const double expect_empty =
      1.0 - average_success_over_ages(static_cast<double>(keys), kSlots, 2);
  EXPECT_NEAR(counts.empty_rate(), expect_empty, 0.015);
}

}  // namespace
}  // namespace dart::core
