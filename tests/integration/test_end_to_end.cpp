// Integration: the complete DART data path on real wire bytes —
// switch pipeline → RoCEv2 frames → simulated RNIC → store memory → query —
// plus the equivalence of the simulation write path and the RDMA write path.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/cluster.hpp"
#include "core/oracle.hpp"
#include "switchsim/dart_switch.hpp"
#include "telemetry/backends.hpp"
#include "telemetry/int_fabric.hpp"

namespace dart {
namespace {

core::DartConfig config() {
  core::DartConfig cfg;
  cfg.n_slots = 1 << 14;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 20;
  cfg.master_seed = 0xE2E;
  return cfg;
}

std::span<const std::byte> bytes_of(const std::string& s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

TEST(EndToEnd, SwitchFramesAndLocalWritesProduceIdenticalMemory) {
  // Path A: local simulation writes. Path B: a switch pipeline's RoCEv2
  // frames through the RNIC. The collector memory must end up identical —
  // this is what lets the Monte-Carlo benches stand in for the full stack.
  core::CollectorCluster direct(config(), 1);
  core::CollectorCluster rdma(config(), 1);

  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = config();
  sc.mac = {2, 0, 0, 0, 0, 1};
  sc.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  sc.write_mode = core::WriteMode::kAllSlots;
  switchsim::DartSwitchPipeline sw(sc);
  sw.load_collector(rdma.directory()[0]);

  for (int i = 0; i < 300; ++i) {
    const std::string key = "flow-" + std::to_string(i);
    std::vector<std::byte> value(20, static_cast<std::byte>(i & 0xFF));
    direct.write(bytes_of(key), value);
    for (const auto& frame : sw.on_telemetry(bytes_of(key), value)) {
      ASSERT_TRUE(rdma.collector(0).rnic().process_frame(frame).has_value());
    }
  }

  const auto a = direct.collector(0).store().memory();
  const auto b = rdma.collector(0).store().memory();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size()));
}

TEST(EndToEnd, CollectorCpuNeverTouchesIngest) {
  // The paper's headline property, asserted structurally: after ingesting
  // reports via the RNIC, the collector-side DartStore has performed zero
  // writes of its own (writes_performed counts CPU-path writes only).
  core::CollectorCluster cluster(config(), 1);
  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = config();
  sc.write_mode = core::WriteMode::kAllSlots;
  switchsim::DartSwitchPipeline sw(sc);
  sw.load_collector(cluster.directory()[0]);

  const std::string key = "zero-cpu";
  std::vector<std::byte> value(20, std::byte{9});
  for (const auto& frame : sw.on_telemetry(bytes_of(key), value)) {
    ASSERT_TRUE(cluster.collector(0).rnic().process_frame(frame).has_value());
  }
  EXPECT_EQ(cluster.collector(0).store().writes_performed(), 0u);
  EXPECT_EQ(cluster.collector(0).ingest_counters().writes, 2u);
  // ...and the data is queryable anyway.
  EXPECT_EQ(cluster.query(bytes_of(key)).outcome, core::QueryOutcome::kFound);
}

TEST(EndToEnd, MultiSwitchMultiCollectorConvergence) {
  // 4 switches reporting disjoint keys into 2 collectors; every key must be
  // queryable at exactly its hash-owner.
  core::CollectorCluster cluster(config(), 2);
  std::vector<std::unique_ptr<switchsim::DartSwitchPipeline>> switches;
  for (int s = 0; s < 4; ++s) {
    switchsim::DartSwitchPipeline::Config sc;
    sc.dart = config();
    sc.mac = {2, 0, 0, 0, 0, static_cast<std::uint8_t>(s)};
    sc.ip = net::Ipv4Addr::from_octets(10, 255, 0, static_cast<std::uint8_t>(s));
    sc.rng_seed = 100 + s;
    sc.write_mode = core::WriteMode::kAllSlots;
    switches.push_back(std::make_unique<switchsim::DartSwitchPipeline>(sc));
    for (const auto& info : cluster.directory()) {
      switches.back()->load_collector(info);
    }
  }

  for (int i = 0; i < 200; ++i) {
    const std::string key = "msw-" + std::to_string(i);
    std::vector<std::byte> value(20, static_cast<std::byte>(i & 0xFF));
    auto& sw = *switches[i % 4];
    for (const auto& frame : sw.on_telemetry(bytes_of(key), value)) {
      const auto parsed = net::parse_udp_frame(frame);
      ASSERT_TRUE(parsed.has_value());
      // Deliver to whichever collector the frame addresses.
      for (const auto& info : cluster.directory()) {
        if (info.ip == parsed->ip.dst) {
          ASSERT_TRUE(cluster.collector(info.collector_id)
                          .rnic()
                          .process_frame(frame)
                          .has_value());
        }
      }
    }
  }

  int found = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "msw-" + std::to_string(i);
    const auto r = cluster.query(bytes_of(key));
    if (r.outcome == core::QueryOutcome::kFound) {
      EXPECT_EQ(static_cast<std::uint8_t>(r.value[0]), i & 0xFF);
      ++found;
    }
  }
  EXPECT_GE(found, 197);  // tiny load → near-perfect
}

TEST(EndToEnd, Table1BackendsThroughFullStack) {
  // Anomaly + failure events from a switch, ingested via RDMA, decoded by a
  // query client.
  core::DartConfig cfg = config();
  core::CollectorCluster cluster(cfg, 1);
  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = cfg;
  sc.write_mode = core::WriteMode::kAllSlots;
  switchsim::DartSwitchPipeline sw(sc);
  sw.load_collector(cluster.directory()[0]);

  telemetry::FiveTuple flow;
  flow.src_ip = net::Ipv4Addr::from_octets(10, 0, 0, 1);
  flow.dst_ip = net::Ipv4Addr::from_octets(10, 0, 0, 2);
  flow.src_port = 5555;
  flow.dst_port = 80;

  telemetry::FlowAnomalyEvent anomaly;
  anomaly.flow = flow;
  anomaly.kind = telemetry::AnomalyKind::kRttSpike;
  anomaly.timestamp_ns = 123456789;
  anomaly.magnitude = 40;
  const auto anomaly_rec = telemetry::make_anomaly_record(anomaly, 20);

  telemetry::NetworkFailureEvent failure;
  failure.failure_id = 88;
  failure.location = 12;
  failure.timestamp_ns = 555;
  failure.debug_code = 0xBEEF;
  const auto failure_rec = telemetry::make_failure_record(failure, 20);

  for (const auto* rec : {&anomaly_rec, &failure_rec}) {
    for (const auto& frame : sw.on_telemetry(rec->key, rec->value)) {
      ASSERT_TRUE(cluster.collector(0).rnic().process_frame(frame).has_value());
    }
  }

  const auto a = cluster.query(anomaly_rec.key);
  ASSERT_EQ(a.outcome, core::QueryOutcome::kFound);
  const auto decoded_a = telemetry::decode_anomaly_value(a.value);
  EXPECT_EQ(decoded_a.timestamp_ns, 123456789u);
  EXPECT_EQ(decoded_a.magnitude, 40u);

  const auto f = cluster.query(failure_rec.key);
  ASSERT_EQ(f.outcome, core::QueryOutcome::kFound);
  const auto decoded_f = telemetry::decode_failure_value(f.value);
  EXPECT_EQ(decoded_f.debug_code, 0xBEEFu);
}

TEST(EndToEnd, StochasticReReportsFillSlotsOverTime) {
  // §3.1: with single-write RDMA, DART "relies [on] multiple redundant
  // telemetry reports generated to fill all the N slots". Event re-reports
  // through the real pipeline must raise consensus-2 queryability.
  core::CollectorCluster cluster(config(), 1);
  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = config();
  sc.write_mode = core::WriteMode::kStochastic;
  sc.rng_seed = 77;
  switchsim::DartSwitchPipeline sw(sc);
  sw.load_collector(cluster.directory()[0]);

  const std::string key = "re-reported";
  std::vector<std::byte> value(20, std::byte{5});
  // 10 re-reports: P(both slots hit) ≈ 1 - 2·(1/2)^10 ≈ 0.998; seed-pinned.
  for (int r = 0; r < 10; ++r) {
    for (const auto& frame : sw.on_telemetry(bytes_of(key), value)) {
      ASSERT_TRUE(cluster.collector(0).rnic().process_frame(frame).has_value());
    }
  }
  const auto r2 =
      cluster.query(bytes_of(key), core::ReturnPolicy::kConsensusTwo);
  EXPECT_EQ(r2.outcome, core::QueryOutcome::kFound);
}

}  // namespace
}  // namespace dart
