// End-to-end metrics test: one registry over a full WireFabric (switches,
// RNICs, monitoring underlay, query plane) and over the sharded ingest
// pipeline, asserting the conservation invariants the counters promise:
//
//   switch reports emitted == Σ RNIC frames received + monitoring drops
//   RNIC frames            == executed + Σ per-reason rejections
//   queries sent           == responses received + still pending
//   Σ service served       == operator responses received   (lossless mgmt)
//
// plus exporter coverage: the JSON/Prometheus emissions must name every
// component family the registry was built from.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ingest_pipeline.hpp"
#include "obs/export.hpp"
#include "obs/metric.hpp"
#include "telemetry/wire_fabric.hpp"
#include "telemetry/workload.hpp"

namespace dart {
namespace {

using obs::MetricRegistry;
using obs::Snapshot;

telemetry::WireFabricConfig fabric_config(double loss) {
  telemetry::WireFabricConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.dart.n_slots = 1 << 14;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0x0B5;
  cfg.n_collectors = 2;
  cfg.report_loss_rate = loss;
  cfg.seed = 7;
  return cfg;
}

// Σ over both collectors of one RNIC counter family.
double rnic_sum(const Snapshot& snap, const std::string& field) {
  double n = 0.0;
  for (int c = 0; c < 2; ++c) {
    n += snap.value_of("dart_collector" + std::to_string(c) + "_rnic_" +
                       field + "_total");
  }
  return n;
}

double service_sum(const Snapshot& snap, const std::string& field) {
  double n = 0.0;
  for (int c = 0; c < 2; ++c) {
    n += snap.value_of("dart_collector" + std::to_string(c) + "_query_" +
                       field + "_total");
  }
  return n;
}

TEST(MetricsE2E, FabricConservationUnderReportLoss) {
  telemetry::WireFabric fabric(fabric_config(/*loss=*/0.25));
  auto& op = fabric.attach_operator();

  MetricRegistry reg;
  fabric.register_metrics(reg);

  // Traffic: enough flows that every tier forwards and reports are lost.
  telemetry::FlowGenerator gen(fabric.topology(), 21);
  std::vector<telemetry::FiveTuple> flows;
  for (int i = 0; i < 80; ++i) {
    const auto fe = gen.next_flow();
    flows.push_back(fe.tuple);
    fabric.send_flow(fe.tuple, fe.src_host, 2);
  }
  fabric.run();

  // Query plane: one query per flow, drained.
  for (const auto& flow : flows) {
    const auto key = flow.key_bytes();
    (void)op.query(key);
  }
  fabric.run();

  const Snapshot snap = reg.snapshot();

  // Reports leave switches, then either arrive at an RNIC or die on the
  // monitoring underlay — nothing else can happen to them.
  const double emitted = snap.value_of("dart_switches_reports_emitted_total");
  const double rnic_frames = rnic_sum(snap, "frames");
  const double monitoring_dropped =
      snap.value_of("dart_monitoring_dropped_total");
  EXPECT_GT(emitted, 0.0);
  EXPECT_GT(monitoring_dropped, 0.0) << "loss=0.25 must actually drop";
  EXPECT_EQ(emitted, rnic_frames + monitoring_dropped);
  EXPECT_EQ(rnic_frames, snap.value_of("dart_monitoring_delivered_total"));

  // Within each RNIC, every frame gets exactly one verdict.
  const std::vector<std::string> rejections = {
      "not_roce",   "bad_icrc",      "bad_opcode",    "unknown_qp",
      "psn_rejected", "bad_rkey",    "pd_mismatch",   "access_denied",
      "out_of_bounds", "unaligned_atomic"};
  double verdicts = rnic_sum(snap, "executed");
  for (const auto& r : rejections) verdicts += rnic_sum(snap, r);
  EXPECT_EQ(rnic_frames, verdicts);

  // Query plane over a lossless management network: everything sent is
  // served exactly once and comes back exactly once.
  const double sent = snap.value_of("dart_operator_queries_sent_total");
  const double received =
      snap.value_of("dart_operator_responses_received_total");
  const double pending = snap.value_of("dart_operator_pending");
  EXPECT_EQ(sent, static_cast<double>(flows.size()));
  EXPECT_EQ(sent, received + pending);
  EXPECT_EQ(pending, 0.0);
  EXPECT_EQ(service_sum(snap, "served"), received);
  EXPECT_EQ(service_sum(snap, "malformed"), 0.0);
  EXPECT_EQ(service_sum(snap, "not_for_me"), 0.0);
  EXPECT_EQ(snap.value_of("dart_operator_responses_stray_total"), 0.0);
  EXPECT_EQ(snap.value_of("dart_operator_responses_unexpected_total"), 0.0);

  // The resolve-latency histogram sampled at least the first resolve per
  // service that answered anything.
  const auto* hist = snap.find("dart_collector0_query_resolve_ns");
  ASSERT_NE(hist, nullptr);
  ASSERT_TRUE(hist->hist.has_value());
  if (service_sum(snap, "served") > 0.0) {
    EXPECT_GT(hist->hist->total +
                  snap.find("dart_collector1_query_resolve_ns")->hist->total,
              0u);
  }
}

TEST(MetricsE2E, ExportersCoverEveryComponentFamily) {
  telemetry::WireFabric fabric(fabric_config(0.0));
  (void)fabric.attach_operator();
  MetricRegistry reg;
  fabric.register_metrics(reg);

  const Snapshot snap = reg.snapshot();
  const std::string prom = obs::to_prometheus(snap);
  const std::string json = obs::to_bench_json(snap, "metrics_e2e");
  for (const std::string needle :
       {"dart_switch0_reports_emitted_total", "dart_collector0_rnic_frames_total",
        "dart_collector1_qp_accepted_total", "dart_net_delivered_total",
        "dart_monitoring_delivered_total", "dart_collector0_query_served_total",
        "dart_collector0_query_not_for_me_total",
        "dart_operator_queries_sent_total", "dart_operator_pending"}) {
    EXPECT_NE(prom.find("# TYPE " + needle + " "), std::string::npos) << needle;
    EXPECT_NE(json.find('"' + needle), std::string::npos) << needle;
  }
}

TEST(MetricsE2E, IngestPipelineShardMetricsMatchRunStats) {
  core::IngestPipelineConfig cfg;
  cfg.dart.n_slots = 1 << 14;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 8;
  cfg.dart.master_seed = 0xE77;
  cfg.n_feeders = 2;
  cfg.n_shards = 2;
  cfg.reports_per_feeder = 20'000;
  cfg.latency_sample_every = 16;
  cfg.seed = 5;

  core::IngestPipeline pipeline(cfg);
  MetricRegistry reg;
  pipeline.bind_metrics(reg, "dart");

  const auto stats = pipeline.run();
  const Snapshot snap = reg.snapshot();

  EXPECT_EQ(snap.value_of("dart_ingest_reports_total"),
            static_cast<double>(stats.reports_generated));
  EXPECT_EQ(snap.value_of("dart_ingest_frames_crafted_total"),
            static_cast<double>(stats.frames_crafted));
  EXPECT_EQ(snap.value_of("dart_ingest_frames_dropped_total"),
            static_cast<double>(stats.frames_dropped));

  // Per-shard counters sum to the totals and match per_shard_applied.
  double applied = 0.0;
  double rejected = 0.0;
  for (std::uint32_t s = 0; s < cfg.n_shards; ++s) {
    const std::string shard = "dart_ingest_shard" + std::to_string(s);
    const double shard_applied = snap.value_of(shard + "_applied_total");
    EXPECT_EQ(shard_applied,
              static_cast<double>(stats.per_shard_applied[s]));
    applied += shard_applied;
    rejected += snap.value_of(shard + "_rejected_total");
  }
  EXPECT_EQ(applied, static_cast<double>(stats.frames_applied));
  EXPECT_EQ(rejected, static_cast<double>(stats.frames_rejected));

  // Conservation inside the pipeline: every crafted frame was either
  // dropped by the loss model or reached a shard worker for a verdict.
  EXPECT_EQ(stats.frames_crafted,
            stats.frames_dropped + stats.frames_applied +
                stats.frames_rejected);

  // The sampled craft→ingest histogram recorded roughly crafted/16 points.
  const auto* hist = snap.find("dart_ingest_craft_to_ingest_ns");
  ASSERT_NE(hist, nullptr);
  ASSERT_TRUE(hist->hist.has_value());
  EXPECT_GT(hist->hist->total, 0u);
  EXPECT_LE(hist->hist->total,
            stats.frames_crafted / cfg.latency_sample_every + cfg.n_feeders);
}

}  // namespace
}  // namespace dart
