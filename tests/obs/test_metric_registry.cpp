// Tests for the observability subsystem: registry semantics, thread-safe
// histograms, and the two exporters (BenchJson-schema JSON + Prometheus
// text exposition).
#include "obs/metric.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"

namespace dart::obs {
namespace {

TEST(MetricRegistry, CounterRoundTrip) {
  MetricRegistry reg;
  Counter& c = reg.counter("dart_test_events_total", "events seen");
  c.inc();
  c.add(41);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.value_of("dart_test_events_total"), 42.0);
  const MetricValue* m = snap.find("dart_test_events_total");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_EQ(m->help, "events seen");
}

TEST(MetricRegistry, ReRegistrationIsIdempotentSameKind) {
  MetricRegistry reg;
  Counter& a = reg.counter("dart_twice_total");
  Counter& b = reg.counter("dart_twice_total");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(reg.snapshot().value_of("dart_twice_total"), 1.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, KindMismatchThrows) {
  MetricRegistry reg;
  (void)reg.counter("dart_kind_total");
  EXPECT_THROW((void)reg.histogram("dart_kind_total", 0, 1, 4),
               std::logic_error);
  EXPECT_THROW(reg.gauge_fn("dart_kind_total", [] { return 0.0; }),
               std::logic_error);
}

TEST(MetricRegistry, InvalidNamesRejected) {
  MetricRegistry reg;
  EXPECT_THROW((void)reg.counter(""), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("1starts_with_digit"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("has space"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("has-dash"), std::invalid_argument);
  EXPECT_TRUE(MetricRegistry::valid_name("dart_collector0_rnic_frames_total"));
  EXPECT_TRUE(MetricRegistry::valid_name("_underscore:colon"));
}

TEST(MetricRegistry, PullAdaptersReadLiveValues) {
  MetricRegistry reg;
  std::uint64_t external = 0;
  double level = 0.0;
  reg.counter_fn("dart_pull_total", [&] { return external; });
  reg.gauge_fn("dart_level", [&] { return level; });

  EXPECT_EQ(reg.snapshot().value_of("dart_pull_total"), 0.0);
  external = 1234;
  level = -2.5;
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.value_of("dart_pull_total"), 1234.0);
  EXPECT_EQ(snap.value_of("dart_level"), -2.5);
}

TEST(MetricRegistry, SnapshotIsSortedByName) {
  MetricRegistry reg;
  (void)reg.counter("dart_z_total");
  (void)reg.counter("dart_a_total");
  (void)reg.counter("dart_m_total");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "dart_a_total");
  EXPECT_EQ(snap.metrics[1].name, "dart_m_total");
  EXPECT_EQ(snap.metrics[2].name, "dart_z_total");
}

TEST(MetricRegistry, MissingMetricReadsAsZero) {
  MetricRegistry reg;
  EXPECT_EQ(reg.snapshot().value_of("dart_never_registered_total"), 0.0);
  EXPECT_EQ(reg.snapshot().find("dart_never_registered_total"), nullptr);
}

TEST(ObsHistogram, RecordsIntoCorrectBuckets) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("dart_lat_ns", 0.0, 100.0, 10);
  h.record(5.0);    // bucket 0
  h.record(15.0);   // bucket 1
  h.record(95.0);   // bucket 9
  h.record(1e9);    // clamps to bucket 9
  h.record(-7.0);   // clamps to bucket 0

  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 5u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[9], 2u);
  EXPECT_DOUBLE_EQ(snap.upper_bounds[0], 10.0);
  EXPECT_DOUBLE_EQ(snap.upper_bounds[9], 100.0);
}

TEST(ObsHistogram, DegenerateBoundsAreSafe) {
  // Reuses dart::Histogram's clamped geometry (the zero-width UB fix):
  // lo == hi must not divide by zero or cast non-finite values.
  MetricRegistry reg;
  Histogram& h = reg.histogram("dart_degenerate_ns", 5.0, 5.0, 8);
  h.record(5.0);
  h.record(-1e308);
  h.record(1e308);
  EXPECT_EQ(h.total(), 3u);
}

TEST(ObsHistogram, QuantilesInterpolate) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("dart_q_ns", 0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i) + 0.5);
  const auto snap = h.snapshot();
  EXPECT_NEAR(snap.quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(snap.quantile(0.9), 90.0, 10.0);
  EXPECT_LE(snap.quantile(0.5), snap.quantile(0.9));
  EXPECT_LE(snap.quantile(0.9), snap.quantile(0.99));
}

TEST(ObsHistogram, ConcurrentRecordingLosesNothing) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("dart_mt_ns", 0.0, 1000.0, 16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>((t * 251 + i) % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_sum = 0;
  for (const auto c : snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, snap.total);
}

TEST(Exporters, FlattenExpandsHistograms) {
  MetricRegistry reg;
  reg.counter("dart_c_total").add(7);
  Histogram& h = reg.histogram("dart_h_ns", 0.0, 10.0, 2);
  h.record(1.0);
  h.record(9.0);

  const auto flat = flatten(reg.snapshot());
  auto value = [&](const std::string& k) -> double {
    for (const auto& [name, v] : flat) {
      if (name == k) return v;
    }
    ADD_FAILURE() << "missing key " << k;
    return -1.0;
  };
  EXPECT_EQ(value("dart_c_total"), 7.0);
  EXPECT_EQ(value("dart_h_ns_count"), 2.0);
  EXPECT_EQ(value("dart_h_ns_sum"), 10.0);
  EXPECT_GE(value("dart_h_ns_p99"), value("dart_h_ns_p50"));
}

TEST(Exporters, BenchJsonSchemaRoundTrips) {
  MetricRegistry reg;
  reg.counter("dart_rt_total").add(11);
  Histogram& h = reg.histogram("dart_rt_ns", 0.0, 100.0, 4);
  h.record(42.0);

  const std::string path = ::testing::TempDir() + "obs_roundtrip.json";
  ASSERT_TRUE(write_bench_json(reg.snapshot(), "obs_test", path,
                               {{"n_things", 3.0}}));
  const auto results = read_results_json(path);
  ASSERT_TRUE(results.has_value());
  bool saw_counter = false;
  bool saw_hist_count = false;
  for (const auto& [k, v] : *results) {
    if (k == "dart_rt_total") {
      saw_counter = true;
      EXPECT_EQ(v, 11.0);
    }
    if (k == "dart_rt_ns_count") {
      saw_hist_count = true;
      EXPECT_EQ(v, 1.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist_count);
  std::remove(path.c_str());

  // The document itself must carry the BenchJson top-level schema.
  const std::string doc = to_bench_json(reg.snapshot(), "obs_test");
  EXPECT_NE(doc.find("\"name\": \"obs_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"config\""), std::string::npos);
  EXPECT_NE(doc.find("\"results\""), std::string::npos);
}

TEST(Exporters, PrometheusExposition) {
  MetricRegistry reg;
  reg.counter("dart_p_total", "things counted").add(3);
  reg.gauge_fn("dart_p_level", [] { return 1.5; }, "a level");
  Histogram& h = reg.histogram("dart_p_ns", 0.0, 20.0, 2, "a latency");
  h.record(5.0);
  h.record(15.0);
  h.record(15.0);

  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# HELP dart_p_total things counted\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dart_p_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("dart_p_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dart_p_level gauge\n"), std::string::npos);
  EXPECT_NE(text.find("dart_p_level 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dart_p_ns histogram\n"), std::string::npos);
  // Buckets are CUMULATIVE: le="10" sees 1, le="20" sees all 3.
  EXPECT_NE(text.find("dart_p_ns_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("dart_p_ns_bucket{le=\"20\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("dart_p_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("dart_p_ns_count 3\n"), std::string::npos);
}

TEST(Exporters, DiffSubtractsCountersAndKeepsGauges) {
  MetricRegistry reg;
  Counter& c = reg.counter("dart_d_total");
  double level = 1.0;
  reg.gauge_fn("dart_d_level", [&] { return level; });
  Histogram& h = reg.histogram("dart_d_ns", 0.0, 10.0, 2);

  c.add(10);
  h.record(1.0);
  const auto before = reg.snapshot();

  c.add(5);
  h.record(1.0);
  h.record(9.0);
  level = 7.0;
  const auto after = reg.snapshot();

  const auto d = diff(before, after);
  EXPECT_EQ(d.value_of("dart_d_total"), 5.0);
  EXPECT_EQ(d.value_of("dart_d_level"), 7.0);
  const MetricValue* dh = d.find("dart_d_ns");
  ASSERT_NE(dh, nullptr);
  ASSERT_TRUE(dh->hist.has_value());
  EXPECT_EQ(dh->hist->total, 2u);
  EXPECT_EQ(dh->hist->counts[0], 1u);
  EXPECT_EQ(dh->hist->counts[1], 1u);
}

TEST(Exporters, DiffClampsCounterRegressionsAtRestart) {
  Snapshot before;
  before.metrics.push_back({"dart_r_total", MetricKind::kCounter, "", 100.0, {}});
  Snapshot after;
  after.metrics.push_back({"dart_r_total", MetricKind::kCounter, "", 40.0, {}});
  // Counter went backwards (component restarted): report the after-value,
  // never a negative rate.
  EXPECT_EQ(diff(before, after).value_of("dart_r_total"), 40.0);
}

// --- exposition edge cases ----------------------------------------------------

// An empty registry must export cleanly in every format: no stray bytes in
// the Prometheus text, a valid BenchJson document with an empty results
// object that our own reader accepts, and nothing to flatten.
TEST(Exporters, EmptyRegistryExportsCleanly) {
  MetricRegistry reg;
  const auto snap = reg.snapshot();
  EXPECT_TRUE(snap.metrics.empty());
  EXPECT_TRUE(flatten(snap).empty());
  EXPECT_EQ(to_prometheus(snap), "");

  const std::string path = "OBS_empty_test.json";
  ASSERT_TRUE(write_bench_json(snap, "empty", path));
  const auto back = read_results_json(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.has_value()) << "empty results must still parse";
  EXPECT_TRUE(back->empty());
}

// A histogram that never recorded anything still emits a complete,
// all-zero cumulative series — absence of data is not absence of series.
TEST(Exporters, EmptyHistogramExposesZeroSeries) {
  MetricRegistry reg;
  (void)reg.histogram("dart_idle_ns", 0.0, 10.0, 2);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("dart_idle_ns_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("dart_idle_ns_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("dart_idle_ns_sum 0\n"), std::string::npos);
}

// Text-format 0.0.4 escaping: HELP text escapes backslash and newline but
// NOT quotes; label values escape all three. Unescaped output corrupts the
// exposition (a newline in HELP splits a comment into a bogus sample line).
TEST(Exporters, PrometheusEscaping) {
  EXPECT_EQ(prom_escape("plain", false), "plain");
  EXPECT_EQ(prom_escape("a\\b\nc\"d", false), "a\\\\b\\nc\"d");
  EXPECT_EQ(prom_escape("a\\b\nc\"d", true), "a\\\\b\\nc\\\"d");

  MetricRegistry reg;
  reg.counter("dart_esc_total", "line one\nline \\two\\ \"quoted\"").add(1);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(
      text.find(
          "# HELP dart_esc_total line one\\nline \\\\two\\\\ \"quoted\"\n"),
      std::string::npos);
  // The one-sample-per-line framing survived the hostile help string.
  EXPECT_NE(text.find("\ndart_esc_total 1\n"), std::string::npos);
}

// Diff with a series that disappeared between snapshots (component torn
// down, e.g. a collector removed by failover): the removed series is kept
// at its before-value instead of silently vanishing from the report.
TEST(Exporters, DiffKeepsSeriesRemovedInAfter) {
  Snapshot before;
  before.metrics.push_back(
      {"dart_gone_total", MetricKind::kCounter, "", 12.0, {}});
  before.metrics.push_back(
      {"dart_stays_total", MetricKind::kCounter, "", 1.0, {}});
  Snapshot after;
  after.metrics.push_back(
      {"dart_stays_total", MetricKind::kCounter, "", 5.0, {}});

  const auto d = diff(before, after);
  ASSERT_EQ(d.metrics.size(), 2u);
  EXPECT_EQ(d.value_of("dart_stays_total"), 4.0);
  ASSERT_NE(d.find("dart_gone_total"), nullptr)
      << "removed series must not vanish from the diff";
  EXPECT_EQ(d.value_of("dart_gone_total"), 12.0);
  // Output stays sorted even with the removed series spliced back in.
  EXPECT_LT(d.metrics[0].name, d.metrics[1].name);
}

// A series newly present in `after` diffs as its full value (no before to
// subtract) — the restart/startup counterpart of the removed-series case.
TEST(Exporters, DiffTreatsNewSeriesAsFullValue) {
  Snapshot before;
  Snapshot after;
  after.metrics.push_back(
      {"dart_new_total", MetricKind::kCounter, "", 9.0, {}});
  EXPECT_EQ(diff(before, after).value_of("dart_new_total"), 9.0);
}

}  // namespace
}  // namespace dart::obs
