// Tests for Summary, Histogram, TrialCounter and the format helpers.
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dart {
namespace {

TEST(Summary, EmptyIsZeroed) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeEqualsSequential) {
  Summary whole;
  Summary left;
  Summary right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10 + i * 0.1;
    whole.add(v);
    (i < 40 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  Summary b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(Histogram, BucketsAndTotal) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.9);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(5), 1u);
  EXPECT_EQ(h.count_at(9), 1u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(9), 1u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.count_at(0), 10u);
}

TEST(Histogram, QuantileOfUniformMass) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

// Regression: quantile(0.0) used to resolve to bucket 0's lower edge even
// when bucket 0 was empty — q = 0 must be the first observed value's bucket,
// not the histogram's configured floor.
TEST(Histogram, QuantileZeroSkipsEmptyBuckets) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 50; ++i) h.add(72.5);  // all mass in bucket 72
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 72.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 73.0);  // upper edge of the mass bucket
  EXPECT_NEAR(h.quantile(0.5), 72.5, 0.51);
}

// q = 1.0 must land on the last non-empty bucket's upper edge, never beyond
// the recorded mass (trailing empty buckets do not stretch the answer).
TEST(Histogram, QuantileOneStopsAtLastMass) {
  Histogram h(0.0, 100.0, 100);
  h.add(5.5);
  h.add(10.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 11.0);
}

// The empty histogram answers its floor for every q — no NaN, no UB.
TEST(Histogram, QuantileOfEmptyIsFloor) {
  Histogram h(2.0, 12.0, 10);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 2.0) << "q=" << q;
  }
}

// A single bucket interpolates linearly across its width; p50/p99 of
// one-bucket mass stay inside [lo, hi].
TEST(Histogram, QuantileSingleBucketInterpolates) {
  Histogram h(0.0, 10.0, 1);
  h.add(5.0, 100);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 9.9);
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(1.0), 10.0);
}

// Out-of-range and non-finite q must clamp, not walk off the bucket array:
// the old code let NaN fail every comparison and fall through to the top
// bucket's upper edge.
TEST(Histogram, QuantileClampsBadQ) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.5, 10);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()),
                   h.quantile(0.0));
  // Every answer stays in the mass bucket's range.
  EXPECT_GE(h.quantile(0.0), 3.0);
  EXPECT_LE(h.quantile(1.0), 4.0);
}

TEST(Histogram, BucketBounds) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 18.0);
}

// Regression: lo == hi used to make width_ zero, so add() divided by zero
// and cast the resulting ±inf/NaN to ptrdiff_t — UB. Degenerate bounds must
// degrade to unit-width buckets instead.
TEST(Histogram, ZeroWidthBoundsAreSafe) {
  Histogram h(5.0, 5.0, 10);
  h.add(5.0);
  h.add(4.0);    // below lo → bucket 0
  h.add(100.0);  // far above → clamped to the last bucket
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(9), 1u);
  // Unit-width degradation keeps bucket bounds finite and ordered.
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 5.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 6.0);
}

TEST(Histogram, InvertedBoundsAreSafe) {
  Histogram h(10.0, 0.0, 4);  // hi < lo → negative width without the clamp
  h.add(3.0);
  h.add(12.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.count_at(0), 1u);  // 3.0 < lo
  EXPECT_EQ(h.count_at(2), 1u);  // 12.0 lands at lo + 2·1.0
}

TEST(Histogram, UnderflowingWidthIsClamped) {
  // (hi - lo) / buckets rounds to zero in double → clamp must kick in.
  Histogram h(0.0, 1e-323, 1000);
  h.add(0.0);
  h.add(1e300);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(999), 1u);
}

TEST(Histogram, NonFiniteObservationsAreClampedNotUb) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(1e300);  // finite but way outside ptrdiff_t after scaling
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_at(9), 2u);  // +inf and 1e300
  EXPECT_EQ(h.count_at(0), 2u);  // -inf and NaN (NaN routes to bucket 0)
}

TEST(Histogram, BucketIndexMatchesAdd) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.bucket_index(-1.0), 0u);
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(5.5), 5u);
  EXPECT_EQ(h.bucket_index(9.999), 9u);
  EXPECT_EQ(h.bucket_index(10.0), 9u);
  EXPECT_EQ(h.bucket_index(1e12), 9u);
}

TEST(TrialCounter, RateAndMargin) {
  TrialCounter t;
  for (int i = 0; i < 100; ++i) t.record(i < 30);
  EXPECT_EQ(t.trials(), 100u);
  EXPECT_EQ(t.successes(), 30u);
  EXPECT_DOUBLE_EQ(t.rate(), 0.3);
  // 1.96 * sqrt(0.3*0.7/100) ≈ 0.0898
  EXPECT_NEAR(t.margin95(), 0.0898, 0.001);
}

TEST(TrialCounter, EmptyIsSafe) {
  TrialCounter t;
  EXPECT_EQ(t.rate(), 0.0);
  EXPECT_EQ(t.margin95(), 0.0);
}

TEST(FormatBytes, HumanReadable) {
  EXPECT_EQ(format_bytes(300), "300 B");
  EXPECT_EQ(format_bytes(3e9), "3 GB");
  EXPECT_EQ(format_bytes(1.5e3), "1.5 KB");
}

TEST(FormatCount, HumanReadable) {
  EXPECT_EQ(format_count(100e6), "100M");
  EXPECT_EQ(format_count(1500), "1.5K");
  EXPECT_EQ(format_count(12), "12");
}

}  // namespace
}  // namespace dart
