// Tests for the bench table printer and numeric formatters.
#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dart {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.row({"1"});  // missing cells become empty strings
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.rows(), 1u);
  // Every data line must have 3 separators + trailing.
  const std::string out = os.str();
  const auto last_line_start = out.rfind("| 1");
  ASSERT_NE(last_line_start, std::string::npos);
}

TEST(Table, EmptyTablePrintsHeaderOnly) {
  Table t({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.rows(), 0u);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Fmt, Double) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_percent(0.999, 1), "99.9%");
  EXPECT_EQ(fmt_percent(0.5), "50.00%");
}

TEST(Fmt, Scientific) {
  EXPECT_EQ(fmt_sci(0.000123, 2), "1.23e-04");
}

}  // namespace
}  // namespace dart
