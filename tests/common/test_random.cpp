// Tests for the deterministic PRNGs and the Zipf sampler.
#include "common/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace dart {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, SeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicSequence) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, BelowIsInRange) {
  Xoshiro256 rng(3);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro, BelowZeroBoundReturnsZero) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro, ChanceMatchesProbability) {
  Xoshiro256 rng(13);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.01);
}

TEST(Xoshiro, BelowIsApproximatelyUniform) {
  Xoshiro256 rng(17);
  constexpr std::uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / static_cast<int>(kBuckets), kN / 100);
  }
}

TEST(Zipf, UniformWhenSkewZero) {
  ZipfSampler zipf(10, 0.0);
  Xoshiro256 rng(23);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, kN / 10, kN / 50);
}

TEST(Zipf, SkewFavorsLowRanks) {
  ZipfSampler zipf(1000, 1.0);
  Xoshiro256 rng(29);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20 * std::max(counts[500], 1));
}

TEST(Zipf, SamplesWithinPopulation) {
  ZipfSampler zipf(17, 1.2);
  Xoshiro256 rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 17u);
}

TEST(Zipf, EmptyPopulationClampedToOne) {
  ZipfSampler zipf(0, 1.0);
  EXPECT_EQ(zipf.size(), 1u);
  Xoshiro256 rng(1);
  EXPECT_EQ(zipf.sample(rng), 0u);
}

// Property sweep: empirical rank-1 share grows with skew.
class ZipfSkewMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewMonotonic, TopRankShareMatchesTheory) {
  const double s = GetParam();
  ZipfSampler zipf(100, s);
  Xoshiro256 rng(37);
  int top = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) top += zipf.sample(rng) == 0 ? 1 : 0;
  // Theoretical share of rank 1: 1 / H_{100,s}.
  double harmonic = 0;
  for (int r = 1; r <= 100; ++r) harmonic += 1.0 / std::pow(r, s);
  EXPECT_NEAR(static_cast<double>(top) / kN, 1.0 / harmonic, 0.01)
      << "skew=" << s;
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewMonotonic,
                         ::testing::Values(0.5, 0.9, 1.1, 1.5));

}  // namespace
}  // namespace dart
