// Unit tests for byte-order helpers and the BufWriter/BufReader pair.
#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace dart {
namespace {

TEST(Byteswap, Swap16) {
  EXPECT_EQ(byteswap16(0x1234), 0x3412);
  EXPECT_EQ(byteswap16(0x0000), 0x0000);
  EXPECT_EQ(byteswap16(0xFFFF), 0xFFFF);
  EXPECT_EQ(byteswap16(0x00FF), 0xFF00);
}

TEST(Byteswap, Swap32) {
  EXPECT_EQ(byteswap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(byteswap32(0xAABBCCDDu), 0xDDCCBBAAu);
}

TEST(Byteswap, Swap64) {
  EXPECT_EQ(byteswap64(0x0102030405060708ull), 0x0807060504030201ull);
}

TEST(Byteswap, InvolutionProperty) {
  for (std::uint32_t v : {0u, 1u, 0x12345678u, 0xFFFFFFFFu, 0x80000001u}) {
    EXPECT_EQ(byteswap32(byteswap32(v)), v);
  }
}

TEST(HostNet, RoundTrips) {
  EXPECT_EQ(net_to_host16(host_to_net16(0xBEEF)), 0xBEEF);
  EXPECT_EQ(net_to_host32(host_to_net32(0xDEADBEEFu)), 0xDEADBEEFu);
  EXPECT_EQ(net_to_host64(host_to_net64(0x0123456789ABCDEFull)),
            0x0123456789ABCDEFull);
}

TEST(BufWriter, WritesBigEndian) {
  std::vector<std::byte> out;
  BufWriter w(out);
  w.be16(0x1234);
  w.be32(0xAABBCCDDu);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(static_cast<std::uint8_t>(out[0]), 0x12);
  EXPECT_EQ(static_cast<std::uint8_t>(out[1]), 0x34);
  EXPECT_EQ(static_cast<std::uint8_t>(out[2]), 0xAA);
  EXPECT_EQ(static_cast<std::uint8_t>(out[5]), 0xDD);
}

TEST(BufWriter, ZerosAndBytes) {
  std::vector<std::byte> out;
  BufWriter w(out);
  w.zeros(3);
  const std::array<std::byte, 2> data{std::byte{0xAB}, std::byte{0xCD}};
  w.bytes(data);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(static_cast<std::uint8_t>(out[2]), 0x00);
  EXPECT_EQ(static_cast<std::uint8_t>(out[3]), 0xAB);
}

TEST(BufReaderWriter, RoundTripAllWidths) {
  std::vector<std::byte> out;
  BufWriter w(out);
  w.u8(0x42);
  w.be16(0xBEEF);
  w.be32(0xCAFEBABEu);
  w.be64(0x1122334455667788ull);

  BufReader r(out);
  EXPECT_EQ(r.u8(), 0x42);
  EXPECT_EQ(r.be16(), 0xBEEF);
  EXPECT_EQ(r.be32(), 0xCAFEBABEu);
  EXPECT_EQ(r.be64(), 0x1122334455667788ull);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufReader, UnderflowTaintsAndReturnsZero) {
  const std::array<std::byte, 3> data{std::byte{1}, std::byte{2}, std::byte{3}};
  BufReader r(data);
  EXPECT_EQ(r.be16(), 0x0102);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.be32(), 0u);  // only 1 byte left
  EXPECT_FALSE(r.ok());
}

TEST(BufReader, UnderflowIsSticky) {
  BufReader r({});
  (void)r.u8();
  EXPECT_FALSE(r.ok());
  // Reads keep failing; no UB, no throw.
  EXPECT_EQ(r.be64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(BufReader, ViewAndSkip) {
  std::vector<std::byte> out;
  BufWriter w(out);
  w.be32(0x01020304u);
  w.be32(0x05060708u);

  BufReader r(out);
  r.skip(2);
  const auto v = r.view(4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(static_cast<std::uint8_t>(v[0]), 0x03);
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(BufReader, ViewPastEndReturnsEmpty) {
  const std::array<std::byte, 2> data{};
  BufReader r(data);
  EXPECT_TRUE(r.view(3).empty());
  EXPECT_FALSE(r.ok());
}

TEST(BufReader, BytesUnderflowZeroFills) {
  const std::array<std::byte, 2> data{std::byte{0xAA}, std::byte{0xBB}};
  BufReader r(data);
  std::array<std::byte, 4> out{std::byte{0xFF}, std::byte{0xFF},
                               std::byte{0xFF}, std::byte{0xFF}};
  r.bytes(out);
  EXPECT_FALSE(r.ok());
  for (const auto b : out) EXPECT_EQ(static_cast<std::uint8_t>(b), 0x00);
}

TEST(HexDump, FormatsAndTruncates) {
  const std::array<std::byte, 4> data{std::byte{0xDE}, std::byte{0xAD},
                                      std::byte{0xBE}, std::byte{0xEF}};
  EXPECT_EQ(hex_dump(data), "de ad be ef");
  EXPECT_EQ(hex_dump(data, 2), "de ad ...");
}

}  // namespace
}  // namespace dart
