// Tests for the Result/Status error-handling types.
#include "common/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dart {
namespace {

Result<int> parse_positive(int v) {
  if (v <= 0) return Error{"not_positive", "value must be > 0"};
  return v;
}

TEST(Result, OkPath) {
  const auto r = parse_positive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 5);
}

TEST(Result, ErrorPath) {
  const auto r = parse_positive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "not_positive");
  EXPECT_FALSE(r.error().message.empty());
}

TEST(Result, ValueOr) {
  EXPECT_EQ(parse_positive(3).value_or(0), 3);
  EXPECT_EQ(parse_positive(-3).value_or(0), 0);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string(100, 'x'));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 100u);
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, ErrorCarriesCode) {
  const Status s = Error{"boom", "it broke"};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "boom");
}

}  // namespace
}  // namespace dart
