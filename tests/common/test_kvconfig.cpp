// Tests for the key=value config format and DartConfig round trips.
#include "common/kvconfig.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/config_io.hpp"

namespace dart {
namespace {

TEST(KvConfig, ParsesBasicSyntax) {
  const auto cfg = KvConfig::parse(
      "# deployment\n"
      "n_slots = 1048576\n"
      "name=spine-pod-7   # trailing comment\n"
      "\n"
      "ratio = 0.25\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().size(), 3u);
  EXPECT_EQ(cfg.value().get("n_slots"), "1048576");
  EXPECT_EQ(cfg.value().get("name"), "spine-pod-7");
  EXPECT_EQ(cfg.value().get_u64("n_slots"), 1048576u);
  EXPECT_EQ(cfg.value().get_double("ratio"), 0.25);
}

TEST(KvConfig, HexIntegers) {
  const auto cfg = KvConfig::parse("seed = 0xDA27\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().get_u64("seed"), 0xDA27u);
}

TEST(KvConfig, MalformedLineRejectedWithLineNumber) {
  const auto cfg = KvConfig::parse("good = 1\nthis line has no equals\n");
  ASSERT_FALSE(cfg.ok());
  EXPECT_EQ(cfg.error().code, "kv_syntax");
  EXPECT_NE(cfg.error().message.find("line 2"), std::string::npos);
}

TEST(KvConfig, EmptyKeyRejected) {
  EXPECT_FALSE(KvConfig::parse(" = value\n").ok());
}

TEST(KvConfig, MissingAndUnparsableValues) {
  const auto cfg = KvConfig::parse("text = hello\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_FALSE(cfg.value().get("absent").has_value());
  EXPECT_FALSE(cfg.value().get_u64("text").has_value());
  EXPECT_FALSE(cfg.value().get_double("text").has_value());
}

TEST(KvConfig, SetOverwritesAndSerializes) {
  KvConfig cfg;
  cfg.set("a", "1");
  cfg.set("b", "2");
  cfg.set("a", "3");
  EXPECT_EQ(cfg.size(), 2u);
  EXPECT_EQ(cfg.str(), "a = 3\nb = 2\n");
  // Round trip.
  const auto back = KvConfig::parse(cfg.str());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().get("a"), "3");
}

TEST(KvConfig, FileRoundTrip) {
  namespace fs = std::filesystem;
  const auto path =
      (fs::temp_directory_path() / "dart_kv_test.conf").string();
  KvConfig cfg;
  cfg.set("x", "42");
  ASSERT_TRUE(cfg.save(path).ok());
  const auto loaded = KvConfig::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().get_u64("x"), 42u);
  fs::remove(path);
  EXPECT_FALSE(KvConfig::load(path).ok());
}

// --- DartConfig I/O -----------------------------------------------------------

TEST(DartConfigIo, RoundTripPreservesEveryField) {
  core::DartConfig cfg;
  cfg.n_slots = 123456;
  cfg.n_addresses = 4;
  cfg.checksum_bits = 16;
  cfg.value_bytes = 24;
  cfg.master_seed = 0xABCDEF0123ull;
  cfg.write_mode = core::WriteMode::kStochastic;

  const auto kv = core::to_kv(cfg);
  const auto back = core::dart_config_from_kv(kv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().n_slots, cfg.n_slots);
  EXPECT_EQ(back.value().n_addresses, cfg.n_addresses);
  EXPECT_EQ(back.value().checksum_bits, cfg.checksum_bits);
  EXPECT_EQ(back.value().value_bytes, cfg.value_bytes);
  EXPECT_EQ(back.value().master_seed, cfg.master_seed);
  EXPECT_EQ(back.value().write_mode, core::WriteMode::kStochastic);
}

TEST(DartConfigIo, MissingKeysFallBackToDefaults) {
  const auto kv = KvConfig::parse("n_addresses = 4\n");
  ASSERT_TRUE(kv.ok());
  const auto cfg = core::dart_config_from_kv(kv.value());
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().n_addresses, 4u);
  EXPECT_EQ(cfg.value().n_slots, core::DartConfig{}.n_slots);
}

TEST(DartConfigIo, InvalidCombinationRejected) {
  const auto kv = KvConfig::parse("checksum_bits = 48\n");
  ASSERT_TRUE(kv.ok());
  const auto cfg = core::dart_config_from_kv(kv.value());
  ASSERT_FALSE(cfg.ok());
  EXPECT_EQ(cfg.error().code, "config_invalid");
}

TEST(DartConfigIo, BadValueRejected) {
  const auto kv = KvConfig::parse("n_slots = banana\n");
  ASSERT_TRUE(kv.ok());
  EXPECT_FALSE(core::dart_config_from_kv(kv.value()).ok());
  const auto kv2 = KvConfig::parse("write_mode = sometimes\n");
  ASSERT_TRUE(kv2.ok());
  EXPECT_FALSE(core::dart_config_from_kv(kv2.value()).ok());
}

TEST(DartConfigIo, FileRoundTrip) {
  namespace fs = std::filesystem;
  const auto path =
      (fs::temp_directory_path() / "dart_deploy_test.conf").string();
  core::DartConfig cfg;
  cfg.master_seed = 0x5EED;
  ASSERT_TRUE(core::save_dart_config(cfg, path).ok());
  const auto back = core::load_dart_config(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().master_seed, 0x5EEDu);
  fs::remove(path);
}

}  // namespace
}  // namespace dart
