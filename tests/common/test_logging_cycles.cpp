// Coverage for the logging and cycle-accounting utilities.
#include "common/cycles.hpp"
#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace dart {
namespace {

TEST(Logging, LevelRoundTrip) {
  const auto prior = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(prior);
}

TEST(Logging, MacroFiltersBelowThreshold) {
  // No crash and no observable side effect beyond stderr; exercise both the
  // filtered and unfiltered paths.
  const auto prior = log_level();
  set_log_level(LogLevel::kOff);
  DART_LOG_ERROR("test", "must be filtered %d", 1);
  set_log_level(LogLevel::kError);
  DART_LOG_DEBUG("test", "also filtered");
  set_log_level(prior);
  SUCCEED();
}

TEST(Cycles, TscIsMonotonicNondecreasing) {
  std::uint64_t prev = rdtsc();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = rdtsc();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

TEST(Cycles, FrequencyIsPlausible) {
  const double ghz = tsc_ghz();
  EXPECT_GT(ghz, 0.001);  // aarch64 generic timers run at ~25-1000 MHz
  EXPECT_LT(ghz, 10.0);   // no 10 GHz CPUs
  // Cached: second call returns the identical value.
  EXPECT_EQ(tsc_ghz(), ghz);
}

TEST(Cycles, CycleTimerAccumulates) {
  std::uint64_t sink = 0;
  {
    CycleTimer t(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::uint64_t first = sink;
  EXPECT_GT(first, 0u);
  {
    CycleTimer t(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(sink, first);  // accumulates, not overwrites
  // ~2 ms at the measured frequency, within generous bounds.
  const double ns = static_cast<double>(first) / tsc_ghz();
  EXPECT_GT(ns, 1e6);
  EXPECT_LT(ns, 1e9);
}

}  // namespace
}  // namespace dart
