// Randomized parity suite for the CRC-32 and XXH64 kernel stack (SIMD PR).
//
// Three independent CRC implementations — the byte-at-a-time table loop, the
// slicing-by-8 scalar kernel, and the PCLMUL fold-by-4 kernel — must agree
// bit-for-bit on every (state, buffer, length, alignment) combination, and
// the dispatched entry point must agree with all of them no matter which
// backend it picked. Likewise xxhash64_batch and the HashFamily batch entry
// points must be bit-identical to their scalar one-key forms.
//
// The suite runs in tier-1 and again under the sanitizer matrix
// (tools/check_sanitize.sh), which covers it both with SIMD active and with
// DART_NO_SIMD=1 — UBSan then watches the unaligned-head handling directly.
#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "common/random.hpp"

namespace dart {
namespace {

// Deterministic byte soup: every test derives its inputs from SplitMix64 so
// failures reproduce without a seed plumbing layer.
std::vector<std::byte> random_bytes(SplitMix64& rng, std::size_t n) {
  std::vector<std::byte> buf(n);
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t word = rng.next();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      buf[i] = static_cast<std::byte>((word >> (8 * b)) & 0xFF);
    }
  }
  return buf;
}

TEST(CrcParity, BackendReportsItself) {
  // Sanity: the dispatcher resolved to *something* and is self-consistent.
  const auto level = active_simd_level();
  const auto name = simd_backend_name();
  EXPECT_FALSE(name.empty());
  if (level == SimdLevel::kSimd) {
    EXPECT_TRUE(detail::crc32_clmul_usable());
  }
}

// The ISSUE's headline property: 1000 seeded inputs, lengths 0–9000 (biased
// to the fold-by-4 threshold neighborhood), every start alignment 0–15, all
// four kernels in agreement from a random starting state.
TEST(CrcParity, AllKernelsAgreeOnRandomInputs) {
  SplitMix64 rng(0xC4CA'A11DULL);
  const bool clmul = detail::crc32_clmul_usable();
  int clmul_checked = 0;
  for (int c = 0; c < 1000; ++c) {
    // Length mix: short tails, the 16/32/64-byte kernel thresholds, and long
    // multi-block buffers up to 9000 bytes.
    std::size_t len = 0;
    switch (rng.next() % 4) {
      case 0: len = rng.next() % 16; break;
      case 1: len = rng.next() % 80; break;
      case 2: len = 48 + rng.next() % 112; break;
      default: len = rng.next() % 9001; break;
    }
    const std::size_t align = rng.next() % 16;
    const auto backing = random_bytes(rng, len + align);
    const std::byte* p = backing.data() + align;
    const auto state = static_cast<std::uint32_t>(rng.next());

    const auto by_byte = detail::crc32_update_bytewise(state, p, len);
    const auto by_slice = detail::crc32_update_scalar(state, p, len);
    const auto by_dispatch = detail::crc32_update_dispatch(state, p, len);
    ASSERT_EQ(by_byte, by_slice)
        << "len=" << len << " align=" << align << " case=" << c;
    ASSERT_EQ(by_byte, by_dispatch)
        << "len=" << len << " align=" << align << " case=" << c;
    if (clmul) {
      const auto by_clmul = detail::crc32_update_clmul(state, p, len);
      ASSERT_EQ(by_byte, by_clmul)
          << "len=" << len << " align=" << align << " case=" << c;
      ++clmul_checked;
    }
  }
  if (clmul) {
    EXPECT_EQ(clmul_checked, 1000);
  }
}

// Satellite (b): Crc32::update must consume an unaligned head byte-wise
// before switching to 8-byte slicing steps. Start the same logical stream at
// every offset 0–15 within an over-aligned buffer and in byte-dribbled
// chunks; the digest may not depend on placement or chunking. Under UBSan
// (sanitizer matrix) this also proves the slicing loop never does a
// misaligned wide load.
TEST(CrcParity, HeadAlignmentAndChunkingInvariance) {
  SplitMix64 rng(0xA116'0FF5ULL);
  constexpr std::size_t kLen = 300;
  const auto data = random_bytes(rng, kLen);
  const std::uint32_t want = crc32(data);

  for (std::size_t off = 0; off < 16; ++off) {
    alignas(64) std::array<std::byte, kLen + 64> shifted{};
    std::memcpy(shifted.data() + off, data.data(), kLen);

    Crc32 one_shot;
    one_shot.update({shifted.data() + off, kLen});
    EXPECT_EQ(one_shot.value(), want) << "offset " << off;

    Crc32 dribbled;  // 1..7-byte chunks: every head-fixup path
    std::size_t i = 0;
    std::uint64_t step = 1;
    while (i < kLen) {
      const std::size_t n = std::min<std::size_t>(1 + step % 7, kLen - i);
      dribbled.update({shifted.data() + off + i, n});
      i += n;
      ++step;
    }
    EXPECT_EQ(dribbled.value(), want) << "offset " << off;
  }
}

// Streaming in two parts from any split point equals one-shot — the
// associativity the fused RNIC classifier's single-buffer iCRC relies on.
TEST(CrcParity, SplitStreamingMatchesOneShot) {
  SplitMix64 rng(0x5611'7EEDULL);
  const auto data = random_bytes(rng, 600);
  const std::uint32_t want = crc32(data);
  for (std::size_t split = 0; split <= data.size(); split += 37) {
    Crc32 s;
    s.update({data.data(), split});
    s.update({data.data() + split, data.size() - split});
    EXPECT_EQ(s.value(), want) << "split " << split;
  }
}

// --- XXH64 batch kernels -----------------------------------------------------

TEST(XxBatchParity, StridedKeysMatchScalar) {
  SplitMix64 rng(0xBA7C'4A54ULL);
  for (int c = 0; c < 200; ++c) {
    const std::size_t count = rng.next() % 40;           // crosses the 4-lane step
    const std::size_t key_len = 1 + rng.next() % 24;     // 8 hits the AVX2 lane
    const std::size_t stride = key_len + rng.next() % 9;
    const auto backing = random_bytes(rng, count * stride + key_len);
    std::vector<std::uint64_t> seeds(count), got(count);
    for (auto& s : seeds) s = rng.next();

    xxhash64_batch(backing.data(), key_len, stride, count, seeds.data(),
                   got.data());
    for (std::size_t i = 0; i < count; ++i) {
      const auto want =
          xxhash64({backing.data() + i * stride, key_len}, seeds[i]);
      ASSERT_EQ(got[i], want)
          << "key " << i << " len=" << key_len << " case=" << c;
    }
  }
}

TEST(XxBatchParity, OneKeyManySeeds) {
  SplitMix64 rng(0x0E'5EEDULL);
  const auto key = random_bytes(rng, 8);
  std::array<std::uint64_t, 13> seeds{}, got{};
  for (auto& s : seeds) s = rng.next();
  xxhash64_batch(key.data(), key.size(), /*stride=*/0, seeds.size(),
                 seeds.data(), got.data());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(got[i], xxhash64(key, seeds[i])) << "seed " << i;
  }
}

TEST(HashFamilyBatch, AddressesOfMatchesAddressOf) {
  const HashFamily family(/*n_addresses=*/7, /*master_seed=*/0xFEED);
  SplitMix64 rng(0xADD2'E55ULL);
  for (int c = 0; c < 100; ++c) {
    const auto key = random_bytes(rng, 1 + rng.next() % 16);
    const std::uint64_t n_slots = 1 + rng.next() % 5000;
    std::array<std::uint64_t, 7> got{};
    family.addresses_of(key, n_slots, got);
    for (std::uint32_t n = 0; n < got.size(); ++n) {
      ASSERT_EQ(got[n], family.address_of(key, n, n_slots)) << "copy " << n;
    }
  }
}

TEST(HashFamilyBatch, AddressOfBatchMatchesPerKey) {
  const HashFamily family(/*n_addresses=*/4, /*master_seed=*/0xFEED);
  SplitMix64 rng(0xBB5'7ULL);
  const std::size_t count = 37;
  const auto keys = random_bytes(rng, count * 8);
  std::vector<std::uint32_t> ns(count);
  for (auto& n : ns) n = static_cast<std::uint32_t>(rng.next() % 4);
  std::vector<std::uint64_t> got(count);
  family.address_of_batch(keys.data(), /*key_len=*/8, /*stride=*/8,
                          ns, /*n_slots=*/4096, got.data());
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(got[i],
              family.address_of({keys.data() + i * 8, 8}, ns[i], 4096))
        << "key " << i;
  }
}

TEST(HashFamilyBatch, CollectorsOfMatchesCollectorOf) {
  const HashFamily family(/*n_addresses=*/2, /*master_seed=*/0xFEED);
  SplitMix64 rng(0xC011'EC7ULL);
  const std::size_t count = 41;
  const auto keys = random_bytes(rng, count * 8);
  for (const std::uint32_t n_collectors : {0u, 1u, 3u, 64u}) {
    std::vector<std::uint32_t> got(count);
    family.collectors_of(keys.data(), /*key_len=*/8, /*stride=*/8, count,
                         n_collectors, got.data());
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(got[i],
                family.collector_of({keys.data() + i * 8, 8}, n_collectors))
          << "key " << i << " n_collectors " << n_collectors;
    }
  }
}

}  // namespace
}  // namespace dart
