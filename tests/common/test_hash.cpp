// Tests for xxhash64, CRC-32/CRC-16, and the HashFamily that implements
// DART's stateless key→(collector, address, checksum) mapping.
#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

namespace dart {
namespace {

std::span<const std::byte> bytes_of(const std::string& s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

// --- xxhash64: known-answer vectors (canonical XXH64) -----------------------

TEST(XxHash64, KnownAnswerEmpty) {
  EXPECT_EQ(xxhash64(std::span<const std::byte>{}, 0),
            0xEF46DB3751D8E999ull);
}

TEST(XxHash64, SeedPerturbsEmptyInput) {
  EXPECT_NE(xxhash64(std::span<const std::byte>{}, 1),
            xxhash64(std::span<const std::byte>{}, 0));
}

TEST(XxHash64, KnownAnswerShortString) {
  // Canonical XXH64 of "a" / "abc" with seed 0.
  EXPECT_EQ(xxhash64(std::string_view{"a"}, 0), 0xD24EC4F1A98C6E5Bull);
  EXPECT_EQ(xxhash64(std::string_view{"abc"}, 0), 0x44BC2CF5AD770999ull);
}

TEST(XxHash64, KnownAnswerLongInput) {
  // 32+ bytes exercises the 4-lane main loop.
  const std::string s = "xxhash64 is a fast non-cryptographic hash function!";
  ASSERT_GT(s.size(), 32u);
  // Self-consistency across chunk boundaries is implied by the known-answer
  // short vectors plus determinism; pin the value to catch regressions.
  const std::uint64_t v = xxhash64(bytes_of(s), 0);
  EXPECT_EQ(v, xxhash64(bytes_of(s), 0));
  EXPECT_NE(v, xxhash64(bytes_of(s), 1));
}

TEST(XxHash64, SeedChangesValue) {
  const std::string s = "key";
  EXPECT_NE(xxhash64(bytes_of(s), 1), xxhash64(bytes_of(s), 2));
}

TEST(XxHash64, AllLengthsDiffer) {
  // Hashes of prefixes of a buffer should (essentially always) differ —
  // exercises the tail-handling paths for every length mod 32.
  std::vector<std::byte> buf(70);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i * 37 + 11);
  }
  std::vector<std::uint64_t> seen;
  for (std::size_t len = 0; len <= buf.size(); ++len) {
    const auto h = xxhash64(std::span{buf.data(), len}, 7);
    for (const auto prev : seen) EXPECT_NE(h, prev) << "len=" << len;
    seen.push_back(h);
  }
}

TEST(XxHash64, TriviallyCopyableOverload) {
  struct Key {
    std::uint32_t a;
    std::uint32_t b;
  };
  const Key k{1, 2};
  std::array<std::byte, sizeof(Key)> raw;
  std::memcpy(raw.data(), &k, sizeof(Key));
  EXPECT_EQ(xxhash64_of(k, 5), xxhash64(raw, 5));
}

// --- CRC-32 ------------------------------------------------------------------

TEST(Crc32, KnownAnswer123456789) {
  // The universal CRC-32/IEEE check value.
  const std::string s = "123456789";
  EXPECT_EQ(crc32(bytes_of(s)), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0x00000000u); }

TEST(Crc32, StreamingMatchesOneShot) {
  const std::string s = "direct telemetry access";
  Crc32 c;
  const auto b = bytes_of(s);
  c.update(b.first(7));
  c.update(b.subspan(7));
  EXPECT_EQ(c.value(), crc32(b));
}

TEST(Crc32, ResetRestoresInitialState) {
  Crc32 c;
  c.update(bytes_of(std::string{"junk"}));
  c.reset();
  c.update(bytes_of(std::string{"123456789"}));
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Crc16, KnownAnswer123456789) {
  // CRC-16/CCITT-FALSE check value.
  const std::string s = "123456789";
  EXPECT_EQ(crc16_ccitt(bytes_of(s)), 0x29B1);
}

// --- sliced CRC vs bit-wise reference ----------------------------------------
//
// The production CRC-32 runs slicing-by-8 and the CRC-16 is table-driven;
// these references compute the same polynomials bit by bit, so any table or
// tail-handling bug in the fast paths shows up as a mismatch.

std::uint32_t crc32_reference(std::span<const std::byte> data) {
  std::uint32_t crc = 0xFFFF'FFFFu;
  for (const std::byte b : data) {
    crc ^= static_cast<std::uint8_t>(b);
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1u) ? (0xEDB8'8320u ^ (crc >> 1)) : (crc >> 1);
    }
  }
  return ~crc;
}

std::uint16_t crc16_reference(std::span<const std::byte> data) {
  std::uint16_t crc = 0xFFFF;
  for (const std::byte b : data) {
    crc ^= static_cast<std::uint16_t>(static_cast<std::uint8_t>(b) << 8);
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 0x8000u) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
                            : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

// Deterministic byte pattern with no structure the tables could hide behind.
std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> out(n);
  std::uint64_t x = seed * 0x9E37'79B9'7F4A'7C15ull + 0x5DEE'CE66Dull;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<std::byte>(x & 0xFF);
  }
  return out;
}

TEST(Crc32, SlicedMatchesReferenceAllShortLengths) {
  // Lengths 0..64 cover every (8-byte blocks, tail) combination at least
  // eight times over.
  const auto buf = pattern_bytes(64, 1);
  for (std::size_t len = 0; len <= buf.size(); ++len) {
    EXPECT_EQ(crc32(std::span{buf.data(), len}),
              crc32_reference(std::span{buf.data(), len}))
        << "len=" << len;
  }
}

TEST(Crc32, SlicedMatchesReferenceRandomLengthsAndAlignments) {
  const auto buf = pattern_bytes(512, 2);
  std::uint64_t x = 42;
  for (int round = 0; round < 200; ++round) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t off = (x >> 33) % 16;  // misalign the window start
    const std::size_t max_len = buf.size() - off;
    const std::size_t len = (x >> 17) % (max_len + 1);
    const std::span<const std::byte> window{buf.data() + off, len};
    EXPECT_EQ(crc32(window), crc32_reference(window))
        << "off=" << off << " len=" << len;
  }
}

TEST(Crc32, StreamingSplitsMatchOneShotAroundBlockBoundary) {
  // Splitting mid-block forces the byte-wise tail on the first update and a
  // fresh block start on the second — state hand-off must be exact.
  const auto buf = pattern_bytes(48, 3);
  const std::uint32_t expect = crc32(buf);
  for (std::size_t split = 0; split <= buf.size(); ++split) {
    Crc32 c;
    c.update(std::span{buf.data(), split});
    c.update(std::span{buf.data() + split, buf.size() - split});
    EXPECT_EQ(c.value(), expect) << "split=" << split;
  }
}

TEST(Crc32, UpdateByteMatchesBulkUpdate) {
  const auto buf = pattern_bytes(37, 4);
  Crc32 bytewise;
  for (const std::byte b : buf) {
    bytewise.update_byte(static_cast<std::uint8_t>(b));
  }
  EXPECT_EQ(bytewise.value(), crc32(buf));
}

TEST(Crc16, TableMatchesReferenceAllShortLengths) {
  const auto buf = pattern_bytes(64, 5);
  for (std::size_t len = 0; len <= buf.size(); ++len) {
    EXPECT_EQ(crc16_ccitt(std::span{buf.data(), len}),
              crc16_reference(std::span{buf.data(), len}))
        << "len=" << len;
  }
}

TEST(Crc16, TableMatchesReferenceRandomWindows) {
  const auto buf = pattern_bytes(256, 6);
  std::uint64_t x = 99;
  for (int round = 0; round < 100; ++round) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t off = (x >> 33) % 32;
    const std::size_t len = (x >> 17) % (buf.size() - off + 1);
    const std::span<const std::byte> window{buf.data() + off, len};
    EXPECT_EQ(crc16_ccitt(window), crc16_reference(window))
        << "off=" << off << " len=" << len;
  }
}

// --- HashFamily ---------------------------------------------------------------

TEST(HashFamily, DeterministicAcrossInstances) {
  // Two independently constructed families with the same parameters (a
  // switch and a query client) must agree on every mapping — the stateless
  // property §3.1 depends on.
  const HashFamily a(4, 0xDA27);
  const HashFamily b(4, 0xDA27);
  const std::string key = "flow-12345";
  const auto kb = bytes_of(key);
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(a.address_of(kb, n, 1 << 20), b.address_of(kb, n, 1 << 20));
  }
  EXPECT_EQ(a.collector_of(kb, 64), b.collector_of(kb, 64));
  EXPECT_EQ(a.checksum_of(kb, 32), b.checksum_of(kb, 32));
}

TEST(HashFamily, DifferentSeedsDiverge) {
  const HashFamily a(2, 1);
  const HashFamily b(2, 2);
  const std::string key = "flow";
  int diffs = 0;
  for (std::uint32_t n = 0; n < 2; ++n) {
    if (a.address_of(bytes_of(key), n, 1 << 30) !=
        b.address_of(bytes_of(key), n, 1 << 30)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(HashFamily, CopiesAreIndependentHashes) {
  // h_0 and h_1 of the same key should look unrelated.
  const HashFamily fam(8, 99);
  const std::string key = "some key";
  std::vector<std::uint64_t> addrs;
  for (std::uint32_t n = 0; n < 8; ++n) {
    addrs.push_back(fam.address_of(bytes_of(key), n, 1ull << 40));
  }
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    for (std::size_t j = i + 1; j < addrs.size(); ++j) {
      EXPECT_NE(addrs[i], addrs[j]);
    }
  }
}

TEST(HashFamily, AddressInRange) {
  const HashFamily fam(3, 7);
  for (std::uint64_t m : {1ull, 2ull, 17ull, 1000003ull}) {
    for (int i = 0; i < 50; ++i) {
      const std::string key = "k" + std::to_string(i);
      for (std::uint32_t n = 0; n < 3; ++n) {
        EXPECT_LT(fam.address_of(bytes_of(key), n, m), m);
      }
    }
  }
}

TEST(HashFamily, ChecksumRespectsWidth) {
  const HashFamily fam(1, 3);
  for (std::uint32_t bits = 1; bits <= 32; ++bits) {
    const std::string key = "abcdef";
    const std::uint32_t c = fam.checksum_of(bytes_of(key), bits);
    EXPECT_EQ(c & ~checksum_mask(bits), 0u) << "bits=" << bits;
  }
}

TEST(HashFamily, ChecksumIsMaskedCrc32) {
  const HashFamily fam(1, 3);
  const std::string key = "abcdef";
  const std::uint32_t full = crc32(bytes_of(key));
  EXPECT_EQ(fam.checksum_of(bytes_of(key), 32), full);
  EXPECT_EQ(fam.checksum_of(bytes_of(key), 8), full & 0xFF);
}

TEST(HashFamily, ZeroAddressesClampedToOne) {
  const HashFamily fam(0, 1);
  EXPECT_EQ(fam.n_addresses(), 1u);
}

TEST(HashFamily, SingleCollectorAlwaysZero) {
  const HashFamily fam(2, 5);
  const std::string key = "x";
  EXPECT_EQ(fam.collector_of(bytes_of(key), 1), 0u);
  EXPECT_EQ(fam.collector_of(bytes_of(key), 0), 0u);
}

// Property sweep: address distribution over slots should be near-uniform.
class HashUniformity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HashUniformity, ChiSquareWithinBounds) {
  const std::uint32_t n_copy = GetParam();
  const HashFamily fam(n_copy + 1, 0xFEED);
  constexpr std::uint64_t kBuckets = 64;
  constexpr std::uint64_t kKeys = 64000;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    std::uint64_t raw = i;
    const auto key = std::as_bytes(std::span{&raw, 1});
    ++counts[fam.address_of(key, n_copy, kBuckets)];
  }
  const double expected = static_cast<double>(kKeys) / kBuckets;
  double chi2 = 0;
  for (const auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // 63 degrees of freedom; 99.9th percentile ≈ 103. Allow generous slack.
  EXPECT_LT(chi2, 120.0) << "copy index " << n_copy;
}

INSTANTIATE_TEST_SUITE_P(AllCopyIndices, HashUniformity,
                         ::testing::Values(0u, 1u, 2u, 3u));

// Regression: per-index seeds must be pairwise distinct for EVERY master
// seed, including degenerate ones like 0 — identical seeds would collapse a
// key's N "independent" addresses into one and silently void the §4
// redundancy analysis.
TEST(HashFamily, AddressSeedsPairwiseDistinct) {
  const std::uint64_t masters[] = {0ull,
                                   1ull,
                                   0xDA27'0000'0001ull,
                                   0xFFFF'FFFF'FFFF'FFFFull,
                                   0x9E37'79B9'7F4A'7C15ull,
                                   42ull};
  for (const auto master : masters) {
    for (std::uint32_t n = 1; n <= 16; ++n) {
      const HashFamily fam(n, master);
      const auto seeds = fam.address_seeds();
      ASSERT_EQ(seeds.size(), n);
      for (std::size_t i = 0; i < seeds.size(); ++i) {
        for (std::size_t j = i + 1; j < seeds.size(); ++j) {
          EXPECT_NE(seeds[i], seeds[j])
              << "master=" << master << " n=" << n << " (i=" << i
              << ", j=" << j << ")";
        }
      }
    }
  }
}

TEST(HashFamily, DistinctSeedsYieldDistinctAddressStreams) {
  // The behavioural consequence: with M ≫ 1, copy 0 and copy 1 of the same
  // key must not land on the same slot for every key (the symptom a
  // degenerate family would show).
  const HashFamily fam(2, /*master_seed=*/0);
  constexpr std::uint64_t kSlots = 1 << 16;
  int same = 0;
  for (std::uint64_t k = 0; k < 512; ++k) {
    const auto key = std::as_bytes(std::span{&k, 1});
    same += fam.address_of(key, 0, kSlots) == fam.address_of(key, 1, kSlots);
  }
  EXPECT_LT(same, 5);  // expected ≈ 512/2^16 collisions, not 512
}

}  // namespace
}  // namespace dart
