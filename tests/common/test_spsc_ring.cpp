// Tests for the lock-free building blocks under the ingest pipeline: the
// SPSC ring, the seqlock, and the relaxed stats counter.
#include "common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "common/atomic_counter.hpp"
#include "common/seqlock.hpp"

namespace dart {
namespace {

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_FALSE(ring.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);  // rounds to 8
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_FALSE(ring.try_push(8));
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(std::uint64_t(i)));
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i);
  }
}

TEST(SpscRing, ProducerConsumerTransfersEverythingInOrder) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kItems = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(std::uint64_t(i))) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t item = 0;
  while (expected < kItems) {
    if (ring.try_pop(item)) {
      ASSERT_EQ(item, expected);  // FIFO, no loss, no duplication
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

TEST(SpscRing, PushNPartialWhenNearlyFull) {
  SpscRing<int> ring(8);
  std::vector<int> first{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.try_push_n(std::span{first}), 6u);
  std::vector<int> second{6, 7, 8, 9};  // only 2 slots left
  EXPECT_EQ(ring.try_push_n(std::span{second}), 2u);
  std::vector<int> third{99};
  EXPECT_EQ(ring.try_push_n(std::span{third}), 0u);  // full
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscRing, PopNPartialWhenNearlyEmpty) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(int(i)));
  std::vector<int> out(8, -1);
  EXPECT_EQ(ring.try_pop_n(std::span{out}), 3u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], 2);
  EXPECT_EQ(ring.try_pop_n(std::span{out}), 0u);  // empty
}

TEST(SpscRing, BatchOpsInterleaveWithSingleOpsFifo) {
  SpscRing<int> ring(16);
  int next_in = 0;
  int next_out = 0;
  std::vector<int> batch(5);
  std::vector<int> popped(5);
  // Mix batch and single push/pop across several wrap-arounds; order and
  // completeness must be indistinguishable from all-singles.
  for (int round = 0; round < 50; ++round) {
    for (auto& v : batch) v = next_in++;
    ASSERT_EQ(ring.try_push_n(std::span{batch}), batch.size());
    ASSERT_TRUE(ring.try_push(int(next_in)));
    ++next_in;
    int single = -1;
    ASSERT_TRUE(ring.try_pop(single));
    ASSERT_EQ(single, next_out++);
    ASSERT_EQ(ring.try_pop_n(std::span{popped}), popped.size());
    for (const int v : popped) ASSERT_EQ(v, next_out++);
  }
  // Drain the remainder.
  int out = -1;
  while (ring.try_pop(out)) ASSERT_EQ(out, next_out++);
  EXPECT_EQ(next_out, next_in);
}

TEST(SpscRing, BatchedProducerConsumerTransfersEverythingInOrder) {
  // The TSan gate runs this: one producer pushing mixed batch/single, one
  // consumer draining with try_pop_n — the exact access pattern the batched
  // ingest pipeline uses.
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kItems = 200000;
  std::thread producer([&] {
    std::uint64_t next = 0;
    std::vector<std::uint64_t> batch;
    while (next < kItems) {
      if (next % 3 == 0 && kItems - next >= 7) {
        batch.clear();
        for (int i = 0; i < 7; ++i) batch.push_back(next + i);
        std::span<std::uint64_t> pending{batch};
        while (!pending.empty()) {
          const std::size_t pushed = ring.try_push_n(pending);
          pending = pending.subspan(pushed);
          if (pushed == 0) std::this_thread::yield();
        }
        next += 7;
      } else {
        while (!ring.try_push(std::uint64_t(next))) std::this_thread::yield();
        ++next;
      }
    }
  });
  std::uint64_t expected = 0;
  std::vector<std::uint64_t> out(13);
  while (expected < kItems) {
    const std::size_t k = ring.try_pop_n(std::span{out});
    if (k == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(out[i], expected);  // FIFO, no loss, no duplication
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

TEST(SeqCount, ReadersRetryAcrossWrites) {
  SeqCount seq;
  // Two fields with the invariant a == b, updated under the seqlock.
  std::atomic<std::uint64_t> a{0}, b{0};
  constexpr std::uint64_t kWrites = 100000;
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= kWrites; ++i) {
      seq.write_begin();
      a.store(i, std::memory_order_relaxed);
      b.store(i, std::memory_order_relaxed);
      seq.write_end();
    }
  });
  std::uint64_t last = 0;
  while (last < kWrites) {
    const auto pair = seq_read(seq, [&] {
      return std::pair{a.load(std::memory_order_relaxed),
                       b.load(std::memory_order_relaxed)};
    });
    ASSERT_EQ(pair.first, pair.second) << "torn read";
    ASSERT_GE(pair.first, last);
    last = pair.first;
  }
  writer.join();
  EXPECT_EQ(seq.generation(), 2 * kWrites);  // even: no write in flight
}

TEST(RelaxedCounter, ConcurrentIncrementsAllLand) {
  RelaxedCounter counter;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kEach = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kEach; ++i) ++counter;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), kThreads * kEach);
}

TEST(RelaxedCounter, CopySnapshotsValue) {
  RelaxedCounter counter;
  counter += 41;
  ++counter;
  const RelaxedCounter snapshot = counter;
  EXPECT_EQ(snapshot, 42u);
  EXPECT_EQ(static_cast<std::uint64_t>(snapshot), 42u);
}

}  // namespace
}  // namespace dart
