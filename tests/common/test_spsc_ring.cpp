// Tests for the lock-free building blocks under the ingest pipeline: the
// SPSC ring, the seqlock, and the relaxed stats counter.
#include "common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/atomic_counter.hpp"
#include "common/seqlock.hpp"

namespace dart {
namespace {

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_FALSE(ring.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);  // rounds to 8
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_FALSE(ring.try_push(8));
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(std::uint64_t(i)));
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i);
  }
}

TEST(SpscRing, ProducerConsumerTransfersEverythingInOrder) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kItems = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(std::uint64_t(i))) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t item = 0;
  while (expected < kItems) {
    if (ring.try_pop(item)) {
      ASSERT_EQ(item, expected);  // FIFO, no loss, no duplication
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

TEST(SeqCount, ReadersRetryAcrossWrites) {
  SeqCount seq;
  // Two fields with the invariant a == b, updated under the seqlock.
  std::atomic<std::uint64_t> a{0}, b{0};
  constexpr std::uint64_t kWrites = 100000;
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= kWrites; ++i) {
      seq.write_begin();
      a.store(i, std::memory_order_relaxed);
      b.store(i, std::memory_order_relaxed);
      seq.write_end();
    }
  });
  std::uint64_t last = 0;
  while (last < kWrites) {
    const auto pair = seq_read(seq, [&] {
      return std::pair{a.load(std::memory_order_relaxed),
                       b.load(std::memory_order_relaxed)};
    });
    ASSERT_EQ(pair.first, pair.second) << "torn read";
    ASSERT_GE(pair.first, last);
    last = pair.first;
  }
  writer.join();
  EXPECT_EQ(seq.generation(), 2 * kWrites);  // even: no write in flight
}

TEST(RelaxedCounter, ConcurrentIncrementsAllLand) {
  RelaxedCounter counter;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kEach = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kEach; ++i) ++counter;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), kThreads * kEach);
}

TEST(RelaxedCounter, CopySnapshotsValue) {
  RelaxedCounter counter;
  counter += 41;
  ++counter;
  const RelaxedCounter snapshot = counter;
  EXPECT_EQ(snapshot, 42u);
  EXPECT_EQ(static_cast<std::uint64_t>(snapshot), 42u);
}

}  // namespace
}  // namespace dart
