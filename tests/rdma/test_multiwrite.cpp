// Tests for the §7 DTA multiwrite extension: wire format, RNIC execution,
// all-or-nothing semantics, and equivalence with N separate RDMA writes.
#include "rdma/multiwrite.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/collector.hpp"
#include "core/report_crafter.hpp"
#include "rdma/rnic.hpp"

namespace dart::rdma {
namespace {

std::vector<std::byte> payload_of(std::size_t n, std::uint8_t fill) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

TEST(Multiwrite, EncodeParseRoundTrip) {
  const auto payload = payload_of(24, 0x42);
  const std::vector<std::uint64_t> vaddrs{0x1000, 0x2000, 0x3000};
  const auto wire = encode_multiwrite(0xCAFE, 7, vaddrs, payload);

  const auto mw = parse_multiwrite(wire);
  ASSERT_TRUE(mw.has_value());
  EXPECT_EQ(mw->rkey, 0xCAFEu);
  EXPECT_EQ(mw->psn, 7u);
  EXPECT_EQ(mw->vaddrs, vaddrs);
  ASSERT_EQ(mw->payload.size(), 24u);
  EXPECT_EQ(static_cast<std::uint8_t>(mw->payload[0]), 0x42);
}

TEST(Multiwrite, CrcCorruptionRejected) {
  auto wire = encode_multiwrite(1, 0, std::vector<std::uint64_t>{0x10},
                                payload_of(8, 1));
  wire[6] ^= std::byte{0x01};
  EXPECT_FALSE(parse_multiwrite(wire).has_value());
}

TEST(Multiwrite, BadCountsRejected) {
  // Zero targets.
  auto wire = encode_multiwrite(1, 0, {}, payload_of(8, 1));
  EXPECT_FALSE(parse_multiwrite(wire).has_value());
  // Too many targets.
  std::vector<std::uint64_t> many(kDtaMaxTargets + 1, 0x100);
  wire = encode_multiwrite(1, 0, many, payload_of(8, 1));
  EXPECT_FALSE(parse_multiwrite(wire).has_value());
}

TEST(Multiwrite, TruncatedRejected) {
  auto wire = encode_multiwrite(1, 0, std::vector<std::uint64_t>{0x10},
                                payload_of(8, 1));
  wire.resize(wire.size() - 6);
  EXPECT_FALSE(parse_multiwrite(wire).has_value());
}

// Fuzz-style robustness: every prefix of a valid frame must be rejected
// cleanly. Before the length guards, frames shorter than the CRC trailer
// underflowed the `size() - 4` subspan arithmetic.
TEST(Multiwrite, EveryTruncationRejectedWithoutCrash) {
  const auto wire = encode_multiwrite(
      0xCAFE, 9, std::vector<std::uint64_t>{0x1000, 0x2000, 0x3000},
      payload_of(24, 0x42));
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto prefix = std::span<const std::byte>(wire.data(), len);
    EXPECT_FALSE(parse_multiwrite(prefix).has_value()) << "prefix len " << len;
  }
  // The only accepted length is the exact frame.
  EXPECT_TRUE(parse_multiwrite(wire).has_value());
}

TEST(Multiwrite, TinyFramesRejected) {
  // 0..3 bytes: shorter than the CRC trailer alone.
  for (std::size_t len = 0; len < 4; ++len) {
    const std::vector<std::byte> junk(len, std::byte{0xFF});
    EXPECT_FALSE(parse_multiwrite(junk).has_value()) << "len " << len;
  }
}

TEST(Multiwrite, EverySingleByteFlipRejected) {
  // Any one-byte corruption breaks the CRC, so no flipped frame may parse
  // (and none may crash — lying count/data_len fields are the interesting
  // cases, and the CRC check must not be reachable with bad geometry).
  const auto wire = encode_multiwrite(
      0x1234, 3, std::vector<std::uint64_t>{0xA000, 0xB000}, payload_of(8, 7));
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (const std::uint8_t bit : {0x01, 0x80}) {
      auto mutant = wire;
      mutant[i] ^= static_cast<std::byte>(bit);
      EXPECT_FALSE(parse_multiwrite(mutant).has_value())
          << "byte " << i << " bit " << int(bit);
    }
  }
}

TEST(Multiwrite, LyingDataLengthRejected) {
  // Re-seal the CRC after inflating data_len so the parser reaches the
  // geometry checks: the declared data no longer fits the frame.
  auto body = encode_multiwrite(1, 0, std::vector<std::uint64_t>{0x10},
                                payload_of(8, 1));
  body.resize(body.size() - kDtaCrcLen);  // strip trailer
  body[12] = std::byte{0xFF};             // data_len big-endian high byte
  body[13] = std::byte{0xFF};
  const std::uint32_t crc = dart::crc32(body);
  for (int i = 0; i < 4; ++i) {
    body.push_back(static_cast<std::byte>((crc >> (8 * i)) & 0xFF));
  }
  EXPECT_FALSE(parse_multiwrite(body).has_value());
}

TEST(Multiwrite, ZeroDataLengthRejected) {
  auto body = encode_multiwrite(1, 0, std::vector<std::uint64_t>{0x10},
                                payload_of(8, 1));
  body.resize(body.size() - kDtaCrcLen);
  body[12] = std::byte{0};  // data_len := 0 (reports always carry data)
  body[13] = std::byte{0};
  const std::uint32_t crc = dart::crc32(body);
  for (int i = 0; i < 4; ++i) {
    body.push_back(static_cast<std::byte>((crc >> (8 * i)) & 0xFF));
  }
  EXPECT_FALSE(parse_multiwrite(body).has_value());
}

TEST(Multiwrite, FrameBytesSavingsFormula) {
  // 24 B slot payload, N=4: one multiwrite vs four RoCEv2 writes.
  const std::size_t dta = multiwrite_frame_bytes(4, 24);
  const std::size_t roce = 4 * roce_write_frame_bytes(24);
  EXPECT_LT(dta, roce / 3);  // >3x wire saving
}

// --- through the RNIC --------------------------------------------------------

class MultiwriteRnic : public ::testing::Test {
 protected:
  void SetUp() override {
    memory_.resize(4096);
    pd_ = rnic_.alloc_pd();
    auto mr = rnic_.register_mr(pd_, memory_, kBase, Access::kRemoteWrite);
    ASSERT_TRUE(mr.ok());
    rkey_ = mr.value().rkey;
    rnic_.set_dta_multiwrite(true);
  }

  std::vector<std::byte> frame(std::uint32_t rkey,
                               std::span<const std::uint64_t> vaddrs,
                               std::span<const std::byte> payload) {
    net::UdpFrameSpec spec;
    spec.src_ip = net::Ipv4Addr::from_octets(10, 0, 0, 1);
    spec.dst_ip = net::Ipv4Addr::from_octets(10, 0, 0, 2);
    spec.dst_port = kDtaUdpPort;
    return net::build_udp_frame(spec,
                                encode_multiwrite(rkey, 0, vaddrs, payload));
  }

  static constexpr std::uint64_t kBase = 0x4000'0000ull;
  SimulatedRnic rnic_;
  std::vector<std::byte> memory_;
  PdHandle pd_{};
  std::uint32_t rkey_ = 0;
};

TEST_F(MultiwriteRnic, OneFrameWritesAllTargets) {
  const auto payload = payload_of(16, 0xEE);
  const std::vector<std::uint64_t> vaddrs{kBase + 0, kBase + 512, kBase + 1024};
  const auto c = rnic_.process_frame(frame(rkey_, vaddrs, payload));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(rnic_.counters().multiwrite_frames, 1u);
  EXPECT_EQ(rnic_.counters().writes, 3u);
  for (const auto vaddr : vaddrs) {
    EXPECT_EQ(static_cast<std::uint8_t>(memory_[vaddr - kBase]), 0xEE);
    EXPECT_EQ(static_cast<std::uint8_t>(memory_[vaddr - kBase + 15]), 0xEE);
  }
}

TEST_F(MultiwriteRnic, DisabledExtensionIgnoresFrames) {
  rnic_.set_dta_multiwrite(false);
  const auto payload = payload_of(8, 1);
  const std::vector<std::uint64_t> vaddrs{kBase};
  EXPECT_FALSE(rnic_.process_frame(frame(rkey_, vaddrs, payload)).has_value());
  EXPECT_EQ(rnic_.counters().not_roce, 1u);
  EXPECT_EQ(static_cast<std::uint8_t>(memory_[0]), 0);
}

TEST_F(MultiwriteRnic, AllOrNothingOnBadTarget) {
  const auto payload = payload_of(16, 0x77);
  // Second target out of bounds: nothing may be written.
  const std::vector<std::uint64_t> vaddrs{kBase + 0, kBase + 4090};
  EXPECT_FALSE(rnic_.process_frame(frame(rkey_, vaddrs, payload)).has_value());
  EXPECT_EQ(rnic_.counters().out_of_bounds, 1u);
  EXPECT_EQ(static_cast<std::uint8_t>(memory_[0]), 0);
}

TEST_F(MultiwriteRnic, BadRkeyRejected) {
  const auto payload = payload_of(8, 1);
  const std::vector<std::uint64_t> vaddrs{kBase};
  EXPECT_FALSE(
      rnic_.process_frame(frame(0xBAD, vaddrs, payload)).has_value());
  EXPECT_EQ(rnic_.counters().bad_rkey, 1u);
}

// --- end-to-end with crafter + collector + query ------------------------------

TEST(MultiwriteEndToEnd, SwitchPipelineSingleFrameFillsAllSlots) {
  core::DartConfig cfg;
  cfg.n_slots = 4096;
  cfg.n_addresses = 4;
  cfg.value_bytes = 20;
  cfg.master_seed = 0xD7A;
  const core::CollectorEndpoint ep{{2, 0, 0, 0, 0, 1},
                                   net::Ipv4Addr::from_octets(10, 0, 100, 1)};
  core::Collector collector(cfg, 0, ep);
  collector.rnic().set_dta_multiwrite(true);

  const core::ReportCrafter crafter(cfg);
  core::ReporterEndpoint src;
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);

  const std::string key = "multi-key";
  const auto kb = std::as_bytes(std::span{key.data(), key.size()});
  std::vector<std::byte> value(20, std::byte{0x3C});

  const auto frame = crafter.craft_multiwrite(collector.remote_info(), src,
                                              kb, value, /*psn=*/0);
  ASSERT_TRUE(collector.rnic().process_frame(frame).has_value());
  EXPECT_EQ(collector.ingest_counters().writes, 4u);

  // All 4 copies present: consensus-2 (and plurality) find the value.
  const auto result = collector.query(kb, core::ReturnPolicy::kConsensusTwo);
  ASSERT_EQ(result.outcome, core::QueryOutcome::kFound);
  EXPECT_EQ(result.checksum_matches, 4u);
  EXPECT_EQ(result.value, value);
}

TEST(MultiwriteEndToEnd, MatchesNSeparateRoceWrites) {
  core::DartConfig cfg;
  cfg.n_slots = 4096;
  cfg.n_addresses = 2;
  cfg.value_bytes = 20;
  cfg.master_seed = 0xD7B;
  const core::CollectorEndpoint ep{{2, 0, 0, 0, 0, 1},
                                   net::Ipv4Addr::from_octets(10, 0, 100, 1)};
  core::Collector a(cfg, 0, ep);  // RoCEv2 path
  core::Collector b(cfg, 0, ep);  // DTA path
  b.rnic().set_dta_multiwrite(true);

  const core::ReportCrafter crafter(cfg);
  core::ReporterEndpoint src;

  const std::string key = "same-memory";
  const auto kb = std::as_bytes(std::span{key.data(), key.size()});
  std::vector<std::byte> value(20, std::byte{0x19});

  for (std::uint32_t n = 0; n < 2; ++n) {
    (void)a.rnic().process_frame(
        crafter.craft_write(a.remote_info(), src, kb, value, n, n));
  }
  (void)b.rnic().process_frame(
      crafter.craft_multiwrite(b.remote_info(), src, kb, value, 0));

  EXPECT_EQ(0, std::memcmp(a.store().memory().data(),
                           b.store().memory().data(),
                           a.store().memory().size()));
}

}  // namespace
}  // namespace dart::rdma
