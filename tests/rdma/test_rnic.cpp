// Tests for the simulated RNIC: the full inbound validation pipeline and the
// WRITE / FETCH_ADD / COMPARE_SWAP execution paths.
#include "rdma/rnic.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/collector.hpp"
#include "core/report_crafter.hpp"

namespace dart::rdma {
namespace {

// Harness: an RNIC with one MR and one RC QP, plus a frame factory.
class RnicFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    memory_.resize(4096);
    pd_ = rnic_.alloc_pd();
    auto mr = rnic_.register_mr(pd_, memory_, kBase,
                                Access::kRemoteWrite | Access::kRemoteAtomic);
    ASSERT_TRUE(mr.ok());
    rkey_ = mr.value().rkey;
    ASSERT_TRUE(rnic_.create_qp(kQpn, QpType::kRc, pd_).ok());
  }

  // Builds a finalized WRITE frame.
  std::vector<std::byte> write_frame(std::uint64_t vaddr,
                                     std::span<const std::byte> payload,
                                     std::uint32_t psn,
                                     std::uint32_t rkey_override = 0,
                                     std::uint32_t qpn_override = 0) {
    Bth bth;
    bth.opcode = Opcode::kRcRdmaWriteOnly;
    bth.dest_qp = qpn_override ? qpn_override : kQpn;
    bth.psn = psn;
    Reth reth;
    reth.vaddr = vaddr;
    reth.rkey = rkey_override ? rkey_override : rkey_;
    reth.dma_length = static_cast<std::uint32_t>(payload.size());

    std::vector<std::byte> roce;
    BufWriter w(roce);
    serialize_write(w, bth, reth, payload);
    auto frame = net::build_udp_frame(frame_spec(), roce);
    EXPECT_TRUE(finalize_frame_icrc(frame));
    return frame;
  }

  std::vector<std::byte> atomic_frame(Opcode op, std::uint64_t vaddr,
                                      std::uint64_t swap_add,
                                      std::uint64_t compare,
                                      std::uint32_t psn) {
    Bth bth;
    bth.opcode = op;
    bth.dest_qp = kQpn;
    bth.psn = psn;
    AtomicEth aeth;
    aeth.vaddr = vaddr;
    aeth.rkey = rkey_;
    aeth.swap_add = swap_add;
    aeth.compare = compare;
    std::vector<std::byte> roce;
    BufWriter w(roce);
    serialize_atomic(w, bth, aeth);
    auto frame = net::build_udp_frame(frame_spec(), roce);
    EXPECT_TRUE(finalize_frame_icrc(frame));
    return frame;
  }

  static net::UdpFrameSpec frame_spec() {
    net::UdpFrameSpec spec;
    spec.src_ip = net::Ipv4Addr::from_octets(10, 0, 0, 1);
    spec.dst_ip = net::Ipv4Addr::from_octets(10, 0, 0, 2);
    spec.src_port = 0xC123;
    spec.dst_port = net::kRoceV2UdpPort;
    return spec;
  }

  [[nodiscard]] std::uint64_t read_u64(std::size_t off) const {
    std::uint64_t v;
    std::memcpy(&v, memory_.data() + off, 8);
    return v;
  }

  static constexpr std::uint64_t kBase = 0x0000'1000'0000'0000ull;
  static constexpr std::uint32_t kQpn = 0x100;

  SimulatedRnic rnic_;
  std::vector<std::byte> memory_;
  PdHandle pd_{};
  std::uint32_t rkey_ = 0;
};

TEST_F(RnicFixture, WriteLandsInMemory) {
  std::vector<std::byte> payload{std::byte{0xDE}, std::byte{0xAD},
                                 std::byte{0xBE}, std::byte{0xEF}};
  const auto frame = write_frame(kBase + 64, payload, 0);
  const auto c = rnic_.process_frame(frame);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->opcode, Opcode::kRcRdmaWriteOnly);
  EXPECT_EQ(c->vaddr, kBase + 64);
  EXPECT_EQ(c->length, 4u);
  EXPECT_EQ(static_cast<std::uint8_t>(memory_[64]), 0xDE);
  EXPECT_EQ(static_cast<std::uint8_t>(memory_[67]), 0xEF);
  EXPECT_EQ(rnic_.counters().writes, 1u);
  EXPECT_EQ(rnic_.counters().executed, 1u);
}

TEST_F(RnicFixture, BadIcrcDropped) {
  std::vector<std::byte> payload(8, std::byte{1});
  auto frame = write_frame(kBase, payload, 0);
  frame[frame.size() - 2] ^= std::byte{0xFF};  // corrupt the iCRC
  EXPECT_FALSE(rnic_.process_frame(frame).has_value());
  EXPECT_EQ(rnic_.counters().bad_icrc, 1u);
  EXPECT_EQ(rnic_.counters().executed, 0u);
}

TEST_F(RnicFixture, IcrcValidationCanBeDisabled) {
  rnic_.set_validate_icrc(false);
  std::vector<std::byte> payload(8, std::byte{1});
  auto frame = write_frame(kBase, payload, 0);
  frame[frame.size() - 2] ^= std::byte{0xFF};
  EXPECT_TRUE(rnic_.process_frame(frame).has_value());
}

TEST_F(RnicFixture, BadRkeyDropped) {
  std::vector<std::byte> payload(8, std::byte{1});
  const auto frame = write_frame(kBase, payload, 0, /*rkey=*/0xBAD);
  EXPECT_FALSE(rnic_.process_frame(frame).has_value());
  EXPECT_EQ(rnic_.counters().bad_rkey, 1u);
}

TEST_F(RnicFixture, UnknownQpDropped) {
  std::vector<std::byte> payload(8, std::byte{1});
  const auto frame = write_frame(kBase, payload, 0, 0, /*qpn=*/0x999);
  EXPECT_FALSE(rnic_.process_frame(frame).has_value());
  EXPECT_EQ(rnic_.counters().unknown_qp, 1u);
}

TEST_F(RnicFixture, OutOfBoundsWriteDropped) {
  std::vector<std::byte> payload(16, std::byte{1});
  const auto frame = write_frame(kBase + 4090, payload, 0);  // 4090+16 > 4096
  EXPECT_FALSE(rnic_.process_frame(frame).has_value());
  EXPECT_EQ(rnic_.counters().out_of_bounds, 1u);
  // Memory untouched.
  EXPECT_EQ(read_u64(4088 - 8), 0u);
}

TEST_F(RnicFixture, StalePsnDropped) {
  std::vector<std::byte> payload(8, std::byte{1});
  ASSERT_TRUE(rnic_.process_frame(write_frame(kBase, payload, 10)).has_value());
  // PSN 5 is behind: dropped by the loss-tolerant window.
  EXPECT_FALSE(rnic_.process_frame(write_frame(kBase, payload, 5)).has_value());
  EXPECT_EQ(rnic_.counters().psn_rejected, 1u);
  // Gap ahead is fine.
  EXPECT_TRUE(rnic_.process_frame(write_frame(kBase, payload, 100)).has_value());
}

TEST_F(RnicFixture, NonRoceFrameCounted) {
  auto spec = frame_spec();
  spec.dst_port = 53;  // not 4791
  const auto frame = net::build_udp_frame(spec, {});
  EXPECT_FALSE(rnic_.process_frame(frame).has_value());
  EXPECT_EQ(rnic_.counters().not_roce, 1u);
}

TEST_F(RnicFixture, FetchAddAccumulates) {
  const auto f1 = atomic_frame(Opcode::kRcFetchAdd, kBase + 8, 5, 0, 0);
  const auto c1 = rnic_.process_frame(f1);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->atomic_prior, 0u);
  const auto f2 = atomic_frame(Opcode::kRcFetchAdd, kBase + 8, 7, 0, 1);
  const auto c2 = rnic_.process_frame(f2);
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->atomic_prior, 5u);
  EXPECT_EQ(read_u64(8), 12u);
  EXPECT_EQ(rnic_.counters().fetch_adds, 2u);
}

TEST_F(RnicFixture, CompareSwapSemantics) {
  // CAS on zeroed memory with compare=0 succeeds.
  const auto f1 =
      atomic_frame(Opcode::kRcCompareSwap, kBase + 16, 0xAAAA, 0, 0);
  const auto c1 = rnic_.process_frame(f1);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->atomic_prior, 0u);
  EXPECT_EQ(read_u64(16), 0xAAAAu);
  // Second CAS with stale compare fails (memory unchanged), still completes.
  const auto f2 =
      atomic_frame(Opcode::kRcCompareSwap, kBase + 16, 0xBBBB, 0, 1);
  const auto c2 = rnic_.process_frame(f2);
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->atomic_prior, 0xAAAAu);
  EXPECT_EQ(read_u64(16), 0xAAAAu);
  EXPECT_EQ(rnic_.counters().cas_mismatches, 1u);
}

TEST_F(RnicFixture, UnalignedAtomicRejected) {
  const auto f = atomic_frame(Opcode::kRcFetchAdd, kBase + 3, 1, 0, 0);
  EXPECT_FALSE(rnic_.process_frame(f).has_value());
  EXPECT_EQ(rnic_.counters().unaligned_atomic, 1u);
}

TEST_F(RnicFixture, AccessFlagsEnforced) {
  // Register a write-only MR; atomics must be denied.
  std::vector<std::byte> mem2(256);
  auto mr = rnic_.register_mr(pd_, mem2, 0x2000'0000, Access::kRemoteWrite);
  ASSERT_TRUE(mr.ok());

  Bth bth;
  bth.opcode = Opcode::kRcFetchAdd;
  bth.dest_qp = kQpn;
  bth.psn = 0;
  AtomicEth aeth;
  aeth.vaddr = 0x2000'0000;
  aeth.rkey = mr.value().rkey;
  aeth.swap_add = 1;
  std::vector<std::byte> roce;
  BufWriter w(roce);
  serialize_atomic(w, bth, aeth);
  auto frame = net::build_udp_frame(frame_spec(), roce);
  ASSERT_TRUE(finalize_frame_icrc(frame));

  EXPECT_FALSE(rnic_.process_frame(frame).has_value());
  EXPECT_EQ(rnic_.counters().access_denied, 1u);
}

TEST_F(RnicFixture, CompletionHookFires) {
  int calls = 0;
  rnic_.set_completion_hook([&](const Completion& c) {
    ++calls;
    EXPECT_EQ(c.opcode, Opcode::kRcRdmaWriteOnly);
  });
  std::vector<std::byte> payload(8, std::byte{2});
  ASSERT_TRUE(rnic_.process_frame(write_frame(kBase, payload, 0)).has_value());
  EXPECT_EQ(calls, 1);
}

TEST_F(RnicFixture, UcOpcodeOnRcQpRejected) {
  Bth bth;
  bth.opcode = Opcode::kUcRdmaWriteOnly;
  bth.dest_qp = kQpn;  // RC QP
  bth.psn = 0;
  Reth reth;
  reth.vaddr = kBase;
  reth.rkey = rkey_;
  reth.dma_length = 8;
  std::vector<std::byte> payload(8, std::byte{1});
  std::vector<std::byte> roce;
  BufWriter w(roce);
  serialize_write(w, bth, reth, payload);
  auto frame = net::build_udp_frame(frame_spec(), roce);
  ASSERT_TRUE(finalize_frame_icrc(frame));
  EXPECT_FALSE(rnic_.process_frame(frame).has_value());
  EXPECT_EQ(rnic_.counters().bad_opcode, 1u);
}

}  // namespace
}  // namespace dart::rdma
