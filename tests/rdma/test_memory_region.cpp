// Tests for protection domains, MR registration and rkey lookup.
#include "rdma/memory_region.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dart::rdma {
namespace {

TEST(MemoryRegistry, RegisterAndFind) {
  MemoryRegistry reg;
  const auto pd = reg.alloc_pd();
  std::vector<std::byte> buf(1024);
  const auto mr = reg.register_mr(pd, buf, 0x10000, Access::kRemoteWrite);
  ASSERT_TRUE(mr.ok());
  EXPECT_NE(mr.value().rkey, 0u);
  EXPECT_EQ(mr.value().pd, pd);

  const auto* found = reg.find_by_rkey(mr.value().rkey);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->base_vaddr, 0x10000u);
}

TEST(MemoryRegistry, UnknownRkeyIsNull) {
  MemoryRegistry reg;
  EXPECT_EQ(reg.find_by_rkey(0x1234), nullptr);
}

TEST(MemoryRegistry, BadPdRejected) {
  MemoryRegistry reg;
  std::vector<std::byte> buf(64);
  const auto mr = reg.register_mr(999, buf, 0, Access::kRemoteWrite);
  ASSERT_FALSE(mr.ok());
  EXPECT_EQ(mr.error().code, "bad_pd");
}

TEST(MemoryRegistry, EmptyBufferRejected) {
  MemoryRegistry reg;
  const auto pd = reg.alloc_pd();
  const auto mr = reg.register_mr(pd, {}, 0, Access::kRemoteWrite);
  ASSERT_FALSE(mr.ok());
  EXPECT_EQ(mr.error().code, "empty_mr");
}

TEST(MemoryRegistry, OverlappingVaddrRangesRejected) {
  MemoryRegistry reg;
  const auto pd = reg.alloc_pd();
  std::vector<std::byte> a(100), b(100);
  ASSERT_TRUE(reg.register_mr(pd, a, 0x1000, Access::kRemoteWrite).ok());
  // Overlaps [0x1000, 0x1064).
  const auto mr = reg.register_mr(pd, b, 0x1050, Access::kRemoteWrite);
  ASSERT_FALSE(mr.ok());
  EXPECT_EQ(mr.error().code, "mr_overlap");
  // Adjacent (non-overlapping) is fine.
  EXPECT_TRUE(reg.register_mr(pd, b, 0x1064, Access::kRemoteWrite).ok());
}

TEST(MemoryRegistry, DeregisterRemoves) {
  MemoryRegistry reg;
  const auto pd = reg.alloc_pd();
  std::vector<std::byte> buf(64);
  const auto mr = reg.register_mr(pd, buf, 0, Access::kRemoteWrite);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(reg.mr_count(), 1u);
  EXPECT_TRUE(reg.deregister_mr(mr.value().handle).ok());
  EXPECT_EQ(reg.mr_count(), 0u);
  EXPECT_EQ(reg.find_by_rkey(mr.value().rkey), nullptr);
  EXPECT_FALSE(reg.deregister_mr(mr.value().handle).ok());
}

TEST(MemoryRegistry, RkeysAreUnpredictablyDistinct) {
  MemoryRegistry reg;
  const auto pd = reg.alloc_pd();
  std::vector<std::byte> a(16), b(16);
  const auto m1 = reg.register_mr(pd, a, 0x0, Access::kRemoteWrite);
  const auto m2 = reg.register_mr(pd, b, 0x100, Access::kRemoteWrite);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_NE(m1.value().rkey, m2.value().rkey);
  // Different seeds → different rkeys for the same registration sequence.
  MemoryRegistry reg2(0x1234);
  const auto pd2 = reg2.alloc_pd();
  std::vector<std::byte> c(16);
  const auto m3 = reg2.register_mr(pd2, c, 0x0, Access::kRemoteWrite);
  ASSERT_TRUE(m3.ok());
  EXPECT_NE(m3.value().rkey, m1.value().rkey);
}

TEST(MemoryRegion, ContainsBoundsChecks) {
  MemoryRegion mr;
  std::vector<std::byte> buf(100);
  mr.base_vaddr = 0x1000;
  mr.buffer = buf;
  EXPECT_TRUE(mr.contains(0x1000, 100));
  EXPECT_TRUE(mr.contains(0x1063, 1));
  EXPECT_FALSE(mr.contains(0x0FFF, 1));    // below base
  EXPECT_FALSE(mr.contains(0x1064, 1));    // past end
  EXPECT_FALSE(mr.contains(0x1000, 101));  // too long
  EXPECT_FALSE(mr.contains(0x1063, 2));    // straddles end
}

TEST(MemoryRegion, ContainsIsOverflowSafe) {
  MemoryRegion mr;
  std::vector<std::byte> buf(16);
  mr.base_vaddr = 0xFFFFFFFFFFFFFFF0ull;
  mr.buffer = buf;
  // vaddr + len would wrap; contains must not be fooled.
  EXPECT_FALSE(mr.contains(0xFFFFFFFFFFFFFFF8ull, 16));
  EXPECT_TRUE(mr.contains(0xFFFFFFFFFFFFFFF0ull, 16));
}

TEST(Access, FlagAlgebra) {
  const auto rw = Access::kRemoteWrite | Access::kRemoteAtomic;
  EXPECT_TRUE(has_access(rw, Access::kRemoteWrite));
  EXPECT_TRUE(has_access(rw, Access::kRemoteAtomic));
  EXPECT_FALSE(has_access(Access::kRemoteWrite, Access::kRemoteAtomic));
  EXPECT_TRUE(has_access(rw, Access::kNone));
}

}  // namespace
}  // namespace dart::rdma
