// Tests for queue-pair PSN policies — the loss-tolerance semantics DART
// receivers need (switches never retransmit reports).
#include "rdma/qp.hpp"

#include <gtest/gtest.h>

namespace dart::rdma {
namespace {

TEST(QueuePair, StrictAcceptsOnlyExpected) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kStrict);
  EXPECT_TRUE(qp.accept_psn(0));
  EXPECT_TRUE(qp.accept_psn(1));
  EXPECT_FALSE(qp.accept_psn(3));  // gap not allowed
  EXPECT_FALSE(qp.accept_psn(1));  // duplicate
  EXPECT_TRUE(qp.accept_psn(2));
  EXPECT_EQ(qp.counters().accepted, 3u);
  EXPECT_EQ(qp.counters().psn_stale, 2u);
}

TEST(QueuePair, TolerateLossAcceptsGaps) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kTolerateLoss);
  EXPECT_TRUE(qp.accept_psn(0));
  EXPECT_TRUE(qp.accept_psn(5));  // 4 reports lost
  EXPECT_EQ(qp.counters().psn_gaps, 4u);
  EXPECT_FALSE(qp.accept_psn(3));  // behind the window: stale
  EXPECT_EQ(qp.counters().psn_stale, 1u);
  EXPECT_TRUE(qp.accept_psn(6));
  EXPECT_EQ(qp.counters().accepted, 3u);
}

TEST(QueuePair, TolerateLossRejectsDuplicates) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kTolerateLoss);
  EXPECT_TRUE(qp.accept_psn(10));
  EXPECT_FALSE(qp.accept_psn(10));
}

TEST(QueuePair, PsnWrapsAt24Bits) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kTolerateLoss);
  qp.set_expected_psn(0x00FFFFFF);
  EXPECT_TRUE(qp.accept_psn(0x00FFFFFF));
  // Expected is now 0 (wrapped); PSN 0 must be accepted as "next".
  EXPECT_EQ(qp.expected_psn(), 0u);
  EXPECT_TRUE(qp.accept_psn(0));
  EXPECT_TRUE(qp.accept_psn(1));
}

TEST(QueuePair, HalfWindowBoundary) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kTolerateLoss);
  qp.set_expected_psn(0);
  // Just under half the 24-bit space ahead: accepted as loss.
  EXPECT_TRUE(qp.accept_psn(0x007FFFFF));
  // Now something "behind" by a lot must be stale.
  EXPECT_FALSE(qp.accept_psn(0x00000005));
}

TEST(QueuePair, UcAcceptsEverything) {
  QueuePair qp(1, QpType::kUc, 1, PsnPolicy::kStrict);
  EXPECT_TRUE(qp.accept_psn(100));
  EXPECT_TRUE(qp.accept_psn(5));
  EXPECT_TRUE(qp.accept_psn(5));
  EXPECT_EQ(qp.counters().accepted, 3u);
}

TEST(QueuePair, IgnorePolicyAcceptsEverything) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kIgnore);
  EXPECT_TRUE(qp.accept_psn(7));
  EXPECT_TRUE(qp.accept_psn(7));
}

TEST(QpRegistry, CreateAndFind) {
  QpRegistry reg;
  EXPECT_TRUE(reg.create(0x100, QpType::kRc, 1).ok());
  EXPECT_NE(reg.find(0x100), nullptr);
  EXPECT_EQ(reg.find(0x101), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(QpRegistry, DuplicateQpnRejected) {
  QpRegistry reg;
  ASSERT_TRUE(reg.create(5, QpType::kRc, 1).ok());
  const auto st = reg.create(5, QpType::kUc, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "qp_exists");
}

TEST(QpRegistry, QpnMustBe24Bit) {
  QpRegistry reg;
  const auto st = reg.create(0x01000000, QpType::kRc, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "bad_qpn");
}

}  // namespace
}  // namespace dart::rdma
