// Tests for queue-pair PSN policies — the loss-tolerance semantics DART
// receivers need (switches never retransmit reports).
#include "rdma/qp.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/collector.hpp"
#include "core/report_crafter.hpp"
#include "net/netsim.hpp"
#include "rdma/rnic.hpp"

namespace dart::rdma {
namespace {

TEST(QueuePair, StrictAcceptsOnlyExpected) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kStrict);
  EXPECT_TRUE(qp.accept_psn(0));
  EXPECT_TRUE(qp.accept_psn(1));
  EXPECT_FALSE(qp.accept_psn(3));  // gap not allowed
  EXPECT_FALSE(qp.accept_psn(1));  // duplicate
  EXPECT_TRUE(qp.accept_psn(2));
  EXPECT_EQ(qp.counters().accepted, 3u);
  EXPECT_EQ(qp.counters().psn_stale, 2u);
}

TEST(QueuePair, TolerateLossAcceptsGaps) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kTolerateLoss);
  EXPECT_TRUE(qp.accept_psn(0));
  EXPECT_TRUE(qp.accept_psn(5));  // 4 reports lost
  EXPECT_EQ(qp.counters().psn_gaps, 4u);
  EXPECT_FALSE(qp.accept_psn(3));  // behind the window: stale
  EXPECT_EQ(qp.counters().psn_stale, 1u);
  EXPECT_TRUE(qp.accept_psn(6));
  EXPECT_EQ(qp.counters().accepted, 3u);
}

TEST(QueuePair, TolerateLossRejectsDuplicates) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kTolerateLoss);
  EXPECT_TRUE(qp.accept_psn(10));
  EXPECT_FALSE(qp.accept_psn(10));
}

TEST(QueuePair, PsnWrapsAt24Bits) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kTolerateLoss);
  qp.set_expected_psn(0x00FFFFFF);
  EXPECT_TRUE(qp.accept_psn(0x00FFFFFF));
  // Expected is now 0 (wrapped); PSN 0 must be accepted as "next".
  EXPECT_EQ(qp.expected_psn(), 0u);
  EXPECT_TRUE(qp.accept_psn(0));
  EXPECT_TRUE(qp.accept_psn(1));
}

TEST(QueuePair, HalfWindowBoundary) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kTolerateLoss);
  qp.set_expected_psn(0);
  // Just under half the 24-bit space ahead: accepted as loss.
  EXPECT_TRUE(qp.accept_psn(0x007FFFFF));
  // Now something "behind" by a lot must be stale.
  EXPECT_FALSE(qp.accept_psn(0x00000005));
}

// Regression: gap accounting across the 24-bit wraparound. With expected
// 0xFFFFFF, receiving 0x000001 means exactly two reports (0xFFFFFF and
// 0x000000) were lost — not 2^24 + 2, and not 1 or 3.
TEST(QueuePair, GapAccountingAcrossWraparound) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kTolerateLoss);
  qp.set_expected_psn(0x00FFFFFF);
  EXPECT_TRUE(qp.accept_psn(0x00000001));
  EXPECT_EQ(qp.counters().psn_gaps, 2u);
  EXPECT_EQ(qp.expected_psn(), 2u);
  // The sequence continues in order with no phantom gaps.
  EXPECT_TRUE(qp.accept_psn(2));
  EXPECT_TRUE(qp.accept_psn(3));
  EXPECT_EQ(qp.counters().psn_gaps, 2u);
  EXPECT_EQ(qp.counters().accepted, 3u);
}

TEST(QueuePair, NoGapOnLosslessWraparound) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kTolerateLoss);
  qp.set_expected_psn(0x00FFFFFE);
  EXPECT_TRUE(qp.accept_psn(0x00FFFFFE));
  EXPECT_TRUE(qp.accept_psn(0x00FFFFFF));
  EXPECT_TRUE(qp.accept_psn(0x00000000));
  EXPECT_TRUE(qp.accept_psn(0x00000001));
  EXPECT_EQ(qp.counters().psn_gaps, 0u);
  EXPECT_EQ(qp.counters().accepted, 4u);
}

TEST(QueuePair, StaleJustBehindWraparound) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kTolerateLoss);
  qp.set_expected_psn(1);
  // 0xFFFFFF is 2 behind expected=1 across the wrap: a duplicate, not a
  // 2^24-2 gap.
  EXPECT_FALSE(qp.accept_psn(0x00FFFFFF));
  EXPECT_EQ(qp.counters().psn_stale, 1u);
  EXPECT_EQ(qp.counters().psn_gaps, 0u);
}

namespace {
// Discards everything — exists only to own the sender end of a lossy link.
struct NullNode final : net::Node {
  void receive(net::Packet, std::uint64_t) override {}
};
}  // namespace

// Ground truth: stream K consecutive-PSN reports over a netsim lossy link
// into a kTolerateLoss QP and reconcile the QP's gap counter against the
// link's authoritative drop count. Drops after the last delivered report are
// invisible to the receiver (nothing arrives to reveal them), so
//   accepted  == link delivered
//   psn_gaps  == dropped − trailing drops == expected_psn − accepted.
TEST(QueuePair, GapCounterMatchesNetsimGroundTruth) {
  core::DartConfig config;
  config.n_slots = 1 << 12;

  rdma::SimulatedRnic rnic(0xBEEF);
  const auto pd = rnic.alloc_pd();
  std::vector<std::byte> memory(config.memory_bytes(), std::byte{0});
  auto mr = rnic.register_mr(pd, memory, core::Collector::kDefaultBaseVaddr,
                             Access::kRemoteWrite);
  ASSERT_TRUE(mr.ok());
  constexpr std::uint32_t kQpn = 0x123;
  ASSERT_TRUE(rnic.create_qp(kQpn, QpType::kRc, pd, PsnPolicy::kTolerateLoss)
                  .ok());

  core::RemoteStoreInfo dst;
  dst.qpn = kQpn;
  dst.rkey = mr.value().rkey;
  dst.base_vaddr = core::Collector::kDefaultBaseVaddr;
  dst.n_slots = config.n_slots;
  dst.slot_bytes = config.slot_bytes();

  net::Simulator sim(99);
  NullNode sender;
  const auto src_id = sim.add_node(sender);
  const auto dst_id = sim.add_node(rnic);
  const auto link = sim.add_link(src_id, dst_id, /*latency_ns=*/100,
                                 std::make_unique<net::BernoulliLoss>(0.25));

  const core::ReportCrafter crafter(config);
  core::ReporterEndpoint src;
  const std::vector<std::byte> value(config.value_bytes, std::byte{0x42});
  constexpr std::uint32_t kReports = 400;
  for (std::uint32_t psn = 0; psn < kReports; ++psn) {
    std::vector<std::byte> key(8);
    std::memcpy(key.data(), &psn, 4);
    sim.send(src_id, dst_id,
             net::Packet(crafter.craft_write(dst, src, key, value, 0, psn)));
  }
  sim.run();

  const auto& stats = sim.link_stats(link);
  ASSERT_EQ(stats.delivered + stats.dropped, kReports);
  ASSERT_GT(stats.dropped, 0u);  // 0.25 loss over 400 frames can't be all-pass

  const QueuePair* qp = rnic.qps().find(kQpn);
  ASSERT_NE(qp, nullptr);
  EXPECT_EQ(qp->counters().accepted, stats.delivered);
  EXPECT_EQ(rnic.counters().psn_rejected, 0u);  // in-order: nothing stale
  // expected_psn is one past the last delivered report, so this identity
  // pins psn_gaps to the exact number of observable drops.
  EXPECT_EQ(qp->counters().psn_gaps,
            qp->expected_psn() - qp->counters().accepted);
  const std::uint64_t trailing = kReports - qp->expected_psn();
  EXPECT_EQ(qp->counters().psn_gaps, stats.dropped - trailing);
}

TEST(QueuePair, UcAcceptsEverything) {
  QueuePair qp(1, QpType::kUc, 1, PsnPolicy::kStrict);
  EXPECT_TRUE(qp.accept_psn(100));
  EXPECT_TRUE(qp.accept_psn(5));
  EXPECT_TRUE(qp.accept_psn(5));
  EXPECT_EQ(qp.counters().accepted, 3u);
}

TEST(QueuePair, IgnorePolicyAcceptsEverything) {
  QueuePair qp(1, QpType::kRc, 1, PsnPolicy::kIgnore);
  EXPECT_TRUE(qp.accept_psn(7));
  EXPECT_TRUE(qp.accept_psn(7));
}

TEST(QpRegistry, CreateAndFind) {
  QpRegistry reg;
  EXPECT_TRUE(reg.create(0x100, QpType::kRc, 1).ok());
  EXPECT_NE(reg.find(0x100), nullptr);
  EXPECT_EQ(reg.find(0x101), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(QpRegistry, DuplicateQpnRejected) {
  QpRegistry reg;
  ASSERT_TRUE(reg.create(5, QpType::kRc, 1).ok());
  const auto st = reg.create(5, QpType::kUc, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "qp_exists");
}

TEST(QpRegistry, QpnMustBe24Bit) {
  QpRegistry reg;
  const auto st = reg.create(0x01000000, QpType::kRc, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "bad_qpn");
}

}  // namespace
}  // namespace dart::rdma
