// Tests for the RoCEv2 wire format: BTH/RETH/AtomicETH round trips, request
// parsing, and iCRC computation/verification.
#include "rdma/roce.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dart::rdma {
namespace {

TEST(Bth, RoundTrip) {
  Bth h;
  h.opcode = Opcode::kRcRdmaWriteOnly;
  h.solicited = true;
  h.mig_req = false;
  h.pad_count = 2;
  h.pkey = 0xABCD;
  h.dest_qp = 0x123456;
  h.ack_req = true;
  h.psn = 0x00ABCDEF;

  std::vector<std::byte> buf;
  BufWriter w(buf);
  h.serialize(w);
  ASSERT_EQ(buf.size(), kBthLen);

  BufReader r(buf);
  const auto parsed = Bth::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->opcode, Opcode::kRcRdmaWriteOnly);
  EXPECT_TRUE(parsed->solicited);
  EXPECT_FALSE(parsed->mig_req);
  EXPECT_EQ(parsed->pad_count, 2);
  EXPECT_EQ(parsed->pkey, 0xABCD);
  EXPECT_EQ(parsed->dest_qp, 0x123456u);
  EXPECT_TRUE(parsed->ack_req);
  EXPECT_EQ(parsed->psn, 0x00ABCDEFu);
}

TEST(Bth, PsnAndQpAre24Bit) {
  Bth h;
  h.dest_qp = 0xFFFFFFFF;  // should truncate to 24 bits on the wire
  h.psn = 0xFFFFFFFF;
  std::vector<std::byte> buf;
  BufWriter w(buf);
  h.serialize(w);
  BufReader r(buf);
  const auto parsed = Bth::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dest_qp, 0x00FFFFFFu);
  EXPECT_EQ(parsed->psn, 0x00FFFFFFu);
}

TEST(Bth, UnknownOpcodeRejected) {
  std::vector<std::byte> buf(kBthLen, std::byte{0});
  buf[0] = std::byte{0x0C};  // RDMA READ REQUEST — unsupported by this model
  BufReader r(buf);
  EXPECT_FALSE(Bth::parse(r).has_value());
}

TEST(Reth, RoundTrip) {
  Reth h;
  h.vaddr = 0x0000100000000020ull;
  h.rkey = 0xDEADBEEF;
  h.dma_length = 24;
  std::vector<std::byte> buf;
  BufWriter w(buf);
  h.serialize(w);
  ASSERT_EQ(buf.size(), kRethLen);
  BufReader r(buf);
  const auto parsed = Reth::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->vaddr, h.vaddr);
  EXPECT_EQ(parsed->rkey, h.rkey);
  EXPECT_EQ(parsed->dma_length, 24u);
}

TEST(AtomicEth, RoundTrip) {
  AtomicEth h;
  h.vaddr = 0x1000;
  h.rkey = 0x42;
  h.swap_add = 0x1111222233334444ull;
  h.compare = 0x5555666677778888ull;
  std::vector<std::byte> buf;
  BufWriter w(buf);
  h.serialize(w);
  ASSERT_EQ(buf.size(), kAtomicEthLen);
  BufReader r(buf);
  const auto parsed = AtomicEth::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->swap_add, h.swap_add);
  EXPECT_EQ(parsed->compare, h.compare);
}

TEST(OpcodeClassifiers, Classify) {
  EXPECT_TRUE(is_write(Opcode::kRcRdmaWriteOnly));
  EXPECT_TRUE(is_write(Opcode::kUcRdmaWriteOnly));
  EXPECT_FALSE(is_write(Opcode::kRcFetchAdd));
  EXPECT_TRUE(is_atomic(Opcode::kRcCompareSwap));
  EXPECT_TRUE(is_atomic(Opcode::kRcFetchAdd));
  EXPECT_FALSE(is_atomic(Opcode::kUcRdmaWriteOnly));
  EXPECT_TRUE(is_unreliable(Opcode::kUcRdmaWriteOnly));
  EXPECT_FALSE(is_unreliable(Opcode::kRcRdmaWriteOnly));
}

TEST(ParseRequest, WriteWithPayload) {
  Bth bth;
  bth.opcode = Opcode::kRcRdmaWriteOnly;
  bth.dest_qp = 0x100;
  bth.psn = 7;
  Reth reth;
  reth.vaddr = 0x2000;
  reth.rkey = 9;
  std::vector<std::byte> payload(24, std::byte{0x5A});
  reth.dma_length = 24;

  std::vector<std::byte> buf;
  BufWriter w(buf);
  serialize_write(w, bth, reth, payload);

  const auto req = parse_request(buf);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->bth.dest_qp, 0x100u);
  ASSERT_TRUE(req->reth.has_value());
  EXPECT_EQ(req->reth->vaddr, 0x2000u);
  ASSERT_EQ(req->payload.size(), 24u);
  EXPECT_EQ(static_cast<std::uint8_t>(req->payload[0]), 0x5A);
}

TEST(ParseRequest, DmaLengthMismatchRejected) {
  Bth bth;
  bth.opcode = Opcode::kRcRdmaWriteOnly;
  Reth reth;
  reth.dma_length = 99;  // lies about the payload size
  std::vector<std::byte> payload(24, std::byte{1});
  std::vector<std::byte> buf;
  BufWriter w(buf);
  serialize_write(w, bth, reth, payload);
  EXPECT_FALSE(parse_request(buf).has_value());
}

TEST(ParseRequest, AtomicHasNoPayload) {
  Bth bth;
  bth.opcode = Opcode::kRcFetchAdd;
  AtomicEth aeth;
  aeth.vaddr = 0x88;
  aeth.swap_add = 5;
  std::vector<std::byte> buf;
  BufWriter w(buf);
  serialize_atomic(w, bth, aeth);

  const auto req = parse_request(buf);
  ASSERT_TRUE(req.has_value());
  ASSERT_TRUE(req->atomic_eth.has_value());
  EXPECT_EQ(req->atomic_eth->swap_add, 5u);
  EXPECT_TRUE(req->payload.empty());
}

TEST(ParseRequest, TooShortRejected) {
  std::vector<std::byte> buf(kBthLen + kIcrcLen - 1, std::byte{0});
  EXPECT_FALSE(parse_request(buf).has_value());
}

// --- iCRC over full frames -----------------------------------------------------

std::vector<std::byte> make_frame(std::span<const std::byte> payload_bytes) {
  Bth bth;
  bth.opcode = Opcode::kRcRdmaWriteOnly;
  bth.dest_qp = 0x100;
  Reth reth;
  reth.vaddr = 0x1000;
  reth.rkey = 0xAB;
  reth.dma_length = static_cast<std::uint32_t>(payload_bytes.size());

  std::vector<std::byte> roce;
  BufWriter w(roce);
  serialize_write(w, bth, reth, payload_bytes);

  net::UdpFrameSpec spec;
  spec.src_ip = net::Ipv4Addr::from_octets(1, 2, 3, 4);
  spec.dst_ip = net::Ipv4Addr::from_octets(5, 6, 7, 8);
  spec.src_port = 0xC000;
  spec.dst_port = net::kRoceV2UdpPort;
  return net::build_udp_frame(spec, roce);
}

TEST(Icrc, FinalizeThenVerify) {
  std::vector<std::byte> payload(24, std::byte{0x11});
  auto frame = make_frame(payload);
  EXPECT_FALSE(verify_frame_icrc(frame));  // placeholder iCRC is zero
  ASSERT_TRUE(finalize_frame_icrc(frame));
  EXPECT_TRUE(verify_frame_icrc(frame));
}

TEST(Icrc, PayloadCorruptionDetected) {
  std::vector<std::byte> payload(24, std::byte{0x11});
  auto frame = make_frame(payload);
  ASSERT_TRUE(finalize_frame_icrc(frame));
  frame[frame.size() - kIcrcLen - 1] ^= std::byte{0x01};  // flip payload bit
  EXPECT_FALSE(verify_frame_icrc(frame));
}

TEST(Icrc, InvariantToTtlChange) {
  // The iCRC masks TTL (it changes hop by hop); rewriting TTL and fixing the
  // IP checksum must keep the iCRC valid — that's the "invariant" in iCRC.
  std::vector<std::byte> payload(8, std::byte{0x22});
  auto frame = make_frame(payload);
  ASSERT_TRUE(finalize_frame_icrc(frame));
  ASSERT_TRUE(verify_frame_icrc(frame));

  // Decrement TTL (offset 14+8=22) and recompute the IPv4 header checksum.
  frame[22] = static_cast<std::byte>(static_cast<std::uint8_t>(frame[22]) - 1);
  frame[24] = frame[25] = std::byte{0};
  std::uint32_t sum = 0;
  for (int i = 14; i < 34; i += 2) {
    sum += (static_cast<std::uint32_t>(static_cast<std::uint8_t>(frame[i])) << 8) |
           static_cast<std::uint8_t>(frame[i + 1]);
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  const std::uint16_t csum = static_cast<std::uint16_t>(~sum);
  frame[24] = static_cast<std::byte>(csum >> 8);
  frame[25] = static_cast<std::byte>(csum & 0xFF);

  EXPECT_TRUE(verify_frame_icrc(frame));
}

TEST(Icrc, BthCorruptionDetected) {
  std::vector<std::byte> payload(8, std::byte{0x33});
  auto frame = make_frame(payload);
  ASSERT_TRUE(finalize_frame_icrc(frame));
  // Flip the PSN byte (inside BTH, covered by iCRC).
  frame[frame.size() - kIcrcLen - payload.size() - 1] ^= std::byte{0x80};
  EXPECT_FALSE(verify_frame_icrc(frame));
}

TEST(Icrc, MalformedFrameRejected) {
  std::vector<std::byte> junk(10, std::byte{1});
  EXPECT_FALSE(finalize_frame_icrc(junk));
  EXPECT_FALSE(verify_frame_icrc(junk));
}

}  // namespace
}  // namespace dart::rdma
