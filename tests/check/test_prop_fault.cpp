// Failback-race properties for fault::RecoveryManager. The chaos e2e tests
// pin a handful of hand-written and FaultPlan::random schedules; these
// properties generate kill/revive schedules from the dartcheck Rng —
// overlapping deaths, revives in the opposite order of the kills, revives
// landing between two probe ticks — and assert the convergence contract for
// ALL of them:
//
//   every kill that outlives the detection timeout is detected, adopted by
//   a backup, and failed back after the revive; by the horizon no takeover
//   is live, every collector is admin-alive, and the audit log for each
//   collector is a clean (death → takeover → failback)* sequence with
//   non-decreasing timestamps.
//
// Each case spins up a full WireFabric, so the case count is small; the
// schedule space it explores per case is what the fixed tests cannot cover.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "check/property.hpp"
#include "check/rng.hpp"
#include "fault/recovery.hpp"
#include "telemetry/wire_fabric.hpp"

namespace dart::check {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

telemetry::WireFabricConfig small_fabric_config(std::uint64_t seed) {
  telemetry::WireFabricConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.dart.n_slots = 1 << 8;  // recovery control plane; stores stay tiny
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 8;
  cfg.dart.master_seed = 0x0B5;
  cfg.n_collectors = 3;
  cfg.report_loss_rate = 0.0;
  cfg.seed = seed;
  return cfg;
}

struct KillWindow {
  std::uint32_t collector;
  std::uint64_t kill_at;
  std::uint64_t revive_at;
};

std::optional<Failure> failback_convergence_property(Rng& rng) {
  telemetry::WireFabric fabric(small_fabric_config(rng.u64()));
  auto& sim = fabric.simulator();
  fault::RecoveryManager recovery(fabric, fault::RecoveryConfig{});

  // 1–2 of the 3 collectors die once each. Never all three: a takeover
  // needs a live backup, and the failure model guarantees one. Windows
  // overlap freely — that is the race under test — and every window is
  // long enough (≥10 ms vs the 5 ms liveness timeout) that detection
  // always wins the race against the revive.
  const auto n_kills = 1 + rng.below(2);
  std::vector<std::uint32_t> victims{0, 1, 2};
  // Fisher–Yates off the tape so the victim set shrinks deterministically.
  for (std::size_t i = 0; i + 1 < victims.size(); ++i) {
    std::swap(victims[i], victims[i + rng.below(victims.size() - i)]);
  }
  victims.resize(n_kills);

  std::vector<KillWindow> plan;
  for (const auto c : victims) {
    KillWindow w;
    w.collector = c;
    w.kill_at = (3 + rng.below(12)) * kMs;
    w.revive_at = w.kill_at + (10 + rng.below(15)) * kMs;
    plan.push_back(w);
  }
  for (const auto& w : plan) {
    sim.schedule(w.kill_at, [&recovery, c = w.collector] {
      recovery.kill_collector(c);
    });
    sim.schedule(w.revive_at, [&recovery, c = w.collector] {
      recovery.revive_collector(c);
    });
  }

  // Last revive ≤ 39 ms; the probe backoff (2 ms doubling, 32 ms cap)
  // answers within one capped interval, so 80 ms leaves failback room.
  recovery.start(/*horizon_ns=*/80 * kMs);
  fabric.run();

  // --- convergence ---------------------------------------------------------
  const auto& stats = recovery.stats();
  if (stats.kills != n_kills || stats.revivals != n_kills) {
    return Failure{"admin ledger: " + std::to_string(stats.kills) + " kills, " +
                       std::to_string(stats.revivals) + " revivals for a " +
                       std::to_string(n_kills) + "-kill plan",
                   {}};
  }
  if (stats.deaths_detected != n_kills) {
    return Failure{"detected " + std::to_string(stats.deaths_detected) +
                       " deaths for " + std::to_string(n_kills) +
                       " kills outliving the timeout",
                   {}};
  }
  if (stats.takeovers != stats.deaths_detected ||
      stats.failbacks != stats.deaths_detected) {
    return Failure{"death/takeover/failback counts diverged: " +
                       std::to_string(stats.deaths_detected) + "/" +
                       std::to_string(stats.takeovers) + "/" +
                       std::to_string(stats.failbacks),
                   {}};
  }
  for (std::uint32_t c = 0; c < fabric.n_collectors(); ++c) {
    if (!recovery.admin_alive(c)) {
      return Failure{"collector " + std::to_string(c) +
                         " still admin-dead at the horizon",
                     {}};
    }
    if (recovery.backup_of(c).has_value()) {
      return Failure{"takeover of collector " + std::to_string(c) +
                         " never failed back",
                     {}};
    }
  }

  // --- audit-log shape -----------------------------------------------------
  // Per collector the log must read (death → takeover → failback)*, and the
  // global log must be in non-decreasing simulated time.
  using What = fault::RecoveryManager::EventRecord::What;
  std::uint64_t prev_ns = 0;
  std::map<std::uint32_t, What> next_expected;
  for (const auto& ev : recovery.log()) {
    if (ev.at_ns < prev_ns) {
      return Failure{"audit log is not time-ordered", {}};
    }
    prev_ns = ev.at_ns;
    const auto expected =
        next_expected.count(ev.collector) ? next_expected[ev.collector]
                                          : What::kDeathDetected;
    if (ev.what != expected) {
      return Failure{"collector " + std::to_string(ev.collector) +
                         " log out of phase at t=" + std::to_string(ev.at_ns),
                     {}};
    }
    next_expected[ev.collector] =
        ev.what == What::kDeathDetected  ? What::kTakeover
        : ev.what == What::kTakeover     ? What::kFailback
                                         : What::kDeathDetected;
    // A takeover's backup must have been admin-alive SOME time — it can
    // never be a collector that is currently mid-takeover itself as the
    // dead party. (backup == collector would be a self-adoption bug.)
    if (ev.what != What::kDeathDetected && ev.backup == ev.collector) {
      return Failure{"collector " + std::to_string(ev.collector) +
                         " adopted by itself",
                     {}};
    }
  }
  for (const auto& [c, expected] : next_expected) {
    if (expected != What::kDeathDetected) {
      return Failure{"collector " + std::to_string(c) +
                         " log ends mid-cycle (takeover without failback)",
                     {}};
    }
  }

  // Detection latency: every death must be declared within the liveness
  // timeout plus one tick plus one heartbeat of slack.
  const fault::RecoveryConfig rc;
  const auto detect_budget = rc.liveness.timeout_ns +
                             rc.liveness.heartbeat_interval_ns +
                             2 * rc.tick_interval_ns;
  for (const auto& w : plan) {
    std::uint64_t detected_at = 0;
    for (const auto& ev : recovery.log()) {
      if (ev.collector == w.collector && ev.what == What::kDeathDetected) {
        detected_at = ev.at_ns;
        break;
      }
    }
    if (detected_at < w.kill_at || detected_at > w.kill_at + detect_budget) {
      return Failure{"death of collector " + std::to_string(w.collector) +
                         " at t=" + std::to_string(w.kill_at) +
                         " detected at t=" + std::to_string(detected_at) +
                         ", budget " + std::to_string(detect_budget),
                     {}};
    }
  }
  return std::nullopt;
}

TEST(PropFault, RandomKillReviveSchedulesConvergeAndFailBack) {
  CheckConfig cfg;
  cfg.cases = 15;  // each case builds a full fat-tree WireFabric
  const auto report =
      check("fault_failback", failback_convergence_property, cfg);
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
}

}  // namespace
}  // namespace dart::check
