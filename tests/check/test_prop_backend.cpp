// Storage-backend properties.
//
// 1. sketch_wire_query_diff — random op streams through the REAL wire path
//    (crafted FETCH_ADD frames, template fast path and allocating path
//    mixed, with random per-frame loss) into a sketch-backed collector's
//    RNIC, diffed cell-for-cell against a reference tally built from
//    SketchBackendConfig's addressing; then the query protocol's sketch ops
//    (estimate + top-k) are exercised end-to-end over netsim and checked
//    against the same reference, including tie-robust top-k inclusion.
//
// 2. torn_read_rotation — the read-discipline property from store.hpp: a
//    writer thread bursts crafted KV reports at the ACTIVE region of a
//    RotatingCollector while the controller thread flips epochs; standby
//    reads that honor the grace discipline (wait for the in-flight burst to
//    finish before decoding the old region) must never observe a torn
//    [checksum ‖ value] pair — every found value is some key's one true
//    value.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "check/property.hpp"
#include "check/rng.hpp"
#include "core/collector.hpp"
#include "core/epoch_rotation.hpp"
#include "core/oracle.hpp"
#include "core/query_protocol.hpp"
#include "core/query_service.hpp"
#include "core/report_crafter.hpp"
#include "core/store_backend.hpp"
#include "net/headers.hpp"
#include "net/netsim.hpp"

namespace dart::check {
namespace {

core::CollectorEndpoint endpoint() {
  core::CollectorEndpoint ep;
  ep.mac = {0x02, 0xC0, 0, 0, 0, 1};
  ep.ip = net::Ipv4Addr::from_octets(10, 0, 100, 1);
  return ep;
}

core::ReporterEndpoint reporter() {
  core::ReporterEndpoint src;
  src.mac = {0x02, 0, 0, 0, 0, 1};
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  return src;
}

std::vector<std::byte> key_of(std::uint64_t id) {
  const auto k = core::sim_key(id);
  return {k.begin(), k.end()};
}

std::optional<Failure> sketch_wire_query_diff(Rng& rng) {
  constexpr std::uint64_t kUniverse = 12;

  core::DartConfig dart;
  dart.n_slots = 256;
  dart.n_addresses = 2;
  dart.value_bytes = 8;
  dart.master_seed = 0xD1F0 + rng.below(8);

  core::StoreBackendConfig choice;
  choice.kind = core::StoreBackendKind::kSketch;
  choice.sketch.rows = 1 + static_cast<std::uint32_t>(rng.below(3));
  choice.sketch.cols = 4 + rng.below(29);  // heavy collisions on purpose
  choice.sketch.seed = rng.u64();
  choice.sketch.topk_capacity = kUniverse;  // every queried key is tracked
  const core::SketchBackendConfig& cfg = choice.sketch;

  core::Collector collector(dart, 0, endpoint(), choice);
  const core::ReportCrafter crafter(dart);
  const auto info = collector.remote_info();
  const auto tpl =
      crafter.make_atomic_template(info, reporter(), rdma::Opcode::kRcFetchAdd);

  // Reference tally: one u64 per cell, updated with the backend's own
  // addressing for exactly the frames that were DELIVERED. Memory layout is
  // identical to the MR (host-endian u64 cells, row-major), so the diff at
  // the end is a byte compare.
  std::vector<std::uint64_t> ref_cells(cfg.n_cells(), 0);

  const auto n_ops = 1 + rng.below(40);
  std::uint32_t psn = 0;
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    const auto key = key_of(rng.below(kUniverse));
    const std::uint64_t delta = 1 + rng.below(8);
    for (std::uint32_t row = 0; row < cfg.rows; ++row) {
      const std::uint32_t this_psn = psn++;
      if (rng.chance(0.1)) continue;  // frame lost: neither side sees it
      std::vector<std::byte> frame;
      if (rng.chance(0.5)) {
        frame.resize(tpl.frame_size());
        const auto len = crafter.craft_sketch_increment_into(
            tpl, cfg, key, row, delta, this_psn, frame);
        if (len != frame.size()) {
          return Failure{"template crafting returned short frame", {}};
        }
      } else {
        frame = crafter.craft_sketch_increment(info, reporter(), cfg, key, row,
                                               delta, this_psn);
      }
      if (!collector.rnic().process_frame(frame).has_value()) {
        return Failure{"RNIC rejected a crafted sketch FETCH_ADD", frame};
      }
      ref_cells[cfg.cell_of(key, row)] += delta;
    }
  }

  // --- cell-for-cell diff: MR bytes vs reference tally ---------------------
  const auto mr = collector.backend().memory();
  if (mr.size() != ref_cells.size() * 8) {
    return Failure{"MR size diverged from sketch geometry", {}};
  }
  if (std::memcmp(mr.data(), ref_cells.data(), mr.size()) != 0) {
    return Failure{"sketch MR diverged from reference cells after wire ops",
                   {}};
  }

  const auto ref_estimate = [&](std::uint64_t id) {
    std::uint64_t best = UINT64_MAX;
    const auto key = key_of(id);
    for (std::uint32_t r = 0; r < cfg.rows; ++r) {
      best = std::min(best, ref_cells[cfg.cell_of(key, r)]);
    }
    return best == UINT64_MAX ? 0 : best;
  };

  // --- query protocol v2 sketch ops, end-to-end over netsim ----------------
  net::Simulator sim{1};
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp;
  auto resolver = [&arp](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
    for (const auto& [addr, node] : arp) {
      if (addr == ip) return node;
    }
    return std::nullopt;
  };
  const auto service_ip = net::Ipv4Addr::from_octets(10, 0, 100, 1);
  core::QueryServiceNode service(collector, service_ip, resolver);
  const auto operator_ip = net::Ipv4Addr::from_octets(10, 9, 0, 1);
  core::ReportCrafter op_crafter(dart);
  core::OperatorClient op(op_crafter, operator_ip, {service_ip}, resolver);

  const auto op_node = sim.add_node(op);
  const auto svc_node = sim.add_node(service);
  arp.emplace_back(operator_ip, op_node);
  arp.emplace_back(service_ip, svc_node);
  sim.connect(op_node, svc_node, /*latency_ns=*/500 + rng.below(3000));

  const auto epoch = static_cast<std::uint32_t>(rng.u64());
  op.set_epoch(epoch);

  // Estimate every universe key over the wire; these queries also feed the
  // collector's heavy-hitter tracker (the read-side candidate stream).
  std::vector<std::uint64_t> ids(kUniverse);
  for (std::uint64_t k = 0; k < kUniverse; ++k) {
    ids[k] = op.sketch_estimate(key_of(k));
    if (ids[k] == 0) return Failure{"sketch_estimate failed to send", {}};
  }
  sim.run();
  for (std::uint64_t k = 0; k < kUniverse; ++k) {
    const auto resp = op.take_sketch_response(ids[k]);
    if (!resp.has_value()) {
      return Failure{"estimate response lost for key " + std::to_string(k), {}};
    }
    if (resp->op != core::SketchOp::kEstimate || resp->epoch != epoch) {
      return Failure{"estimate response header mismatch", {}};
    }
    if (resp->unavailable() || resp->degraded()) {
      return Failure{"healthy sketch collector flagged its answer", {}};
    }
    if (resp->estimate != ref_estimate(k)) {
      return Failure{"wire estimate " + std::to_string(resp->estimate) +
                         " != reference " + std::to_string(ref_estimate(k)) +
                         " for key " + std::to_string(k),
                     {}};
    }
  }

  // Top-k against the tracker (every universe key was offered above).
  const auto k_req = static_cast<std::uint16_t>(1 + rng.below(kUniverse + 4));
  const auto topk_id = op.sketch_topk(0, k_req);
  if (topk_id == 0) return Failure{"sketch_topk failed to send", {}};
  sim.run();
  const auto topk = op.take_sketch_response(topk_id);
  if (!topk.has_value()) return Failure{"top-k response lost", {}};
  if (topk->op != core::SketchOp::kTopK || topk->epoch != epoch) {
    return Failure{"top-k response header mismatch", {}};
  }
  const std::size_t expect_n = std::min<std::size_t>(k_req, kUniverse);
  if (topk->hitters.size() != expect_n) {
    return Failure{"top-k returned " + std::to_string(topk->hitters.size()) +
                       " entries, expected " + std::to_string(expect_n),
                   {}};
  }
  std::vector<bool> returned(kUniverse, false);
  std::uint64_t min_returned = UINT64_MAX;
  for (std::size_t i = 0; i < topk->hitters.size(); ++i) {
    const auto& hh = topk->hitters[i];
    if (i > 0 && hh.count > topk->hitters[i - 1].count) {
      return Failure{"top-k not sorted descending", {}};
    }
    // Identify which universe key this is and check the count is its live
    // reference estimate.
    bool matched = false;
    for (std::uint64_t k = 0; k < kUniverse && !matched; ++k) {
      if (hh.key == key_of(k)) {
        matched = true;
        returned[k] = true;
        if (hh.count != ref_estimate(k)) {
          return Failure{"top-k count diverged from reference estimate", {}};
        }
      }
    }
    if (!matched) return Failure{"top-k returned a key never offered", {}};
    min_returned = std::min(min_returned, hh.count);
  }
  // Tie-robust inclusion: nothing excluded may beat anything returned.
  for (std::uint64_t k = 0; k < kUniverse; ++k) {
    if (!returned[k] && ref_estimate(k) > min_returned) {
      return Failure{"excluded key " + std::to_string(k) +
                         " outranks a returned hitter",
                     {}};
    }
  }
  return std::nullopt;
}

// Disciplined standby reads during live rotation never see torn pairs.
std::optional<Failure> torn_read_rotation(Rng& rng) {
  constexpr std::uint64_t kUniverse = 8;

  core::DartConfig dart;
  dart.n_slots = 128;  // collisions likely: torn pairs would be observable
  dart.n_addresses = 2;
  dart.value_bytes = 8;
  dart.master_seed = 0x707A + rng.below(16);
  core::RotatingCollector collector(dart, 0, endpoint());
  const core::ReportCrafter crafter(dart);

  // One true value per key, recognizable on sight.
  const auto value_of = [](std::uint64_t id) {
    std::vector<std::byte> v(8);
    const std::uint64_t word = id * 0x9E37'79B9'7F4A'7C15ull + 1;
    std::memcpy(v.data(), &word, 8);
    return v;
  };

  std::atomic<std::uint64_t> bursts_done{0};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint32_t psn = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // Fresh row per burst: after a flip the next burst lands on the new
      // active region, and `bursts_done` publishing (release) lets the
      // auditor prove the old region went quiescent.
      const auto row = collector.active_info();
      for (std::uint64_t j = 0; j < kUniverse; ++j) {
        for (std::uint32_t n = 0; n < dart.n_addresses; ++n) {
          const auto frame = crafter.craft_write(
              row, reporter(), core::sim_key(j), value_of(j), n, psn++);
          if (!collector.rnic().process_frame(frame).has_value()) {
            stop.store(true, std::memory_order_release);
            return;
          }
        }
      }
      bursts_done.fetch_add(1, std::memory_order_release);
    }
  });

  const auto wait_for_bursts = [&](std::uint64_t target) {
    while (bursts_done.load(std::memory_order_acquire) < target &&
           !stop.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  };

  std::optional<Failure> failure;
  const auto n_flips = 1 + rng.below(3);
  for (std::uint64_t f = 0; f < n_flips && !failure; ++f) {
    wait_for_bursts(bursts_done.load(std::memory_order_acquire) + 2);
    collector.flip();
    // Grace discipline: the burst in flight at the flip may still be
    // writing the OLD (now standby) region. Two more completed bursts
    // guarantee it finished — the release/acquire pair on bursts_done makes
    // its writes visible — so the standby region is quiescent.
    const auto d0 = bursts_done.load(std::memory_order_acquire);
    wait_for_bursts(d0 + 2);

    const auto [epoch, region] = collector.epoch_snapshot();
    if (region != (epoch & 1)) {
      failure = Failure{"epoch snapshot torn across flip", {}};
      break;
    }

    for (std::uint64_t j = 0; j < kUniverse; ++j) {
      const auto r = collector.query_standby(core::sim_key(j));
      if (r.outcome == core::QueryOutcome::kFound && r.value != value_of(j)) {
        failure = Failure{"disciplined standby read returned a torn value "
                          "for key " +
                              std::to_string(j),
                          {}};
        break;
      }
    }
  }

  stop.store(true, std::memory_order_release);
  writer.join();

  // Final quiescent audit: with the writer joined, every found value in the
  // active region must also be some key's one true value.
  for (std::uint64_t j = 0; j < kUniverse && !failure; ++j) {
    const auto r = collector.query(core::sim_key(j));
    if (r.outcome == core::QueryOutcome::kFound && r.value != value_of(j)) {
      failure = Failure{"quiescent read returned a torn value", {}};
    }
  }
  return failure;
}

TEST(PropBackend, SketchWirePathAndQueriesMatchReference) {
  const auto report = check("sketch_wire_query_diff", sketch_wire_query_diff, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

TEST(PropBackend, DisciplinedReadsNeverTornUnderRotation) {
  CheckConfig cfg;
  cfg.cases = 10;  // each case runs a real writer thread
  const auto report = check("torn_read_rotation", torn_read_rotation, cfg);
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
}

// Fixed regression: the sketch ops answer (not drop) on a KV-backed
// collector, flagged unavailable — "wrong backend" is distinguishable from
// "dead collector" without a timeout.
TEST(PropBackend, SketchOpsOnKvCollectorFlagUnavailable) {
  core::DartConfig dart;
  dart.n_slots = 256;
  dart.n_addresses = 2;
  dart.value_bytes = 8;
  dart.master_seed = 3;
  core::Collector collector(dart, 0, endpoint());  // default KV backend

  net::Simulator sim{1};
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp;
  auto resolver = [&arp](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
    for (const auto& [addr, node] : arp) {
      if (addr == ip) return node;
    }
    return std::nullopt;
  };
  const auto service_ip = net::Ipv4Addr::from_octets(10, 0, 100, 1);
  core::QueryServiceNode service(collector, service_ip, resolver);
  const auto operator_ip = net::Ipv4Addr::from_octets(10, 9, 0, 1);
  core::ReportCrafter crafter(dart);
  core::OperatorClient op(crafter, operator_ip, {service_ip}, resolver);

  const auto op_node = sim.add_node(op);
  const auto svc_node = sim.add_node(service);
  arp.emplace_back(operator_ip, op_node);
  arp.emplace_back(service_ip, svc_node);
  sim.connect(op_node, svc_node, 500);

  const auto est_id = op.sketch_estimate(core::sim_key(1));
  const auto topk_id = op.sketch_topk(0, 4);
  sim.run();

  for (const auto id : {est_id, topk_id}) {
    const auto resp = op.take_sketch_response(id);
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(resp->unavailable());
    EXPECT_EQ(resp->estimate, 0u);
    EXPECT_TRUE(resp->hitters.empty());
  }
  EXPECT_EQ(service.sketch_served(), 2u);
  EXPECT_EQ(service.sketch_unavailable(), 2u);
  EXPECT_EQ(op.pending(), 0u);
}

}  // namespace
}  // namespace dart::check
