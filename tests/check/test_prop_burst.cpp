// Differential properties for the burst datapath (SIMD PR): the batch
// entry points — ReportCrafter::craft_write_into_n and
// SimulatedRnic::process_frames — must be observationally identical to the
// per-op/per-frame paths they accelerate, and burst-applied DMA must land
// the same bytes the ReferenceFabric oracle computes. Each property runs
// 1000 seeded cases; the sanitizer matrix re-runs them with DART_NO_SIMD=1
// so both dispatch modes (PCLMUL/AVX2 and forced scalar) are covered.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "check/gen.hpp"
#include "check/golden.hpp"
#include "check/property.hpp"
#include "check/reference.hpp"
#include "core/collector.hpp"
#include "core/oracle.hpp"
#include "core/report_crafter.hpp"

namespace dart::check {
namespace {

core::CollectorEndpoint burst_endpoint() {
  core::CollectorEndpoint ep;
  ep.mac = {0x02, 0x00, 0x00, 0xBB, 0x00, 0x01};
  ep.ip = net::Ipv4Addr::from_octets(10, 99, 0, 1);
  return ep;
}

core::ReporterEndpoint burst_reporter() {
  core::ReporterEndpoint src;
  src.mac = {0x02, 0x00, 0x00, 0xAA, 0x00, 0x01};
  src.ip = net::Ipv4Addr::from_octets(10, 99, 0, 2);
  return src;
}

// --- burst crafting ---------------------------------------------------------
//
// craft_write_into_n batch-hashes slot addresses (AVX2 XXH64 when every key
// is 8 bytes) and patches frames back-to-back. Byte-identity against the
// already-proven craft_write_into, op by op, over op counts that cross the
// 64-lane chunk boundary and key widths that force the scalar fallback.
std::optional<Failure> burst_craft_identity(Rng& rng) {
  const auto cfg = gen_small_config(rng);
  const core::ReportCrafter crafter(cfg);
  core::Collector collector(cfg, /*collector_id=*/0, burst_endpoint());
  const auto dst = collector.remote_info();
  const auto tpl = crafter.make_write_template(dst, burst_reporter());

  const std::size_t n_ops = 1 + rng.below(90);  // crosses the 64-op chunk
  // Mostly 8-byte sim keys (the batched lane); sometimes odd widths so the
  // burst path's per-op scalar fallback is exercised in the same stream.
  std::vector<std::vector<std::byte>> keys(n_ops);
  std::vector<std::vector<std::byte>> values(n_ops);
  std::vector<core::ReportCrafter::WriteOp> ops(n_ops);
  std::uint32_t psn = static_cast<std::uint32_t>(rng.below(1u << 20));
  const bool all_eight = rng.below(4) != 0;
  for (std::size_t i = 0; i < n_ops; ++i) {
    if (all_eight || rng.below(8) != 0) {
      const auto k = core::sim_key(gen_key(rng));
      keys[i].assign(k.begin(), k.end());
    } else {
      keys[i].resize(1 + rng.below(16));
      for (auto& b : keys[i]) {
        b = static_cast<std::byte>(rng.below(256));
      }
    }
    values[i] = gen_value(rng, cfg.value_bytes);
    ops[i].key = keys[i];
    ops[i].value = values[i];
    ops[i].n = static_cast<std::uint32_t>(rng.below(cfg.n_addresses));
    ops[i].psn = psn++;
  }

  std::vector<std::byte> burst(n_ops * tpl.frame_size());
  const auto crafted = crafter.craft_write_into_n(tpl, ops, burst);
  if (crafted != n_ops) {
    return Failure{"craft_write_into_n crafted " + std::to_string(crafted) +
                       " of " + std::to_string(n_ops) + " frames",
                   {}};
  }

  std::vector<std::byte> single(tpl.frame_size());
  for (std::size_t i = 0; i < n_ops; ++i) {
    const auto len = crafter.craft_write_into(tpl, ops[i].key, ops[i].value,
                                              ops[i].n, ops[i].psn, single);
    if (len != tpl.frame_size()) {
      return Failure{"reference craft_write_into failed at op " +
                         std::to_string(i),
                     {}};
    }
    const auto frame = std::span<const std::byte>(burst).subspan(
        i * tpl.frame_size(), tpl.frame_size());
    if (!std::ranges::equal(frame, std::span<const std::byte>(single))) {
      return Failure{"burst frame " + std::to_string(i) + "/" +
                         std::to_string(n_ops) +
                         " differs from craft_write_into (key width " +
                         std::to_string(ops[i].key.size()) + ")",
                     std::vector<std::byte>(frame.begin(), frame.end())};
    }
  }
  return std::nullopt;
}

TEST(PropBurst, BurstCraftIsByteIdenticalToPerOpCraft) {
  const auto report = check("burst_craft_identity", burst_craft_identity, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

// --- burst ingest -----------------------------------------------------------
//
// Two identical collectors (same config/id → same rkey, QPN, base vaddr) fed
// the same frame stream: one frame at a time vs one process_frames burst.
// The stream mixes valid WRITE/atomic/multiwrite frames with corrupted,
// truncated, and garbage frames, so the staged burst path must agree with
// the single-frame path on every verdict counter — not just on the happy
// path — and on every byte of store memory.
struct CounterSnapshot {
  const char* name;
  std::uint64_t value;
};

std::vector<CounterSnapshot> snapshot(const rdma::RnicCounters& c) {
  return {
      {"frames", c.frames.load()},
      {"executed", c.executed.load()},
      {"writes", c.writes.load()},
      {"multiwrite_frames", c.multiwrite_frames.load()},
      {"fetch_adds", c.fetch_adds.load()},
      {"compare_swaps", c.compare_swaps.load()},
      {"cas_mismatches", c.cas_mismatches.load()},
      {"not_roce", c.not_roce.load()},
      {"bad_icrc", c.bad_icrc.load()},
      {"bad_opcode", c.bad_opcode.load()},
      {"unknown_qp", c.unknown_qp.load()},
      {"psn_rejected", c.psn_rejected.load()},
      {"bad_rkey", c.bad_rkey.load()},
      {"pd_mismatch", c.pd_mismatch.load()},
      {"access_denied", c.access_denied.load()},
      {"out_of_bounds", c.out_of_bounds.load()},
      {"unaligned_atomic", c.unaligned_atomic.load()},
      {"stalled", c.stalled.load()},
      {"qp_error", c.qp_error.load()},
  };
}

std::optional<Failure> burst_ingest_identity(Rng& rng) {
  const auto cfg = gen_small_config(rng);
  const core::ReportCrafter crafter(cfg);
  core::Collector one_by_one(cfg, /*collector_id=*/0, burst_endpoint());
  core::Collector bursty(cfg, /*collector_id=*/0, burst_endpoint());
  one_by_one.rnic().set_dta_multiwrite(true);
  bursty.rnic().set_dta_multiwrite(true);
  const auto dst = one_by_one.remote_info();
  const auto src = burst_reporter();

  const std::size_t n_frames = 1 + rng.below(80);  // crosses the 32-frame burst
  std::vector<std::vector<std::byte>> frames(n_frames);
  std::uint32_t psn = 0;
  for (std::size_t i = 0; i < n_frames; ++i) {
    const auto key = core::sim_key(gen_key(rng));
    const auto value = gen_value(rng, cfg.value_bytes);
    const auto shape = rng.below(10);
    switch (shape) {
      case 0:  // DTA multiwrite: all N copies in one frame
        frames[i] = crafter.craft_multiwrite(dst, src, key, value, psn++);
        break;
      case 1:  // atomic FETCH_ADD on a store word
        frames[i] = crafter.craft_fetch_add(
            dst, src, dst.base_vaddr + rng.below(cfg.n_slots) * 8,
            rng.below(1u << 16), psn++);
        break;
      case 2: {  // corrupted: one flipped byte in an otherwise valid WRITE
        frames[i] = crafter.craft_write(
            dst, src, key, value,
            static_cast<std::uint32_t>(rng.below(cfg.n_addresses)), psn++);
        auto& f = frames[i];
        f[rng.below(f.size())] ^= static_cast<std::byte>(1 + rng.below(255));
        break;
      }
      case 3: {  // truncated valid WRITE (any prefix length, even 0)
        frames[i] = crafter.craft_write(
            dst, src, key, value,
            static_cast<std::uint32_t>(rng.below(cfg.n_addresses)), psn++);
        frames[i].resize(rng.below(frames[i].size()));
        break;
      }
      case 4: {  // garbage bytes
        frames[i].resize(rng.below(128));
        for (auto& b : frames[i]) {
          b = static_cast<std::byte>(rng.below(256));
        }
        break;
      }
      default:  // valid WRITE of one copy
        frames[i] = crafter.craft_write(
            dst, src, key, value,
            static_cast<std::uint32_t>(rng.below(cfg.n_addresses)), psn++);
        break;
    }
  }

  std::size_t single_executed = 0;
  for (const auto& f : frames) {
    if (one_by_one.rnic().process_frame(f).has_value()) ++single_executed;
  }
  std::vector<std::span<const std::byte>> views(frames.begin(), frames.end());
  const auto burst_executed = bursty.rnic().process_frames(views);

  if (burst_executed != single_executed) {
    return Failure{"process_frames executed " + std::to_string(burst_executed) +
                       " ops, per-frame path executed " +
                       std::to_string(single_executed),
                   {}};
  }
  const auto a = snapshot(one_by_one.ingest_counters());
  const auto b = snapshot(bursty.ingest_counters());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].value != b[i].value) {
      return Failure{std::string("counter ") + a[i].name + " diverged: " +
                         "per-frame " + std::to_string(a[i].value) +
                         " burst " + std::to_string(b[i].value),
                     {}};
    }
  }
  const auto mem_a = one_by_one.store().memory();
  const auto mem_b = bursty.store().memory();
  if (!std::ranges::equal(mem_a, mem_b)) {
    std::size_t off = 0;
    while (off < mem_a.size() && mem_a[off] == mem_b[off]) ++off;
    return Failure{"store byte " + std::to_string(off) +
                       " diverged: per-frame 0x" + to_hex({&mem_a[off], 1}) +
                       " burst 0x" + to_hex({&mem_b[off], 1}),
                   {}};
  }
  return std::nullopt;
}

TEST(PropBurst, BurstIngestMatchesPerFrameIngest) {
  const auto report = check("burst_ingest_identity", burst_ingest_identity, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

// --- burst end-to-end vs the oracle -----------------------------------------
//
// The full accelerated pipeline — craft_write_into_n burst frames pushed
// through process_frames DMA — must leave store memory byte-identical to
// ReferenceFabric applying the same logical write ops directly. This is the
// ISSUE's "post-DMA memory vs ReferenceFabric" property for the new fast
// paths: if either the batch hasher, the fused classifier, or the staged
// apply drifts by one byte, the diff pins it.
std::optional<Failure> burst_end_to_end(Rng& rng) {
  const auto cfg = gen_small_config(rng);
  const core::ReportCrafter crafter(cfg);
  core::Collector collector(cfg, /*collector_id=*/0, burst_endpoint());
  ReferenceFabric reference(cfg);
  const auto dst = collector.remote_info();
  const auto tpl = crafter.make_write_template(dst, burst_reporter());

  const std::size_t n_ops = 1 + rng.below(80);
  std::vector<std::array<std::byte, 8>> keys(n_ops);
  std::vector<std::vector<std::byte>> values(n_ops);
  std::vector<core::ReportCrafter::WriteOp> ops(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) {
    ReportOp logical;
    logical.kind = ReportOp::Kind::kWrite;
    logical.key = gen_key(rng);
    logical.value = gen_value(rng, cfg.value_bytes);
    logical.copy = static_cast<std::uint32_t>(rng.below(cfg.n_addresses));
    keys[i] = core::sim_key(logical.key);
    values[i] = logical.value;
    ops[i].key = keys[i];
    ops[i].value = values[i];
    ops[i].n = logical.copy;
    ops[i].psn = static_cast<std::uint32_t>(i);
    reference.apply(logical);
  }

  std::vector<std::byte> burst(n_ops * tpl.frame_size());
  if (crafter.craft_write_into_n(tpl, ops, burst) != n_ops) {
    return Failure{"craft_write_into_n failed", {}};
  }
  std::vector<std::span<const std::byte>> views(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) {
    views[i] = std::span<const std::byte>(burst).subspan(i * tpl.frame_size(),
                                                         tpl.frame_size());
  }
  const auto executed = collector.rnic().process_frames(views);
  if (executed != n_ops) {
    return Failure{"burst DMA executed " + std::to_string(executed) + " of " +
                       std::to_string(n_ops) + " crafted frames",
                   {}};
  }

  const auto real = collector.store().memory();
  const auto ref = reference.memory();
  if (!std::ranges::equal(real, ref)) {
    std::size_t off = 0;
    while (off < real.size() && real[off] == ref[off]) ++off;
    return Failure{"store byte " + std::to_string(off) +
                       " diverged from ReferenceFabric: real 0x" +
                       to_hex({&real[off], 1}) + " reference 0x" +
                       to_hex({&ref[off], 1}),
                   {}};
  }
  return std::nullopt;
}

TEST(PropBurst, BurstPipelineMatchesReferenceFabric) {
  const auto report = check("burst_end_to_end", burst_end_to_end, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

}  // namespace
}  // namespace dart::check
