// Protocol-v2 epoch-echo properties for the live operator ↔ service
// exchange. The fixed regression tests pin one duplicating relay and one
// forged replay; these properties drive the exchange under RANDOM
// duplication factors on BOTH directions, random epoch bumps between
// requests, and random post-hoc replays — 1000 seeded cases — and assert
// the v2 bookkeeping contract exactly:
//
//   epoch echo    every recorded response carries the epoch its request was
//                 stamped with, not the client's current epoch
//   retire once   a request retires on its FIRST response; every extra
//                 delivery (request-dup × response-dup − 1 per query) counts
//                 unexpected and cannot corrupt pending()
//   truth         found/empty and the value match what the cluster holds
//   no leakage    healthy services never set degraded/stale markers
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "check/property.hpp"
#include "check/rng.hpp"
#include "core/cluster.hpp"
#include "core/query_protocol.hpp"
#include "core/query_service.hpp"
#include "core/report_crafter.hpp"
#include "net/headers.hpp"
#include "net/netsim.hpp"

namespace dart::check {
namespace {

// Forwards every packet to `target` `copies` times — the generalized
// duplicating link (copies=1 is a faithful relay).
class RepeatingRelay final : public net::Node {
 public:
  RepeatingRelay(net::NodeId target, std::uint32_t copies)
      : target_(target), copies_(copies) {}
  void receive(net::Packet packet, std::uint64_t) override {
    for (std::uint32_t i = 1; i < copies_; ++i) {
      sim_->send(self_, target_, packet.clone());
    }
    sim_->send(self_, target_, std::move(packet));
  }

 private:
  net::NodeId target_;
  std::uint32_t copies_;
};

std::optional<Failure> epoch_echo_property(Rng& rng) {
  core::DartConfig cfg;
  cfg.n_slots = 1 << 8;
  cfg.n_addresses = 2;
  cfg.value_bytes = 8;
  cfg.master_seed = 0x0E00 + rng.below(8);
  core::CollectorCluster cluster(cfg, 2);
  core::ReportCrafter crafter(cfg);

  net::Simulator sim{1};
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp;
  auto resolver = [&arp](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
    for (const auto& [addr, node] : arp) {
      if (addr == ip) return node;
    }
    return std::nullopt;
  };

  std::vector<net::Ipv4Addr> service_ips;
  std::vector<std::unique_ptr<core::QueryServiceNode>> services;
  for (std::uint32_t c = 0; c < 2; ++c) {
    service_ips.push_back(
        net::Ipv4Addr::from_octets(10, 0, 100, static_cast<std::uint8_t>(c)));
    services.push_back(std::make_unique<core::QueryServiceNode>(
        cluster.collector(c), service_ips[c], resolver));
  }
  const auto operator_ip = net::Ipv4Addr::from_octets(10, 9, 0, 1);
  core::OperatorClient op(crafter, operator_ip, service_ips, resolver);

  const auto op_node = sim.add_node(op);
  arp.emplace_back(operator_ip, op_node);
  std::vector<net::NodeId> svc_nodes;
  for (std::uint32_t c = 0; c < 2; ++c) {
    const auto node = sim.add_node(*services[c]);
    svc_nodes.push_back(node);
    arp.emplace_back(service_ips[c], node);
    sim.connect(op_node, node, /*latency_ns=*/500 + rng.below(3000));
  }

  // Random duplication on each direction. Repointing an ARP row at a relay
  // splices it into every path that resolves that IP.
  const auto dup_req = 1 + static_cast<std::uint32_t>(rng.below(3));
  const auto dup_resp = 1 + static_cast<std::uint32_t>(rng.below(3));
  std::vector<std::unique_ptr<RepeatingRelay>> relays;
  const auto splice = [&](net::Ipv4Addr ip, net::NodeId endpoint,
                          std::uint32_t copies) {
    relays.push_back(std::make_unique<RepeatingRelay>(endpoint, copies));
    const auto relay_node = sim.add_node(*relays.back());
    sim.connect(relay_node, op_node, 700);
    for (const auto svc : svc_nodes) sim.connect(relay_node, svc, 700);
    for (auto& [addr, node] : arp) {
      if (addr == ip) node = relay_node;
    }
  };
  if (dup_req > 1) {
    for (std::uint32_t c = 0; c < 2; ++c) {
      splice(service_ips[c], svc_nodes[c], dup_req);
    }
  }
  if (dup_resp > 1) splice(operator_ip, op_node, dup_resp);

  // Random workload: keys written (or not), epoch bumped between requests.
  // All writes land before sim.run() delivers any request, so the services
  // resolve against the same final store state a local query sees — the
  // truth oracle below stays exact even when two keys collide on a slot.
  struct Issued {
    std::uint64_t id;
    std::uint32_t epoch;
    std::vector<std::byte> key;
  };
  std::vector<Issued> issued;
  const auto n_queries = 1 + rng.below(6);
  std::uint32_t epoch = static_cast<std::uint32_t>(rng.u64());
  op.set_epoch(epoch);
  for (std::uint64_t q = 0; q < n_queries; ++q) {
    if (rng.chance(0.5)) {
      epoch = static_cast<std::uint32_t>(rng.u64());
      op.set_epoch(epoch);
    }
    Issued rec;
    rec.epoch = epoch;
    // Unique per query (leading index byte) so ids map to one key each.
    rec.key = rng.bytes(1 + rng.below(12));
    rec.key.insert(rec.key.begin(), static_cast<std::byte>(q));
    if (rng.chance(0.7)) {
      cluster.write(rec.key, rng.bytes(cfg.value_bytes));
    }
    rec.id = op.query(rec.key);
    issued.push_back(std::move(rec));
  }
  if (op.pending() != issued.size()) {
    return Failure{"pending() != queries in flight before the run", {}};
  }
  sim.run();

  // --- retire-once accounting ----------------------------------------------
  const auto deliveries =
      static_cast<std::uint64_t>(dup_req) * dup_resp * issued.size();
  if (op.pending() != 0) {
    return Failure{std::to_string(op.pending()) +
                       " requests still pending after a lossless run",
                   {}};
  }
  if (op.queries_sent() != issued.size() ||
      op.responses_received() != issued.size()) {
    return Failure{"sent/received: " + std::to_string(op.queries_sent()) +
                       "/" + std::to_string(op.responses_received()) +
                       " for " + std::to_string(issued.size()) + " queries",
                   {}};
  }
  if (op.unexpected_responses() != deliveries - issued.size()) {
    return Failure{"unexpected_responses " +
                       std::to_string(op.unexpected_responses()) +
                       ", duplication says " +
                       std::to_string(deliveries - issued.size()),
                   {}};
  }
  if (op.stray_responses() != 0) {
    return Failure{"well-addressed duplicates counted as stray", {}};
  }
  std::uint64_t served = 0;
  for (const auto& svc : services) {
    served += svc->requests_served();
    if (svc->malformed_requests() != 0 || svc->not_for_me() != 0) {
      return Failure{"service miscounted duplicated requests", {}};
    }
  }
  if (served != static_cast<std::uint64_t>(dup_req) * issued.size()) {
    return Failure{"services served " + std::to_string(served) +
                       ", request duplication says " +
                       std::to_string(dup_req * issued.size()),
                   {}};
  }

  // --- epoch echo + truth ---------------------------------------------------
  for (const auto& rec : issued) {
    const auto resp = op.take_response(rec.id);
    if (!resp.has_value()) {
      return Failure{"response for id " + std::to_string(rec.id) + " lost",
                     {}};
    }
    if (resp->epoch != rec.epoch) {
      return Failure{"response echoes epoch " + std::to_string(resp->epoch) +
                         ", request was stamped " + std::to_string(rec.epoch),
                     {}};
    }
    if (resp->degraded() || resp->stale_epochs != 0) {
      return Failure{"healthy service set degradation markers", {}};
    }
    // Differential truth: the over-the-wire answer must equal a local query
    // against the same cluster under the same (default) policy.
    const auto local = cluster.query(rec.key, core::ReturnPolicy::kPlurality);
    if (resp->outcome != local.outcome || resp->value != local.value ||
        resp->checksum_matches != local.checksum_matches ||
        resp->distinct_values != local.distinct_values) {
      return Failure{"wire response diverged from the local query for id " +
                         std::to_string(rec.id),
                     {}};
    }
  }

  // --- forged replay for a retired id --------------------------------------
  // Epoch echo must anchor to the recorded response even when a replay with
  // a different epoch and value shows up later.
  if (!issued.empty() && rng.chance(0.5)) {
    const auto& victim = issued[rng.below(issued.size())];
    core::QueryResponse forged;
    forged.request_id = victim.id;
    forged.epoch = victim.epoch ^ 0xFFFF'FFFFu;
    forged.outcome = core::QueryOutcome::kFound;
    forged.value = rng.bytes(cfg.value_bytes);
    net::UdpFrameSpec spec;
    spec.src_ip = service_ips[0];
    spec.dst_ip = operator_ip;
    spec.src_port = core::kDartQueryUdpPort;
    spec.dst_port = core::kDartQueryUdpPort;
    const auto before = op.unexpected_responses();
    op.receive(
        net::Packet(net::build_udp_frame(spec,
                                         encode_query_response(forged))),
        0);
    if (op.unexpected_responses() != before + 1 || op.pending() != 0) {
      return Failure{"forged replay corrupted the retire-once ledger", {}};
    }
  }
  return std::nullopt;
}

TEST(PropQueryV2, EpochEchoSurvivesDuplicationOnBothDirections) {
  const auto report = check("query_epoch_echo", epoch_echo_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

}  // namespace
}  // namespace dart::check
