// Gateway pipeline properties: N concurrent operator sessions issue
// interleaved KV / primitive / sketch reads through the QueryGateway while
// the upstream (gateway ↔ service) path drops packets at random and a
// mid-stream failover retargets one collector at its backup. The contract:
//
//   always answered   every submitted request produces exactly one answer —
//                     a live one, a cached one, or a synthesized timeout —
//                     so session pending() and gateway inflight() drain to 0
//   truth or flagged  every answer either matches the single-threaded
//                     cluster-local oracle exactly (flags == 0) or carries a
//                     degradation flag (degraded / unavailable / timeout)
//   ledger            upstream sends = live answers + retries that fed them,
//                     and cache hits never reach the services
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "check/property.hpp"
#include "check/rng.hpp"
#include "core/cluster.hpp"
#include "core/primitives.hpp"
#include "core/query_service.hpp"
#include "net/netsim.hpp"
#include "query/gateway.hpp"

namespace dart::check {
namespace {

// Drops each packet with probability `p_millis`/1000, deterministically from
// its own seed; survivors are forwarded to `target`.
class LossyRelay final : public net::Node {
 public:
  LossyRelay(net::NodeId target, std::uint32_t p_millis, std::uint64_t seed)
      : target_(target), p_millis_(p_millis), state_(seed | 1) {}
  void receive(net::Packet packet, std::uint64_t) override {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    if (z % 1000 < p_millis_) return;  // dropped
    sim_->send(self_, target_, std::move(packet));
  }

 private:
  net::NodeId target_;
  std::uint32_t p_millis_;
  std::uint64_t state_;
};

enum class OpKind : std::uint8_t { kKv, kCounter, kSketch };

struct IssuedOp {
  std::size_t session = 0;
  OpKind kind = OpKind::kKv;
  std::uint64_t id = 0;
  std::vector<std::byte> key;
};

std::optional<Failure> gateway_pipeline_property(Rng& rng) {
  core::DartConfig cfg;
  cfg.n_slots = 1 << 8;
  cfg.n_addresses = 2;
  cfg.value_bytes = 8;
  cfg.master_seed = 0x6A00 + rng.below(16);
  constexpr std::uint32_t kCollectors = 2;
  core::CollectorCluster cluster(cfg, kCollectors);
  const auto prim = core::default_primitives(cfg.master_seed);
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    if (!cluster.collector(c).enable_primitives(prim).ok()) {
      return Failure{"enable_primitives failed", {}};
    }
  }

  net::Simulator sim{1 + rng.below(1000)};
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp;
  auto resolver = [&arp](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
    for (const auto& [addr, node] : arp) {
      if (addr == ip) return node;
    }
    return std::nullopt;
  };

  dart::query::QueryGatewayConfig gcfg;
  gcfg.gateway_ip = net::Ipv4Addr::from_octets(10, 9, 2, 254);
  gcfg.request_timeout_ns = 100'000;
  gcfg.max_retries = 4;
  std::vector<std::unique_ptr<core::QueryServiceNode>> services;
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    const auto svc_ip =
        net::Ipv4Addr::from_octets(10, 0, 50, static_cast<std::uint8_t>(c));
    gcfg.service_ips.push_back(svc_ip);
    gcfg.virtual_ips.push_back(
        net::Ipv4Addr::from_octets(10, 9, 2, static_cast<std::uint8_t>(c)));
    services.push_back(std::make_unique<core::QueryServiceNode>(
        cluster.collector(c), svc_ip, resolver));
    services.back()->set_deployment(&cluster.crafter(), kCollectors);
  }
  dart::query::QueryGateway gateway(gcfg, cluster.crafter(), resolver);

  const auto gw_node = sim.add_node(gateway);
  arp.emplace_back(gcfg.gateway_ip, gw_node);
  std::vector<net::NodeId> svc_nodes;
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    const auto node = sim.add_node(*services[c]);
    svc_nodes.push_back(node);
    arp.emplace_back(gcfg.service_ips[c], node);
    arp.emplace_back(gcfg.virtual_ips[c], gw_node);
    sim.connect(gw_node, node, 500 + rng.below(2000));
  }

  // Random loss on the UPSTREAM path only (both directions): requests to the
  // services and responses back to the gateway run through lossy relays. The
  // gateway's deadline + retry machinery is what keeps the contract alive.
  const auto p_millis = static_cast<std::uint32_t>(rng.below(350));
  std::vector<std::unique_ptr<LossyRelay>> relays;
  const auto splice = [&](net::Ipv4Addr ip, net::NodeId endpoint) {
    relays.push_back(
        std::make_unique<LossyRelay>(endpoint, p_millis, rng.u64()));
    const auto relay_node = sim.add_node(*relays.back());
    sim.connect(relay_node, gw_node, 300);
    for (const auto svc : svc_nodes) sim.connect(relay_node, svc, 300);
    for (auto& [addr, node] : arp) {
      if (addr == ip) node = relay_node;
    }
  };
  if (p_millis > 0) {
    for (std::uint32_t c = 0; c < kCollectors; ++c) {
      splice(gcfg.service_ips[c], svc_nodes[c]);
    }
    splice(gcfg.gateway_ip, gw_node);
  }

  // Workload state: a small key pool so coalescing and caching actually
  // trigger, all writes landed before any request is delivered.
  constexpr std::uint64_t kPool = 8;
  std::vector<std::vector<std::byte>> pool;
  std::vector<bool> written(kPool, false);
  for (std::uint64_t k = 0; k < kPool; ++k) {
    std::vector<std::byte> key(8);
    std::memcpy(key.data(), &k, 8);
    key[7] = static_cast<std::byte>(0xA0 + k);
    pool.push_back(key);
    if (rng.chance(0.7)) {
      cluster.write(pool[k], rng.bytes(cfg.value_bytes));
      written[k] = true;
    }
    if (rng.chance(0.5)) {
      (void)cluster.collector(cluster.owner_of(pool[k]))
          .counters()
          .fetch_add(pool[k], 1 + rng.below(1000));
    }
  }

  const auto n_sessions = 1 + rng.below(6);
  std::vector<dart::query::GatewaySession*> sessions;
  for (std::uint64_t s = 0; s < n_sessions; ++s) {
    sessions.push_back(&gateway.open_session());
  }

  std::vector<IssuedOp> issued;
  const auto issue_phase = [&](std::uint64_t ops_per_session) {
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      for (std::uint64_t i = 0; i < ops_per_session; ++i) {
        IssuedOp op;
        op.session = s;
        op.key = pool[rng.below(kPool)];
        switch (rng.below(3)) {
          case 0:
            op.kind = OpKind::kKv;
            op.id = sessions[s]->query(op.key);
            break;
          case 1:
            op.kind = OpKind::kCounter;
            op.id = sessions[s]->read_counter(op.key);
            break;
          default:
            op.kind = OpKind::kSketch;
            op.id = sessions[s]->sketch_estimate(op.key);
            break;
        }
        if (op.id == 0) continue;  // unroutable (never expected here)
        issued.push_back(std::move(op));
      }
    }
  };

  issue_phase(1 + rng.below(4));
  sim.run();

  // Mid-stream failover: one collector dies, its backup takes over, the
  // gateway is retargeted — then a second wave of requests rides the new
  // routing. The epoch tick invalidates phase-1 cache entries.
  const bool failover = rng.chance(0.6);
  std::uint32_t dead = 0;
  if (failover) {
    dead = static_cast<std::uint32_t>(rng.below(kCollectors));
    const std::uint32_t backup = (dead + 1) % kCollectors;
    services[dead]->set_online(false);
    services[backup]->begin_takeover(dead, /*stale_epochs=*/1);
    gateway.retarget(dead, backup);
  }
  gateway.on_epoch(1);
  issue_phase(1 + rng.below(4));
  sim.run();

  // --- always answered ------------------------------------------------------
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    if (sessions[s]->pending() != 0) {
      return Failure{"session " + std::to_string(s) + " still has " +
                         std::to_string(sessions[s]->pending()) +
                         " pending after the run",
                     {}};
    }
  }
  if (gateway.inflight() != 0) {
    return Failure{"gateway inflight() != 0 after the run", {}};
  }

  // --- truth or flagged -----------------------------------------------------
  for (const auto& op : issued) {
    auto* session = sessions[op.session];
    switch (op.kind) {
      case OpKind::kKv: {
        const auto resp = session->take_response(op.id);
        if (!resp.has_value()) {
          return Failure{"KV answer lost for id " + std::to_string(op.id), {}};
        }
        if (resp->flags != 0) break;  // degraded/timeout answers are exempt
        const auto truth = cluster.query(op.key);
        if (resp->outcome != truth.outcome || resp->value != truth.value) {
          return Failure{"unflagged KV answer diverged from the oracle", {}};
        }
        break;
      }
      case OpKind::kCounter: {
        const auto resp = session->take_primitive_response(op.id);
        if (!resp.has_value()) {
          return Failure{"counter answer lost for id " + std::to_string(op.id),
                         {}};
        }
        if (resp->flags != 0) break;
        const auto truth = cluster.collector(cluster.owner_of(op.key))
                               .counters()
                               .read(op.key);
        if (resp->counter_value != truth) {
          return Failure{"unflagged counter read " +
                             std::to_string(resp->counter_value) +
                             " diverged from oracle " + std::to_string(truth),
                         {}};
        }
        break;
      }
      case OpKind::kSketch: {
        const auto resp = session->take_sketch_response(op.id);
        if (!resp.has_value()) {
          return Failure{"sketch answer lost for id " + std::to_string(op.id),
                         {}};
        }
        // KV-backed collectors cannot answer sketch ops: every answer must
        // be flagged (unavailable, or degraded/timeout under faults).
        if (resp->flags == 0) {
          return Failure{"sketch op against a KV backend came back unflagged",
                         {}};
        }
        break;
      }
    }
  }

  // --- ledger ---------------------------------------------------------------
  std::uint64_t served = 0;
  for (const auto& svc : services) served += svc->requests_served();
  if (p_millis == 0) {
    // Lossless runs: no retries, no timeouts, and the services saw exactly
    // the non-coalesced non-cached upstream sends.
    if (gateway.upstream_retries() != 0 || gateway.upstream_timeouts() != 0) {
      return Failure{"lossless run recorded retries or timeouts", {}};
    }
    if (!failover && served != gateway.upstream_sent()) {
      return Failure{"services served " + std::to_string(served) +
                         " but the gateway sent " +
                         std::to_string(gateway.upstream_sent()),
                     {}};
    }
  }
  if (gateway.requests_total() != issued.size()) {
    return Failure{"request ledger " + std::to_string(gateway.requests_total()) +
                       " != issued " + std::to_string(issued.size()),
                   {}};
  }
  const auto answered_upstream =
      gateway.upstream_sent() - gateway.upstream_retries();
  if (answered_upstream + gateway.cache().hits() + gateway.coalesced_total() !=
      issued.size()) {
    return Failure{"upstream + cache + coalesce ledger does not cover issued",
                   {}};
  }
  return std::nullopt;
}

TEST(PropGateway, ConcurrentSessionsUnderLossAndFailoverMatchOracleOrFlag) {
  const auto report =
      check("gateway_pipeline", gateway_pipeline_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

}  // namespace
}  // namespace dart::check
