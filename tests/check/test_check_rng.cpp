// dartcheck Rng: record/replay determinism, the zero-is-simplest
// conventions, and the seed plumbing (case_seed, env overrides).
#include "check/rng.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "check/property.hpp"

namespace dart::check {
namespace {

TEST(CheckRng, SameSeedSameDraws) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.u64(), b.u64());
  Rng c(43);
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= a2.u64() != c.u64();
  EXPECT_TRUE(differs);
}

TEST(CheckRng, ReplayReproducesRecordedRun) {
  Rng rec(0xBEEF);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20; ++i) values.push_back(rec.below(1000));
  ASSERT_EQ(rec.draws(), 20u);

  Rng rep(rec.used());
  EXPECT_TRUE(rep.replaying());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rep.below(1000), values[static_cast<std::size_t>(i)]);
  }
}

TEST(CheckRng, ReplayPadsWithZerosPastTapeEnd) {
  const std::vector<std::uint64_t> tape = {7, 8};
  Rng rng(tape);
  EXPECT_EQ(rng.u64(), 7u);
  EXPECT_EQ(rng.u64(), 8u);
  EXPECT_EQ(rng.u64(), 0u);  // exhausted → zero
  EXPECT_EQ(rng.below(100), 0u);
  EXPECT_FALSE(rng.chance(0.5));  // zero draw answers "no"
  EXPECT_EQ(rng.draws(), 5u);
}

TEST(CheckRng, ZeroTapeDecodesToSimplestChoices) {
  Rng rng(std::span<const std::uint64_t>{});
  EXPECT_EQ(rng.below(1000), 0u);
  EXPECT_EQ(rng.range(5, 9), 5u);
  EXPECT_FALSE(rng.chance(0.99));
  EXPECT_EQ(rng.pick({10, 20, 30}), 10);  // first = simplest
}

TEST(CheckRng, BoundsRespected) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    const auto r = rng.range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
    const auto u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(rng.below(0), 0u);  // degenerate bound
}

TEST(CheckRng, ChanceExtremes) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(rng.chance(0.0));
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(rng.chance(1.0));
}

TEST(CheckRng, BytesLengthAndDeterminism) {
  Rng a(9), b(9);
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 64u}) {
    const auto x = a.bytes(n);
    EXPECT_EQ(x.size(), n);
    EXPECT_EQ(x, b.bytes(n));
  }
}

TEST(CheckSeeds, CaseZeroIsBaseSeed) {
  EXPECT_EQ(case_seed(0x1234, 0), 0x1234u);
  // Later cases are scrambled and distinct.
  EXPECT_NE(case_seed(0x1234, 1), 0x1234u);
  EXPECT_NE(case_seed(0x1234, 1), case_seed(0x1234, 2));
  EXPECT_NE(case_seed(0x1234, 1), case_seed(0x1235, 1));
}

TEST(CheckSeeds, EnvU64ParsesDecimalAndHex) {
  ::setenv("DART_TEST_ENV_U64", "123", 1);
  EXPECT_EQ(env_u64("DART_TEST_ENV_U64"), 123u);
  ::setenv("DART_TEST_ENV_U64", "0xff", 1);
  EXPECT_EQ(env_u64("DART_TEST_ENV_U64"), 255u);
  ::setenv("DART_TEST_ENV_U64", "nonsense", 1);
  EXPECT_EQ(env_u64("DART_TEST_ENV_U64"), std::nullopt);
  ::unsetenv("DART_TEST_ENV_U64");
  EXPECT_EQ(env_u64("DART_TEST_ENV_U64"), std::nullopt);
}

TEST(CheckSeeds, SeedFromEnvPrefersOverride) {
  ::unsetenv("DART_SEED");
  EXPECT_EQ(seed_from_env(0xF00D, "rng-test"), 0xF00Du);
  ::setenv("DART_SEED", "0xABCD", 1);
  EXPECT_EQ(seed_from_env(0xF00D, "rng-test"), 0xABCDu);
  ::unsetenv("DART_SEED");
}

}  // namespace
}  // namespace dart::check
