// Store- and protocol-level properties: slot encoding, shard partitioning,
// hash-family ranges, query-protocol roundtrips, and single-byte/truncation
// robustness of the wire parsers. 1000 seeded cases each.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/gen.hpp"
#include "check/golden.hpp"
#include "check/property.hpp"
#include "check/reference.hpp"
#include "core/oracle.hpp"
#include "core/query_protocol.hpp"
#include "core/store.hpp"

namespace dart::check {
namespace {

// write_one(key, value, n) must place exactly encode_slot_payload's bytes at
// slot_offset(slot_index(key, n)) and touch nothing else.
std::optional<Failure> slot_encoding_property(Rng& rng) {
  const auto cfg = gen_small_config(rng);
  core::DartStore store(cfg);
  const auto key = core::sim_key(gen_key(rng));
  const auto value = gen_value(rng, cfg.value_bytes);
  const auto n = static_cast<std::uint32_t>(rng.below(cfg.n_addresses));

  store.write_one(key, value, n);

  std::vector<std::byte> expected;
  store.encode_slot_payload(key, value, expected);
  if (expected.size() != cfg.slot_bytes()) {
    return Failure{"slot payload is " + std::to_string(expected.size()) +
                       " bytes, slot_bytes() says " +
                       std::to_string(cfg.slot_bytes()),
                   expected};
  }
  const auto index = store.slot_index(key, n);
  const auto mem = store.memory();
  const auto off = store.slot_offset(index);
  if (!std::equal(expected.begin(), expected.end(), mem.begin() + off)) {
    return Failure{"slot " + std::to_string(index) +
                       " content differs from encode_slot_payload",
                   expected};
  }
  // Nothing outside the written slot may change.
  for (std::size_t i = 0; i < mem.size(); ++i) {
    if (i >= off && i < off + expected.size()) continue;
    if (mem[i] != std::byte{0}) {
      return Failure{"write_one leaked to byte " + std::to_string(i), {}};
    }
  }
  // The decoded view must round-trip the checksum and value.
  const auto slot = store.read_slot(index);
  if (slot.checksum != store.key_checksum(key)) {
    return Failure{"decoded checksum mismatch", {}};
  }
  if (!std::ranges::equal(slot.value, value)) {
    return Failure{"decoded value mismatch", {}};
  }
  return std::nullopt;
}

TEST(PropStore, SlotEncodingMatchesWirePayload) {
  const auto report = check("slot_encoding", slot_encoding_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

// shard_of_slot and shard_slot_range must be exact inverses: ranges tile
// [0, M) without gaps or overlap, and every slot maps back to its range.
std::optional<Failure> shard_partition_property(Rng& rng) {
  const auto n_slots = 1 + rng.below(4096);
  const auto n_shards = static_cast<std::uint32_t>(
      1 + rng.below(std::min<std::uint64_t>(n_slots, 64)));

  std::uint64_t expected_lo = 0;
  for (std::uint32_t s = 0; s < n_shards; ++s) {
    const auto [lo, hi] = core::shard_slot_range(s, n_slots, n_shards);
    if (lo != expected_lo) {
      return Failure{"shard " + std::to_string(s) + " starts at " +
                         std::to_string(lo) + ", expected " +
                         std::to_string(expected_lo),
                     {}};
    }
    expected_lo = hi;
    // Spot-check membership across the range (endpoints + a random probe).
    for (const auto i : {lo, hi == lo ? lo : hi - 1,
                         lo + (hi > lo ? rng.below(hi - lo) : 0)}) {
      if (i < hi && core::shard_of_slot(i, n_slots, n_shards) != s) {
        return Failure{"slot " + std::to_string(i) + " maps to shard " +
                           std::to_string(core::shard_of_slot(i, n_slots,
                                                              n_shards)) +
                           ", range says " + std::to_string(s),
                       {}};
      }
    }
  }
  if (expected_lo != n_slots) {
    return Failure{"ranges cover " + std::to_string(expected_lo) + " of " +
                       std::to_string(n_slots) + " slots",
                   {}};
  }
  return std::nullopt;
}

TEST(PropStore, ShardRangesTileTheSlotArray) {
  const auto report = check("shard_partition", shard_partition_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

// Query protocol v2: encode→parse is the identity on every field, and the
// parsers are total on truncations of valid payloads.
std::optional<Failure> protocol_roundtrip_property(Rng& rng) {
  core::QueryRequest req;
  req.request_id = rng.u64();
  req.epoch = static_cast<std::uint32_t>(rng.u64());
  req.policy = static_cast<core::ReturnPolicy>(rng.below(4));
  req.key = rng.bytes(1 + rng.below(39));  // empty keys are rejected by spec

  const auto req_wire = core::encode_query_request(req);
  const auto req_back = core::parse_query_request(req_wire);
  if (!req_back.has_value() || req_back->request_id != req.request_id ||
      req_back->epoch != req.epoch || req_back->policy != req.policy ||
      req_back->key != req.key) {
    return Failure{"request roundtrip mismatch", req_wire};
  }

  core::QueryResponse resp;
  resp.request_id = rng.u64();
  resp.epoch = static_cast<std::uint32_t>(rng.u64());
  resp.flags = rng.chance(0.3) ? core::kResponseDegraded : 0;
  resp.stale_epochs = static_cast<std::uint16_t>(rng.below(1 << 16));
  resp.outcome = rng.chance(0.5) ? core::QueryOutcome::kFound
                                 : core::QueryOutcome::kEmpty;
  resp.checksum_matches = static_cast<std::uint8_t>(rng.below(8));
  resp.distinct_values = static_cast<std::uint8_t>(rng.below(8));
  if (resp.outcome == core::QueryOutcome::kFound) {
    resp.value = rng.bytes(1 + rng.below(32));
  }
  const auto resp_wire = core::encode_query_response(resp);
  const auto resp_back = core::parse_query_response(resp_wire);
  if (!resp_back.has_value() || resp_back->request_id != resp.request_id ||
      resp_back->epoch != resp.epoch || resp_back->flags != resp.flags ||
      resp_back->stale_epochs != resp.stale_epochs ||
      resp_back->outcome != resp.outcome || resp_back->value != resp.value) {
    return Failure{"response roundtrip mismatch", resp_wire};
  }

  // Any strict truncation must parse to nullopt (never crash, never
  // misinterpret a prefix as a complete message).
  if (!req_wire.empty()) {
    const auto cut = rng.below(req_wire.size());
    if (core::parse_query_request({req_wire.data(), cut}).has_value()) {
      return Failure{"truncated request parsed at " + std::to_string(cut),
                     req_wire};
    }
  }
  if (!resp_wire.empty()) {
    const auto cut = rng.below(resp_wire.size());
    if (core::parse_query_response({resp_wire.data(), cut}).has_value()) {
      return Failure{"truncated response parsed at " + std::to_string(cut),
                     resp_wire};
    }
  }
  return std::nullopt;
}

TEST(PropStore, QueryProtocolRoundTripsAndRejectsTruncations) {
  const auto report =
      check("protocol_roundtrip", protocol_roundtrip_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

// Robustness of the ingest path: take a valid crafted WRITE report and
// corrupt it — flip one byte or truncate. The RNIC must either reject it
// (store untouched) or, when the flipped byte is outside every validated
// field, produce exactly the unmutated frame's effect. Nothing else.
std::optional<Failure> frame_mutation_property(Rng& rng) {
  const auto dep = golden_deployment();
  const auto& cfg = dep.config;
  core::ReportCrafter crafter(cfg);

  // The pristine run, for the "identical effect" arm.
  core::Collector pristine(cfg, 0, dep.collector_endpoint);
  const auto key = core::sim_key(gen_key(rng));
  const auto value = gen_value(rng, cfg.value_bytes);
  const auto n = static_cast<std::uint32_t>(rng.below(cfg.n_addresses));
  const auto frame = crafter.craft_write(pristine.remote_info(), dep.reporter,
                                         key, value, n, /*psn=*/0);
  pristine.rnic().process_frame(frame);

  auto mutated = frame;
  const bool truncate = rng.chance(0.3);
  if (truncate) {
    mutated.resize(rng.below(mutated.size()));
  } else {
    const auto pos = rng.below(mutated.size());
    const auto bit = rng.below(8);
    mutated[pos] ^= static_cast<std::byte>(1u << bit);
  }

  core::Collector subject(cfg, 0, dep.collector_endpoint);
  (void)subject.rnic().process_frame(mutated);
  const auto& c = subject.ingest_counters();

  if (truncate && c.executed.load() != 0) {
    return Failure{"truncated frame executed", mutated};
  }
  const auto mem = subject.store().memory();
  if (c.executed.load() == 0) {
    if (!std::all_of(mem.begin(), mem.end(),
                     [](std::byte b) { return b == std::byte{0}; })) {
      return Failure{"rejected frame mutated store memory", mutated};
    }
  } else {
    // Executed despite the flip: the byte must have been outside all
    // validated fields, so the memory effect is the pristine one.
    if (!std::ranges::equal(mem, pristine.store().memory())) {
      return Failure{"mutated frame executed with a different effect",
                     mutated};
    }
  }
  return std::nullopt;
}

TEST(PropStore, CorruptedFramesRejectOrMatchPristineEffect) {
  const auto report = check("frame_mutation", frame_mutation_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

}  // namespace
}  // namespace dart::check
