// Consistent-hash collector-ring properties (core/collector_ring.hpp).
//
// 1. cht_lookup_determinism — two independently constructed rings with the
//    same (seed, capacity, height) agree on every bucket and every sampled
//    key, even when one reaches the membership by wholesale rebuild() and
//    the other by a shuffled sequence of remove_member() calls. This is the
//    replica contract: switch pipelines never talk to each other, so the
//    mapping must be a pure function of the deployment config + membership.
//
// 2. cht_minimal_movement — removing one of N members remaps ONLY the
//    buckets that member owned (each to a surviving member), and re-adding
//    it restores the exact prior owner table. The measured movement equals
//    the removed member's bucket count — nothing else moves.
//
// 3. cht_balance — at full membership the Maglev-style turn-taking fill
//    keeps the max/min buckets-per-member ratio < 1.25 for any height
//    >= 64 per member (construction actually guarantees <= (h+1)/h).
//
// 4. cht_wire_churn_diff — random op streams (KV writes, Append,
//    Key-Increment, Postcarding, with per-frame loss) through the REAL
//    kRing switch pipeline → RNIC → DMA path over a pool of collectors,
//    with members killed and revived MID-STREAM; every region of every
//    collector must stay byte-identical to per-collector ReferenceFabrics
//    routed by an independently constructed CollectorSelector mirroring the
//    same churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "check/gen.hpp"
#include "check/property.hpp"
#include "check/reference.hpp"
#include "check/rng.hpp"
#include "core/collector.hpp"
#include "core/collector_ring.hpp"
#include "core/oracle.hpp"
#include "net/headers.hpp"
#include "switchsim/dart_switch.hpp"

namespace dart::check {
namespace {

using core::CollectorRing;
using core::CollectorRingConfig;

// Random membership subset of [0, capacity); may be empty.
std::vector<std::uint32_t> gen_membership(Rng& rng, std::uint32_t capacity) {
  std::vector<std::uint32_t> members;
  for (std::uint32_t m = 0; m < capacity; ++m) {
    if (!rng.chance(0.35)) members.push_back(m);  // zero draw → live
  }
  return members;
}

std::optional<Failure> determinism_property(Rng& rng) {
  CollectorRingConfig cfg;
  cfg.capacity = 2 + static_cast<std::uint32_t>(rng.below(99));  // [2, 100]
  cfg.height_per_member = 4 + static_cast<std::uint32_t>(rng.below(61));
  cfg.seed = rng.u64();

  CollectorRing a(cfg);
  CollectorRing b(cfg);
  const auto members = gen_membership(rng, cfg.capacity);

  // Ring a: one wholesale rebuild. Ring b: the same membership reached by
  // removing the dead members one at a time, in a random order.
  a.rebuild(members);
  std::vector<std::uint32_t> dead;
  {
    std::vector<bool> live(cfg.capacity, false);
    for (const auto m : members) live[m] = true;
    for (std::uint32_t m = 0; m < cfg.capacity; ++m) {
      if (!live[m]) dead.push_back(m);
    }
  }
  while (!dead.empty()) {
    const auto i = rng.below(dead.size());
    b.remove_member(dead[i]);
    dead.erase(dead.begin() + static_cast<std::ptrdiff_t>(i));
  }

  if (a.owner_table() != b.owner_table()) {
    return Failure{"rebuild() and incremental removal disagree on the owner "
                   "table (capacity " +
                       std::to_string(cfg.capacity) + ")",
                   {}};
  }

  // Sampled keys: scalar lookup, batch lookup, and membership validity.
  std::vector<bool> live(cfg.capacity, false);
  for (const auto m : members) live[m] = true;
  constexpr std::size_t kSamples = 64;
  std::uint64_t hashes[kSamples];
  std::uint32_t batch[kSamples];
  for (std::size_t i = 0; i < kSamples; ++i) hashes[i] = rng.u64();
  a.lookup_batch(hashes, kSamples, batch);
  for (std::size_t i = 0; i < kSamples; ++i) {
    const auto owner = a.lookup(hashes[i]);
    if (owner != b.lookup(hashes[i])) {
      return Failure{"replica rings disagree on a key", {}};
    }
    if (owner != batch[i]) {
      return Failure{"lookup_batch diverged from scalar lookup", {}};
    }
    if (members.empty()) {
      if (owner != CollectorRing::kNoOwner) {
        return Failure{"empty membership produced an owner", {}};
      }
    } else if (owner >= cfg.capacity || !live[owner]) {
      return Failure{"lookup routed to a non-member id " +
                         std::to_string(owner),
                     {}};
    }
  }
  return std::nullopt;
}

std::optional<Failure> minimal_movement_property(Rng& rng) {
  CollectorRingConfig cfg;
  cfg.capacity = 2 + static_cast<std::uint32_t>(rng.below(63));  // [2, 64]
  cfg.height_per_member = 4 + static_cast<std::uint32_t>(rng.below(61));
  cfg.seed = rng.u64();
  CollectorRing ring(cfg);

  auto members = gen_membership(rng, cfg.capacity);
  while (members.size() < 2) {  // need a victim AND a survivor
    const auto m = static_cast<std::uint32_t>(rng.below(cfg.capacity));
    if (std::ranges::find(members, m) == members.end()) members.push_back(m);
  }
  ring.rebuild(members);

  const auto before = ring.owner_table();
  const auto victim = members[rng.below(members.size())];
  std::vector<bool> live(cfg.capacity, false);
  for (const auto m : members) live[m] = true;
  live[victim] = false;

  ring.remove_member(victim);
  const auto after = ring.owner_table();
  if (after.size() != before.size()) {
    return Failure{"owner table height changed across remove_member", {}};
  }

  std::size_t moved = 0;
  std::size_t owned = 0;
  for (std::size_t b = 0; b < before.size(); ++b) {
    if (before[b] == victim) ++owned;
    if (after[b] != before[b]) {
      ++moved;
      if (before[b] != victim) {
        return Failure{"bucket " + std::to_string(b) +
                           " moved but was not owned by the removed member",
                       {}};
      }
    }
    if (after[b] == victim) {
      return Failure{"bucket still owned by the removed member", {}};
    }
    if (after[b] >= cfg.capacity || !live[after[b]]) {
      return Failure{"bucket reassigned to a non-member", {}};
    }
  }
  if (moved != owned) {
    return Failure{"moved " + std::to_string(moved) + " buckets, expected " +
                       std::to_string(owned) +
                       " (every victim bucket must retarget exactly once)",
                   {}};
  }

  ring.add_member(victim);
  if (ring.owner_table() != before) {
    return Failure{"re-adding the member did not restore the prior table", {}};
  }
  return std::nullopt;
}

std::optional<Failure> balance_property(Rng& rng) {
  CollectorRingConfig cfg;
  cfg.capacity = 2 + static_cast<std::uint32_t>(rng.below(99));  // [2, 100]
  cfg.height_per_member = 64 + static_cast<std::uint32_t>(rng.below(33));
  cfg.seed = rng.u64();
  CollectorRing ring(cfg);  // full membership

  const auto counts = ring.bucket_counts();
  std::uint32_t lo = UINT32_MAX;
  std::uint32_t hi = 0;
  for (const auto c : counts) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  if (lo == 0) {
    return Failure{"a full-membership member owns zero buckets", {}};
  }
  const double ratio = static_cast<double>(hi) / static_cast<double>(lo);
  if (ratio >= 1.25) {
    return Failure{"balance ratio " + std::to_string(ratio) +
                       " >= 1.25 at height_per_member " +
                       std::to_string(cfg.height_per_member),
                   {}};
  }
  return std::nullopt;
}

// --- 4. end-to-end wire differential with mid-stream churn ------------------

core::ReporterEndpoint switch_endpoint() {
  core::ReporterEndpoint src;
  src.mac = {0x02, 0, 0, 0, 0, 1};
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  return src;
}

core::CollectorEndpoint collector_endpoint(std::uint32_t c) {
  core::CollectorEndpoint ep;
  ep.mac = {0x02, 0xC0, 0, 0, 0, static_cast<std::uint8_t>(c + 1)};
  ep.ip = net::Ipv4Addr::from_octets(10, 0, 100, static_cast<std::uint8_t>(c));
  return ep;
}

std::optional<Failure> wire_churn_property(Rng& rng) {
  const auto n = 3 + static_cast<std::uint32_t>(rng.below(6));  // [3, 8]

  core::DartConfig dart;
  dart.n_slots = 64;
  dart.n_addresses = 2;
  dart.checksum_bits = 32;
  dart.value_bytes = 8;
  dart.master_seed = 0xDA27'C470ull + rng.below(64);
  dart.selection = core::CollectorSelection::kRing;
  dart.ring_height_per_member = 8 + static_cast<std::uint32_t>(rng.below(9));
  const auto prim = gen_small_primitives(rng);

  // The real pool: n collectors, each with its KV store and the three
  // primitive regions brought up.
  std::vector<std::unique_ptr<core::Collector>> pool;
  for (std::uint32_t c = 0; c < n; ++c) {
    pool.push_back(
        std::make_unique<core::Collector>(dart, c, collector_endpoint(c)));
    if (!pool.back()->enable_primitives(prim).ok()) {
      return Failure{"enable_primitives failed", {}};
    }
  }

  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = dart;
  sc.mac = switch_endpoint().mac;
  sc.ip = switch_endpoint().ip;
  sc.max_collectors = n;  // ring capacity: must match the reference selector
  sc.write_mode = core::WriteMode::kAllSlots;
  sc.primitives = prim;
  switchsim::DartSwitchPipeline sw(sc);
  for (auto& c : pool) {
    sw.load_collector(c->remote_info());
    sw.load_primitives(c->remote_ring_info(), c->remote_counter_info(),
                       c->remote_postcard_info());
  }

  // The reference: one ReferenceFabric per collector, routed by an
  // INDEPENDENTLY constructed selector built from the same deployment
  // config — the same way a second switch replica would route.
  std::vector<std::unique_ptr<ReferenceFabric>> refs;
  for (std::uint32_t c = 0; c < n; ++c) {
    refs.push_back(std::make_unique<ReferenceFabric>(dart));
    refs.back()->enable_primitives(prim);
  }
  core::CollectorSelector selector(dart, n);  // full membership

  std::vector<std::uint32_t> live;
  std::vector<std::uint32_t> removed;
  for (std::uint32_t c = 0; c < n; ++c) live.push_back(c);

  // Delivers `frame` to the collector the reference selector owns the key
  // to, after checking the switch routed it to the SAME collector.
  const auto deliver = [&](const std::vector<std::byte>& frame,
                           std::uint32_t expected,
                           const char* what) -> std::optional<Failure> {
    if (frame.empty()) {
      return Failure{std::string(what) + ": switch emitted no frame", {}};
    }
    const auto parsed = net::parse_udp_frame(frame);
    if (!parsed) return Failure{std::string(what) + ": frame unparsable", frame};
    if (parsed->ip.dst != collector_endpoint(expected).ip) {
      return Failure{std::string(what) +
                         ": switch routed to a different collector than the "
                         "reference ring (expected " +
                         std::to_string(expected) + ")",
                     frame};
    }
    if (!pool[expected]->rnic().process_frame(frame).has_value()) {
      return Failure{std::string(what) + ": RNIC rejected the frame", frame};
    }
    return std::nullopt;
  };

  const auto n_steps = 8 + rng.below(40);
  for (std::uint64_t i = 0; i < n_steps; ++i) {
    // Mid-stream churn: kill a live member (keeping >= 1) or revive one.
    if (rng.chance(0.15)) {
      if (!removed.empty() && rng.chance(0.5)) {
        const auto j = rng.below(removed.size());
        const auto c = removed[j];
        removed.erase(removed.begin() + static_cast<std::ptrdiff_t>(j));
        live.push_back(c);
        sw.add_member(c);
        selector.add_member(c);
      } else if (live.size() > 1) {
        const auto j = rng.below(live.size());
        const auto c = live[j];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(j));
        removed.push_back(c);
        sw.remove_member(c);
        selector.remove_member(c);
      }
      continue;
    }

    const auto kind = rng.below(4);
    if (kind == 0) {
      // KV telemetry: kAllSlots emits one WRITE per copy, all to one owner.
      const std::uint64_t id = rng.below(24);
      const auto key = core::sim_key(id);
      const auto value = gen_value(rng, dart.value_bytes);
      const auto owner = selector.owner_of(key);
      const auto frames = sw.on_telemetry(key, value);
      if (frames.size() != dart.n_addresses) {
        return Failure{"kAllSlots emitted " + std::to_string(frames.size()) +
                           " frames, expected " +
                           std::to_string(dart.n_addresses),
                       {}};
      }
      for (std::uint32_t copy = 0; copy < dart.n_addresses; ++copy) {
        const bool dropped = rng.chance(0.1);
        if (!dropped) {
          if (auto f = deliver(frames[copy], owner, "kv write")) return f;
        }
        ReportOp op;
        op.kind = ReportOp::Kind::kWrite;
        op.key = id;
        op.value = value;
        op.copy = copy;
        op.dropped = dropped;
        refs[owner]->apply(op);
      }
    } else {
      auto op = gen_primitive_op(rng, prim);
      const auto key = core::sim_key(op.key);
      const auto owner = selector.owner_of(key);
      std::vector<std::byte> frame;
      const char* what = "";
      switch (op.kind) {
        case ReportOp::Kind::kAppend:
          frame = sw.on_append_event(key, op.value);
          what = "append";
          break;
        case ReportOp::Kind::kKeyIncrement:
          frame = sw.on_increment_event(key, op.operand);
          what = "key-increment";
          break;
        default:
          frame = sw.on_postcard_event(key, op.hop, op.value);
          what = "postcard";
          break;
      }
      if (!op.dropped) {
        if (auto f = deliver(frame, owner, what)) return f;
      }
      refs[owner]->apply(op);
    }
  }

  // Byte-for-byte: every region of every collector vs its reference twin.
  for (std::uint32_t c = 0; c < n; ++c) {
    const auto diff = [&](const char* region, std::span<const std::byte> real,
                          std::span<const std::byte> ref)
        -> std::optional<Failure> {
      if (real.size() == ref.size() && std::ranges::equal(real, ref)) {
        return std::nullopt;
      }
      return Failure{"collector " + std::to_string(c) + " " + region +
                         " diverged from its reference after churn",
                     {}};
    };
    if (auto f = diff("kv store", pool[c]->store().memory(),
                      refs[c]->memory())) {
      return f;
    }
    if (auto f = diff("append ring", pool[c]->ring().memory(),
                      refs[c]->ring().memory())) {
      return f;
    }
    if (auto f = diff("counters", pool[c]->counters().memory(),
                      refs[c]->counters().memory())) {
      return f;
    }
    if (auto f = diff("postcards", pool[c]->postcards().memory(),
                      refs[c]->postcards().memory())) {
      return f;
    }
  }

  // The pipeline's own selectors must agree with the reference replica
  // bucket-for-bucket after all the churn.
  if (sw.kv_selector() == nullptr ||
      sw.kv_selector()->ring().owner_table() !=
          selector.ring().owner_table() ||
      sw.primitive_selector()->ring().owner_table() !=
          selector.ring().owner_table()) {
    return Failure{"switch selector tables diverged from the reference "
                   "replica after churn",
                   {}};
  }
  return std::nullopt;
}

TEST(PropCht, LookupDeterminismAcrossReplicas) {
  const auto report = check("cht_lookup_determinism", determinism_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

TEST(PropCht, SingleLeaveMovesOnlyTheRemovedMembersKeys) {
  const auto report = check("cht_minimal_movement", minimal_movement_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

TEST(PropCht, FullMembershipBalanceBounded) {
  const auto report = check("cht_balance", balance_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

TEST(PropCht, WirePathWithChurnMatchesReference) {
  const auto report = check("cht_wire_churn_diff", wire_churn_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

}  // namespace
}  // namespace dart::check
