// The property runner: pass/fail reporting, tape shrinking quality, the
// repro-seed contract, corpus capture — and the mutation smoke-check that
// proves the differential harness catches a deliberately injected store bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "check/gen.hpp"
#include "check/golden.hpp"
#include "check/property.hpp"
#include "check/reference.hpp"
#include "check/rng.hpp"

namespace dart::check {
namespace {

// All runner tests disable corpus capture ("-"): they fail on purpose and
// must not pollute tests/corpus (DART_CORPUS_DIR is set under ctest).
CheckConfig quiet(std::uint64_t cases = 300) {
  CheckConfig cfg;
  cfg.cases = cases;
  cfg.corpus_dir = "-";
  cfg.log_failures = false;
  return cfg;
}

TEST(CheckRunner, PassingPropertyRunsAllCases) {
  const auto report = check(
      "always_pass", [](Rng& rng) -> std::optional<Failure> {
        (void)rng.below(100);
        return std::nullopt;
      },
      quiet(137));
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.cases_run, 137u);
  EXPECT_TRUE(report.repro.empty());
}

TEST(CheckRunner, ShrinksToBoundaryValue) {
  // Fails iff the drawn value is >= 10: the minimal counterexample is
  // exactly the boundary, and the shrinker must find it.
  const auto property = [](Rng& rng) -> std::optional<Failure> {
    if (rng.below(1000) >= 10) return Failure{"too big", {}};
    return std::nullopt;
  };
  const auto report = check("boundary", property, quiet());
  ASSERT_FALSE(report.passed);
  Rng replay(report.shrunk_tape);
  EXPECT_EQ(replay.below(1000), 10u);
}

TEST(CheckRunner, ShrinksListToSingleBoundaryElement) {
  // A list property: fails iff ANY element is >= 50. Minimal failing case
  // is the one-element list {50}.
  const auto property = [](Rng& rng) -> std::optional<Failure> {
    const auto len = rng.below(20);
    for (std::uint64_t i = 0; i < len; ++i) {
      if (rng.below(100) >= 50) return Failure{"element too big", {}};
    }
    return std::nullopt;
  };
  const auto report = check("list_boundary", property, quiet());
  ASSERT_FALSE(report.passed);

  Rng replay(report.shrunk_tape);
  const auto len = replay.below(20);
  std::vector<std::uint64_t> items;
  for (std::uint64_t i = 0; i < len; ++i) items.push_back(replay.below(100));
  // Everything before the failing element shrinks away.
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0], 50u);
  EXPECT_LE(report.shrunk_tape.size(), 2u);
  EXPECT_GT(report.shrink_steps, 0u);
}

TEST(CheckRunner, ReproContractCaseZeroReplaysFailingSeed) {
  const auto property = [](Rng& rng) -> std::optional<Failure> {
    // ~9% failure rate: the runner finds a failure within a few cases but
    // usually not at case 0, making the repro-seed identity meaningful.
    if (rng.below(1000) >= 910) return Failure{"unlucky", {}};
    return std::nullopt;
  };
  const auto report = check("repro", property, quiet());
  ASSERT_FALSE(report.passed);
  EXPECT_NE(report.repro.find("DART_SEED="), std::string::npos);
  EXPECT_NE(report.repro.find("DART_CHECK_CASES=1"), std::string::npos);

  // Re-running with base seed = failing seed must fail at case 0 (what the
  // printed DART_SEED=... DART_CHECK_CASES=1 line does from the shell).
  auto cfg = quiet(1);
  cfg.seed = report.failing_seed;
  const auto again = check("repro", property, cfg);
  ASSERT_FALSE(again.passed);
  EXPECT_EQ(again.failing_case, 0u);
  EXPECT_EQ(again.failing_seed, report.failing_seed);
  EXPECT_EQ(again.message, report.message);
}

TEST(CheckRunner, AppendsShrunkArtifactToCorpus) {
  const std::string dir = ::testing::TempDir() + "dartcheck_corpus";
  const auto property = [](Rng& rng) -> std::optional<Failure> {
    const auto frame = rng.bytes(16);
    if (static_cast<std::uint8_t>(frame[0]) >= 8) {
      return Failure{"bad frame", frame};
    }
    return std::nullopt;
  };
  auto cfg = quiet();
  cfg.corpus_dir = dir;
  const auto report = check("corpus_demo", property, cfg);
  ASSERT_FALSE(report.passed);
  ASSERT_FALSE(report.corpus_path.empty());

  const auto fixture = read_trace_file(report.corpus_path);
  ASSERT_TRUE(fixture.has_value());
  ASSERT_EQ(fixture->artifacts.size(), 1u);
  EXPECT_EQ(fixture->artifacts[0], report.artifact);
  EXPECT_EQ(fixture->artifacts[0].size(), 16u);
  // The shrunk artifact is minimal: first byte exactly at the boundary.
  EXPECT_EQ(static_cast<std::uint8_t>(fixture->artifacts[0][0]), 8u);
  std::remove(report.corpus_path.c_str());
}

// --- mutation smoke-check --------------------------------------------------
//
// Injects a store-addressing bug into one side of the differential pair and
// asserts the harness (a) catches it, (b) shrinks it, (c) emits an exact
// repro seed. This is the meta-test that the whole dartcheck loop actually
// detects real divergences — if someone breaks the shrinker or the diff,
// this fails.

// The same op-stream diff test_prop_wire runs, except the reference applies
// copy-1 writes to copy 0's slot: the classic transposed-index bug.
std::optional<Failure> buggy_diff_property(Rng& rng) {
  core::DartConfig cfg;
  cfg.n_slots = 64;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 16;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xDA27'B066;

  WireDriver real(cfg);
  ReferenceFabric reference(cfg);
  const auto n_ops = 1 + rng.below(8);
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    auto op = gen_report_op(rng, cfg, &reference, /*drop_probability=*/0.0);
    const auto frame = real.submit(op);
    if (op.kind == ReportOp::Kind::kWrite && op.copy == 1) {
      op.copy = 0;  // the injected bug
    }
    reference.apply(op);
    if (!std::ranges::equal(real.memory(), reference.memory())) {
      return Failure{"store diverged after op " + std::to_string(i), frame};
    }
  }
  return std::nullopt;
}

TEST(MutationSmokeCheck, InjectedStoreBugIsCaughtAndShrunk) {
  const auto report = check("mutation_smoke", buggy_diff_property, quiet(200));

  ASSERT_FALSE(report.passed)
      << "differential harness failed to detect an injected store bug";
  // Caught, shrunk, and reproducible from the printed seed.
  EXPECT_GT(report.original_draws, 0u);
  EXPECT_LE(report.shrunk_tape.size(), report.original_draws);
  ASSERT_NE(report.repro.find("DART_SEED=0x"), std::string::npos);
  EXPECT_TRUE(report.corpus_path.empty());  // "-" disables capture

  // The shrunk tape still exhibits the bug.
  Rng replay(report.shrunk_tape);
  EXPECT_TRUE(buggy_diff_property(replay).has_value());

  std::fprintf(stderr, "[mutation-smoke] caught injected bug; repro: %s\n",
               report.repro.c_str());
}

}  // namespace
}  // namespace dart::check
