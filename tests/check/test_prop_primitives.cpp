// Differential properties for the DTA translator primitives: random
// Append / Key-Increment / Postcarding op streams through the REAL wire
// path (ReportCrafter frames → SimulatedRnic → DMA into the primitive
// regions) must leave byte-identical region memory — and identical
// drain/read answers — to the reference models applying the same logical
// ops directly. 1000 seeded cases per suite; failures shrink and print a
// DART_SEED repro line.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>

#include "check/gen.hpp"
#include "check/golden.hpp"
#include "check/property.hpp"
#include "check/reference.hpp"
#include "core/atomics_store.hpp"
#include "core/oracle.hpp"
#include "core/query_protocol.hpp"

namespace dart::check {
namespace {

core::DartConfig tiny_kv_config() {
  // The KV store is idle in these properties; keep its region small.
  core::DartConfig cfg;
  cfg.n_slots = 16;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xDA27'0F00ull;
  return cfg;
}

std::optional<Failure> region_divergence(const char* region,
                                         std::span<const std::byte> real,
                                         std::span<const std::byte> reference,
                                         std::uint64_t op_index,
                                         std::vector<std::byte> frame) {
  if (std::ranges::equal(real, reference)) return std::nullopt;
  std::size_t off = 0;
  while (off < real.size() && real[off] == reference[off]) ++off;
  return Failure{std::string(region) + " byte " + std::to_string(off) +
                     " diverged after op " + std::to_string(op_index) +
                     ": real 0x" + to_hex({&real[off], 1}) + " reference 0x" +
                     to_hex({&reference[off], 1}),
                 std::move(frame)};
}

// Mixed primitive streams: all three regions stay byte-identical to the
// reference after EVERY op, and the ingest counters conserve (each
// non-dropped frame executed, none rejected).
std::optional<Failure> primitive_stream_property(Rng& rng) {
  const auto kv = tiny_kv_config();
  const auto prim = gen_small_primitives(rng);
  WireDriver real(kv);
  real.enable_primitives(prim);
  ReferenceFabric reference(kv);
  reference.enable_primitives(prim);

  std::uint64_t submitted = 0;
  const auto n_ops = 1 + rng.below(16);
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    const auto op = gen_primitive_op(rng, prim);
    auto frame = real.submit(op);
    reference.apply(op);
    submitted += op.dropped ? 0 : 1;

    auto& collector = real.collector();
    if (auto f = region_divergence("ring", collector.ring().memory(),
                                   reference.ring().memory(), i, frame)) {
      return f;
    }
    if (auto f = region_divergence("counters", collector.counters().memory(),
                                   reference.counters().memory(), i, frame)) {
      return f;
    }
    if (auto f = region_divergence("postcards", collector.postcards().memory(),
                                   reference.postcards().memory(), i, frame)) {
      return f;
    }
  }

  if (real.append_tail() != reference.append_tail()) {
    return Failure{"append tails diverged: real " +
                       std::to_string(real.append_tail()) + " reference " +
                       std::to_string(reference.append_tail()),
                   {}};
  }
  const auto& c = real.collector().ingest_counters();
  if (c.executed.load() != submitted) {
    return Failure{"executed " + std::to_string(c.executed.load()) +
                       " ops, submitted " + std::to_string(submitted),
                   {}};
  }
  if (c.bad_icrc.load() != 0 || c.bad_opcode.load() != 0 ||
      c.out_of_bounds.load() != 0 || c.unaligned_atomic.load() != 0) {
    return Failure{"valid primitive frames were rejected by validation", {}};
  }
  return std::nullopt;
}

TEST(PropPrimitives, StreamsMatchReferenceModels) {
  const auto report = check("primitive_stream_diff", primitive_stream_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

// Append wrap/overwrite: appends (with loss) interleaved with capped
// drains. Wire and reference drains must agree entry-for-entry, and the
// books must balance — every sequence number up to the highest one that
// landed is either returned by some drain or counted missed once the ring
// runs dry. (Seqs the switch consumed for frames lost at the very tail are
// undetectable until a later entry lands — the reader has no view of the
// switch's tail register.)
std::optional<Failure> append_drain_property(Rng& rng) {
  const auto kv = tiny_kv_config();
  const auto prim = gen_small_primitives(rng);
  WireDriver real(kv);
  real.enable_primitives(prim);
  ReferenceFabric reference(kv);
  reference.enable_primitives(prim);

  std::uint64_t delivered = 0;
  // Highest sequence number whose frame actually landed. Trailing drops
  // (seqs the switch consumed whose frames were lost, with nothing landing
  // after them) are invisible to the reader — it balances books against
  // this, not the switch tail it cannot see.
  std::uint64_t seen_max = 0;
  const auto n_rounds = 1 + rng.below(6);
  for (std::uint64_t round = 0; round < n_rounds; ++round) {
    // A burst longer than tiny rings (4-16 entries) laps the reader.
    const auto burst = rng.below(3 * prim.ring.n_entries + 1);
    for (std::uint64_t i = 0; i < burst; ++i) {
      auto op = gen_primitive_op(rng, prim, /*drop_probability=*/0.2);
      op.kind = ReportOp::Kind::kAppend;
      if (op.value.size() != prim.ring.value_bytes) {
        op.value = gen_value(rng, prim.ring.value_bytes);
      }
      (void)real.submit(op);
      reference.apply(op);
      if (!op.dropped) seen_max = real.append_tail();
    }

    const auto cap = rng.chance(0.5) ? 1 + rng.below(prim.ring.n_entries)
                                     : SIZE_MAX;
    auto real_drain = real.collector().ring().drain(cap);
    auto ref_drain = reference.ring().drain(cap);
    if (real_drain.missed != ref_drain.missed ||
        real_drain.next_seq != ref_drain.next_seq ||
        real_drain.entries.size() != ref_drain.entries.size()) {
      return Failure{"drain shape diverged in round " + std::to_string(round) +
                         ": real {missed " + std::to_string(real_drain.missed) +
                         ", next " + std::to_string(real_drain.next_seq) +
                         ", n " + std::to_string(real_drain.entries.size()) +
                         "} reference {missed " +
                         std::to_string(ref_drain.missed) + ", next " +
                         std::to_string(ref_drain.next_seq) + ", n " +
                         std::to_string(ref_drain.entries.size()) + "}",
                     {}};
    }
    std::uint64_t prev_seq = 0;
    for (std::size_t i = 0; i < real_drain.entries.size(); ++i) {
      const auto& a = real_drain.entries[i];
      const auto& b = ref_drain.entries[i];
      if (a.seq != b.seq || a.value != b.value) {
        return Failure{"drained entry " + std::to_string(i) +
                           " diverged: real seq " + std::to_string(a.seq) +
                           " reference seq " + std::to_string(b.seq),
                       {}};
      }
      if (a.seq <= prev_seq) {
        return Failure{"drain not strictly ascending at entry " +
                           std::to_string(i),
                       {}};
      }
      prev_seq = a.seq;
    }
    delivered += real_drain.entries.size();
  }

  // Run the reader dry, then balance the books against the switch tail.
  auto final_real = real.collector().ring().drain();
  auto final_ref = reference.ring().drain();
  if (final_real.entries.size() != final_ref.entries.size() ||
      final_real.missed != final_ref.missed) {
    return Failure{"final drain diverged", {}};
  }
  delivered += final_real.entries.size();
  const auto missed = real.collector().ring().missed_total();
  if (delivered + missed != seen_max) {
    return Failure{"sequence books don't balance: delivered " +
                       std::to_string(delivered) + " + missed " +
                       std::to_string(missed) + " != highest landed seq " +
                       std::to_string(seen_max),
                   {}};
  }
  if (real.collector().ring().cursor() != seen_max + 1) {
    return Failure{"drained-dry cursor " +
                       std::to_string(real.collector().ring().cursor()) +
                       " != highest landed seq + 1 " +
                       std::to_string(seen_max + 1),
                   {}};
  }
  // The switch consumed every trailing-drop seq too: the tail can only be
  // ahead of what landed, never behind.
  if (real.append_tail() < seen_max) {
    return Failure{"switch tail " + std::to_string(real.append_tail()) +
                       " behind highest landed seq " + std::to_string(seen_max),
                   {}};
  }
  return std::nullopt;
}

TEST(PropPrimitives, AppendDrainsBalanceAcrossWrap) {
  const auto report = check("append_drain_books", append_drain_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

// Key-Increment merge equivalence: many "switches" (independent PSN
// spaces don't matter — FETCH_ADD is order-free) adding into one collector
// array equals the §7 reference sketch fed the combined stream, cell for
// cell and key for key.
std::optional<Failure> key_increment_merge_property(Rng& rng) {
  const auto kv = tiny_kv_config();
  const auto prim = gen_small_primitives(rng);
  WireDriver real(kv);
  real.enable_primitives(prim);
  core::FlowCounterArray sketch(prim.counters.n_counters, prim.counters.seed);

  const auto n_ops = 1 + rng.below(24);
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    auto op = gen_primitive_op(rng, prim);
    op.kind = ReportOp::Kind::kKeyIncrement;
    if (op.operand == 0) op.operand = 1 + rng.below(1u << 16);
    (void)real.submit(op);
    if (!op.dropped) {
      (void)sketch.fetch_add(core::sim_key(op.key), op.operand);
    }
  }

  auto& cells = real.collector().counters();
  for (std::uint64_t c = 0; c < prim.counters.n_counters; ++c) {
    if (cells.read_cell(c) != sketch.cells()[c]) {
      return Failure{"cell " + std::to_string(c) + " diverged: wire " +
                         std::to_string(cells.read_cell(c)) + " sketch " +
                         std::to_string(sketch.cells()[c]),
                     {}};
    }
  }
  for (std::uint64_t k = 0; k < 32; ++k) {
    const auto key = core::sim_key(k);
    if (cells.read(key) != sketch.read(key)) {
      return Failure{"key " + std::to_string(k) + " reads diverged", {}};
    }
  }
  return std::nullopt;
}

TEST(PropPrimitives, KeyIncrementEqualsReferenceSketch) {
  const auto report =
      check("key_increment_merge", key_increment_merge_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

// Postcarding partial groups: after a random postcard stream, every flow's
// read_group must match an independent last-writer model — the validity
// bit of hop h is set iff the LAST flow that wrote (group, h) carries the
// queried flow's checksum (group collisions steal slots; loss leaves
// holes).
std::optional<Failure> postcard_group_property(Rng& rng) {
  const auto kv = tiny_kv_config();
  const auto prim = gen_small_primitives(rng);
  WireDriver real(kv);
  real.enable_primitives(prim);
  ReferenceFabric reference(kv);
  reference.enable_primitives(prim);

  struct LastWrite {
    std::uint32_t checksum = 0;
    std::vector<std::byte> value;
  };
  std::map<std::uint64_t, LastWrite> last;  // flat slot index → last writer

  const auto n_ops = 1 + rng.below(24);
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    auto op = gen_primitive_op(rng, prim);
    op.kind = ReportOp::Kind::kPostcard;
    op.hop = static_cast<std::uint32_t>(rng.below(prim.postcards.max_hops));
    if (op.value.size() != prim.postcards.value_bytes) {
      op.value = gen_value(rng, prim.postcards.value_bytes);
    }
    (void)real.submit(op);
    reference.apply(op);
    if (!op.dropped) {
      const auto flow = core::sim_key(op.key);
      const auto slot =
          prim.postcards.slot_index(prim.postcards.group_of(flow), op.hop);
      last[slot] = LastWrite{prim.postcards.checksum_of(flow), op.value};
    }
  }

  for (std::uint64_t f = 0; f < 8; ++f) {
    const auto flow = core::sim_key(f);
    const auto real_view = real.collector().postcards().read_group(flow);
    const auto ref_view = reference.postcards().read_group(flow);
    if (real_view.group != ref_view.group ||
        real_view.valid_mask != ref_view.valid_mask ||
        real_view.hops != ref_view.hops) {
      return Failure{"flow " + std::to_string(f) +
                         " group view diverged: real mask 0x" +
                         std::to_string(real_view.valid_mask) +
                         " reference mask 0x" +
                         std::to_string(ref_view.valid_mask),
                     {}};
    }
    // Independent model: expected mask + values from the last-writer map.
    const auto want = prim.postcards.checksum_of(flow);
    std::uint32_t expect_mask = 0;
    for (std::uint32_t h = 0; h < prim.postcards.max_hops; ++h) {
      const auto it = last.find(prim.postcards.slot_index(real_view.group, h));
      if (it == last.end()) continue;
      if (it->second.checksum == want) {
        expect_mask |= 1u << h;
        if (real_view.hops[h] != it->second.value) {
          return Failure{"flow " + std::to_string(f) + " hop " +
                             std::to_string(h) +
                             " value differs from last-writer model",
                         {}};
        }
      }
    }
    if (real_view.valid_mask != expect_mask) {
      return Failure{"flow " + std::to_string(f) + " mask 0x" +
                         std::to_string(real_view.valid_mask) +
                         " != model mask 0x" + std::to_string(expect_mask),
                     {}};
    }
  }
  return std::nullopt;
}

TEST(PropPrimitives, PostcardGroupsMatchLastWriterModel) {
  const auto report = check("postcard_groups", postcard_group_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

// Wire-protocol totality: every encoded primitive request/response parses
// back field-identical, for random ops, sizes, and flags.
std::optional<Failure> primitive_protocol_roundtrip(Rng& rng) {
  core::PrimitiveRequest req;
  req.op = rng.pick<core::PrimitiveOp>({core::PrimitiveOp::kDrainRing,
                                        core::PrimitiveOp::kReadCounter,
                                        core::PrimitiveOp::kReadPostcardGroup});
  req.request_id = rng.below(1ull << 48);
  req.epoch = static_cast<std::uint32_t>(rng.below(1ull << 32));
  if (req.op == core::PrimitiveOp::kDrainRing) {
    req.max_entries = rng.below(1ull << 20);
  } else {
    const auto key = core::sim_key(gen_key(rng));
    req.key.assign(key.begin(), key.end());
  }
  const auto req_wire = core::encode_primitive_request(req);
  const auto req_back = core::parse_primitive_request(req_wire);
  if (!req_back.has_value() || req_back->op != req.op ||
      req_back->request_id != req.request_id || req_back->epoch != req.epoch ||
      req_back->max_entries != req.max_entries || req_back->key != req.key) {
    return Failure{"primitive request did not roundtrip", req_wire};
  }

  core::PrimitiveResponse resp;
  resp.op = req.op;
  resp.request_id = req.request_id;
  resp.epoch = req.epoch;
  if (rng.chance(0.2)) resp.flags |= core::kResponseDegraded;
  if (rng.chance(0.1)) resp.flags |= core::kResponsePrimitiveUnavailable;
  resp.stale_epochs = static_cast<std::uint16_t>(rng.below(1u << 16));
  const auto value_bytes = 1 + rng.below(16);
  switch (resp.op) {
    case core::PrimitiveOp::kDrainRing: {
      resp.missed = rng.below(1u << 10);
      resp.next_seq = rng.below(1u << 20);
      resp.entry_value_bytes = static_cast<std::uint16_t>(value_bytes);
      const auto n = rng.below(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        resp.entries.push_back(core::RingEntryWire{
            1 + rng.below(1u << 20),
            gen_value(rng, static_cast<std::uint32_t>(value_bytes))});
      }
      break;
    }
    case core::PrimitiveOp::kReadCounter:
      resp.cell_index = rng.below(1u << 16);
      resp.counter_value = rng.below(1ull << 40);
      break;
    case core::PrimitiveOp::kReadPostcardGroup: {
      resp.group_index = rng.below(1u << 10);
      resp.max_hops = static_cast<std::uint8_t>(1 + rng.below(32));
      resp.valid_mask = static_cast<std::uint32_t>(
          rng.below(1ull << resp.max_hops));
      resp.hop_value_bytes = static_cast<std::uint16_t>(value_bytes);
      for (std::uint32_t h = 0; h < resp.max_hops; ++h) {
        resp.hops.push_back(
            gen_value(rng, static_cast<std::uint32_t>(value_bytes)));
      }
      break;
    }
  }
  const auto resp_wire = core::encode_primitive_response(resp);
  const auto back = core::parse_primitive_response(resp_wire);
  if (!back.has_value()) {
    return Failure{"primitive response did not parse", resp_wire};
  }
  const bool equal =
      back->op == resp.op && back->request_id == resp.request_id &&
      back->epoch == resp.epoch && back->flags == resp.flags &&
      back->stale_epochs == resp.stale_epochs && back->missed == resp.missed &&
      back->next_seq == resp.next_seq &&
      back->entry_value_bytes == resp.entry_value_bytes &&
      back->entries.size() == resp.entries.size() &&
      back->cell_index == resp.cell_index &&
      back->counter_value == resp.counter_value &&
      back->group_index == resp.group_index &&
      back->max_hops == resp.max_hops &&
      back->valid_mask == resp.valid_mask &&
      back->hop_value_bytes == resp.hop_value_bytes &&
      back->hops == resp.hops;
  if (!equal) return Failure{"primitive response did not roundtrip", resp_wire};
  for (std::size_t i = 0; i < resp.entries.size(); ++i) {
    if (back->entries[i].seq != resp.entries[i].seq ||
        back->entries[i].value != resp.entries[i].value) {
      return Failure{"drain entry " + std::to_string(i) + " did not roundtrip",
                     resp_wire};
    }
  }
  return std::nullopt;
}

TEST(PropPrimitives, ProtocolRoundTrips) {
  const auto report =
      check("primitive_protocol_roundtrip", primitive_protocol_roundtrip, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

}  // namespace
}  // namespace dart::check
