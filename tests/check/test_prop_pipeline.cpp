// Differential property for the CONCURRENT ingest pipeline. Cross-feeder
// slot collisions resolve in a nondeterministic order, so exact store
// equality against a single-threaded oracle is the wrong spec; what must
// hold for every schedule:
//
//   conservation  every crafted frame is applied (no loss model, valid
//                 frames, single-writer shards → zero rejections)
//   slot sanity   every slot holds either zeros or the payload of SOME
//                 (key, copy) that hashes to it — torn or invented bytes
//                 are impossible
//   last-writer   a slot targeted by exactly one writer-set key holds
//                 exactly that key's payload
//   queryability  keys whose N slots are all uncontended must resolve to
//                 their deterministic make_value under every policy
//
// Fewer cases than the single-threaded properties (each case runs real
// threads), but each case covers thousands of concurrent frames.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "check/property.hpp"
#include "check/rng.hpp"
#include "core/ingest_pipeline.hpp"
#include "core/store.hpp"

namespace dart::check {
namespace {

std::optional<Failure> pipeline_diff_property(Rng& rng) {
  core::IngestPipelineConfig cfg;
  cfg.dart.n_slots = 1 << static_cast<std::uint32_t>(8 + rng.below(3));
  cfg.dart.n_addresses = static_cast<std::uint32_t>(1 + rng.below(3));
  cfg.dart.checksum_bits = 32;  // keep cross-key checksum collisions out of
                                // the single-writer analysis below
  cfg.dart.value_bytes = 8;
  cfg.dart.master_seed = 0xDA27'0000'0200ull + rng.below(4);
  cfg.n_feeders = static_cast<std::uint32_t>(1 + rng.below(3));
  cfg.n_shards = static_cast<std::uint32_t>(1 + rng.below(4));
  cfg.reports_per_feeder = 500 + rng.below(1500);
  cfg.unique_keys_per_feeder = 8 + rng.below(56);
  cfg.seed = rng.u64();
  if (!cfg.valid()) return Failure{"generated invalid pipeline config", {}};

  core::IngestPipeline pipeline(cfg);
  const auto stats = pipeline.run();

  // --- conservation --------------------------------------------------------
  const auto expected_reports =
      static_cast<std::uint64_t>(cfg.n_feeders) * cfg.reports_per_feeder;
  if (stats.reports_generated != expected_reports) {
    return Failure{"generated " + std::to_string(stats.reports_generated) +
                       " reports, expected " + std::to_string(expected_reports),
                   {}};
  }
  if (stats.frames_crafted != expected_reports * cfg.dart.n_addresses) {
    return Failure{"crafted " + std::to_string(stats.frames_crafted) +
                       " frames for " + std::to_string(expected_reports) +
                       " kAllSlots reports",
                   {}};
  }
  if (stats.frames_dropped != 0 || stats.frames_rejected != 0 ||
      stats.frames_applied != stats.frames_crafted) {
    return Failure{"conservation: crafted " +
                       std::to_string(stats.frames_crafted) + " applied " +
                       std::to_string(stats.frames_applied) + " rejected " +
                       std::to_string(stats.frames_rejected) + " dropped " +
                       std::to_string(stats.frames_dropped),
                   {}};
  }
  std::uint64_t shard_sum = 0;
  for (const auto a : stats.per_shard_applied) shard_sum += a;
  if (shard_sum != stats.frames_applied) {
    return Failure{"per-shard applied counts do not sum to the total", {}};
  }

  // --- expected slot contents (order-independent) --------------------------
  const auto& store = pipeline.collector().active_store();
  std::map<std::uint64_t, std::set<std::string>> expected;  // slot → payloads
  std::map<std::uint64_t, std::set<std::uint64_t>> key_slots;  // per key
  std::vector<std::byte> value;
  std::vector<std::pair<std::array<std::byte, 8>, std::vector<std::byte>>>
      workload;
  for (std::uint32_t f = 0; f < cfg.n_feeders; ++f) {
    const auto n_keys =
        std::min<std::uint64_t>(cfg.unique_keys_per_feeder,
                                cfg.reports_per_feeder);
    for (std::uint64_t k = 0; k < n_keys; ++k) {
      const auto key = core::IngestPipeline::make_key(f, k);
      core::IngestPipeline::make_value(key, cfg.dart.value_bytes, value);
      workload.emplace_back(key, value);
      std::vector<std::byte> payload;
      store.encode_slot_payload(key, value, payload);
      const std::string payload_str(
          reinterpret_cast<const char*>(payload.data()), payload.size());
      for (std::uint32_t n = 0; n < cfg.dart.n_addresses; ++n) {
        const auto slot = store.slot_index(key, n);
        expected[slot].insert(payload_str);
        key_slots[static_cast<std::uint64_t>(f) << 32 | k].insert(slot);
      }
    }
  }

  const auto mem = store.memory();
  const auto slot_str = [&](std::uint64_t slot) {
    return std::string(
        reinterpret_cast<const char*>(mem.data() + store.slot_offset(slot)),
        cfg.dart.slot_bytes());
  };
  const std::string zeros(cfg.dart.slot_bytes(), '\0');
  for (std::uint64_t slot = 0; slot < cfg.dart.n_slots; ++slot) {
    const auto content = slot_str(slot);
    const auto it = expected.find(slot);
    if (it == expected.end()) {
      if (content != zeros) {
        return Failure{"untargeted slot " + std::to_string(slot) +
                           " is non-zero",
                       {}};
      }
      continue;
    }
    // Targeted: some writer's payload, never zeros, never a torn mix.
    if (it->second.count(content) == 0) {
      return Failure{"slot " + std::to_string(slot) +
                         " holds bytes no writer produced (" +
                         std::to_string(it->second.size()) + " writers)",
                     {}};
    }
  }

  // --- uncontended keys must be queryable ----------------------------------
  std::size_t verified = 0;
  for (const auto& [key, keyed_value] : workload) {
    bool contended = false;
    for (std::uint32_t n = 0; n < cfg.dart.n_addresses && !contended; ++n) {
      contended = expected[store.slot_index(key, n)].size() > 1;
    }
    if (contended) continue;
    const auto result =
        pipeline.query(key, core::ReturnPolicy::kSingleDistinct);
    if (result.outcome != core::QueryOutcome::kFound ||
        result.value != keyed_value ||
        result.checksum_matches != cfg.dart.n_addresses) {
      return Failure{"uncontended key did not resolve to its make_value", {}};
    }
    ++verified;
  }
  (void)verified;  // may be 0 in a fully-contended small-store case
  return std::nullopt;
}

TEST(PropPipeline, ConcurrentIngestSatisfiesScheduleInvariants) {
  CheckConfig cfg;
  cfg.cases = 12;  // each case runs real feeder/worker threads
  const auto report = check("pipeline_diff", pipeline_diff_property, cfg);
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
}

}  // namespace
}  // namespace dart::check
