// The flagship differential property: random op streams through the REAL
// wire path (ReportCrafter frames → SimulatedRnic validation → DMA into
// registered memory) must leave byte-identical store state — and identical
// query answers — to the single-threaded reference oracle applying the same
// logical ops directly. 1000 seeded cases; failures shrink to a minimal op
// stream and print a DART_SEED repro line.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/gen.hpp"
#include "check/golden.hpp"
#include "check/property.hpp"
#include "check/reference.hpp"
#include "core/oracle.hpp"

namespace dart::check {
namespace {

constexpr core::ReturnPolicy kPolicies[] = {
    core::ReturnPolicy::kFirstMatch, core::ReturnPolicy::kSingleDistinct,
    core::ReturnPolicy::kPlurality, core::ReturnPolicy::kConsensusTwo};

std::optional<Failure> wire_diff_property(Rng& rng) {
  const auto cfg = gen_small_config(rng);
  WireDriver real(cfg);
  ReferenceFabric reference(cfg);

  std::uint64_t submitted = 0;
  const auto n_ops = 1 + rng.below(12);
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    const auto op = gen_report_op(rng, cfg, &reference);
    const auto frame = real.submit(op);
    reference.apply(op);
    submitted += op.dropped ? 0 : 1;

    // Byte-identical store memory after every op, not just at the end —
    // divergence is pinned to the op that caused it.
    if (!std::ranges::equal(real.memory(), reference.memory())) {
      const auto real_mem = real.memory();
      const auto ref_mem = reference.memory();
      std::size_t off = 0;
      while (off < real_mem.size() && real_mem[off] == ref_mem[off]) ++off;
      return Failure{"store byte " + std::to_string(off) +
                         " diverged after op " + std::to_string(i) + "/" +
                         std::to_string(n_ops) + ": real 0x" +
                         to_hex({&real_mem[off], 1}) + " reference 0x" +
                         to_hex({&ref_mem[off], 1}),
                     frame};
    }
  }

  // Conservation: every non-dropped op executed exactly once, none were
  // rejected by validation, and CAS-miss accounting agrees.
  const auto& c = real.collector().ingest_counters();
  if (c.executed.load() != submitted) {
    return Failure{"executed " + std::to_string(c.executed.load()) +
                       " ops, submitted " + std::to_string(submitted),
                   {}};
  }
  if (c.psn_rejected.load() != 0 || c.bad_icrc.load() != 0 ||
      c.bad_opcode.load() != 0 || c.out_of_bounds.load() != 0 ||
      c.unaligned_atomic.load() != 0) {
    return Failure{"valid crafted frames were rejected by validation", {}};
  }
  if (c.cas_mismatches.load() != reference.cas_mismatches()) {
    return Failure{"cas_mismatches: real " +
                       std::to_string(c.cas_mismatches.load()) +
                       " reference " +
                       std::to_string(reference.cas_mismatches()),
                   {}};
  }

  // Query plane: QueryEngine over RNIC-written memory vs the from-scratch
  // policy implementation over the oracle store, for every policy.
  for (int q = 0; q < 5; ++q) {
    const auto key = core::sim_key(gen_key(rng));
    for (const auto policy : kPolicies) {
      const auto real_r = real.query(key, policy);
      const auto ref_r = reference.resolve(key, policy);
      if (real_r.outcome != ref_r.outcome || real_r.value != ref_r.value ||
          real_r.checksum_matches != ref_r.checksum_matches ||
          real_r.distinct_values != ref_r.distinct_values) {
        return Failure{std::string("query diverged under policy ") +
                           core::to_string(policy) + ": real{" +
                           (real_r.outcome == core::QueryOutcome::kFound
                                ? "found "
                                : "empty ") +
                           to_hex(real_r.value) + " m" +
                           std::to_string(real_r.checksum_matches) + " d" +
                           std::to_string(real_r.distinct_values) +
                           "} reference{" +
                           (ref_r.outcome == core::QueryOutcome::kFound
                                ? "found "
                                : "empty ") +
                           to_hex(ref_r.value) + " m" +
                           std::to_string(ref_r.checksum_matches) + " d" +
                           std::to_string(ref_r.distinct_values) + "}",
                       {}};
      }
    }
  }
  return std::nullopt;
}

TEST(PropWire, OpStreamsMatchReferenceFabric) {
  const auto report = check("wire_op_diff", wire_diff_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

// Template fast path vs allocating crafters, byte-for-byte on random
// parameters (WireDriver alternates them per PSN; this pins them directly).
std::optional<Failure> template_identity_property(Rng& rng) {
  const auto cfg = gen_small_config(rng);
  WireDriver driver(cfg);  // only used for its crafter/dst wiring
  const auto& crafter = driver.crafter();
  const auto dst = driver.collector().remote_info();
  core::ReporterEndpoint src;
  src.mac = {0xAA, 0xBB, 0xCC, 0x00, 0x00, 0x01};
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);

  const auto key = core::sim_key(gen_key(rng));
  const auto value = gen_value(rng, cfg.value_bytes);
  const auto n = static_cast<std::uint32_t>(rng.below(cfg.n_addresses));
  const auto psn = static_cast<std::uint32_t>(rng.below(1u << 24));

  const auto tpl = crafter.make_write_template(dst, src);
  std::vector<std::byte> fast(tpl.frame_size());
  const auto len = crafter.craft_write_into(tpl, key, value, n, psn, fast);
  fast.resize(len);
  const auto reference = crafter.craft_write(dst, src, key, value, n, psn);
  if (fast != reference) {
    return Failure{"template write frame differs from reference crafter",
                   reference};
  }
  return std::nullopt;
}

TEST(PropWire, TemplatePathIsByteIdenticalToReference) {
  const auto report = check("template_identity", template_identity_property, {});
  EXPECT_TRUE(report.passed) << report.message << "\nrepro: " << report.repro;
  EXPECT_GE(report.cases_run, 1000u);
}

}  // namespace
}  // namespace dart::check
