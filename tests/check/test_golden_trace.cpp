// Golden-trace replay: the committed fixtures under tests/golden/ must be
// byte-identical to what the reference crafters produce today, and feeding
// them through the real ingest path must reproduce the documented effects.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "check/golden.hpp"
#include "core/oracle.hpp"
#include "core/query_protocol.hpp"

namespace dart::check {
namespace {

std::string golden_dir() { return std::string(DART_SOURCE_DIR) + "/tests/golden"; }

std::map<std::string, Trace> committed_traces() {
  std::map<std::string, Trace> out;
  for (const auto& fresh : canonical_golden_traces()) {
    const auto t = read_trace_file(golden_dir() + "/" + fresh.name + ".hex");
    if (t.has_value()) out[t->name] = *t;
  }
  return out;
}

TEST(GoldenTrace, HexRoundTrip) {
  const std::vector<std::byte> bytes = {std::byte{0x00}, std::byte{0xde},
                                        std::byte{0xad}, std::byte{0xff}};
  EXPECT_EQ(to_hex(bytes), "00deadff");
  EXPECT_EQ(from_hex("00deadff"), bytes);
  EXPECT_EQ(from_hex("00 de AD ff"), bytes);  // spaces + upper ok
  EXPECT_EQ(from_hex("0"), std::nullopt);     // odd digits
  EXPECT_EQ(from_hex("zz"), std::nullopt);    // not hex
  EXPECT_EQ(from_hex("0 0"), std::nullopt);   // split pair
  EXPECT_TRUE(from_hex("")->empty());
}

TEST(GoldenTrace, CommittedFixturesAreByteIdentical) {
  const auto committed = committed_traces();
  for (const auto& fresh : canonical_golden_traces()) {
    const auto it = committed.find(fresh.name);
    ASSERT_NE(it, committed.end())
        << "missing fixture tests/golden/" << fresh.name
        << ".hex — regenerate: build/tools/dart_trace golden --out=tests/golden";
    const auto& artifacts = it->second.artifacts;
    ASSERT_EQ(artifacts.size(), fresh.artifacts.size()) << fresh.name;
    for (std::size_t i = 0; i < artifacts.size(); ++i) {
      ASSERT_EQ(artifacts[i].size(), fresh.artifacts[i].size())
          << fresh.name << " artifact " << i;
      for (std::size_t off = 0; off < artifacts[i].size(); ++off) {
        ASSERT_EQ(artifacts[i][off], fresh.artifacts[i][off])
            << fresh.name << " artifact " << i << " drifts at byte " << off;
      }
    }
  }
}

// Replaying write_reports through a fresh golden-deployment collector: the
// All 15 frames execute — collector QPs run PsnPolicy::kIgnore, so even the
// wrap-edge PSNs (0xfffffe, 0xffffff, 0x000000 after 12 sequential frames)
// land; reporters never retransmit and the store is last-writer-wins. Every
// written key then resolves to its golden value.
TEST(GoldenTrace, WriteReportsReplayPinsIngestSemantics) {
  const auto committed = committed_traces();
  const auto it = committed.find("write_reports");
  ASSERT_NE(it, committed.end());
  ASSERT_EQ(it->second.artifacts.size(), 15u);

  const auto dep = golden_deployment();
  core::Collector collector(dep.config, 0, dep.collector_endpoint);
  for (const auto& frame : it->second.artifacts) {
    collector.rnic().process_frame(frame);
  }
  const auto& c = collector.ingest_counters();
  EXPECT_EQ(c.frames.load(), 15u);
  EXPECT_EQ(c.executed.load(), 15u);
  EXPECT_EQ(c.psn_rejected.load(), 0u);

  for (std::uint64_t k = 1; k <= 6; ++k) {
    const auto result = collector.query(core::sim_key(k));
    ASSERT_EQ(result.outcome, core::QueryOutcome::kFound) << "key " << k;
    EXPECT_EQ(result.value, golden_value(k, dep.config.value_bytes));
    EXPECT_EQ(result.checksum_matches, 2u);
  }
  // Key 7 arrived only on the wrap-edge frames, copy 0 each time: one slot
  // holds it (thrice overwritten with the same bytes), copy 1 stayed empty.
  const auto k7 = collector.query(core::sim_key(7));
  ASSERT_EQ(k7.outcome, core::QueryOutcome::kFound);
  EXPECT_EQ(k7.value, golden_value(7, dep.config.value_bytes));
  EXPECT_EQ(k7.checksum_matches, 1u);
}

TEST(GoldenTrace, AtomicReportsReplayPinsAtomicSemantics) {
  const auto committed = committed_traces();
  const auto it = committed.find("atomic_reports");
  ASSERT_NE(it, committed.end());
  ASSERT_EQ(it->second.artifacts.size(), 5u);

  const auto dep = golden_deployment();
  core::Collector collector(dep.config, 0, dep.collector_endpoint);
  for (const auto& frame : it->second.artifacts) {
    collector.rnic().process_frame(frame);
  }
  const auto& c = collector.ingest_counters();
  EXPECT_EQ(c.fetch_adds.load(), 3u);
  EXPECT_EQ(c.compare_swaps.load(), 2u);
  EXPECT_EQ(c.cas_mismatches.load(), 0u);  // both CAS hit zeroed words

  const auto word_at = [&](std::uint64_t w) {
    std::uint64_t v;
    std::memcpy(&v, collector.store().memory().data() + w * 8, 8);
    return v;
  };
  // Values are host-endian in memory, per the RNIC's atomic semantics.
  for (const std::uint64_t w : {0ull, 5ull, 100ull}) {
    EXPECT_EQ(word_at(w), 0x0101'0000'0000'0000ull + w) << "word " << w;
  }
  for (const std::uint64_t w : {1ull, 7ull}) {
    EXPECT_EQ(word_at(w), 0xC0DE'0000'0000'0000ull + w) << "word " << w;
  }
}

TEST(GoldenTrace, MultiwriteReportsReplayFillsAllSlots) {
  const auto committed = committed_traces();
  const auto it = committed.find("multiwrite_reports");
  ASSERT_NE(it, committed.end());

  const auto dep = golden_deployment();
  core::Collector collector(dep.config, 0, dep.collector_endpoint);
  collector.rnic().set_dta_multiwrite(true);
  for (const auto& frame : it->second.artifacts) {
    collector.rnic().process_frame(frame);
  }
  EXPECT_EQ(collector.ingest_counters().multiwrite_frames.load(), 4u);
  for (std::uint64_t k = 1; k <= 4; ++k) {
    const auto result = collector.query(core::sim_key(k));
    ASSERT_EQ(result.outcome, core::QueryOutcome::kFound) << "key " << k;
    EXPECT_EQ(result.value, golden_value(k, dep.config.value_bytes));
    EXPECT_EQ(result.checksum_matches, dep.config.n_addresses);
  }
}

TEST(GoldenTrace, QueryWirePayloadsParseBack) {
  const auto committed = committed_traces();
  const auto it = committed.find("query_wire");
  ASSERT_NE(it, committed.end());
  ASSERT_EQ(it->second.artifacts.size(), 7u);

  // First four artifacts: requests, one per return policy, ids 1..4.
  const core::ReturnPolicy policies[] = {
      core::ReturnPolicy::kFirstMatch, core::ReturnPolicy::kSingleDistinct,
      core::ReturnPolicy::kPlurality, core::ReturnPolicy::kConsensusTwo};
  for (std::uint64_t id = 1; id <= 4; ++id) {
    const auto req = core::parse_query_request(it->second.artifacts[id - 1]);
    ASSERT_TRUE(req.has_value()) << "request " << id;
    EXPECT_EQ(req->request_id, id);
    EXPECT_EQ(req->epoch, 0xE0000u + id);
    EXPECT_EQ(req->policy, policies[id - 1]);
    const auto key = core::sim_key(id);
    EXPECT_TRUE(std::equal(req->key.begin(), req->key.end(), key.begin(),
                           key.end()));
  }
  // Then: found, empty, degraded responses.
  const auto found = core::parse_query_response(it->second.artifacts[4]);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->outcome, core::QueryOutcome::kFound);
  EXPECT_EQ(found->epoch, 0xE0001u);
  EXPECT_FALSE(found->degraded());

  const auto empty = core::parse_query_response(it->second.artifacts[5]);
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->outcome, core::QueryOutcome::kEmpty);

  const auto degraded = core::parse_query_response(it->second.artifacts[6]);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_TRUE(degraded->degraded());
  EXPECT_EQ(degraded->stale_epochs, 2u);
}

}  // namespace
}  // namespace dart::check
