// Golden-trace replay: the committed fixtures under tests/golden/ must be
// byte-identical to what the reference crafters produce today, and feeding
// them through the real ingest path must reproduce the documented effects.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "check/golden.hpp"
#include "core/collector_ring.hpp"
#include "core/oracle.hpp"
#include "core/query_protocol.hpp"

namespace dart::check {
namespace {

std::string golden_dir() { return std::string(DART_SOURCE_DIR) + "/tests/golden"; }

std::map<std::string, Trace> committed_traces() {
  std::map<std::string, Trace> out;
  for (const auto& fresh : canonical_golden_traces()) {
    const auto t = read_trace_file(golden_dir() + "/" + fresh.name + ".hex");
    if (t.has_value()) out[t->name] = *t;
  }
  return out;
}

TEST(GoldenTrace, HexRoundTrip) {
  const std::vector<std::byte> bytes = {std::byte{0x00}, std::byte{0xde},
                                        std::byte{0xad}, std::byte{0xff}};
  EXPECT_EQ(to_hex(bytes), "00deadff");
  EXPECT_EQ(from_hex("00deadff"), bytes);
  EXPECT_EQ(from_hex("00 de AD ff"), bytes);  // spaces + upper ok
  EXPECT_EQ(from_hex("0"), std::nullopt);     // odd digits
  EXPECT_EQ(from_hex("zz"), std::nullopt);    // not hex
  EXPECT_EQ(from_hex("0 0"), std::nullopt);   // split pair
  EXPECT_TRUE(from_hex("")->empty());
}

TEST(GoldenTrace, CommittedFixturesAreByteIdentical) {
  const auto committed = committed_traces();
  for (const auto& fresh : canonical_golden_traces()) {
    const auto it = committed.find(fresh.name);
    ASSERT_NE(it, committed.end())
        << "missing fixture tests/golden/" << fresh.name
        << ".hex — regenerate: build/tools/dart_trace golden --out=tests/golden";
    const auto& artifacts = it->second.artifacts;
    ASSERT_EQ(artifacts.size(), fresh.artifacts.size()) << fresh.name;
    for (std::size_t i = 0; i < artifacts.size(); ++i) {
      ASSERT_EQ(artifacts[i].size(), fresh.artifacts[i].size())
          << fresh.name << " artifact " << i;
      for (std::size_t off = 0; off < artifacts[i].size(); ++off) {
        ASSERT_EQ(artifacts[i][off], fresh.artifacts[i][off])
            << fresh.name << " artifact " << i << " drifts at byte " << off;
      }
    }
  }
}

// Replaying write_reports through a fresh golden-deployment collector: the
// All 15 frames execute — collector QPs run PsnPolicy::kIgnore, so even the
// wrap-edge PSNs (0xfffffe, 0xffffff, 0x000000 after 12 sequential frames)
// land; reporters never retransmit and the store is last-writer-wins. Every
// written key then resolves to its golden value.
TEST(GoldenTrace, WriteReportsReplayPinsIngestSemantics) {
  const auto committed = committed_traces();
  const auto it = committed.find("write_reports");
  ASSERT_NE(it, committed.end());
  ASSERT_EQ(it->second.artifacts.size(), 15u);

  const auto dep = golden_deployment();
  core::Collector collector(dep.config, 0, dep.collector_endpoint);
  for (const auto& frame : it->second.artifacts) {
    collector.rnic().process_frame(frame);
  }
  const auto& c = collector.ingest_counters();
  EXPECT_EQ(c.frames.load(), 15u);
  EXPECT_EQ(c.executed.load(), 15u);
  EXPECT_EQ(c.psn_rejected.load(), 0u);

  for (std::uint64_t k = 1; k <= 6; ++k) {
    const auto result = collector.query(core::sim_key(k));
    ASSERT_EQ(result.outcome, core::QueryOutcome::kFound) << "key " << k;
    EXPECT_EQ(result.value, golden_value(k, dep.config.value_bytes));
    EXPECT_EQ(result.checksum_matches, 2u);
  }
  // Key 7 arrived only on the wrap-edge frames, copy 0 each time: one slot
  // holds it (thrice overwritten with the same bytes), copy 1 stayed empty.
  const auto k7 = collector.query(core::sim_key(7));
  ASSERT_EQ(k7.outcome, core::QueryOutcome::kFound);
  EXPECT_EQ(k7.value, golden_value(7, dep.config.value_bytes));
  EXPECT_EQ(k7.checksum_matches, 1u);
}

TEST(GoldenTrace, AtomicReportsReplayPinsAtomicSemantics) {
  const auto committed = committed_traces();
  const auto it = committed.find("atomic_reports");
  ASSERT_NE(it, committed.end());
  ASSERT_EQ(it->second.artifacts.size(), 5u);

  const auto dep = golden_deployment();
  core::Collector collector(dep.config, 0, dep.collector_endpoint);
  for (const auto& frame : it->second.artifacts) {
    collector.rnic().process_frame(frame);
  }
  const auto& c = collector.ingest_counters();
  EXPECT_EQ(c.fetch_adds.load(), 3u);
  EXPECT_EQ(c.compare_swaps.load(), 2u);
  EXPECT_EQ(c.cas_mismatches.load(), 0u);  // both CAS hit zeroed words

  const auto word_at = [&](std::uint64_t w) {
    std::uint64_t v;
    std::memcpy(&v, collector.store().memory().data() + w * 8, 8);
    return v;
  };
  // Values are host-endian in memory, per the RNIC's atomic semantics.
  for (const std::uint64_t w : {0ull, 5ull, 100ull}) {
    EXPECT_EQ(word_at(w), 0x0101'0000'0000'0000ull + w) << "word " << w;
  }
  for (const std::uint64_t w : {1ull, 7ull}) {
    EXPECT_EQ(word_at(w), 0xC0DE'0000'0000'0000ull + w) << "word " << w;
  }
}

TEST(GoldenTrace, MultiwriteReportsReplayFillsAllSlots) {
  const auto committed = committed_traces();
  const auto it = committed.find("multiwrite_reports");
  ASSERT_NE(it, committed.end());

  const auto dep = golden_deployment();
  core::Collector collector(dep.config, 0, dep.collector_endpoint);
  collector.rnic().set_dta_multiwrite(true);
  for (const auto& frame : it->second.artifacts) {
    collector.rnic().process_frame(frame);
  }
  EXPECT_EQ(collector.ingest_counters().multiwrite_frames.load(), 4u);
  for (std::uint64_t k = 1; k <= 4; ++k) {
    const auto result = collector.query(core::sim_key(k));
    ASSERT_EQ(result.outcome, core::QueryOutcome::kFound) << "key " << k;
    EXPECT_EQ(result.value, golden_value(k, dep.config.value_bytes));
    EXPECT_EQ(result.checksum_matches, dep.config.n_addresses);
  }
}

TEST(GoldenTrace, QueryWirePayloadsParseBack) {
  const auto committed = committed_traces();
  const auto it = committed.find("query_wire");
  ASSERT_NE(it, committed.end());
  ASSERT_EQ(it->second.artifacts.size(), 7u);

  // First four artifacts: requests, one per return policy, ids 1..4.
  const core::ReturnPolicy policies[] = {
      core::ReturnPolicy::kFirstMatch, core::ReturnPolicy::kSingleDistinct,
      core::ReturnPolicy::kPlurality, core::ReturnPolicy::kConsensusTwo};
  for (std::uint64_t id = 1; id <= 4; ++id) {
    const auto req = core::parse_query_request(it->second.artifacts[id - 1]);
    ASSERT_TRUE(req.has_value()) << "request " << id;
    EXPECT_EQ(req->request_id, id);
    EXPECT_EQ(req->epoch, 0xE0000u + id);
    EXPECT_EQ(req->policy, policies[id - 1]);
    const auto key = core::sim_key(id);
    EXPECT_TRUE(std::equal(req->key.begin(), req->key.end(), key.begin(),
                           key.end()));
  }
  // Then: found, empty, degraded responses.
  const auto found = core::parse_query_response(it->second.artifacts[4]);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->outcome, core::QueryOutcome::kFound);
  EXPECT_EQ(found->epoch, 0xE0001u);
  EXPECT_FALSE(found->degraded());

  const auto empty = core::parse_query_response(it->second.artifacts[5]);
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->outcome, core::QueryOutcome::kEmpty);

  const auto degraded = core::parse_query_response(it->second.artifacts[6]);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_TRUE(degraded->degraded());
  EXPECT_EQ(degraded->stale_epochs, 2u);
}

// --- DTA primitive traces ----------------------------------------------------

TEST(GoldenTrace, AppendReportsReplayPinsRingSemantics) {
  const auto committed = committed_traces();
  const auto it = committed.find("append_reports");
  ASSERT_NE(it, committed.end());
  ASSERT_EQ(it->second.artifacts.size(), 5u);

  const auto dep = golden_deployment();
  const auto prim = core::default_primitives(dep.config.master_seed);
  core::Collector collector(dep.config, 0, dep.collector_endpoint);
  ASSERT_TRUE(collector.enable_primitives(prim).ok());
  for (const auto& frame : it->second.artifacts) {
    collector.rnic().process_frame(frame);
  }
  EXPECT_EQ(collector.ingest_counters().executed.load(), 5u);

  // Seqs 1..4 then 1025: the wrap frame landed on slot 0, overwriting seq 1.
  const auto d = collector.ring().drain();
  ASSERT_EQ(d.entries.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(d.entries[i].seq, i + 2);
    EXPECT_EQ(d.entries[i].value,
              golden_value(i + 2, prim.ring.value_bytes));
  }
  EXPECT_EQ(d.entries[3].seq, 1025u);
  EXPECT_EQ(d.entries[3].value, golden_value(9, prim.ring.value_bytes));
  // Holes: seq 1 (lapped) plus seqs 5..1024 this trace never sent.
  EXPECT_EQ(d.missed, 1021u);
  EXPECT_EQ(d.next_seq, 1026u);
}

TEST(GoldenTrace, KeyIncrementReportsReplayAggregates) {
  const auto committed = committed_traces();
  const auto it = committed.find("key_increment_reports");
  ASSERT_NE(it, committed.end());
  ASSERT_EQ(it->second.artifacts.size(), 3u);

  const auto dep = golden_deployment();
  const auto prim = core::default_primitives(dep.config.master_seed);
  core::Collector collector(dep.config, 0, dep.collector_endpoint);
  ASSERT_TRUE(collector.enable_primitives(prim).ok());
  for (const auto& frame : it->second.artifacts) {
    collector.rnic().process_frame(frame);
  }
  EXPECT_EQ(collector.ingest_counters().fetch_adds.load(), 3u);
  for (std::uint64_t k = 1; k <= 3; ++k) {
    EXPECT_EQ(collector.counters().read(core::sim_key(k)), 0x10101ull * k)
        << "key " << k;
  }
}

TEST(GoldenTrace, PostcardReportsReplayAssemblePartialGroups) {
  const auto committed = committed_traces();
  const auto it = committed.find("postcard_reports");
  ASSERT_NE(it, committed.end());
  ASSERT_EQ(it->second.artifacts.size(), 6u);

  const auto dep = golden_deployment();
  const auto prim = core::default_primitives(dep.config.master_seed);
  // The fixture assumes the two golden flows land in distinct groups.
  ASSERT_NE(prim.postcards.group_of(core::sim_key(1)),
            prim.postcards.group_of(core::sim_key(2)));
  core::Collector collector(dep.config, 0, dep.collector_endpoint);
  ASSERT_TRUE(collector.enable_primitives(prim).ok());
  for (const auto& frame : it->second.artifacts) {
    collector.rnic().process_frame(frame);
  }
  for (std::uint64_t flow = 1; flow <= 2; ++flow) {
    const auto view = collector.postcards().read_group(core::sim_key(flow));
    EXPECT_EQ(view.valid_mask, 0b111u) << "flow " << flow;  // hops 0..2 of 8
    for (std::uint32_t hop = 0; hop < 3; ++hop) {
      EXPECT_EQ(view.hops[hop],
                golden_value(flow * 8 + hop, prim.postcards.value_bytes))
          << "flow " << flow << " hop " << hop;
    }
  }
}

TEST(GoldenTrace, PrimitiveQueryWirePayloadsParseBack) {
  const auto committed = committed_traces();
  const auto it = committed.find("primitive_query_wire");
  ASSERT_NE(it, committed.end());
  ASSERT_EQ(it->second.artifacts.size(), 7u);

  const auto dep = golden_deployment();
  const auto prim = core::default_primitives(dep.config.master_seed);

  const auto drain = core::parse_primitive_request(it->second.artifacts[0]);
  ASSERT_TRUE(drain.has_value());
  EXPECT_EQ(drain->op, core::PrimitiveOp::kDrainRing);
  EXPECT_EQ(drain->request_id, 1u);
  EXPECT_EQ(drain->epoch, 0xE1001u);
  EXPECT_EQ(drain->max_entries, 16u);
  EXPECT_TRUE(drain->key.empty());

  const auto counter = core::parse_primitive_request(it->second.artifacts[1]);
  ASSERT_TRUE(counter.has_value());
  EXPECT_EQ(counter->op, core::PrimitiveOp::kReadCounter);
  const auto ckey = core::sim_key(2);
  EXPECT_TRUE(std::equal(counter->key.begin(), counter->key.end(),
                         ckey.begin(), ckey.end()));

  const auto group = core::parse_primitive_request(it->second.artifacts[2]);
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->op, core::PrimitiveOp::kReadPostcardGroup);

  const auto drained = core::parse_primitive_response(it->second.artifacts[3]);
  ASSERT_TRUE(drained.has_value());
  EXPECT_FALSE(drained->unavailable());
  EXPECT_EQ(drained->missed, 3u);
  EXPECT_EQ(drained->next_seq, 7u);
  ASSERT_EQ(drained->entries.size(), 2u);
  EXPECT_EQ(drained->entries[0].seq, 4u);
  EXPECT_EQ(drained->entries[1].seq, 6u);
  EXPECT_EQ(drained->entries[1].value,
            golden_value(6, prim.ring.value_bytes));

  const auto cell = core::parse_primitive_response(it->second.artifacts[4]);
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->cell_index, prim.counters.index_of(ckey));
  EXPECT_EQ(cell->counter_value, 0x20202u);

  const auto path = core::parse_primitive_response(it->second.artifacts[5]);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->group_index, prim.postcards.group_of(core::sim_key(3)));
  EXPECT_EQ(path->max_hops, prim.postcards.max_hops);
  EXPECT_EQ(path->valid_mask, 0b101u);
  ASSERT_EQ(path->hops.size(), prim.postcards.max_hops);

  const auto unavailable =
      core::parse_primitive_response(it->second.artifacts[6]);
  ASSERT_TRUE(unavailable.has_value());
  EXPECT_TRUE(unavailable->unavailable());
  EXPECT_EQ(unavailable->request_id, 4u);
  EXPECT_EQ(unavailable->epoch, 0xE1004u);
}

// --- consistent-hash ring fixture --------------------------------------------

// The cht_ring16 fixture pins the 16-collector consistent-hash mapping: a
// freshly constructed ring must reproduce the committed owner table byte
// for byte (any drift silently re-shards a deployed fleet), the committed
// single-leave table must differ ONLY on the removed member's buckets, and
// the committed re-admit table must equal the full-membership one exactly.
TEST(GoldenTrace, ChtRing16ReplayPinsMappingAndMinimalMovement) {
  const auto committed = committed_traces();
  const auto it = committed.find("cht_ring16");
  ASSERT_NE(it, committed.end())
      << "missing fixture tests/golden/cht_ring16.hex — regenerate: "
         "build/tools/dart_trace golden --out=tests/golden";
  ASSERT_EQ(it->second.artifacts.size(), 3u);

  const auto dep = golden_deployment();
  core::CollectorRingConfig rc;
  rc.capacity = 16;
  rc.height_per_member = 64;
  rc.seed = dep.config.master_seed;
  const core::CollectorRing ring(rc);

  const auto decode = [](const std::vector<std::byte>& bytes) {
    std::vector<std::uint32_t> table(bytes.size() / 4);
    for (std::size_t b = 0; b < table.size(); ++b) {
      table[b] = static_cast<std::uint32_t>(bytes[b * 4 + 0]) |
                 (static_cast<std::uint32_t>(bytes[b * 4 + 1]) << 8) |
                 (static_cast<std::uint32_t>(bytes[b * 4 + 2]) << 16) |
                 (static_cast<std::uint32_t>(bytes[b * 4 + 3]) << 24);
    }
    return table;
  };
  const auto full = decode(it->second.artifacts[0]);
  const auto without5 = decode(it->second.artifacts[1]);
  const auto restored = decode(it->second.artifacts[2]);

  // Today's construction reproduces the committed full-membership mapping.
  ASSERT_EQ(full.size(), ring.height());
  EXPECT_EQ(full, ring.owner_table());

  // Minimal movement, as committed: only member 5's buckets moved, each to
  // a live survivor, and the movement is bounded by 2·K/N.
  ASSERT_EQ(without5.size(), full.size());
  std::size_t moved = 0;
  for (std::size_t b = 0; b < full.size(); ++b) {
    if (full[b] == 5u) {
      EXPECT_NE(without5[b], 5u) << b;
      EXPECT_LT(without5[b], 16u) << b;
      ++moved;
    } else {
      EXPECT_EQ(without5[b], full[b]) << "bucket " << b << " moved needlessly";
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, 2 * full.size() / 16);

  // Re-admit restores the full-membership table bit-for-bit.
  EXPECT_EQ(restored, full);
}

}  // namespace
}  // namespace dart::check
