// Seed-corpus replay: every fixture under tests/corpus/ is fed to the
// parsers and the full RNIC ingest path.
//
// The canonical seeds (written by `dart_trace corpus`) are must-reject
// frames with a pinned rejection reason: each must bump exactly its
// documented counter and leave store memory untouched. Any other *.hex file
// in the directory — shrunk cases appended by a failing property run — gets
// the weaker universal invariant: parsers and ingest must not crash, and a
// frame that doesn't execute must not mutate memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>

#include "check/golden.hpp"
#include "core/query_protocol.hpp"
#include "net/headers.hpp"
#include "rdma/multiwrite.hpp"

namespace dart::check {
namespace {

std::string corpus_dir() {
  return std::string(DART_SOURCE_DIR) + "/tests/corpus";
}

struct Ingest {
  core::Collector collector;
  explicit Ingest(const GoldenDeployment& dep)
      : collector(dep.config, 0, dep.collector_endpoint) {
    collector.rnic().set_dta_multiwrite(true);
  }
};

bool memory_all_zero(const core::Collector& c) {
  const auto mem = c.store().memory();
  return std::all_of(mem.begin(), mem.end(),
                     [](std::byte b) { return b == std::byte{0}; });
}

// The pinned rejection counter for each canonical seed.
std::uint64_t rejection_count(const rdma::RnicCounters& c,
                              const std::string& name) {
  if (name == "truncated_write") return c.not_roce.load();
  if (name == "bad_ip_checksum") return c.not_roce.load();
  if (name == "bad_icrc_write") return c.bad_icrc.load();
  if (name == "truncated_multiwrite") return c.bad_icrc.load();
  if (name == "bad_opcode") return c.bad_opcode.load();
  if (name == "unknown_qp") return c.unknown_qp.load();
  if (name == "bad_rkey") return c.bad_rkey.load();
  if (name == "oob_write") return c.out_of_bounds.load();
  if (name == "unaligned_atomic") return c.unaligned_atomic.load();
  return ~0ull;
}

TEST(CorpusReplay, CanonicalSeedsAreRejectedForTheirPinnedReason) {
  const auto dep = golden_deployment();
  for (const auto& seed : canonical_corpus()) {
    const auto committed =
        read_trace_file(corpus_dir() + "/" + seed.name + ".hex");
    ASSERT_TRUE(committed.has_value())
        << "missing fixture tests/corpus/" << seed.name
        << ".hex — regenerate: build/tools/dart_trace corpus --out=tests/corpus";
    // Committed fixture must match the generator (same byte-pinning contract
    // as the golden traces).
    ASSERT_EQ(committed->artifacts, seed.artifacts) << seed.name;

    // Each seed replays against its own fresh collector so counters and
    // memory assertions are exact.
    Ingest ingest(dep);
    for (const auto& frame : committed->artifacts) {
      const auto completion = ingest.collector.rnic().process_frame(frame);
      EXPECT_FALSE(completion.has_value()) << seed.name << " executed";
    }
    const auto& c = ingest.collector.ingest_counters();
    EXPECT_EQ(c.executed.load(), 0u) << seed.name;
    EXPECT_EQ(rejection_count(c, seed.name), committed->artifacts.size())
        << seed.name << " did not hit its pinned rejection counter";
    EXPECT_TRUE(memory_all_zero(ingest.collector))
        << seed.name << " mutated store memory";
  }
}

// Every file in the corpus — canonical or appended by a property failure —
// must survive all parsers and the ingest path without crashing, and
// without memory effects unless the RNIC reports an execution.
TEST(CorpusReplay, EveryCorpusFileSurvivesParsersAndIngest) {
  const auto dep = golden_deployment();
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir())) {
    if (entry.path().extension() != ".hex") continue;
    const auto trace = read_trace_file(entry.path().string());
    ASSERT_TRUE(trace.has_value()) << entry.path() << " is not a valid fixture";
    ++files;

    Ingest ingest(dep);
    for (const auto& artifact : trace->artifacts) {
      // Parsers must be total on arbitrary corpus bytes.
      (void)net::parse_udp_frame(artifact);
      (void)rdma::parse_multiwrite(artifact);
      (void)core::parse_query_request(artifact);
      (void)core::parse_query_response(artifact);

      (void)ingest.collector.rnic().process_frame(artifact);
      if (ingest.collector.ingest_counters().executed.load() == 0) {
        EXPECT_TRUE(memory_all_zero(ingest.collector))
            << entry.path() << ": rejected frame mutated memory";
      }
    }
  }
  // The canonical seeds are committed; an empty directory means the fixture
  // path is wrong, not that there is nothing to replay.
  EXPECT_GE(files, canonical_corpus().size());
}

}  // namespace
}  // namespace dart::check
