// Tests for network-wide heavy-hitter detection via RDMA Fetch&Add (§7).
#include "telemetry/heavy_hitters.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/random.hpp"
#include "switchsim/topology.hpp"
#include "telemetry/workload.hpp"

namespace dart::telemetry {
namespace {

HeavyHitterConfig config() {
  HeavyHitterConfig cfg;
  cfg.sketch_rows = 4;
  cfg.sketch_cols = 1 << 12;
  return cfg;
}

core::ReporterEndpoint endpoint(std::uint8_t id) {
  core::ReporterEndpoint ep;
  ep.ip = net::Ipv4Addr::from_octets(10, 255, 1, id);
  return ep;
}

FiveTuple flow_i(std::uint32_t i) {
  FiveTuple t;
  t.src_ip = net::Ipv4Addr::from_octets(10, 0, (i >> 8) & 0xFF, i & 0xFF);
  t.dst_ip = net::Ipv4Addr::from_octets(10, 9, 0, 1);
  t.src_port = static_cast<std::uint16_t>(40000 + i);
  t.dst_port = 443;
  return t;
}

TEST(HeavyHitters, SingleSwitchCountsThroughRnic) {
  HeavyHitterCollector collector(config());
  HeavyHitterSwitch sw(collector, endpoint(1));

  const auto flow = flow_i(1);
  for (int i = 0; i < 10; ++i) {
    for (const auto& frame : sw.observe(flow)) {
      ASSERT_TRUE(collector.rnic().process_frame(frame).has_value());
    }
  }
  EXPECT_EQ(collector.estimate(flow), 10u);
  EXPECT_EQ(sw.frames_emitted(), 10u * 4u);  // one F&A per row
  EXPECT_EQ(collector.rnic().counters().fetch_adds, 40u);
}

TEST(HeavyHitters, SketchNeverUndercounts) {
  HeavyHitterCollector collector(config());
  HeavyHitterSwitch sw(collector, endpoint(1));
  std::map<std::uint32_t, std::uint64_t> truth;
  Xoshiro256 rng(3);
  for (int i = 0; i < 3000; ++i) {
    const auto id = static_cast<std::uint32_t>(rng.below(200));
    truth[id] += 1;
    for (const auto& frame : sw.observe(flow_i(id))) {
      ASSERT_TRUE(collector.rnic().process_frame(frame).has_value());
    }
  }
  for (const auto& [id, count] : truth) {
    EXPECT_GE(collector.estimate(flow_i(id)), count) << id;
  }
}

TEST(HeavyHitters, MultiSwitchAggregationIsAutomatic) {
  // Two switches each see half a flow's packets: the collector-side sketch
  // holds the network-wide total with no merge step (§7's aggregation).
  HeavyHitterCollector collector(config());
  HeavyHitterSwitch sw1(collector, endpoint(1));
  HeavyHitterSwitch sw2(collector, endpoint(2));

  const auto flow = flow_i(7);
  for (int i = 0; i < 25; ++i) {
    for (const auto& frame : sw1.observe(flow)) {
      (void)collector.rnic().process_frame(frame);
    }
    for (const auto& frame : sw2.observe(flow)) {
      (void)collector.rnic().process_frame(frame);
    }
  }
  EXPECT_EQ(collector.estimate(flow), 50u);
}

TEST(HeavyHitters, WeightedObservations) {
  HeavyHitterCollector collector(config());
  HeavyHitterSwitch sw(collector, endpoint(1));
  for (const auto& frame : sw.observe(flow_i(3), /*count=*/1400)) {
    (void)collector.rnic().process_frame(frame);  // byte counting
  }
  EXPECT_EQ(collector.estimate(flow_i(3)), 1400u);
}

TEST(HeavyHitters, ThresholdReportRecoversElephants) {
  HeavyHitterCollector collector(config());
  HeavyHitterSwitch sw(collector, endpoint(1));
  Xoshiro256 rng(9);

  // 5 elephants at ~500 packets, 200 mice at ~5.
  std::vector<FiveTuple> candidates;
  for (std::uint32_t id = 0; id < 205; ++id) {
    candidates.push_back(flow_i(id));
    const int packets = id < 5 ? 500 : static_cast<int>(rng.below(10));
    for (int p = 0; p < packets; ++p) {
      for (const auto& frame : sw.observe(flow_i(id))) {
        (void)collector.rnic().process_frame(frame);
      }
    }
  }
  const auto hitters = collector.heavy_hitters(candidates, /*threshold=*/400);
  ASSERT_EQ(hitters.size(), 5u);  // perfect recall, no mice promoted
  for (const auto& [flow, est] : hitters) {
    EXPECT_GE(est, 500u);  // count-min only over-estimates
  }
}

TEST(HeavyHitters, UnknownFlowEstimatesSmall) {
  HeavyHitterCollector collector(config());
  HeavyHitterSwitch sw(collector, endpoint(1));
  for (int i = 0; i < 100; ++i) {
    for (const auto& frame : sw.observe(flow_i(static_cast<std::uint32_t>(i)))) {
      (void)collector.rnic().process_frame(frame);
    }
  }
  // A never-observed flow collides with ≤ a handful of counts w.h.p.
  EXPECT_LE(collector.estimate(flow_i(9999)), 3u);
}

}  // namespace
}  // namespace dart::telemetry
