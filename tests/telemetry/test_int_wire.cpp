// Tests for the wire-level INT-MD encoding: encap, transit push, hop limit,
// sink decap, and field round trips.
#include "telemetry/int_wire.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dart::telemetry {
namespace {

std::vector<std::byte> inner(std::size_t n = 10, std::uint8_t fill = 0x7E) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

IntMdHeader md(std::uint16_t instructions = kIntInsSwitchId,
               std::uint8_t max_hops = 8) {
  IntMdHeader h;
  h.instructions = instructions;
  h.hop_words = int_hop_words(instructions);
  h.remaining_hops = max_hops;
  return h;
}

TEST(IntWire, SourceEncapPreservesInnerAndPort) {
  const auto payload = int_source_encap(md(), 4321, inner());
  EXPECT_EQ(payload.size(), kIntShimLen + kIntMdLen + 10);

  const auto pkt = int_parse(payload);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->original_dst_port, 4321);
  EXPECT_TRUE(pkt->hops.empty());
  ASSERT_EQ(pkt->inner_payload.size(), 10u);
  EXPECT_EQ(static_cast<std::uint8_t>(pkt->inner_payload[0]), 0x7E);
}

TEST(IntWire, TransitPushAccumulatesInPathOrder) {
  auto payload = int_source_encap(md(), 80, inner());
  for (std::uint32_t sw : {11u, 22u, 33u}) {
    EXPECT_TRUE(int_transit_push(payload, {.switch_id = sw}));
  }
  const auto pkt = int_parse(payload);
  ASSERT_TRUE(pkt.has_value());
  ASSERT_EQ(pkt->hops.size(), 3u);
  EXPECT_EQ(pkt->hops[0].switch_id, 11u);  // oldest first
  EXPECT_EQ(pkt->hops[1].switch_id, 22u);
  EXPECT_EQ(pkt->hops[2].switch_id, 33u);
  EXPECT_EQ(pkt->md.remaining_hops, 5u);
}

TEST(IntWire, HopLimitSetsExceededBit) {
  auto payload = int_source_encap(md(kIntInsSwitchId, 2), 80, inner());
  EXPECT_TRUE(int_transit_push(payload, {.switch_id = 1}));
  EXPECT_TRUE(int_transit_push(payload, {.switch_id = 2}));
  EXPECT_FALSE(int_transit_push(payload, {.switch_id = 3}));  // over limit
  const auto pkt = int_parse(payload);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->hops.size(), 2u);
  EXPECT_TRUE(pkt->md.exceeded);
}

TEST(IntWire, RichInstructionsCarryAllFields) {
  const auto ins = static_cast<std::uint16_t>(
      kIntInsSwitchId | kIntInsHopLatency | kIntInsQueueDepth);
  EXPECT_EQ(int_hop_words(ins), 3u);
  auto payload = int_source_encap(md(ins), 80, inner());
  EXPECT_TRUE(int_transit_push(
      payload, {.switch_id = 7, .queue_depth = 42, .hop_latency_ns = 1700}));
  const auto pkt = int_parse(payload);
  ASSERT_TRUE(pkt.has_value());
  ASSERT_EQ(pkt->hops.size(), 1u);
  EXPECT_EQ(pkt->hops[0].switch_id, 7u);
  EXPECT_EQ(pkt->hops[0].queue_depth, 42u);
  EXPECT_EQ(pkt->hops[0].hop_latency_ns, 1700u);
}

TEST(IntWire, SinkDecapRestoresInnerExactly) {
  const auto original = inner(37, 0xAB);
  auto payload = int_source_encap(md(), 8080, original);
  (void)int_transit_push(payload, {.switch_id = 1});
  (void)int_transit_push(payload, {.switch_id = 2});
  const auto restored = int_sink_decap(payload);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, original);
}

TEST(IntWire, OverheadGrowsPerHop) {
  auto payload = int_source_encap(md(), 80, inner());
  EXPECT_EQ(int_overhead_bytes(payload), kIntShimLen + kIntMdLen);
  (void)int_transit_push(payload, {.switch_id = 1});
  EXPECT_EQ(int_overhead_bytes(payload), kIntShimLen + kIntMdLen + 4);
  (void)int_transit_push(payload, {.switch_id = 2});
  EXPECT_EQ(int_overhead_bytes(payload), kIntShimLen + kIntMdLen + 8);
}

TEST(IntWire, NonIntPayloadRejected) {
  std::vector<std::byte> junk(20, std::byte{0x42});
  EXPECT_FALSE(int_parse(junk).has_value());
  EXPECT_FALSE(int_sink_decap(junk).has_value());
  std::vector<std::byte> junk2 = junk;
  EXPECT_FALSE(int_transit_push(junk2, {.switch_id = 1}));
}

TEST(IntWire, TruncatedStackRejected) {
  auto payload = int_source_encap(md(), 80, inner(0));
  (void)int_transit_push(payload, {.switch_id = 1});
  payload.resize(payload.size() - 2);  // cut into the stack
  EXPECT_FALSE(int_parse(payload).has_value());
}

TEST(IntWire, EmptyInnerPayloadWorks) {
  auto payload = int_source_encap(md(), 80, {});
  (void)int_transit_push(payload, {.switch_id = 9});
  const auto pkt = int_parse(payload);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->inner_payload.empty());
  EXPECT_EQ(pkt->hops.size(), 1u);
}

}  // namespace
}  // namespace dart::telemetry
