// Tests for the Table-1 backend adapters: key uniqueness across domains,
// value encodings, and end-to-end storage through a DartStore.
#include "telemetry/backends.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/query.hpp"
#include "core/store.hpp"

namespace dart::telemetry {
namespace {

FiveTuple tuple(std::uint16_t port = 1000) {
  FiveTuple t;
  t.src_ip = net::Ipv4Addr::from_octets(10, 0, 0, 1);
  t.dst_ip = net::Ipv4Addr::from_octets(10, 0, 0, 2);
  t.src_port = port;
  t.dst_port = 80;
  return t;
}

TEST(Backends, InbandRecordKeyIsFlowTuple) {
  IntStack stack;
  stack.push_hop({.switch_id = 3});
  const auto rec = make_inband_record(tuple(), stack, 20);
  const auto expect = tuple().key_bytes();
  ASSERT_EQ(rec.key.size(), expect.size());
  EXPECT_TRUE(std::equal(rec.key.begin(), rec.key.end(), expect.begin()));
  EXPECT_EQ(rec.value.size(), 20u);
}

TEST(Backends, PostcardKeyIncludesSwitch) {
  const auto k1 = postcard_key(1, tuple());
  const auto k2 = postcard_key(2, tuple());
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1.size(), 17u);  // 4B switch + 13B tuple
}

TEST(Backends, PostcardRecordRoundTrip) {
  const IntHopMetadata hop{.switch_id = 9, .queue_depth = 5,
                           .hop_latency_ns = 777};
  const auto rec = make_postcard_record(9, tuple(), hop, 12);
  EXPECT_EQ(rec.value.size(), 12u);
  // Value layout: switch(4) ‖ queue(4) ‖ latency(4), big-endian.
  EXPECT_EQ(static_cast<std::uint8_t>(rec.value[3]), 9);
  EXPECT_EQ(static_cast<std::uint8_t>(rec.value[7]), 5);
  EXPECT_EQ(static_cast<std::uint8_t>(rec.value[11]), 777 & 0xFF);
}

TEST(Backends, QueryMirrorRecord) {
  std::vector<std::byte> answer{std::byte{1}, std::byte{2}};
  const auto rec = make_query_mirror_record(42, answer, 8);
  EXPECT_EQ(rec.key, query_mirror_key(42));
  EXPECT_EQ(static_cast<std::uint8_t>(rec.value[0]), 1);
  EXPECT_EQ(rec.value.size(), 8u);
}

TEST(Backends, TraceAnalysisKeyedByAnalysisAndObject) {
  EXPECT_NE(trace_analysis_key(1, 100), trace_analysis_key(1, 101));
  EXPECT_NE(trace_analysis_key(1, 100), trace_analysis_key(2, 100));
}

TEST(Backends, AnomalyRecordRoundTrip) {
  FlowAnomalyEvent ev;
  ev.flow = tuple();
  ev.kind = AnomalyKind::kRttSpike;
  ev.timestamp_ns = 0x0102030405060708ull;
  ev.magnitude = 42;
  const auto rec = make_anomaly_record(ev, 12);
  const auto decoded = decode_anomaly_value(rec.value);
  EXPECT_EQ(decoded.timestamp_ns, ev.timestamp_ns);
  EXPECT_EQ(decoded.magnitude, 42u);
}

TEST(Backends, AnomalyKeyPerKind) {
  EXPECT_NE(anomaly_key(tuple(), AnomalyKind::kRttSpike),
            anomaly_key(tuple(), AnomalyKind::kPacketDropRun));
}

TEST(Backends, FailureRecordRoundTrip) {
  NetworkFailureEvent ev;
  ev.failure_id = 7;
  ev.location = 13;
  ev.timestamp_ns = 999999;
  ev.debug_code = 0xDEAD;
  const auto rec = make_failure_record(ev, 12);
  EXPECT_EQ(rec.key, failure_key(7, 13));
  const auto decoded = decode_failure_value(rec.value);
  EXPECT_EQ(decoded.timestamp_ns, 999999u);
  EXPECT_EQ(decoded.debug_code, 0xDEADu);
}

TEST(Backends, DomainsNeverCollideOnKeys) {
  // Different backends writing into ONE shared store must use disjoint key
  // spaces — the domain tags guarantee it for same-sized prefixes.
  std::set<std::vector<std::byte>> keys;
  keys.insert(postcard_key(1, tuple()));
  keys.insert(query_mirror_key(1));
  keys.insert(trace_analysis_key(1, 1));
  keys.insert(anomaly_key(tuple(), AnomalyKind::kRetransmissionBurst));
  keys.insert(failure_key(1, 1));
  const auto fk = tuple().key_bytes();
  keys.insert(std::vector<std::byte>(fk.begin(), fk.end()));
  EXPECT_EQ(keys.size(), 6u);
}

TEST(Backends, AllBackendsStoreAndQueryThroughOneDartStore) {
  // Table 1's point: one collection structure serves every technique.
  core::DartConfig cfg;
  cfg.n_slots = 1 << 14;
  cfg.n_addresses = 2;
  cfg.value_bytes = 20;
  cfg.master_seed = 77;
  core::DartStore store(cfg);
  const core::QueryEngine q(store);

  IntStack stack;
  stack.push_hop({.switch_id = 1});
  const auto recs = std::vector<TelemetryRecord>{
      make_inband_record(tuple(1), stack, 20),
      make_postcard_record(5, tuple(2), {.switch_id = 5}, 20),
      make_query_mirror_record(3, {}, 20),
      make_trace_analysis_record(1, 2, {}, 20),
      make_anomaly_record({.flow = tuple(3)}, 20),
      make_failure_record({.failure_id = 4, .location = 5}, 20),
  };
  for (const auto& rec : recs) store.write(rec.key, rec.value);
  for (const auto& rec : recs) {
    const auto r = q.resolve(rec.key);
    ASSERT_EQ(r.outcome, core::QueryOutcome::kFound);
    EXPECT_EQ(r.value, rec.value);
  }
}

}  // namespace
}  // namespace dart::telemetry
