// Tests for the packet-forwarding fat-tree fabric with wire-level INT:
// delivery, routing equivalence with FatTree::path, INT accounting, and the
// DART report path over the monitoring underlay.
#include "telemetry/wire_fabric.hpp"

#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "telemetry/workload.hpp"

namespace dart::telemetry {
namespace {

WireFabricConfig config(std::uint32_t k = 4, double loss = 0.0) {
  WireFabricConfig cfg;
  cfg.fat_tree_k = k;
  cfg.dart.n_slots = 1 << 14;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0x31BE;
  cfg.n_collectors = 1;
  cfg.report_loss_rate = loss;
  cfg.seed = 3;
  return cfg;
}

FiveTuple make_flow(const switchsim::FatTree& topo, std::uint32_t src,
                    std::uint32_t dst, std::uint16_t sport = 50000) {
  FiveTuple t;
  t.src_ip = topo.host_ip(src);
  t.dst_ip = topo.host_ip(dst);
  t.src_port = sport;
  t.dst_port = 8080;
  t.protocol = 17;
  return t;
}

TEST(WireFabric, DeliversPacketToDestinationHost) {
  WireFabric fabric(config());
  const auto flow = make_flow(fabric.topology(), 0, 15);
  fabric.send_flow(flow, 0, 3);
  fabric.run();
  EXPECT_EQ(fabric.host_received(15), 3u);
  EXPECT_EQ(fabric.stats().host_packets_sent, 3u);
  EXPECT_EQ(fabric.stats().host_packets_received, 3u);
}

TEST(WireFabric, IntSourceAndSinkFireOncePerPacket) {
  WireFabric fabric(config());
  const auto flow = make_flow(fabric.topology(), 0, 15);
  fabric.send_flow(flow, 0, 5);
  fabric.run();
  const auto s = fabric.stats();
  EXPECT_EQ(s.int_sources, 5u);
  EXPECT_EQ(s.int_sinks, 5u);
  // 5-hop path, 1 word/hop: shim(4)+md(8)+5*4 = 32 B per packet.
  EXPECT_EQ(s.int_overhead_bytes, 5u * 32u);
}

TEST(WireFabric, RecordedPathMatchesFatTreeEcmp) {
  WireFabric fabric(config(8));
  const auto& topo = fabric.topology();
  FlowGenerator gen(topo, 11);
  for (int i = 0; i < 40; ++i) {
    const auto fe = gen.next_flow();
    fabric.send_flow(fe.tuple, fe.src_host, 1);
    fabric.run();

    const auto recorded = fabric.query_path(fe.tuple);
    ASSERT_TRUE(recorded.has_value()) << "flow " << i;

    const auto key = fe.tuple.key_bytes();
    const auto expected =
        topo.path(fe.src_host, fe.dst_host, xxhash64(key, 0xECB9));
    EXPECT_EQ(*recorded, expected) << fe.tuple.str();
  }
}

TEST(WireFabric, IntraRackFlowIsOneHop) {
  WireFabric fabric(config());
  // Hosts 0 and 1 share edge 0 in a k=4 tree.
  const auto flow = make_flow(fabric.topology(), 0, 1);
  fabric.send_flow(flow, 0, 1);
  fabric.run();
  EXPECT_EQ(fabric.host_received(1), 1u);
  const auto path = fabric.query_path(flow);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_EQ((*path)[0], fabric.topology().host_edge(0));
}

TEST(WireFabric, InnerPayloadSurvivesIntRoundTrip) {
  WireFabric fabric(config());
  const auto flow = make_flow(fabric.topology(), 2, 13);
  fabric.send_flow(flow, 2, 1, /*payload_bytes=*/123);
  fabric.run();
  EXPECT_EQ(fabric.host_received(13), 1u);
  // INT overhead accounted and stripped: 5 hops → 32 B, payload unchanged on
  // delivery (host counts only frames addressed to its IP — decap happened).
  EXPECT_GT(fabric.stats().int_overhead_bytes, 0u);
}

TEST(WireFabric, ReportsReachCollectorThroughUnderlay) {
  WireFabric fabric(config());
  const auto flow = make_flow(fabric.topology(), 0, 15);
  fabric.send_flow(flow, 0, 1);
  fabric.run();
  const auto& counters = fabric.cluster().collector(0).ingest_counters();
  EXPECT_EQ(counters.writes, 2u);  // N = 2 report frames
  EXPECT_EQ(fabric.stats().reports_emitted, 2u);
  // Zero CPU writes at the collector.
  EXPECT_EQ(fabric.cluster().collector(0).store().writes_performed(), 0u);
}

TEST(WireFabric, ManyFlowsQueryable) {
  WireFabric fabric(config(4));
  FlowGenerator gen(fabric.topology(), 17);
  std::vector<FlowEndpoints> flows;
  for (int i = 0; i < 300; ++i) {
    flows.push_back(gen.next_flow());
    fabric.send_flow(flows.back().tuple, flows.back().src_host, 1);
  }
  fabric.run();
  int found = 0;
  for (const auto& fe : flows) {
    if (fabric.query_path(fe.tuple).has_value()) ++found;
  }
  EXPECT_GE(found, 296);  // α ≈ 0.037 → near-perfect
}

TEST(WireFabric, ReportLossOnUnderlayToleratedByRedundancy) {
  WireFabric fabric(config(4, /*loss=*/0.3));
  FlowGenerator gen(fabric.topology(), 19);
  std::vector<FlowEndpoints> flows;
  for (int i = 0; i < 600; ++i) {
    flows.push_back(gen.next_flow());
    fabric.send_flow(flows.back().tuple, flows.back().src_host, 1);
  }
  fabric.run();
  int found = 0;
  for (const auto& fe : flows) {
    if (fabric.query_path(fe.tuple).has_value()) ++found;
  }
  // Loss applies only to report frames: success ≈ 1 - 0.3² = 0.91.
  EXPECT_NEAR(static_cast<double>(found) / 600.0, 0.91, 0.05);
  // Data delivery unaffected.
  EXPECT_EQ(fabric.stats().host_packets_received, 600u);
}

TEST(WireFabric, HopMetadataRichInstructions) {
  auto cfg = config();
  cfg.int_instructions = static_cast<std::uint16_t>(
      kIntInsSwitchId | kIntInsQueueDepth | kIntInsHopLatency);
  WireFabric fabric(cfg);
  const auto flow = make_flow(fabric.topology(), 0, 15);
  fabric.send_flow(flow, 0, 1);
  fabric.run();
  // 5 hops × 3 words × 4 B + 12 B headers.
  EXPECT_EQ(fabric.stats().int_overhead_bytes, 5u * 12u + 12u);
  // Path still recorded (value carries switch ids only).
  EXPECT_TRUE(fabric.query_path(flow).has_value());
}

TEST(WireFabric, HostOfIpInverse) {
  WireFabric fabric(config());
  const auto& topo = fabric.topology();
  for (std::uint32_t h = 0; h < topo.n_hosts(); ++h) {
    EXPECT_EQ(fabric.host_of_ip(topo.host_ip(h)), h);
  }
  EXPECT_FALSE(
      fabric.host_of_ip(net::Ipv4Addr::from_octets(192, 168, 1, 1)).has_value());
}

TEST(WireFabric, ShapedLinksReportRealQueueDepths) {
  // Bandwidth-shaped links + a traffic burst between two hosts: INT's
  // queue-depth metadata must observe the real egress backlog.
  auto cfg = config();
  cfg.int_instructions = static_cast<std::uint16_t>(
      kIntInsSwitchId | kIntInsQueueDepth);
  cfg.data_link_shape = {.bandwidth_bps = 100'000'000, .queue_cap = 0};
  WireFabric fabric(cfg);
  const auto flow = make_flow(fabric.topology(), 0, 15);
  // 64 back-to-back packets: at 100 Mbps a ~100B frame serializes in ~8 µs,
  // so the burst builds a deep queue at the first hop.
  fabric.send_flow(flow, 0, 64);
  fabric.run();
  EXPECT_EQ(fabric.stats().host_packets_received, 64u);
  EXPECT_GT(fabric.stats().max_reported_queue_depth, 10u);

  // The same burst over ideal links reports all-zero queue depths.
  auto ideal_cfg = config();
  ideal_cfg.int_instructions = cfg.int_instructions;
  WireFabric ideal(ideal_cfg);
  ideal.send_flow(make_flow(ideal.topology(), 0, 15), 0, 64);
  ideal.run();
  EXPECT_EQ(ideal.stats().max_reported_queue_depth, 0u);
}

TEST(WireFabric, TailDropUnderSevereCongestion) {
  auto cfg = config();
  cfg.data_link_shape = {.bandwidth_bps = 10'000'000, .queue_cap = 8};
  WireFabric fabric(cfg);
  const auto flow = make_flow(fabric.topology(), 0, 15);
  fabric.send_flow(flow, 0, 200);
  fabric.run();
  // The 8-deep 10 Mbps host uplink cannot carry a 200-packet burst.
  EXPECT_LT(fabric.stats().host_packets_received, 200u);
  EXPECT_GT(fabric.stats().host_packets_received, 0u);
}

TEST(WireFabric, PostcardModeReportsPerSwitch) {
  auto cfg = config();
  cfg.postcards = true;
  cfg.postcard_detector = {.table_size = 1 << 14, .threshold = 0};
  WireFabric fabric(cfg);
  const auto flow = make_flow(fabric.topology(), 0, 15);
  fabric.send_flow(flow, 0, 1);
  fabric.run();

  // Every switch on the 5-hop path filed a postcard for this new flow.
  const auto path = fabric.query_path(flow);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 5u);
  for (const auto sw : *path) {
    const auto hop = fabric.query_postcard(sw, flow);
    ASSERT_TRUE(hop.has_value()) << "switch " << sw;
    EXPECT_EQ(hop->switch_id, sw + 1);
  }
  // Off-path switch: no postcard.
  std::uint32_t off_path = 0;
  while (std::find(path->begin(), path->end(), off_path) != path->end()) {
    ++off_path;
  }
  EXPECT_FALSE(fabric.query_postcard(off_path, flow).has_value());
  EXPECT_EQ(fabric.stats().postcard_reports, 5u);
}

TEST(WireFabric, PostcardEventFilterSuppressesStableFlows) {
  auto cfg = config();
  cfg.postcards = true;
  cfg.postcard_detector = {.table_size = 1 << 14, .threshold = 4};
  WireFabric fabric(cfg);
  const auto flow = make_flow(fabric.topology(), 0, 15);
  // 50 packets of a steady flow on ideal links (queue depth constant 0):
  // only the first packet's 5 hops report.
  fabric.send_flow(flow, 0, 50);
  fabric.run();
  EXPECT_EQ(fabric.stats().postcard_reports, 5u);
  EXPECT_EQ(fabric.stats().postcard_observations, 50u * 5u);
}

TEST(WireFabric, Figure2CompleteInOneSimulator) {
  // The whole paper picture in one event-driven simulation: hosts send
  // traffic, switches do INT + DART reporting to RNICs, and an operator
  // node issues UDP queries to collector-side query services.
  auto cfg = config();
  cfg.n_collectors = 2;
  WireFabric fabric(cfg);
  auto& op = fabric.attach_operator();

  FlowGenerator gen(fabric.topology(), 23);
  std::vector<FlowEndpoints> flows;
  for (int i = 0; i < 100; ++i) {
    flows.push_back(gen.next_flow());
    fabric.send_flow(flows.back().tuple, flows.back().src_host, 1);
  }
  // Queries can be injected while traffic drains — one event queue.
  std::vector<std::uint64_t> ids;
  for (const auto& fe : flows) {
    const auto key = fe.tuple.key_bytes();
    ids.push_back(op.query(std::vector<std::byte>(key.begin(), key.end())));
  }
  fabric.run();

  int found = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto resp = op.take_response(ids[i]);
    ASSERT_TRUE(resp.has_value()) << i;
    if (resp->outcome == core::QueryOutcome::kFound) {
      auto wire_ids = IntStack::decode_switch_ids(resp->value);
      ASSERT_FALSE(wire_ids.empty());
      ++found;
    }
  }
  // Management RTT (100 µs) exceeds fabric delivery (~10 µs), so reports
  // land before queries arrive: near-perfect hit rate at α ≈ 0.012.
  EXPECT_GE(found, 98);
  EXPECT_EQ(op.responses_received(), 100u);
  // Idempotent attach.
  EXPECT_EQ(&fabric.attach_operator(), &op);
}

}  // namespace
}  // namespace dart::telemetry
