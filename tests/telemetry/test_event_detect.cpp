// Tests for switch-side event-triggered reporting (§2).
#include "telemetry/event_detect.hpp"

#include <gtest/gtest.h>

#include "core/oracle.hpp"
#include "switchsim/topology.hpp"
#include "telemetry/workload.hpp"

namespace dart::telemetry {
namespace {

using dart::core::sim_key;

ChangeDetectorConfig config(std::uint32_t threshold = 0,
                            std::uint64_t interval = 0,
                            std::uint32_t table = 1 << 12) {
  ChangeDetectorConfig cfg;
  cfg.table_size = table;
  cfg.threshold = threshold;
  cfg.min_interval_ns = interval;
  return cfg;
}

TEST(ChangeDetector, NewFlowAlwaysReports) {
  ChangeDetector det(config());
  EXPECT_TRUE(det.observe(sim_key(1), 100, 0));
  EXPECT_TRUE(det.observe(sim_key(2), 100, 0));
  EXPECT_EQ(det.stats().new_flows, 2u);
  EXPECT_EQ(det.stats().reports, 2u);
}

TEST(ChangeDetector, UnchangedValueSuppressed) {
  ChangeDetector det(config());
  EXPECT_TRUE(det.observe(sim_key(1), 100, 0));
  for (int i = 1; i <= 10; ++i) {
    EXPECT_FALSE(det.observe(sim_key(1), 100, i));
  }
  EXPECT_EQ(det.stats().suppressed_unchanged, 10u);
  EXPECT_EQ(det.stats().reports, 1u);
}

TEST(ChangeDetector, ChangeTriggersReport) {
  ChangeDetector det(config());
  EXPECT_TRUE(det.observe(sim_key(1), 100, 0));
  EXPECT_TRUE(det.observe(sim_key(1), 150, 1));
  EXPECT_FALSE(det.observe(sim_key(1), 150, 2));
  EXPECT_EQ(det.stats().reports, 2u);
}

TEST(ChangeDetector, ThresholdFiltersSmallChanges) {
  ChangeDetector det(config(/*threshold=*/10));
  EXPECT_TRUE(det.observe(sim_key(1), 100, 0));
  EXPECT_FALSE(det.observe(sim_key(1), 105, 1));   // |Δ|=5 ≤ 10
  EXPECT_FALSE(det.observe(sim_key(1), 95, 2));    // vs last REPORTED (100)
  EXPECT_TRUE(det.observe(sim_key(1), 120, 3));    // |Δ|=20 > 10
  EXPECT_EQ(det.stats().reports, 2u);
}

TEST(ChangeDetector, RateLimitSuppressesBursts) {
  ChangeDetector det(config(0, /*interval=*/1000));
  EXPECT_TRUE(det.observe(sim_key(1), 1, 0));
  EXPECT_FALSE(det.observe(sim_key(1), 2, 100));   // changed but too soon
  EXPECT_FALSE(det.observe(sim_key(1), 3, 999));
  EXPECT_TRUE(det.observe(sim_key(1), 4, 1000));   // window elapsed
  EXPECT_EQ(det.stats().suppressed_ratelimited, 2u);
}

TEST(ChangeDetector, CollisionEvictsAndReports) {
  // 1-entry table: every distinct flow evicts the previous one.
  ChangeDetector det(config(0, 0, /*table=*/1));
  EXPECT_TRUE(det.observe(sim_key(1), 5, 0));
  EXPECT_TRUE(det.observe(sim_key(2), 5, 1));  // evicts flow 1
  EXPECT_TRUE(det.observe(sim_key(1), 5, 2));  // flow 1 is "new" again
  EXPECT_EQ(det.stats().evictions, 2u);
  EXPECT_EQ(det.stats().reports, 3u);
}

TEST(ChangeDetector, SramAccounting) {
  ChangeDetector det(config(0, 0, 1 << 16));
  EXPECT_EQ(det.sram_bytes(), (1u << 16) * 16u);  // 16 B/entry
}

TEST(ChangeDetector, ZeroTableClampedToOne) {
  ChangeDetector det(config(0, 0, 0));
  EXPECT_TRUE(det.observe(sim_key(1), 1, 0));
}

TEST(ChangeDetector, SuppressionOnStableSkewedTraffic) {
  // The §2 claim's shape: per-packet telemetry over mostly-stable flows
  // collapses to a small report stream once events, not packets, trigger
  // reporting. Zipf traffic, values change rarely.
  const switchsim::FatTree topo(8);
  FlowSampler sampler(topo, 2000, 1.1, 3);
  // Table sized well above the flow count: collisions (which re-report on
  // every eviction) stay rare. The eviction counter shows the residue.
  ChangeDetector det(config(/*threshold=*/8, /*interval=*/0, 1 << 17));
  Xoshiro256 rng(5);

  std::vector<std::uint32_t> flow_value(2000, 100);
  constexpr int kPackets = 200'000;
  for (int p = 0; p < kPackets; ++p) {
    const auto idx = rng.below(2000);
    // 1% of packets carry a real change (e.g. queue spike).
    if (rng.chance(0.01)) {
      flow_value[idx] += 50;
    }
    const auto key = sampler.flow(idx).tuple.key_bytes();
    (void)det.observe(key, flow_value[idx], static_cast<std::uint64_t>(p));
  }
  // Report fraction ≈ change rate + new-flow transient + eviction residue,
  // far below the per-packet rate.
  EXPECT_LT(det.stats().report_fraction(), 0.06);
  EXPECT_GT(det.stats().report_fraction(), 0.005);
  EXPECT_EQ(det.stats().observations, static_cast<std::uint64_t>(kPackets));
  // Eviction churn must be a minor contributor at this table size.
  EXPECT_LT(det.stats().evictions, det.stats().reports / 2);
}

TEST(ChangeDetector, EveryChangeIsEventuallyReported) {
  // No threshold, no rate limit, no collisions: every value change must
  // produce exactly one report.
  ChangeDetector det(config(0, 0, 1 << 16));
  std::uint64_t expected = 0;
  std::uint32_t value = 0;
  for (int i = 0; i < 1000; ++i) {
    if (i % 7 == 0) {
      ++value;
    }
    const bool reported = det.observe(sim_key(42), value, i);
    if (i == 0 || i % 7 == 0) {
      EXPECT_TRUE(reported) << i;
      ++expected;
    } else {
      EXPECT_FALSE(reported) << i;
    }
  }
  EXPECT_EQ(det.stats().reports, expected);
}

}  // namespace
}  // namespace dart::telemetry
