// Tests for the flow workload generators.
#include "telemetry/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

namespace dart::telemetry {
namespace {

TEST(FlowGenerator, EndpointsAreValidHosts) {
  const switchsim::FatTree topo(4);
  FlowGenerator gen(topo, 1);
  for (int i = 0; i < 500; ++i) {
    const auto f = gen.next_flow();
    EXPECT_LT(f.src_host, topo.n_hosts());
    EXPECT_LT(f.dst_host, topo.n_hosts());
    EXPECT_NE(f.src_host, f.dst_host);
    EXPECT_EQ(f.tuple.src_ip, topo.host_ip(f.src_host));
    EXPECT_EQ(f.tuple.dst_ip, topo.host_ip(f.dst_host));
    EXPECT_GE(f.tuple.src_port, 49152);
  }
}

TEST(FlowGenerator, FlowsAreOverwhelminglyDistinct) {
  const switchsim::FatTree topo(8);
  FlowGenerator gen(topo, 2);
  std::unordered_set<FiveTuple, FiveTupleHash> seen;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) seen.insert(gen.next_flow().tuple);
  // Ports carry ~24 bits of entropy on top of host pairs; expect near-zero
  // duplicates but tolerate a handful.
  EXPECT_GE(seen.size(), static_cast<std::size_t>(kN * 0.999));
}

TEST(FlowGenerator, FlowAtIsStatelessAndStable) {
  const switchsim::FatTree topo(4);
  FlowGenerator a(topo, 3);
  FlowGenerator b(topo, 99);  // different seed — flow_at ignores it
  EXPECT_EQ(a.flow_at(123).tuple, b.flow_at(123).tuple);
  EXPECT_NE(a.flow_at(1).tuple, a.flow_at(2).tuple);
  // Repeated calls agree.
  EXPECT_EQ(a.flow_at(7).tuple, a.flow_at(7).tuple);
}

TEST(FlowGenerator, SeedsChangeNextFlowStream) {
  const switchsim::FatTree topo(4);
  FlowGenerator a(topo, 1);
  FlowGenerator b(topo, 2);
  EXPECT_NE(a.next_flow().tuple, b.next_flow().tuple);
}

TEST(FlowSampler, PopulationFixedAndSkewed) {
  const switchsim::FatTree topo(4);
  FlowSampler sampler(topo, 100, 1.2, 5);
  EXPECT_EQ(sampler.population(), 100u);

  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const auto& f = sampler.sample();
    ++counts[f.tuple.src_port ^ (f.tuple.dst_port << 16)];
  }
  // Heavy tail: the most popular flow dwarfs the median.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20000 / 100 * 5);
}

TEST(FlowSampler, FlowAccessorMatchesSamples) {
  const switchsim::FatTree topo(4);
  FlowSampler sampler(topo, 10, 0.0, 5);
  std::set<std::uint64_t> sampled;
  for (int i = 0; i < 1000; ++i) {
    const auto& f = sampler.sample();
    bool found = false;
    for (std::size_t j = 0; j < sampler.population(); ++j) {
      if (sampler.flow(j).tuple == f.tuple) found = true;
    }
    EXPECT_TRUE(found);
    if (sampled.size() > 5) break;
  }
}

}  // namespace
}  // namespace dart::telemetry
