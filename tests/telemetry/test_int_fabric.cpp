// Tests for the end-to-end INT fabric: in-band tracing, postcards, loss,
// and path queryability — the paper's running example at test scale.
#include "telemetry/int_fabric.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dart::telemetry {
namespace {

IntFabricConfig fabric_config(std::uint32_t collectors = 1,
                              double loss = 0.0) {
  IntFabricConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.dart.n_slots = 1 << 14;
  cfg.dart.n_addresses = 2;
  cfg.dart.checksum_bits = 32;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0xFAB;
  cfg.n_collectors = collectors;
  cfg.switch_write_mode = core::WriteMode::kAllSlots;
  cfg.report_loss_rate = loss;
  cfg.seed = 9;
  return cfg;
}

TEST(IntFabric, TraceThenQueryRecoversPath) {
  IntFabric fabric(fabric_config());
  FlowGenerator gen(fabric.topology(), 4);

  const auto flow = gen.next_flow();
  const auto path = fabric.trace_flow(flow);
  ASSERT_FALSE(path.empty());

  const auto queried = fabric.query_path(flow.tuple);
  ASSERT_TRUE(queried.has_value());
  EXPECT_EQ(*queried, path);
}

TEST(IntFabric, ReportsFlowThroughRealRnic) {
  IntFabric fabric(fabric_config());
  FlowGenerator gen(fabric.topology(), 4);
  for (int i = 0; i < 20; ++i) {
    (void)fabric.trace_flow(gen.next_flow());
  }
  EXPECT_EQ(fabric.stats().flows_traced, 20u);
  // kAllSlots: N=2 frames per flow, all delivered.
  EXPECT_EQ(fabric.stats().reports_emitted, 40u);
  EXPECT_EQ(fabric.stats().reports_delivered, 40u);
  std::uint64_t rnic_writes = 0;
  for (std::uint32_t c = 0; c < fabric.cluster().size(); ++c) {
    rnic_writes += fabric.cluster().collector(c).ingest_counters().writes;
  }
  EXPECT_EQ(rnic_writes, 40u);
}

TEST(IntFabric, ManyFlowsHighQueryabilityAtLowLoad) {
  IntFabric fabric(fabric_config());
  FlowGenerator gen(fabric.topology(), 4);
  std::vector<FlowEndpoints> flows;
  std::vector<std::vector<std::uint32_t>> paths;
  for (int i = 0; i < 500; ++i) {
    flows.push_back(gen.next_flow());
    paths.push_back(fabric.trace_flow(flows.back()));
  }
  int correct = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto q = fabric.query_path(flows[i].tuple);
    if (q.has_value() && *q == paths[i]) ++correct;
  }
  // α = 500/16384 ≈ 0.03 → near-perfect queryability.
  EXPECT_GE(correct, 490);
}

TEST(IntFabric, PathsMatchTopologyRouting) {
  IntFabric fabric(fabric_config());
  FlowGenerator gen(fabric.topology(), 4);
  for (int i = 0; i < 50; ++i) {
    const auto flow = gen.next_flow();
    const auto path = fabric.trace_flow(flow);
    ASSERT_TRUE(path.size() == 1 || path.size() == 3 || path.size() == 5);
    EXPECT_EQ(path.front(), fabric.topology().host_edge(flow.src_host));
    EXPECT_EQ(path.back(), fabric.topology().host_edge(flow.dst_host));
  }
}

TEST(IntFabric, MultiCollectorSharding) {
  IntFabric fabric(fabric_config(/*collectors=*/4));
  FlowGenerator gen(fabric.topology(), 4);
  std::vector<FlowEndpoints> flows;
  for (int i = 0; i < 200; ++i) {
    flows.push_back(gen.next_flow());
    (void)fabric.trace_flow(flows.back());
  }
  // Every collector ingested something.
  int active = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    if (fabric.cluster().collector(c).ingest_counters().writes > 0) ++active;
  }
  EXPECT_EQ(active, 4);
  // And queries still resolve (routing agrees with reporting).
  int found = 0;
  for (const auto& f : flows) {
    if (fabric.query_path(f.tuple).has_value()) ++found;
  }
  EXPECT_GE(found, 195);
}

TEST(IntFabric, LossReducesDeliveryButRedundancySaves) {
  IntFabric fabric(fabric_config(1, /*loss=*/0.3));
  FlowGenerator gen(fabric.topology(), 4);
  std::vector<FlowEndpoints> flows;
  for (int i = 0; i < 500; ++i) {
    flows.push_back(gen.next_flow());
    (void)fabric.trace_flow(flows.back());
  }
  EXPECT_GT(fabric.stats().reports_lost, 0u);
  int found = 0;
  for (const auto& f : flows) {
    if (fabric.query_path(f.tuple).has_value()) ++found;
  }
  // Each flow needs ≥1 of its 2 reports delivered: P ≈ 1 - 0.3² = 0.91.
  EXPECT_NEAR(static_cast<double>(found) / 500.0, 0.91, 0.05);
}

TEST(IntFabric, PostcardModeQueriesPerSwitch) {
  IntFabric fabric(fabric_config());
  FlowGenerator gen(fabric.topology(), 4);
  const auto flow = gen.next_flow();
  const auto path = fabric.postcard_flow(flow);
  for (const auto sw : path) {
    const auto hop = fabric.query_postcard(sw, flow.tuple);
    ASSERT_TRUE(hop.has_value()) << "switch " << sw;
    EXPECT_EQ(hop->switch_id, IntFabric::int_id(sw));
  }
  // A switch off the path has no postcard.
  std::uint32_t off_path = 0;
  while (std::find(path.begin(), path.end(), off_path) != path.end()) {
    ++off_path;
  }
  EXPECT_FALSE(fabric.query_postcard(off_path, flow.tuple).has_value());
}

TEST(IntFabric, IntIdMappingAvoidsZero) {
  EXPECT_EQ(IntFabric::int_id(0), 1u);
  EXPECT_EQ(IntFabric::topo_id(IntFabric::int_id(17)), 17u);
}

TEST(IntFabric, StochasticModeDeliversOneReportPerFlow) {
  auto cfg = fabric_config();
  cfg.switch_write_mode = core::WriteMode::kStochastic;
  IntFabric fabric(cfg);
  FlowGenerator gen(fabric.topology(), 4);
  for (int i = 0; i < 10; ++i) (void)fabric.trace_flow(gen.next_flow());
  EXPECT_EQ(fabric.stats().reports_emitted, 10u);
}

}  // namespace
}  // namespace dart::telemetry
