// Tests for the flow 5-tuple key encoding.
#include "telemetry/flow.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dart::telemetry {
namespace {

FiveTuple tuple() {
  FiveTuple t;
  t.src_ip = net::Ipv4Addr::from_octets(10, 1, 2, 3);
  t.dst_ip = net::Ipv4Addr::from_octets(10, 4, 5, 6);
  t.src_port = 0x1234;
  t.dst_port = 0x5678;
  t.protocol = 6;
  return t;
}

TEST(FiveTuple, KeyBytesLayout) {
  const auto k = tuple().key_bytes();
  ASSERT_EQ(k.size(), 13u);
  EXPECT_EQ(static_cast<std::uint8_t>(k[0]), 10);  // src ip, big-endian
  EXPECT_EQ(static_cast<std::uint8_t>(k[3]), 3);
  EXPECT_EQ(static_cast<std::uint8_t>(k[4]), 10);  // dst ip
  EXPECT_EQ(static_cast<std::uint8_t>(k[8]), 0x12);   // src port
  EXPECT_EQ(static_cast<std::uint8_t>(k[9]), 0x34);
  EXPECT_EQ(static_cast<std::uint8_t>(k[10]), 0x56);  // dst port
  EXPECT_EQ(static_cast<std::uint8_t>(k[12]), 6);     // protocol
}

TEST(FiveTuple, EqualityAndKeyAgree) {
  const FiveTuple a = tuple();
  FiveTuple b = tuple();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.key_bytes(), b.key_bytes());
  b.src_port = 9;
  EXPECT_NE(a, b);
  EXPECT_NE(a.key_bytes(), b.key_bytes());
}

TEST(FiveTuple, DirectionMatters) {
  FiveTuple fwd = tuple();
  FiveTuple rev = tuple();
  std::swap(rev.src_ip, rev.dst_ip);
  std::swap(rev.src_port, rev.dst_port);
  EXPECT_NE(fwd.key_bytes(), rev.key_bytes());
}

TEST(FiveTuple, StringForm) {
  EXPECT_EQ(tuple().str(), "10.1.2.3:4660->10.4.5.6:22136/6");
}

TEST(FiveTupleHash, UsableInUnorderedSet) {
  std::unordered_set<FiveTuple, FiveTupleHash> set;
  set.insert(tuple());
  set.insert(tuple());  // duplicate
  FiveTuple other = tuple();
  other.dst_port = 1;
  set.insert(other);
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace dart::telemetry
