// Tests for the INT metadata stack and its DART value encoding.
#include "telemetry/int_path.hpp"

#include <gtest/gtest.h>

namespace dart::telemetry {
namespace {

TEST(IntStack, PushAndHopLimit) {
  IntStack stack(IntInstruction::kSwitchId, /*max_hops=*/3);
  EXPECT_TRUE(stack.push_hop({.switch_id = 1}));
  EXPECT_TRUE(stack.push_hop({.switch_id = 2}));
  EXPECT_TRUE(stack.push_hop({.switch_id = 3}));
  EXPECT_FALSE(stack.push_hop({.switch_id = 4}));  // over the limit
  EXPECT_EQ(stack.hop_count(), 3u);
}

TEST(IntStack, EncodeSwitchIdsBigEndianWithPadding) {
  IntStack stack;
  stack.push_hop({.switch_id = 0x01020304});
  stack.push_hop({.switch_id = 5});
  const auto value = stack.encode_value(20);
  ASSERT_TRUE(value.has_value());
  ASSERT_EQ(value->size(), 20u);
  EXPECT_EQ(static_cast<std::uint8_t>((*value)[0]), 0x01);
  EXPECT_EQ(static_cast<std::uint8_t>((*value)[3]), 0x04);
  EXPECT_EQ(static_cast<std::uint8_t>((*value)[7]), 5);
  // Padding is zero.
  for (std::size_t i = 8; i < 20; ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>((*value)[i]), 0);
  }
}

TEST(IntStack, EncodeFailsWhenTooLong) {
  IntStack stack;
  for (std::uint32_t h = 0; h < 6; ++h) {
    stack.push_hop({.switch_id = h + 1});
  }
  EXPECT_FALSE(stack.encode_value(20).has_value());  // 24 B > 20 B
  EXPECT_TRUE(stack.encode_value(24).has_value());
}

TEST(IntStack, DecodeRoundTrip) {
  IntStack stack;
  const std::vector<std::uint32_t> ids{7, 12, 99, 4, 1};
  for (const auto id : ids) stack.push_hop({.switch_id = id});
  const auto value = stack.encode_value(20);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(IntStack::decode_switch_ids(*value), ids);
}

TEST(IntStack, DecodeStopsAtZeroPadding) {
  IntStack stack;
  stack.push_hop({.switch_id = 42});
  const auto value = stack.encode_value(20);
  const auto ids = IntStack::decode_switch_ids(*value);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 42u);
}

TEST(IntStack, DecodeWithExpectedHops) {
  IntStack stack;
  stack.push_hop({.switch_id = 1});
  stack.push_hop({.switch_id = 2});
  stack.push_hop({.switch_id = 3});
  const auto value = stack.encode_value(20);
  EXPECT_EQ(IntStack::decode_switch_ids(*value, 2).size(), 2u);
  EXPECT_EQ(IntStack::decode_switch_ids(*value, 5).size(), 5u);  // padding kept
}

TEST(IntStack, RichInstructionEncodesThreeFields) {
  IntStack stack(IntInstruction::kSwitchIdQueueLatency);
  stack.push_hop({.switch_id = 1, .queue_depth = 50, .hop_latency_ns = 900});
  const auto value = stack.encode_value(12);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(static_cast<std::uint8_t>((*value)[3]), 1);
  EXPECT_EQ(static_cast<std::uint8_t>((*value)[7]), 50);
  EXPECT_EQ(static_cast<std::uint8_t>((*value)[10]), (900 >> 8) & 0xFF);
  EXPECT_EQ(static_cast<std::uint8_t>((*value)[11]), 900 & 0xFF);
}

TEST(IntStack, BytesPerHop) {
  EXPECT_EQ(int_bytes_per_hop(IntInstruction::kSwitchId), 4u);
  EXPECT_EQ(int_bytes_per_hop(IntInstruction::kSwitchIdQueueLatency), 12u);
}

TEST(IntStack, FiveHopFatTreeFitsPaperValueWidth) {
  // Fig. 4: 5 hops × 32-bit ids = 160 bits = the paper's 20 B value.
  IntStack stack;
  for (std::uint32_t h = 1; h <= 5; ++h) stack.push_hop({.switch_id = h});
  const auto value = stack.encode_value(20);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(IntStack::decode_switch_ids(*value).size(), 5u);
}

TEST(IntStack, EmptyStackEncodesToAllZeros) {
  IntStack stack;
  const auto value = stack.encode_value(8);
  ASSERT_TRUE(value.has_value());
  for (const auto b : *value) EXPECT_EQ(static_cast<std::uint8_t>(b), 0);
  EXPECT_TRUE(IntStack::decode_switch_ids(*value).empty());
}

}  // namespace
}  // namespace dart::telemetry
