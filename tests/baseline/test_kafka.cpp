// Tests for the Kafka-like partitioned commit log.
#include "baseline/kafka_like.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace dart::baseline {
namespace {

std::span<const std::byte> bytes_of(const std::string& s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

KafkaLike::Config small_config() {
  KafkaLike::Config cfg;
  cfg.n_partitions = 4;
  cfg.segment_bytes = 4096;
  cfg.index_interval = 4;
  cfg.replicas = 1;
  return cfg;
}

TEST(KafkaLike, OffsetsMonotonicPerPartition) {
  KafkaLike broker(small_config());
  const std::string key = "same-key";  // one partition
  std::vector<std::byte> payload(20, std::byte{1});
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(broker.produce(bytes_of(key), payload, i), i);
  }
  EXPECT_EQ(broker.stats().records, 10u);
}

TEST(KafkaLike, SameKeySamePartition) {
  KafkaLike broker(small_config());
  std::vector<std::byte> payload(10, std::byte{2});
  (void)broker.produce(bytes_of(std::string{"k1"}), payload, 0);
  (void)broker.produce(bytes_of(std::string{"k1"}), payload, 1);
  // Exactly one partition advanced to offset 2.
  int advanced = 0;
  for (std::uint32_t p = 0; p < broker.n_partitions(); ++p) {
    if (broker.partition_offset(p) == 2) ++advanced;
    EXPECT_TRUE(broker.partition_offset(p) == 0 ||
                broker.partition_offset(p) == 2);
  }
  EXPECT_EQ(advanced, 1);
}

TEST(KafkaLike, KeysSpreadOverPartitions) {
  KafkaLike broker(small_config());
  std::vector<std::byte> payload(10, std::byte{3});
  for (int i = 0; i < 200; ++i) {
    (void)broker.produce(bytes_of("key-" + std::to_string(i)), payload, 0);
  }
  for (std::uint32_t p = 0; p < broker.n_partitions(); ++p) {
    EXPECT_GT(broker.partition_offset(p), 20u);
  }
}

TEST(KafkaLike, ConsumerReadsBackPayloads) {
  KafkaLike broker(small_config());
  const std::string key = "consume-me";
  std::vector<std::byte> payload{std::byte{0xAB}, std::byte{0xCD}};
  (void)broker.produce(bytes_of(key), payload, 42);
  (void)broker.produce(bytes_of(key), payload, 43);

  std::size_t seen = 0;
  for (std::uint32_t p = 0; p < broker.n_partitions(); ++p) {
    seen += broker.consume(p, [&](std::span<const std::byte> data) {
      ASSERT_EQ(data.size(), 2u);
      EXPECT_EQ(static_cast<std::uint8_t>(data[0]), 0xAB);
    });
  }
  EXPECT_EQ(seen, 2u);
}

TEST(KafkaLike, ReplicationDoublesBytes) {
  KafkaLike::Config no_rep = small_config();
  no_rep.replicas = 0;
  KafkaLike::Config one_rep = small_config();
  one_rep.replicas = 1;

  KafkaLike a(no_rep), b(one_rep);
  std::vector<std::byte> payload(100, std::byte{1});
  (void)a.produce(bytes_of(std::string{"k"}), payload, 0);
  (void)b.produce(bytes_of(std::string{"k"}), payload, 0);
  EXPECT_EQ(b.stats().bytes_appended, 2 * a.stats().bytes_appended);
}

TEST(KafkaLike, SparseIndexInterval) {
  KafkaLike broker(small_config());  // index every 4 records
  const std::string key = "idx";
  std::vector<std::byte> payload(8, std::byte{1});
  for (int i = 0; i < 16; ++i) (void)broker.produce(bytes_of(key), payload, i);
  EXPECT_EQ(broker.stats().index_entries, 4u);
}

TEST(KafkaLike, SegmentsRollWhenFull) {
  KafkaLike broker(small_config());  // 4 KB segments
  const std::string key = "roll";
  std::vector<std::byte> payload(1000, std::byte{1});
  for (int i = 0; i < 10; ++i) (void)broker.produce(bytes_of(key), payload, i);
  EXPECT_GT(broker.stats().segments_rolled, 0u);
  // Offsets keep advancing across rolls.
  std::uint64_t max_off = 0;
  for (std::uint32_t p = 0; p < broker.n_partitions(); ++p) {
    max_off = std::max(max_off, broker.partition_offset(p));
  }
  EXPECT_EQ(max_off, 10u);
}

}  // namespace
}  // namespace dart::baseline
