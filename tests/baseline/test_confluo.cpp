// Tests for the Confluo-like atomic multilog.
#include "baseline/confluo_like.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace dart::baseline {
namespace {

std::vector<std::byte> record(std::size_t n, std::uint8_t fill) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

TEST(ConfluoLike, AppendReturnsOffsets) {
  ConfluoLike store({});
  EXPECT_EQ(store.append(record(36, 1), 100, 5, 1000), 0u);
  EXPECT_EQ(store.append(record(36, 2), 101, 5, 2000), 36u);
  EXPECT_EQ(store.stats().records, 2u);
  EXPECT_EQ(store.stats().log_bytes, 72u);
  EXPECT_EQ(store.stats().index_inserts, 6u);
}

TEST(ConfluoLike, FlowIndexFindsAllRecords) {
  ConfluoLike store({});
  (void)store.append(record(36, 1), /*flow=*/7, 1, 100);
  (void)store.append(record(36, 2), /*flow=*/8, 1, 200);
  (void)store.append(record(36, 3), /*flow=*/7, 2, 300);

  const auto offs = store.offsets_for_flow(7);
  ASSERT_EQ(offs.size(), 2u);
  EXPECT_EQ(offs[0], 0u);
  EXPECT_EQ(offs[1], 72u);
  EXPECT_TRUE(store.offsets_for_flow(999).empty());
}

TEST(ConfluoLike, SwitchIndexWorks) {
  ConfluoLike store({});
  (void)store.append(record(36, 1), 1, /*switch=*/10, 100);
  (void)store.append(record(36, 2), 2, /*switch=*/10, 200);
  (void)store.append(record(36, 3), 3, /*switch=*/11, 300);
  EXPECT_EQ(store.offsets_for_switch(10).size(), 2u);
  EXPECT_EQ(store.offsets_for_switch(11).size(), 1u);
}

TEST(ConfluoLike, TimeBucketsAggregate) {
  ConfluoLike::Config cfg;
  cfg.time_bucket_ns = 1000;
  ConfluoLike store(cfg);
  (void)store.append(record(36, 1), 1, 1, 100);    // bucket 0
  (void)store.append(record(36, 2), 2, 2, 900);    // bucket 0
  (void)store.append(record(36, 3), 3, 3, 1500);   // bucket 1
  EXPECT_EQ(store.offsets_for_time_bucket(500).size(), 2u);
  EXPECT_EQ(store.offsets_for_time_bucket(1999).size(), 1u);
}

TEST(ConfluoLike, ReadMaterializesRecord) {
  ConfluoLike store({});
  (void)store.append(record(36, 0xEE), 1, 1, 1);
  const auto data = store.read(0, 36);
  ASSERT_EQ(data.size(), 36u);
  EXPECT_TRUE(std::all_of(data.begin(), data.end(), [](std::byte b) {
    return b == std::byte{0xEE};
  }));
}

TEST(ConfluoLike, ReadOutOfRangeIsEmpty) {
  ConfluoLike store({});
  (void)store.append(record(36, 1), 1, 1, 1);
  EXPECT_TRUE(store.read(20, 36).empty());
}

TEST(ConfluoLike, RetentionWrapClearsIndexes) {
  ConfluoLike::Config cfg;
  cfg.log_capacity_bytes = 200;  // room for 5 × 36 B records
  ConfluoLike store(cfg);
  for (int i = 0; i < 6; ++i) {
    (void)store.append(record(36, static_cast<std::uint8_t>(i)), 7, 1, i);
  }
  // The 6th append wrapped: only it remains indexed.
  EXPECT_EQ(store.offsets_for_flow(7).size(), 1u);
  EXPECT_EQ(store.stats().records, 6u);  // cumulative stat unaffected
}

}  // namespace
}  // namespace dart::baseline
