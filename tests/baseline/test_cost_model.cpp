// Tests for the Fig. 1a analytic collection-cost model.
#include "baseline/cost_model.hpp"

#include <gtest/gtest.h>

namespace dart::baseline {
namespace {

TEST(CostModel, CoresScaleLinearlyWithSwitches) {
  CollectionCostModel model;
  const double c10k = model.io_cores(10'000, 64);
  const double c100k = model.io_cores(100'000, 64);
  EXPECT_NEAR(c100k / c10k, 10.0, 0.05);
}

TEST(CostModel, TenThousandSwitchesNeedHundredsOfCores) {
  // §2: "Even normal-sized data centers, comprising 10K switches, would
  // require a collection cluster containing thousands of CPU cores" for
  // I/O + storage; pure I/O alone is already hundreds.
  CollectionCostModel model;
  const double io = model.io_cores(10'000, 64);
  EXPECT_GE(io, 300.0);
  EXPECT_LE(io, 1000.0);
  const double total = model.total_cores(10'000, 64, /*storage ratio=*/114.0);
  EXPECT_GE(total, 10'000.0);  // "thousands of CPU cores" and then some
}

TEST(CostModel, LargerPacketsNeedMoreCores) {
  CollectionCostModel model;
  EXPECT_GT(model.io_cores(50'000, 128), model.io_cores(50'000, 64));
}

TEST(CostModel, SamplingReducesCores) {
  CollectionCostModel full;
  CollectionCostModel sampled;
  sampled.sampling = 0.01;
  EXPECT_LT(sampled.io_cores(100'000, 64), full.io_cores(100'000, 64) / 50);
}

TEST(CostModel, CoresAreCeiled) {
  CollectionCostModel model;
  model.reports_per_switch_per_sec = 1;  // one report/s total
  EXPECT_EQ(model.io_cores(1, 64), 1.0);
}

TEST(CostModel, RnicOutpacesCpuCollectors) {
  // §2: one RNIC (>200M msg/s) replaces many DPDK cores (~42M pps each).
  CollectionCostModel model;
  const double rnic_equivalent_cores = kRnicMessagesPerSec / model.per_core.pps_64b;
  EXPECT_GT(rnic_equivalent_cores, 4.0);
}

}  // namespace
}  // namespace dart::baseline
