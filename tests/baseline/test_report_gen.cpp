// Tests for the Fig. 1b report generator.
#include "baseline/report_gen.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dart::baseline {
namespace {

TEST(ReportGenerator, PaperFraming) {
  ReportGenerator g64(ReportSpec{.packet_bytes = 64});
  ReportGenerator g128(ReportSpec{.packet_bytes = 128});
  EXPECT_EQ(g64.data_bytes(), 36u);    // §2 footnote: 64B = 28B hdr + 36B data
  EXPECT_EQ(g128.data_bytes(), 100u);  // 128B = 28B hdr + 100B data
}

TEST(ReportGenerator, FieldsWithinConfiguredRanges) {
  ReportSpec spec;
  spec.packet_bytes = 64;
  spec.n_flows = 1000;
  spec.n_switches = 50;
  ReportGenerator gen(spec);
  std::vector<std::byte> pkt(64);
  std::uint64_t last_ts = 0;
  for (int i = 0; i < 500; ++i) {
    gen.next(pkt);
    const auto view = ReportGenerator::parse(pkt);
    EXPECT_LT(view.flow_id, 1000u);
    EXPECT_LT(view.switch_id, 50u);
    EXPECT_GT(view.timestamp_ns, last_ts);  // strictly increasing
    last_ts = view.timestamp_ns;
    EXPECT_EQ(view.measurements.size(), 36u - 20u);
  }
}

TEST(ReportGenerator, DeterministicPerSeed) {
  ReportSpec spec;
  spec.seed = 7;
  ReportGenerator a(spec), b(spec);
  std::vector<std::byte> pa(64), pb(64);
  for (int i = 0; i < 10; ++i) {
    a.next(pa);
    b.next(pb);
    EXPECT_EQ(pa, pb);
  }
}

TEST(ReportGenerator, SeedsDiverge) {
  ReportSpec s1, s2;
  s1.seed = 1;
  s2.seed = 2;
  ReportGenerator a(s1), b(s2);
  std::vector<std::byte> pa(64), pb(64);
  a.next(pa);
  b.next(pb);
  EXPECT_NE(pa, pb);
}

TEST(ReportGenerator, LargePacketsFillMeasurements) {
  ReportGenerator gen(ReportSpec{.packet_bytes = 128});
  std::vector<std::byte> pkt(128);
  gen.next(pkt);
  const auto view = ReportGenerator::parse(pkt);
  EXPECT_EQ(view.measurements.size(), 80u);
  // Not all zero — noise actually written.
  bool nonzero = false;
  for (const auto b : view.measurements) {
    if (b != std::byte{0}) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

}  // namespace
}  // namespace dart::baseline
