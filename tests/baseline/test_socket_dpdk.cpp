// Tests for the socket-path and DPDK-PMD-path I/O emulations, including the
// relative-cost property Fig. 1b depends on.
#include "baseline/dpdk_stack.hpp"
#include "baseline/socket_stack.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/cycles.hpp"

namespace dart::baseline {
namespace {

std::vector<std::byte> packet(std::size_t n, std::uint8_t fill = 0x77) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

TEST(SocketStack, DeliversPacketsInOrder) {
  SocketStack sock;
  ASSERT_TRUE(sock.kernel_receive(packet(64, 0x01)));
  ASSERT_TRUE(sock.kernel_receive(packet(128, 0x02)));
  EXPECT_EQ(sock.queued(), 2u);

  std::vector<std::byte> buf(2048);
  EXPECT_EQ(sock.user_receive(buf), 64u);
  EXPECT_EQ(static_cast<std::uint8_t>(buf[0]), 0x01);
  EXPECT_EQ(sock.user_receive(buf), 128u);
  EXPECT_EQ(static_cast<std::uint8_t>(buf[0]), 0x02);
  EXPECT_EQ(sock.user_receive(buf), 0u);  // empty
  EXPECT_EQ(sock.stats().packets_delivered, 2u);
}

TEST(SocketStack, CopiesTwicePerPacket) {
  SocketStack sock;
  ASSERT_TRUE(sock.kernel_receive(packet(100)));
  std::vector<std::byte> buf(2048);
  (void)sock.user_receive(buf);
  EXPECT_EQ(sock.stats().bytes_copied, 200u);  // kernel copy + user copy
}

TEST(SocketStack, RcvbufOverflowDrops) {
  SocketStack sock(2048, /*rcvbuf_packets=*/4);
  for (int i = 0; i < 10; ++i) (void)sock.kernel_receive(packet(64));
  EXPECT_EQ(sock.queued(), 4u);
  EXPECT_EQ(sock.stats().queue_drops, 6u);
}

TEST(SocketStack, TruncatesToUserBuffer) {
  SocketStack sock;
  ASSERT_TRUE(sock.kernel_receive(packet(128)));
  std::vector<std::byte> small(32);
  EXPECT_EQ(sock.user_receive(small), 32u);
}

TEST(DpdkStack, BurstReceivesZeroCopy) {
  DpdkStack dpdk(16);
  ASSERT_TRUE(dpdk.nic_enqueue(packet(64, 0xAA)));
  ASSERT_TRUE(dpdk.nic_enqueue(packet(128, 0xBB)));

  std::array<Mbuf, 32> burst;
  const auto n = dpdk.rx_burst(burst);
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(burst[0].len, 64u);
  EXPECT_EQ(static_cast<std::uint8_t>(burst[0].data[0]), 0xAA);
  EXPECT_EQ(burst[1].len, 128u);
  EXPECT_EQ(static_cast<std::uint8_t>(burst[1].data[0]), 0xBB);
  EXPECT_EQ(dpdk.stats().received, 2u);
}

TEST(DpdkStack, RingFullDrops) {
  DpdkStack dpdk(4);
  for (int i = 0; i < 6; ++i) (void)dpdk.nic_enqueue(packet(64));
  EXPECT_EQ(dpdk.stats().ring_full_drops, 2u);
  EXPECT_EQ(dpdk.pending(), 4u);
}

TEST(DpdkStack, BurstBoundedByOutputSpan) {
  DpdkStack dpdk(64);
  for (int i = 0; i < 10; ++i) (void)dpdk.nic_enqueue(packet(64));
  std::array<Mbuf, 4> burst;
  EXPECT_EQ(dpdk.rx_burst(burst), 4u);
  EXPECT_EQ(dpdk.pending(), 6u);
}

TEST(DpdkStack, SlotsReusedAfterConsumption) {
  DpdkStack dpdk(4);
  std::array<Mbuf, 4> burst;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(dpdk.nic_enqueue(packet(64)));
    ASSERT_EQ(dpdk.rx_burst(burst), 4u);
  }
  EXPECT_EQ(dpdk.stats().enqueued, 40u);
  EXPECT_EQ(dpdk.stats().ring_full_drops, 0u);
}

TEST(IoCostShape, SocketPathCostsMoreCyclesThanDpdkPath) {
  // The Fig. 1 premise, as a property: per-report consumer-side cost of the
  // socket path exceeds the PMD path by a healthy factor.
  constexpr int kReports = 20000;
  const auto wire = packet(64);

  SocketStack sock(2048, 1 << 16);
  std::vector<std::byte> user(2048);
  std::uint64_t socket_cycles = 0;
  for (int i = 0; i < kReports; ++i) {
    CycleTimer t(socket_cycles);
    (void)sock.kernel_receive(wire);
    (void)sock.user_receive(user);
  }

  DpdkStack dpdk(1024);
  std::array<Mbuf, 32> burst;
  std::uint64_t dpdk_cycles = 0;
  std::uint64_t consumed = 0;
  for (int i = 0; i < kReports; ++i) {
    (void)dpdk.nic_enqueue(wire);  // NIC side: off the measured path
    if ((i & 31) == 31) {
      CycleTimer t(dpdk_cycles);
      consumed += dpdk.rx_burst(burst);
    }
  }
  {
    CycleTimer t(dpdk_cycles);
    consumed += dpdk.rx_burst(burst);
  }
  ASSERT_EQ(consumed, static_cast<std::uint64_t>(kReports));
  EXPECT_GT(socket_cycles, 3 * dpdk_cycles)
      << "socket=" << socket_cycles << " dpdk=" << dpdk_cycles;
}

}  // namespace
}  // namespace dart::baseline
