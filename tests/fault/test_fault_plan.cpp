// FaultPlan unit tests: the builder, the paired-event helpers, and the
// seeded random plan generator (determinism is what makes chaos replayable).
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace dart::fault {
namespace {

TEST(FaultPlan, BuilderRecordsEventsInInsertionOrder) {
  FaultPlan plan;
  plan.kill_collector(100, 2)
      .stall_rnic(50, 1, 16)
      .partition_link(200, 7)
      .corrupt_link(300, 9, 0.25);

  ASSERT_EQ(plan.size(), 4u);
  // Insertion order, not time order — the simulator's (time, seq) tie-break
  // is what sequences them at arm time.
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kKillCollector);
  EXPECT_EQ(plan.events()[0].at_ns, 100u);
  EXPECT_EQ(plan.events()[0].target, 2u);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kStallRnic);
  EXPECT_EQ(plan.events()[1].param, 16u);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kPartitionLink);
  EXPECT_EQ(plan.events()[3].kind, FaultKind::kCorruptLink);
  EXPECT_DOUBLE_EQ(plan.events()[3].rate, 0.25);
}

TEST(FaultPlan, ErrorQpWithDrainEmitsPairedReconnect) {
  FaultPlan plan;
  plan.error_qp(1'000, 3, /*drain_ns=*/500);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kErrorQp);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kReconnectQp);
  EXPECT_EQ(plan.events()[1].at_ns, 1'500u);
  EXPECT_EQ(plan.events()[1].target, 3u);

  // No drain: the QP stays wedged; only the error event exists.
  FaultPlan wedged;
  wedged.error_qp(1'000, 3);
  EXPECT_EQ(wedged.size(), 1u);
}

TEST(FaultPlan, ClearCorruptionIsZeroRateCorruptEvent) {
  FaultPlan plan;
  plan.corrupt_link(10, 4, 0.9).clear_corruption(20, 4);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kCorruptLink);
  EXPECT_DOUBLE_EQ(plan.events()[1].rate, 0.0);
}

TEST(FaultPlan, SlugsAreDistinctMetricNames) {
  std::set<std::string> slugs;
  for (std::size_t k = 0; k < kFaultKinds; ++k) {
    const std::string slug = to_string(static_cast<FaultKind>(k));
    EXPECT_NE(slug, "unknown");
    slugs.insert(slug);
  }
  EXPECT_EQ(slugs.size(), kFaultKinds);
}

TEST(FaultStatsTest, OfAndTotalTally) {
  FaultStats stats;
  stats.injected[static_cast<std::size_t>(FaultKind::kKillCollector)] = 2;
  stats.injected[static_cast<std::size_t>(FaultKind::kPartitionLink)] = 3;
  EXPECT_EQ(stats.of(FaultKind::kKillCollector), 2u);
  EXPECT_EQ(stats.of(FaultKind::kStallRnic), 0u);
  EXPECT_EQ(stats.total(), 5u);
}

TEST(FaultPlanRandom, SameSeedReplaysIdentically) {
  const auto a = FaultPlan::random(42, 4, 40, 1'000'000);
  const auto b = FaultPlan::random(42, 4, 40, 1'000'000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at_ns, b.events()[i].at_ns) << i;
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind) << i;
    EXPECT_EQ(a.events()[i].target, b.events()[i].target) << i;
    EXPECT_EQ(a.events()[i].param, b.events()[i].param) << i;
    EXPECT_DOUBLE_EQ(a.events()[i].rate, b.events()[i].rate) << i;
  }
}

TEST(FaultPlanRandom, DifferentSeedsDiffer) {
  const auto a = FaultPlan::random(1, 4, 40, 1'000'000);
  const auto b = FaultPlan::random(2, 4, 40, 1'000'000);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events()[i].at_ns != b.events()[i].at_ns ||
              a.events()[i].target != b.events()[i].target;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanRandom, EveryFaultClassAppearsAndPairsConverge) {
  for (const std::uint64_t seed : {7u, 19u, 101u}) {
    const auto plan = FaultPlan::random(seed, 3, 20, 10'000'000);
    FaultStats seen;
    std::uint64_t kill_at = 0;
    std::uint64_t revive_at = 0;
    std::uint64_t partition_at = 0;
    std::uint64_t heal_at = 0;
    for (const auto& e : plan.events()) {
      ++seen.injected[static_cast<std::size_t>(e.kind)];
      EXPECT_LE(e.at_ns, 10'000'000u) << "fault outside the horizon";
      if (e.kind == FaultKind::kKillCollector) kill_at = e.at_ns;
      if (e.kind == FaultKind::kReviveCollector) revive_at = e.at_ns;
      if (e.kind == FaultKind::kPartitionLink) partition_at = e.at_ns;
      if (e.kind == FaultKind::kHealLink) heal_at = e.at_ns;
    }
    for (std::size_t k = 0; k < kFaultKinds; ++k) {
      EXPECT_GE(seen.injected[k], 1u)
          << "seed " << seed << " missing " << to_string(static_cast<FaultKind>(k));
    }
    // Kills revive and partitions heal, so the fabric converges back.
    EXPECT_GT(revive_at, kill_at);
    EXPECT_GT(heal_at, partition_at);
  }
}

TEST(FaultPlanRandom, DegenerateInputsYieldEmptyOrSafePlans) {
  EXPECT_TRUE(FaultPlan::random(1, 0, 10, 1'000).empty());
  EXPECT_TRUE(FaultPlan::random(1, 2, 10, 0).empty());
  // A single collector has no backup: no kill/revive pair is generated.
  const auto solo = FaultPlan::random(1, 1, 10, 1'000'000);
  for (const auto& e : solo.events()) {
    EXPECT_NE(e.kind, FaultKind::kKillCollector);
    EXPECT_NE(e.kind, FaultKind::kReviveCollector);
  }
}

}  // namespace
}  // namespace dart::fault
