// Ring-mode failover regressions (docs/FAULTS.md, "Under kRing"): kill a
// collector in a 16-collector consistent-hash pool and assert the
// RecoveryManager converges with MINIMAL movement — only the dead member's
// key range retargets, across every report plane (KV writes, sketch
// fan-out, DTA primitive rows — closing the "the fault plane retargets only
// the KV table" gap of the kModulo path), and the failback restores the
// exact pre-death mapping. Standing-query subscriptions on moved keys must
// keep firing through the whole episode: the gateway re-resolves key routes
// through the live selector on every epoch tick.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/collector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "net/headers.hpp"
#include "query/gateway.hpp"
#include "switchsim/dart_switch.hpp"
#include "telemetry/wire_fabric.hpp"
#include "telemetry/workload.hpp"

namespace dart::fault {
namespace {

constexpr std::uint64_t kMs = 1'000'000;
constexpr std::uint32_t kPool = 16;
constexpr std::uint32_t kVictim = 5;

telemetry::WireFabricConfig ring_fabric_config(std::uint64_t seed) {
  telemetry::WireFabricConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.dart.n_slots = 1 << 12;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0xDA27'0B5ull;
  cfg.dart.selection = core::CollectorSelection::kRing;
  cfg.dart.ring_height_per_member = 64;
  cfg.n_collectors = kPool;
  cfg.seed = seed;
  return cfg;
}

// The headline regression: 16-collector pool, one death. Failover must move
// ONLY the dead member's buckets (every switch replica agreeing with the
// fabric selector), queries for the moved range must keep being answered
// (degraded) by the survivors, and the failback must restore the owner
// table bit-for-bit.
TEST(RingFailover, KillMovesOnlyDeadRangeAndFailbackRestoresExactly) {
  telemetry::WireFabric fabric(ring_fabric_config(/*seed=*/51));
  auto& op = fabric.attach_operator();
  auto& sim = fabric.simulator();
  ASSERT_NE(fabric.selector(), nullptr);

  RecoveryManager recovery(fabric, RecoveryConfig{});
  FaultInjector injector(fabric, &recovery);
  FaultPlan plan;
  plan.kill_collector(10 * kMs, kVictim).revive_collector(25 * kMs, kVictim);
  injector.arm(plan);
  recovery.start(/*horizon_ns=*/45 * kMs);

  // Full-membership mapping before anything dies.
  const auto pre = fabric.selector()->ring().owner_table();
  for (const auto owner : pre) ASSERT_LT(owner, kPool);

  // Pre-kill wave: a mix of flows, at least 6 owned by the victim.
  telemetry::FlowGenerator gen(fabric.topology(), 77);
  std::vector<telemetry::FiveTuple> owned_by_dead;
  std::vector<std::pair<telemetry::FiveTuple, std::uint32_t>> all;
  while (owned_by_dead.size() < 6) {
    const auto fe = gen.next_flow();
    all.emplace_back(fe.tuple, fe.src_host);
    if (fabric.selector()->owner_of(fe.tuple.key_bytes()) == kVictim) {
      owned_by_dead.push_back(fe.tuple);
    }
  }
  for (const auto& [tup, src] : all) fabric.send_flow(tup, src, 2);

  // Mid-takeover: capture the live table (and one switch's replica), rewrite
  // every flow (moved keys now land at the survivors the ring picks), and
  // query the moved range.
  std::vector<std::uint32_t> mid;
  std::vector<std::uint32_t> mid_switch_replica;
  sim.schedule(16 * kMs, [&] {
    mid = fabric.selector()->ring().owner_table();
    mid_switch_replica =
        fabric.switch_pipeline(0).kv_selector()->ring().owner_table();
  });
  sim.schedule(17 * kMs, [&] {
    for (const auto& [tup, src] : all) fabric.send_flow(tup, src, 2);
  });
  std::vector<std::uint64_t> takeover_queries;
  sim.schedule(18 * kMs, [&] {
    for (const auto& tup : owned_by_dead) {
      takeover_queries.push_back(op.query(tup.key_bytes()));
    }
  });
  std::vector<std::uint64_t> failback_queries;
  sim.schedule(35 * kMs, [&] {
    for (const auto& tup : owned_by_dead) {
      failback_queries.push_back(op.query(tup.key_bytes()));
    }
  });
  fabric.run();

  // Detection → takeover → failback, in order and on time.
  const auto& log = recovery.log();
  ASSERT_GE(log.size(), 3u);
  const RecoveryConfig rc;
  EXPECT_EQ(log[0].what, RecoveryManager::EventRecord::What::kDeathDetected);
  EXPECT_EQ(log[0].collector, kVictim);
  EXPECT_GE(log[0].at_ns, 10 * kMs);
  EXPECT_LE(log[0].at_ns - 10 * kMs,
            rc.liveness.timeout_ns + rc.tick_interval_ns);
  EXPECT_EQ(log[1].what, RecoveryManager::EventRecord::What::kTakeover);
  EXPECT_EQ(log[1].at_ns, log[0].at_ns) << "ring drop is immediate on detect";
  EXPECT_EQ(log.back().what, RecoveryManager::EventRecord::What::kFailback);
  EXPECT_GE(log.back().at_ns, 25 * kMs);
  EXPECT_EQ(recovery.stats().deaths_detected, 1u);
  EXPECT_EQ(recovery.stats().takeovers, 1u);
  EXPECT_EQ(recovery.stats().failbacks, 1u);
  EXPECT_FALSE(recovery.backup_of(kVictim).has_value());

  // Minimal movement over the WHOLE owner table: a bucket changed iff the
  // victim owned it, every moved bucket went to a live survivor, and the
  // movement is bounded by 2·K/N of the table.
  ASSERT_EQ(mid.size(), pre.size());
  std::size_t moved = 0;
  for (std::size_t b = 0; b < pre.size(); ++b) {
    if (pre[b] == kVictim) {
      EXPECT_NE(mid[b], kVictim) << b;
      EXPECT_LT(mid[b], kPool) << b;
      ++moved;
    } else {
      EXPECT_EQ(mid[b], pre[b]) << "bucket " << b << " moved needlessly";
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, 2 * pre.size() / kPool)
      << "single leave must move at most ~K/N of the table";
  // Every switch pipeline's independent ring replica agrees with the
  // fabric-wide selector mid-takeover.
  EXPECT_EQ(mid_switch_replica, mid);

  // Failback restored the exact pre-death mapping.
  EXPECT_EQ(fabric.selector()->ring().owner_table(), pre);
  EXPECT_EQ(fabric.switch_pipeline(0).kv_selector()->ring().owner_table(),
            pre);

  // Mid-takeover queries on moved keys: answered by survivors, found (the
  // 17 ms rewrite landed there), and flagged degraded — the survivors mark
  // the victim's home keys stale.
  ASSERT_EQ(takeover_queries.size(), owned_by_dead.size());
  for (const auto id : takeover_queries) {
    const auto resp = op.take_response(id);
    ASSERT_TRUE(resp.has_value()) << "moved-range queries must be answered";
    EXPECT_EQ(resp->outcome, core::QueryOutcome::kFound);
    EXPECT_TRUE(resp->degraded());
  }

  // Post-failback: the victim answers for its range again (its store kept
  // the pre-kill writes), degraded until repopulation is acknowledged.
  for (const auto id : failback_queries) {
    const auto resp = op.take_response(id);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->outcome, core::QueryOutcome::kFound);
    EXPECT_TRUE(resp->degraded());
  }
  recovery.acknowledge_repopulated(kVictim);
  std::vector<std::uint64_t> clean;
  for (const auto& tup : owned_by_dead) clean.push_back(op.query(tup.key_bytes()));
  fabric.run();
  for (const auto id : clean) {
    const auto resp = op.take_response(id);
    ASSERT_TRUE(resp.has_value());
    EXPECT_FALSE(resp->degraded());
  }
}

// --- every selection plane retargets (pipeline level) ------------------------

core::DartConfig plane_dart_config() {
  core::DartConfig cfg;
  cfg.n_slots = 1024;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xDA27;
  cfg.selection = core::CollectorSelection::kRing;
  cfg.ring_height_per_member = 32;
  return cfg;
}

core::SketchBackendConfig plane_sketch_config() {
  core::SketchBackendConfig cfg;
  cfg.rows = 3;
  cfg.cols = 256;
  cfg.seed = 0x5EED'CAFE;
  cfg.topk_capacity = 4;
  return cfg;
}

core::DtaPrimitivesConfig plane_primitives() {
  auto prim = core::default_primitives(plane_dart_config().master_seed);
  prim.ring.n_entries = 16;
  prim.ring.value_bytes = 8;
  prim.postcards.n_groups = 8;
  prim.postcards.max_hops = 4;
  return prim;
}

bool is_sketch_backed(std::uint32_t id) { return id % 4 == 3; }

core::RemoteStoreInfo plane_collector(std::uint32_t id) {
  core::RemoteStoreInfo info;
  info.collector_id = id;
  info.mac = {0x02, 0xC0, 0, 0, 0, static_cast<std::uint8_t>(id)};
  info.ip = net::Ipv4Addr::from_octets(10, 0, 100, static_cast<std::uint8_t>(id));
  info.qpn = 0x100 + id;
  info.rkey = 0xAB00'0000 + id;
  info.base_vaddr = 0x0000'1000'0000'0000ull;
  if (is_sketch_backed(id)) {
    info.backend = core::StoreBackendKind::kSketch;
    info.n_slots = plane_sketch_config().n_cells();
    info.slot_bytes = 8;
  } else {
    info.n_slots = plane_dart_config().n_slots;
    info.slot_bytes = plane_dart_config().slot_bytes();
  }
  return info;
}

// The three primitive region rows collector `id` publishes.
void load_plane_primitives(switchsim::DartSwitchPipeline& sw,
                           std::uint32_t id) {
  const auto prim = plane_primitives();
  auto ring = plane_collector(id);
  ring.backend = core::StoreBackendKind::kKv;
  ring.base_vaddr = core::Collector::kRingBaseVaddr;
  ring.n_slots = prim.ring.n_entries;
  ring.slot_bytes = prim.ring.entry_bytes();
  auto counters = ring;
  counters.base_vaddr = core::Collector::kCounterBaseVaddr;
  counters.n_slots = prim.counters.n_counters;
  counters.slot_bytes = 8;
  auto postcards = ring;
  postcards.base_vaddr = core::Collector::kPostcardBaseVaddr;
  postcards.n_slots = prim.postcards.n_slots();
  postcards.slot_bytes = prim.postcards.slot_bytes();
  sw.load_primitives(ring, counters, postcards);
}

std::span<const std::byte> bytes_of(const std::string& s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

// Destination collector of a crafted report frame, by monitoring-underlay IP
// convention (10.0.100.c).
std::uint32_t frame_dst(const std::vector<std::byte>& frame) {
  const auto parsed = net::parse_udp_frame(frame);
  EXPECT_TRUE(parsed.has_value());
  return parsed ? (parsed->ip.dst.value & 0xFFu) : 0xFFFF'FFFFu;
}

// PR-6/8 follow-up closed: dropping a ring member retargets EVERY selection
// plane — KV rows, sketch-backed rows (same lookup table, FETCH_ADD family)
// and the DTA primitive region directory — not just the KV table, and the
// re-admit restores both planes' mappings exactly.
TEST(RingFailover, MembershipDropRetargetsKvSketchAndPrimitivePlanes) {
  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = plane_dart_config();
  sc.mac = {0x02, 0, 0, 0, 0, 1};
  sc.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  sc.max_collectors = kPool;
  sc.rng_seed = 7;
  sc.primitives = plane_primitives();
  sc.sketch = plane_sketch_config();
  switchsim::DartSwitchPipeline sw(sc);
  for (std::uint32_t c = 0; c < kPool; ++c) {
    sw.load_collector(plane_collector(c));
    load_plane_primitives(sw, c);
  }
  ASSERT_NE(sw.kv_selector(), nullptr);
  ASSERT_NE(sw.primitive_selector(), nullptr);

  // Kill a SKETCH-backed member: its fan-out rows must move too.
  constexpr std::uint32_t kDead = 7;
  ASSERT_TRUE(is_sketch_backed(kDead));

  const auto kv_pre = sw.kv_selector()->ring().owner_table();
  const auto prim_pre = sw.primitive_selector()->ring().owner_table();
  std::vector<std::string> keys;
  std::vector<std::uint32_t> kv_owner_pre, prim_owner_pre;
  for (int i = 0; i < 256; ++i) {
    keys.push_back("flow-" + std::to_string(i));
    kv_owner_pre.push_back(sw.kv_selector()->owner_of(bytes_of(keys.back())));
    prim_owner_pre.push_back(
        sw.primitive_selector()->owner_of(bytes_of(keys.back())));
  }

  sw.remove_member(kDead);  // what RecoveryManager does via the fabric

  std::size_t kv_moved = 0;
  std::size_t prim_moved = 0;
  std::vector<std::byte> kv_value(sc.dart.value_bytes, std::byte{2});
  std::vector<std::byte> prim_value(8, std::byte{3});
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto key = bytes_of(keys[i]);
    const auto kv_now = sw.kv_selector()->owner_of(key);
    const auto prim_now = sw.primitive_selector()->owner_of(key);
    ASSERT_NE(kv_now, kDead) << keys[i];
    ASSERT_NE(prim_now, kDead) << keys[i];
    if (kv_owner_pre[i] == kDead) {
      ++kv_moved;
      // Data plane agrees: reports for the moved key go to the survivor —
      // whatever family its row uses (sketch rows fan out one FETCH_ADD per
      // sketch row, KV rows emit WRITEs).
      const auto frames = sw.on_telemetry(key, kv_value);
      ASSERT_FALSE(frames.empty()) << keys[i];
      if (is_sketch_backed(kv_now)) {
        EXPECT_EQ(frames.size(), plane_sketch_config().rows) << keys[i];
      }
      for (const auto& f : frames) EXPECT_EQ(frame_dst(f), kv_now) << keys[i];
    } else {
      EXPECT_EQ(kv_now, kv_owner_pre[i]) << keys[i] << " moved needlessly";
    }
    if (prim_owner_pre[i] == kDead) {
      ++prim_moved;
      // All three primitive entry points follow the retargeted directory.
      const auto append = sw.on_append_event(key, prim_value);
      const auto inc = sw.on_increment_event(key, 5);
      const auto post = sw.on_postcard_event(key, /*hop=*/1, prim_value);
      ASSERT_FALSE(append.empty());
      ASSERT_FALSE(inc.empty());
      ASSERT_FALSE(post.empty());
      EXPECT_EQ(frame_dst(append), prim_now) << keys[i];
      EXPECT_EQ(frame_dst(inc), prim_now) << keys[i];
      EXPECT_EQ(frame_dst(post), prim_now) << keys[i];
    } else {
      EXPECT_EQ(prim_now, prim_owner_pre[i]) << keys[i];
    }
  }
  EXPECT_GT(kv_moved, 0u);
  EXPECT_GT(prim_moved, 0u);

  // Failback: re-admitting restores BOTH planes' mappings bit-for-bit.
  sw.add_member(kDead);
  EXPECT_EQ(sw.kv_selector()->ring().owner_table(), kv_pre);
  EXPECT_EQ(sw.primitive_selector()->ring().owner_table(), prim_pre);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto key = bytes_of(keys[i]);
    ASSERT_EQ(sw.kv_selector()->owner_of(key), kv_owner_pre[i]) << keys[i];
    ASSERT_EQ(sw.primitive_selector()->owner_of(key), prim_owner_pre[i])
        << keys[i];
  }
}

// --- standing queries across failover ----------------------------------------

// A standing key-change subscription on a key whose owner dies keeps firing:
// the gateway re-resolves the key's route through the live selector on every
// epoch tick, so the predicate follows the key to the survivor (flagged
// degraded while the takeover stands) and back after the failback.
TEST(RingFailover, StandingSubscriptionOnMovedKeyKeepsFiring) {
  telemetry::WireFabric fabric(ring_fabric_config(/*seed=*/52));
  (void)fabric.attach_gateway();
  auto& sim = fabric.simulator();
  auto* gateway = fabric.gateway();
  ASSERT_NE(gateway, nullptr);

  RecoveryManager recovery(fabric, RecoveryConfig{});
  FaultInjector injector(fabric, &recovery);
  FaultPlan plan;
  plan.kill_collector(10 * kMs, kVictim).revive_collector(25 * kMs, kVictim);
  injector.arm(plan);
  recovery.start(/*horizon_ns=*/45 * kMs);

  // A flow whose key the victim owns.
  telemetry::FlowGenerator gen(fabric.topology(), 41);
  auto fe = gen.next_flow();
  while (fabric.selector()->owner_of(fe.tuple.key_bytes()) != kVictim) {
    fe = gen.next_flow();
  }
  const auto key = fe.tuple.key_bytes();
  fabric.send_flow(fe.tuple, fe.src_host, 2);

  auto& session = gateway->open_session();
  const auto sub_req = session.subscribe_key_change(key);
  const auto ack = session.take_subscribe_ack(sub_req);
  ASSERT_TRUE(ack.has_value());
  ASSERT_FALSE(ack->rejected());

  // Epochs 1-2 pre-kill, 3-4 mid-takeover (the 17 ms rewrite lands the key
  // at the survivor between them), 5 post-failback. Notifications are
  // harvested just after each tick's upstream reads drain.
  std::vector<core::StandingNotification> pre_kill, during, after;
  sim.schedule(5 * kMs, [&] { gateway->on_epoch(1); });
  sim.schedule(7 * kMs, [&] { gateway->on_epoch(2); });
  sim.schedule(9 * kMs, [&] {
    for (auto& n : session.take_notifications()) pre_kill.push_back(n);
  });
  sim.schedule(16 * kMs, [&] { gateway->on_epoch(3); });
  sim.schedule(17 * kMs,
               [&] { fabric.send_flow(fe.tuple, fe.src_host, 2); });
  sim.schedule(19 * kMs, [&] { gateway->on_epoch(4); });
  sim.schedule(21 * kMs, [&] {
    for (auto& n : session.take_notifications()) during.push_back(n);
  });
  sim.schedule(38 * kMs, [&] { gateway->on_epoch(5); });
  sim.schedule(40 * kMs, [&] {
    for (auto& n : session.take_notifications()) after.push_back(n);
  });
  fabric.run();

  ASSERT_EQ(recovery.stats().deaths_detected, 1u);
  ASSERT_EQ(recovery.stats().failbacks, 1u);

  // Pre-kill: exactly one firing (absent → found at the victim); the
  // unchanged second epoch stays quiet.
  ASSERT_EQ(pre_kill.size(), 1u);
  EXPECT_EQ(pre_kill[0].kind, core::StandingKind::kKeyChange);
  EXPECT_EQ(pre_kill[0].value, 1u);  // found
  EXPECT_EQ(pre_kill[0].flags & core::kResponseDegraded, 0u);

  // Mid-takeover the subscription keeps firing — now answered by the
  // survivor the ring picked. Epoch 3 sees the key vanish (the survivor's
  // store is cold for the moved range), epoch 4 sees the rewrite land; both
  // answers carry the degraded flag the survivors stamp on the victim's
  // home keys.
  ASSERT_EQ(during.size(), 2u);
  EXPECT_EQ(during[0].value, 0u);  // lost with the dead store
  EXPECT_EQ(during[1].value, 1u);  // re-found at the survivor
  for (const auto& n : during) {
    EXPECT_EQ(n.kind, core::StandingKind::kKeyChange);
    EXPECT_NE(n.flags & core::kResponseDegraded, 0u)
        << "takeover answers must be flagged degraded";
  }
  // Sequence numbers keep advancing across the membership change — one
  // subscription, never re-registered.
  EXPECT_EQ(during[0].seq, pre_kill[0].seq + 1);
  EXPECT_EQ(during[1].seq, pre_kill[0].seq + 2);

  // Post-failback the route resolves to the recovered owner again and the
  // predicate still evaluates (any firing depends on value equality between
  // the owner's pre-kill record and the survivor's copy — what matters is
  // that the epoch-5 read was answered, which a firing-or-quiet predicate
  // with an advanced epoch proves; a dropped read would have left the
  // subscription stuck and a later change silent).
  for (const auto& n : after) {
    EXPECT_EQ(n.kind, core::StandingKind::kKeyChange);
    EXPECT_GT(n.seq, during[1].seq);
  }
  EXPECT_EQ(gateway->n_standing(), 1u);
  EXPECT_EQ(session.notifications_received(),
            pre_kill.size() + during.size() + after.size());
}

// kModulo deployments must be untouched by the ring hooks: no selector is
// allocated anywhere and the fabric-level membership calls are no-ops.
TEST(RingFailover, ModuloFabricIgnoresRingHooks) {
  auto cfg = ring_fabric_config(/*seed=*/53);
  cfg.dart.selection = core::CollectorSelection::kModulo;
  telemetry::WireFabric fabric(cfg);
  EXPECT_EQ(fabric.selector(), nullptr);
  EXPECT_EQ(fabric.switch_pipeline(0).kv_selector(), nullptr);
  EXPECT_EQ(fabric.switch_pipeline(0).primitive_selector(), nullptr);
  fabric.ring_remove_member(0);  // no-ops, must not crash
  fabric.ring_add_member(0);
}

}  // namespace
}  // namespace dart::fault
