// CollectorLivenessTable unit tests: the alive → suspect → dead state
// machine, heartbeat-driven recovery, exponential-backoff re-probes, and
// ring-order backup selection (docs/FAULTS.md, "Detection").
#include "core/control.hpp"

#include <gtest/gtest.h>

namespace dart::core {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

LivenessConfig fast_config() {
  LivenessConfig cfg;
  cfg.heartbeat_interval_ns = 1 * kMs;
  cfg.timeout_ns = 5 * kMs;
  cfg.probe_backoff_initial_ns = 2 * kMs;
  cfg.probe_backoff_factor = 2.0;
  cfg.probe_backoff_max_ns = 16 * kMs;
  return cfg;
}

TEST(Liveness, HeartbeatsOnCadenceStayAlive) {
  CollectorLivenessTable table(2, fast_config());
  for (std::uint64_t t = 1 * kMs; t <= 20 * kMs; t += 1 * kMs) {
    table.heartbeat(0, t);
    table.heartbeat(1, t);
    EXPECT_TRUE(table.tick(t).empty()) << "no transitions while healthy";
  }
  EXPECT_EQ(table.health(0), CollectorHealth::kAlive);
  EXPECT_EQ(table.stats().heartbeats, 40u);
  EXPECT_EQ(table.stats().deaths, 0u);
}

TEST(Liveness, SilenceProgressesSuspectThenDead) {
  CollectorLivenessTable table(2, fast_config());
  table.heartbeat(0, 1 * kMs);
  table.heartbeat(1, 1 * kMs);
  table.heartbeat(1, 2 * kMs + kMs / 2);

  // Collector 0 missed an interval: suspect, not yet dead. Collector 1 is
  // on cadence and stays quiet in the transition list.
  auto tr = table.tick(3 * kMs);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr[0].collector_id, 0u);
  EXPECT_EQ(tr[0].to, CollectorHealth::kSuspect);
  EXPECT_EQ(table.health(0), CollectorHealth::kSuspect);
  EXPECT_EQ(table.stats().deaths, 0u);

  // Collector 1 keeps heartbeating; collector 0 stays silent past timeout.
  table.heartbeat(1, 6 * kMs);
  tr = table.tick(1 * kMs + 5 * kMs + 1);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr[0].collector_id, 0u);
  EXPECT_EQ(tr[0].to, CollectorHealth::kDead);
  EXPECT_EQ(table.health(0), CollectorHealth::kDead);
  EXPECT_EQ(table.health(1), CollectorHealth::kAlive);
  EXPECT_EQ(table.stats().deaths, 1u);
}

TEST(Liveness, TransitionsReportedInCollectorIdOrder) {
  CollectorLivenessTable table(4, fast_config());
  for (std::uint32_t c = 0; c < 4; ++c) table.heartbeat(c, 1 * kMs);
  const auto tr = table.tick(20 * kMs);  // everyone dead at once
  ASSERT_EQ(tr.size(), 4u);
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(tr[c].collector_id, c);
    EXPECT_EQ(tr[c].to, CollectorHealth::kDead);
  }
}

TEST(Liveness, HeartbeatAfterDeathRecoversOnNextTick) {
  CollectorLivenessTable table(1, fast_config());
  table.heartbeat(0, 1 * kMs);
  (void)table.tick(10 * kMs);
  ASSERT_EQ(table.health(0), CollectorHealth::kDead);

  table.heartbeat(0, 11 * kMs);  // an answered probe lands as a heartbeat
  const auto tr = table.tick(11 * kMs);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr[0].to, CollectorHealth::kAlive);
  EXPECT_EQ(table.stats().recoveries, 1u);
}

TEST(Liveness, ProbeBackoffDoublesAndCaps) {
  CollectorLivenessTable table(1, fast_config());
  table.heartbeat(0, 0);
  (void)table.tick(6 * kMs);  // dead at t=6ms (timeout from t=0)
  ASSERT_EQ(table.health(0), CollectorHealth::kDead);

  // First probe due after the initial backoff, then 2x per silent probe,
  // capped at 16ms: gaps of 2, 4, 8, 16, 16, ...
  EXPECT_FALSE(table.probe_due(0, 6 * kMs + 1 * kMs));
  EXPECT_TRUE(table.probe_due(0, 6 * kMs + 2 * kMs));
  EXPECT_FALSE(table.probe_due(0, 8 * kMs + 3 * kMs));
  EXPECT_TRUE(table.probe_due(0, 8 * kMs + 4 * kMs));
  EXPECT_TRUE(table.probe_due(0, 12 * kMs + 8 * kMs));
  EXPECT_TRUE(table.probe_due(0, 20 * kMs + 16 * kMs));
  EXPECT_FALSE(table.probe_due(0, 36 * kMs + 15 * kMs)) << "cap, not 32ms";
  EXPECT_TRUE(table.probe_due(0, 36 * kMs + 16 * kMs));
  EXPECT_EQ(table.stats().probes, 5u);

  // A probe is a liveness check, not a heartbeat: state stays dead.
  EXPECT_EQ(table.health(0), CollectorHealth::kDead);
}

TEST(Liveness, ProbeNotDueForLiveCollectors) {
  CollectorLivenessTable table(1, fast_config());
  table.heartbeat(0, 1 * kMs);
  (void)table.tick(1 * kMs);
  EXPECT_FALSE(table.probe_due(0, 100 * kMs));
  EXPECT_EQ(table.stats().probes, 0u);
}

TEST(Liveness, NextAliveWalksTheRing) {
  CollectorLivenessTable table(4, fast_config());
  for (std::uint32_t c = 0; c < 4; ++c) table.heartbeat(c, 1 * kMs);
  table.heartbeat(1, 20 * kMs);  // only 1 survives the silence
  table.heartbeat(3, 20 * kMs);
  (void)table.tick(20 * kMs);
  ASSERT_EQ(table.health(0), CollectorHealth::kDead);
  ASSERT_EQ(table.health(2), CollectorHealth::kDead);

  EXPECT_EQ(table.next_alive(0), std::optional<std::uint32_t>(1));
  EXPECT_EQ(table.next_alive(2), std::optional<std::uint32_t>(3));
  EXPECT_EQ(table.next_alive(3), std::optional<std::uint32_t>(1))
      << "wraps around the ring";

  // Everyone dead: nothing to fail over to.
  CollectorLivenessTable lonely(2, fast_config());
  lonely.heartbeat(0, 1 * kMs);
  lonely.heartbeat(1, 1 * kMs);
  (void)lonely.tick(50 * kMs);
  EXPECT_FALSE(lonely.next_alive(0).has_value());
}

}  // namespace
}  // namespace dart::core
