// Chaos end-to-end: the full detect → failover → degrade → failback loop on
// a live WireFabric, plus randomized fault plans that must keep the
// conservation invariants intact (docs/FAULTS.md, "Guarantees").
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "telemetry/wire_fabric.hpp"
#include "telemetry/workload.hpp"

namespace dart::fault {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

telemetry::WireFabricConfig chaos_config(double loss, std::uint64_t seed) {
  telemetry::WireFabricConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.dart.n_slots = 1 << 13;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0x0B5;
  cfg.n_collectors = 3;
  cfg.report_loss_rate = loss;
  cfg.seed = seed;
  return cfg;
}

// Every injected fault has a ledger column, so the books must balance no
// matter what the plan did: nothing disappears without being counted.
void assert_conservation(telemetry::WireFabric& fabric,
                         const core::OperatorClient& op) {
  std::uint64_t frames = 0;
  std::uint64_t verdicts = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped_offline = 0;
  for (std::uint32_t c = 0; c < fabric.n_collectors(); ++c) {
    const auto& rc = fabric.cluster().collector(c).rnic().counters();
    frames += rc.frames.load();
    verdicts += rc.executed.load() + rc.not_roce.load() + rc.bad_icrc.load() +
                rc.bad_opcode.load() + rc.unknown_qp.load() +
                rc.psn_rejected.load() + rc.bad_rkey.load() +
                rc.pd_mismatch.load() + rc.access_denied.load() +
                rc.out_of_bounds.load() + rc.unaligned_atomic.load() +
                rc.stalled.load() + rc.qp_error.load();
    const auto* qs = fabric.query_service(c);
    served += qs->requests_served();
    dropped_offline += qs->dropped_offline();
  }
  std::uint64_t mon_delivered = 0;
  std::uint64_t mon_dropped = 0;
  std::uint64_t mon_partitioned = 0;
  auto& sim = fabric.simulator();
  for (std::uint32_t s = 0; s < fabric.n_switches(); ++s) {
    for (std::uint32_t c = 0; c < fabric.n_collectors(); ++c) {
      const auto& ls = sim.link_stats(fabric.monitoring_link(s, c));
      mon_delivered += ls.delivered;
      mon_dropped += ls.dropped + ls.queue_drops;
      mon_partitioned += ls.partitioned;
    }
  }
  EXPECT_EQ(fabric.stats().reports_emitted,
            frames + mon_dropped + mon_partitioned)
      << "reports emitted must equal RNIC arrivals + every ledgered loss";
  EXPECT_EQ(frames, mon_delivered);
  EXPECT_EQ(frames, verdicts) << "every frame gets exactly one verdict";
  EXPECT_EQ(op.queries_sent(), op.responses_received() + op.pending());
  EXPECT_EQ(served, op.responses_received());
  EXPECT_GE(op.pending(), dropped_offline)
      << "queries eaten offline stay pending — never answered wrong";
}

// The headline scenario from ISSUE/docs/FAULTS.md: kill a collector, watch
// liveness declare it dead within the timeout, the backup adopt its key
// range (queryable, flagged degraded), and a probe-driven failback return
// the range to the owner after the revive.
TEST(ChaosE2E, KillFailoverDegradeFailback) {
  telemetry::WireFabric fabric(chaos_config(/*loss=*/0.0, /*seed=*/21));
  auto& op = fabric.attach_operator();
  auto& sim = fabric.simulator();

  RecoveryManager recovery(fabric, RecoveryConfig{});
  FaultInjector injector(fabric, &recovery);
  FaultPlan plan;
  plan.kill_collector(10 * kMs, 0).revive_collector(25 * kMs, 0);
  injector.arm(plan);
  recovery.start(/*horizon_ns=*/40 * kMs);

  // Pre-kill wave: populates every store, including collector 0's.
  telemetry::FlowGenerator gen(fabric.topology(), 77);
  std::vector<telemetry::FiveTuple> owned_by_dead;
  std::vector<std::pair<telemetry::FiveTuple, std::uint32_t>> all;
  while (owned_by_dead.size() < 8) {
    const auto fe = gen.next_flow();
    all.emplace_back(fe.tuple, fe.src_host);
    if (fabric.cluster().owner_of(fe.tuple.key_bytes()) == 0) {
      owned_by_dead.push_back(fe.tuple);
    }
  }
  for (const auto& [tup, src] : all) fabric.send_flow(tup, src, 2);

  // Mid-takeover wave: written AFTER the failover, so these keys must land
  // in the backup's store and be answerable from there.
  sim.schedule(17 * kMs, [&] {
    for (const auto& [tup, src] : all) fabric.send_flow(tup, src, 2);
  });
  std::vector<std::uint64_t> takeover_queries;
  sim.schedule(18 * kMs, [&] {
    for (const auto& tup : owned_by_dead) {
      takeover_queries.push_back(op.query(tup.key_bytes()));
    }
  });
  std::vector<std::uint64_t> failback_queries;
  sim.schedule(35 * kMs, [&] {
    for (const auto& tup : owned_by_dead) {
      failback_queries.push_back(op.query(tup.key_bytes()));
    }
  });
  fabric.run();

  // Detection: dead within timeout_ns of the last heartbeat — the kill
  // landed just after a heartbeat, the tick cadence adds at most one tick.
  const auto& log = recovery.log();
  ASSERT_GE(log.size(), 3u);
  EXPECT_EQ(log[0].what, RecoveryManager::EventRecord::What::kDeathDetected);
  EXPECT_EQ(log[0].collector, 0u);
  const RecoveryConfig cfg;
  EXPECT_GE(log[0].at_ns, 10 * kMs);
  EXPECT_LE(log[0].at_ns - 10 * kMs,
            cfg.liveness.timeout_ns + cfg.tick_interval_ns)
      << "death must be declared within the detection timeout";
  EXPECT_EQ(log[1].what, RecoveryManager::EventRecord::What::kTakeover);
  EXPECT_EQ(log[1].backup, 1u) << "ring-order backup";
  EXPECT_EQ(log[1].at_ns, log[0].at_ns) << "failover is immediate on detect";

  // Takeover answers: all arrive (redirected to the backup), all degraded,
  // all found — the keys were re-written into the backup's store.
  ASSERT_EQ(takeover_queries.size(), owned_by_dead.size());
  for (const auto id : takeover_queries) {
    const auto resp = op.take_response(id);
    ASSERT_TRUE(resp.has_value()) << "takeover queries must be answered";
    EXPECT_TRUE(resp->degraded());
    EXPECT_EQ(resp->stale_epochs, cfg.takeover_stale_epochs);
    EXPECT_EQ(resp->outcome, core::QueryOutcome::kFound);
  }

  // Failback: probe answered after the revive, range restored, takeover map
  // cleared. The recovered store still has its pre-kill data, but answers
  // stay flagged degraded until repopulation is acknowledged.
  const auto& fb = log.back();
  EXPECT_EQ(fb.what, RecoveryManager::EventRecord::What::kFailback);
  EXPECT_GE(fb.at_ns, 25 * kMs);
  EXPECT_FALSE(recovery.backup_of(0).has_value());
  EXPECT_GE(recovery.stats().probes_answered, 1u);
  for (const auto id : failback_queries) {
    const auto resp = op.take_response(id);
    ASSERT_TRUE(resp.has_value()) << "post-failback queries go to the owner";
    EXPECT_TRUE(resp->degraded()) << "cold store stays flagged";
    EXPECT_EQ(resp->outcome, core::QueryOutcome::kFound);
  }

  // Repopulation acknowledged (e.g. the next epoch rotated in): clean again.
  recovery.acknowledge_repopulated(0);
  std::vector<std::uint64_t> clean_queries;
  for (const auto& tup : owned_by_dead) {
    clean_queries.push_back(op.query(tup.key_bytes()));
  }
  fabric.run();
  for (const auto id : clean_queries) {
    const auto resp = op.take_response(id);
    ASSERT_TRUE(resp.has_value());
    EXPECT_FALSE(resp->degraded());
  }

  EXPECT_EQ(recovery.stats().kills, 1u);
  EXPECT_EQ(recovery.stats().deaths_detected, 1u);
  EXPECT_EQ(recovery.stats().takeovers, 1u);
  EXPECT_EQ(recovery.stats().failbacks, 1u);
  assert_conservation(fabric, op);
}

// If every other collector is down too, there is nothing to fail over to:
// the death is detected and logged, no takeover happens, and queries to the
// dead range are eaten — degraded availability, never wrong answers.
// Long-outage regression: a collector that stays dead across more epoch
// rotations than a uint16 can count must keep reading "maximally stale" —
// the per-takeover counter saturates at kStaleEpochsSaturated instead of
// wrapping back toward "fresh" (a wrapped count of, say, 4465 after 70k lost
// rotations would massively under-report data loss to the operator).
TEST(ChaosE2E, StaleEpochsSaturateAcrossLongOutage) {
  telemetry::WireFabric fabric(chaos_config(/*loss=*/0.0, /*seed=*/29));
  auto& op = fabric.attach_operator();
  auto& sim = fabric.simulator();

  const RecoveryConfig cfg;
  RecoveryManager recovery(fabric, cfg);
  FaultInjector injector(fabric, &recovery);
  FaultPlan plan;
  plan.kill_collector(5 * kMs, 0);  // never revived: the outage outlives us
  injector.arm(plan);
  recovery.start(/*horizon_ns=*/15 * kMs);
  fabric.run();

  ASSERT_TRUE(recovery.backup_of(0).has_value());
  const std::uint32_t backup = *recovery.backup_of(0);
  auto* qs = fabric.query_service(backup);
  ASSERT_NE(qs, nullptr);
  ASSERT_EQ(qs->takeover_stale_epochs(0), cfg.takeover_stale_epochs);

  // The collector misses 70'000 rotations — past uint16's 65'535.
  for (int i = 0; i < 70'000; ++i) recovery.note_epoch_rotation();
  EXPECT_EQ(qs->takeover_stale_epochs(0),
            core::QueryServiceNode::kStaleEpochsSaturated);

  // The operator sees the saturated count on a real answer for a dead-owned
  // key, still flagged degraded.
  telemetry::FlowGenerator gen(fabric.topology(), 41);
  auto fe = gen.next_flow();
  while (fabric.cluster().owner_of(fe.tuple.key_bytes()) != 0) {
    fe = gen.next_flow();
  }
  fabric.send_flow(fe.tuple, fe.src_host, 2);
  std::uint64_t id = 0;
  sim.schedule(sim.now_ns() + kMs, [&] { id = op.query(fe.tuple.key_bytes()); });
  fabric.run();
  const auto resp = op.take_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->degraded());
  EXPECT_EQ(resp->stale_epochs, core::QueryServiceNode::kStaleEpochsSaturated);

  // Accumulation is saturating too: re-marking the same owner cannot wrap.
  qs->begin_takeover(0, 0xFFFF);
  EXPECT_EQ(qs->takeover_stale_epochs(0),
            core::QueryServiceNode::kStaleEpochsSaturated);
}

TEST(ChaosE2E, NoBackupAvailableMeansNoTakeover) {
  telemetry::WireFabric fabric(chaos_config(/*loss=*/0.0, /*seed=*/23));
  auto& op = fabric.attach_operator();
  auto& sim = fabric.simulator();

  RecoveryManager recovery(fabric, RecoveryConfig{});
  FaultInjector injector(fabric, &recovery);
  FaultPlan plan;
  for (std::uint32_t c = 0; c < 3; ++c) plan.kill_collector(5 * kMs, c);
  injector.arm(plan);
  recovery.start(/*horizon_ns=*/20 * kMs);

  telemetry::FlowGenerator gen(fabric.topology(), 31);
  const auto fe = gen.next_flow();
  fabric.send_flow(fe.tuple, fe.src_host, 2);
  std::uint64_t id = 0;
  sim.schedule(15 * kMs, [&] { id = op.query(fe.tuple.key_bytes()); });
  fabric.run();

  EXPECT_EQ(recovery.stats().deaths_detected, 3u);
  EXPECT_EQ(recovery.stats().takeovers, 0u);
  EXPECT_FALSE(op.take_response(id).has_value());
  EXPECT_EQ(op.pending(), 1u);
  assert_conservation(fabric, op);
}

// Seeded random plans: whatever combination of kills, stalls, QP errors,
// partitions, and corruption fires, the ledgers must still balance and the
// fabric must converge back to health (every kill revives, every partition
// heals, detection + failback run inside the horizon).
TEST(ChaosE2E, RandomPlansKeepConservationInvariants) {
  for (const std::uint64_t seed : {3u, 17u}) {
    SCOPED_TRACE(seed);
    telemetry::WireFabric fabric(chaos_config(/*loss=*/0.05, seed));
    auto& op = fabric.attach_operator();
    auto& sim = fabric.simulator();

    RecoveryManager recovery(fabric, RecoveryConfig{});
    FaultInjector injector(fabric, &recovery);
    constexpr std::uint64_t kHorizon = 60 * kMs;
    const auto n_links = static_cast<std::uint32_t>(
        fabric.monitoring_link(fabric.n_switches() - 1,
                               fabric.n_collectors() - 1) + 1);
    const auto plan = FaultPlan::random(seed, fabric.n_collectors(), n_links,
                                        /*horizon_ns=*/40 * kMs);
    ASSERT_FALSE(plan.empty());
    injector.arm(plan);
    recovery.start(kHorizon);

    telemetry::FlowGenerator gen(fabric.topology(), seed + 1);
    std::vector<telemetry::FiveTuple> tuples;
    for (const std::uint64_t at :
         {std::uint64_t{0}, 8 * kMs, 16 * kMs, 24 * kMs, 32 * kMs, 48 * kMs}) {
      sim.schedule(at, [&fabric, &gen, &tuples] {
        for (int i = 0; i < 15; ++i) {
          const auto fe = gen.next_flow();
          tuples.push_back(fe.tuple);
          fabric.send_flow(fe.tuple, fe.src_host, 2);
        }
      });
    }
    sim.schedule(55 * kMs, [&] {
      for (const auto& tup : tuples) (void)op.query(tup.key_bytes());
    });
    fabric.run();

    EXPECT_EQ(injector.stats().total(), plan.size());
    assert_conservation(fabric, op);
    // Convergence: the kill was revived and the probe loop failed back
    // inside the horizon, so nothing is left dead or re-targeted.
    for (std::uint32_t c = 0; c < fabric.n_collectors(); ++c) {
      EXPECT_FALSE(recovery.backup_of(c).has_value()) << c;
      EXPECT_TRUE(recovery.admin_alive(c)) << c;
    }
    EXPECT_EQ(recovery.stats().deaths_detected, recovery.stats().failbacks);
  }
}

}  // namespace
}  // namespace dart::fault
