// Mechanical fault-injection tests: each injection point in isolation on a
// live WireFabric, without a RecoveryManager — the symptoms the control
// plane later reacts to, plus the zero-cost-when-disarmed guarantee.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "rdma/qp.hpp"
#include "telemetry/wire_fabric.hpp"
#include "telemetry/workload.hpp"

namespace dart::fault {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

telemetry::WireFabricConfig lossless_config(std::uint32_t collectors = 2) {
  telemetry::WireFabricConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.dart.n_slots = 1 << 12;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0x0B5;
  cfg.n_collectors = collectors;
  cfg.report_loss_rate = 0.0;
  cfg.seed = 5;
  return cfg;
}

// Sends `flows` flows starting at the simulator's current time.
void drive(telemetry::WireFabric& fabric, telemetry::FlowGenerator& gen,
           int flows) {
  for (int i = 0; i < flows; ++i) {
    const auto fe = gen.next_flow();
    fabric.send_flow(fe.tuple, fe.src_host, 2);
  }
}

struct RnicTotals {
  std::uint64_t frames = 0;
  std::uint64_t executed = 0;
  std::uint64_t stalled = 0;
  std::uint64_t qp_error = 0;
  std::uint64_t bad_icrc = 0;
};

RnicTotals rnic_totals(telemetry::WireFabric& fabric) {
  RnicTotals t;
  for (std::uint32_t c = 0; c < fabric.n_collectors(); ++c) {
    const auto& rc = fabric.cluster().collector(c).rnic().counters();
    t.frames += rc.frames.load();
    t.executed += rc.executed.load();
    t.stalled += rc.stalled.load();
    t.qp_error += rc.qp_error.load();
    t.bad_icrc += rc.bad_icrc.load();
  }
  return t;
}

// An armed-but-empty plan must leave the fabric's behavior bit-identical to
// a fabric that never saw the fault subsystem: same seed, same counters.
TEST(FaultInjection, DisarmedFabricIsUnchanged) {
  telemetry::WireFabric plain(lossless_config());
  telemetry::WireFabric armed(lossless_config());
  FaultInjector injector(armed);
  injector.arm(FaultPlan{});

  telemetry::FlowGenerator gen_a(plain.topology(), 99);
  telemetry::FlowGenerator gen_b(armed.topology(), 99);
  drive(plain, gen_a, 40);
  drive(armed, gen_b, 40);
  plain.run();
  armed.run();

  EXPECT_EQ(injector.stats().total(), 0u);
  EXPECT_EQ(plain.stats().reports_emitted, armed.stats().reports_emitted);
  EXPECT_GT(plain.stats().reports_emitted, 0u);
  const auto a = rnic_totals(plain);
  const auto b = rnic_totals(armed);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(b.stalled + b.qp_error, 0u);
}

// A stalled RNIC drops exactly the programmed number of frames pre-parse,
// then resumes; the drops are ledgered in `stalled`, never silently lost.
TEST(FaultInjection, StallDropsExactlyTheProgrammedFrames) {
  telemetry::WireFabric fabric(lossless_config(/*collectors=*/1));
  FaultInjector injector(fabric);
  FaultPlan plan;
  plan.stall_rnic(0, 0, /*frames=*/7);
  injector.arm(plan);

  telemetry::FlowGenerator gen(fabric.topology(), 3);
  drive(fabric, gen, 30);
  fabric.run();

  const auto t = rnic_totals(fabric);
  ASSERT_GT(t.frames, 7u) << "need traffic beyond the stall window";
  EXPECT_EQ(t.stalled, 7u);
  EXPECT_EQ(t.executed, t.frames - 7u);
  EXPECT_EQ(fabric.cluster().collector(0).rnic().stall_remaining(), 0u);
}

// An errored QP refuses frames (counted twice: RNIC verdict + QP drop);
// after the drain completes the QP reconnects at a fresh PSN and — because
// the fabric resets the switch-side PSN registers in the same step — the
// very next report is accepted, not PSN-rejected.
TEST(FaultInjection, ErroredQpRefusesUntilReconnectAtFreshPsn) {
  telemetry::WireFabric fabric(lossless_config(/*collectors=*/1));
  auto& sim = fabric.simulator();
  FaultInjector injector(fabric);
  FaultPlan plan;
  plan.error_qp(0, 0, /*drain_ns=*/5 * kMs);
  injector.arm(plan);

  telemetry::FlowGenerator gen(fabric.topology(), 4);
  drive(fabric, gen, 10);  // lands inside the error window
  sim.schedule(6 * kMs, [&] { drive(fabric, gen, 10); });  // after reconnect
  fabric.run();

  const auto t = rnic_totals(fabric);
  const auto& qp = *fabric.cluster().collector(0).rnic().qp(
      core::Collector::qpn_for(0));
  EXPECT_GT(t.qp_error, 0u);
  EXPECT_EQ(qp.counters().error_drops, t.qp_error);
  EXPECT_EQ(qp.counters().reconnects, 1u);
  EXPECT_EQ(qp.state(), rdma::QpState::kReady);
  EXPECT_GT(t.executed, 0u) << "post-reconnect traffic must land";
  EXPECT_EQ(fabric.cluster().collector(0).rnic().counters().psn_rejected.load(),
            0u)
      << "switch PSN registers were reset with the QP";
  EXPECT_EQ(t.frames, t.executed + t.qp_error);
}

// Partitioned monitoring links eat reports into their own ledger column;
// healing restores delivery, and emitted == delivered + partitioned.
TEST(FaultInjection, PartitionEatsReportsThenHealRestores) {
  telemetry::WireFabric fabric(lossless_config(/*collectors=*/1));
  auto& sim = fabric.simulator();
  FaultInjector injector(fabric);
  FaultPlan plan;
  for (std::uint32_t s = 0; s < fabric.n_switches(); ++s) {
    plan.partition_link(0, fabric.monitoring_link(s, 0));
    plan.heal_link(5 * kMs, fabric.monitoring_link(s, 0));
  }
  injector.arm(plan);

  telemetry::FlowGenerator gen(fabric.topology(), 6);
  drive(fabric, gen, 10);  // all reports eaten
  sim.schedule(6 * kMs, [&] { drive(fabric, gen, 10); });  // delivered
  fabric.run();

  const auto t = rnic_totals(fabric);
  const auto partitioned = sim.total_partitioned();
  EXPECT_GT(partitioned, 0u);
  EXPECT_GT(t.frames, 0u) << "post-heal reports must arrive";
  EXPECT_EQ(fabric.stats().reports_emitted, t.frames + partitioned);
}

// Corrupted reports still arrive — damaged — and the RNIC's iCRC check is
// what rejects them: every corruption shows up as a bad_icrc verdict.
TEST(FaultInjection, CorruptionIsCaughtByIcrc) {
  telemetry::WireFabric fabric(lossless_config(/*collectors=*/1));
  auto& sim = fabric.simulator();
  FaultInjector injector(fabric);
  FaultPlan plan;
  for (std::uint32_t s = 0; s < fabric.n_switches(); ++s) {
    plan.corrupt_link(0, fabric.monitoring_link(s, 0), 1.0);
    plan.clear_corruption(5 * kMs, fabric.monitoring_link(s, 0));
  }
  injector.arm(plan);

  telemetry::FlowGenerator gen(fabric.topology(), 8);
  drive(fabric, gen, 10);
  sim.schedule(6 * kMs, [&] { drive(fabric, gen, 10); });
  fabric.run();

  const auto t = rnic_totals(fabric);
  EXPECT_GT(sim.total_corrupted(), 0u);
  EXPECT_EQ(t.bad_icrc, sim.total_corrupted())
      << "every damaged frame must be caught, none executed";
  EXPECT_EQ(t.frames, t.executed + t.bad_icrc);
  EXPECT_GT(t.executed, 0u) << "clean-window traffic still lands";
}

// Without a RecoveryManager, kill/revive degrade to their mechanical
// effects: service offline (queries eaten, counted) and QP error — the
// "no failure handling" baseline. Nothing re-targets.
TEST(FaultInjection, KillWithoutRecoveryIsMechanicalOnly) {
  telemetry::WireFabric fabric(lossless_config(/*collectors=*/2));
  auto& op = fabric.attach_operator();
  auto& sim = fabric.simulator();
  FaultInjector injector(fabric);
  FaultPlan plan;
  plan.kill_collector(2 * kMs, 0).revive_collector(8 * kMs, 0);
  injector.arm(plan);

  telemetry::FlowGenerator gen(fabric.topology(), 9);
  std::vector<telemetry::FiveTuple> tuples;
  for (int i = 0; i < 30; ++i) tuples.push_back(gen.next_flow().tuple);
  for (const auto& tup : tuples) fabric.send_flow(tup, 0, 1);
  sim.schedule(4 * kMs, [&] {
    for (const auto& tup : tuples) (void)op.query(tup.key_bytes());
  });
  fabric.run();

  EXPECT_EQ(injector.stats().of(FaultKind::kKillCollector), 1u);
  const auto* dead_service = fabric.query_service(0);
  ASSERT_NE(dead_service, nullptr);
  EXPECT_GT(dead_service->dropped_offline(), 0u)
      << "queries to the dead collector are eaten, not mis-answered";
  EXPECT_TRUE(dead_service->online()) << "revive restored the service";
  EXPECT_EQ(op.queries_sent(), op.responses_received() + op.pending());
  EXPECT_EQ(op.pending(), dead_service->dropped_offline());
}

}  // namespace
}  // namespace dart::fault
