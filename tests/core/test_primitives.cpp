// Tests for the DTA translator primitives (primitives.hpp): the local
// reference models, the wire path (crafted frames → simulated RNIC → region
// memory), and the primitive query plane end to end over the fabric
// simulator.
#include "core/primitives.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "core/atomics_store.hpp"
#include "core/collector.hpp"
#include "core/oracle.hpp"
#include "core/query_service.hpp"
#include "core/report_crafter.hpp"
#include "net/netsim.hpp"
#include "rdma/roce.hpp"

namespace dart::core {
namespace {

std::vector<std::byte> value_of(std::uint64_t v, std::uint32_t bytes) {
  std::vector<std::byte> out(bytes);
  for (std::uint32_t j = 0; j < bytes; ++j) {
    out[j] = static_cast<std::byte>((v * 13 + j) & 0xFF);
  }
  return out;
}

// ---------------------------------------------------------------------------
// AppendRing — local model
// ---------------------------------------------------------------------------

TEST(AppendRing, DrainReturnsEntriesInSequenceOrder) {
  AppendRingConfig cfg;
  cfg.n_entries = 8;
  cfg.value_bytes = 4;
  AppendRing ring(cfg);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    ring.write_entry(seq, value_of(seq, 4));
  }
  const auto d = ring.drain();
  ASSERT_EQ(d.entries.size(), 5u);
  EXPECT_EQ(d.missed, 0u);
  EXPECT_EQ(d.next_seq, 6u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(d.entries[i].seq, i + 1);
    EXPECT_EQ(d.entries[i].value, value_of(i + 1, 4));
  }
  // Drained entries are not returned twice.
  EXPECT_TRUE(ring.drain().entries.empty());
}

TEST(AppendRing, WrapOverwritesOldestAndCountsMissed) {
  AppendRingConfig cfg;
  cfg.n_entries = 4;
  cfg.value_bytes = 4;
  AppendRing ring(cfg);
  // 6 appends into a 4-slot ring: seqs 1 and 2 are lapped before any read.
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    ring.write_entry(seq, value_of(seq, 4));
  }
  const auto d = ring.drain();
  ASSERT_EQ(d.entries.size(), 4u);
  EXPECT_EQ(d.entries.front().seq, 3u);
  EXPECT_EQ(d.entries.back().seq, 6u);
  EXPECT_EQ(d.missed, 2u);
  EXPECT_EQ(ring.missed_total(), 2u);
  EXPECT_EQ(ring.cursor(), 7u);
}

TEST(AppendRing, LostReportsLeaveCountedHoles) {
  AppendRingConfig cfg;
  cfg.n_entries = 8;
  cfg.value_bytes = 4;
  AppendRing ring(cfg);
  // The switch consumed seqs 1..4 but seq 2's frame was lost in transit.
  for (const std::uint64_t seq : {1ull, 3ull, 4ull}) {
    ring.write_entry(seq, value_of(seq, 4));
  }
  const auto d = ring.drain();
  ASSERT_EQ(d.entries.size(), 3u);
  EXPECT_EQ(d.missed, 1u);  // the hole at seq 2
  EXPECT_EQ(d.next_seq, 5u);
}

TEST(AppendRing, DrainHonorsEntryCap) {
  AppendRingConfig cfg;
  cfg.n_entries = 8;
  cfg.value_bytes = 4;
  AppendRing ring(cfg);
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    ring.write_entry(seq, value_of(seq, 4));
  }
  const auto first = ring.drain(2);
  ASSERT_EQ(first.entries.size(), 2u);
  EXPECT_EQ(first.entries.back().seq, 2u);
  const auto rest = ring.drain();
  ASSERT_EQ(rest.entries.size(), 4u);
  EXPECT_EQ(rest.entries.front().seq, 3u);
}

TEST(AppendRing, EncodeEntryIsSeqLePlusValue) {
  std::vector<std::byte> out;
  AppendRing::encode_entry(0x0102'0304'0506'0708ull, value_of(1, 4), out);
  ASSERT_EQ(out.size(), 12u);
  std::uint64_t seq;
  std::memcpy(&seq, out.data(), 8);
  EXPECT_EQ(seq, 0x0102'0304'0506'0708ull);
  EXPECT_TRUE(std::memcmp(out.data() + 8, value_of(1, 4).data(), 4) == 0);
}

// ---------------------------------------------------------------------------
// CounterCellArray / PostcardStore — local models
// ---------------------------------------------------------------------------

TEST(CounterCellArray, FetchAddMirrorsRdmaSemantics) {
  CounterArrayConfig cfg;
  cfg.n_counters = 16;
  cfg.seed = 5;
  CounterCellArray cells(cfg);
  const auto key = sim_key(3);
  EXPECT_EQ(cells.fetch_add(key, 7), 0u);  // returns the prior value
  EXPECT_EQ(cells.fetch_add(key, 2), 7u);
  EXPECT_EQ(cells.read(key), 9u);
  EXPECT_EQ(cells.read_cell(cfg.index_of(key)), 9u);
}

TEST(CounterCellArray, AgreesWithFlowCounterArrayCellForCell) {
  // Same hash formula as the §7 sketch reference — the wire path and the
  // sketch must address the same cells.
  CounterArrayConfig cfg;
  cfg.n_counters = 64;
  cfg.seed = 11;
  CounterCellArray cells(cfg);
  FlowCounterArray sketch(cfg.n_counters, cfg.seed);
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(cfg.index_of(sim_key(k)), sketch.index_of(sim_key(k))) << k;
    (void)cells.fetch_add(sim_key(k), k + 1);
    (void)sketch.fetch_add(sim_key(k), k + 1);
  }
  for (std::uint64_t c = 0; c < cfg.n_counters; ++c) {
    EXPECT_EQ(cells.read_cell(c), sketch.cells()[c]) << c;
  }
}

TEST(PostcardStore, GroupAssemblyTracksReportedHops) {
  PostcardConfig cfg;
  cfg.n_groups = 4;
  cfg.max_hops = 4;
  cfg.checksum_bits = 16;
  cfg.value_bytes = 4;
  cfg.seed = 9;
  PostcardStore store(cfg);
  const auto flow = sim_key(1);
  store.write_hop(flow, 0, value_of(10, 4));
  store.write_hop(flow, 2, value_of(12, 4));

  const auto view = store.read_group(flow);
  EXPECT_EQ(view.group, cfg.group_of(flow));
  EXPECT_EQ(view.valid_mask, 0b101u);
  ASSERT_EQ(view.hops.size(), 4u);
  EXPECT_EQ(view.hops[0], value_of(10, 4));
  EXPECT_EQ(view.hops[2], value_of(12, 4));
}

TEST(PostcardStore, GroupCollisionStealsSlotValidity) {
  // Two flows in the same group: the later writer of a hop slot owns its
  // validity bit; the earlier flow's read no longer vouches for that hop.
  PostcardConfig cfg;
  cfg.n_groups = 1;  // force the collision
  cfg.max_hops = 2;
  cfg.checksum_bits = 16;
  cfg.value_bytes = 4;
  cfg.seed = 9;
  PostcardStore store(cfg);
  const auto a = sim_key(1);
  const auto b = sim_key(2);
  ASSERT_NE(cfg.checksum_of(a), cfg.checksum_of(b));

  store.write_hop(a, 0, value_of(1, 4));
  store.write_hop(b, 0, value_of(2, 4));
  EXPECT_EQ(store.read_group(a).valid_mask, 0u);
  EXPECT_EQ(store.read_group(b).valid_mask, 0b1u);
  EXPECT_EQ(store.read_group(b).hops[0], value_of(2, 4));
}

TEST(Primitives, DefaultConfigIsValidAndSeeded) {
  const auto prim = default_primitives(0xABCD);
  EXPECT_TRUE(prim.valid());
  const auto other = default_primitives(0xABCE);
  EXPECT_NE(prim.counters.seed, other.counters.seed);
  // Counter and group hashes must not alias even though both sub-seeds come
  // from one master seed (group_of salts internally): a key's counter cell
  // index and postcard group must not be the same permutation.
  PostcardConfig pc = prim.postcards;
  CounterArrayConfig ctr = prim.counters;
  pc.n_groups = ctr.n_counters = 1024;
  bool diverged = false;
  for (std::uint64_t k = 0; k < 16 && !diverged; ++k) {
    diverged = ctr.index_of(sim_key(k)) != pc.group_of(sim_key(k));
  }
  EXPECT_TRUE(diverged);
}

// ---------------------------------------------------------------------------
// Wire path: crafted frames through the simulated RNIC
// ---------------------------------------------------------------------------

class PrimitiveWireFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.n_slots = 256;
    cfg_.n_addresses = 2;
    cfg_.checksum_bits = 32;
    cfg_.value_bytes = 8;
    cfg_.master_seed = 0xDA27'11;
    CollectorEndpoint ep;
    ep.mac = {0x02, 0, 0, 0, 0, 1};
    ep.ip = net::Ipv4Addr::from_octets(10, 0, 100, 1);
    collector_ = std::make_unique<Collector>(cfg_, 0, ep);
    prim_ = default_primitives(cfg_.master_seed);
    prim_.ring.n_entries = 8;
    prim_.ring.value_bytes = 8;
    prim_.postcards.n_groups = 4;
    prim_.postcards.max_hops = 4;
    ASSERT_TRUE(collector_->enable_primitives(prim_).ok());
    crafter_ = std::make_unique<ReportCrafter>(cfg_);
    src_.mac = {0xAA, 0xBB, 0xCC, 0, 0, 1};
    src_.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  }

  DartConfig cfg_;
  DtaPrimitivesConfig prim_;
  std::unique_ptr<Collector> collector_;
  std::unique_ptr<ReportCrafter> crafter_;
  ReporterEndpoint src_;
};

TEST_F(PrimitiveWireFixture, AppendFramesLandInRingSlots) {
  const auto dst = collector_->remote_ring_info();
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {  // wraps the 8-entry ring
    const auto frame = crafter_->craft_append(
        dst, src_, prim_.ring, seq, value_of(seq, prim_.ring.value_bytes),
        static_cast<std::uint32_t>(seq));
    collector_->rnic().process_frame(frame);
  }
  const auto& c = collector_->ingest_counters();
  EXPECT_EQ(c.executed.load(), 10u);
  const auto d = collector_->ring().drain();
  ASSERT_EQ(d.entries.size(), 8u);
  EXPECT_EQ(d.entries.front().seq, 3u);  // 1 and 2 lapped
  EXPECT_EQ(d.missed, 2u);
  for (const auto& e : d.entries) {
    EXPECT_EQ(e.value, value_of(e.seq, prim_.ring.value_bytes));
  }
}

TEST_F(PrimitiveWireFixture, KeyIncrementFramesAggregateInCells) {
  const auto dst = collector_->remote_counter_info();
  // Two "switches" (distinct PSN spaces don't matter for FETCH_ADD) add
  // into one array: the result is the network-wide aggregate.
  for (std::uint32_t psn = 0; psn < 6; ++psn) {
    const auto frame = crafter_->craft_key_increment(
        dst, src_, prim_.counters, sim_key(psn % 2), 10 + psn, psn);
    collector_->rnic().process_frame(frame);
  }
  EXPECT_EQ(collector_->ingest_counters().fetch_adds.load(), 6u);
  // Key 0 got psn 0,2,4 → 10+12+14; key 1 got 11+13+15.
  EXPECT_EQ(collector_->counters().read(sim_key(0)), 36u);
  EXPECT_EQ(collector_->counters().read(sim_key(1)), 39u);
}

TEST_F(PrimitiveWireFixture, PostcardFramesAssembleTheFlowPath) {
  const auto dst = collector_->remote_postcard_info();
  const auto flow = sim_key(7);
  for (const std::uint32_t hop : {0u, 1u, 3u}) {
    const auto frame = crafter_->craft_postcard(
        dst, src_, prim_.postcards, flow, hop,
        value_of(100 + hop, prim_.postcards.value_bytes), hop);
    collector_->rnic().process_frame(frame);
  }
  const auto view = collector_->postcards().read_group(flow);
  EXPECT_EQ(view.valid_mask, 0b1011u);
  EXPECT_EQ(view.hops[0], value_of(100, prim_.postcards.value_bytes));
  EXPECT_EQ(view.hops[3], value_of(103, prim_.postcards.value_bytes));
}

TEST_F(PrimitiveWireFixture, TemplatePathsAreByteIdentical) {
  const auto ring_dst = collector_->remote_ring_info();
  const auto ctr_dst = collector_->remote_counter_info();
  const auto pc_dst = collector_->remote_postcard_info();

  const auto append_tpl = crafter_->make_append_template(ring_dst, src_, prim_.ring);
  const auto inc_tpl =
      crafter_->make_atomic_template(ctr_dst, src_, rdma::Opcode::kRcFetchAdd);
  const auto pc_tpl =
      crafter_->make_postcard_template(pc_dst, src_, prim_.postcards);

  const auto value = value_of(5, prim_.ring.value_bytes);
  std::vector<std::byte> fast(append_tpl.frame_size());
  auto n = crafter_->craft_append_into(append_tpl, prim_.ring, 12, value, 9, fast);
  fast.resize(n);
  EXPECT_EQ(fast, crafter_->craft_append(ring_dst, src_, prim_.ring, 12, value, 9));

  fast.assign(inc_tpl.frame_size(), std::byte{0});
  n = crafter_->craft_key_increment_into(inc_tpl, prim_.counters, sim_key(4),
                                         77, 9, fast);
  fast.resize(n);
  EXPECT_EQ(fast, crafter_->craft_key_increment(ctr_dst, src_, prim_.counters,
                                                sim_key(4), 77, 9));

  const auto pv = value_of(6, prim_.postcards.value_bytes);
  fast.assign(pc_tpl.frame_size(), std::byte{0});
  n = crafter_->craft_postcard_into(pc_tpl, prim_.postcards, sim_key(4), 2, pv,
                                    9, fast);
  fast.resize(n);
  EXPECT_EQ(fast, crafter_->craft_postcard(pc_dst, src_, prim_.postcards,
                                           sim_key(4), 2, pv, 9));
}

TEST_F(PrimitiveWireFixture, MisdirectedAtomicCannotTouchRingRegion) {
  // The ring MR withholds remote-atomic access: a FETCH_ADD aimed at the
  // ring's rkey must be refused without dirtying ring memory.
  auto ring_as_atomic_target = collector_->remote_ring_info();
  const auto frame = crafter_->craft_fetch_add(
      ring_as_atomic_target, src_, ring_as_atomic_target.base_vaddr, 1, 0);
  collector_->rnic().process_frame(frame);
  EXPECT_EQ(collector_->ingest_counters().fetch_adds.load(), 0u);
  EXPECT_EQ(collector_->ring().entry_seq(0), 0u);  // slot 0 untouched
}

// ---------------------------------------------------------------------------
// Primitive query plane end to end
// ---------------------------------------------------------------------------

class PrimitiveQueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.n_slots = 256;
    cfg_.n_addresses = 2;
    cfg_.value_bytes = 8;
    cfg_.master_seed = 0x0E;
    CollectorEndpoint ep;
    ep.mac = {0x02, 0, 0, 0, 0, 1};
    ep.ip = net::Ipv4Addr::from_octets(10, 0, 100, 0);
    collector_ = std::make_unique<Collector>(cfg_, 0, ep);
    prim_ = default_primitives(cfg_.master_seed);
    prim_.ring.n_entries = 16;
    ASSERT_TRUE(collector_->enable_primitives(prim_).ok());
    crafter_ = std::make_unique<ReportCrafter>(cfg_);

    const auto service_ip = net::Ipv4Addr::from_octets(10, 0, 100, 100);
    auto resolver = [this](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
      for (const auto& [addr, node] : arp_) {
        if (addr == ip) return node;
      }
      return std::nullopt;
    };
    service_ = std::make_unique<QueryServiceNode>(*collector_, service_ip,
                                                  resolver);
    const auto operator_ip = net::Ipv4Addr::from_octets(10, 9, 0, 1);
    operator_ = std::make_unique<OperatorClient>(
        *crafter_, operator_ip, std::vector<net::Ipv4Addr>{service_ip},
        resolver);

    const auto op_node = sim_.add_node(*operator_);
    const auto svc_node = sim_.add_node(*service_);
    arp_.emplace_back(operator_ip, op_node);
    arp_.emplace_back(service_ip, svc_node);
    sim_.connect(op_node, svc_node, /*latency_ns=*/2000);
  }

  net::Simulator sim_{1};
  DartConfig cfg_;
  DtaPrimitivesConfig prim_;
  std::unique_ptr<Collector> collector_;
  std::unique_ptr<ReportCrafter> crafter_;
  std::unique_ptr<QueryServiceNode> service_;
  std::unique_ptr<OperatorClient> operator_;
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp_;
};

TEST_F(PrimitiveQueryFixture, DrainRingOverTheWire) {
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    collector_->ring().write_entry(seq, value_of(seq, prim_.ring.value_bytes));
  }
  const auto id = operator_->drain_ring(/*collector_id=*/0);
  ASSERT_NE(id, 0u);
  sim_.run();
  const auto resp = operator_->take_primitive_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->op, PrimitiveOp::kDrainRing);
  EXPECT_FALSE(resp->unavailable());
  ASSERT_EQ(resp->entries.size(), 5u);
  EXPECT_EQ(resp->missed, 0u);
  EXPECT_EQ(resp->next_seq, 6u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(resp->entries[i].seq, i + 1);
    EXPECT_EQ(resp->entries[i].value,
              value_of(i + 1, prim_.ring.value_bytes));
  }
  EXPECT_EQ(service_->primitives_served(), 1u);
  EXPECT_EQ(service_->primitives_unavailable(), 0u);

  // The wire drain advanced the collector-side cursor: a second drain is
  // empty, not a replay.
  const auto id2 = operator_->drain_ring(0);
  sim_.run();
  EXPECT_TRUE(operator_->take_primitive_response(id2)->entries.empty());
}

TEST_F(PrimitiveQueryFixture, DrainRingHonorsMaxEntries) {
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    collector_->ring().write_entry(seq, value_of(seq, prim_.ring.value_bytes));
  }
  const auto id = operator_->drain_ring(0, /*max_entries=*/2);
  sim_.run();
  const auto resp = operator_->take_primitive_response(id);
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->entries.size(), 2u);
  EXPECT_EQ(resp->next_seq, 3u);
}

TEST_F(PrimitiveQueryFixture, ReadCounterOverTheWire) {
  const auto key = sim_key(21);
  (void)collector_->counters().fetch_add(key, 400);
  (void)collector_->counters().fetch_add(key, 20);
  const auto id = operator_->read_counter(key);
  ASSERT_NE(id, 0u);
  sim_.run();
  const auto resp = operator_->take_primitive_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->op, PrimitiveOp::kReadCounter);
  EXPECT_EQ(resp->cell_index, prim_.counters.index_of(key));
  EXPECT_EQ(resp->counter_value, 420u);
}

TEST_F(PrimitiveQueryFixture, ReadPostcardGroupOverTheWire) {
  const auto flow = sim_key(3);
  collector_->postcards().write_hop(flow, 1,
                                    value_of(31, prim_.postcards.value_bytes));
  collector_->postcards().write_hop(flow, 2,
                                    value_of(32, prim_.postcards.value_bytes));
  const auto id = operator_->read_postcard_group(flow);
  sim_.run();
  const auto resp = operator_->take_primitive_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->op, PrimitiveOp::kReadPostcardGroup);
  EXPECT_EQ(resp->group_index, prim_.postcards.group_of(flow));
  EXPECT_EQ(resp->valid_mask, 0b110u);
  ASSERT_EQ(resp->hops.size(), prim_.postcards.max_hops);
  EXPECT_EQ(resp->hops[1], value_of(31, prim_.postcards.value_bytes));
  EXPECT_EQ(resp->hops[2], value_of(32, prim_.postcards.value_bytes));
}

TEST_F(PrimitiveQueryFixture, PendingAndCountersFollowPrimitiveTraffic) {
  const auto id = operator_->read_counter(sim_key(1));
  EXPECT_EQ(operator_->pending(), 1u);
  sim_.run();
  EXPECT_EQ(operator_->pending(), 0u);
  EXPECT_EQ(operator_->queries_sent(), 1u);
  EXPECT_EQ(operator_->responses_received(), 1u);
  EXPECT_TRUE(operator_->take_primitive_response(id).has_value());
  // One-shot: a second take returns nothing.
  EXPECT_FALSE(operator_->take_primitive_response(id).has_value());
}

TEST(PrimitiveQueryUnavailable, CollectorWithoutPrimitivesSaysSo) {
  DartConfig cfg;
  cfg.n_slots = 64;
  cfg.n_addresses = 2;
  cfg.value_bytes = 8;
  cfg.master_seed = 0x0E;
  CollectorEndpoint ep;
  ep.mac = {0x02, 0, 0, 0, 0, 9};
  ep.ip = net::Ipv4Addr::from_octets(10, 0, 100, 9);
  Collector collector(cfg, 0, ep);  // primitives NOT enabled
  ReportCrafter crafter(cfg);

  net::Simulator sim{1};
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp;
  auto resolver = [&arp](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
    for (const auto& [addr, node] : arp) {
      if (addr == ip) return node;
    }
    return std::nullopt;
  };
  const auto service_ip = net::Ipv4Addr::from_octets(10, 0, 100, 100);
  QueryServiceNode service(collector, service_ip, resolver);
  const auto operator_ip = net::Ipv4Addr::from_octets(10, 9, 0, 1);
  OperatorClient op(crafter, operator_ip,
                    std::vector<net::Ipv4Addr>{service_ip}, resolver);
  const auto op_node = sim.add_node(op);
  const auto svc_node = sim.add_node(service);
  arp.emplace_back(operator_ip, op_node);
  arp.emplace_back(service_ip, svc_node);
  sim.connect(op_node, svc_node, 2000);

  const auto id = op.drain_ring(0);
  sim.run();
  const auto resp = op.take_primitive_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->unavailable());
  EXPECT_TRUE(resp->entries.empty());
  EXPECT_EQ(service.primitives_unavailable(), 1u);
}

}  // namespace
}  // namespace dart::core
