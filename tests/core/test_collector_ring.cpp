// CollectorRing / CollectorSelector unit coverage: construction geometry,
// membership bookkeeping, the legacy-parity contract of kModulo, the
// sparse-membership regression (no selection policy may ever route to an
// absent collector id), and the concurrent lookup-during-rebuild hammer the
// TSan matrix runs (suite name CollectorRingHammer — check_sanitize.sh
// greps for it).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/hash.hpp"
#include "core/collector_ring.hpp"
#include "core/config.hpp"
#include "core/oracle.hpp"

namespace dart::core {
namespace {

CollectorRingConfig ring16() {
  CollectorRingConfig cfg;
  cfg.capacity = 16;
  cfg.height_per_member = 64;
  cfg.seed = 0xDA27'0000'0001ull;
  return cfg;
}

TEST(CollectorRing, ConstructionGeometry) {
  const CollectorRing ring(ring16());
  EXPECT_EQ(ring.capacity(), 16u);
  EXPECT_GE(ring.height(), 16u * 64u);
  // H is prime: no divisor in [2, sqrt(H)].
  const std::uint32_t h = ring.height();
  for (std::uint32_t d = 2; d * d <= h; ++d) {
    EXPECT_NE(h % d, 0u) << "height " << h << " divisible by " << d;
  }
  EXPECT_EQ(ring.member_count(), 16u);  // starts at full membership
  EXPECT_EQ(ring.owner_table().size(), ring.height());
}

TEST(CollectorRing, DegenerateConfigsClamp) {
  CollectorRingConfig cfg;
  cfg.capacity = 0;
  cfg.height_per_member = 0;
  const CollectorRing ring(cfg);
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_GE(ring.height(), 1u);
  EXPECT_EQ(ring.lookup(0xDEAD'BEEFull), 0u);  // the only member owns all
}

TEST(CollectorRing, EmptyMembershipYieldsNoOwner) {
  CollectorRing ring(ring16());
  ring.rebuild({});
  EXPECT_EQ(ring.member_count(), 0u);
  EXPECT_EQ(ring.lookup(12345), CollectorRing::kNoOwner);
  for (const auto owner : ring.owner_table()) {
    EXPECT_EQ(owner, CollectorRing::kNoOwner);
  }
  // home_lookup still answers with the bring-up (full membership) owner.
  EXPECT_LT(ring.home_lookup(12345), 16u);
}

TEST(CollectorRing, MembershipBookkeeping) {
  CollectorRing ring(ring16());
  const std::uint32_t members[] = {3, 7, 11};
  ring.rebuild(members);
  EXPECT_EQ(ring.member_count(), 3u);
  EXPECT_TRUE(ring.is_member(3));
  EXPECT_FALSE(ring.is_member(4));
  EXPECT_FALSE(ring.is_member(99));  // out of range, not just dead
  EXPECT_EQ(ring.members(), (std::vector<std::uint32_t>{3, 7, 11}));

  const auto before = ring.rebuilds();
  ring.remove_member(4);   // not a member: no-op
  ring.add_member(7);      // already a member: no-op
  ring.remove_member(99);  // out of range: no-op
  ring.add_member(99);     // out of range: no-op
  EXPECT_EQ(ring.rebuilds(), before);
  ring.remove_member(7);
  EXPECT_EQ(ring.rebuilds(), before + 1);
  EXPECT_EQ(ring.members(), (std::vector<std::uint32_t>{3, 11}));
}

TEST(CollectorRing, DuplicateAndOutOfRangeMembersIgnoredByRebuild) {
  CollectorRing ring(ring16());
  const std::uint32_t members[] = {5, 5, 2, 42, 2};
  ring.rebuild(members);
  EXPECT_EQ(ring.members(), (std::vector<std::uint32_t>{2, 5}));
  for (const auto owner : ring.owner_table()) {
    EXPECT_TRUE(owner == 2 || owner == 5) << owner;
  }
}

TEST(CollectorRing, BucketCountsSumToHeight) {
  CollectorRing ring(ring16());
  const auto counts = ring.bucket_counts();
  ASSERT_EQ(counts.size(), 16u);
  std::uint64_t total = 0;
  for (const auto c : counts) {
    EXPECT_GT(c, 0u);
    total += c;
  }
  EXPECT_EQ(total, ring.height());
}

// --- CollectorSelector -------------------------------------------------------

DartConfig ring_config(CollectorSelection policy) {
  DartConfig cfg;
  cfg.n_addresses = 2;
  cfg.master_seed = 0xDA27'5EEDull;
  cfg.selection = policy;
  cfg.ring_height_per_member = 64;
  return cfg;
}

// kModulo at full contiguous membership is bit-identical to the legacy
// HashFamily::collector_of reduction — the A/B seam guarantee.
TEST(CollectorSelector, ModuloMatchesLegacyCollectorOf) {
  const auto cfg = ring_config(CollectorSelection::kModulo);
  const CollectorSelector sel(cfg, 10);
  const HashFamily legacy(cfg.n_addresses, cfg.master_seed);
  for (std::uint64_t id = 0; id < 512; ++id) {
    const auto key = sim_key(id);
    EXPECT_EQ(sel.owner_of(key), legacy.collector_of(key, 10)) << id;
  }
}

// Satellite regression: a sparse membership set (dead indices in the middle
// of the id space) must never be routed to — under EITHER policy, scalar or
// batch. The legacy HashFamily::collector_of assumes contiguous [0, n) and
// cannot express this; CollectorSelector is the seam that makes sparse
// membership safe.
TEST(CollectorSelector, SparseMembershipNeverRoutesToDeadIndex) {
  const std::set<std::uint32_t> alive = {0, 2, 5, 9};
  const std::vector<std::uint32_t> members(alive.begin(), alive.end());
  for (const auto policy :
       {CollectorSelection::kModulo, CollectorSelection::kRing}) {
    const auto cfg = ring_config(policy);
    CollectorSelector sel(cfg, 10);
    sel.set_members(members);
    EXPECT_EQ(sel.member_count(), 4u);

    // Scalar.
    for (std::uint64_t id = 0; id < 2048; ++id) {
      const auto owner = sel.owner_of(sim_key(id));
      ASSERT_TRUE(alive.contains(owner))
          << "policy " << static_cast<int>(policy) << " routed key " << id
          << " to dead index " << owner;
    }

    // Batch, 8-byte keys (the AVX2 path) — must agree with scalar.
    constexpr std::size_t kBatch = 300;
    std::vector<std::byte> keys(kBatch * 8);
    for (std::size_t i = 0; i < kBatch; ++i) {
      const auto key = sim_key(i * 31 + 7);
      std::memcpy(keys.data() + i * 8, key.data(), 8);
    }
    std::uint32_t owners[kBatch];
    sel.owners_of(keys.data(), 8, 8, kBatch, owners);
    for (std::size_t i = 0; i < kBatch; ++i) {
      ASSERT_TRUE(alive.contains(owners[i])) << i;
      EXPECT_EQ(owners[i],
                sel.owner_of({keys.data() + i * 8, 8}))
          << i;
    }
  }
}

TEST(CollectorSelector, HomeOwnerAnswersAgainstFullMembership) {
  for (const auto policy :
       {CollectorSelection::kModulo, CollectorSelection::kRing}) {
    const auto cfg = ring_config(policy);
    CollectorSelector sel(cfg, 8);
    // Record the bring-up mapping, then gut the membership: home_owner_of
    // must not move.
    std::vector<std::uint32_t> home;
    for (std::uint64_t id = 0; id < 64; ++id) {
      home.push_back(sel.home_owner_of(sim_key(id)));
    }
    sel.set_members(std::vector<std::uint32_t>{1, 6});
    for (std::uint64_t id = 0; id < 64; ++id) {
      EXPECT_EQ(sel.home_owner_of(sim_key(id)), home[id]) << id;
    }
  }
}

// --- concurrent hammer (TSan matrix) ----------------------------------------

// Readers spin lookup()/lookup_batch() while a writer thread churns the
// membership with rebuilds. Wait-free snapshot lookups must never observe a
// torn table: every owner returned is a member of SOME membership set the
// writer installed (here: always a subset of [0, capacity)), never kNoOwner
// (the writer keeps >= 1 member), and never out of range.
TEST(CollectorRingHammer, LookupsDuringRebuildAreWaitFreeAndValid) {
  CollectorRingConfig cfg;
  cfg.capacity = 12;
  cfg.height_per_member = 16;
  cfg.seed = 0xDA27'4A44ull;
  CollectorRing ring(cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t h = 0x9E37'79B9'7F4A'7C15ull * (t + 1);
      std::uint64_t hashes[16];
      std::uint32_t owners[16];
      while (!stop.load(std::memory_order_acquire)) {
        for (auto& x : hashes) {
          h ^= h << 13;
          h ^= h >> 7;
          h ^= h << 17;
          x = h;
        }
        ring.lookup_batch(hashes, 16, owners);
        for (std::size_t i = 0; i < 16; ++i) {
          if (owners[i] >= cfg.capacity) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
          const auto scalar = ring.lookup(hashes[i]);
          if (scalar >= cfg.capacity) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Writer: churn through memberships that always keep member 0 alive.
  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint32_t> members{0};
    for (std::uint32_t m = 1; m < cfg.capacity; ++m) {
      if ((round >> (m % 5)) & 1) members.push_back(m);
    }
    ring.rebuild(members);
    ring.remove_member(static_cast<std::uint32_t>(1 + (round % 11)));
    ring.add_member(static_cast<std::uint32_t>(1 + ((round * 7) % 11)));
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GE(ring.rebuilds(), 400u);
}

}  // namespace
}  // namespace dart::core
