// Tests for live epoch rotation (§5.2.1): double-buffered MRs, directory
// flips through the control plane, in-flight grace period, seal + archive.
#include "core/epoch_rotation.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "core/control.hpp"
#include "core/oracle.hpp"
#include "core/report_crafter.hpp"
#include "switchsim/dart_switch.hpp"

namespace dart::core {
namespace {

namespace fs = std::filesystem;

DartConfig config() {
  DartConfig cfg;
  cfg.n_slots = 1 << 10;
  cfg.n_addresses = 2;
  cfg.value_bytes = 8;
  cfg.master_seed = 0x207;
  return cfg;
}

CollectorEndpoint endpoint() {
  return {{2, 0, 0, 0, 0, 9}, net::Ipv4Addr::from_octets(10, 0, 100, 9)};
}

std::vector<std::byte> value_of(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

class RotationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dart_rot_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // Sends one report for (key, value) to the given directory row.
  void report(RotatingCollector& collector, const RemoteStoreInfo& dst,
              std::uint64_t key_id, std::uint64_t v, std::uint32_t n) {
    const ReportCrafter crafter(config());
    ReporterEndpoint src;
    const auto frame = crafter.craft_write(dst, src, sim_key(key_id),
                                           value_of(v), n, psn_++);
    ASSERT_TRUE(collector.rnic().process_frame(frame).has_value());
  }

  fs::path dir_;
  std::uint32_t psn_ = 0;
};

TEST_F(RotationFixture, RegionsHaveDistinctRkeysAndVaddrs) {
  RotatingCollector collector(config(), 0, endpoint());
  const auto active = collector.active_info();
  const auto standby = collector.standby_info();
  EXPECT_NE(active.rkey, standby.rkey);
  EXPECT_NE(active.base_vaddr, standby.base_vaddr);
  EXPECT_EQ(active.qpn, standby.qpn);  // one QP serves both regions
}

TEST_F(RotationFixture, ReportsLandInActiveRegionOnly) {
  RotatingCollector collector(config(), 0, endpoint());
  for (std::uint32_t n = 0; n < 2; ++n) {
    report(collector, collector.active_info(), 1, 0x11, n);
  }
  EXPECT_EQ(collector.query(sim_key(1)).outcome, QueryOutcome::kFound);
  EXPECT_EQ(collector.query_standby(sim_key(1)).outcome, QueryOutcome::kEmpty);
}

TEST_F(RotationFixture, FlipSwapsRegions) {
  RotatingCollector collector(config(), 0, endpoint());
  const auto before = collector.active_info();
  collector.flip();
  EXPECT_EQ(collector.current_epoch(), 1u);
  EXPECT_EQ(collector.standby_info().rkey, before.rkey);
  EXPECT_NE(collector.active_info().rkey, before.rkey);
}

TEST_F(RotationFixture, GracePeriodAcceptsInFlightReportsToOldRkey) {
  RotatingCollector collector(config(), 0, endpoint());
  const auto old_row = collector.active_info();
  collector.flip();
  // A report crafted against the OLD directory row is still in flight: it
  // must land (the old MR stays registered until sealed).
  report(collector, old_row, 7, 0x77, 0);
  report(collector, old_row, 7, 0x77, 1);
  EXPECT_EQ(collector.query_standby(sim_key(7)).outcome, QueryOutcome::kFound);
  // And the active (new) region is untouched by it.
  EXPECT_EQ(collector.query(sim_key(7)).outcome, QueryOutcome::kEmpty);
}

TEST_F(RotationFixture, SealArchivesAndClearsPreviousRegion) {
  RotatingCollector collector(config(), 0, endpoint());
  for (std::uint64_t k = 0; k < 50; ++k) {
    for (std::uint32_t n = 0; n < 2; ++n) {
      report(collector, collector.active_info(), k, 1000 + k, n);
    }
  }
  collector.flip();
  const auto sealed = collector.seal_previous(path("e0.dart"));
  ASSERT_TRUE(sealed.ok());
  EXPECT_GT(sealed.value(), 80u);

  // The sealed region is empty again...
  EXPECT_EQ(collector.query_standby(sim_key(3)).outcome, QueryOutcome::kEmpty);
  // ...and history answers from the archive.
  auto reader = EpochArchiveReader::open(path("e0.dart"));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().epoch(), 0u);
  const auto hit = reader.value().query(sim_key(3));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, value_of(1003));
}

TEST_F(RotationFixture, MultiEpochLifecycleWithControllerAndSwitch) {
  // The full loop: controller publishes the active row; a switch reports;
  // flip → push update → switch drains onto the new region; seal old.
  RotatingCollector collector(config(), 0, endpoint());
  DeploymentController controller(config());
  controller.register_collector(collector.active_info());

  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = config();
  sc.write_mode = WriteMode::kAllSlots;
  switchsim::DartSwitchPipeline sw(sc);
  ASSERT_TRUE(controller.attach_switch(sw).ok());

  auto report_via_switch = [&](std::uint64_t key_id, std::uint64_t v) {
    for (const auto& frame :
         sw.on_telemetry(sim_key(key_id), value_of(v))) {
      ASSERT_TRUE(collector.rnic().process_frame(frame).has_value());
    }
  };

  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    for (std::uint64_t k = 0; k < 30; ++k) {
      report_via_switch(k, epoch * 1000 + k);
    }
    collector.flip();
    controller.register_collector(collector.active_info());  // new rkey row
    EXPECT_EQ(controller.push_updates(), 1u);
    ASSERT_TRUE(collector
                    .seal_previous(path("e" + std::to_string(epoch) + ".dart"))
                    .ok());
  }

  // Each epoch's archive carries that epoch's generation of values.
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    auto reader =
        EpochArchiveReader::open(path("e" + std::to_string(epoch) + ".dart"));
    ASSERT_TRUE(reader.ok());
    const auto hit = reader.value().query(sim_key(11));
    ASSERT_TRUE(hit.has_value()) << "epoch " << epoch;
    EXPECT_EQ(*hit, value_of(epoch * 1000 + 11));
  }
}

TEST_F(RotationFixture, WrongRkeyStillRejected) {
  RotatingCollector collector(config(), 0, endpoint());
  auto bogus = collector.active_info();
  bogus.rkey ^= 0xFFFF;
  const ReportCrafter crafter(config());
  ReporterEndpoint src;
  const auto frame =
      crafter.craft_write(bogus, src, sim_key(1), value_of(1), 0, 0);
  EXPECT_FALSE(collector.rnic().process_frame(frame).has_value());
  EXPECT_EQ(collector.rnic().counters().bad_rkey, 1u);
}

}  // namespace
}  // namespace dart::core
