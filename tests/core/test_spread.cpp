// Tests for SpreadCluster — the §3.1 single-collector vs spread-copies
// placement trade-off (resiliency vs query locality).
#include "core/spread.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/oracle.hpp"

namespace dart::core {
namespace {

DartConfig config() {
  DartConfig cfg;
  cfg.n_slots = 1 << 12;
  cfg.n_addresses = 2;
  cfg.value_bytes = 8;
  cfg.master_seed = 0x5B;
  return cfg;
}

std::vector<std::byte> value_of(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

TEST(SpreadCluster, SingleModeKeepsCopiesTogether) {
  SpreadCluster cluster(config(), 4, PlacementMode::kSingleCollector);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto key = sim_key(i);
    EXPECT_EQ(cluster.collector_for_copy(key, 0),
              cluster.collector_for_copy(key, 1));
  }
}

TEST(SpreadCluster, SpreadModeSeparatesCopies) {
  SpreadCluster cluster(config(), 4, PlacementMode::kSpreadCopies);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto key = sim_key(i);
    EXPECT_NE(cluster.collector_for_copy(key, 0),
              cluster.collector_for_copy(key, 1));
  }
}

TEST(SpreadCluster, BothModesAnswerQueries) {
  for (const auto mode :
       {PlacementMode::kSingleCollector, PlacementMode::kSpreadCopies}) {
    SpreadCluster cluster(config(), 4, mode);
    for (std::uint64_t i = 0; i < 100; ++i) {
      cluster.write(sim_key(i), value_of(i));
    }
    int found = 0;
    for (std::uint64_t i = 0; i < 100; ++i) {
      const auto r = cluster.query(sim_key(i));
      if (r.outcome == QueryOutcome::kFound) {
        std::uint64_t got;
        std::memcpy(&got, r.value.data(), 8);
        EXPECT_EQ(got, i);
        ++found;
      }
    }
    EXPECT_GE(found, 98) << "mode " << static_cast<int>(mode);
  }
}

TEST(SpreadCluster, QueryFanOutCost) {
  // The paper's stated cost of spreading: queries touch more collectors.
  SpreadCluster single(config(), 4, PlacementMode::kSingleCollector);
  SpreadCluster spread(config(), 4, PlacementMode::kSpreadCopies);
  for (std::uint64_t i = 0; i < 200; ++i) {
    single.write(sim_key(i), value_of(i));
    spread.write(sim_key(i), value_of(i));
  }
  for (std::uint64_t i = 0; i < 200; ++i) {
    (void)single.query(sim_key(i));
    (void)spread.query(sim_key(i));
  }
  EXPECT_EQ(single.query_stats().collector_reads, 200u);       // 1 per query
  EXPECT_EQ(spread.query_stats().collector_reads, 2u * 200u);  // N per query
}

TEST(SpreadCluster, CollectorFailureSingleModeLosesWholeKeys) {
  SpreadCluster cluster(config(), 4, PlacementMode::kSingleCollector);
  constexpr std::uint64_t kKeys = 400;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    cluster.write(sim_key(i), value_of(i));
  }
  cluster.fail_collector(0);
  std::uint64_t lost = 0, found = 0;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const auto r = cluster.query(sim_key(i));
    (r.outcome == QueryOutcome::kFound ? found : lost) += 1;
  }
  // All keys owned by collector 0 (≈1/4) are gone entirely.
  EXPECT_NEAR(static_cast<double>(lost) / kKeys, 0.25, 0.07);
}

TEST(SpreadCluster, CollectorFailureSpreadModeKeepsOneCopy) {
  SpreadCluster cluster(config(), 4, PlacementMode::kSpreadCopies);
  constexpr std::uint64_t kKeys = 400;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    cluster.write(sim_key(i), value_of(i));
  }
  cluster.fail_collector(0);
  std::uint64_t found = 0;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    if (cluster.query(sim_key(i)).outcome == QueryOutcome::kFound) ++found;
  }
  // Every key keeps its other copy on a live collector (minus rare slot
  // collisions at this low load): near-total availability.
  EXPECT_GE(static_cast<double>(found) / kKeys, 0.97);
}

TEST(SpreadCluster, RestoreBringsCollectorBack) {
  SpreadCluster cluster(config(), 2, PlacementMode::kSingleCollector);
  cluster.fail_collector(0);
  EXPECT_TRUE(cluster.is_failed(0));
  // Writes while failed are lost.
  const auto key = sim_key(7);
  const bool owned_by_0 = cluster.collector_for_copy(key, 0) == 0;
  cluster.write(key, value_of(1));
  cluster.restore_collector(0);
  const auto r = cluster.query(key);
  if (owned_by_0) {
    EXPECT_EQ(r.outcome, QueryOutcome::kEmpty);
  } else {
    EXPECT_EQ(r.outcome, QueryOutcome::kFound);
  }
  // Writes after restore land.
  cluster.write(key, value_of(2));
  EXPECT_EQ(cluster.query(key).outcome, QueryOutcome::kFound);
}

TEST(SpreadCluster, ConsensusWorksAcrossCollectors) {
  SpreadCluster cluster(config(), 4, PlacementMode::kSpreadCopies);
  cluster.write(sim_key(1), value_of(0xAA));
  const auto r = cluster.query(sim_key(1), ReturnPolicy::kConsensusTwo);
  ASSERT_EQ(r.outcome, QueryOutcome::kFound);
  EXPECT_EQ(r.checksum_matches, 2u);
}

}  // namespace
}  // namespace dart::core
