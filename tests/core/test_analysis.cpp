// Tests for the §4 closed-form analysis: limits, monotonicity, the paper's
// quoted numbers, and consistency between bounds.
#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dart::core {
namespace {

TEST(Analysis, ZeroLoadIsPerfect) {
  for (unsigned n = 1; n <= 8; ++n) {
    EXPECT_EQ(p_slot_overwritten(0.0, n), 0.0);
    EXPECT_EQ(p_all_overwritten(0.0, n), 0.0);
    EXPECT_EQ(p_survives(0.0, n), 1.0);
  }
}

TEST(Analysis, InfiniteLoadIsHopeless) {
  for (unsigned n = 1; n <= 8; ++n) {
    EXPECT_NEAR(p_survives(1e6, n), 0.0, 1e-12);
  }
}

TEST(Analysis, KnownClosedFormValues) {
  // N=1: survival = e^{-α}.
  EXPECT_NEAR(p_survives(1.0, 1), std::exp(-1.0), 1e-12);
  // N=2, α=0.5: p = 1-e^{-1}; survival = 1-p².
  const double p = 1.0 - std::exp(-1.0);
  EXPECT_NEAR(p_survives(0.5, 2), 1.0 - p * p, 1e-12);
}

TEST(Analysis, PaperQuotedOldestQueryability) {
  // §5.2: 100M flows, 3GB storage, 24B slots (160-bit value + 32-bit csum),
  // N=2 → theory predicts ≈38.7% for the oldest reports.
  // With decimal-GB slots (125M) this formula gives ≈0.363; the paper's
  // quoted 38.7% corresponds to a slightly larger effective M (e.g. binary
  // gigabytes). Accept the band around both readings.
  const double n_slots = 3e9 / 24.0;
  const double oldest = oldest_success(100e6, n_slots, 2);
  EXPECT_NEAR(oldest, 0.387, 0.04);
  // Binary-GB reading: 3·2^30 / 24B = 134.2M slots → ≈0.40.
  EXPECT_NEAR(oldest_success(100e6, 3.0 * (1ull << 30) / 24.0, 2), 0.40, 0.02);
}

TEST(Analysis, PaperQuotedAverageQueryability) {
  // Same setting: average across all ages ≈71.4% (paper's measured value;
  // theory should be within a couple of points).
  const double n_slots = 3e9 / 24.0;
  const double avg = average_success_over_ages(100e6, n_slots, 2);
  EXPECT_NEAR(avg, 0.714, 0.03);
}

TEST(Analysis, TenXStorageReaches99Percent) {
  // §5.2: raising storage to 30GB lifts average queryability to ~99.3%.
  const double n_slots = 30e9 / 24.0;
  const double avg = average_success_over_ages(100e6, n_slots, 2);
  EXPECT_GT(avg, 0.99);
  EXPECT_NEAR(avg, 0.993, 0.01);
}

TEST(Analysis, SurvivalDecreasesWithLoad) {
  for (unsigned n : {1u, 2u, 4u}) {
    double prev = 1.0;
    for (double a = 0.05; a < 4.0; a += 0.05) {
      const double s = p_survives(a, n);
      EXPECT_LT(s, prev) << "alpha=" << a << " n=" << n;
      prev = s;
    }
  }
}

TEST(Analysis, RedundancyHelpsAtLowLoad) {
  // Fig. 3's key message: at low α, larger N wins.
  EXPECT_GT(p_survives(0.1, 2), p_survives(0.1, 1));
  EXPECT_GT(p_survives(0.05, 4), p_survives(0.05, 2));
  EXPECT_GT(p_survives(0.01, 8), p_survives(0.01, 4));
}

TEST(Analysis, RedundancyHurtsAtHighLoad) {
  // ...and at high α, extra copies only displace other keys.
  EXPECT_GT(p_survives(3.0, 1), p_survives(3.0, 2));
  EXPECT_GT(p_survives(2.0, 2), p_survives(2.0, 8));
}

TEST(Analysis, OptimalNMatchesDirectMaximization) {
  for (double a : {0.01, 0.05, 0.2, 0.5, 1.0, 2.0, 4.0}) {
    const unsigned best = optimal_n(a, 8);
    const double best_p = p_survives(a, best);
    for (unsigned n = 1; n <= 8; ++n) {
      EXPECT_GE(best_p, p_survives(a, n)) << "alpha=" << a;
    }
  }
}

TEST(Analysis, OptimalNDecreasesWithLoad) {
  unsigned prev = 9;
  for (double a : {0.01, 0.1, 0.5, 1.0, 2.0, 8.0}) {
    const unsigned n = optimal_n(a, 8);
    EXPECT_LE(n, prev) << "alpha=" << a;
    prev = n;
  }
  EXPECT_EQ(optimal_n(8.0, 8), 1u);
}

TEST(Analysis, CrossoverBracketsFound) {
  // Fig. 3's shading boundaries: N=1 overtakes N=2 near α ≈ 0.49.
  const double x12 = crossover_alpha(1, 2, 0.2, 1.0);
  ASSERT_GT(x12, 0.0);
  EXPECT_NEAR(p_survives(x12, 1), p_survives(x12, 2), 1e-9);
  // And N=2 overtakes N=4 earlier.
  const double x24 = crossover_alpha(2, 4, 0.1, 2.0);
  ASSERT_GT(x24, 0.0);
  EXPECT_LT(x24, x12);
}

TEST(Analysis, CrossoverUnbracketedIsNegative) {
  EXPECT_LT(crossover_alpha(1, 2, 0.0001, 0.001), 0.0);
}

TEST(Analysis, EmptyNoMatchBelowAllOverwritten) {
  for (double a : {0.2, 0.7, 1.5}) {
    for (unsigned n : {1u, 2u, 4u}) {
      const double all = p_all_overwritten(a, n);
      const double empty = p_empty_no_match(a, n, 16);
      EXPECT_LE(empty, all);
      EXPECT_GE(empty, 0.0);
    }
  }
}

TEST(Analysis, LargeChecksumKillsReturnErrors) {
  const double lo32 = p_return_error_lower(1.0, 2, 32);
  const double hi32 = p_return_error_upper(1.0, 2, 32);
  EXPECT_LT(hi32, 1e-8);
  EXPECT_LE(lo32, hi32);
  // With b=1, errors are rampant.
  EXPECT_GT(p_return_error_upper(1.0, 2, 1), 0.1);
}

TEST(Analysis, BoundsAreOrdered) {
  for (double a : {0.1, 0.5, 1.0, 2.0}) {
    for (unsigned n : {2u, 3u, 4u, 8u}) {
      for (unsigned b : {1u, 4u, 8u, 16u}) {
        EXPECT_LE(p_return_error_lower(a, n, b), p_return_error_upper(a, n, b))
            << "a=" << a << " n=" << n << " b=" << b;
        EXPECT_LE(p_ambiguous_lower(a, n, b), p_ambiguous_upper(a, n, b) + 1e-15)
            << "a=" << a << " n=" << n << " b=" << b;
      }
    }
  }
}

TEST(Analysis, ErrorUpperDecreasesWithChecksumBits) {
  for (unsigned b = 1; b < 24; ++b) {
    EXPECT_GT(p_return_error_upper(1.0, 2, b),
              p_return_error_upper(1.0, 2, b + 1));
  }
}

TEST(Analysis, AverageIsBetweenOldestAndOne) {
  const double k = 5e5;
  const double m = 1e6;
  const double avg = average_success_over_ages(k, m, 2);
  const double oldest = oldest_success(k, m, 2);
  EXPECT_GT(avg, oldest);
  EXPECT_LT(avg, 1.0);
}

TEST(Analysis, AverageOfZeroKeysIsOne) {
  EXPECT_EQ(average_success_over_ages(0.0, 1e6, 2), 1.0);
}

// Property: N=1 ambiguity is impossible (sum is empty).
TEST(Analysis, NoAmbiguityForSingleCopy) {
  EXPECT_EQ(p_ambiguous_lower(1.0, 1, 8), 0.0);
}

}  // namespace
}  // namespace dart::core
