// Tests for the §7 atomic extensions: CAS-insert store, flow counters,
// count-min sketch.
#include "core/atomics_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <barrier>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "core/oracle.hpp"
#include "core/query.hpp"

namespace dart::core {
namespace {

DartConfig config(std::uint64_t slots = 1 << 12) {
  DartConfig cfg;
  cfg.n_slots = slots;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 8;
  cfg.master_seed = 31;
  return cfg;
}

std::vector<std::byte> value_of(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

TEST(CasInsertStore, FillsBothSlotsWhenEmpty) {
  DartStore store(config());
  CasInsertStore cas(store);
  cas.write(sim_key(1), value_of(7));
  EXPECT_EQ(cas.cas_attempts(), 1u);
  EXPECT_EQ(cas.cas_successes(), 1u);
  const QueryEngine q(store);
  const auto r = q.resolve(sim_key(1), ReturnPolicy::kConsensusTwo);
  EXPECT_EQ(r.outcome, QueryOutcome::kFound);  // both copies present
}

TEST(CasInsertStore, SecondSlotProtectedFromLaterKeys) {
  // Key A fills both slots; key B whose copy-1 collides with A's copy-1
  // must NOT overwrite it (CAS fails on non-empty), unlike plain writes.
  DartConfig tiny = config(/*slots=*/8);  // force collisions
  DartStore store(tiny);
  CasInsertStore cas(store);

  // Find two keys whose copy-1 slots collide but copy-0 slots differ.
  std::uint64_t a = 0, b = 0;
  bool found = false;
  for (std::uint64_t i = 0; i < 64 && !found; ++i) {
    for (std::uint64_t j = i + 1; j < 64 && !found; ++j) {
      if (store.slot_index(sim_key(i), 1) == store.slot_index(sim_key(j), 1) &&
          store.slot_index(sim_key(i), 0) != store.slot_index(sim_key(j), 0) &&
          store.slot_index(sim_key(i), 0) != store.slot_index(sim_key(j), 1) &&
          store.slot_index(sim_key(i), 1) != store.slot_index(sim_key(j), 0) &&
          store.slot_index(sim_key(i), 0) != store.slot_index(sim_key(i), 1) &&
          store.slot_index(sim_key(j), 0) != store.slot_index(sim_key(j), 1)) {
        a = i;
        b = j;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);

  cas.write(sim_key(a), value_of(0xA));
  cas.write(sim_key(b), value_of(0xB));
  EXPECT_EQ(cas.cas_successes(), 1u);  // B's CAS lost

  // A's copy-1 data survived B.
  const auto slot = store.read_slot(store.slot_index(sim_key(a), 1));
  EXPECT_EQ(slot.checksum, store.key_checksum(sim_key(a)));
}

// Regression for the check-then-write race: several threads race their CAS
// for ONE empty copy-1 slot; exactly one claim may win. The original
// implementation checked slot_empty() and then wrote, so concurrent writers
// could all observe "empty" and all count a success. Run under TSan via the
// tier-1 sanitizer matrix (tools/check_sanitize.sh).
TEST(CasInsertStore, ConcurrentClaimsResolveToOneWinner) {
  DartConfig tiny = config(/*slots=*/64);
  constexpr std::size_t kContenders = 4;
  constexpr int kRounds = 50;

  // Contender keys: all share one copy-1 slot; every other slot index
  // involved (each key's copy-0, across all keys) is pairwise distinct from
  // the others and from the contended slot, so only the CAS path is ever
  // contended (copy-0 writes stay single-writer).
  const DartStore probe(tiny);
  std::vector<std::uint64_t> contenders;
  std::uint64_t target_slot = 0;
  for (std::uint64_t anchor = 0; anchor < 512 && contenders.empty(); ++anchor) {
    std::vector<std::uint64_t> group{anchor};
    std::vector<std::uint64_t> used{probe.slot_index(sim_key(anchor), 0)};
    const std::uint64_t shared = probe.slot_index(sim_key(anchor), 1);
    if (used[0] == shared) continue;
    for (std::uint64_t k = anchor + 1; k < 4096 && group.size() < kContenders;
         ++k) {
      if (probe.slot_index(sim_key(k), 1) != shared) continue;
      const std::uint64_t copy0 = probe.slot_index(sim_key(k), 0);
      if (copy0 == shared ||
          std::find(used.begin(), used.end(), copy0) != used.end()) {
        continue;
      }
      group.push_back(k);
      used.push_back(copy0);
    }
    if (group.size() == kContenders) {
      contenders = group;
      target_slot = shared;
    }
  }
  ASSERT_EQ(contenders.size(), kContenders);

  for (int round = 0; round < kRounds; ++round) {
    DartStore store(tiny);
    CasInsertStore cas(store);
    std::barrier gate(kContenders);
    std::vector<std::thread> threads;
    threads.reserve(kContenders);
    for (std::size_t t = 0; t < kContenders; ++t) {
      threads.emplace_back([&, t] {
        gate.arrive_and_wait();  // maximize overlap at the claim
        cas.write(sim_key(contenders[t]), value_of(0x100 + t));
      });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(cas.cas_attempts(), kContenders);
    ASSERT_EQ(cas.cas_successes(), 1u) << "round " << round;
    // The contended slot holds the winner's full payload, untorn: its
    // checksum identifies exactly one contender and the value is that
    // contender's, not a mix.
    const auto slot = store.read_slot(target_slot);
    int matches = 0;
    for (std::size_t t = 0; t < kContenders; ++t) {
      if (slot.checksum != store.key_checksum(sim_key(contenders[t]))) continue;
      ++matches;
      const auto expect = value_of(0x100 + t);
      EXPECT_TRUE(std::memcmp(slot.value.data(), expect.data(), 8) == 0);
    }
    EXPECT_EQ(matches, 1) << "round " << round;
  }
}

TEST(CasInsertStore, SlotEmptyDetection) {
  DartStore store(config());
  CasInsertStore cas(store);
  EXPECT_TRUE(cas.slot_empty(0));
  cas.write(sim_key(9), value_of(1));
  EXPECT_FALSE(cas.slot_empty(store.slot_index(sim_key(9), 0)));
}

TEST(CasInsertStore, ImprovesQueryabilityOverPlainWritesAtHighLoad) {
  // The §7 claim: write+CAS "can potentially improve queryability" — check
  // it does, with ground truth, at a load where churn matters.
  const std::uint64_t kKeys = 6000;
  DartConfig cfg = config(1 << 12);  // α ≈ 1.46

  DartStore plain_store(cfg);
  DartStore cas_store(cfg);
  CasInsertStore cas(cas_store);
  Oracle plain_oracle, cas_oracle;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    plain_store.write(sim_key(i), value_of(i));
    cas.write(sim_key(i), value_of(i));
    plain_oracle.record(i, value_of(i));
    cas_oracle.record(i, value_of(i));
  }
  const QueryEngine pq(plain_store);
  const QueryEngine cq(cas_store);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    (void)plain_oracle.classify(i, pq.resolve(sim_key(i)));
    (void)cas_oracle.classify(i, cq.resolve(sim_key(i)));
  }
  EXPECT_GT(cas_oracle.counts().success_rate(),
            plain_oracle.counts().success_rate());
}

TEST(FlowCounterArray, FetchAddSemantics) {
  FlowCounterArray counters(1024, 1);
  const auto key = sim_key(5);
  EXPECT_EQ(counters.fetch_add(key, 3), 0u);  // returns prior
  EXPECT_EQ(counters.fetch_add(key, 4), 3u);
  EXPECT_EQ(counters.read(key), 7u);
}

TEST(FlowCounterArray, DistinctKeysUsuallyDistinctCells) {
  FlowCounterArray counters(1 << 16, 2);
  (void)counters.fetch_add(sim_key(1), 1);
  (void)counters.fetch_add(sim_key(2), 10);
  // With 64K cells the two keys almost surely differ (seed-pinned).
  ASSERT_NE(counters.index_of(sim_key(1)), counters.index_of(sim_key(2)));
  EXPECT_EQ(counters.read(sim_key(1)), 1u);
  EXPECT_EQ(counters.read(sim_key(2)), 10u);
}

TEST(CountMinSketch, NeverUndercounts) {
  CountMinSketch sketch(4, 1024, 3);
  for (std::uint64_t i = 0; i < 500; ++i) {
    sketch.add(sim_key(i), i % 7 + 1);
  }
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_GE(sketch.estimate(sim_key(i)), i % 7 + 1) << i;
  }
}

TEST(CountMinSketch, ExactWhenSparse) {
  CountMinSketch sketch(4, 1 << 14, 3);
  sketch.add(sim_key(1), 100);
  sketch.add(sim_key(2), 50);
  EXPECT_EQ(sketch.estimate(sim_key(1)), 100u);
  EXPECT_EQ(sketch.estimate(sim_key(2)), 50u);
  EXPECT_EQ(sketch.estimate(sim_key(3)), 0u);
}

TEST(CountMinSketch, CellIndicesMatchAdd) {
  CountMinSketch sketch(3, 256, 5);
  const auto idx = sketch.cell_indices(sim_key(42));
  ASSERT_EQ(idx.size(), 3u);
  sketch.add(sim_key(42), 9);
  for (std::uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(sketch.cells()[idx[r]], 9u);
    EXPECT_EQ(idx[r] / 256, r);  // row-major layout
  }
}

// Regression for the non-atomic `+=` in fetch_add: N threads each add 1 to
// ONE shared cell, and each must observe a distinct prior value — the priors
// form a permutation of 0..n-1 exactly when every RMW was atomic. The plain
// `+=` both lost increments (final sum short) and duplicated priors.
TEST(FlowCounterArrayHammer, ConcurrentFetchAddOneCellIsLossless) {
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 4096;
  FlowCounterArray counters(64, 9);
  const auto key = sim_key(3);

  std::vector<std::vector<std::uint64_t>> priors(kThreads);
  std::barrier gate(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      priors[t].reserve(kAddsPerThread);
      gate.arrive_and_wait();
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        priors[t].push_back(counters.fetch_add(key, 1));
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::uint64_t total = kThreads * kAddsPerThread;
  EXPECT_EQ(counters.read(key), total);  // no lost increments
  std::vector<std::uint64_t> all;
  all.reserve(total);
  for (const auto& p : priors) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < total; ++i) {
    ASSERT_EQ(all[i], i);  // priors are a permutation of 0..total-1
  }
}

// Same property for the sketch: concurrent adds over many keys conserve the
// per-row sum (every row absorbs every delta exactly once).
TEST(CountMinSketchHammer, ConcurrentAddsConserveRowSums) {
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 2048;
  constexpr std::uint32_t kRows = 4;
  constexpr std::uint64_t kCols = 128;
  CountMinSketch sketch(kRows, kCols, 11);

  std::barrier gate(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        // Distinct key streams per thread; delta in 1..4.
        sketch.add(sim_key(t * kAddsPerThread + i), i % 4 + 1);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t expected_per_row = 0;
  for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
    expected_per_row += (i % 4 + 1) * kThreads;
  }
  for (std::uint32_t r = 0; r < kRows; ++r) {
    std::uint64_t row_sum = 0;
    for (std::uint64_t c = 0; c < kCols; ++c) {
      row_sum += sketch.cells()[r * kCols + c];
    }
    EXPECT_EQ(row_sum, expected_per_row) << "row " << r;
  }
}

// The geometry guard must fail loudly in NDEBUG builds too: a mismatched
// merge walks out of bounds if allowed to proceed, so assert-only checking
// (compiled out of release) was a real out-of-bounds write in release.
TEST(CountMinSketch, MergeGeometryMismatchThrows) {
  CountMinSketch base(4, 512, 7);
  CountMinSketch fewer_rows(3, 512, 7);
  CountMinSketch fewer_cols(4, 256, 7);
  EXPECT_THROW(base.merge(fewer_rows), std::invalid_argument);
  EXPECT_THROW(base.merge(fewer_cols), std::invalid_argument);
  // The failed merges must not have touched the target.
  for (std::uint64_t cell : base.cells()) EXPECT_EQ(cell, 0u);
  // Same geometry, different seed, is still a valid merge (the seeds only
  // matter for estimate consistency, which callers own).
  CountMinSketch same_geometry(4, 512, 9);
  EXPECT_NO_THROW(base.merge(same_geometry));
}

TEST(CountMinSketch, MergeEqualsCombinedStream) {
  // Network-wide aggregation (§7): the sum of two switches' sketches equals
  // one sketch fed both streams — what collector-side FETCH_ADD achieves.
  CountMinSketch sw1(4, 512, 7), sw2(4, 512, 7), combined(4, 512, 7);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const auto key = sim_key(i % 50);
    if (i % 2 == 0) {
      sw1.add(key, 1);
    } else {
      sw2.add(key, 1);
    }
    combined.add(key, 1);
  }
  sw1.merge(sw2);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(sw1.estimate(sim_key(i)), combined.estimate(sim_key(i)));
  }
}

}  // namespace
}  // namespace dart::core
