// OperatorClient request-deadline tests (query_service.hpp): a lost
// response no longer parks its id forever — the deadline fires, the request
// is re-sent under a FRESH wire id, and exhausted retries fail the request
// with a timeout mark. The regression this file pins: when the "lost"
// original answer was merely LATE, both it and the retry's answer arrive,
// and the pair must retire the logical request exactly once.
#include "core/query_service.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "core/cluster.hpp"
#include "net/headers.hpp"
#include "net/netsim.hpp"

namespace dart::core {
namespace {

std::vector<std::byte> key_of(std::uint64_t k) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &k, 8);
  return out;
}

// Eats the first `n` packets, then forwards faithfully.
class DropFirstRelay final : public net::Node {
 public:
  DropFirstRelay(net::NodeId target, std::uint32_t n)
      : target_(target), to_drop_(n) {}
  void receive(net::Packet packet, std::uint64_t) override {
    if (to_drop_ > 0) {
      --to_drop_;
      return;
    }
    sim_->send(self_, target_, std::move(packet));
  }

 private:
  net::NodeId target_;
  std::uint32_t to_drop_;
};

// Holds the first `n` packets for `delay_ns`, then forwards; later packets
// pass straight through. Models a stalled queue, not a loss: the "lost"
// packet eventually arrives.
class DelayFirstRelay final : public net::Node {
 public:
  DelayFirstRelay(net::NodeId target, std::uint32_t n, std::uint64_t delay_ns)
      : target_(target), to_delay_(n), delay_ns_(delay_ns) {}
  void receive(net::Packet packet, std::uint64_t now_ns) override {
    if (to_delay_ > 0) {
      --to_delay_;
      auto held = std::make_shared<net::Packet>(std::move(packet));
      sim_->schedule(now_ns + delay_ns_, [this, held] {
        sim_->send(self_, target_, std::move(*held));
      });
      return;
    }
    sim_->send(self_, target_, std::move(packet));
  }

 private:
  net::NodeId target_;
  std::uint32_t to_delay_;
  std::uint64_t delay_ns_;
};

// One collector, one service, one client; the request path runs through a
// test-owned relay so loss and delay are injectable per packet.
class TimeoutHarness {
 public:
  explicit TimeoutHarness(std::uint64_t seed = 0x71AE) {
    cfg_.n_slots = 1 << 8;
    cfg_.n_addresses = 2;
    cfg_.value_bytes = 8;
    cfg_.master_seed = seed;
    cluster_ = std::make_unique<CollectorCluster>(cfg_, 1);
    auto resolver = [this](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
      for (const auto& [addr, node] : arp_) {
        if (addr == ip) return node;
      }
      return std::nullopt;
    };
    service_ip_ = net::Ipv4Addr::from_octets(10, 0, 50, 0);
    operator_ip_ = net::Ipv4Addr::from_octets(10, 9, 0, 1);
    service_ = std::make_unique<QueryServiceNode>(cluster_->collector(0),
                                                  service_ip_, resolver);
    operator_ = std::make_unique<OperatorClient>(
        cluster_->crafter(), operator_ip_,
        std::vector<net::Ipv4Addr>{service_ip_}, resolver);
    svc_node_ = sim_.add_node(*service_);
    op_node_ = sim_.add_node(*operator_);
    arp_.emplace_back(service_ip_, svc_node_);
    arp_.emplace_back(operator_ip_, op_node_);
    sim_.connect(op_node_, svc_node_, /*latency_ns=*/1000);
  }

  // Splices `relay` into the request path (everything resolving the service
  // IP now lands on the relay, which forwards to the real service).
  void splice_request_path(std::unique_ptr<net::Node> relay) {
    relay_ = std::move(relay);
    const auto relay_node = sim_.add_node(*relay_);
    sim_.connect(relay_node, op_node_, 500);
    sim_.connect(relay_node, svc_node_, 500);
    for (auto& [addr, node] : arp_) {
      if (addr == service_ip_) node = relay_node;
    }
  }

  core::DartConfig cfg_;
  std::unique_ptr<CollectorCluster> cluster_;
  net::Simulator sim_{1};
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp_;
  net::Ipv4Addr service_ip_{};
  net::Ipv4Addr operator_ip_{};
  std::unique_ptr<QueryServiceNode> service_;
  std::unique_ptr<OperatorClient> operator_;
  std::unique_ptr<net::Node> relay_;
  net::NodeId svc_node_{};
  net::NodeId op_node_{};
};

TEST(OperatorTimeout, ExhaustedRetriesFailTheRequest) {
  TimeoutHarness h;
  h.service_->set_online(false);  // every request is eaten
  h.operator_->enable_timeouts(/*timeout_ns=*/100'000, /*max_retries=*/2);

  const auto key = key_of(1);
  h.cluster_->write(key, key_of(11));
  const auto id = h.operator_->query(key);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(h.operator_->pending(), 1u);
  h.sim_.run();

  EXPECT_EQ(h.operator_->pending(), 0u);
  EXPECT_EQ(h.operator_->retries(), 2u);
  EXPECT_EQ(h.operator_->timeouts(), 1u);
  EXPECT_TRUE(h.operator_->timed_out(id));
  EXPECT_FALSE(h.operator_->take_response(id).has_value());
  EXPECT_EQ(h.operator_->responses_received(), 0u);
}

TEST(OperatorTimeout, RetryUnderFreshIdSucceedsAfterLoss) {
  TimeoutHarness h;
  h.operator_->enable_timeouts(/*timeout_ns=*/100'000, /*max_retries=*/2);
  h.splice_request_path(
      std::make_unique<DropFirstRelay>(h.svc_node_, /*n=*/1));

  const auto key = key_of(2);
  h.cluster_->write(key, key_of(22));
  const auto id = h.operator_->query(key);
  h.sim_.run();

  EXPECT_EQ(h.operator_->pending(), 0u);
  EXPECT_EQ(h.operator_->retries(), 1u);
  EXPECT_EQ(h.operator_->timeouts(), 0u);
  EXPECT_FALSE(h.operator_->timed_out(id));
  // The caller's handle is the ORIGINAL id even though the wire id changed.
  const auto resp = h.operator_->take_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->outcome, QueryOutcome::kFound);
  EXPECT_EQ(resp->value, key_of(22));
  EXPECT_EQ(h.operator_->unexpected_responses(), 0u);
}

TEST(OperatorTimeout, LateOriginalPlusRetryAnswerRetireExactlyOnce) {
  // The regression: the original request is DELAYED past the deadline, not
  // lost. The service answers both the late original and the retry; the
  // first answer retires the logical request, the second must count as
  // unexpected — never as a second completion, never corrupting pending().
  TimeoutHarness h;
  h.operator_->enable_timeouts(/*timeout_ns=*/100'000, /*max_retries=*/2);
  h.splice_request_path(std::make_unique<DelayFirstRelay>(
      h.svc_node_, /*n=*/1, /*delay_ns=*/300'000));

  const auto key = key_of(3);
  h.cluster_->write(key, key_of(33));
  const auto id = h.operator_->query(key);
  h.sim_.run();

  EXPECT_EQ(h.service_->requests_served(), 2u);  // late original + retry
  EXPECT_EQ(h.operator_->responses_received(), 1u);
  EXPECT_EQ(h.operator_->unexpected_responses(), 1u);
  EXPECT_EQ(h.operator_->pending(), 0u);
  EXPECT_EQ(h.operator_->retries(), 1u);
  EXPECT_EQ(h.operator_->timeouts(), 0u);
  const auto resp = h.operator_->take_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->value, key_of(33));
  // Taking it twice must not resurrect it.
  EXPECT_FALSE(h.operator_->take_response(id).has_value());
}

TEST(OperatorTimeout, DeadlinesDisarmedByDefaultKeepLegacyBehavior) {
  // Without enable_timeouts a lost response parks the id in pending() —
  // the documented legacy contract (conservation: sent == received +
  // pending) that tools/dart_metrics.cpp checks.
  TimeoutHarness h;
  h.service_->set_online(false);
  const auto id = h.operator_->query(key_of(4));
  ASSERT_NE(id, 0u);
  h.sim_.run();
  EXPECT_EQ(h.operator_->pending(), 1u);
  EXPECT_EQ(h.operator_->timeouts(), 0u);
  EXPECT_EQ(h.operator_->retries(), 0u);
}

TEST(OperatorTimeout, PrimitiveAndSketchRequestsShareTheDeadlinePath) {
  TimeoutHarness h;
  h.service_->set_online(false);
  h.operator_->enable_timeouts(/*timeout_ns=*/100'000, /*max_retries=*/1);

  const auto drain_id = h.operator_->drain_ring(0);
  const auto sketch_id = h.operator_->sketch_estimate(key_of(5));
  ASSERT_NE(drain_id, 0u);
  ASSERT_NE(sketch_id, 0u);
  h.sim_.run();

  EXPECT_EQ(h.operator_->pending(), 0u);
  EXPECT_EQ(h.operator_->timeouts(), 2u);
  EXPECT_TRUE(h.operator_->timed_out(drain_id));
  EXPECT_TRUE(h.operator_->timed_out(sketch_id));
}

}  // namespace
}  // namespace dart::core
