// Tests for the host-side RoCEv2 report crafter: frame validity, slot
// addressing, and the write/atomic operation encodings.
#include "core/report_crafter.hpp"

#include <gtest/gtest.h>

#include <string>

#include "rdma/roce.hpp"

namespace dart::core {
namespace {

DartConfig config() {
  DartConfig cfg;
  cfg.n_slots = 4096;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 20;
  cfg.master_seed = 0xDA27;
  return cfg;
}

RemoteStoreInfo dst_info() {
  RemoteStoreInfo info;
  info.collector_id = 1;
  info.mac = {0x02, 0xC0, 0, 0, 0, 1};
  info.ip = net::Ipv4Addr::from_octets(10, 0, 100, 1);
  info.qpn = 0x101;
  info.rkey = 0xCAFE;
  info.base_vaddr = 0x0000'1000'0000'0000ull;
  info.n_slots = 4096;
  info.slot_bytes = 24;
  return info;
}

ReporterEndpoint src_info() {
  ReporterEndpoint src;
  src.mac = {0x02, 0x5A, 0, 0, 0, 9};
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 9);
  return src;
}

std::span<const std::byte> bytes_of(const std::string& s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

TEST(ReportCrafter, WriteFrameIsValidAndAddressed) {
  const ReportCrafter crafter(config());
  const std::string key = "flow-A";
  std::vector<std::byte> value(20, std::byte{0x42});
  const auto frame =
      crafter.craft_write(dst_info(), src_info(), bytes_of(key), value, 0, 5);

  EXPECT_TRUE(rdma::verify_frame_icrc(frame));
  const auto parsed = net::parse_udp_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.src, src_info().ip);
  EXPECT_EQ(parsed->ip.dst, dst_info().ip);

  const auto req = rdma::parse_request(parsed->payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->bth.psn, 5u);
  EXPECT_EQ(req->bth.dest_qp, 0x101u);
  EXPECT_EQ(req->reth->rkey, 0xCAFEu);
  EXPECT_EQ(req->reth->vaddr,
            crafter.slot_vaddr(dst_info(), bytes_of(key), 0));
  EXPECT_EQ(req->reth->dma_length, 24u);  // checksum(4) + value(20)
}

TEST(ReportCrafter, SlotVaddrUsesHashFamily) {
  const ReportCrafter crafter(config());
  const HashFamily family(2, 0xDA27);
  const std::string key = "flow-B";
  for (std::uint32_t n = 0; n < 2; ++n) {
    const auto idx = family.address_of(bytes_of(key), n, 4096);
    EXPECT_EQ(crafter.slot_vaddr(dst_info(), bytes_of(key), n),
              dst_info().base_vaddr + idx * 24);
  }
}

TEST(ReportCrafter, PayloadPrefixIsKeyChecksum) {
  const ReportCrafter crafter(config());
  const std::string key = "flow-C";
  std::vector<std::byte> value(20, std::byte{0x01});
  const auto frame =
      crafter.craft_write(dst_info(), src_info(), bytes_of(key), value, 1, 0);
  const auto parsed = net::parse_udp_frame(frame);
  const auto req = rdma::parse_request(parsed->payload);
  ASSERT_TRUE(req.has_value());

  const HashFamily family(2, 0xDA27);
  const std::uint32_t want = family.checksum_of(bytes_of(key), 32);
  std::uint32_t got = 0;
  std::memcpy(&got, req->payload.data(), 4);
  EXPECT_EQ(got, want);
  // Value follows.
  EXPECT_EQ(static_cast<std::uint8_t>(req->payload[4]), 0x01);
}

TEST(ReportCrafter, CollectorOfMatchesFamily) {
  const ReportCrafter crafter(config());
  const HashFamily family(2, 0xDA27);
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(crafter.collector_of(bytes_of(key), 16),
              family.collector_of(bytes_of(key), 16));
  }
}

TEST(ReportCrafter, FetchAddFrame) {
  const ReportCrafter crafter(config());
  const auto frame = crafter.craft_fetch_add(dst_info(), src_info(),
                                             0x0000'1000'0000'0040ull, 7, 3);
  EXPECT_TRUE(rdma::verify_frame_icrc(frame));
  const auto parsed = net::parse_udp_frame(frame);
  const auto req = rdma::parse_request(parsed->payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->bth.opcode, rdma::Opcode::kRcFetchAdd);
  ASSERT_TRUE(req->atomic_eth.has_value());
  EXPECT_EQ(req->atomic_eth->vaddr, 0x0000'1000'0000'0040ull);
  EXPECT_EQ(req->atomic_eth->swap_add, 7u);
  EXPECT_EQ(req->bth.psn, 3u);
}

TEST(ReportCrafter, CompareSwapFrame) {
  const ReportCrafter crafter(config());
  const auto frame = crafter.craft_compare_swap(
      dst_info(), src_info(), 0x0000'1000'0000'0080ull, /*compare=*/0,
      /*swap=*/0xAA, 9);
  EXPECT_TRUE(rdma::verify_frame_icrc(frame));
  const auto parsed = net::parse_udp_frame(frame);
  const auto req = rdma::parse_request(parsed->payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->bth.opcode, rdma::Opcode::kRcCompareSwap);
  EXPECT_EQ(req->atomic_eth->compare, 0u);
  EXPECT_EQ(req->atomic_eth->swap_add, 0xAAu);
}

TEST(ReportCrafter, ReportSizeMatchesPaperFraming) {
  // §2 footnote: a 64B packet ≈ 28B headers + 36B report data. Our INT
  // report: Eth(14)+IP(20)+UDP(8)+BTH(12)+RETH(16)+payload(24)+iCRC(4).
  const ReportCrafter crafter(config());
  const std::string key = "flow-D";
  std::vector<std::byte> value(20, std::byte{0});
  const auto frame =
      crafter.craft_write(dst_info(), src_info(), bytes_of(key), value, 0, 0);
  EXPECT_EQ(frame.size(), 14u + 20 + 8 + 12 + 16 + 24 + 4);
}

// --- FrameTemplate fast path: byte identity with the reference crafters ------
//
// The acceptance oracle for the zero-allocation path: for every operation
// kind, craft_*_into through a template must produce frames byte-identical
// to the allocating craft_* reference — including the iCRC / DTA trailer,
// which the template path computes from a cached prefix CRC state.

TEST(FrameTemplate, WriteByteIdenticalAcrossKeysAndPsns) {
  const ReportCrafter crafter(config());
  const auto tpl = crafter.make_write_template(dst_info(), src_info());
  ASSERT_TRUE(tpl.valid());
  ASSERT_EQ(tpl.kind(), FrameTemplate::Kind::kWrite);

  std::vector<std::byte> out(tpl.frame_size());
  const std::uint32_t psns[] = {0, 1, 5, 0x00FF'FFFFu, 0x1234'5678u};
  for (int i = 0; i < 8; ++i) {
    const std::string key = "flow-" + std::to_string(i);
    std::vector<std::byte> value(20, static_cast<std::byte>(0x10 + i));
    for (const std::uint32_t psn : psns) {
      for (std::uint32_t n = 0; n < 2; ++n) {
        const auto ref = crafter.craft_write(dst_info(), src_info(),
                                             bytes_of(key), value, n, psn);
        const std::size_t len =
            crafter.craft_write_into(tpl, bytes_of(key), value, n, psn, out);
        ASSERT_EQ(len, ref.size());
        EXPECT_EQ(std::vector<std::byte>(out.begin(), out.begin() + len), ref)
            << "key=" << key << " n=" << n << " psn=" << psn;
      }
    }
  }
}

TEST(FrameTemplate, FetchAddByteIdentical) {
  const ReportCrafter crafter(config());
  const auto tpl = crafter.make_atomic_template(dst_info(), src_info(),
                                                rdma::Opcode::kRcFetchAdd);
  ASSERT_TRUE(tpl.valid());
  ASSERT_EQ(tpl.kind(), FrameTemplate::Kind::kFetchAdd);

  std::vector<std::byte> out(tpl.frame_size());
  const std::uint64_t vaddrs[] = {0x0000'1000'0000'0040ull,
                                  0x0000'1000'0000'FFF8ull};
  for (const std::uint64_t vaddr : vaddrs) {
    for (std::uint64_t addend : {std::uint64_t{0}, std::uint64_t{7},
                                 std::uint64_t{0xFFFF'FFFF'FFFF'FFFFull}}) {
      for (const std::uint32_t psn : {0u, 3u, 0x00FF'FFFFu}) {
        const auto ref =
            crafter.craft_fetch_add(dst_info(), src_info(), vaddr, addend, psn);
        const std::size_t len =
            crafter.craft_fetch_add_into(tpl, vaddr, addend, psn, out);
        ASSERT_EQ(len, ref.size());
        EXPECT_EQ(std::vector<std::byte>(out.begin(), out.begin() + len), ref);
      }
    }
  }
}

TEST(FrameTemplate, CompareSwapByteIdentical) {
  const ReportCrafter crafter(config());
  const auto tpl = crafter.make_atomic_template(dst_info(), src_info(),
                                                rdma::Opcode::kRcCompareSwap);
  ASSERT_TRUE(tpl.valid());
  ASSERT_EQ(tpl.kind(), FrameTemplate::Kind::kCompareSwap);

  std::vector<std::byte> out(tpl.frame_size());
  for (const std::uint64_t compare : {std::uint64_t{0}, std::uint64_t{0xAA}}) {
    for (const std::uint64_t swap :
         {std::uint64_t{0xAA}, std::uint64_t{0xDEAD'BEEF'CAFE'F00Dull}}) {
      for (const std::uint32_t psn : {9u, 0x00FF'FFFFu}) {
        const auto ref = crafter.craft_compare_swap(
            dst_info(), src_info(), 0x0000'1000'0000'0080ull, compare, swap,
            psn);
        const std::size_t len = crafter.craft_compare_swap_into(
            tpl, 0x0000'1000'0000'0080ull, compare, swap, psn, out);
        ASSERT_EQ(len, ref.size());
        EXPECT_EQ(std::vector<std::byte>(out.begin(), out.begin() + len), ref);
      }
    }
  }
}

TEST(FrameTemplate, MultiwriteByteIdentical) {
  const ReportCrafter crafter(config());
  const auto tpl = crafter.make_multiwrite_template(dst_info(), src_info());
  ASSERT_TRUE(tpl.valid());
  ASSERT_EQ(tpl.kind(), FrameTemplate::Kind::kMultiwrite);

  std::vector<std::byte> out(tpl.frame_size());
  for (int i = 0; i < 8; ++i) {
    const std::string key = "mw-" + std::to_string(i);
    std::vector<std::byte> value(20, static_cast<std::byte>(0x33 + i));
    for (const std::uint32_t psn : {0u, 77u, 0xFFFF'FFFFu}) {
      const auto ref = crafter.craft_multiwrite(dst_info(), src_info(),
                                                bytes_of(key), value, psn);
      const std::size_t len =
          crafter.craft_multiwrite_into(tpl, bytes_of(key), value, psn, out);
      ASSERT_EQ(len, ref.size());
      EXPECT_EQ(std::vector<std::byte>(out.begin(), out.begin() + len), ref)
          << "key=" << key << " psn=" << psn;
    }
  }
}

TEST(FrameTemplate, TemplateFramesVerifyAndParse) {
  // Independent of byte identity: the RNIC-side validators accept template
  // frames on their own terms.
  const ReportCrafter crafter(config());
  const auto tpl = crafter.make_write_template(dst_info(), src_info());
  std::vector<std::byte> out(tpl.frame_size());
  const std::string key = "flow-X";
  std::vector<std::byte> value(20, std::byte{0x55});
  ASSERT_NE(crafter.craft_write_into(tpl, bytes_of(key), value, 1, 42, out),
            0u);
  EXPECT_TRUE(rdma::verify_frame_icrc(out));
  const auto parsed = net::parse_udp_frame(out);
  ASSERT_TRUE(parsed.has_value());
  const auto req = rdma::parse_request(parsed->payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->bth.psn, 42u);
  EXPECT_EQ(req->reth->vaddr, crafter.slot_vaddr(dst_info(), bytes_of(key), 1));
}

TEST(FrameTemplate, RejectsKindMismatchAndUndersizedBuffer) {
  const ReportCrafter crafter(config());
  const auto write_tpl = crafter.make_write_template(dst_info(), src_info());
  const auto fa_tpl = crafter.make_atomic_template(dst_info(), src_info(),
                                                   rdma::Opcode::kRcFetchAdd);
  const std::string key = "flow-Y";
  std::vector<std::byte> value(20, std::byte{0});
  std::vector<std::byte> out(write_tpl.frame_size());

  // Kind mismatch: a write template refuses atomic crafting and vice versa.
  EXPECT_EQ(crafter.craft_fetch_add_into(write_tpl, 0x1000, 1, 0, out), 0u);
  EXPECT_EQ(crafter.craft_write_into(fa_tpl, bytes_of(key), value, 0, 0, out),
            0u);

  // Undersized output buffer.
  std::vector<std::byte> small(write_tpl.frame_size() - 1);
  EXPECT_EQ(
      crafter.craft_write_into(write_tpl, bytes_of(key), value, 0, 0, small),
      0u);

  // Default-constructed template is invalid and crafts nothing.
  const FrameTemplate none;
  EXPECT_FALSE(none.valid());
  EXPECT_EQ(crafter.craft_write_into(none, bytes_of(key), value, 0, 0, out),
            0u);

  // An opcode that is not an atomic yields an invalid template.
  EXPECT_FALSE(crafter
                   .make_atomic_template(dst_info(), src_info(),
                                         rdma::Opcode::kRcRdmaWriteOnly)
                   .valid());
}

}  // namespace
}  // namespace dart::core
