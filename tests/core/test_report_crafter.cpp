// Tests for the host-side RoCEv2 report crafter: frame validity, slot
// addressing, and the write/atomic operation encodings.
#include "core/report_crafter.hpp"

#include <gtest/gtest.h>

#include <string>

#include "rdma/roce.hpp"

namespace dart::core {
namespace {

DartConfig config() {
  DartConfig cfg;
  cfg.n_slots = 4096;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 20;
  cfg.master_seed = 0xDA27;
  return cfg;
}

RemoteStoreInfo dst_info() {
  RemoteStoreInfo info;
  info.collector_id = 1;
  info.mac = {0x02, 0xC0, 0, 0, 0, 1};
  info.ip = net::Ipv4Addr::from_octets(10, 0, 100, 1);
  info.qpn = 0x101;
  info.rkey = 0xCAFE;
  info.base_vaddr = 0x0000'1000'0000'0000ull;
  info.n_slots = 4096;
  info.slot_bytes = 24;
  return info;
}

ReporterEndpoint src_info() {
  ReporterEndpoint src;
  src.mac = {0x02, 0x5A, 0, 0, 0, 9};
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 9);
  return src;
}

std::span<const std::byte> bytes_of(const std::string& s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

TEST(ReportCrafter, WriteFrameIsValidAndAddressed) {
  const ReportCrafter crafter(config());
  const std::string key = "flow-A";
  std::vector<std::byte> value(20, std::byte{0x42});
  const auto frame =
      crafter.craft_write(dst_info(), src_info(), bytes_of(key), value, 0, 5);

  EXPECT_TRUE(rdma::verify_frame_icrc(frame));
  const auto parsed = net::parse_udp_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.src, src_info().ip);
  EXPECT_EQ(parsed->ip.dst, dst_info().ip);

  const auto req = rdma::parse_request(parsed->payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->bth.psn, 5u);
  EXPECT_EQ(req->bth.dest_qp, 0x101u);
  EXPECT_EQ(req->reth->rkey, 0xCAFEu);
  EXPECT_EQ(req->reth->vaddr,
            crafter.slot_vaddr(dst_info(), bytes_of(key), 0));
  EXPECT_EQ(req->reth->dma_length, 24u);  // checksum(4) + value(20)
}

TEST(ReportCrafter, SlotVaddrUsesHashFamily) {
  const ReportCrafter crafter(config());
  const HashFamily family(2, 0xDA27);
  const std::string key = "flow-B";
  for (std::uint32_t n = 0; n < 2; ++n) {
    const auto idx = family.address_of(bytes_of(key), n, 4096);
    EXPECT_EQ(crafter.slot_vaddr(dst_info(), bytes_of(key), n),
              dst_info().base_vaddr + idx * 24);
  }
}

TEST(ReportCrafter, PayloadPrefixIsKeyChecksum) {
  const ReportCrafter crafter(config());
  const std::string key = "flow-C";
  std::vector<std::byte> value(20, std::byte{0x01});
  const auto frame =
      crafter.craft_write(dst_info(), src_info(), bytes_of(key), value, 1, 0);
  const auto parsed = net::parse_udp_frame(frame);
  const auto req = rdma::parse_request(parsed->payload);
  ASSERT_TRUE(req.has_value());

  const HashFamily family(2, 0xDA27);
  const std::uint32_t want = family.checksum_of(bytes_of(key), 32);
  std::uint32_t got = 0;
  std::memcpy(&got, req->payload.data(), 4);
  EXPECT_EQ(got, want);
  // Value follows.
  EXPECT_EQ(static_cast<std::uint8_t>(req->payload[4]), 0x01);
}

TEST(ReportCrafter, CollectorOfMatchesFamily) {
  const ReportCrafter crafter(config());
  const HashFamily family(2, 0xDA27);
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(crafter.collector_of(bytes_of(key), 16),
              family.collector_of(bytes_of(key), 16));
  }
}

TEST(ReportCrafter, FetchAddFrame) {
  const ReportCrafter crafter(config());
  const auto frame = crafter.craft_fetch_add(dst_info(), src_info(),
                                             0x0000'1000'0000'0040ull, 7, 3);
  EXPECT_TRUE(rdma::verify_frame_icrc(frame));
  const auto parsed = net::parse_udp_frame(frame);
  const auto req = rdma::parse_request(parsed->payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->bth.opcode, rdma::Opcode::kRcFetchAdd);
  ASSERT_TRUE(req->atomic_eth.has_value());
  EXPECT_EQ(req->atomic_eth->vaddr, 0x0000'1000'0000'0040ull);
  EXPECT_EQ(req->atomic_eth->swap_add, 7u);
  EXPECT_EQ(req->bth.psn, 3u);
}

TEST(ReportCrafter, CompareSwapFrame) {
  const ReportCrafter crafter(config());
  const auto frame = crafter.craft_compare_swap(
      dst_info(), src_info(), 0x0000'1000'0000'0080ull, /*compare=*/0,
      /*swap=*/0xAA, 9);
  EXPECT_TRUE(rdma::verify_frame_icrc(frame));
  const auto parsed = net::parse_udp_frame(frame);
  const auto req = rdma::parse_request(parsed->payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->bth.opcode, rdma::Opcode::kRcCompareSwap);
  EXPECT_EQ(req->atomic_eth->compare, 0u);
  EXPECT_EQ(req->atomic_eth->swap_add, 0xAAu);
}

TEST(ReportCrafter, ReportSizeMatchesPaperFraming) {
  // §2 footnote: a 64B packet ≈ 28B headers + 36B report data. Our INT
  // report: Eth(14)+IP(20)+UDP(8)+BTH(12)+RETH(16)+payload(24)+iCRC(4).
  const ReportCrafter crafter(config());
  const std::string key = "flow-D";
  std::vector<std::byte> value(20, std::byte{0});
  const auto frame =
      crafter.craft_write(dst_info(), src_info(), bytes_of(key), value, 0, 0);
  EXPECT_EQ(frame.size(), 14u + 20 + 8 + 12 + 16 + 24 + 4);
}

}  // namespace
}  // namespace dart::core
