// Tests for the DartStore slot layout and write/read paths.
#include "core/store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/oracle.hpp"

namespace dart::core {
namespace {

DartConfig config(std::uint32_t n = 2, std::uint32_t bits = 32,
                  std::uint32_t value_bytes = 8, std::uint64_t slots = 4096) {
  DartConfig cfg;
  cfg.n_slots = slots;
  cfg.n_addresses = n;
  cfg.checksum_bits = bits;
  cfg.value_bytes = value_bytes;
  cfg.master_seed = 1;
  return cfg;
}

std::vector<std::byte> value_of(std::uint64_t v, std::uint32_t width = 8) {
  std::vector<std::byte> out(width, std::byte{0});
  for (std::uint32_t i = 0; i < 8 && i < width; ++i) {
    out[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
  return out;
}

TEST(DartConfig, SlotGeometry) {
  EXPECT_EQ(config(2, 32, 20).slot_bytes(), 24u);  // Fig. 4's 24 B slots
  EXPECT_EQ(config(2, 16, 20).slot_bytes(), 22u);
  EXPECT_EQ(config(2, 9, 20).checksum_bytes(), 2u);
  EXPECT_EQ(config(2, 32, 20, 1000).memory_bytes(), 24000u);
  EXPECT_TRUE(config().valid());
  DartConfig bad = config();
  bad.checksum_bits = 33;
  EXPECT_FALSE(bad.valid());
  bad = config();
  bad.n_slots = 0;
  EXPECT_FALSE(bad.valid());
}

TEST(DartStore, WriteThenReadBack) {
  DartStore store(config());
  const auto key = sim_key(42);
  const auto value = value_of(0xABCD);
  store.write(key, value);

  const auto slots = store.read_slots(key);
  ASSERT_EQ(slots.size(), 2u);
  for (const auto& s : slots) {
    EXPECT_EQ(s.checksum, store.key_checksum(key));
    EXPECT_TRUE(std::equal(value.begin(), value.end(), s.value.begin()));
  }
  EXPECT_EQ(store.writes_performed(), 2u);
}

TEST(DartStore, WriteOneFillsOnlyThatCopy) {
  DartStore store(config());
  const auto key = sim_key(7);
  store.write_one(key, value_of(1), 0);
  const auto slots = store.read_slots(key);
  EXPECT_EQ(slots[0].checksum, store.key_checksum(key));
  // Copy 1 still zeroed (unless the two hashes collide — astronomically
  // unlikely for this key/config and pinned by the seed).
  ASSERT_NE(store.slot_index(key, 0), store.slot_index(key, 1));
  EXPECT_EQ(slots[1].checksum, 0u);
}

TEST(DartStore, OverwriteReplacesValue) {
  DartStore store(config());
  const auto key = sim_key(5);
  store.write(key, value_of(1));
  store.write(key, value_of(2));
  for (const auto& s : store.read_slots(key)) {
    std::uint64_t got = 0;
    std::memcpy(&got, s.value.data(), 8);
    EXPECT_EQ(got, 2u);
  }
}

TEST(DartStore, CollidingKeysOverwriteEachOther) {
  // Force collisions with a tiny table: two keys mapping to the same slot
  // must leave only the later key's checksum there.
  DartConfig cfg = config(1, 32, 8, /*slots=*/1);
  DartStore store(cfg);
  const auto k1 = sim_key(1);
  const auto k2 = sim_key(2);
  store.write(k1, value_of(11));
  store.write(k2, value_of(22));
  const auto slot = store.read_slot(0);
  EXPECT_EQ(slot.checksum, store.key_checksum(k2));
}

TEST(DartStore, ChecksumMaskedToConfiguredBits) {
  DartStore store(config(2, /*bits=*/8));
  const auto key = sim_key(1234);
  store.write(key, value_of(9));
  for (const auto& s : store.read_slots(key)) {
    EXPECT_LE(s.checksum, 0xFFu);
  }
}

TEST(DartStore, NonByteAlignedChecksumWidth) {
  // b = 12 bits → stored in 2 bytes, high bits zero.
  DartStore store(config(2, /*bits=*/12));
  const auto key = sim_key(99);
  store.write(key, value_of(1));
  for (const auto& s : store.read_slots(key)) {
    EXPECT_EQ(s.checksum, store.key_checksum(key));
    EXPECT_LE(s.checksum, 0xFFFu);
  }
  EXPECT_EQ(store.config().slot_bytes(), 2u + 8u);
}

TEST(DartStore, ExternalMemoryIsShared) {
  const auto cfg = config();
  std::vector<std::byte> memory(cfg.memory_bytes(), std::byte{0});
  DartStore store(cfg, memory);
  const auto key = sim_key(3);
  store.write(key, value_of(0x55AA));
  // The bytes must be visible in the external buffer (what the RNIC DMAs
  // into is what queries read).
  const auto off = store.slot_offset(store.slot_index(key, 0));
  std::uint32_t csum = 0;
  std::memcpy(&csum, memory.data() + off, 4);
  EXPECT_EQ(csum, store.key_checksum(key));
}

TEST(DartStore, EncodeSlotPayloadMatchesMemoryLayout) {
  DartStore store(config());
  const auto key = sim_key(77);
  const auto value = value_of(0xDEAD);
  std::vector<std::byte> payload;
  store.encode_slot_payload(key, value, payload);
  ASSERT_EQ(payload.size(), store.config().slot_bytes());

  store.write(key, value);
  const auto off = store.slot_offset(store.slot_index(key, 0));
  const auto mem = store.memory().subspan(off, payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), mem.begin()));
}

TEST(DartStore, ClearZeroesEverything) {
  DartStore store(config());
  store.write(sim_key(1), value_of(1));
  store.clear();
  EXPECT_EQ(store.writes_performed(), 0u);
  for (const auto b : store.memory()) {
    ASSERT_EQ(static_cast<std::uint8_t>(b), 0);
  }
}

TEST(DartStore, AddressesMatchHashFamily) {
  DartStore store(config(4));
  const HashFamily family(4, 1);
  const auto key = sim_key(123456);
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(store.slot_index(key, n),
              family.address_of(key, n, store.config().n_slots));
  }
}

// Property sweep over slot geometries: write→read round trip.
struct Geometry {
  std::uint32_t n;
  std::uint32_t bits;
  std::uint32_t value_bytes;
};

class StoreGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(StoreGeometry, RoundTripsAcrossGeometries) {
  const auto g = GetParam();
  DartStore store(config(g.n, g.bits, g.value_bytes, 1 << 16));
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto key = sim_key(i * 7919);
    std::vector<std::byte> value(g.value_bytes);
    for (std::uint32_t b = 0; b < g.value_bytes; ++b) {
      value[b] = static_cast<std::byte>((i + b) & 0xFF);
    }
    store.write(key, value);
    const auto slots = store.read_slots(key);
    ASSERT_EQ(slots.size(), g.n);
    // At least copy 0 must hold our freshly written data (later keys in this
    // loop could collide, but with 64 keys in 65536 slots collisions of a
    // *just-written* key are absent for the pinned seed).
    bool any_match = false;
    for (const auto& s : slots) {
      if (s.checksum == store.key_checksum(key) &&
          std::equal(value.begin(), value.end(), s.value.begin())) {
        any_match = true;
      }
    }
    EXPECT_TRUE(any_match) << "key " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, StoreGeometry,
    ::testing::Values(Geometry{1, 32, 4}, Geometry{2, 32, 20},
                      Geometry{2, 16, 8}, Geometry{4, 8, 20},
                      Geometry{8, 12, 16}, Geometry{2, 1, 8}));

}  // namespace
}  // namespace dart::core
