// Tests for the deployment control plane: config fingerprinting, directory
// versioning, table pushes, and resize remap analysis.
#include "core/control.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/cluster.hpp"

namespace dart::core {
namespace {

DartConfig config() {
  DartConfig cfg;
  cfg.n_slots = 1 << 12;
  cfg.n_addresses = 2;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xC7A1;
  return cfg;
}

switchsim::DartSwitchPipeline::Config switch_config(const DartConfig& dart) {
  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = dart;
  sc.write_mode = WriteMode::kAllSlots;
  return sc;
}

RemoteStoreInfo info(std::uint32_t id) {
  RemoteStoreInfo r;
  r.collector_id = id;
  r.ip = net::Ipv4Addr::from_octets(10, 0, 100, static_cast<std::uint8_t>(id));
  r.qpn = 0x100 + id;
  r.rkey = 0xAA00 + id;
  r.base_vaddr = 0x1000;
  r.n_slots = 1 << 12;
  r.slot_bytes = 12;
  return r;
}

TEST(ConfigFingerprint, SensitiveToEveryMappingField) {
  const auto base = config_fingerprint(config());
  auto c = config();
  c.master_seed ^= 1;
  EXPECT_NE(config_fingerprint(c), base);
  c = config();
  c.n_slots += 1;
  EXPECT_NE(config_fingerprint(c), base);
  c = config();
  c.n_addresses = 3;
  EXPECT_NE(config_fingerprint(c), base);
  c = config();
  c.checksum_bits = 16;
  EXPECT_NE(config_fingerprint(c), base);
  c = config();
  c.value_bytes = 16;
  EXPECT_NE(config_fingerprint(c), base);
  EXPECT_EQ(config_fingerprint(config()), base);  // stable
}

TEST(Controller, AttachPushesDirectory) {
  DeploymentController controller(config());
  controller.register_collector(info(0));
  controller.register_collector(info(1));

  switchsim::DartSwitchPipeline sw(switch_config(config()));
  ASSERT_TRUE(controller.attach_switch(sw).ok());
  EXPECT_EQ(sw.collectors_loaded(), 2u);
  EXPECT_EQ(controller.stats().switches_attached, 1u);
  EXPECT_EQ(controller.stats().table_entries_pushed, 2u);
}

TEST(Controller, MismatchedConfigRejected) {
  DeploymentController controller(config());
  auto wrong = config();
  wrong.master_seed = 0xBAD;  // would silently break the mapping
  switchsim::DartSwitchPipeline sw(switch_config(wrong));
  const auto status = controller.attach_switch(sw);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "config_mismatch");
  EXPECT_EQ(controller.stats().config_rejections, 1u);
  EXPECT_EQ(sw.collectors_loaded(), 0u);
}

TEST(Controller, LateCollectorReachesSwitchesViaPushUpdates) {
  DeploymentController controller(config());
  controller.register_collector(info(0));
  switchsim::DartSwitchPipeline sw(switch_config(config()));
  ASSERT_TRUE(controller.attach_switch(sw).ok());
  EXPECT_EQ(sw.collectors_loaded(), 1u);

  controller.register_collector(info(1));
  EXPECT_EQ(sw.collectors_loaded(), 1u);  // not yet pushed
  EXPECT_EQ(controller.push_updates(), 1u);
  EXPECT_EQ(sw.collectors_loaded(), 2u);
  EXPECT_EQ(controller.push_updates(), 0u);  // idempotent
}

TEST(Controller, ReRegistrationUpdatesRow) {
  DeploymentController controller(config());
  controller.register_collector(info(0));
  auto updated = info(0);
  updated.rkey = 0xFEED;  // collector restarted with a fresh MR
  controller.register_collector(updated);
  ASSERT_EQ(controller.directory().size(), 1u);
  EXPECT_EQ(controller.directory()[0].rkey, 0xFEEDu);
  EXPECT_EQ(controller.stats().directory_version, 2u);
}

TEST(Controller, DecommissionRemovesAndPropagates) {
  DeploymentController controller(config());
  controller.register_collector(info(0));
  controller.register_collector(info(1));
  switchsim::DartSwitchPipeline sw(switch_config(config()));
  ASSERT_TRUE(controller.attach_switch(sw).ok());

  ASSERT_TRUE(controller.decommission_collector(0).ok());
  EXPECT_EQ(controller.directory().size(), 1u);
  (void)controller.push_updates();
  EXPECT_EQ(sw.collectors_loaded(), 1u);

  EXPECT_FALSE(controller.decommission_collector(42).ok());
}

TEST(Controller, RemapFractionMatchesModuloTheory) {
  DeploymentController controller(config());
  // Growing C → C+1 under h % C remaps ~1 - 1/(C+1)·(expected stays) — for
  // independent uniform hashing the stay probability is 1/(C+1)·C·(1/C)=…
  // empirically ≈ 1 - 1/(C+1) for modulo of a fresh hash. Just check the
  // headline: resizes remap MOST keys (not the 1/C of consistent hashing).
  const double frac_2_3 = controller.estimate_remap_fraction(2, 3);
  EXPECT_GT(frac_2_3, 0.5);
  const double frac_4_5 = controller.estimate_remap_fraction(4, 5);
  EXPECT_GT(frac_4_5, 0.5);
  // Identity resize moves nothing.
  EXPECT_EQ(controller.estimate_remap_fraction(4, 4), 0.0);
}

TEST(Controller, EndToEndWithRealCollectors) {
  // Controller wiring against real Collector objects: register, attach,
  // report, query.
  const auto cfg = config();
  CollectorCluster cluster(cfg, 2);
  DeploymentController controller(cfg);
  for (const auto& row : cluster.directory()) {
    controller.register_collector(row);
  }
  switchsim::DartSwitchPipeline sw(switch_config(cfg));
  ASSERT_TRUE(controller.attach_switch(sw).ok());

  const std::string key = "controlled-key";
  const auto kb = std::as_bytes(std::span{key.data(), key.size()});
  std::vector<std::byte> value(8, std::byte{0x77});
  for (const auto& frame : sw.on_telemetry(kb, value)) {
    const auto parsed = net::parse_udp_frame(frame);
    for (const auto& row : cluster.directory()) {
      if (row.ip == parsed->ip.dst) {
        ASSERT_TRUE(cluster.collector(row.collector_id)
                        .rnic()
                        .process_frame(frame)
                        .has_value());
      }
    }
  }
  EXPECT_EQ(cluster.query(kb).outcome, QueryOutcome::kFound);
}

}  // namespace
}  // namespace dart::core
