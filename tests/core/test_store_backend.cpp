// Backend-conformance suite for the StoreBackend seam: both backends must
// agree on (a) MR byte layout, (b) slot/cell addressing — pinned
// byte-for-byte against switch-side frame crafting through the simulated
// RNIC, (c) local apply vs wire-path equivalence, and (d) clear/reset.
#include "core/store_backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/atomics_store.hpp"
#include "core/collector.hpp"
#include "core/oracle.hpp"
#include "core/report_crafter.hpp"
#include "switchsim/dart_switch.hpp"

namespace dart::core {
namespace {

DartConfig kv_config() {
  DartConfig cfg;
  cfg.n_slots = 1024;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xDA27;
  return cfg;
}

SketchBackendConfig sketch_config() {
  SketchBackendConfig cfg;
  cfg.rows = 3;
  cfg.cols = 256;
  cfg.seed = 0x5EED'CAFE;
  cfg.topk_capacity = 4;
  return cfg;
}

StoreBackendConfig sketch_choice() {
  StoreBackendConfig choice;
  choice.kind = StoreBackendKind::kSketch;
  choice.sketch = sketch_config();
  return choice;
}

CollectorEndpoint endpoint() {
  CollectorEndpoint ep;
  ep.mac = {0x02, 0xC0, 0, 0, 0, 1};
  ep.ip = net::Ipv4Addr::from_octets(10, 0, 100, 1);
  return ep;
}

ReporterEndpoint reporter() {
  ReporterEndpoint src;
  src.mac = {0x02, 0, 0, 0, 0, 1};
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  return src;
}

std::vector<std::byte> value_of(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

// --- factory / geometry ------------------------------------------------------

TEST(StoreBackendConformance, KvFactoryGeometryMatchesDartConfig) {
  const DartConfig dart = kv_config();
  const StoreBackendConfig choice;  // default = KV
  ASSERT_TRUE(choice.valid(dart));
  EXPECT_EQ(choice.memory_bytes(dart), dart.memory_bytes());

  auto backend = make_backend(dart, choice);
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->kind(), StoreBackendKind::kKv);
  EXPECT_EQ(backend->n_slots(), dart.n_slots);
  EXPECT_EQ(backend->slot_bytes(), dart.slot_bytes());
  EXPECT_EQ(backend->memory_bytes(), dart.memory_bytes());
  EXPECT_EQ(backend->memory().size(), dart.memory_bytes());
}

TEST(StoreBackendConformance, SketchFactoryGeometry) {
  const DartConfig dart = kv_config();
  const StoreBackendConfig choice = sketch_choice();
  ASSERT_TRUE(choice.valid(dart));
  EXPECT_EQ(choice.memory_bytes(dart), choice.sketch.memory_bytes());

  auto backend = make_backend(dart, choice);
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->kind(), StoreBackendKind::kSketch);
  EXPECT_EQ(backend->n_slots(), choice.sketch.n_cells());
  EXPECT_EQ(backend->slot_bytes(), 8u);
  EXPECT_EQ(backend->memory_bytes(), choice.sketch.memory_bytes());
  EXPECT_EQ(backend->memory().size(), choice.sketch.memory_bytes());
}

TEST(StoreBackendConformance, CollectorRemoteInfoCarriesBackendGeometry) {
  Collector kv(kv_config(), 0, endpoint());
  EXPECT_EQ(kv.backend_kind(), StoreBackendKind::kKv);
  EXPECT_EQ(kv.remote_info().backend, StoreBackendKind::kKv);
  EXPECT_EQ(kv.remote_info().n_slots, kv_config().n_slots);
  EXPECT_EQ(kv.remote_info().slot_bytes, kv_config().slot_bytes());

  Collector sk(kv_config(), 1, endpoint(), sketch_choice());
  EXPECT_EQ(sk.backend_kind(), StoreBackendKind::kSketch);
  EXPECT_EQ(sk.remote_info().backend, StoreBackendKind::kSketch);
  EXPECT_EQ(sk.remote_info().n_slots, sketch_config().n_cells());
  EXPECT_EQ(sk.remote_info().slot_bytes, 8u);
}

// --- cell addressing ---------------------------------------------------------

// SketchBackendConfig's addressing must be the exact CountMinSketch
// derivation: same SplitMix64 row-seed walk, same column hash, same
// row-major flattening. This is what lets a local reference sketch stand in
// for the wire path cell-for-cell.
TEST(StoreBackendConformance, SketchAddressingMatchesCountMinSketch) {
  const SketchBackendConfig cfg = sketch_config();
  CountMinSketch reference(cfg.rows, cfg.cols, cfg.seed);
  SketchBackend backend(cfg);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto key = sim_key(i);
    const auto expected = reference.cell_indices(key);
    ASSERT_EQ(expected.size(), cfg.rows);
    for (std::uint32_t r = 0; r < cfg.rows; ++r) {
      EXPECT_EQ(cfg.cell_of(key, r), expected[r]) << "key " << i << " row " << r;
      EXPECT_EQ(backend.cell_of(key, r), expected[r]);
    }
  }
}

// --- wire path vs local apply ------------------------------------------------

TEST(StoreBackendConformance, KvWirePathMatchesLocalApply) {
  const DartConfig dart = kv_config();
  Collector collector(dart, 0, endpoint());
  auto twin = make_backend(dart, StoreBackendConfig{});
  const ReportCrafter crafter(dart);
  const auto info = collector.remote_info();

  std::uint32_t psn = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto key = sim_key(i);
    const auto value = value_of(i * 31 + 7);
    // apply_report's reference semantics = all N slot copies written.
    for (std::uint32_t n = 0; n < dart.n_addresses; ++n) {
      const auto frame = crafter.craft_write(info, reporter(), key, value, n, psn++);
      ASSERT_TRUE(collector.rnic().process_frame(frame).has_value()) << i;
    }
    twin->apply_report(key, value);
  }
  const auto wire = collector.backend().memory();
  const auto local = twin->memory();
  ASSERT_EQ(wire.size(), local.size());
  EXPECT_TRUE(std::equal(wire.begin(), wire.end(), local.begin()));
}

TEST(StoreBackendConformance, SketchWirePathMatchesLocalApply) {
  const DartConfig dart = kv_config();
  const SketchBackendConfig cfg = sketch_config();
  Collector collector(dart, 0, endpoint(), sketch_choice());
  SketchBackend twin(cfg);
  const ReportCrafter crafter(dart);
  const auto info = collector.remote_info();

  std::uint32_t psn = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const auto key = sim_key(i % 40);
    // One report = one FETCH_ADD of 1 per row.
    for (std::uint32_t r = 0; r < cfg.rows; ++r) {
      const auto frame =
          crafter.craft_sketch_increment(info, reporter(), cfg, key, r, 1, psn++);
      ASSERT_TRUE(collector.rnic().process_frame(frame).has_value()) << i;
    }
    twin.apply_report(key, {});
  }
  const auto wire = collector.backend().memory();
  const auto local = twin.memory();
  ASSERT_EQ(wire.size(), local.size());
  EXPECT_TRUE(std::equal(wire.begin(), wire.end(), local.begin()));
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(collector.sketch().estimate(sim_key(i)), twin.estimate(sim_key(i)));
  }
}

// The switch pipeline's sketch fan-out (template fast path included) must
// land the same bytes as the crafter reference above.
TEST(StoreBackendConformance, SwitchPipelineSketchFanoutMatchesLocalApply) {
  const DartConfig dart = kv_config();
  const SketchBackendConfig cfg = sketch_config();
  Collector collector(dart, 0, endpoint(), sketch_choice());
  SketchBackend twin(cfg);

  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = dart;
  sc.mac = reporter().mac;
  sc.ip = reporter().ip;
  sc.sketch = cfg;
  switchsim::DartSwitchPipeline sw(sc);
  sw.load_collector(collector.remote_info());

  for (std::uint64_t i = 0; i < 150; ++i) {
    const auto key = sim_key(i % 25);
    const auto value = value_of(i);
    const auto frames = sw.on_telemetry(key, value);
    ASSERT_EQ(frames.size(), cfg.rows) << i;  // one FETCH_ADD per row
    for (const auto& frame : frames) {
      ASSERT_TRUE(collector.rnic().process_frame(frame).has_value()) << i;
    }
    twin.apply_report(key, value);
  }
  EXPECT_EQ(sw.counters().sketch_increments_emitted, 150u * cfg.rows);
  EXPECT_EQ(sw.counters().reports_emitted, 150u * cfg.rows);

  const auto wire = collector.backend().memory();
  const auto local = twin.memory();
  ASSERT_EQ(wire.size(), local.size());
  EXPECT_TRUE(std::equal(wire.begin(), wire.end(), local.begin()));
}

// --- resolve semantics -------------------------------------------------------

TEST(StoreBackendConformance, KvResolveMatchesQueryEngine) {
  const DartConfig dart = kv_config();
  auto backend = make_backend(dart, StoreBackendConfig{});
  backend->apply_report(sim_key(1), value_of(42));

  const auto hit = backend->resolve(sim_key(1), ReturnPolicy::kPlurality);
  ASSERT_EQ(hit.outcome, QueryOutcome::kFound);
  EXPECT_EQ(hit.value, value_of(42));

  const auto miss = backend->resolve(sim_key(2), ReturnPolicy::kPlurality);
  EXPECT_NE(miss.outcome, QueryOutcome::kFound);
}

TEST(StoreBackendConformance, SketchResolveEncodesEstimate) {
  SketchBackend backend(sketch_config());
  const auto empty = backend.resolve(sim_key(9), ReturnPolicy::kPlurality);
  EXPECT_EQ(empty.outcome, QueryOutcome::kEmpty);

  backend.add(sim_key(9), 5);
  const auto found = backend.resolve(sim_key(9), ReturnPolicy::kPlurality);
  ASSERT_EQ(found.outcome, QueryOutcome::kFound);
  ASSERT_EQ(found.value.size(), 8u);
  std::uint64_t est = 0;
  std::memcpy(&est, found.value.data(), 8);
  EXPECT_EQ(est, backend.estimate(sim_key(9)));
  EXPECT_GE(est, 5u);  // count-min never undercounts
}

// --- clear / reset -----------------------------------------------------------

TEST(StoreBackendConformance, ClearZeroesMemoryAndResetsState) {
  const DartConfig dart = kv_config();
  auto kv = make_backend(dart, StoreBackendConfig{});
  kv->apply_report(sim_key(1), value_of(1));
  kv->clear();
  for (const std::byte b : kv->memory()) {
    ASSERT_EQ(b, std::byte{0});
  }

  SketchBackend sk(sketch_config());
  sk.apply_report(sim_key(1), {});
  sk.offer(sim_key(1));
  ASSERT_EQ(sk.tracked_candidates(), 1u);
  sk.clear();
  for (const std::byte b : sk.memory()) {
    ASSERT_EQ(b, std::byte{0});
  }
  EXPECT_EQ(sk.tracked_candidates(), 0u);
  EXPECT_EQ(sk.estimate(sim_key(1)), 0u);
}

// --- heavy-hitter tracker ----------------------------------------------------

TEST(SketchBackendTracker, TopKOrdersByLiveEstimate) {
  SketchBackendConfig cfg = sketch_config();
  cfg.topk_capacity = 8;
  SketchBackend backend(cfg);
  for (std::uint64_t i = 0; i < 5; ++i) {
    backend.add(sim_key(i), (i + 1) * 10);
    backend.offer(sim_key(i));
  }
  // Counts are re-estimated at top_k() time, so later adds are reflected.
  backend.add(sim_key(0), 1000);

  const auto top = backend.top_k(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_TRUE(std::equal(top[0].key.begin(), top[0].key.end(),
                         sim_key(0).begin()));
  EXPECT_GE(top[0].count, 1000u);
  EXPECT_GE(top[0].count, top[1].count);
  EXPECT_GE(top[1].count, top[2].count);
}

TEST(SketchBackendTracker, CapacityEvictionPrefersStrongerCandidates) {
  SketchBackendConfig cfg = sketch_config();
  cfg.topk_capacity = 2;
  SketchBackend backend(cfg);
  backend.add(sim_key(1), 10);
  backend.add(sim_key(2), 20);
  backend.add(sim_key(3), 5);
  backend.add(sim_key(4), 30);

  backend.offer(sim_key(1));
  backend.offer(sim_key(2));
  ASSERT_EQ(backend.tracked_candidates(), 2u);

  // Weaker newcomer at capacity: rejected, set unchanged.
  backend.offer(sim_key(3));
  EXPECT_EQ(backend.tracked_candidates(), 2u);
  EXPECT_EQ(backend.offers_rejected(), 1u);
  EXPECT_EQ(backend.offers_evicted(), 0u);

  // Stronger newcomer: evicts the weakest (key 1).
  backend.offer(sim_key(4));
  EXPECT_EQ(backend.tracked_candidates(), 2u);
  EXPECT_EQ(backend.offers_evicted(), 1u);
  const auto top = backend.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_TRUE(std::equal(top[0].key.begin(), top[0].key.end(),
                         sim_key(4).begin()));
  EXPECT_TRUE(std::equal(top[1].key.begin(), top[1].key.end(),
                         sim_key(2).begin()));

  // Re-offering a tracked key is a dedupe, not an eviction.
  backend.offer(sim_key(4));
  EXPECT_EQ(backend.tracked_candidates(), 2u);
  EXPECT_EQ(backend.offers_evicted(), 1u);
}

}  // namespace
}  // namespace dart::core
