// Tests for the sharded multi-threaded ingest pipeline: correctness of the
// feeder→ring→shard-worker data path, loss accounting, epoch rotation under
// concurrency, and the seqlock that guards the flip. These tests are the
// tier-1 TSan targets (tools/check_tsan.sh): every cross-thread interaction
// in the pipeline is exercised here.
#include "core/ingest_pipeline.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "core/store.hpp"
#include "net/netsim.hpp"

namespace dart::core {
namespace {

IngestPipelineConfig small_config() {
  IngestPipelineConfig cfg;
  cfg.dart.n_slots = 1 << 16;
  cfg.dart.value_bytes = 20;
  cfg.n_feeders = 2;
  cfg.n_shards = 2;
  cfg.reports_per_feeder = 500;
  cfg.ring_capacity = 256;
  cfg.seed = 77;
  return cfg;
}

TEST(ShardRouting, PartitionIsExactAndContiguous) {
  // Every slot belongs to exactly one shard, ranges are contiguous and
  // non-overlapping, and shard_slot_range inverts shard_of_slot.
  constexpr std::uint64_t kSlots = 1000;
  for (const std::uint32_t shards : {1u, 2u, 3u, 7u, 16u}) {
    std::uint64_t covered = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const auto [lo, hi] = shard_slot_range(s, kSlots, shards);
      EXPECT_EQ(lo, covered) << "gap before shard " << s;
      for (std::uint64_t i = lo; i < hi; ++i) {
        ASSERT_EQ(shard_of_slot(i, kSlots, shards), s);
      }
      covered = hi;
    }
    EXPECT_EQ(covered, kSlots);
  }
}

TEST(IngestPipeline, AppliesEveryCraftedFrame) {
  auto cfg = small_config();
  IngestPipeline pipeline(cfg);
  const auto stats = pipeline.run();

  EXPECT_EQ(stats.reports_generated, 2u * 500u);
  // kAllSlots mode: N=2 frames per report.
  EXPECT_EQ(stats.frames_crafted, 2u * 500u * 2u);
  EXPECT_EQ(stats.frames_dropped, 0u);
  EXPECT_EQ(stats.frames_applied, stats.frames_crafted);
  EXPECT_EQ(stats.frames_rejected, 0u);

  // Per-shard tallies add up, and (with a uniform hash) both shards worked.
  std::uint64_t sum = 0;
  for (const auto n : stats.per_shard_applied) sum += n;
  EXPECT_EQ(sum, stats.frames_applied);
  for (const auto n : stats.per_shard_applied) EXPECT_GT(n, 0u);

  const auto& counters = pipeline.collector().rnic().counters();
  EXPECT_EQ(counters.executed, stats.frames_applied);
  EXPECT_EQ(counters.bad_icrc, 0u);
  EXPECT_EQ(counters.out_of_bounds, 0u);
}

TEST(IngestPipeline, IngestedValuesAreQueryable) {
  auto cfg = small_config();
  IngestPipeline pipeline(cfg);
  (void)pipeline.run();

  // The workload is deterministic: report k of feeder f wrote
  // make_value(make_key(f, k)). Nearly every key must resolve exactly (a few
  // slots get overwritten by colliding later keys — the §4-priced cost).
  std::uint64_t found = 0, wrong = 0;
  std::vector<std::byte> expected;
  for (std::uint32_t f = 0; f < cfg.n_feeders; ++f) {
    for (std::uint64_t k = 0; k < cfg.reports_per_feeder; ++k) {
      const auto key = IngestPipeline::make_key(f, k);
      const auto result = pipeline.query(key);
      if (result.outcome != QueryOutcome::kFound) continue;
      ++found;
      IngestPipeline::make_value(key, cfg.dart.value_bytes, expected);
      if (result.value != expected) ++wrong;
    }
  }
  const auto total = cfg.n_feeders * cfg.reports_per_feeder;
  EXPECT_GT(found, total * 95 / 100);
  EXPECT_EQ(wrong, 0u);  // 32-bit checksums: return errors ≈ 0 at this scale
}

TEST(IngestPipeline, BatchSizesProduceIdenticalStoreState) {
  // batch_size only changes how frames move through the rings, never what
  // they contain or where they land: batch_size=1 (the old per-frame path)
  // and a large batch must leave byte-identical query results behind. One
  // feeder keeps same-slot write order equal to program order (each slot maps
  // to one ring, rings are FIFO), so the comparison is exact.
  auto run_with_batch = [](std::size_t batch) {
    auto cfg = small_config();
    cfg.n_feeders = 1;
    cfg.reports_per_feeder = 1000;
    cfg.batch_size = batch;
    IngestPipeline pipeline(cfg);
    const auto stats = pipeline.run();
    EXPECT_EQ(stats.frames_applied, stats.frames_crafted) << "batch=" << batch;

    std::vector<std::pair<QueryOutcome, std::vector<std::byte>>> results;
    for (std::uint32_t f = 0; f < cfg.n_feeders; ++f) {
      for (std::uint64_t k = 0; k < cfg.reports_per_feeder; ++k) {
        const auto r = pipeline.query(IngestPipeline::make_key(f, k));
        results.emplace_back(r.outcome, r.value);
      }
    }
    return results;
  };
  const auto unbatched = run_with_batch(1);
  const auto batched = run_with_batch(16);
  EXPECT_EQ(unbatched, batched);
}

TEST(IngestPipeline, ManyFeedersManyShards) {
  auto cfg = small_config();
  cfg.n_feeders = 4;
  cfg.n_shards = 4;
  cfg.reports_per_feeder = 300;
  cfg.ring_capacity = 64;  // small rings force the backpressure path
  IngestPipeline pipeline(cfg);
  const auto stats = pipeline.run();
  EXPECT_EQ(stats.frames_applied, stats.frames_crafted);
  EXPECT_EQ(stats.frames_rejected, 0u);
  ASSERT_EQ(stats.per_shard_applied.size(), 4u);
}

TEST(IngestPipeline, LossModelClonesDropFrames) {
  auto cfg = small_config();
  const net::BernoulliLoss loss(0.3);
  cfg.loss_model = &loss;
  IngestPipeline pipeline(cfg);
  const auto stats = pipeline.run();

  EXPECT_GT(stats.frames_dropped, 0u);
  EXPECT_LT(stats.frames_dropped, stats.frames_crafted);
  // Dropped frames never reach a ring: applied + dropped == crafted.
  EXPECT_EQ(stats.frames_applied + stats.frames_dropped,
            stats.frames_crafted);
  // ~30% drop rate, generous 4-sigma-ish band.
  const double rate = static_cast<double>(stats.frames_dropped) /
                      static_cast<double>(stats.frames_crafted);
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(IngestPipeline, DeterministicAcrossRuns) {
  // Per-feeder Xoshiro streams + per-feeder loss clones: identical seeds
  // must produce identical loss decisions regardless of thread scheduling.
  auto cfg = small_config();
  const net::BernoulliLoss loss(0.25);
  cfg.loss_model = &loss;
  IngestPipeline a(cfg), b(cfg);
  const auto sa = a.run();
  const auto sb = b.run();
  EXPECT_EQ(sa.frames_dropped, sb.frames_dropped);
  EXPECT_EQ(sa.frames_applied, sb.frames_applied);
}

TEST(IngestPipeline, StochasticWriteMode) {
  auto cfg = small_config();
  cfg.dart.write_mode = WriteMode::kStochastic;
  cfg.reports_per_feeder = 2000;
  cfg.unique_keys_per_feeder = 50;  // many reports per key fill both slots
  IngestPipeline pipeline(cfg);
  const auto stats = pipeline.run();
  // One frame per report in stochastic mode.
  EXPECT_EQ(stats.frames_crafted, stats.reports_generated);
  EXPECT_EQ(stats.frames_applied, stats.frames_crafted);

  std::uint64_t found = 0;
  for (std::uint64_t k = 0; k < 50; ++k) {
    const auto key = IngestPipeline::make_key(0, k);
    found += pipeline.query(key).outcome == QueryOutcome::kFound;
  }
  EXPECT_GT(found, 45u);
}

TEST(IngestPipeline, SecondCopyCasMode) {
  auto cfg = small_config();
  cfg.dart.checksum_bits = 32;
  cfg.dart.value_bytes = 4;  // slot_bytes == 8: CAS covers the whole slot
  cfg.second_copy_cas = true;
  cfg.reports_per_feeder = 400;
  ASSERT_TRUE(cfg.valid());
  IngestPipeline pipeline(cfg);
  const auto stats = pipeline.run();
  EXPECT_EQ(stats.frames_applied, stats.frames_crafted);

  const auto& counters = pipeline.collector().rnic().counters();
  EXPECT_EQ(counters.compare_swaps, stats.reports_generated);
  EXPECT_EQ(counters.writes + counters.compare_swaps, stats.frames_applied);

  std::uint64_t found = 0;
  for (std::uint64_t k = 0; k < cfg.reports_per_feeder; ++k) {
    found += pipeline.query(IngestPipeline::make_key(0, k)).outcome ==
             QueryOutcome::kFound;
  }
  EXPECT_GT(found, cfg.reports_per_feeder * 95 / 100);
}

TEST(IngestPipeline, RotationDuringIngestLosesNothing) {
  auto cfg = small_config();
  cfg.reports_per_feeder = 2000;
  cfg.directory_refresh = 16;  // refresh often so flips are actually seen
  IngestPipeline pipeline(cfg);
  pipeline.start();
  // Controller thread: several live flips while feeders stream reports.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    pipeline.rotate();
  }
  const auto stats = pipeline.finish();

  // Every crafted frame landed in SOME region — the old MR stays registered
  // through the grace period, so in-flight reports to a pre-flip rkey are
  // never rejected.
  EXPECT_EQ(stats.frames_applied, stats.frames_crafted);
  EXPECT_EQ(stats.frames_rejected, 0u);
  EXPECT_EQ(pipeline.collector().current_epoch(), 6u);
}

TEST(RotatingCollector, SeqlockNeverShowsTornFlip) {
  // Invariant maintained by flip(): active == epoch (mod 2). A torn read —
  // new epoch with old region or vice versa — breaks it. Hammer reads
  // against a flipping controller thread.
  DartConfig config;
  config.n_slots = 1 << 10;
  const CollectorEndpoint ep{{2, 0, 0, 0, 0, 7},
                             net::Ipv4Addr::from_octets(10, 0, 9, 9)};
  RotatingCollector rotating(config, 3, ep);

  constexpr int kFlips = 20000;
  std::thread controller([&] {
    for (int i = 0; i < kFlips; ++i) rotating.flip();
  });
  std::uint64_t reads = 0;
  std::uint64_t last_epoch = 0;
  while (last_epoch < kFlips) {
    const auto [epoch, active] = rotating.epoch_snapshot();
    ASSERT_EQ(active, epoch & 1u) << "torn rotation observed";
    ASSERT_GE(epoch, last_epoch) << "epoch went backwards";
    last_epoch = epoch;
    ++reads;
  }
  controller.join();
  EXPECT_GT(reads, 0u);
  EXPECT_EQ(rotating.current_epoch(), static_cast<std::uint64_t>(kFlips));
  // Generation counter: two bumps per flip, even when stable.
  EXPECT_EQ(rotating.rotation_generation(), 2u * kFlips);
}

TEST(RotatingCollector, DirectoryRowsTrackFlipsUnderConcurrency) {
  DartConfig config;
  config.n_slots = 1 << 10;
  const CollectorEndpoint ep{{2, 0, 0, 0, 0, 8},
                             net::Ipv4Addr::from_octets(10, 0, 9, 10)};
  RotatingCollector rotating(config, 4, ep);
  const auto row0 = rotating.active_info();
  const auto row1 = rotating.standby_info();
  ASSERT_NE(row0.rkey, row1.rkey);

  std::thread controller([&] {
    for (int i = 0; i < 5000; ++i) rotating.flip();
  });
  // Concurrent directory refreshes must always observe one of the two valid
  // rows, never a mix of both.
  for (int i = 0; i < 5000; ++i) {
    const auto row = rotating.active_info();
    const bool is0 = row.rkey == row0.rkey && row.base_vaddr == row0.base_vaddr;
    const bool is1 = row.rkey == row1.rkey && row.base_vaddr == row1.base_vaddr;
    ASSERT_TRUE(is0 || is1) << "mixed directory row";
  }
  controller.join();
}

TEST(IngestPipeline, SealAfterRotationArchivesIngestedEpoch) {
  namespace fs = std::filesystem;
  auto cfg = small_config();
  cfg.reports_per_feeder = 200;
  IngestPipeline pipeline(cfg);
  (void)pipeline.run();

  pipeline.rotate();
  const auto path =
      (fs::temp_directory_path() / "dart_pipeline_epoch_test.bin").string();
  const auto sealed = pipeline.seal_previous(path);
  ASSERT_TRUE(sealed.ok());
  EXPECT_GT(sealed.value(), 0u);  // the ingested epoch had entries
  fs::remove(path);
}

}  // namespace
}  // namespace dart::core
