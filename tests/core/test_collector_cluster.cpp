// Tests for Collector (RNIC-backed store) and CollectorCluster (the
// logically centralized, hash-sharded storage of §3).
#include "core/cluster.hpp"
#include "core/collector.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/report_crafter.hpp"

namespace dart::core {
namespace {

DartConfig config() {
  DartConfig cfg;
  cfg.n_slots = 4096;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 8;
  cfg.master_seed = 21;
  return cfg;
}

std::vector<std::byte> value_of(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

std::span<const std::byte> bytes_of(const std::string& s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

TEST(Collector, ExposesRemoteInfo) {
  const CollectorEndpoint ep{{2, 0, 0, 0, 0, 1},
                             net::Ipv4Addr::from_octets(10, 0, 100, 1)};
  Collector c(config(), 7, ep);
  const auto info = c.remote_info();
  EXPECT_EQ(info.collector_id, 7u);
  EXPECT_EQ(info.qpn, Collector::qpn_for(7));
  EXPECT_NE(info.rkey, 0u);
  EXPECT_EQ(info.n_slots, 4096u);
  EXPECT_EQ(info.slot_bytes, 12u);
  EXPECT_EQ(info.base_vaddr, Collector::kDefaultBaseVaddr);
}

TEST(Collector, RdmaReportBecomesQueryable) {
  // The zero-CPU path end to end: craft a report frame, push it through the
  // RNIC, query the value back — no store.write() anywhere.
  const CollectorEndpoint ep{{2, 0, 0, 0, 0, 1},
                             net::Ipv4Addr::from_octets(10, 0, 100, 1)};
  Collector c(config(), 0, ep);
  const ReportCrafter crafter(config());
  ReporterEndpoint src;
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);

  const std::string key = "flow-X";
  const auto value = value_of(0x1234);
  for (std::uint32_t n = 0; n < 2; ++n) {
    const auto frame = crafter.craft_write(c.remote_info(), src,
                                           bytes_of(key), value, n, n);
    ASSERT_TRUE(c.rnic().process_frame(frame).has_value());
  }
  EXPECT_EQ(c.ingest_counters().writes, 2u);

  const auto result = c.query(bytes_of(key));
  ASSERT_EQ(result.outcome, QueryOutcome::kFound);
  std::uint64_t got;
  std::memcpy(&got, result.value.data(), 8);
  EXPECT_EQ(got, 0x1234u);
}

TEST(Collector, ForeignRkeyRejected) {
  const CollectorEndpoint ep{{2, 0, 0, 0, 0, 1},
                             net::Ipv4Addr::from_octets(10, 0, 100, 1)};
  Collector a(config(), 0, ep);
  Collector b(config(), 1, ep);
  const ReportCrafter crafter(config());
  ReporterEndpoint src;

  // Craft against B's directory entry but deliver to A: A's RNIC must
  // reject the unknown rkey (and/or QPN) instead of writing.
  auto info = b.remote_info();
  info.qpn = a.remote_info().qpn;  // valid QP at A, but B's rkey
  const std::string key = "flow-Y";
  const auto frame =
      crafter.craft_write(info, src, bytes_of(key), value_of(1), 0, 0);
  EXPECT_FALSE(a.rnic().process_frame(frame).has_value());
  EXPECT_EQ(a.ingest_counters().bad_rkey, 1u);
}

TEST(Cluster, DirectorySizedAndConsistent) {
  CollectorCluster cluster(config(), 4);
  EXPECT_EQ(cluster.size(), 4u);
  ASSERT_EQ(cluster.directory().size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.directory()[i].collector_id, i);
    EXPECT_EQ(cluster.collector(i).id(), i);
  }
}

TEST(Cluster, ZeroCollectorsClampedToOne) {
  CollectorCluster cluster(config(), 0);
  EXPECT_EQ(cluster.size(), 1u);
}

TEST(Cluster, WriteAndQueryRouteConsistently) {
  CollectorCluster cluster(config(), 4);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "flow-" + std::to_string(i);
    cluster.write(bytes_of(key), value_of(static_cast<std::uint64_t>(i)));
  }
  int found = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "flow-" + std::to_string(i);
    const auto r = cluster.query(bytes_of(key));
    if (r.outcome == QueryOutcome::kFound) {
      std::uint64_t got;
      std::memcpy(&got, r.value.data(), 8);
      EXPECT_EQ(got, static_cast<std::uint64_t>(i));
      ++found;
    }
  }
  // 200 keys over 4×4096 slots: load is tiny, nearly everything queryable.
  EXPECT_GE(found, 195);
}

TEST(Cluster, AllCopiesOfAKeyLiveOnOneCollector) {
  // §3.1: data duplicates for any one key are held at a single collector.
  CollectorCluster cluster(config(), 4);
  const std::string key = "flow-locality";
  cluster.write(bytes_of(key), value_of(5));
  const auto owner = cluster.owner_of(bytes_of(key));
  std::uint64_t writes_elsewhere = 0;
  for (std::uint32_t c = 0; c < cluster.size(); ++c) {
    if (c != owner) {
      writes_elsewhere += cluster.collector(c).store().writes_performed();
    }
  }
  EXPECT_EQ(writes_elsewhere, 0u);
  EXPECT_EQ(cluster.collector(owner).store().writes_performed(), 2u);
}

TEST(Cluster, KeysSpreadAcrossCollectors) {
  CollectorCluster cluster(config(), 4);
  std::array<int, 4> per_collector{};
  for (int i = 0; i < 400; ++i) {
    const std::string key = "spread-" + std::to_string(i);
    ++per_collector[cluster.owner_of(bytes_of(key))];
  }
  for (const int c : per_collector) EXPECT_GT(c, 50);
}

TEST(Cluster, QueriesForUnknownKeysAreEmpty) {
  CollectorCluster cluster(config(), 2);
  EXPECT_EQ(cluster.query(bytes_of(std::string{"nothing"})).outcome,
            QueryOutcome::kEmpty);
}

}  // namespace
}  // namespace dart::core
