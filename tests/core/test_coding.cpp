// Tests for the §4 coding-theory hardening: per-location checksums and
// value masking.
#include "core/coding.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/oracle.hpp"

namespace dart::core {
namespace {

DartConfig dart_config(std::uint32_t bits = 8, std::uint32_t n = 4) {
  DartConfig cfg;
  cfg.n_slots = 1 << 14;
  cfg.n_addresses = n;
  cfg.checksum_bits = bits;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xC0D;
  return cfg;
}

std::vector<std::byte> value_of(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

TEST(SlotCodec, PerLocationChecksumsDiffer) {
  const SlotCodec codec(dart_config(32), {.per_location_checksums = true});
  const std::uint32_t base = 0xDEADBEEF;
  EXPECT_NE(codec.stored_checksum(base, 0), codec.stored_checksum(base, 1));
  EXPECT_NE(codec.stored_checksum(base, 1), codec.stored_checksum(base, 2));
  // Deterministic.
  EXPECT_EQ(codec.stored_checksum(base, 0), codec.stored_checksum(base, 0));
}

TEST(SlotCodec, DisabledSchemesAreIdentity) {
  const SlotCodec codec(dart_config(32),
                        {.per_location_checksums = false, .mask_values = false});
  EXPECT_EQ(codec.stored_checksum(0xAB, 0), 0xABu);
  EXPECT_EQ(codec.stored_checksum(0xAB, 3), 0xABu);
  auto v = value_of(7);
  const auto orig = v;
  codec.transform_value(sim_key(1), 0, v);
  EXPECT_EQ(v, orig);
}

TEST(SlotCodec, MaskIsInvolutionAndKeyed) {
  const SlotCodec codec(dart_config(), {.mask_values = true});
  auto v = value_of(0x1234);
  const auto orig = v;
  codec.transform_value(sim_key(1), 0, v);
  EXPECT_NE(v, orig);  // masked
  codec.transform_value(sim_key(1), 0, v);
  EXPECT_EQ(v, orig);  // unmasked

  // Different key or location → different pad.
  auto v1 = orig, v2 = orig, v3 = orig;
  codec.transform_value(sim_key(1), 0, v1);
  codec.transform_value(sim_key(2), 0, v2);
  codec.transform_value(sim_key(1), 1, v3);
  EXPECT_NE(v1, v2);
  EXPECT_NE(v1, v3);
}

TEST(CodedStore, WriteQueryRoundTrip) {
  CodedStore store(dart_config(32), {});
  store.write(sim_key(5), value_of(0x55));
  const auto r = store.query(sim_key(5));
  ASSERT_EQ(r.outcome, QueryOutcome::kFound);
  EXPECT_EQ(r.value, value_of(0x55));
  EXPECT_EQ(r.checksum_matches, 4u);
  EXPECT_EQ(r.distinct_values, 1u);
}

TEST(CodedStore, RawSlotsAreActuallyCoded) {
  CodedStore coded(dart_config(32), {});
  coded.write(sim_key(9), value_of(0x99));
  // The raw slot bytes must differ from the plaintext (value masked, and
  // the stored checksum differs from CRC32(key)&mask at locations ≥ 1).
  const auto& store = coded.store();
  const auto slot = store.read_slot(store.slot_index(sim_key(9), 1));
  EXPECT_NE(slot.checksum, store.key_checksum(sim_key(9)));
  std::uint64_t raw;
  std::memcpy(&raw, slot.value.data(), 8);
  EXPECT_NE(raw, 0x99u);
}

TEST(CodedStore, SharedChecksumCollisionsAreCorrelated_CodedAreNot) {
  // Construct the §4 hazard: a foreign key whose b-bit checksum equals the
  // victim's. With a shared checksum it matches at EVERY location it
  // overwrites; with per-location checksums it almost surely doesn't.
  const auto cfg = dart_config(/*bits=*/8, /*n=*/4);
  const HashFamily family(cfg.n_addresses, cfg.master_seed);

  // Find a colliding pair under the 8-bit shared checksum.
  std::uint64_t victim = 1, impostor = 0;
  bool found = false;
  const auto vk = sim_key(victim);
  const std::uint32_t victim_csum = family.checksum_of(vk, 8);
  for (std::uint64_t j = 2; j < 5000 && !found; ++j) {
    if (family.checksum_of(sim_key(j), 8) == victim_csum) {
      impostor = j;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  // Shared-checksum store: impostor slots match victim queries wherever the
  // addresses overlap... emulate total overlap by querying the impostor's
  // value through the victim's checksum directly.
  const SlotCodec shared(cfg, {.per_location_checksums = false});
  const SlotCodec coded(cfg, {.per_location_checksums = true});
  const std::uint32_t imp_csum = family.checksum_of(sim_key(impostor), 8);
  int shared_matches = 0, coded_matches = 0;
  for (std::uint32_t n = 0; n < 4; ++n) {
    if (shared.stored_checksum(imp_csum, n) ==
        shared.stored_checksum(victim_csum, n)) {
      ++shared_matches;
    }
    if (coded.stored_checksum(imp_csum, n) ==
        coded.stored_checksum(victim_csum, n)) {
      ++coded_matches;
    }
  }
  EXPECT_EQ(shared_matches, 4);  // fully correlated
  EXPECT_EQ(coded_matches, 4);   // XOR with the same mix preserves equality!
  // NOTE: per-location checksums decorrelate *address-dependent* collisions
  // (same stored value at different slots), not same-base-checksum pairs —
  // XOR preserves equality of equal bases. The value mask below is what
  // breaks same-base impostors.
}

TEST(CodedStore, ValueMaskBreaksImpostorConsensus) {
  // Same-checksum impostor whose value lands in two of the victim's slots:
  // with plain slots the two foreign copies AGREE and win consensus; with
  // masked values they decode (under the victim's pad) to two DIFFERENT
  // garbage values and cannot form a plurality or consensus.
  const auto cfg = dart_config(/*bits=*/8, /*n=*/2);

  auto run = [&](bool mask) {
    CodedStore store(cfg, {.per_location_checksums = false,
                           .mask_values = mask});
    const auto victim = sim_key(1);
    // Forge: write the impostor's value bytes into both of the victim's
    // slots with the victim's stored checksums (worst-case §4 scenario).
    auto& raw = store.store();
    const std::uint32_t csum = raw.key_checksum(victim) & 0xFF;
    for (std::uint32_t n = 0; n < 2; ++n) {
      const auto idx = raw.slot_index(victim, n);
      auto* slot = raw.memory().data() + raw.slot_offset(idx);
      std::memcpy(slot, &csum, 1);
      const std::uint64_t foreign = 0xBAD0BAD0BAD0BAD0ull;
      std::memcpy(slot + cfg.checksum_bytes(), &foreign, 8);
    }
    return store.query(victim, ReturnPolicy::kConsensusTwo);
  };

  const auto plain = run(false);
  EXPECT_EQ(plain.outcome, QueryOutcome::kFound);  // confident wrong answer!
  const auto masked = run(true);
  EXPECT_EQ(masked.outcome, QueryOutcome::kEmpty);  // decorrelated → no vote
  EXPECT_EQ(masked.distinct_values, 2u);
}

TEST(CodedStore, ErrorRateDropsUnderChurnWithCoding) {
  // Full churn experiment at small b: plain vs coded return errors under
  // plurality, ground truth via oracle.
  const auto cfg = dart_config(/*bits=*/4, /*n=*/2);
  const std::uint64_t keys = 2 * cfg.n_slots;  // α = 2: heavy churn

  DartStore plain(cfg);
  CodedStore coded(cfg, {});
  Oracle plain_oracle, coded_oracle;
  for (std::uint64_t i = 0; i < keys; ++i) {
    plain.write(sim_key(i), value_of(i));
    coded.write(sim_key(i), value_of(i));
    plain_oracle.record(i, value_of(i));
    coded_oracle.record(i, value_of(i));
  }
  const QueryEngine pq(plain);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)plain_oracle.classify(i, pq.resolve(sim_key(i)));
    (void)coded_oracle.classify(i, coded.query(sim_key(i)));
  }
  // Under *uniform* churn, errors are independent 2^-b flukes that coding
  // cannot reduce (it kills correlated impostor agreement — see
  // ValueMaskBreaksImpostorConsensus). Coding must match the plain store on
  // both success and error rates within sampling noise.
  EXPECT_NEAR(coded_oracle.counts().success_rate(),
              plain_oracle.counts().success_rate(), 0.02);
  EXPECT_NEAR(coded_oracle.counts().error_rate(),
              plain_oracle.counts().error_rate(), 0.005);
}

}  // namespace
}  // namespace dart::core
