// Tests for the §5.2.1 epoch-based persistent archive: file format, CRC
// validation, historical queries, and the seal lifecycle.
#include "core/epoch.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/oracle.hpp"

namespace dart::core {
namespace {

namespace fs = std::filesystem;

class EpochFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dart_epoch_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static DartConfig config() {
    DartConfig cfg;
    cfg.n_slots = 1 << 10;
    cfg.n_addresses = 2;
    cfg.value_bytes = 8;
    cfg.master_seed = 0xE9;
    return cfg;
  }

  static std::vector<std::byte> value_of(std::uint64_t v) {
    std::vector<std::byte> out(8);
    std::memcpy(out.data(), &v, 8);
    return out;
  }

  fs::path dir_;
};

TEST_F(EpochFixture, WriteAndReadBackArchive) {
  DartStore store(config());
  for (std::uint64_t i = 0; i < 100; ++i) {
    store.write(sim_key(i), value_of(i));
  }
  const auto written = write_epoch_archive(path("e0.dart"), 42, store);
  ASSERT_TRUE(written.ok());
  EXPECT_GT(written.value(), 150u);  // ~200 slots minus collisions

  auto reader = EpochArchiveReader::open(path("e0.dart"));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().epoch(), 42u);
  EXPECT_EQ(reader.value().entry_count(), written.value());
  EXPECT_EQ(reader.value().value_bytes(), 8u);

  // Every key queryable from history.
  int found = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto hit = reader.value().query(sim_key(i));
    if (hit && *hit == value_of(i)) ++found;
  }
  EXPECT_GE(found, 98);
}

TEST_F(EpochFixture, UnknownKeyNotInArchive) {
  DartStore store(config());
  store.write(sim_key(1), value_of(1));
  ASSERT_TRUE(write_epoch_archive(path("e.dart"), 0, store).ok());
  auto reader = EpochArchiveReader::open(path("e.dart"));
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.value().query(sim_key(999)).has_value());
}

TEST_F(EpochFixture, EmptyStoreProducesEmptyArchive) {
  DartStore store(config());
  const auto written = write_epoch_archive(path("empty.dart"), 1, store);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.value(), 0u);
  auto reader = EpochArchiveReader::open(path("empty.dart"));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().entry_count(), 0u);
}

TEST_F(EpochFixture, CorruptedArchiveRejected) {
  DartStore store(config());
  store.write(sim_key(1), value_of(1));
  ASSERT_TRUE(write_epoch_archive(path("c.dart"), 0, store).ok());

  // Flip a byte in the middle of the entries.
  std::fstream f(path("c.dart"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(40);
  char b;
  f.seekg(40);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x01);
  f.seekp(40);
  f.write(&b, 1);
  f.close();

  const auto reader = EpochArchiveReader::open(path("c.dart"));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.error().code, "archive_crc");
}

TEST_F(EpochFixture, TruncatedArchiveRejected) {
  DartStore store(config());
  for (std::uint64_t i = 0; i < 10; ++i) store.write(sim_key(i), value_of(i));
  ASSERT_TRUE(write_epoch_archive(path("t.dart"), 0, store).ok());
  const auto size = fs::file_size(path("t.dart"));
  fs::resize_file(path("t.dart"), size - 10);
  EXPECT_FALSE(EpochArchiveReader::open(path("t.dart")).ok());
}

TEST_F(EpochFixture, NotAnArchiveRejected) {
  std::ofstream(path("junk.dart")) << "this is not an archive";
  const auto reader = EpochArchiveReader::open(path("junk.dart"));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.error().code, "archive_magic");
}

TEST_F(EpochFixture, MissingFileRejected) {
  EXPECT_FALSE(EpochArchiveReader::open(path("nope.dart")).ok());
}

TEST_F(EpochFixture, SealLifecycle) {
  EpochedStore epochs(config());
  // Epoch 0: keys 0..49 with generation-0 values.
  for (std::uint64_t i = 0; i < 50; ++i) {
    epochs.live().write(sim_key(i), value_of(i));
  }
  ASSERT_TRUE(epochs.seal_to_file(path("ep0.dart")).ok());
  EXPECT_EQ(epochs.current_epoch(), 1u);
  // Live store is fresh: zero occupancy, zero CPU writes.
  EXPECT_EQ(epochs.live().writes_performed(), 0u);

  // Epoch 1: same keys, new values.
  for (std::uint64_t i = 0; i < 50; ++i) {
    epochs.live().write(sim_key(i), value_of(1000 + i));
  }
  ASSERT_TRUE(epochs.seal_to_file(path("ep1.dart")).ok());

  // History answers per epoch with the right generation.
  auto r0 = EpochArchiveReader::open(path("ep0.dart"));
  auto r1 = EpochArchiveReader::open(path("ep1.dart"));
  ASSERT_TRUE(r0.ok() && r1.ok());
  EXPECT_EQ(r0.value().epoch(), 0u);
  EXPECT_EQ(r1.value().epoch(), 1u);
  const auto h0 = r0.value().query(sim_key(7));
  const auto h1 = r1.value().query(sim_key(7));
  ASSERT_TRUE(h0 && h1);
  EXPECT_EQ(*h0, value_of(7));
  EXPECT_EQ(*h1, value_of(1007));
}

TEST_F(EpochFixture, AmbiguousChecksumInHistoryIsConservativeEmpty) {
  // Two distinct archived values sharing a checksum (tiny b forces it):
  // the historical query must refuse to guess.
  DartConfig cfg = config();
  cfg.checksum_bits = 2;
  DartStore store(cfg);
  for (std::uint64_t i = 0; i < 64; ++i) {
    store.write(sim_key(i), value_of(i));
  }
  ASSERT_TRUE(write_epoch_archive(path("amb.dart"), 0, store).ok());
  auto reader = EpochArchiveReader::open(path("amb.dart"));
  ASSERT_TRUE(reader.ok());

  // With b=2 there are ≤4 checksum classes over ~128 entries: lookups return
  // many values, query() must be empty for at least some keys.
  int empty = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (!reader.value().query(sim_key(i)).has_value()) ++empty;
    EXPECT_GT(reader.value().lookup_key(sim_key(i)).size(), 1u);
  }
  EXPECT_GT(empty, 0);
}

}  // namespace
}  // namespace dart::core
