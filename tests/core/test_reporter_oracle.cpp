// Tests for DartReporter write modes and the ground-truth Oracle.
#include "core/oracle.hpp"
#include "core/reporter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/query.hpp"

namespace dart::core {
namespace {

DartConfig config(WriteMode mode, std::uint32_t n = 2) {
  DartConfig cfg;
  cfg.n_slots = 1 << 14;
  cfg.n_addresses = n;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 8;
  cfg.master_seed = 11;
  cfg.write_mode = mode;
  return cfg;
}

std::vector<std::byte> value_of(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

TEST(Reporter, AllSlotsModeFillsEveryCopy) {
  DartStore store(config(WriteMode::kAllSlots, 4));
  DartReporter reporter(store, 1);
  reporter.report(sim_key(1), value_of(42));
  EXPECT_EQ(reporter.stats().keys_reported, 1u);
  EXPECT_EQ(reporter.stats().reports_sent, 4u);
  for (const auto& s : store.read_slots(sim_key(1))) {
    EXPECT_EQ(s.checksum, store.key_checksum(sim_key(1)));
  }
}

TEST(Reporter, StochasticSingleReportFillsOneSlot) {
  DartStore store(config(WriteMode::kStochastic, 4));
  DartReporter reporter(store, 1);
  reporter.report(sim_key(2), value_of(1), /*reports=*/1);
  EXPECT_EQ(reporter.stats().reports_sent, 1u);
  int matches = 0;
  for (const auto& s : store.read_slots(sim_key(2))) {
    matches += s.checksum == store.key_checksum(sim_key(2)) ? 1 : 0;
  }
  EXPECT_EQ(matches, 1);
}

TEST(Reporter, StochasticManyReportsEventuallyFillAll) {
  DartStore store(config(WriteMode::kStochastic, 4));
  DartReporter reporter(store, 1);
  reporter.report(sim_key(3), value_of(9), /*reports=*/64);
  int matches = 0;
  for (const auto& s : store.read_slots(sim_key(3))) {
    matches += s.checksum == store.key_checksum(sim_key(3)) ? 1 : 0;
  }
  EXPECT_EQ(matches, 4);  // coupon collector: 64 ≫ 4·H₄
}

TEST(Reporter, StochasticCoverageMatchesCouponCollector) {
  // With r reports over N slots, E[covered] = N(1-(1-1/N)^r). Check the
  // aggregate over many keys is near theory.
  DartStore store(config(WriteMode::kStochastic, 2));
  DartReporter reporter(store, 7);
  constexpr int kKeys = 2000;
  constexpr std::uint32_t kReports = 2;
  int covered = 0;
  for (int i = 0; i < kKeys; ++i) {
    reporter.report(sim_key(1000 + i), value_of(i), kReports);
    for (const auto& s : store.read_slots(sim_key(1000 + i))) {
      covered += s.checksum == store.key_checksum(sim_key(1000 + i)) ? 1 : 0;
    }
  }
  const double expect = 2.0 * (1.0 - std::pow(0.5, kReports));  // = 1.5
  EXPECT_NEAR(static_cast<double>(covered) / kKeys, expect, 0.08);
}

TEST(Oracle, ClassifiesCorrect) {
  DartStore store(config(WriteMode::kAllSlots));
  Oracle oracle;
  store.write(sim_key(1), value_of(5));
  oracle.record(1, value_of(5));
  const QueryEngine q(store);
  EXPECT_EQ(oracle.classify(1, q.resolve(sim_key(1))), Verdict::kCorrect);
  EXPECT_EQ(oracle.counts().correct, 1u);
  EXPECT_DOUBLE_EQ(oracle.counts().success_rate(), 1.0);
}

TEST(Oracle, ClassifiesEmpty) {
  DartStore store(config(WriteMode::kAllSlots));
  Oracle oracle;
  oracle.record(2, value_of(1));  // recorded but never stored
  const QueryEngine q(store);
  EXPECT_EQ(oracle.classify(2, q.resolve(sim_key(2))), Verdict::kEmptyReturn);
  EXPECT_EQ(oracle.counts().empty, 1u);
}

TEST(Oracle, ClassifiesNeverWritten) {
  Oracle oracle;
  QueryResult r;
  EXPECT_EQ(oracle.classify(77, r), Verdict::kNeverWritten);
  EXPECT_EQ(oracle.counts().never_written, 1u);
}

TEST(Oracle, LatestWriteWins) {
  DartStore store(config(WriteMode::kAllSlots));
  Oracle oracle;
  store.write(sim_key(4), value_of(1));
  oracle.record(4, value_of(1));
  store.write(sim_key(4), value_of(2));
  oracle.record(4, value_of(2));
  const QueryEngine q(store);
  EXPECT_EQ(oracle.classify(4, q.resolve(sim_key(4))), Verdict::kCorrect);
}

TEST(Oracle, StaleValueIsReturnError) {
  // Key is rewritten in truth but the store still holds the old value (e.g.
  // the report was lost): the query returns stale data → return error.
  DartStore store(config(WriteMode::kAllSlots));
  Oracle oracle;
  store.write(sim_key(5), value_of(1));
  oracle.record(5, value_of(1));
  oracle.record(5, value_of(2));  // truth moved on; store did not
  const QueryEngine q(store);
  EXPECT_EQ(oracle.classify(5, q.resolve(sim_key(5))), Verdict::kReturnError);
}

TEST(Oracle, CountsAccumulateAndReset) {
  Oracle oracle;
  QueryResult empty_result;
  oracle.record(1, value_of(1));
  (void)oracle.classify(1, empty_result);
  (void)oracle.classify(2, empty_result);
  EXPECT_EQ(oracle.counts().total(), 2u);
  oracle.reset_counts();
  EXPECT_EQ(oracle.counts().total(), 0u);
  EXPECT_EQ(oracle.keys_tracked(), 1u);  // truth survives a counter reset
}

TEST(SimKey, LittleEndianEncoding) {
  const auto k = sim_key(0x0102030405060708ull);
  EXPECT_EQ(static_cast<std::uint8_t>(k[0]), 0x08);
  EXPECT_EQ(static_cast<std::uint8_t>(k[7]), 0x01);
}

}  // namespace
}  // namespace dart::core
