// Tests for load-adaptive redundancy (§5.1 future work): occupancy
// estimation, N selection, and the queryability benefit.
#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/oracle.hpp"
#include "core/query.hpp"

namespace dart::core {
namespace {

DartConfig config(std::uint32_t n_max = 8, std::uint64_t slots = 1 << 14) {
  DartConfig cfg;
  cfg.n_slots = slots;
  cfg.n_addresses = n_max;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xADA;
  return cfg;
}

std::vector<std::byte> value_of(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

TEST(OccupancyEstimator, EmptyStoreIsZero) {
  DartStore store(config());
  OccupancyEstimator est(store, 1);
  EXPECT_EQ(est.sample_occupancy(256), 0.0);
}

TEST(OccupancyEstimator, TracksActualOccupancy) {
  DartStore store(config(2, 1 << 14));
  // Fill ~half the slots: K keys × 2 copies ≈ occupancy 1-e^{-2K/M}.
  const std::uint64_t keys = (1 << 14) / 4;  // α = 0.25 → occ ≈ 0.39
  for (std::uint64_t i = 0; i < keys; ++i) {
    store.write(sim_key(i), value_of(i));
  }
  OccupancyEstimator est(store, 2);
  const double occ = est.sample_occupancy(4096);
  EXPECT_NEAR(occ, 1.0 - std::exp(-0.5), 0.04);
}

TEST(OccupancyEstimator, AlphaInversionRecoversLoad) {
  DartStore store(config(2, 1 << 14));
  const double alpha = 0.5;
  const auto keys = static_cast<std::uint64_t>(alpha * (1 << 14));
  for (std::uint64_t i = 0; i < keys; ++i) {
    store.write(sim_key(i), value_of(i));
  }
  OccupancyEstimator est(store, 3);
  EXPECT_NEAR(est.estimate_alpha(2, 4096), alpha, 0.08);
}

TEST(OccupancyEstimator, SaturatedTableReportsHighLoad) {
  DartStore store(config(2, 256));
  for (std::uint64_t i = 0; i < 4096; ++i) {
    store.write(sim_key(i), value_of(i));
  }
  OccupancyEstimator est(store, 4);
  EXPECT_GT(est.estimate_alpha(2, 256), 2.0);
}

TEST(AdaptiveReporter, StartsHighAndBacksOff) {
  DartStore store(config(8, 1 << 12));
  AdaptiveReporter reporter(store, 5, /*reestimate_every=*/256);
  // Empty table → optimal N is the max.
  reporter.report(sim_key(0), value_of(0));
  EXPECT_EQ(reporter.stats().current_n, 8u);

  // Push the table deep into overload; N must fall to 1.
  for (std::uint64_t i = 1; i < 20'000; ++i) {
    reporter.report(sim_key(i), value_of(i));
  }
  EXPECT_EQ(reporter.stats().current_n, 1u);
  EXPECT_GT(reporter.stats().re_estimates, 10u);
  // Copies per key < N_max on average (it adapted down).
  EXPECT_LT(static_cast<double>(reporter.stats().copies_written) /
                static_cast<double>(reporter.stats().keys_written),
            7.0);
}

TEST(AdaptiveReporter, QueriesFindKeysWrittenWithReducedN) {
  DartStore store(config(8, 1 << 12));
  AdaptiveReporter reporter(store, 6);
  for (std::uint64_t i = 0; i < 6'000; ++i) {
    reporter.report(sim_key(i), value_of(i));
  }
  // Queries scan all 8 addresses regardless of the N used at write time.
  const QueryEngine q(store);
  Oracle oracle;
  for (std::uint64_t i = 5'500; i < 6'000; ++i) {  // recent keys
    oracle.record(i, value_of(i));
    (void)oracle.classify(i, q.resolve(sim_key(i)));
  }
  EXPECT_GT(oracle.counts().success_rate(), 0.5);
  EXPECT_EQ(oracle.counts().error, 0u);
}

TEST(AdaptiveReporter, BeatsFixedExtremesAcrossTheSweep) {
  // The §5.1 motivation: a fixed N is wrong somewhere. Fill stores to high
  // load; adaptive should beat fixed N=8 (which self-destructs at high load)
  // and fixed N=1 should beat neither at low load. We check the high-load
  // side, where adaptation matters most.
  const std::uint64_t keys = 12'000;  // α ≈ 2.9 at 2^12 slots
  DartStore fixed8(config(8, 1 << 12));
  DartStore adaptive_store(config(8, 1 << 12));
  AdaptiveReporter adaptive(adaptive_store, 7, 256);

  Oracle fixed_oracle, adaptive_oracle;
  for (std::uint64_t i = 0; i < keys; ++i) {
    fixed8.write(sim_key(i), value_of(i));
    adaptive.report(sim_key(i), value_of(i));
    fixed_oracle.record(i, value_of(i));
    adaptive_oracle.record(i, value_of(i));
  }
  const QueryEngine qf(fixed8);
  const QueryEngine qa(adaptive_store);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)fixed_oracle.classify(i, qf.resolve(sim_key(i)));
    (void)adaptive_oracle.classify(i, qa.resolve(sim_key(i)));
  }
  EXPECT_GT(adaptive_oracle.counts().success_rate(),
            fixed_oracle.counts().success_rate() + 0.05);
}

}  // namespace
}  // namespace dart::core
