// Tests for the §3.2 operator query protocol: wire round trips and the full
// operator ↔ collector exchange over the fabric simulator.
#include "core/query_protocol.hpp"
#include "core/query_service.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/cluster.hpp"
#include "core/oracle.hpp"

namespace dart::core {
namespace {

std::vector<std::byte> key_of(const std::string& s) {
  const auto b = std::as_bytes(std::span{s.data(), s.size()});
  return {b.begin(), b.end()};
}

TEST(QueryProtocol, RequestRoundTrip) {
  QueryRequest req;
  req.request_id = 0xDEADBEEF01ull;
  req.policy = ReturnPolicy::kConsensusTwo;
  req.key = key_of("flow-42");

  const auto wire = encode_query_request(req);
  const auto parsed = parse_query_request(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->request_id, req.request_id);
  EXPECT_EQ(parsed->policy, ReturnPolicy::kConsensusTwo);
  EXPECT_EQ(parsed->key, req.key);
}

TEST(QueryProtocol, ResponseRoundTrip) {
  QueryResponse resp;
  resp.request_id = 77;
  resp.outcome = QueryOutcome::kFound;
  resp.checksum_matches = 2;
  resp.distinct_values = 1;
  resp.value = key_of("some-value-bytes");

  const auto wire = encode_query_response(resp);
  const auto parsed = parse_query_response(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->request_id, 77u);
  EXPECT_EQ(parsed->outcome, QueryOutcome::kFound);
  EXPECT_EQ(parsed->checksum_matches, 2);
  EXPECT_EQ(parsed->value, resp.value);
}

TEST(QueryProtocol, EmptyResponseRoundTrip) {
  QueryResponse resp;
  resp.request_id = 5;
  resp.outcome = QueryOutcome::kEmpty;
  const auto parsed = parse_query_response(encode_query_response(resp));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->outcome, QueryOutcome::kEmpty);
  EXPECT_TRUE(parsed->value.empty());
}

TEST(QueryProtocol, MalformedRejected) {
  EXPECT_FALSE(parse_query_request({}).has_value());
  EXPECT_FALSE(parse_query_response({}).has_value());

  QueryRequest req;
  req.request_id = 1;
  req.key = key_of("k");
  auto wire = encode_query_request(req);
  wire[0] = std::byte{0xFF};  // wrong magic
  EXPECT_FALSE(parse_query_request(wire).has_value());

  wire = encode_query_request(req);
  wire[3] = std::byte{0x09};  // invalid policy
  EXPECT_FALSE(parse_query_request(wire).has_value());

  wire = encode_query_request(req);
  wire.resize(wire.size() - 1);  // truncated key
  EXPECT_FALSE(parse_query_request(wire).has_value());
}

TEST(QueryProtocol, EmptyKeyRejected) {
  QueryRequest req;
  req.request_id = 1;
  const auto wire = encode_query_request(req);  // key empty
  EXPECT_FALSE(parse_query_request(wire).has_value());
}

TEST(QueryProtocol, MakeResponseClampsCounts) {
  QueryResult result;
  result.outcome = QueryOutcome::kFound;
  result.value = key_of("v");
  result.checksum_matches = 1000;
  result.distinct_values = 500;
  const auto resp = make_response(9, result);
  EXPECT_EQ(resp.checksum_matches, 0xFF);
  EXPECT_EQ(resp.distinct_values, 0xFF);
}

// --- end-to-end over the simulator ------------------------------------------

class QueryServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DartConfig cfg;
    cfg.n_slots = 1 << 12;
    cfg.n_addresses = 2;
    cfg.value_bytes = 8;
    cfg.master_seed = 0x0E;
    cluster_ = std::make_unique<CollectorCluster>(cfg, 2);
    crafter_ = std::make_unique<ReportCrafter>(cfg);

    // Service nodes front the two collectors; the operator joins the same
    // management network (star links for simplicity).
    std::vector<net::Ipv4Addr> service_ips;
    for (std::uint32_t c = 0; c < 2; ++c) {
      const auto ip = net::Ipv4Addr::from_octets(10, 0, 100, static_cast<std::uint8_t>(c));
      service_ips.push_back(ip);
    }
    auto resolver = [this](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
      for (const auto& [addr, node] : arp_) {
        if (addr == ip) return node;
      }
      return std::nullopt;
    };
    for (std::uint32_t c = 0; c < 2; ++c) {
      services_.push_back(std::make_unique<QueryServiceNode>(
          cluster_->collector(c), service_ips[c], resolver));
    }
    const auto operator_ip = net::Ipv4Addr::from_octets(10, 9, 0, 1);
    operator_ = std::make_unique<OperatorClient>(*crafter_, operator_ip,
                                                 service_ips, resolver);

    const auto op_node = sim_.add_node(*operator_);
    arp_.emplace_back(operator_ip, op_node);
    for (std::uint32_t c = 0; c < 2; ++c) {
      const auto node = sim_.add_node(*services_[c]);
      arp_.emplace_back(service_ips[c], node);
      sim_.connect(op_node, node, /*latency_ns=*/2000);
    }
  }

  std::vector<std::byte> value_of(std::uint64_t v) {
    std::vector<std::byte> out(8);
    std::memcpy(out.data(), &v, 8);
    return out;
  }

  net::Simulator sim_{1};
  std::unique_ptr<CollectorCluster> cluster_;
  std::unique_ptr<ReportCrafter> crafter_;
  std::vector<std::unique_ptr<QueryServiceNode>> services_;
  std::unique_ptr<OperatorClient> operator_;
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp_;
};

TEST_F(QueryServiceFixture, QueryOverTheWireFindsValue) {
  const auto key = key_of("remote-query-key");
  cluster_->write(key, value_of(0xCAFE));

  const auto id = operator_->query(key);
  EXPECT_EQ(operator_->pending(), 1u);
  sim_.run();

  const auto resp = operator_->take_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->outcome, QueryOutcome::kFound);
  std::uint64_t got;
  std::memcpy(&got, resp->value.data(), 8);
  EXPECT_EQ(got, 0xCAFEu);
  EXPECT_EQ(operator_->pending(), 0u);
  // Exactly one service did the work — the key's hash owner.
  EXPECT_EQ(services_[cluster_->owner_of(key)]->requests_served(), 1u);
  EXPECT_EQ(services_[1 - cluster_->owner_of(key)]->requests_served(), 0u);
}

TEST_F(QueryServiceFixture, UnknownKeyYieldsEmptyResponse) {
  const auto key = key_of("never-written");
  const auto id = operator_->query(key);
  sim_.run();
  const auto resp = operator_->take_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->outcome, QueryOutcome::kEmpty);
}

TEST_F(QueryServiceFixture, ConcurrentQueriesToBothCollectors) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> issued;  // id, truth
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto key = key_of("bulk-" + std::to_string(i));
    cluster_->write(key, value_of(i));
    issued.emplace_back(operator_->query(key), i);
  }
  sim_.run();
  for (const auto& [id, truth] : issued) {
    const auto resp = operator_->take_response(id);
    ASSERT_TRUE(resp.has_value()) << id;
    ASSERT_EQ(resp->outcome, QueryOutcome::kFound);
    std::uint64_t got;
    std::memcpy(&got, resp->value.data(), 8);
    EXPECT_EQ(got, truth);
  }
  EXPECT_GT(services_[0]->requests_served(), 10u);
  EXPECT_GT(services_[1]->requests_served(), 10u);
}

TEST_F(QueryServiceFixture, PerQueryPolicyHonored) {
  // One copy clobbered → plurality finds it, consensus-2 returns empty
  // (the §4 per-query trade-off, now over the wire).
  const auto key = key_of("policy-key");
  auto& store = cluster_->collector(cluster_->owner_of(key)).store();
  store.write(key, value_of(0xAB));
  // Clobber copy 1's checksum.
  const auto idx = store.slot_index(key, 1);
  store.memory()[store.slot_offset(idx)] ^= std::byte{0xFF};

  const auto id_plural = operator_->query(key, ReturnPolicy::kPlurality);
  const auto id_consensus = operator_->query(key, ReturnPolicy::kConsensusTwo);
  sim_.run();
  EXPECT_EQ(operator_->take_response(id_plural)->outcome, QueryOutcome::kFound);
  EXPECT_EQ(operator_->take_response(id_consensus)->outcome,
            QueryOutcome::kEmpty);
}

TEST_F(QueryServiceFixture, TakeResponseIsOneShot) {
  const auto key = key_of("oneshot");
  cluster_->write(key, value_of(1));
  const auto id = operator_->query(key);
  sim_.run();
  EXPECT_TRUE(operator_->take_response(id).has_value());
  EXPECT_FALSE(operator_->take_response(id).has_value());
}

}  // namespace
}  // namespace dart::core
