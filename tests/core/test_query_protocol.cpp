// Tests for the §3.2 operator query protocol: wire round trips and the full
// operator ↔ collector exchange over the fabric simulator.
#include "core/query_protocol.hpp"
#include "core/query_service.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/cluster.hpp"
#include "core/oracle.hpp"
#include "net/headers.hpp"

namespace dart::core {
namespace {

std::vector<std::byte> key_of(const std::string& s) {
  const auto b = std::as_bytes(std::span{s.data(), s.size()});
  return {b.begin(), b.end()};
}

TEST(QueryProtocol, RequestRoundTrip) {
  QueryRequest req;
  req.request_id = 0xDEADBEEF01ull;
  req.policy = ReturnPolicy::kConsensusTwo;
  req.key = key_of("flow-42");

  const auto wire = encode_query_request(req);
  const auto parsed = parse_query_request(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->request_id, req.request_id);
  EXPECT_EQ(parsed->policy, ReturnPolicy::kConsensusTwo);
  EXPECT_EQ(parsed->key, req.key);
}

TEST(QueryProtocol, ResponseRoundTrip) {
  QueryResponse resp;
  resp.request_id = 77;
  resp.outcome = QueryOutcome::kFound;
  resp.checksum_matches = 2;
  resp.distinct_values = 1;
  resp.value = key_of("some-value-bytes");

  const auto wire = encode_query_response(resp);
  const auto parsed = parse_query_response(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->request_id, 77u);
  EXPECT_EQ(parsed->outcome, QueryOutcome::kFound);
  EXPECT_EQ(parsed->checksum_matches, 2);
  EXPECT_EQ(parsed->value, resp.value);
}

TEST(QueryProtocol, EmptyResponseRoundTrip) {
  QueryResponse resp;
  resp.request_id = 5;
  resp.outcome = QueryOutcome::kEmpty;
  const auto parsed = parse_query_response(encode_query_response(resp));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->outcome, QueryOutcome::kEmpty);
  EXPECT_TRUE(parsed->value.empty());
}

TEST(QueryProtocol, MalformedRejected) {
  EXPECT_FALSE(parse_query_request({}).has_value());
  EXPECT_FALSE(parse_query_response({}).has_value());

  QueryRequest req;
  req.request_id = 1;
  req.key = key_of("k");
  auto wire = encode_query_request(req);
  wire[0] = std::byte{0xFF};  // wrong magic
  EXPECT_FALSE(parse_query_request(wire).has_value());

  wire = encode_query_request(req);
  wire[3] = std::byte{0x09};  // invalid policy
  EXPECT_FALSE(parse_query_request(wire).has_value());

  wire = encode_query_request(req);
  wire.resize(wire.size() - 1);  // truncated key
  EXPECT_FALSE(parse_query_request(wire).has_value());
}

TEST(QueryProtocol, EmptyKeyRejected) {
  QueryRequest req;
  req.request_id = 1;
  const auto wire = encode_query_request(req);  // key empty
  EXPECT_FALSE(parse_query_request(wire).has_value());
}

// v2 regression (PROTOCOLS.md "Epoch echo"): both directions carry the
// operator's epoch, and the response's degradation fields survive the wire.
TEST(QueryProtocol, EpochAndDegradationRoundTrip) {
  QueryRequest req;
  req.request_id = 31;
  req.epoch = 0xA1B2C3D4;
  req.key = key_of("epoch-key");
  const auto preq = parse_query_request(encode_query_request(req));
  ASSERT_TRUE(preq.has_value());
  EXPECT_EQ(preq->epoch, 0xA1B2C3D4u);

  QueryResponse resp;
  resp.request_id = 31;
  resp.epoch = 0xA1B2C3D4;
  resp.flags = kResponseDegraded;
  resp.stale_epochs = 3;
  resp.outcome = QueryOutcome::kEmpty;
  const auto presp = parse_query_response(encode_query_response(resp));
  ASSERT_TRUE(presp.has_value());
  EXPECT_EQ(presp->epoch, 0xA1B2C3D4u);
  EXPECT_TRUE(presp->degraded());
  EXPECT_EQ(presp->stale_epochs, 3u);

  resp.flags = 0;
  EXPECT_FALSE(parse_query_response(encode_query_response(resp))->degraded());
}

TEST(QueryProtocol, MakeResponseClampsCounts) {
  QueryResult result;
  result.outcome = QueryOutcome::kFound;
  result.value = key_of("v");
  result.checksum_matches = 1000;
  result.distinct_values = 500;
  const auto resp = make_response(9, result);
  EXPECT_EQ(resp.checksum_matches, 0xFF);
  EXPECT_EQ(resp.distinct_values, 0xFF);
}

// --- end-to-end over the simulator ------------------------------------------

class QueryServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DartConfig cfg;
    cfg.n_slots = 1 << 12;
    cfg.n_addresses = 2;
    cfg.value_bytes = 8;
    cfg.master_seed = 0x0E;
    cluster_ = std::make_unique<CollectorCluster>(cfg, 2);
    crafter_ = std::make_unique<ReportCrafter>(cfg);

    // Service nodes front the two collectors; the operator joins the same
    // management network (star links for simplicity).
    std::vector<net::Ipv4Addr> service_ips;
    for (std::uint32_t c = 0; c < 2; ++c) {
      const auto ip = net::Ipv4Addr::from_octets(10, 0, 100, static_cast<std::uint8_t>(c));
      service_ips.push_back(ip);
    }
    auto resolver = [this](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
      for (const auto& [addr, node] : arp_) {
        if (addr == ip) return node;
      }
      return std::nullopt;
    };
    for (std::uint32_t c = 0; c < 2; ++c) {
      services_.push_back(std::make_unique<QueryServiceNode>(
          cluster_->collector(c), service_ips[c], resolver));
    }
    const auto operator_ip = net::Ipv4Addr::from_octets(10, 9, 0, 1);
    operator_ = std::make_unique<OperatorClient>(*crafter_, operator_ip,
                                                 service_ips, resolver);

    const auto op_node = sim_.add_node(*operator_);
    arp_.emplace_back(operator_ip, op_node);
    for (std::uint32_t c = 0; c < 2; ++c) {
      const auto node = sim_.add_node(*services_[c]);
      arp_.emplace_back(service_ips[c], node);
      sim_.connect(op_node, node, /*latency_ns=*/2000);
    }
  }

  std::vector<std::byte> value_of(std::uint64_t v) {
    std::vector<std::byte> out(8);
    std::memcpy(out.data(), &v, 8);
    return out;
  }

  net::Simulator sim_{1};
  std::unique_ptr<CollectorCluster> cluster_;
  std::unique_ptr<ReportCrafter> crafter_;
  std::vector<std::unique_ptr<QueryServiceNode>> services_;
  std::unique_ptr<OperatorClient> operator_;
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp_;
};

TEST_F(QueryServiceFixture, QueryOverTheWireFindsValue) {
  const auto key = key_of("remote-query-key");
  cluster_->write(key, value_of(0xCAFE));

  const auto id = operator_->query(key);
  EXPECT_EQ(operator_->pending(), 1u);
  sim_.run();

  const auto resp = operator_->take_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->outcome, QueryOutcome::kFound);
  std::uint64_t got;
  std::memcpy(&got, resp->value.data(), 8);
  EXPECT_EQ(got, 0xCAFEu);
  EXPECT_EQ(operator_->pending(), 0u);
  // Exactly one service did the work — the key's hash owner.
  EXPECT_EQ(services_[cluster_->owner_of(key)]->requests_served(), 1u);
  EXPECT_EQ(services_[1 - cluster_->owner_of(key)]->requests_served(), 0u);
}

TEST_F(QueryServiceFixture, UnknownKeyYieldsEmptyResponse) {
  const auto key = key_of("never-written");
  const auto id = operator_->query(key);
  sim_.run();
  const auto resp = operator_->take_response(id);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->outcome, QueryOutcome::kEmpty);
}

TEST_F(QueryServiceFixture, ConcurrentQueriesToBothCollectors) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> issued;  // id, truth
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto key = key_of("bulk-" + std::to_string(i));
    cluster_->write(key, value_of(i));
    issued.emplace_back(operator_->query(key), i);
  }
  sim_.run();
  for (const auto& [id, truth] : issued) {
    const auto resp = operator_->take_response(id);
    ASSERT_TRUE(resp.has_value()) << id;
    ASSERT_EQ(resp->outcome, QueryOutcome::kFound);
    std::uint64_t got;
    std::memcpy(&got, resp->value.data(), 8);
    EXPECT_EQ(got, truth);
  }
  EXPECT_GT(services_[0]->requests_served(), 10u);
  EXPECT_GT(services_[1]->requests_served(), 10u);
}

TEST_F(QueryServiceFixture, PerQueryPolicyHonored) {
  // One copy clobbered → plurality finds it, consensus-2 returns empty
  // (the §4 per-query trade-off, now over the wire).
  const auto key = key_of("policy-key");
  auto& store = cluster_->collector(cluster_->owner_of(key)).store();
  store.write(key, value_of(0xAB));
  // Clobber copy 1's checksum.
  const auto idx = store.slot_index(key, 1);
  store.memory()[store.slot_offset(idx)] ^= std::byte{0xFF};

  const auto id_plural = operator_->query(key, ReturnPolicy::kPlurality);
  const auto id_consensus = operator_->query(key, ReturnPolicy::kConsensusTwo);
  sim_.run();
  EXPECT_EQ(operator_->take_response(id_plural)->outcome, QueryOutcome::kFound);
  EXPECT_EQ(operator_->take_response(id_consensus)->outcome,
            QueryOutcome::kEmpty);
}

TEST_F(QueryServiceFixture, TakeResponseIsOneShot) {
  const auto key = key_of("oneshot");
  cluster_->write(key, value_of(1));
  const auto id = operator_->query(key);
  sim_.run();
  EXPECT_TRUE(operator_->take_response(id).has_value());
  EXPECT_FALSE(operator_->take_response(id).has_value());
}

// The live exchange echoes the request's epoch even when responses arrive
// out of order w.r.t. epoch bumps — each answer anchors to the epoch its
// request was stamped with, not the client's current one.
TEST_F(QueryServiceFixture, ResponseEchoesRequestEpoch) {
  const auto key = key_of("epoch-echo");
  cluster_->write(key, value_of(0xE0));

  operator_->set_epoch(7);
  const auto id_old = operator_->query(key);
  operator_->set_epoch(8);
  const auto id_new = operator_->query(key);
  sim_.run();

  const auto old_resp = operator_->take_response(id_old);
  const auto new_resp = operator_->take_response(id_new);
  ASSERT_TRUE(old_resp.has_value());
  ASSERT_TRUE(new_resp.has_value());
  EXPECT_EQ(old_resp->epoch, 7u);
  EXPECT_EQ(new_resp->epoch, 8u);
  // Healthy service, healthy store: no degradation markers.
  EXPECT_FALSE(old_resp->degraded());
  EXPECT_EQ(old_resp->stale_epochs, 0u);
}

// --- query-plane hardening regressions ---------------------------------------

std::vector<std::byte> query_frame(net::Ipv4Addr src, net::Ipv4Addr dst,
                                   std::span<const std::byte> payload,
                                   std::uint16_t dst_port = kDartQueryUdpPort) {
  net::UdpFrameSpec spec;
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.src_port = kDartQueryUdpPort;
  spec.dst_port = dst_port;
  return net::build_udp_frame(spec, payload);
}

// A service must not resolve well-formed requests addressed to another node:
// wrong-dst frames count as not_for_me, never as malformed or served.
TEST_F(QueryServiceFixture, WrongDstIpIsNotForMeNotMalformed) {
  QueryRequest req;
  req.request_id = 1;
  req.key = key_of("misrouted");

  // Well-formed request, but addressed to service 1, delivered to service 0.
  services_[0]->receive(
      net::Packet(query_frame(operator_->ip(), services_[1]->ip(),
                              encode_query_request(req))),
      0);
  EXPECT_EQ(services_[0]->not_for_me(), 1u);
  EXPECT_EQ(services_[0]->malformed_requests(), 0u);
  EXPECT_EQ(services_[0]->requests_served(), 0u);

  // Wrong UDP port is routing noise too.
  services_[0]->receive(
      net::Packet(query_frame(operator_->ip(), services_[0]->ip(),
                              encode_query_request(req), /*dst_port=*/9999)),
      0);
  EXPECT_EQ(services_[0]->not_for_me(), 2u);
  EXPECT_EQ(services_[0]->malformed_requests(), 0u);

  // A bad DQ payload addressed TO US is a protocol error.
  const auto junk = key_of("not-a-query");
  services_[0]->receive(
      net::Packet(query_frame(operator_->ip(), services_[0]->ip(), junk)), 0);
  EXPECT_EQ(services_[0]->malformed_requests(), 1u);
  EXPECT_EQ(services_[0]->not_for_me(), 2u);
  EXPECT_EQ(services_[0]->requests_served(), 0u);
}

// Two operator clients on one fabric: a response misdelivered to the wrong
// client (its dst IP names the other operator) must not be recorded.
TEST_F(QueryServiceFixture, ClientIgnoresResponsesAddressedElsewhere) {
  const auto key = key_of("two-client-key");
  cluster_->write(key, value_of(0xBEEF));

  // Client B shares the management network, but the ARP row for client A's
  // IP is repointed at B's node — every reply to A is misdelivered to B.
  const auto ip_b = net::Ipv4Addr::from_octets(10, 9, 0, 2);
  std::vector<net::Ipv4Addr> service_ips;
  for (const auto& svc : services_) service_ips.push_back(svc->ip());
  auto resolver = [this](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
    for (const auto& [addr, node] : arp_) {
      if (addr == ip) return node;
    }
    return std::nullopt;
  };
  OperatorClient client_b(*crafter_, ip_b, service_ips, resolver);
  const auto b_node = sim_.add_node(client_b);
  arp_.emplace_back(ip_b, b_node);
  for (const auto& [addr, node] : std::vector<std::pair<net::Ipv4Addr,
                                                        net::NodeId>>(arp_)) {
    if (addr == operator_->ip()) continue;
    if (node != b_node) sim_.connect(b_node, node, 2000);
  }
  for (auto& [addr, node] : arp_) {
    if (addr == operator_->ip()) node = b_node;  // the misconfiguration
  }

  const auto id = operator_->query(key);
  EXPECT_EQ(operator_->pending(), 1u);
  sim_.run();

  // B saw a well-formed response addressed to A and refused it.
  EXPECT_EQ(client_b.stray_responses(), 1u);
  EXPECT_EQ(client_b.responses_received(), 0u);
  EXPECT_FALSE(client_b.take_response(id).has_value());
  // A never got it: the request stays outstanding, nothing was recorded.
  EXPECT_EQ(operator_->pending(), 1u);
  EXPECT_FALSE(operator_->take_response(id).has_value());
}

// Relay node that delivers every packet to `target` twice — a duplicating
// link, the UDP failure mode that used to double-decrement pending_.
class DuplicatingRelay final : public net::Node {
 public:
  explicit DuplicatingRelay(net::NodeId target) : target_(target) {}
  void receive(net::Packet packet, std::uint64_t) override {
    sim_->send(self_, target_, packet.clone());
    sim_->send(self_, target_, std::move(packet));
  }

 private:
  net::NodeId target_;
};

// A duplicated response must retire the request exactly once: the first copy
// is recorded, the second counts as unexpected and cannot corrupt pending().
TEST_F(QueryServiceFixture, DuplicatedResponseRetiresRequestOnce) {
  const auto key = key_of("dup-key");
  cluster_->write(key, value_of(0xD0D0));
  const std::uint32_t owner = cluster_->owner_of(key);

  // Splice the relay into the service→operator return path: the ARP row for
  // the operator's IP now resolves to the relay, which forwards every frame
  // to the operator twice.
  net::NodeId op_node = 0;
  for (const auto& [addr, node] : arp_) {
    if (addr == operator_->ip()) op_node = node;
  }
  DuplicatingRelay relay(op_node);
  const auto relay_node = sim_.add_node(relay);
  for (std::uint32_t c = 0; c < services_.size(); ++c) {
    net::NodeId svc_node = 0;
    for (const auto& [addr, node] : arp_) {
      if (addr == services_[c]->ip()) svc_node = node;
    }
    sim_.connect(svc_node, relay_node, 1000);
  }
  sim_.connect(relay_node, op_node, 1000);
  for (auto& [addr, node] : arp_) {
    if (addr == operator_->ip()) node = relay_node;
  }

  const auto id = operator_->query(key);
  EXPECT_EQ(operator_->pending(), 1u);
  sim_.run();

  EXPECT_EQ(services_[owner]->requests_served(), 1u);
  EXPECT_EQ(operator_->responses_received(), 1u);
  EXPECT_EQ(operator_->unexpected_responses(), 1u);
  EXPECT_EQ(operator_->pending(), 0u);

  const auto resp = operator_->take_response(id);
  ASSERT_TRUE(resp.has_value());
  std::uint64_t got;
  std::memcpy(&got, resp->value.data(), 8);
  EXPECT_EQ(got, 0xD0D0u);
}

// Replayed responses for an already-retired id are ignored outright — they
// must not overwrite responses_ or go negative on anything.
TEST_F(QueryServiceFixture, ReplayedResponseForRetiredIdIsIgnored) {
  const auto key = key_of("replay-key");
  cluster_->write(key, value_of(0xFACE));
  const auto id = operator_->query(key);
  sim_.run();
  EXPECT_EQ(operator_->pending(), 0u);

  // Replay: hand-craft a response with the retired id and a DIFFERENT value.
  QueryResponse forged;
  forged.request_id = id;
  forged.outcome = QueryOutcome::kFound;
  forged.value = value_of(0xBAD);
  operator_->receive(
      net::Packet(query_frame(services_[0]->ip(), operator_->ip(),
                              encode_query_response(forged))),
      0);

  EXPECT_EQ(operator_->unexpected_responses(), 1u);
  EXPECT_EQ(operator_->pending(), 0u);
  const auto resp = operator_->take_response(id);
  ASSERT_TRUE(resp.has_value());
  std::uint64_t got;
  std::memcpy(&got, resp->value.data(), 8);
  EXPECT_EQ(got, 0xFACEu) << "replay must not overwrite the recorded answer";
}

}  // namespace
}  // namespace dart::core
