// Tests for the query engine's return policies (§3.2, §4).
#include "core/query.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/oracle.hpp"

namespace dart::core {
namespace {

DartConfig config(std::uint32_t n, std::uint64_t slots = 1 << 16) {
  DartConfig cfg;
  cfg.n_slots = slots;
  cfg.n_addresses = n;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 8;
  cfg.master_seed = 3;
  return cfg;
}

std::vector<std::byte> value_of(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

// Writes a forged slot: the checksum of `key` but an arbitrary value — the
// collision scenarios §4 analyzes, constructed deterministically.
void forge_slot(DartStore& store, std::span<const std::byte> key,
                std::uint32_t n, std::uint64_t forged_value) {
  const auto idx = store.slot_index(key, n);
  const auto csum = store.key_checksum(key);
  auto* slot = store.memory().data() + store.slot_offset(idx);
  std::memcpy(slot, &csum, 4);
  std::memcpy(slot + 4, &forged_value, 8);
}

// Overwrites slot n of `key` with a non-matching checksum (an unrelated key
// landed there).
void clobber_slot(DartStore& store, std::span<const std::byte> key,
                  std::uint32_t n) {
  const auto idx = store.slot_index(key, n);
  const std::uint32_t other = ~store.key_checksum(key);
  auto* slot = store.memory().data() + store.slot_offset(idx);
  std::memcpy(slot, &other, 4);
}

TEST(QueryEngine, FreshKeyFoundByAllPolicies) {
  DartStore store(config(2));
  store.write(sim_key(1), value_of(0x11));
  const QueryEngine q(store);
  for (const auto policy :
       {ReturnPolicy::kFirstMatch, ReturnPolicy::kSingleDistinct,
        ReturnPolicy::kPlurality, ReturnPolicy::kConsensusTwo}) {
    const auto r = q.resolve(sim_key(1), policy);
    ASSERT_EQ(r.outcome, QueryOutcome::kFound) << to_string(policy);
    std::uint64_t got;
    std::memcpy(&got, r.value.data(), 8);
    EXPECT_EQ(got, 0x11u);
    EXPECT_EQ(r.checksum_matches, 2u);
    EXPECT_EQ(r.distinct_values, 1u);
  }
}

TEST(QueryEngine, UnwrittenKeyIsEmpty) {
  DartStore store(config(2));
  const QueryEngine q(store);
  const auto r = q.resolve(sim_key(999));
  EXPECT_EQ(r.outcome, QueryOutcome::kEmpty);
  EXPECT_EQ(r.checksum_matches, 0u);
}

TEST(QueryEngine, AllSlotsClobberedIsEmpty) {
  DartStore store(config(2));
  const auto key = sim_key(5);
  store.write(key, value_of(1));
  clobber_slot(store, key, 0);
  clobber_slot(store, key, 1);
  const QueryEngine q(store);
  EXPECT_EQ(q.resolve(key).outcome, QueryOutcome::kEmpty);
}

TEST(QueryEngine, OneSurvivorStillFound) {
  DartStore store(config(4));
  const auto key = sim_key(6);
  store.write(key, value_of(0x66));
  clobber_slot(store, key, 0);
  clobber_slot(store, key, 2);
  clobber_slot(store, key, 3);
  const QueryEngine q(store);
  const auto r = q.resolve(key, ReturnPolicy::kPlurality);
  ASSERT_EQ(r.outcome, QueryOutcome::kFound);
  EXPECT_EQ(r.checksum_matches, 1u);
}

TEST(QueryEngine, SingleDistinctRefusesAmbiguity) {
  DartStore store(config(2));
  const auto key = sim_key(7);
  store.write(key, value_of(0x77));
  forge_slot(store, key, 1, 0xBAD);  // same checksum, different value
  const QueryEngine q(store);
  const auto r = q.resolve(key, ReturnPolicy::kSingleDistinct);
  EXPECT_EQ(r.outcome, QueryOutcome::kEmpty);  // ambiguous → empty return
  EXPECT_EQ(r.distinct_values, 2u);
}

TEST(QueryEngine, PluralityBreaksTies) {
  DartStore store(config(3));
  const auto key = sim_key(8);
  store.write(key, value_of(0x88));     // 3 copies of 0x88
  forge_slot(store, key, 0, 0xBAD);     // now 2×0x88, 1×BAD
  const QueryEngine q(store);
  const auto r = q.resolve(key, ReturnPolicy::kPlurality);
  ASSERT_EQ(r.outcome, QueryOutcome::kFound);
  std::uint64_t got;
  std::memcpy(&got, r.value.data(), 8);
  EXPECT_EQ(got, 0x88u);
}

TEST(QueryEngine, PluralityTieIsEmpty) {
  DartStore store(config(2));
  const auto key = sim_key(9);
  store.write(key, value_of(0x99));
  forge_slot(store, key, 1, 0xBAD);  // 1 vs 1 tie
  const QueryEngine q(store);
  EXPECT_EQ(q.resolve(key, ReturnPolicy::kPlurality).outcome,
            QueryOutcome::kEmpty);
}

TEST(QueryEngine, ConsensusTwoNeedsTwoCopies) {
  DartStore store(config(4));
  const auto key = sim_key(10);
  store.write(key, value_of(0xAA));
  // Clobber all but one copy: plurality would return it, consensus-2 won't.
  clobber_slot(store, key, 0);
  clobber_slot(store, key, 1);
  clobber_slot(store, key, 2);
  const QueryEngine q(store);
  EXPECT_EQ(q.resolve(key, ReturnPolicy::kPlurality).outcome,
            QueryOutcome::kFound);
  EXPECT_EQ(q.resolve(key, ReturnPolicy::kConsensusTwo).outcome,
            QueryOutcome::kEmpty);
}

TEST(QueryEngine, ConsensusTwoAcceptsDoubleValue) {
  DartStore store(config(4));
  const auto key = sim_key(11);
  store.write(key, value_of(0xBB));
  clobber_slot(store, key, 0);
  clobber_slot(store, key, 1);
  // Two surviving copies of 0xBB remain.
  const QueryEngine q(store);
  const auto r = q.resolve(key, ReturnPolicy::kConsensusTwo);
  ASSERT_EQ(r.outcome, QueryOutcome::kFound);
  EXPECT_EQ(r.checksum_matches, 2u);
}

TEST(QueryEngine, FirstMatchReturnsForgedValueOnErrorPath) {
  // The return-error case of §4: all originals overwritten, one forged slot
  // matches the checksum — first-match happily returns the wrong value; the
  // oracle classifies it as a return error.
  DartStore store(config(2));
  const auto key = sim_key(12);
  Oracle oracle;
  store.write(key, value_of(0xCC));
  oracle.record(12, value_of(0xCC));
  forge_slot(store, key, 0, 0xBAD);
  clobber_slot(store, key, 1);

  const QueryEngine q(store);
  const auto r = q.resolve(key, ReturnPolicy::kFirstMatch);
  ASSERT_EQ(r.outcome, QueryOutcome::kFound);
  EXPECT_EQ(oracle.classify(12, r), Verdict::kReturnError);
  EXPECT_EQ(oracle.counts().error, 1u);
}

TEST(QueryEngine, DefaultPolicyIsConfigurable) {
  DartStore store(config(2));
  const QueryEngine q(store, ReturnPolicy::kConsensusTwo);
  EXPECT_EQ(q.default_policy(), ReturnPolicy::kConsensusTwo);
}

TEST(QueryEngine, PolicyNames) {
  EXPECT_STREQ(to_string(ReturnPolicy::kFirstMatch), "first-match");
  EXPECT_STREQ(to_string(ReturnPolicy::kSingleDistinct), "single-distinct");
  EXPECT_STREQ(to_string(ReturnPolicy::kPlurality), "plurality");
  EXPECT_STREQ(to_string(ReturnPolicy::kConsensusTwo), "consensus-2");
}

// §4's per-query policy choice: the same store state can answer one query
// strictly and another leniently.
TEST(QueryEngine, PerQueryPolicyChoice) {
  DartStore store(config(4));
  const auto key = sim_key(13);
  store.write(key, value_of(0xDD));
  clobber_slot(store, key, 0);
  clobber_slot(store, key, 1);
  clobber_slot(store, key, 2);
  const QueryEngine q(store, ReturnPolicy::kPlurality);
  EXPECT_EQ(q.resolve(key).outcome, QueryOutcome::kFound);
  EXPECT_EQ(q.resolve(key, ReturnPolicy::kConsensusTwo).outcome,
            QueryOutcome::kEmpty);
}

// Property sweep: structural invariants of resolve() across N and policies,
// on stores filled at moderate load (real collisions present).
struct QuerySweepCase {
  std::uint32_t n;
  ReturnPolicy policy;
};

class QueryInvariants : public ::testing::TestWithParam<QuerySweepCase> {};

TEST_P(QueryInvariants, StructuralInvariantsHold) {
  const auto param = GetParam();
  DartConfig cfg;
  cfg.n_slots = 1 << 12;
  cfg.n_addresses = param.n;
  cfg.checksum_bits = 8;  // collisions visible
  cfg.value_bytes = 8;
  cfg.master_seed = 0x1A7;
  DartStore store(cfg);
  const auto keys = cfg.n_slots;  // α = 1
  for (std::uint64_t i = 0; i < keys; ++i) {
    store.write(sim_key(i), value_of(i));
  }
  const QueryEngine q(store);
  for (std::uint64_t i = 0; i < keys; i += 7) {
    const auto r = q.resolve(sim_key(i), param.policy);
    ASSERT_LE(r.checksum_matches, param.n);
    ASSERT_LE(r.distinct_values, r.checksum_matches);
    if (r.outcome == QueryOutcome::kFound) {
      ASSERT_EQ(r.value.size(), cfg.value_bytes);
      // The returned value must literally exist in one of the key's slots
      // with a matching checksum (no fabrication).
      bool present = false;
      for (const auto& slot : store.read_slots(sim_key(i))) {
        if (slot.checksum == store.key_checksum(sim_key(i)) &&
            std::equal(r.value.begin(), r.value.end(), slot.value.begin())) {
          present = true;
        }
      }
      ASSERT_TRUE(present);
      if (param.policy == ReturnPolicy::kSingleDistinct) {
        ASSERT_EQ(r.distinct_values, 1u);
      }
      if (param.policy == ReturnPolicy::kConsensusTwo) {
        // Winner appeared at least twice among the matches.
        ASSERT_GE(r.checksum_matches, 2u);
      }
    } else {
      ASSERT_TRUE(r.value.empty());
      if (param.policy == ReturnPolicy::kFirstMatch) {
        ASSERT_EQ(r.checksum_matches, 0u);  // first-match only misses on zero
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueryInvariants,
    ::testing::Values(QuerySweepCase{1, ReturnPolicy::kFirstMatch},
                      QuerySweepCase{2, ReturnPolicy::kPlurality},
                      QuerySweepCase{2, ReturnPolicy::kConsensusTwo},
                      QuerySweepCase{4, ReturnPolicy::kSingleDistinct},
                      QuerySweepCase{4, ReturnPolicy::kPlurality},
                      QuerySweepCase{8, ReturnPolicy::kPlurality},
                      QuerySweepCase{8, ReturnPolicy::kConsensusTwo}));

}  // namespace
}  // namespace dart::core
