// Coverage for the Packet buffer + metadata type.
#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace dart::net {
namespace {

TEST(Packet, DefaultIsEmpty) {
  Packet p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
}

TEST(Packet, OwnsBytes) {
  Packet p(std::vector<std::byte>(10, std::byte{0xAA}));
  EXPECT_EQ(p.size(), 10u);
  EXPECT_EQ(static_cast<std::uint8_t>(p.bytes()[9]), 0xAA);
  p.mutable_bytes()[0] = std::byte{0x01};
  EXPECT_EQ(static_cast<std::uint8_t>(p.bytes()[0]), 0x01);
}

TEST(Packet, AppendAndTruncate) {
  Packet p(std::vector<std::byte>(4, std::byte{1}));
  const std::vector<std::byte> extra(2, std::byte{2});
  p.append(extra);
  EXPECT_EQ(p.size(), 6u);
  p.truncate(3);
  EXPECT_EQ(p.size(), 3u);
  p.truncate(100);  // no-op when larger
  EXPECT_EQ(p.size(), 3u);
}

TEST(Packet, CloneCopiesBytesAndMetadata) {
  Packet p(std::vector<std::byte>(5, std::byte{7}));
  p.meta().ingress_port = 3;
  p.meta().queue_depth = 42;
  auto c = p.clone();
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.meta().ingress_port, 3u);
  EXPECT_EQ(c.meta().queue_depth, 42u);
  // Deep copy: mutating the clone leaves the original intact.
  c.mutable_bytes()[0] = std::byte{9};
  EXPECT_EQ(static_cast<std::uint8_t>(p.bytes()[0]), 7);
}

TEST(Packet, AssignReplacesContents) {
  Packet p(std::vector<std::byte>(5, std::byte{1}));
  p.assign(std::vector<std::byte>(2, std::byte{2}));
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(static_cast<std::uint8_t>(p.bytes()[0]), 2);
}

}  // namespace
}  // namespace dart::net
