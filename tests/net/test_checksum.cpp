// Tests for the RFC 1071 internet checksum.
#include "net/checksum.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace dart::net {
namespace {

TEST(InternetChecksum, Rfc1071WorkedExample) {
  // The classic RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 → ~sum = 0x220d.
  const std::array<std::byte, 8> data{
      std::byte{0x00}, std::byte{0x01}, std::byte{0xf2}, std::byte{0x03},
      std::byte{0xf4}, std::byte{0xf5}, std::byte{0xf6}, std::byte{0xf7}};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, EmptyIsAllOnesComplement) {
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::array<std::byte, 3> odd{std::byte{0x12}, std::byte{0x34},
                                     std::byte{0x56}};
  const std::array<std::byte, 4> even{std::byte{0x12}, std::byte{0x34},
                                      std::byte{0x56}, std::byte{0x00}};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(InternetChecksum, VerificationPropertyHolds) {
  // For any data, appending the computed checksum makes the total sum verify
  // to zero — the property IPv4 header validation relies on.
  std::vector<std::byte> data;
  for (int i = 0; i < 20; ++i) data.push_back(static_cast<std::byte>(i * 31));
  // Zero the "checksum field" at offset 10..11 as IPv4 does.
  data[10] = data[11] = std::byte{0};
  const std::uint16_t csum = internet_checksum(data);
  data[10] = static_cast<std::byte>(csum >> 8);
  data[11] = static_cast<std::byte>(csum & 0xFF);
  EXPECT_EQ(internet_checksum(data), 0x0000);
}

TEST(InternetChecksum, IncrementalAccumulatorMatches) {
  std::vector<std::byte> data;
  for (int i = 0; i < 64; ++i) data.push_back(static_cast<std::byte>(i));
  InternetChecksum acc;
  acc.add(std::span{data}.first(32));
  acc.add(std::span{data}.subspan(32));
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

TEST(InternetChecksum, AddU16AndU32) {
  InternetChecksum a;
  a.add_u32(0x12345678u);
  InternetChecksum b;
  b.add_u16(0x1234);
  b.add_u16(0x5678);
  EXPECT_EQ(a.finish(), b.finish());
}

}  // namespace
}  // namespace dart::net
