// Tests for bandwidth-shaped links: serialization delay, queue build-up,
// tail drop, and queue-depth observation.
#include <gtest/gtest.h>

#include <vector>

#include "net/netsim.hpp"

namespace dart::net {
namespace {

class SinkNode final : public Node {
 public:
  void receive(Packet packet, std::uint64_t now_ns) override {
    sizes.push_back(packet.size());
    times.push_back(now_ns);
  }
  std::vector<std::size_t> sizes;
  std::vector<std::uint64_t> times;
};

Packet make_packet(std::size_t n) {
  return Packet(std::vector<std::byte>(n, std::byte{0x11}));
}

TEST(LinkShaping, SerializationDelayAddsToLatency) {
  Simulator sim(1);
  SinkNode a, b;
  const auto na = sim.add_node(a);
  const auto nb = sim.add_node(b);
  // 1 Gbps: a 1000-byte packet serializes in 8 µs.
  sim.add_link(na, nb, /*latency_ns=*/1000, nullptr,
               LinkShape{.bandwidth_bps = 1'000'000'000});

  sim.send(na, nb, make_packet(1000));
  sim.run();
  ASSERT_EQ(b.times.size(), 1u);
  EXPECT_EQ(b.times[0], 8000u + 1000u);
}

TEST(LinkShaping, BackToBackPacketsQueueBehindEachOther) {
  Simulator sim(1);
  SinkNode a, b;
  const auto na = sim.add_node(a);
  const auto nb = sim.add_node(b);
  sim.add_link(na, nb, 0, nullptr, LinkShape{.bandwidth_bps = 1'000'000'000});

  for (int i = 0; i < 3; ++i) sim.send(na, nb, make_packet(1000));
  sim.run();
  ASSERT_EQ(b.times.size(), 3u);
  EXPECT_EQ(b.times[0], 8000u);
  EXPECT_EQ(b.times[1], 16000u);  // waited for the first
  EXPECT_EQ(b.times[2], 24000u);
}

TEST(LinkShaping, QueueDepthVisibleWhileBacklogged) {
  Simulator sim(1);
  SinkNode a, b;
  const auto na = sim.add_node(a);
  const auto nb = sim.add_node(b);
  const auto link = sim.add_link(na, nb, 0, nullptr,
                                 LinkShape{.bandwidth_bps = 1'000'000'000});

  for (int i = 0; i < 5; ++i) sim.send(na, nb, make_packet(1000));
  // Before draining, all 5 sit in the egress queue.
  EXPECT_EQ(sim.link_queue_depth(na, nb), 5u);
  sim.run();
  EXPECT_EQ(sim.link_queue_depth(na, nb), 0u);
  EXPECT_EQ(sim.link_stats(link).max_queue, 5u);
}

TEST(LinkShaping, FullQueueTailDrops) {
  Simulator sim(1);
  SinkNode a, b;
  const auto na = sim.add_node(a);
  const auto nb = sim.add_node(b);
  const auto link =
      sim.add_link(na, nb, 0, nullptr,
                   LinkShape{.bandwidth_bps = 1'000'000'000, .queue_cap = 3});

  for (int i = 0; i < 10; ++i) sim.send(na, nb, make_packet(1000));
  sim.run();
  EXPECT_EQ(b.sizes.size(), 3u);
  EXPECT_EQ(sim.link_stats(link).queue_drops, 7u);
}

TEST(LinkShaping, IdleLinkResumesAtLineRate) {
  Simulator sim(1);
  SinkNode a, b;
  const auto na = sim.add_node(a);
  const auto nb = sim.add_node(b);
  sim.add_link(na, nb, 0, nullptr, LinkShape{.bandwidth_bps = 1'000'000'000});

  sim.send(na, nb, make_packet(1000));
  sim.run();  // drains; link idle again
  // New packet at t=8000 must not queue behind ghosts.
  sim.schedule(100'000, [&] { sim.send(na, nb, make_packet(1000)); });
  sim.run();
  ASSERT_EQ(b.times.size(), 2u);
  EXPECT_EQ(b.times[1], 108'000u);
}

TEST(LinkShaping, UnshapedLinkHasNoQueue) {
  Simulator sim(1);
  SinkNode a, b;
  const auto na = sim.add_node(a);
  const auto nb = sim.add_node(b);
  sim.add_link(na, nb, 500);
  for (int i = 0; i < 100; ++i) sim.send(na, nb, make_packet(1500));
  EXPECT_EQ(sim.link_queue_depth(na, nb), 0u);
  sim.run();
  EXPECT_EQ(b.sizes.size(), 100u);
  // All delivered at the same instant (pure propagation).
  EXPECT_EQ(b.times.front(), b.times.back());
}

TEST(LinkShaping, UnknownLinkQueueDepthIsZero) {
  Simulator sim(1);
  SinkNode a;
  const auto na = sim.add_node(a);
  EXPECT_EQ(sim.link_queue_depth(na, na), 0u);
}

}  // namespace
}  // namespace dart::net
