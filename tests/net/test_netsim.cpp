// Tests for the event-driven network simulator and its loss models.
#include "net/netsim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace dart::net {
namespace {

// Test node that records deliveries.
class SinkNode final : public Node {
 public:
  void receive(Packet packet, std::uint64_t now_ns) override {
    sizes.push_back(packet.size());
    times.push_back(now_ns);
  }
  std::vector<std::size_t> sizes;
  std::vector<std::uint64_t> times;
};

// Node that forwards everything to a fixed next hop.
class ForwardNode final : public Node {
 public:
  explicit ForwardNode(NodeId* next) : next_(next) {}
  void receive(Packet packet, std::uint64_t) override {
    sim_->send(self_, *next_, std::move(packet));
  }

 private:
  NodeId* next_;
};

Packet make_packet(std::size_t n) {
  return Packet(std::vector<std::byte>(n, std::byte{0xEE}));
}

TEST(Simulator, DeliversWithLatency) {
  Simulator sim(1);
  SinkNode src;
  SinkNode dst;
  const auto a = sim.add_node(src);
  const auto b = sim.add_node(dst);
  sim.add_link(a, b, /*latency_ns=*/500);

  sim.send(a, b, make_packet(10));
  sim.run();

  ASSERT_EQ(dst.sizes.size(), 1u);
  EXPECT_EQ(dst.sizes[0], 10u);
  EXPECT_EQ(dst.times[0], 500u);
}

TEST(Simulator, MultiHopAccumulatesLatency) {
  Simulator sim(1);
  SinkNode end;
  NodeId end_id{};
  ForwardNode mid(&end_id);
  SinkNode start;
  const auto a = sim.add_node(start);
  const auto m = sim.add_node(mid);
  end_id = sim.add_node(end);
  sim.add_link(a, m, 100);
  sim.add_link(m, end_id, 250);

  sim.send(a, m, make_packet(1));
  sim.run();

  ASSERT_EQ(end.times.size(), 1u);
  EXPECT_EQ(end.times[0], 350u);
}

TEST(Simulator, EventOrderingIsByTimeThenFifo) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(200, [&] { order.push_back(2); });
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(200, [&] { order.push_back(3); });  // same time: FIFO by seq
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim(1);
  int fired = 0;
  sim.schedule(100, [&] { ++fired; });
  sim.schedule(1000, [&] { ++fired; });
  sim.run(/*until_ns=*/500);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now_ns(), 100u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, BernoulliLossDropsApproximatelyP) {
  Simulator sim(7);
  SinkNode src;
  SinkNode dst;
  const auto a = sim.add_node(src);
  const auto b = sim.add_node(dst);
  const auto link =
      sim.add_link(a, b, 10, std::make_unique<BernoulliLoss>(0.3));

  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sim.send(a, b, make_packet(1));
  sim.run();

  const auto& stats = sim.link_stats(link);
  EXPECT_EQ(stats.delivered + stats.dropped, static_cast<std::uint64_t>(kN));
  EXPECT_NEAR(static_cast<double>(stats.dropped) / kN, 0.3, 0.02);
  EXPECT_EQ(dst.sizes.size(), stats.delivered);
}

TEST(Simulator, NoLossDeliversEverything) {
  Simulator sim(3);
  SinkNode src, dst;
  const auto a = sim.add_node(src);
  const auto b = sim.add_node(dst);
  sim.connect(a, b, 10, 0.0);
  for (int i = 0; i < 100; ++i) sim.send(a, b, make_packet(1));
  sim.run();
  EXPECT_EQ(dst.sizes.size(), 100u);
  EXPECT_EQ(sim.total_dropped(), 0u);
  EXPECT_EQ(sim.total_delivered(), 100u);
}

TEST(GilbertElliott, BurstyLossIsBurstier) {
  // Same average loss, but GE should produce longer loss runs than
  // independent Bernoulli loss.
  Xoshiro256 rng(123);
  GilbertElliottLoss ge(/*p_gb=*/0.01, /*p_bg=*/0.1, /*loss_good=*/0.001,
                        /*loss_bad=*/0.6);
  int max_run = 0;
  int run = 0;
  int losses = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (ge.drop(rng)) {
      ++losses;
      ++run;
      max_run = std::max(max_run, run);
    } else {
      run = 0;
    }
  }
  EXPECT_GT(losses, 0);
  EXPECT_GE(max_run, 3) << "expected loss bursts from the bad state";
}

TEST(GilbertElliott, ZeroRatesNeverDrop) {
  Xoshiro256 rng(5);
  GilbertElliottLoss ge(0.5, 0.5, 0.0, 0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(ge.drop(rng));
}

// Regression for the drop/transition ordering: the CURRENT state decides a
// packet's fate, then the chain transitions. With loss_good=0 and a certain
// good→bad transition, the first packet sampled in the good state must
// never drop — transitioning first would drop it with the bad state's rate.
TEST(GilbertElliott, FirstPacketSampledInInitialState) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Xoshiro256 rng(seed);
    GilbertElliottLoss ge(/*p_gb=*/1.0, /*p_bg=*/0.0, /*loss_good=*/0.0,
                          /*loss_bad=*/1.0);
    EXPECT_FALSE(ge.drop(rng)) << "seed " << seed;  // sampled in good state
    EXPECT_TRUE(ge.in_bad_state());                 // then transitioned
    EXPECT_TRUE(ge.drop(rng));                      // now stuck in bad
  }
  // Mirror image: start in good with loss_good=1 → first packet always drops
  // even when the chain immediately leaves the state afterwards.
  Xoshiro256 rng(7);
  GilbertElliottLoss ge(/*p_gb=*/1.0, /*p_bg=*/1.0, /*loss_good=*/1.0,
                        /*loss_bad=*/0.0);
  EXPECT_TRUE(ge.drop(rng));
}

TEST(GilbertElliott, EmpiricalRateMatchesStationaryFormula) {
  // π_bad = p_gb/(p_gb+p_bg); E[loss] = (1-π)·loss_good + π·loss_bad.
  Xoshiro256 rng(11);
  GilbertElliottLoss ge(/*p_gb=*/0.05, /*p_bg=*/0.25, /*loss_good=*/0.01,
                        /*loss_bad=*/0.7);
  const double expected = ge.stationary_loss_rate();
  EXPECT_NEAR(expected, (0.25 / 0.30) * 0.01 + (0.05 / 0.30) * 0.7, 1e-12);
  int drops = 0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) drops += ge.drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / kN, expected, 0.01);
}

TEST(LossModel, CloneReplicatesParametersAndInitialState) {
  GilbertElliottLoss ge(1.0, 0.0, 0.0, 1.0);
  Xoshiro256 rng(3);
  (void)ge.drop(rng);  // drive the original into the bad state
  ASSERT_TRUE(ge.in_bad_state());

  // The clone starts from the INITIAL state (good), not the current one,
  // and an identical RNG stream must produce identical behaviour.
  const auto replica = ge.clone();
  Xoshiro256 ra(42), rb(42);
  GilbertElliottLoss fresh(1.0, 0.0, 0.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(replica->drop(ra), fresh.drop(rb)) << "packet " << i;
  }

  // Bernoulli / NoLoss clones behave identically to their originals too.
  BernoulliLoss bern(0.5);
  const auto bclone = bern.clone();
  Xoshiro256 rc(9), rd(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(bern.drop(rc), bclone->drop(rd));
  NoLoss none;
  EXPECT_FALSE(none.clone()->drop(rc));
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    SinkNode src, dst;
    const auto a = sim.add_node(src);
    const auto b = sim.add_node(dst);
    sim.add_link(a, b, 10, std::make_unique<BernoulliLoss>(0.5));
    for (int i = 0; i < 1000; ++i) sim.send(a, b, make_packet(1));
    sim.run();
    return dst.sizes.size();
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));  // overwhelmingly likely
}

}  // namespace
}  // namespace dart::net
