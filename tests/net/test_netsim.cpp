// Tests for the event-driven network simulator and its loss models.
#include "net/netsim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace dart::net {
namespace {

// Test node that records deliveries.
class SinkNode final : public Node {
 public:
  void receive(Packet packet, std::uint64_t now_ns) override {
    sizes.push_back(packet.size());
    times.push_back(now_ns);
  }
  std::vector<std::size_t> sizes;
  std::vector<std::uint64_t> times;
};

// Node that forwards everything to a fixed next hop.
class ForwardNode final : public Node {
 public:
  explicit ForwardNode(NodeId* next) : next_(next) {}
  void receive(Packet packet, std::uint64_t) override {
    sim_->send(self_, *next_, std::move(packet));
  }

 private:
  NodeId* next_;
};

Packet make_packet(std::size_t n) {
  return Packet(std::vector<std::byte>(n, std::byte{0xEE}));
}

TEST(Simulator, DeliversWithLatency) {
  Simulator sim(1);
  SinkNode src;
  SinkNode dst;
  const auto a = sim.add_node(src);
  const auto b = sim.add_node(dst);
  sim.add_link(a, b, /*latency_ns=*/500);

  sim.send(a, b, make_packet(10));
  sim.run();

  ASSERT_EQ(dst.sizes.size(), 1u);
  EXPECT_EQ(dst.sizes[0], 10u);
  EXPECT_EQ(dst.times[0], 500u);
}

TEST(Simulator, MultiHopAccumulatesLatency) {
  Simulator sim(1);
  SinkNode end;
  NodeId end_id{};
  ForwardNode mid(&end_id);
  SinkNode start;
  const auto a = sim.add_node(start);
  const auto m = sim.add_node(mid);
  end_id = sim.add_node(end);
  sim.add_link(a, m, 100);
  sim.add_link(m, end_id, 250);

  sim.send(a, m, make_packet(1));
  sim.run();

  ASSERT_EQ(end.times.size(), 1u);
  EXPECT_EQ(end.times[0], 350u);
}

TEST(Simulator, EventOrderingIsByTimeThenFifo) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(200, [&] { order.push_back(2); });
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(200, [&] { order.push_back(3); });  // same time: FIFO by seq
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim(1);
  int fired = 0;
  sim.schedule(100, [&] { ++fired; });
  sim.schedule(1000, [&] { ++fired; });
  sim.run(/*until_ns=*/500);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now_ns(), 100u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, BernoulliLossDropsApproximatelyP) {
  Simulator sim(7);
  SinkNode src;
  SinkNode dst;
  const auto a = sim.add_node(src);
  const auto b = sim.add_node(dst);
  const auto link =
      sim.add_link(a, b, 10, std::make_unique<BernoulliLoss>(0.3));

  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sim.send(a, b, make_packet(1));
  sim.run();

  const auto& stats = sim.link_stats(link);
  EXPECT_EQ(stats.delivered + stats.dropped, static_cast<std::uint64_t>(kN));
  EXPECT_NEAR(static_cast<double>(stats.dropped) / kN, 0.3, 0.02);
  EXPECT_EQ(dst.sizes.size(), stats.delivered);
}

TEST(Simulator, NoLossDeliversEverything) {
  Simulator sim(3);
  SinkNode src, dst;
  const auto a = sim.add_node(src);
  const auto b = sim.add_node(dst);
  sim.connect(a, b, 10, 0.0);
  for (int i = 0; i < 100; ++i) sim.send(a, b, make_packet(1));
  sim.run();
  EXPECT_EQ(dst.sizes.size(), 100u);
  EXPECT_EQ(sim.total_dropped(), 0u);
  EXPECT_EQ(sim.total_delivered(), 100u);
}

TEST(GilbertElliott, BurstyLossIsBurstier) {
  // Same average loss, but GE should produce longer loss runs than
  // independent Bernoulli loss.
  Xoshiro256 rng(123);
  GilbertElliottLoss ge(/*p_gb=*/0.01, /*p_bg=*/0.1, /*loss_good=*/0.001,
                        /*loss_bad=*/0.6);
  int max_run = 0;
  int run = 0;
  int losses = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (ge.drop(rng)) {
      ++losses;
      ++run;
      max_run = std::max(max_run, run);
    } else {
      run = 0;
    }
  }
  EXPECT_GT(losses, 0);
  EXPECT_GE(max_run, 3) << "expected loss bursts from the bad state";
}

TEST(GilbertElliott, ZeroRatesNeverDrop) {
  Xoshiro256 rng(5);
  GilbertElliottLoss ge(0.5, 0.5, 0.0, 0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(ge.drop(rng));
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    SinkNode src, dst;
    const auto a = sim.add_node(src);
    const auto b = sim.add_node(dst);
    sim.add_link(a, b, 10, std::make_unique<BernoulliLoss>(0.5));
    for (int i = 0; i < 1000; ++i) sim.send(a, b, make_packet(1));
    sim.run();
    return dst.sizes.size();
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));  // overwhelmingly likely
}

}  // namespace
}  // namespace dart::net
