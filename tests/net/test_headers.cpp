// Tests for Ethernet/IPv4/UDP header serialization, parsing and validation.
#include "net/headers.hpp"

#include <gtest/gtest.h>

namespace dart::net {
namespace {

TEST(Ipv4Addr, OctetsAndString) {
  const auto a = Ipv4Addr::from_octets(10, 0, 100, 7);
  EXPECT_EQ(a.value, 0x0A006407u);
  EXPECT_EQ(a.str(), "10.0.100.7");
}

TEST(MacAddr, ToString) {
  const MacAddr mac{0x02, 0xAB, 0x00, 0x01, 0x02, 0x03};
  EXPECT_EQ(to_string(mac), "02:ab:00:01:02:03");
}

TEST(Ethernet, RoundTrip) {
  EthernetHeader h;
  h.dst = {1, 2, 3, 4, 5, 6};
  h.src = {7, 8, 9, 10, 11, 12};
  h.ether_type = kEtherTypeIpv4;

  std::vector<std::byte> buf;
  BufWriter w(buf);
  h.serialize(w);
  ASSERT_EQ(buf.size(), kEthernetHeaderLen);

  BufReader r(buf);
  const auto parsed = EthernetHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->ether_type, kEtherTypeIpv4);
}

TEST(Ethernet, TruncatedFails) {
  std::vector<std::byte> buf(10);
  BufReader r(buf);
  EXPECT_FALSE(EthernetHeader::parse(r).has_value());
}

TEST(Ipv4, RoundTripWithValidChecksum) {
  Ipv4Header h;
  h.dscp = 12;
  h.total_length = 48;
  h.identification = 0x42;
  h.ttl = 17;
  h.protocol = kIpProtoUdp;
  h.src = Ipv4Addr::from_octets(192, 168, 0, 1);
  h.dst = Ipv4Addr::from_octets(10, 0, 0, 2);

  std::vector<std::byte> buf;
  BufWriter w(buf);
  h.serialize(w);
  ASSERT_EQ(buf.size(), kIpv4HeaderLen);

  BufReader r(buf);
  const auto parsed = Ipv4Header::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dscp, 12);
  EXPECT_EQ(parsed->total_length, 48);
  EXPECT_EQ(parsed->ttl, 17);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
}

TEST(Ipv4, CorruptedHeaderRejectedByChecksum) {
  Ipv4Header h;
  h.total_length = 28;
  std::vector<std::byte> buf;
  BufWriter w(buf);
  h.serialize(w);
  buf[8] = std::byte{99};  // flip the TTL after checksumming
  BufReader r(buf);
  EXPECT_FALSE(Ipv4Header::parse(r).has_value());
}

TEST(Ipv4, NonVersion4Rejected) {
  Ipv4Header h;
  std::vector<std::byte> buf;
  BufWriter w(buf);
  h.serialize(w);
  buf[0] = std::byte{0x65};  // version 6
  BufReader r(buf);
  EXPECT_FALSE(Ipv4Header::parse(r).has_value());
}

TEST(Udp, RoundTrip) {
  UdpHeader h;
  h.src_port = 49152;
  h.dst_port = kRoceV2UdpPort;
  h.length = 36;
  std::vector<std::byte> buf;
  BufWriter w(buf);
  h.serialize(w);
  ASSERT_EQ(buf.size(), kUdpHeaderLen);

  BufReader r(buf);
  const auto parsed = UdpHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 49152);
  EXPECT_EQ(parsed->dst_port, kRoceV2UdpPort);
  EXPECT_EQ(parsed->length, 36);
}

TEST(Udp, LengthBelowHeaderRejected) {
  UdpHeader h;
  h.length = 4;  // impossible: < 8
  std::vector<std::byte> buf;
  BufWriter w(buf);
  h.serialize(w);
  BufReader r(buf);
  EXPECT_FALSE(UdpHeader::parse(r).has_value());
}

// --- full frame helpers -------------------------------------------------------

UdpFrameSpec test_spec() {
  UdpFrameSpec spec;
  spec.src_mac = {1, 1, 1, 1, 1, 1};
  spec.dst_mac = {2, 2, 2, 2, 2, 2};
  spec.src_ip = Ipv4Addr::from_octets(10, 0, 0, 1);
  spec.dst_ip = Ipv4Addr::from_octets(10, 0, 0, 2);
  spec.src_port = 1234;
  spec.dst_port = 4791;
  return spec;
}

TEST(UdpFrame, BuildAndParse) {
  std::vector<std::byte> payload{std::byte{0xAA}, std::byte{0xBB},
                                 std::byte{0xCC}};
  const auto frame = build_udp_frame(test_spec(), payload);
  EXPECT_EQ(frame.size(),
            kEthernetHeaderLen + kIpv4HeaderLen + kUdpHeaderLen + 3);

  const auto parsed = parse_udp_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.src, test_spec().src_ip);
  EXPECT_EQ(parsed->udp.dst_port, 4791);
  ASSERT_EQ(parsed->payload.size(), 3u);
  EXPECT_EQ(static_cast<std::uint8_t>(parsed->payload[0]), 0xAA);
}

TEST(UdpFrame, LengthsAreConsistent) {
  std::vector<std::byte> payload(100, std::byte{7});
  const auto frame = build_udp_frame(test_spec(), payload);
  const auto parsed = parse_udp_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.total_length, kIpv4HeaderLen + kUdpHeaderLen + 100);
  EXPECT_EQ(parsed->udp.length, kUdpHeaderLen + 100);
}

TEST(UdpFrame, EmptyPayload) {
  const auto frame = build_udp_frame(test_spec(), {});
  const auto parsed = parse_udp_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(UdpFrame, TruncatedFrameRejected) {
  std::vector<std::byte> payload(10, std::byte{1});
  auto frame = build_udp_frame(test_spec(), payload);
  frame.resize(frame.size() - 5);  // cut off part of the payload
  EXPECT_FALSE(parse_udp_frame(frame).has_value());
}

TEST(UdpFrame, NonIpv4EtherTypeRejected) {
  auto frame = build_udp_frame(test_spec(), {});
  frame[12] = std::byte{0x86};  // 0x86DD = IPv6
  frame[13] = std::byte{0xDD};
  EXPECT_FALSE(parse_udp_frame(frame).has_value());
}

TEST(UdpFrame, SimplifiedTcpFramesParse) {
  // The simulator frames TCP with the same 8-byte L4 header (see
  // UdpFrameSpec::protocol); such frames must round-trip.
  auto spec = test_spec();
  spec.protocol = 6;
  const auto frame = build_udp_frame(spec, {});
  const auto parsed = parse_udp_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.protocol, 6);
}

TEST(UdpFrame, UnknownProtocolRejected) {
  auto spec = test_spec();
  spec.protocol = 1;  // ICMP — not a 5-tuple transport
  const auto frame = build_udp_frame(spec, {});
  EXPECT_FALSE(parse_udp_frame(frame).has_value());
}

// Parameterized sweep over payload sizes (header arithmetic edge cases).
class FramePayloadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FramePayloadSizes, RoundTrips) {
  std::vector<std::byte> payload(GetParam(), std::byte{0x5A});
  const auto frame = build_udp_frame(test_spec(), payload);
  const auto parsed = parse_udp_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, FramePayloadSizes,
                         ::testing::Values(0u, 1u, 2u, 35u, 36u, 100u, 1000u,
                                           1400u));

}  // namespace
}  // namespace dart::net
