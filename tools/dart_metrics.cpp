// dart_metrics — run a workload with the observability registry attached and
// dump, check, or diff metric snapshots.
//
//   dart_metrics fabric [--k=4] [--collectors=2] [--flows=80] [--packets=2]
//                       [--loss=0.1] [--queries=1] [--seed=7]
//                       [--json=PATH] [--prom]
//       Full WireFabric workload (switches → RNICs → query plane). Writes a
//       BenchJson-schema snapshot to --json (default METRICS_fabric.json in
//       the cwd) and, with --prom, the Prometheus text exposition to stdout.
//
//   dart_metrics ingest [--reports=200000] [--feeders=2] [--shards=2]
//                       [--sample-every=64] [--seed=1] [--json=PATH] [--prom]
//       Sharded ingest-pipeline workload with per-shard counters and the
//       sampled craft→ingest latency histogram.
//
//   dart_metrics selfcheck
//       Small fabric run that exits non-zero unless the conservation
//       invariants hold (reports emitted == RNIC frames + monitoring drops
//       + partitioned; RNIC frames == executed + rejections; queries sent
//       == received + pending). Wired into ctest and tools/check_bench.sh.
//
//   dart_metrics chaos [--seed=N] [--json=PATH] [--prom]
//       Fabric run with the full fault-injection + recovery stack armed
//       (collector kill/failover, RNIC stall, QP error, link partition,
//       payload corruption — src/fault, docs/FAULTS.md). Exits non-zero
//       unless the same conservation invariants hold under every fault
//       class and the recovery pipeline detected and failed over the kill.
//
//   dart_metrics diff BEFORE.json AFTER.json
//       Per-key AFTER-BEFORE over the flat "results" objects (our own
//       emissions; no external JSON dependency).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"

#include "core/ingest_pipeline.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "obs/export.hpp"
#include "obs/metric.hpp"
#include "telemetry/wire_fabric.hpp"
#include "telemetry/workload.hpp"

namespace {

using namespace dart;

std::string flag_str(int argc, char** argv, const char* name,
                     std::string fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  const std::string flat = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flat == argv[i]) return true;
  }
  return false;
}

int emit(const obs::MetricRegistry& reg, const std::string& name,
         const std::string& json_path, bool prom,
         const std::vector<std::pair<std::string, double>>& config) {
  const auto snap = reg.snapshot();
  if (!obs::write_bench_json(snap, name, json_path, config)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu metrics)\n", json_path.c_str(),
               snap.metrics.size());
  if (prom) std::fputs(obs::to_prometheus(snap).c_str(), stdout);
  return 0;
}

// Shared by `fabric` and `selfcheck`: build a fabric, drive a workload,
// leave the registry populated. Returns the fabric so adapters stay valid
// for the caller's snapshot.
std::unique_ptr<telemetry::WireFabric> run_fabric(
    obs::MetricRegistry& registry, std::uint32_t k, std::uint32_t collectors,
    std::uint64_t flows, std::uint32_t packets, double loss, bool queries,
    std::uint64_t seed) {
  telemetry::WireFabricConfig cfg;
  cfg.fat_tree_k = k;
  cfg.dart.n_slots = 1 << 14;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0x0B5;
  cfg.n_collectors = collectors;
  cfg.report_loss_rate = loss;
  cfg.seed = seed;

  auto fabric = std::make_unique<telemetry::WireFabric>(cfg);
  auto& op = fabric->attach_operator();
  fabric->register_metrics(registry);

  telemetry::FlowGenerator gen(fabric->topology(), seed + 13);
  std::vector<telemetry::FiveTuple> tuples;
  for (std::uint64_t i = 0; i < flows; ++i) {
    const auto fe = gen.next_flow();
    tuples.push_back(fe.tuple);
    fabric->send_flow(fe.tuple, fe.src_host, packets);
  }
  fabric->run();
  if (queries) {
    for (const auto& t : tuples) (void)op.query(t.key_bytes());
    fabric->run();
  }
  return fabric;
}

int cmd_fabric(int argc, char** argv) {
  const auto k = static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "k", 4));
  const auto collectors =
      static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "collectors", 2));
  const auto flows = bench::flag_u64(argc, argv, "flows", 80);
  const auto packets =
      static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "packets", 2));
  const double loss = bench::flag_double(argc, argv, "loss", 0.1);
  const bool queries = bench::flag_u64(argc, argv, "queries", 1) != 0;
  const auto seed = bench::flag_u64(argc, argv, "seed", 7);
  const auto json_path =
      flag_str(argc, argv, "json", "METRICS_fabric.json");

  obs::MetricRegistry registry;
  const auto fabric =
      run_fabric(registry, k, collectors, flows, packets, loss, queries, seed);
  return emit(registry, "dart_metrics_fabric", json_path,
              flag_present(argc, argv, "prom"),
              {{"fat_tree_k", static_cast<double>(k)},
               {"n_collectors", static_cast<double>(collectors)},
               {"flows", static_cast<double>(flows)},
               {"packets_per_flow", static_cast<double>(packets)},
               {"report_loss_rate", loss}});
}

int cmd_ingest(int argc, char** argv) {
  core::IngestPipelineConfig cfg;
  cfg.dart.n_slots = 1 << 16;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 8;
  cfg.dart.master_seed = 0xD317;
  cfg.reports_per_feeder = bench::flag_u64(argc, argv, "reports", 200'000);
  cfg.n_feeders =
      static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "feeders", 2));
  cfg.n_shards =
      static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "shards", 2));
  cfg.latency_sample_every = static_cast<std::uint32_t>(
      bench::flag_u64(argc, argv, "sample-every", 64));
  cfg.seed = bench::flag_u64(argc, argv, "seed", 1);
  if (!cfg.valid()) {
    std::fprintf(stderr, "error: invalid ingest config\n");
    return 1;
  }

  core::IngestPipeline pipeline(cfg);
  obs::MetricRegistry reg;
  pipeline.bind_metrics(reg, "dart");
  const auto stats = pipeline.run();
  std::fprintf(stderr, "ingested %llu reports at %.2f Mreports/s\n",
               static_cast<unsigned long long>(stats.reports_generated),
               stats.mreports_per_sec());
  return emit(reg, "dart_metrics_ingest",
              flag_str(argc, argv, "json", "METRICS_ingest.json"),
              flag_present(argc, argv, "prom"),
              {{"n_feeders", static_cast<double>(cfg.n_feeders)},
               {"n_shards", static_cast<double>(cfg.n_shards)},
               {"reports_per_feeder",
                static_cast<double>(cfg.reports_per_feeder)},
               {"latency_sample_every",
                static_cast<double>(cfg.latency_sample_every)}});
}

// The conservation invariants every fabric run must satisfy, healthy or
// chaotic. Every injected fault has an explicit ledger entry (partitioned,
// stalled, qp_error, bad_icrc for corruption), so the books balance under
// failure too — docs/FAULTS.md, "Accounting".
int check_conservation(const obs::Snapshot& snap, std::uint32_t n_collectors) {
  int failures = 0;
  const auto check = [&](bool ok, const char* what, double lhs, double rhs) {
    if (ok) {
      std::printf("OK:   %s (%.0f == %.0f)\n", what, lhs, rhs);
    } else {
      std::printf("FAIL: %s (%.0f != %.0f)\n", what, lhs, rhs);
      ++failures;
    }
  };

  double rnic_frames = 0.0;
  double verdicts = 0.0;
  for (std::uint32_t c = 0; c < n_collectors; ++c) {
    const std::string p = "dart_collector" + std::to_string(c) + "_rnic_";
    rnic_frames += snap.value_of(p + "frames_total");
    verdicts += snap.value_of(p + "executed_total");
    for (const char* r :
         {"not_roce", "bad_icrc", "bad_opcode", "unknown_qp", "psn_rejected",
          "bad_rkey", "pd_mismatch", "access_denied", "out_of_bounds",
          "unaligned_atomic", "stalled", "qp_error"}) {
      verdicts += snap.value_of(p + r + "_total");
    }
  }
  const double emitted = snap.value_of("dart_switches_reports_emitted_total");
  const double mon_dropped = snap.value_of("dart_monitoring_dropped_total");
  const double mon_partitioned =
      snap.value_of("dart_monitoring_partitioned_total");
  const double mon_delivered =
      snap.value_of("dart_monitoring_delivered_total");
  check(emitted == rnic_frames + mon_dropped + mon_partitioned,
        "reports emitted == rnic frames + monitoring drops + partitioned",
        emitted, rnic_frames + mon_dropped + mon_partitioned);
  check(rnic_frames == mon_delivered,
        "rnic frames == monitoring delivered", rnic_frames, mon_delivered);
  check(rnic_frames == verdicts, "rnic frames == executed + rejections",
        rnic_frames, verdicts);

  const double sent = snap.value_of("dart_operator_queries_sent_total");
  const double received =
      snap.value_of("dart_operator_responses_received_total");
  const double pending = snap.value_of("dart_operator_pending");
  double served = 0.0;
  double dropped_offline = 0.0;
  for (std::uint32_t c = 0; c < n_collectors; ++c) {
    const std::string p = "dart_collector" + std::to_string(c) + "_query_";
    served += snap.value_of(p + "served_total");
    dropped_offline += snap.value_of(p + "dropped_offline_total");
  }
  check(sent == received + pending, "queries sent == received + pending",
        sent, received + pending);
  check(served == received, "queries served == responses received", served,
        received);
  check(pending >= dropped_offline,
        "queries eaten offline stay pending (never wrong data)", pending,
        dropped_offline);
  check(emitted > 0 && sent > 0, "workload actually ran", emitted, sent);
  return failures;
}

int cmd_selfcheck() {
  obs::MetricRegistry registry;
  const auto fabric =
      run_fabric(registry, /*k=*/4, /*collectors=*/2, /*flows=*/60,
                 /*packets=*/2, /*loss=*/0.2, /*queries=*/true, /*seed=*/11);
  const int failures = check_conservation(registry.snapshot(), 2);
  std::printf(failures == 0 ? "selfcheck: clean\n"
                            : "selfcheck: %d invariant(s) violated\n",
              failures);
  return failures == 0 ? 0 : 1;
}

// Chaos run: a fabric under the full fault plan — RNIC stall, QP
// error/reconnect, monitoring partition, payload corruption, collector kill
// with liveness-driven failover and probe-driven failback — must keep the
// same books balanced, and the recovery pipeline must visibly do its job.
int cmd_chaos(int argc, char** argv) {
  constexpr std::uint32_t kCollectors = 3;
  constexpr std::uint64_t kMs = 1'000'000;
  const auto seed = bench::flag_u64(argc, argv, "seed", 29);

  telemetry::WireFabricConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.dart.n_slots = 1 << 14;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0x0B5;
  cfg.n_collectors = kCollectors;
  cfg.report_loss_rate = 0.05;
  cfg.seed = seed;

  telemetry::WireFabric fabric(cfg);
  auto& op = fabric.attach_operator();
  obs::MetricRegistry registry;
  fabric.register_metrics(registry);

  fault::RecoveryManager recovery(fabric, fault::RecoveryConfig{});
  fault::FaultInjector injector(fabric, &recovery);
  recovery.register_metrics(registry, "dart");
  injector.register_metrics(registry, "dart");

  // One event per fault class (partitions/corruption cover every monitoring
  // link of the target so the window is guaranteed to bite).
  fault::FaultPlan plan;
  plan.stall_rnic(2 * kMs, /*collector=*/1, /*frames=*/30);
  plan.error_qp(5 * kMs, /*collector=*/2, /*drain_ns=*/3 * kMs);
  for (std::uint32_t s = 0; s < fabric.n_switches(); ++s) {
    plan.partition_link(10 * kMs, fabric.monitoring_link(s, 1));
    plan.heal_link(14 * kMs, fabric.monitoring_link(s, 1));
    plan.corrupt_link(10 * kMs, fabric.monitoring_link(s, 2), 0.5);
    plan.clear_corruption(14 * kMs, fabric.monitoring_link(s, 2));
  }
  plan.kill_collector(18 * kMs, 0);
  plan.revive_collector(35 * kMs, 0);
  injector.arm(plan);
  recovery.start(/*horizon_ns=*/60 * kMs);

  // Traffic waves phased across the fault windows, plus a query wave inside
  // the takeover (the dead collector's keys must be answerable — degraded —
  // from the backup).
  telemetry::FlowGenerator gen(fabric.topology(), seed + 13);
  std::vector<telemetry::FiveTuple> tuples;
  for (int i = 0; i < 120; ++i) tuples.push_back(gen.next_flow().tuple);
  auto& sim = fabric.simulator();
  const std::uint64_t waves[] = {0,       3 * kMs,  6 * kMs,
                                 11 * kMs, 26 * kMs, 45 * kMs};
  for (std::size_t w = 0; w < std::size(waves); ++w) {
    sim.schedule(waves[w], [&fabric, &gen] {
      for (int i = 0; i < 20; ++i) {
        const auto fe = gen.next_flow();
        fabric.send_flow(fe.tuple, fe.src_host, 2);
      }
    });
    sim.schedule(waves[w] + kMs / 2, [&fabric, &tuples, w] {
      for (std::size_t i = 20 * w; i < 20 * (w + 1); ++i) {
        fabric.send_flow(tuples[i], 0, 2);
      }
    });
  }
  // Queries: one wave while c0 is dead but undetected (eaten — stays
  // pending, never answered wrong), one during the takeover (redirected to
  // the backup, degraded), one after failback.
  for (const std::uint64_t at : {20 * kMs, 27 * kMs, 50 * kMs}) {
    sim.schedule(at, [&op, &tuples] {
      for (std::size_t i = 0; i < 40; ++i) {
        (void)op.query(tuples[i].key_bytes());
      }
    });
  }
  fabric.run();

  const auto snap = registry.snapshot();
  int failures = check_conservation(snap, kCollectors);
  const auto require = [&](bool ok, const char* what, double got) {
    if (ok) {
      std::printf("OK:   %s (%.0f)\n", what, got);
    } else {
      std::printf("FAIL: %s (%.0f)\n", what, got);
      ++failures;
    }
  };
  require(injector.stats().total() == plan.size(),
          "every planned fault fired",
          static_cast<double>(injector.stats().total()));
  const auto& rs = recovery.stats();
  require(rs.deaths_detected >= 1, "liveness detected the kill",
          static_cast<double>(rs.deaths_detected));
  require(rs.takeovers >= 1, "a backup took over the dead key range",
          static_cast<double>(rs.takeovers));
  require(rs.failbacks >= 1, "probe-driven failback after the revive",
          static_cast<double>(rs.failbacks));
  require(op.degraded_responses() > 0,
          "takeover answers carried the degraded flag",
          static_cast<double>(op.degraded_responses()));
  for (const char* symptom :
       {"dart_monitoring_partitioned_total", "dart_net_corrupted_total"}) {
    require(snap.value_of(symptom) > 0, symptom, snap.value_of(symptom));
  }
  double stalled = 0.0;
  double qp_error = 0.0;
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    const std::string p = "dart_collector" + std::to_string(c) + "_rnic_";
    stalled += snap.value_of(p + "stalled_total");
    qp_error += snap.value_of(p + "qp_error_total");
  }
  require(stalled > 0, "stall window dropped frames", stalled);
  require(qp_error > 0, "errored QP refused frames", qp_error);

  const auto json_path = flag_str(argc, argv, "json", "");
  if (!json_path.empty() &&
      emit(registry, "dart_metrics_chaos", json_path,
           flag_present(argc, argv, "prom"),
           {{"n_collectors", kCollectors},
            {"seed", static_cast<double>(seed)},
            {"planned_faults", static_cast<double>(plan.size())}}) != 0) {
    ++failures;
  } else if (json_path.empty() && flag_present(argc, argv, "prom")) {
    std::fputs(obs::to_prometheus(snap).c_str(), stdout);
  }
  std::printf(failures == 0 ? "chaos: clean\n"
                            : "chaos: %d invariant(s) violated\n",
              failures);
  return failures == 0 ? 0 : 1;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: dart_metrics diff BEFORE.json AFTER.json\n");
    return 2;
  }
  const auto before = obs::read_results_json(argv[2]);
  const auto after = obs::read_results_json(argv[3]);
  if (!before || !after) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 !before ? argv[2] : argv[3]);
    return 1;
  }
  const auto find = [](const std::vector<std::pair<std::string, double>>& kv,
                       const std::string& key) -> const double* {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  for (const auto& [key, after_v] : *after) {
    const double* before_v = find(*before, key);
    const double delta = before_v ? after_v - *before_v : after_v;
    if (delta != 0.0 || before_v == nullptr) {
      std::printf("%-64s %+.6g%s\n", key.c_str(), delta,
                  before_v == nullptr ? "  (new)" : "");
    }
  }
  for (const auto& [key, v] : *before) {
    if (find(*after, key) == nullptr) {
      std::printf("%-64s (removed, was %.6g)\n", key.c_str(), v);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dart_metrics <fabric|ingest|selfcheck|chaos|diff> "
                 "[--flags]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "fabric") return cmd_fabric(argc, argv);
  if (cmd == "ingest") return cmd_ingest(argc, argv);
  if (cmd == "selfcheck") return cmd_selfcheck();
  if (cmd == "chaos") return cmd_chaos(argc, argv);
  if (cmd == "diff") return cmd_diff(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
