// dart_metrics — run a workload with the observability registry attached and
// dump, check, or diff metric snapshots.
//
//   dart_metrics fabric [--k=4] [--collectors=2] [--flows=80] [--packets=2]
//                       [--loss=0.1] [--queries=1] [--seed=7]
//                       [--json=PATH] [--prom]
//       Full WireFabric workload (switches → RNICs → query plane). Writes a
//       BenchJson-schema snapshot to --json (default METRICS_fabric.json in
//       the cwd) and, with --prom, the Prometheus text exposition to stdout.
//
//   dart_metrics ingest [--reports=200000] [--feeders=2] [--shards=2]
//                       [--sample-every=64] [--seed=1] [--json=PATH] [--prom]
//       Sharded ingest-pipeline workload with per-shard counters and the
//       sampled craft→ingest latency histogram.
//
//   dart_metrics selfcheck
//       Small fabric run that exits non-zero unless the conservation
//       invariants hold (reports emitted == RNIC frames + monitoring drops;
//       RNIC frames == executed + rejections; queries sent == received).
//       Wired into ctest and tools/check_bench.sh.
//
//   dart_metrics diff BEFORE.json AFTER.json
//       Per-key AFTER-BEFORE over the flat "results" objects (our own
//       emissions; no external JSON dependency).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"

#include "core/ingest_pipeline.hpp"
#include "obs/export.hpp"
#include "obs/metric.hpp"
#include "telemetry/wire_fabric.hpp"
#include "telemetry/workload.hpp"

namespace {

using namespace dart;

std::string flag_str(int argc, char** argv, const char* name,
                     std::string fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  const std::string flat = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flat == argv[i]) return true;
  }
  return false;
}

int emit(const obs::MetricRegistry& reg, const std::string& name,
         const std::string& json_path, bool prom,
         const std::vector<std::pair<std::string, double>>& config) {
  const auto snap = reg.snapshot();
  if (!obs::write_bench_json(snap, name, json_path, config)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu metrics)\n", json_path.c_str(),
               snap.metrics.size());
  if (prom) std::fputs(obs::to_prometheus(snap).c_str(), stdout);
  return 0;
}

// Shared by `fabric` and `selfcheck`: build a fabric, drive a workload,
// leave the registry populated. Returns the fabric so adapters stay valid
// for the caller's snapshot.
std::unique_ptr<telemetry::WireFabric> run_fabric(
    obs::MetricRegistry& registry, std::uint32_t k, std::uint32_t collectors,
    std::uint64_t flows, std::uint32_t packets, double loss, bool queries,
    std::uint64_t seed) {
  telemetry::WireFabricConfig cfg;
  cfg.fat_tree_k = k;
  cfg.dart.n_slots = 1 << 14;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0x0B5;
  cfg.n_collectors = collectors;
  cfg.report_loss_rate = loss;
  cfg.seed = seed;

  auto fabric = std::make_unique<telemetry::WireFabric>(cfg);
  auto& op = fabric->attach_operator();
  fabric->register_metrics(registry);

  telemetry::FlowGenerator gen(fabric->topology(), seed + 13);
  std::vector<telemetry::FiveTuple> tuples;
  for (std::uint64_t i = 0; i < flows; ++i) {
    const auto fe = gen.next_flow();
    tuples.push_back(fe.tuple);
    fabric->send_flow(fe.tuple, fe.src_host, packets);
  }
  fabric->run();
  if (queries) {
    for (const auto& t : tuples) (void)op.query(t.key_bytes());
    fabric->run();
  }
  return fabric;
}

int cmd_fabric(int argc, char** argv) {
  const auto k = static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "k", 4));
  const auto collectors =
      static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "collectors", 2));
  const auto flows = bench::flag_u64(argc, argv, "flows", 80);
  const auto packets =
      static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "packets", 2));
  const double loss = bench::flag_double(argc, argv, "loss", 0.1);
  const bool queries = bench::flag_u64(argc, argv, "queries", 1) != 0;
  const auto seed = bench::flag_u64(argc, argv, "seed", 7);
  const auto json_path =
      flag_str(argc, argv, "json", "METRICS_fabric.json");

  obs::MetricRegistry registry;
  const auto fabric =
      run_fabric(registry, k, collectors, flows, packets, loss, queries, seed);
  return emit(registry, "dart_metrics_fabric", json_path,
              flag_present(argc, argv, "prom"),
              {{"fat_tree_k", static_cast<double>(k)},
               {"n_collectors", static_cast<double>(collectors)},
               {"flows", static_cast<double>(flows)},
               {"packets_per_flow", static_cast<double>(packets)},
               {"report_loss_rate", loss}});
}

int cmd_ingest(int argc, char** argv) {
  core::IngestPipelineConfig cfg;
  cfg.dart.n_slots = 1 << 16;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 8;
  cfg.dart.master_seed = 0xD317;
  cfg.reports_per_feeder = bench::flag_u64(argc, argv, "reports", 200'000);
  cfg.n_feeders =
      static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "feeders", 2));
  cfg.n_shards =
      static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "shards", 2));
  cfg.latency_sample_every = static_cast<std::uint32_t>(
      bench::flag_u64(argc, argv, "sample-every", 64));
  cfg.seed = bench::flag_u64(argc, argv, "seed", 1);
  if (!cfg.valid()) {
    std::fprintf(stderr, "error: invalid ingest config\n");
    return 1;
  }

  core::IngestPipeline pipeline(cfg);
  obs::MetricRegistry reg;
  pipeline.bind_metrics(reg, "dart");
  const auto stats = pipeline.run();
  std::fprintf(stderr, "ingested %llu reports at %.2f Mreports/s\n",
               static_cast<unsigned long long>(stats.reports_generated),
               stats.mreports_per_sec());
  return emit(reg, "dart_metrics_ingest",
              flag_str(argc, argv, "json", "METRICS_ingest.json"),
              flag_present(argc, argv, "prom"),
              {{"n_feeders", static_cast<double>(cfg.n_feeders)},
               {"n_shards", static_cast<double>(cfg.n_shards)},
               {"reports_per_feeder",
                static_cast<double>(cfg.reports_per_feeder)},
               {"latency_sample_every",
                static_cast<double>(cfg.latency_sample_every)}});
}

int cmd_selfcheck() {
  obs::MetricRegistry registry;
  const auto fabric =
      run_fabric(registry, /*k=*/4, /*collectors=*/2, /*flows=*/60,
                 /*packets=*/2, /*loss=*/0.2, /*queries=*/true, /*seed=*/11);
  const auto snap = registry.snapshot();

  int failures = 0;
  const auto check = [&](bool ok, const char* what, double lhs, double rhs) {
    if (ok) {
      std::printf("OK:   %s (%.0f == %.0f)\n", what, lhs, rhs);
    } else {
      std::printf("FAIL: %s (%.0f != %.0f)\n", what, lhs, rhs);
      ++failures;
    }
  };

  double rnic_frames = 0.0;
  double verdicts = 0.0;
  for (int c = 0; c < 2; ++c) {
    const std::string p = "dart_collector" + std::to_string(c) + "_rnic_";
    rnic_frames += snap.value_of(p + "frames_total");
    verdicts += snap.value_of(p + "executed_total");
    for (const char* r :
         {"not_roce", "bad_icrc", "bad_opcode", "unknown_qp", "psn_rejected",
          "bad_rkey", "pd_mismatch", "access_denied", "out_of_bounds",
          "unaligned_atomic"}) {
      verdicts += snap.value_of(p + r + "_total");
    }
  }
  const double emitted = snap.value_of("dart_switches_reports_emitted_total");
  const double mon_dropped = snap.value_of("dart_monitoring_dropped_total");
  const double mon_delivered =
      snap.value_of("dart_monitoring_delivered_total");
  check(emitted == rnic_frames + mon_dropped,
        "reports emitted == rnic frames + monitoring drops", emitted,
        rnic_frames + mon_dropped);
  check(rnic_frames == mon_delivered,
        "rnic frames == monitoring delivered", rnic_frames, mon_delivered);
  check(rnic_frames == verdicts, "rnic frames == executed + rejections",
        rnic_frames, verdicts);

  const double sent = snap.value_of("dart_operator_queries_sent_total");
  const double received =
      snap.value_of("dart_operator_responses_received_total");
  const double pending = snap.value_of("dart_operator_pending");
  double served = 0.0;
  for (int c = 0; c < 2; ++c) {
    served += snap.value_of("dart_collector" + std::to_string(c) +
                            "_query_served_total");
  }
  check(sent == received + pending, "queries sent == received + pending",
        sent, received + pending);
  check(served == received, "queries served == responses received", served,
        received);
  check(emitted > 0 && sent > 0, "workload actually ran", emitted, sent);

  std::printf(failures == 0 ? "selfcheck: clean\n"
                            : "selfcheck: %d invariant(s) violated\n",
              failures);
  return failures == 0 ? 0 : 1;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: dart_metrics diff BEFORE.json AFTER.json\n");
    return 2;
  }
  const auto before = obs::read_results_json(argv[2]);
  const auto after = obs::read_results_json(argv[3]);
  if (!before || !after) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 !before ? argv[2] : argv[3]);
    return 1;
  }
  const auto find = [](const std::vector<std::pair<std::string, double>>& kv,
                       const std::string& key) -> const double* {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  for (const auto& [key, after_v] : *after) {
    const double* before_v = find(*before, key);
    const double delta = before_v ? after_v - *before_v : after_v;
    if (delta != 0.0 || before_v == nullptr) {
      std::printf("%-64s %+.6g%s\n", key.c_str(), delta,
                  before_v == nullptr ? "  (new)" : "");
    }
  }
  for (const auto& [key, v] : *before) {
    if (find(*after, key) == nullptr) {
      std::printf("%-64s (removed, was %.6g)\n", key.c_str(), v);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dart_metrics <fabric|ingest|selfcheck|diff> "
                 "[--flags]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "fabric") return cmd_fabric(argc, argv);
  if (cmd == "ingest") return cmd_ingest(argc, argv);
  if (cmd == "selfcheck") return cmd_selfcheck();
  if (cmd == "diff") return cmd_diff(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
