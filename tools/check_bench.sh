#!/usr/bin/env bash
# Builds the benches in Release and smoke-runs the two perf-trajectory
# binaries (micro_datapath, scaling_ingest_threads) with a small rep count,
# then validates that each emitted BENCH_<name>.json parses and carries the
# required keys. This is the gate that keeps the machine-readable perf
# baseline from silently rotting between PRs.
#
# Usage: tools/check_bench.sh [build-dir]   (default: build-bench)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"

# The docs gate rides along: stale paths and broken links fail here too.
tools/check_docs.sh

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j \
  --target micro_datapath scaling_ingest_threads ablation_faults primitives \
  storage_backends scaling_query_clients scaling_collectors dart_metrics

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

# Small rep counts: this validates plumbing, not statistics.
# NOTE: the bundled google-benchmark wants a plain double for min_time.
(cd "$OUT_DIR" && "$OLDPWD/$BUILD_DIR/bench/micro_datapath" \
  --benchmark_min_time=0.05)
(cd "$OUT_DIR" && "$OLDPWD/$BUILD_DIR/bench/scaling_ingest_threads" \
  --reports=40000)
(cd "$OUT_DIR" && "$OLDPWD/$BUILD_DIR/bench/ablation_faults" --flows=15)
(cd "$OUT_DIR" && "$OLDPWD/$BUILD_DIR/bench/primitives" --events=30000)
(cd "$OUT_DIR" && "$OLDPWD/$BUILD_DIR/bench/storage_backends" \
  --flows=800 --updates=60000)
(cd "$OUT_DIR" && "$OLDPWD/$BUILD_DIR/bench/scaling_query_clients" \
  --max-clients=64 --rounds=4)
(cd "$OUT_DIR" && "$OLDPWD/$BUILD_DIR/bench/scaling_collectors" \
  --flows=400000 --frames=4000)

# Metrics snapshot: conservation invariants plus the JSON exposition, and
# the chaos run that holds those invariants under every injected fault class.
"$BUILD_DIR/tools/dart_metrics" selfcheck
"$BUILD_DIR/tools/dart_metrics" chaos
"$BUILD_DIR/tools/dart_metrics" fabric --flows=40 --loss=0.1 \
  --json="$OUT_DIR/METRICS_fabric.json"

python3 - "$OUT_DIR" <<'EOF'
import json
import sys
from pathlib import Path

out_dir = Path(sys.argv[1])
required = ["reports_per_sec", "ns_per_report"]
failures = 0
for name in ["micro_datapath", "scaling_ingest_threads", "primitives"]:
    path = out_dir / f"BENCH_{name}.json"
    if not path.exists():
        print(f"FAIL: {path} was not emitted")
        failures += 1
        continue
    doc = json.loads(path.read_text())  # raises on malformed JSON
    for key in ["name", "config", "results"]:
        if key not in doc:
            print(f"FAIL: {path}: missing top-level key '{key}'")
            failures += 1
    results = doc.get("results", {})
    for key in required:
        if key not in results:
            print(f"FAIL: {path}: missing result '{key}'")
            failures += 1
        elif not (isinstance(results[key], (int, float)) and results[key] > 0):
            print(f"FAIL: {path}: result '{key}' = {results[key]!r} not > 0")
            failures += 1
    if failures == 0:
        print(f"OK: {path.name}: reports_per_sec="
              f"{results['reports_per_sec']:.0f} "
              f"ns_per_report={results['ns_per_report']:.1f}")

# DTA primitives: beyond the generic rate keys, each primitive and the
# collector-side drain must report a positive rate of its own.
prim_path = out_dir / "BENCH_primitives.json"
if prim_path.exists():
    results = json.loads(prim_path.read_text()).get("results", {})
    for key in ["append_reports_per_sec", "increment_reports_per_sec",
                "postcard_reports_per_sec", "drain_entries_per_sec"]:
        val = results.get(key)
        if not (isinstance(val, (int, float)) and val > 0):
            print(f"FAIL: {prim_path}: result '{key}' = {val!r} not > 0")
            failures += 1

# Storage backends: per load factor, the matched-budget accuracy envelope.
# The sketch is count-min, so estimates can never undershoot, every
# overestimate must sit within the classic e/cols bound's reported rate
# bounds, and the byte budgets must actually match (sketch <= KV, same order).
sb_path = out_dir / "BENCH_storage_backends.json"
if not sb_path.exists():
    print(f"FAIL: {sb_path} was not emitted")
    failures += 1
else:
    results = json.loads(sb_path.read_text()).get("results", {})
    lfs = sorted({k.split("_")[0] for k in results if k.startswith("lf")})
    if len(lfs) < 2:
        print(f"FAIL: {sb_path}: needs >= 2 load factors, got {lfs}")
        failures += 1
    for lf in lfs:
        for key in ["kv_bytes", "sketch_bytes", "kv_exact_rate",
                    "sketch_mean_rel_err", "sketch_p99_rel_err",
                    "sketch_mean_overestimate", "sketch_error_bound",
                    "sketch_within_bound_rate", "sketch_topk_recall",
                    "kv_updates_per_sec", "sketch_updates_per_sec"]:
            val = results.get(f"{lf}_{key}")
            if not isinstance(val, (int, float)):
                print(f"FAIL: {sb_path}: missing '{lf}_{key}'")
                failures += 1
        if failures:
            continue
        if results[f"{lf}_sketch_bytes"] > results[f"{lf}_kv_bytes"]:
            print(f"FAIL: {sb_path}: {lf}: sketch over byte budget")
            failures += 1
        for rate in ["kv_exact_rate", "sketch_within_bound_rate",
                     "sketch_topk_recall"]:
            val = results[f"{lf}_{rate}"]
            if not 0.0 <= val <= 1.0:
                print(f"FAIL: {sb_path}: {lf}_{rate} = {val!r} not a rate")
                failures += 1
        if results[f"{lf}_sketch_mean_rel_err"] < 0:
            print(f"FAIL: {sb_path}: {lf}: count-min undershot the truth")
            failures += 1
    if failures == 0:
        print(f"OK: {sb_path.name}: {len(lfs)} load factors, kv_exact="
              + "/".join(f"{results[f'{lf}_kv_exact_rate']:.0%}"
                         for lf in lfs))

# Fault ablation: same envelope; per fault class a delivery/answered/degraded
# triple. The recovery row must answer everything (degraded, not dropped).
faults_path = out_dir / "BENCH_ablation_faults.json"
faults_required = [
    "healthy_delivery", "healthy_answered",
    "rnic_stall_delivery", "qp_error_delivery",
    "partition_delivery", "corruption_delivery",
    "kill_no_recovery_answered",
    "kill_recovery_answered", "kill_recovery_degraded",
]
if not faults_path.exists():
    print(f"FAIL: {faults_path} was not emitted")
    failures += 1
else:
    doc = json.loads(faults_path.read_text())
    results = doc.get("results", {})
    for key in faults_required:
        val = results.get(key)
        if not (isinstance(val, (int, float)) and 0.0 <= val <= 1.0):
            print(f"FAIL: {faults_path}: '{key}' = {val!r} not a rate")
            failures += 1
    if failures == 0:
        if results["kill_recovery_answered"] < 0.99:
            print("FAIL: recovery plane left queries unanswered: "
                  f"{results['kill_recovery_answered']:.3f}")
            failures += 1
        if results["kill_recovery_degraded"] <= 0.0:
            print("FAIL: takeover answers never carried the degraded flag")
            failures += 1
    if failures == 0:
        print(f"OK: {faults_path.name}: kill answered "
              f"{results['kill_no_recovery_answered']:.1%} -> "
              f"{results['kill_recovery_answered']:.1%} with recovery "
              f"({results['kill_recovery_degraded']:.1%} degraded)")

# Query-plane scaling: per client count, the gateway's served-latency SLO
# quantiles plus the coalesce/cache ledger. Quantiles must be positive for
# every swept row (cache hits record 0 ns, so only an all-hit sweep could
# zero p99 — the epoch tick in the bench guarantees upstream traffic), and
# rates must be rates. The largest swept row must be reported explicitly.
sq_path = out_dir / "BENCH_scaling_query_clients.json"
if not sq_path.exists():
    print(f"FAIL: {sq_path} was not emitted")
    failures += 1
else:
    doc = json.loads(sq_path.read_text())
    results = doc.get("results", {})
    counts = sorted({int(k[1:].split("_")[0]) for k in results
                     if k.startswith("c") and k[1].isdigit()})
    if len(counts) < 2:
        print(f"FAIL: {sq_path}: needs >= 2 client counts, got {counts}")
        failures += 1
    for c in counts:
        for key in ["ops_per_sec", "p50_ns", "p99_ns", "cache_hit_rate",
                    "coalesce_rate", "inflight_highwater"]:
            val = results.get(f"c{c}_{key}")
            if not isinstance(val, (int, float)):
                print(f"FAIL: {sq_path}: missing 'c{c}_{key}'")
                failures += 1
        if failures:
            continue
        for key in ["ops_per_sec", "p99_ns"]:
            if not results[f"c{c}_{key}"] > 0:
                print(f"FAIL: {sq_path}: c{c}_{key} = "
                      f"{results[f'c{c}_{key}']!r} not > 0")
                failures += 1
        if results[f"c{c}_p50_ns"] > results[f"c{c}_p99_ns"]:
            print(f"FAIL: {sq_path}: c{c}: p50 > p99")
            failures += 1
        for rate in ["cache_hit_rate", "coalesce_rate"]:
            val = results[f"c{c}_{rate}"]
            if not 0.0 <= val <= 1.0:
                print(f"FAIL: {sq_path}: c{c}_{rate} = {val!r} not a rate")
                failures += 1
    sustained = results.get("max_clients_sustained")
    if counts and sustained != counts[-1]:
        print(f"FAIL: {sq_path}: max_clients_sustained = {sustained!r} but "
              f"largest swept row is {counts[-1]}")
        failures += 1
    if failures == 0:
        top = counts[-1]
        print(f"OK: {sq_path.name}: sustained {top} clients, "
              f"p99={results[f'c{top}_p99_ns']:.0f}ns, "
              f"cache_hit={results[f'c{top}_cache_hit_rate']:.0%}")

# Collector scale-out: per pool size, aggregate ingest rate plus the
# consistent-hash movement envelope — a single leave may move at most
# 2·K/C keys (the ring's minimal-movement bound; modulo would move ~K),
# re-admission must restore the exact table (restore_mismatch == 0), and
# no bucket the victim didn't own may change owner.
sc_path = out_dir / "BENCH_scaling_collectors.json"
if not sc_path.exists():
    print(f"FAIL: {sc_path} was not emitted")
    failures += 1
else:
    doc = json.loads(sc_path.read_text())
    results = doc.get("results", {})
    counts = sorted({int(k[1:].split("_")[0]) for k in results
                     if k.startswith("c") and k[1].isdigit()})
    if len(counts) < 2:
        print(f"FAIL: {sc_path}: needs >= 2 pool sizes, got {counts}")
        failures += 1
    for c in counts:
        for key in ["aggregate_reports_per_sec", "expected_share",
                    "keys_moved_single_leave", "keys_moved_modulo",
                    "balance_ratio", "restore_mismatch",
                    "movement_violations"]:
            val = results.get(f"c{c}_{key}")
            if not isinstance(val, (int, float)):
                print(f"FAIL: {sc_path}: missing 'c{c}_{key}'")
                failures += 1
        if failures:
            continue
        if not results[f"c{c}_aggregate_reports_per_sec"] > 0:
            print(f"FAIL: {sc_path}: c{c}: ingest rate not > 0")
            failures += 1
        bound = 2.0 * results[f"c{c}_expected_share"]
        moved = results[f"c{c}_keys_moved_single_leave"]
        if moved > bound:
            print(f"FAIL: {sc_path}: c{c}: single leave moved {moved:.0f} "
                  f"keys > minimal-movement bound 2K/C = {bound:.0f}")
            failures += 1
        if moved > results[f"c{c}_keys_moved_modulo"]:
            print(f"FAIL: {sc_path}: c{c}: ring moved more keys than modulo")
            failures += 1
        if results[f"c{c}_balance_ratio"] > 1.25:
            print(f"FAIL: {sc_path}: c{c}: balance ratio "
                  f"{results[f'c{c}_balance_ratio']:.3f} > 1.25")
            failures += 1
        for key in ["restore_mismatch", "movement_violations"]:
            if results[f"c{c}_{key}"] != 0:
                print(f"FAIL: {sc_path}: c{c}_{key} = "
                      f"{results[f'c{c}_{key}']!r} != 0")
                failures += 1
    if results.get("restore_mismatch") != 0:
        print(f"FAIL: {sc_path}: restore_mismatch = "
              f"{results.get('restore_mismatch')!r} != 0")
        failures += 1
    if failures == 0:
        top = counts[-1]
        print(f"OK: {sc_path.name}: {len(counts)} pool sizes up to {top}, "
              f"single leave at {top} moved "
              f"{results[f'c{top}_keys_moved_single_leave']:.0f} keys "
              f"(bound {2 * results[f'c{top}_expected_share']:.0f}), "
              f"restore exact")

# Metrics snapshot: same BenchJson envelope, one flat key per metric (plus
# _count/_sum/_p50/_p90/_p99 expansions for histograms).
metrics_path = out_dir / "METRICS_fabric.json"
metrics_required = [
    "dart_switch0_reports_emitted_total",
    "dart_switches_reports_emitted_total",
    "dart_collector0_rnic_frames_total",
    "dart_collector0_qp_accepted_total",
    "dart_net_delivered_total",
    "dart_monitoring_delivered_total",
    "dart_collector0_query_served_total",
    "dart_collector0_query_resolve_ns_count",
    "dart_operator_queries_sent_total",
]
if not metrics_path.exists():
    print(f"FAIL: {metrics_path} was not emitted")
    failures += 1
else:
    doc = json.loads(metrics_path.read_text())
    for key in ["name", "config", "results"]:
        if key not in doc:
            print(f"FAIL: {metrics_path}: missing top-level key '{key}'")
            failures += 1
    results = doc.get("results", {})
    for key in metrics_required:
        if key not in results:
            print(f"FAIL: {metrics_path}: missing metric '{key}'")
            failures += 1
        elif not isinstance(results[key], (int, float)):
            print(f"FAIL: {metrics_path}: metric '{key}' not numeric")
            failures += 1
    if failures == 0:
        print(f"OK: {metrics_path.name}: {len(results)} metrics, "
              f"reports_emitted="
              f"{results['dart_switches_reports_emitted_total']:.0f}")
sys.exit(1 if failures else 0)
EOF

# Perf ratchet: the headline craft+ingest rate may not regress more than 10%
# below the committed baseline (BENCH_micro_datapath.json at the repo root).
# The headline benchmark is re-measured alone with a longer min_time than the
# smoke runs above, so the gate fails on real regressions rather than
# smoke-run noise. Raising the committed baseline re-tightens the floor.
RATCHET_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR" "$RATCHET_DIR"' EXIT
(cd "$RATCHET_DIR" && "$OLDPWD/$BUILD_DIR/bench/micro_datapath" \
  --benchmark_filter='^BM_CraftPlusIngest$' --benchmark_min_time=0.4)
python3 - "$RATCHET_DIR" <<'EOF'
import json
import sys
from pathlib import Path

committed = json.loads(Path("BENCH_micro_datapath.json").read_text())
fresh = json.loads(
    (Path(sys.argv[1]) / "BENCH_micro_datapath.json").read_text())
base = committed["results"]["reports_per_sec"]
now = fresh["results"]["reports_per_sec"]
floor = 0.9 * base
if now < floor:
    print(f"FAIL: reports_per_sec ratchet: measured {now:,.0f} < floor "
          f"{floor:,.0f} (committed baseline {base:,.0f} - 10%)")
    sys.exit(1)
print(f"OK: reports_per_sec ratchet: measured {now:,.0f} >= floor "
      f"{floor:,.0f} (committed baseline {base:,.0f})")
EOF

echo "bench JSON: clean"
