// dart_trace — golden-trace and corpus fixture management.
//
//   dart_trace golden --out=DIR   regenerate canonical golden traces
//   dart_trace corpus --out=DIR   regenerate canonical must-reject corpus
//   dart_trace verify --golden=DIR
//                                 regenerate in memory and compare with the
//                                 committed fixtures; exit 1 on any drift,
//                                 reporting the first differing byte
//   dart_trace show FILE          decode a fixture: name, notes, artifact
//                                 sizes and hex dumps
//
// The committed fixtures under tests/golden/ pin the wire formats: CI
// regenerates and byte-compares them (see docs/TESTING.md). Regenerate with
// `golden` only after a deliberate wire-format change, and say so in the
// commit message.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/golden.hpp"
#include "common/bytes.hpp"

namespace {

using dart::check::Trace;

int usage() {
  std::fprintf(stderr,
               "usage: dart_trace golden --out=DIR\n"
               "       dart_trace corpus --out=DIR\n"
               "       dart_trace verify --golden=DIR\n"
               "       dart_trace show FILE\n");
  return 2;
}

std::string arg_value(int argc, char** argv, const char* name) {
  const auto prefix = std::string(name) + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return {};
}

int write_traces(const std::vector<Trace>& traces, const std::string& dir) {
  for (const auto& trace : traces) {
    const auto path = dir + "/" + trace.name + ".hex";
    if (!dart::check::write_trace_file(path, trace)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::size_t bytes = 0;
    for (const auto& a : trace.artifacts) bytes += a.size();
    std::printf("wrote %s (%zu artifacts, %zu bytes)\n", path.c_str(),
                trace.artifacts.size(), bytes);
  }
  return 0;
}

// Byte-compares regenerated traces against the fixture directory. Reports
// every drifting trace, with the first differing artifact and byte offset.
int verify(const std::string& dir) {
  int drifted = 0;
  for (const auto& fresh : dart::check::canonical_golden_traces()) {
    const auto path = dir + "/" + fresh.name + ".hex";
    const auto committed = dart::check::read_trace_file(path);
    if (!committed.has_value()) {
      std::fprintf(stderr, "DRIFT %s: missing or unparsable\n", path.c_str());
      ++drifted;
      continue;
    }
    if (committed->artifacts.size() != fresh.artifacts.size()) {
      std::fprintf(stderr, "DRIFT %s: %zu artifacts committed, %zu expected\n",
                   path.c_str(), committed->artifacts.size(),
                   fresh.artifacts.size());
      ++drifted;
      continue;
    }
    bool ok = true;
    for (std::size_t i = 0; i < fresh.artifacts.size() && ok; ++i) {
      const auto& a = committed->artifacts[i];
      const auto& b = fresh.artifacts[i];
      const auto n = std::min(a.size(), b.size());
      for (std::size_t off = 0; off < n; ++off) {
        if (a[off] != b[off]) {
          std::fprintf(stderr,
                       "DRIFT %s: artifact %zu byte %zu: committed %02x "
                       "regenerated %02x\n",
                       path.c_str(), i, off, static_cast<unsigned>(a[off]),
                       static_cast<unsigned>(b[off]));
          ok = false;
          break;
        }
      }
      if (ok && a.size() != b.size()) {
        std::fprintf(stderr, "DRIFT %s: artifact %zu is %zu bytes, expected %zu\n",
                     path.c_str(), i, a.size(), b.size());
        ok = false;
      }
    }
    if (!ok) {
      ++drifted;
    } else {
      std::printf("ok %s (%zu artifacts)\n", path.c_str(),
                  fresh.artifacts.size());
    }
  }
  if (drifted != 0) {
    std::fprintf(stderr,
                 "%d trace(s) drifted. If the wire format change is "
                 "deliberate: dart_trace golden --out=%s\n",
                 drifted, dir.c_str());
    return 1;
  }
  return 0;
}

int show(const std::string& path) {
  const auto trace = dart::check::read_trace_file(path);
  if (!trace.has_value()) {
    std::fprintf(stderr, "error: cannot parse %s\n", path.c_str());
    return 1;
  }
  std::printf("trace: %s\n", trace->name.c_str());
  for (const auto& note : trace->notes) std::printf("note:  %s\n", note.c_str());
  for (std::size_t i = 0; i < trace->artifacts.size(); ++i) {
    const auto& a = trace->artifacts[i];
    std::printf("artifact %zu (%zu bytes): %s\n", i, a.size(),
                dart::hex_dump(a, a.size()).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "golden" || cmd == "corpus") {
    const auto out = arg_value(argc, argv, "--out");
    if (out.empty()) return usage();
    const auto traces = cmd == "golden" ? dart::check::canonical_golden_traces()
                                        : dart::check::canonical_corpus();
    return write_traces(traces, out);
  }
  if (cmd == "verify") {
    const auto dir = arg_value(argc, argv, "--golden");
    if (dir.empty()) return usage();
    return verify(dir);
  }
  if (cmd == "show") {
    if (argc < 3) return usage();
    return show(argv[2]);
  }
  return usage();
}
