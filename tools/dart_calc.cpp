// dart_calc — deployment planning calculator over the §4 closed forms.
//
//   dart_calc success --alpha=0.745 --n=2 [--bits=32]
//       probabilities at one operating point (survival, empty, error bounds)
//   dart_calc optimal --alpha=0.25 [--max-n=8]
//       best redundancy at a load factor
//   dart_calc provision --flows=1e8 --target=0.993 [--n=2] [--value-bytes=20]
//                       [--bits=32]
//       memory needed for a target average queryability (the Fig. 4 sizing
//       question: "how many GB for 100M flows at 99.3%?")
//   dart_calc sweep [--n=2] [--bits=32]
//       success-vs-load table (Fig. 3's curve, analytically)
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/analysis.hpp"
#include "core/config.hpp"

namespace {

using namespace dart;
using namespace dart::core;

int cmd_success(int argc, char** argv) {
  const double alpha = bench::flag_double(argc, argv, "alpha", 0.745);
  const auto n = static_cast<unsigned>(bench::flag_u64(argc, argv, "n", 2));
  const auto bits =
      static_cast<unsigned>(bench::flag_u64(argc, argv, "bits", 32));
  std::printf("operating point: alpha=%.4f N=%u b=%u\n", alpha, n, bits);
  std::printf("  P(one slot overwritten)   = %.6f\n", p_slot_overwritten(alpha, n));
  std::printf("  P(all slots overwritten)  = %.6f\n", p_all_overwritten(alpha, n));
  std::printf("  P(survives / queryable)   = %.6f\n", p_survives(alpha, n));
  std::printf("  P(empty, no csum match)   = %.6e\n",
              p_empty_no_match(alpha, n, bits));
  std::printf("  P(ambiguous)              = [%.3e, %.3e]\n",
              p_ambiguous_lower(alpha, n, bits), p_ambiguous_upper(alpha, n, bits));
  std::printf("  P(return error)           = [%.3e, %.3e]\n",
              p_return_error_lower(alpha, n, bits),
              p_return_error_upper(alpha, n, bits));
  return 0;
}

int cmd_optimal(int argc, char** argv) {
  const double alpha = bench::flag_double(argc, argv, "alpha", 0.25);
  const auto max_n =
      static_cast<unsigned>(bench::flag_u64(argc, argv, "max-n", 8));
  const unsigned best = optimal_n(alpha, max_n);
  std::printf("alpha=%.4f: optimal N = %u (success %.4f)\n", alpha, best,
              p_survives(alpha, best));
  for (unsigned n = 1; n <= max_n; ++n) {
    std::printf("  N=%u -> %.4f%s\n", n, p_survives(alpha, n),
                n == best ? "  <-- best" : "");
  }
  return 0;
}

int cmd_provision(int argc, char** argv) {
  const double flows = bench::flag_double(argc, argv, "flows", 1e8);
  const double target = bench::flag_double(argc, argv, "target", 0.993);
  const auto n = static_cast<unsigned>(bench::flag_u64(argc, argv, "n", 2));
  const auto value_bytes =
      static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "value-bytes", 20));
  const auto bits =
      static_cast<std::uint32_t>(bench::flag_u64(argc, argv, "bits", 32));

  DartConfig cfg;
  cfg.value_bytes = value_bytes;
  cfg.checksum_bits = bits;
  const double slot_bytes = cfg.slot_bytes();

  // Bisect the slot count for the target average queryability.
  double lo = flows * 0.01, hi = flows * 1000.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (average_success_over_ages(flows, mid, n) >= target ? hi : lo) = mid;
  }
  const double slots = hi;
  std::printf("provisioning for %s flows, target avg queryability %.3f, "
              "N=%u, slot=%d B:\n",
              format_count(flows).c_str(), target, n,
              static_cast<int>(slot_bytes));
  std::printf("  slots needed    : %s\n", format_count(slots).c_str());
  std::printf("  memory needed   : %s (%.1f B/flow)\n",
              format_bytes(slots * slot_bytes).c_str(),
              slots * slot_bytes / flows);
  std::printf("  oldest-report Q : %.4f\n", oldest_success(flows, slots, n));
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  const auto n = static_cast<unsigned>(bench::flag_u64(argc, argv, "n", 2));
  std::printf("alpha     survival(N=%u)  optimal-N\n", n);
  for (double alpha = 0.015625; alpha <= 8.0; alpha *= 2.0) {
    std::printf("%-9.4f %-15.4f %u\n", alpha, p_survives(alpha, n),
                optimal_n(alpha, 8));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "success") return cmd_success(argc, argv);
  if (cmd == "optimal") return cmd_optimal(argc, argv);
  if (cmd == "provision") return cmd_provision(argc, argv);
  if (cmd == "sweep") return cmd_sweep(argc, argv);
  std::fprintf(stderr,
               "usage: dart_calc <success|optimal|provision|sweep> [--flags]\n"
               "see the header comment of tools/dart_calc.cpp for details\n");
  return cmd.empty() ? 2 : 1;
}
