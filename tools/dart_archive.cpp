// dart_archive — inspect the epoch archive files written by EpochedStore
// (core/epoch.hpp).
//
//   dart_archive info  <file>                  header + entry count
//   dart_archive dump  <file> [--limit=20]     entries (checksum + value hex)
//   dart_archive query <file> --key-u64=<id>   historical point query using
//                                              the sim_key convention
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/bytes.hpp"
#include "core/epoch.hpp"
#include "core/oracle.hpp"

namespace {

using namespace dart;
using namespace dart::core;

int cmd_info(const std::string& path) {
  auto reader = EpochArchiveReader::open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "error [%s]: %s\n", reader.error().code.c_str(),
                 reader.error().message.c_str());
    return 1;
  }
  const auto& r = reader.value();
  std::printf("archive        : %s\n", path.c_str());
  std::printf("epoch          : %llu\n",
              static_cast<unsigned long long>(r.epoch()));
  std::printf("checksum bits  : %u\n", r.checksum_bits());
  std::printf("value bytes    : %u\n", r.value_bytes());
  std::printf("entries        : %zu\n", r.entry_count());
  return 0;
}

int cmd_dump(const std::string& path, int argc, char** argv) {
  auto reader = EpochArchiveReader::open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "error: %s\n", reader.error().message.c_str());
    return 1;
  }
  const auto limit = bench::flag_u64(argc, argv, "limit", 20);
  const auto& entries = reader.value().entries();
  std::printf("%zu entries (showing up to %llu):\n", entries.size(),
              static_cast<unsigned long long>(limit));
  std::uint64_t printed = 0;
  for (const auto& e : entries) {
    if (printed++ >= limit) break;
    std::printf("  slot %-10llu csum 0x%08x  value %s\n",
                static_cast<unsigned long long>(e.slot_index), e.checksum,
                hex_dump(e.value, 24).c_str());
  }
  return 0;
}

int cmd_query(const std::string& path, int argc, char** argv) {
  auto reader = EpochArchiveReader::open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "error: %s\n", reader.error().message.c_str());
    return 1;
  }
  const auto id = bench::flag_u64(argc, argv, "key-u64", 0);
  const auto key = sim_key(id);
  const auto hits = reader.value().lookup_key(key);
  std::printf("key %llu: %zu checksum-matching entr%s\n",
              static_cast<unsigned long long>(id), hits.size(),
              hits.size() == 1 ? "y" : "ies");
  for (const auto& v : hits) {
    std::printf("  value: %s\n", hex_dump(v, 32).c_str());
  }
  const auto answer = reader.value().query(key);
  if (answer) {
    std::printf("historical answer: %s\n", hex_dump(*answer, 32).c_str());
    return 0;
  }
  std::printf("historical answer: empty (no copy, or ambiguous)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  const std::string path = argc > 2 ? argv[2] : "";
  if (cmd == "info" && !path.empty()) return cmd_info(path);
  if (cmd == "dump" && !path.empty()) return cmd_dump(path, argc, argv);
  if (cmd == "query" && !path.empty()) return cmd_query(path, argc, argv);
  std::fprintf(stderr,
               "usage: dart_archive <info|dump|query> <file> [--flags]\n");
  return cmd.empty() ? 2 : 1;
}
