#!/usr/bin/env bash
# Documentation drift gate. Validates, across every tracked markdown file:
#
#   1. intra-repo markdown links — [text](relative/path) must resolve to a
#      file or directory in the repo (anchors stripped; http(s) ignored);
#   2. backticked repo paths — `src/...`, `tools/...`, `tests/...`,
#      `bench/...`, `examples/...`, `docs/...` must name something that
#      exists (a file, a directory, or a source behind a built binary);
#   3. fenced ```sh blocks — every build/tools/<x> or build/bench/<x>
#      binary and tools/<x>.sh script a reader is told to run must have a
#      corresponding source in the tree.
#
# This is the gate that keeps prose honest: a renamed bench, a dropped
# tool, or a moved header fails CI instead of rotting in the docs.
#
# Usage: tools/check_docs.sh
set -euo pipefail

cd "$(dirname "$0")/.."

python3 - <<'EOF'
import re
import subprocess
import sys
from pathlib import Path

md_files = sorted(
    Path(p)
    for p in subprocess.run(
        ["git", "ls-files", "-co", "--exclude-standard", "*.md"],
        capture_output=True, text=True, check=True,
    ).stdout.splitlines()
    # Research-context notes, not product docs: may cite external artifacts.
    if Path(p).name not in {"PAPERS.md", "SNIPPETS.md", "ISSUE.md"}
)

failures = 0


def fail(doc, line_no, msg):
    global failures
    failures += 1
    print(f"FAIL: {doc}:{line_no}: {msg}")


def path_exists(doc, target):
    """A doc reference resolves if it exists as written (relative to the
    doc or the repo root) or as a source file behind a built binary."""
    bases = [doc.parent, Path(".")]
    suffixes = ["", ".hpp", ".cpp", ".sh"]
    # `core/control.hpp`-style references omit the src/ prefix.
    prefixes = ["", "src/"]
    for base in bases:
        for prefix in prefixes:
            for suffix in suffixes:
                if (base / (prefix + str(target) + suffix)).exists():
                    return True
    # build/bench/foo and build/tools/foo exist once built; their sources
    # are the stable proof.
    m = re.fullmatch(r"(?:build/)?(bench|tools)/([A-Za-z0-9_]+)", str(target))
    if m:
        d, name = m.groups()
        return any((Path(d) / f"{name}{s}").exists() for s in (".cpp", ".sh"))
    return False


link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
tick_re = re.compile(r"`([^`\n]+)`")
repo_dirs = ("src/", "tools/", "tests/", "bench/", "examples/", "docs/")

for doc in md_files:
    in_fence = False
    fence_lang = ""
    for line_no, line in enumerate(doc.read_text().splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            fence_lang = stripped[3:].strip() if in_fence else ""
            continue

        if in_fence:
            # 3. Commands readers are told to run must exist in the tree.
            if fence_lang in {"sh", "bash", "shell"}:
                for tok in re.findall(
                    r"(?:build/)?(?:tools|bench)/[A-Za-z0-9_./]+", line
                ):
                    tok = tok.rstrip(".")
                    if not path_exists(doc, tok):
                        fail(doc, line_no, f"sh block names missing '{tok}'")
            continue

        # 1. Relative markdown links.
        for target in link_re.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            plain = target.split("#", 1)[0]
            if plain and not path_exists(doc, plain):
                fail(doc, line_no, f"broken link '{target}'")

        # 2. Backticked repo paths (first path-ish token of the span, so
        # `tools/check_docs.sh [args]`-style usage lines still resolve).
        for span in tick_re.findall(line):
            tok = span.split()[0] if span.split() else ""
            if not tok.startswith(repo_dirs):
                continue
            if not re.fullmatch(r"[A-Za-z0-9_./*-]+", tok):
                continue
            if "*" in tok:  # globs like bench/ablation_* document families
                if not list(Path(".").glob(tok)):
                    fail(doc, line_no, f"glob '{tok}' matches nothing")
                continue
            if not path_exists(doc, tok.rstrip("/").rstrip(".")):
                fail(doc, line_no, f"stale path '{tok}'")

print(f"checked {len(md_files)} markdown files")
sys.exit(1 if failures else 0)
EOF

echo "docs: clean"
