#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer and runs the concurrency-sensitive
# tests: the sharded ingest pipeline, the epoch-rotation seqlock, and the
# lock-free primitives under them. A clean run is the tier-1 gate for any
# change to the threaded ingest path.
#
# Usage: tools/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DDART_SANITIZE=thread >/dev/null
cmake --build "$BUILD_DIR" -j \
  --target test_ingest_pipeline test_spsc_ring test_epoch_rotation test_qp

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'IngestPipeline|RotatingCollector|ShardRouting|SpscRing|SeqCount|RelaxedCounter|QueuePair'

echo "TSan: clean"
