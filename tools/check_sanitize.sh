#!/usr/bin/env bash
# Sanitizer CI matrix (docs/TESTING.md). Two presets over the existing
# -DDART_SANITIZE build switch:
#
#   asan   AddressSanitizer + UBSan over the whole tier-1 suite — the
#          memory-safety gate for the parser/ingest surface the fuzz and
#          property suites hammer.
#   tsan   ThreadSanitizer over the concurrency-sensitive suites, including
#          the concurrent-pipeline differential property (PropPipeline),
#          which drives real feeder/shard threads every case, and the query
#          gateway's session/cache paths (the ResultCache hammer drives the
#          sharded LRU from 8 threads) and the consistent-hash collector
#          ring's wait-free lookup-vs-rebuild snapshot swap
#          (CollectorRingHammer). Superset of tools/check_tsan.sh's
#          target list.
#   all    both, in that order.
#
# Usage: tools/check_sanitize.sh [asan|tsan|all] [build-dir-suffix]
#   build dirs default to build-asan / build-tsan.
set -euo pipefail

cd "$(dirname "$0")/.."
PRESET="${1:-all}"
SUFFIX="${2:-}"

run_asan() {
  local dir="build-asan${SUFFIX}"
  echo "== asan: AddressSanitizer+UBSan, full tier-1 suite (${dir}) =="
  cmake -B "$dir" -S . -DDART_SANITIZE=address >/dev/null
  cmake --build "$dir" -j >/dev/null
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --test-dir "$dir" --output-on-failure -L tier1 -j "$(nproc)"
  # SIMD dispatch parity: the tier-1 pass above ran the CRC/hash parity and
  # burst-ingest property suites with the SIMD kernels active (when the host
  # has them); run them again with DART_NO_SIMD=1 so UBSan+ASan watch the
  # forced-scalar arm of every dispatched kernel too.
  echo "== asan: forced-scalar dispatch (DART_NO_SIMD=1) =="
  DART_NO_SIMD=1 \
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --test-dir "$dir" --output-on-failure \
      -R 'CrcParity|XxBatchParity|HashFamilyBatch|PropBurst|PropWire'
  echo "asan: clean"
}

run_tsan() {
  local dir="build-tsan${SUFFIX}"
  echo "== tsan: ThreadSanitizer, concurrency suites (${dir}) =="
  cmake -B "$dir" -S . -DDART_SANITIZE=thread >/dev/null
  cmake --build "$dir" -j \
    --target test_ingest_pipeline test_spsc_ring test_epoch_rotation \
             test_qp test_prop_pipeline test_atomics_store \
             test_prop_backend test_result_cache test_gateway \
             test_collector_ring >/dev/null
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "$dir" --output-on-failure \
      -R 'IngestPipeline|RotatingCollector|ShardRouting|SpscRing|SeqCount|RelaxedCounter|QueuePair|PropPipeline|CasInsertStore|FlowCounterArrayHammer|CountMinSketchHammer|DisciplinedReadsNeverTorn|ResultCache|GatewayFixture|CollectorRingHammer'
  echo "tsan: clean"
}

case "$PRESET" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)  run_asan; run_tsan ;;
  *)
    echo "usage: tools/check_sanitize.sh [asan|tsan|all] [build-dir-suffix]" >&2
    exit 2
    ;;
esac

echo "sanitize (${PRESET}): clean"
