// Quickstart: the DART data path in ~60 lines.
//
// 1. Bring up a collector (its memory is a DartStore registered with a
//    simulated RDMA NIC).
// 2. Configure a DART switch pipeline with the collector's directory row.
// 3. Report a key-value pair: the switch emits real RoCEv2 WRITE frames,
//    the RNIC validates and DMAs them into collector memory — the
//    collector's CPU never sees the report.
// 4. Query the key back through the stateless hash mapping.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/cluster.hpp"
#include "switchsim/dart_switch.hpp"

int main() {
  using namespace dart;

  // Deployment-wide DART parameters (shared by switches, collectors and
  // query clients — this shared config is what makes the mapping stateless).
  core::DartConfig config;
  config.n_slots = 1 << 16;      // M: slots per collector
  config.n_addresses = 2;        // N: redundancy (paper default)
  config.checksum_bits = 32;     // b: key checksum width (paper default)
  config.value_bytes = 20;       // fits a 5-hop INT path (160 bits)
  config.master_seed = 0xDA27;   // hash seeds, distributed with the config

  // 1. One collector; cluster() also handles sharding across many.
  core::CollectorCluster cluster(config, /*n_collectors=*/1);

  // 2. A switch, loaded with the collector lookup table (§3.1).
  switchsim::DartSwitchPipeline::Config switch_config;
  switch_config.dart = config;
  switch_config.write_mode = core::WriteMode::kAllSlots;
  switchsim::DartSwitchPipeline dart_switch(switch_config);
  for (const auto& row : cluster.directory()) {
    dart_switch.load_collector(row);
  }

  // 3. Report: key "flow:10.0.0.1->10.0.0.2" with a 20-byte value.
  const std::string key = "flow:10.0.0.1->10.0.0.2";
  std::vector<std::byte> value(20, std::byte{0});
  const char* message = "hello-dart";
  std::memcpy(value.data(), message, std::strlen(message));

  const auto key_bytes = std::as_bytes(std::span{key.data(), key.size()});
  for (const auto& frame : dart_switch.on_telemetry(key_bytes, value)) {
    // In deployment this frame traverses the fabric; here we hand it
    // straight to the collector's NIC.
    const auto completion = cluster.collector(0).rnic().process_frame(frame);
    std::printf("RNIC ingested RoCEv2 WRITE: vaddr=0x%llx len=%u\n",
                static_cast<unsigned long long>(completion->vaddr),
                completion->length);
  }
  std::printf("Collector CPU writes during ingest: %llu (zero-CPU!)\n",
              static_cast<unsigned long long>(
                  cluster.collector(0).store().writes_performed()));

  // 4. Query (§3.2): hash key → collector → N slots → checksum filter →
  //    plurality vote.
  const auto result = cluster.query(key_bytes);
  if (result.outcome == core::QueryOutcome::kFound) {
    std::printf("Query hit (%u/%u slots matched): value = \"%s\"\n",
                result.checksum_matches, config.n_addresses,
                reinterpret_cast<const char*>(result.value.data()));
  } else {
    std::printf("Query missed (empty return)\n");
  }
  return 0;
}
