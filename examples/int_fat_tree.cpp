// INT path tracing on a fat tree — the paper's running example (§1, §5.2).
//
// A k=8 fat tree carries flows between random hosts; in-band INT accumulates
// per-hop switch ids in the packet; the egress edge switch (INT sink)
// reports each flow's path to a DART collector cluster over RoCEv2, with 1%
// report loss injected. An operator then investigates: which path did flow X
// take, and which flows crossed a given core switch (found by querying flows
// and filtering — DART is a key-value store, so inverse queries enumerate
// candidate keys, as the paper's operators do with flow lists from other
// sources).
//
// Build & run:  ./build/examples/int_fat_tree
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "telemetry/int_fabric.hpp"

int main() {
  using namespace dart;
  using namespace dart::telemetry;

  IntFabricConfig config;
  config.fat_tree_k = 8;              // 80 switches, 128 hosts
  config.dart.n_slots = 1 << 16;
  config.dart.n_addresses = 2;
  config.dart.value_bytes = 20;       // 5 hops × 32-bit switch ids
  config.n_collectors = 4;            // sharded collection
  config.report_loss_rate = 0.01;     // 1% report loss in the fabric
  config.switch_write_mode = core::WriteMode::kAllSlots;
  config.seed = 2026;

  IntFabric fabric(config);
  const auto& topo = fabric.topology();
  std::printf("Fat tree: k=%u, %u switches, %u hosts; %u collectors\n",
              topo.k(), topo.n_switches(), topo.n_hosts(),
              fabric.cluster().size());

  // Trace 20K flows.
  FlowGenerator gen(topo, 7);
  std::vector<FlowEndpoints> flows;
  for (int i = 0; i < 20'000; ++i) {
    flows.push_back(gen.next_flow());
    (void)fabric.trace_flow(flows.back());
  }
  std::printf("Traced %llu flows; %llu reports emitted, %llu lost (%.2f%%)\n",
              static_cast<unsigned long long>(fabric.stats().flows_traced),
              static_cast<unsigned long long>(fabric.stats().reports_emitted),
              static_cast<unsigned long long>(fabric.stats().reports_lost),
              100.0 * static_cast<double>(fabric.stats().reports_lost) /
                  static_cast<double>(fabric.stats().reports_emitted));

  // Operator query #1: the path of one specific flow.
  const auto& probe = flows[12'345];
  const auto path = fabric.query_path(probe.tuple);
  std::printf("\nPath of %s:\n  ", probe.tuple.str().c_str());
  if (path) {
    for (const auto sw : *path) {
      std::printf("%s ", topo.switch_name(sw).c_str());
    }
    std::printf("\n");
  } else {
    std::printf("(empty return — report lost or aged out)\n");
  }

  // Operator query #2: troubleshoot core-0 — which recent flows crossed it?
  const std::uint32_t suspect_core = topo.core_id(0);
  int crossed = 0, queried_ok = 0;
  for (const auto& f : flows) {
    const auto p = fabric.query_path(f.tuple);
    if (!p) continue;
    ++queried_ok;
    for (const auto sw : *p) {
      if (sw == suspect_core) {
        ++crossed;
        break;
      }
    }
  }
  std::printf(
      "\nTroubleshooting %s: %d of %d queryable flows crossed it.\n",
      topo.switch_name(suspect_core).c_str(), crossed, queried_ok);

  // Coverage report: queryability vs what the theory promises at this load.
  const double queryability =
      static_cast<double>(queried_ok) / static_cast<double>(flows.size());
  std::printf("Overall queryability: %.2f%% of %zu flows (load α = %.3f)\n",
              100.0 * queryability, flows.size(),
              static_cast<double>(flows.size()) * config.dart.n_addresses /
                  (config.dart.n_slots * 4.0));

  // Tier histogram of queried paths (sanity: 5-hop inter-pod dominates).
  std::map<std::size_t, int> by_len;
  for (const auto& f : flows) {
    const auto p = fabric.query_path(f.tuple);
    if (p) ++by_len[p->size()];
  }
  std::printf("Path length mix:");
  for (const auto& [len, count] : by_len) {
    std::printf("  %zu-hop: %d", len, count);
  }
  std::printf("\n");
  return 0;
}
