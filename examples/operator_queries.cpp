// Operator queries over the network — the full §3.2 flow (Fig. 2, left):
//
//   operator hashes key → collector id → directory lookup → query request
//   over UDP → collector CPU resolves N slots locally → response.
//
// Traffic side: a wire-level INT fat tree (WireFabric) collects flow paths
// into two collectors via RoCEv2. Query side: an OperatorClient node talks
// to per-collector QueryServiceNodes over a management network, with a
// per-query choice of return policy.
//
// Build & run:  ./build/examples/operator_queries
#include <cstdio>
#include <vector>

#include "core/query_service.hpp"
#include "telemetry/int_path.hpp"
#include "telemetry/wire_fabric.hpp"
#include "telemetry/workload.hpp"

int main() {
  using namespace dart;
  using namespace dart::core;
  using namespace dart::telemetry;

  // --- data path: INT on a k=4 fat tree into 2 collectors -----------------
  WireFabricConfig config;
  config.fat_tree_k = 4;
  config.dart.n_slots = 1 << 14;
  config.dart.n_addresses = 2;
  config.dart.value_bytes = 20;
  config.n_collectors = 2;
  config.seed = 7;
  WireFabric fabric(config);

  FlowGenerator gen(fabric.topology(), 99);
  std::vector<FlowEndpoints> flows;
  for (int i = 0; i < 3'000; ++i) {
    flows.push_back(gen.next_flow());
    fabric.send_flow(flows.back().tuple, flows.back().src_host, 1);
  }
  fabric.run();
  std::printf("Collected %llu INT reports from %zu flows into %u collectors "
              "(zero collector-CPU ingest).\n",
              static_cast<unsigned long long>(fabric.stats().reports_emitted),
              flows.size(), fabric.cluster().size());

  // --- management network: query services + operator ----------------------
  net::Simulator mgmt(11);
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp;
  auto resolver = [&arp](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
    for (const auto& [addr, node] : arp) {
      if (addr == ip) return node;
    }
    return std::nullopt;
  };

  std::vector<net::Ipv4Addr> service_ips;
  std::vector<std::unique_ptr<QueryServiceNode>> services;
  for (std::uint32_t c = 0; c < fabric.cluster().size(); ++c) {
    service_ips.push_back(net::Ipv4Addr::from_octets(10, 0, 200,
                                                     static_cast<std::uint8_t>(c)));
    services.push_back(std::make_unique<QueryServiceNode>(
        fabric.cluster().collector(c), service_ips.back(), resolver));
  }
  const ReportCrafter crafter(config.dart);
  OperatorClient operator_client(crafter,
                                 net::Ipv4Addr::from_octets(10, 9, 9, 9),
                                 service_ips, resolver);

  const auto op_node = mgmt.add_node(operator_client);
  arp.emplace_back(net::Ipv4Addr::from_octets(10, 9, 9, 9), op_node);
  for (std::uint32_t c = 0; c < services.size(); ++c) {
    const auto node = mgmt.add_node(*services[c]);
    arp.emplace_back(service_ips[c], node);
    mgmt.connect(op_node, node, /*latency_ns=*/50'000);  // 50 µs mgmt RTT/2
  }

  // --- issue a batch of queries, two policies each -------------------------
  struct Pending {
    std::size_t flow_idx;
    std::uint64_t plurality_id;
    std::uint64_t consensus_id;
  };
  std::vector<Pending> pending;
  for (std::size_t i = 0; i < 500; ++i) {
    const auto key = flows[i].tuple.key_bytes();
    pending.push_back(
        {i, operator_client.query(key, ReturnPolicy::kPlurality),
         operator_client.query(key, ReturnPolicy::kConsensusTwo)});
  }
  mgmt.run();

  int plurality_hits = 0, consensus_hits = 0;
  for (const auto& p : pending) {
    if (const auto r = operator_client.take_response(p.plurality_id);
        r && r->outcome == QueryOutcome::kFound) {
      ++plurality_hits;
    }
    if (const auto r = operator_client.take_response(p.consensus_id);
        r && r->outcome == QueryOutcome::kFound) {
      ++consensus_hits;
    }
  }
  std::printf("\nIssued 1000 network queries (500 flows × 2 policies):\n");
  std::printf("  plurality:   %d/500 answered (needs ≥1 surviving copy)\n",
              plurality_hits);
  std::printf("  consensus-2: %d/500 answered (needs both copies intact)\n",
              consensus_hits);
  for (std::uint32_t c = 0; c < services.size(); ++c) {
    std::printf("  service %u served %llu requests at %s\n", c,
                static_cast<unsigned long long>(services[c]->requests_served()),
                service_ips[c].str().c_str());
  }

  // --- show one decoded answer ---------------------------------------------
  const auto& probe = flows[42];
  const auto id = operator_client.query(probe.tuple.key_bytes());
  mgmt.run();
  if (const auto r = operator_client.take_response(id);
      r && r->outcome == QueryOutcome::kFound) {
    const auto ids = IntStack::decode_switch_ids(r->value);
    std::printf("\nPath of %s (%u/%u slot copies agreed):\n  ",
                probe.tuple.str().c_str(), r->checksum_matches,
                config.dart.n_addresses);
    for (const auto wire_id : ids) {
      std::printf("%s ", fabric.topology().switch_name(wire_id - 1).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
