// Historical queries via epoch-based storage — the §5.2.1 design sketch,
// using the library's file-backed archive (core/epoch.hpp):
//
// "A solution can be to utilize DRAM for temporary epoch-based storage of
//  telemetry data, combined with periodical transfer of data into a larger
//  (and much slower) persistent storage where historical queries can be
//  answered."
//
// The live DartStore is sealed to a persistent archive file at each epoch
// boundary (scan → append → clear); operators can later answer "what was
// flow X's state during epoch E?" long after the live table moved on.
//
// Build & run:  ./build/examples/historical_epochs
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/epoch.hpp"
#include "core/oracle.hpp"

int main() {
  using namespace dart::core;
  namespace fs = std::filesystem;

  const fs::path dir = fs::temp_directory_path() / "dart_epoch_example";
  fs::create_directories(dir);

  DartConfig config;
  config.n_slots = 1 << 14;
  config.n_addresses = 2;
  config.value_bytes = 8;
  config.master_seed = 0xE70C;

  EpochedStore store(config);

  // Simulate 5 epochs of churn: each epoch writes a fresh generation of
  // values for the same key population; the value encodes (epoch, key) so
  // history is verifiable.
  constexpr std::uint64_t kKeysPerEpoch = 6'000;
  constexpr std::uint64_t kEpochs = 5;
  auto value_for = [](std::uint64_t epoch, std::uint64_t key) {
    std::vector<std::byte> v(8);
    const std::uint64_t encoded = (epoch << 32) | key;
    std::memcpy(v.data(), &encoded, 8);
    return v;
  };
  auto archive_path = [&](std::uint64_t epoch) {
    return (dir / ("epoch-" + std::to_string(epoch) + ".dart")).string();
  };

  for (std::uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (std::uint64_t k = 0; k < kKeysPerEpoch; ++k) {
      store.live().write(sim_key(k), value_for(epoch, k));
    }
    const auto sealed = store.seal_to_file(archive_path(epoch));
    if (!sealed.ok()) {
      std::printf("seal failed: %s\n", sealed.error().message.c_str());
      return 1;
    }
    std::printf("Sealed epoch %llu → %s (%llu slot entries, %.1f KB)\n",
                static_cast<unsigned long long>(epoch),
                archive_path(epoch).c_str(),
                static_cast<unsigned long long>(sealed.value()),
                static_cast<double>(fs::file_size(archive_path(epoch))) / 1e3);
  }

  // The live store is now empty — history answers from the archive files.
  const std::uint64_t probe_key = 4242;
  std::printf("\nHistorical lookups for key %llu:\n",
              static_cast<unsigned long long>(probe_key));
  for (std::uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    auto reader = EpochArchiveReader::open(archive_path(epoch));
    if (!reader.ok()) {
      std::printf("  epoch %llu: %s\n", static_cast<unsigned long long>(epoch),
                  reader.error().message.c_str());
      continue;
    }
    const auto hit = reader.value().query(sim_key(probe_key));
    if (!hit) {
      std::printf("  epoch %llu: no surviving copy (aged out before seal)\n",
                  static_cast<unsigned long long>(epoch));
      continue;
    }
    std::uint64_t encoded;
    std::memcpy(&encoded, hit->data(), 8);
    const bool ok = (encoded >> 32) == epoch &&
                    (encoded & 0xFFFFFFFF) == probe_key;
    std::printf("  epoch %llu: value decodes to (epoch=%llu, key=%llu) %s\n",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(encoded >> 32),
                static_cast<unsigned long long>(encoded & 0xFFFFFFFF),
                ok ? "[verified]" : "[MISMATCH]");
  }

  // Coverage: fraction of the epoch-0 population answerable from history.
  auto reader = EpochArchiveReader::open(archive_path(0));
  int answered = 0;
  for (std::uint64_t k = 0; k < kKeysPerEpoch; ++k) {
    if (reader.value().query(sim_key(k)).has_value()) ++answered;
  }
  std::printf("\nEpoch-0 historical coverage: %.1f%% of %llu keys "
              "(limited only by in-epoch slot collisions at α=%.2f).\n",
              100.0 * answered / kKeysPerEpoch,
              static_cast<unsigned long long>(kKeysPerEpoch),
              static_cast<double>(kKeysPerEpoch) / config.n_slots);

  fs::remove_all(dir);
  return 0;
}
