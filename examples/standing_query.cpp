// Standing queries over the production query plane: an operator registers a
// predicate with the QueryGateway ONCE and gets notifications PUSHED when it
// fires — no polling loop, no per-check request traffic.
//
// The flow below stands up two collectors with DTA primitives, fronts them
// with a QueryGateway (docs/QUERY_PLANE.md), and registers two Sonata-style
// standing queries from a wire OperatorClient:
//
//   1. key-change on a flow key  — fires when the key's KV value changes
//   2. counter-threshold         — fires when a Key-Increment counter
//                                  crosses 100 upward
//
// Writes then land (as they would from switch reports), the gateway's epoch
// tick evaluates the standing predicates, and the notifications arrive at
// the operator as unsolicited UDP pushes.
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "core/cluster.hpp"
#include "core/primitives.hpp"
#include "core/query_service.hpp"
#include "net/netsim.hpp"
#include "query/gateway.hpp"

using namespace dart;

namespace {

std::vector<std::byte> key_of(const char* text) {
  std::vector<std::byte> out(std::strlen(text));
  std::memcpy(out.data(), text, out.size());
  return out;
}

const char* kind_name(core::StandingKind kind) {
  switch (kind) {
    case core::StandingKind::kKeyChange: return "key-change";
    case core::StandingKind::kCounterThreshold: return "counter-threshold";
    case core::StandingKind::kTopKDelta: return "top-k-delta";
  }
  return "?";
}

}  // namespace

int main() {
  core::DartConfig cfg;
  cfg.n_slots = 1 << 12;
  cfg.n_addresses = 2;
  cfg.value_bytes = 8;
  cfg.master_seed = 0x57A4D;

  constexpr std::uint32_t kCollectors = 2;
  core::CollectorCluster cluster(cfg, kCollectors);
  const auto prim = core::default_primitives(cfg.master_seed);
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    if (!cluster.collector(c).enable_primitives(prim).ok()) return 1;
  }

  // Management network: operator ↔ gateway ↔ per-collector query services.
  net::Simulator sim{1};
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp;
  auto resolver = [&arp](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
    for (const auto& [addr, node] : arp) {
      if (addr == ip) return node;
    }
    return std::nullopt;
  };

  query::QueryGatewayConfig gcfg;
  gcfg.gateway_ip = net::Ipv4Addr::from_octets(10, 9, 2, 254);
  std::vector<std::unique_ptr<core::QueryServiceNode>> services;
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    gcfg.service_ips.push_back(
        net::Ipv4Addr::from_octets(10, 0, 50, static_cast<std::uint8_t>(c)));
    gcfg.virtual_ips.push_back(
        net::Ipv4Addr::from_octets(10, 9, 2, static_cast<std::uint8_t>(c)));
    services.push_back(std::make_unique<core::QueryServiceNode>(
        cluster.collector(c), gcfg.service_ips[c], resolver));
  }
  query::QueryGateway gateway(gcfg, cluster.crafter(), resolver);

  const auto gw_node = sim.add_node(gateway);
  arp.emplace_back(gcfg.gateway_ip, gw_node);
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    const auto node = sim.add_node(*services[c]);
    arp.emplace_back(gcfg.service_ips[c], node);
    arp.emplace_back(gcfg.virtual_ips[c], gw_node);
    sim.connect(gw_node, node, /*latency_ns=*/1000);
  }

  core::OperatorClient op(cluster.crafter(),
                          net::Ipv4Addr::from_octets(10, 9, 9, 9),
                          gcfg.virtual_ips, resolver);
  const auto op_node = sim.add_node(op);
  arp.emplace_back(op.ip(), op_node);
  sim.connect(op_node, gw_node, /*latency_ns=*/1000);

  // Register the standing queries — one subscribe frame each, acked by the
  // gateway. From here on the operator sends NOTHING.
  const auto flow = key_of("flow:10.1.2.3->80");
  const auto sub1 = op.subscribe_key_change(gcfg.gateway_ip, flow);
  const auto sub2 =
      op.subscribe_counter_threshold(gcfg.gateway_ip, flow, /*threshold=*/100);
  sim.run();
  for (const auto id : {sub1, sub2}) {
    const auto ack = op.take_subscribe_ack(id);
    if (!ack || ack->rejected()) return 1;
    std::printf("subscribed: id=%llu\n",
                static_cast<unsigned long long>(ack->subscription_id));
  }

  // Telemetry lands: a KV report and 120 increments for the watched flow.
  std::vector<std::byte> value(8, std::byte{0x2A});
  cluster.write(flow, value);
  (void)cluster.collector(cluster.owner_of(flow))
      .counters()
      .fetch_add(flow, 120);

  // The epoch tick is the evaluation cadence (docs/QUERY_PLANE.md): the
  // gateway re-reads every standing predicate and pushes what fired.
  gateway.on_epoch(1);
  sim.run();

  const auto sent_before = op.queries_sent();
  for (const auto& note : op.take_notifications()) {
    std::printf("pushed [%s] sub=%llu seq=%llu value=%llu\n",
                kind_name(note.kind),
                static_cast<unsigned long long>(note.subscription_id),
                static_cast<unsigned long long>(note.seq),
                static_cast<unsigned long long>(note.value));
  }
  std::printf("operator requests sent since subscribing: %llu (push, not poll)\n",
              static_cast<unsigned long long>(op.queries_sent() - sent_before));
  return 0;
}
