// §7 extensions in action: RDMA Fetch&Add for collector-side flow counters
// and network-wide sketch aggregation.
//
// "Fetch & Add can be used to implement flow-counters directly in
//  collectors' memory (saving resources at switches) or to perform
//  network-wide aggregation of sketches."
//
// Two switches maintain ZERO counter state locally; each packet observation
// becomes a FETCH_ADD frame aimed at (a) a per-flow counter cell and (b) the
// d cells of a shared count-min sketch in the collector's memory region. The
// RNIC executes the atomics; the operator reads exact-ish per-flow counts
// and heavy-hitter estimates without any merge step.
//
// Build & run:  ./build/examples/rdma_aggregation
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/random.hpp"
#include "core/atomics_store.hpp"
#include "core/report_crafter.hpp"
#include "rdma/rnic.hpp"
#include "switchsim/topology.hpp"
#include "telemetry/workload.hpp"

int main() {
  using namespace dart;
  using namespace dart::core;

  // Collector memory: 4K flow-counter cells + a 4x1024 count-min sketch,
  // both registered as one RDMA MR of 64-bit words.
  constexpr std::uint64_t kCounterCells = 4096;
  constexpr std::uint32_t kSketchRows = 4;
  constexpr std::uint64_t kSketchCols = 1024;
  constexpr std::uint64_t kWords = kCounterCells + kSketchRows * kSketchCols;
  std::vector<std::byte> memory(kWords * 8, std::byte{0});

  rdma::SimulatedRnic rnic;
  const auto pd = rnic.alloc_pd();
  constexpr std::uint64_t kBase = 0x0000'2000'0000'0000ull;
  const auto mr = rnic.register_mr(
      pd, memory, kBase, rdma::Access::kRemoteWrite | rdma::Access::kRemoteAtomic);
  (void)rnic.create_qp(0x200, rdma::QpType::kRc, pd, rdma::PsnPolicy::kIgnore);

  // Index layouts shared by switches and the operator (stateless, like the
  // slot mapping): local reference objects provide the cell indices.
  FlowCounterArray counter_index(kCounterCells, /*seed=*/0xC0);
  CountMinSketch sketch_index(kSketchRows, kSketchCols, /*seed=*/0x55);

  RemoteStoreInfo dst;
  dst.collector_id = 0;
  dst.ip = net::Ipv4Addr::from_octets(10, 0, 100, 1);
  dst.qpn = 0x200;
  dst.rkey = mr.value().rkey;
  dst.base_vaddr = kBase;
  dst.n_slots = kWords;
  dst.slot_bytes = 8;

  DartConfig cfg;  // crafter only needs framing params here
  cfg.n_slots = kWords;
  cfg.value_bytes = 8;
  const ReportCrafter crafter(cfg);

  // Two switches observe a Zipf workload and emit FETCH_ADD frames.
  const switchsim::FatTree topo(4);
  telemetry::FlowSampler sampler(topo, 300, 1.2, 9);
  std::uint32_t psn = 0;
  std::vector<std::uint64_t> truth(300, 0);

  for (int sw = 0; sw < 2; ++sw) {
    ReporterEndpoint src;
    src.ip = net::Ipv4Addr::from_octets(10, 255, 0, static_cast<std::uint8_t>(sw));
    Xoshiro256 rng(100 + sw);
    for (int pkt = 0; pkt < 20'000; ++pkt) {
      const auto idx = rng.below(300);
      const auto& flow = sampler.flow(idx);
      truth[idx] += 1;
      const auto key = flow.tuple.key_bytes();

      // (a) per-flow counter cell.
      const std::uint64_t cell = counter_index.index_of(key);
      auto frame = crafter.craft_fetch_add(dst, src, kBase + cell * 8, 1, psn++);
      (void)rnic.process_frame(frame);

      // (b) the sketch's d cells.
      for (const auto sketch_cell : sketch_index.cell_indices(key)) {
        const std::uint64_t word = kCounterCells + sketch_cell;
        frame = crafter.craft_fetch_add(dst, src, kBase + word * 8, 1, psn++);
        (void)rnic.process_frame(frame);
      }
    }
  }
  std::printf("RNIC executed %llu FETCH_ADDs from 2 switches "
              "(switch SRAM used for counters: 0 bytes).\n",
              static_cast<unsigned long long>(rnic.counters().fetch_adds));

  // Operator reads collector memory directly.
  auto read_word = [&](std::uint64_t word) {
    std::uint64_t v;
    std::memcpy(&v, memory.data() + word * 8, 8);
    return v;
  };

  std::printf("\nTop-5 flows — truth vs counter cell vs sketch estimate:\n");
  for (int rank = 0; rank < 5; ++rank) {
    const auto& flow = sampler.flow(rank);
    const auto key = flow.tuple.key_bytes();
    const std::uint64_t counter = read_word(counter_index.index_of(key));
    std::uint64_t sketch_est = UINT64_MAX;
    for (const auto cell : sketch_index.cell_indices(key)) {
      sketch_est = std::min(sketch_est, read_word(kCounterCells + cell));
    }
    std::printf("  %-34s truth=%-6llu counter=%-6llu sketch>=%llu\n",
                flow.tuple.str().c_str(),
                static_cast<unsigned long long>(truth[rank]),
                static_cast<unsigned long long>(counter),
                static_cast<unsigned long long>(sketch_est));
  }
  std::printf("\n(Counter cells can over-count on hash collisions; the sketch\n"
              "over-estimates by design — both are collector-side only.)\n");
  return 0;
}
