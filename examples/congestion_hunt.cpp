// Congestion hunting with INT + DART on a bandwidth-shaped fabric.
//
// A victim flow shares its path with a bursty elephant flow; links have
// finite bandwidth, so a real queue builds at the shared hop. INT records
// per-hop queue depths on the wire (kIntInsQueueDepth), DART collects the
// path, and the operator cross-references the two to point at the congested
// switch — the troubleshooting workflow the paper's intro motivates.
//
// Build & run:  ./build/examples/congestion_hunt
#include <cstdio>
#include <map>
#include <vector>

#include "common/hash.hpp"
#include "telemetry/wire_fabric.hpp"
#include "telemetry/workload.hpp"

int main() {
  using namespace dart;
  using namespace dart::telemetry;

  WireFabricConfig config;
  config.fat_tree_k = 4;
  config.dart.n_slots = 1 << 14;
  config.dart.n_addresses = 2;
  config.dart.value_bytes = 20;
  config.n_collectors = 1;
  config.int_instructions = static_cast<std::uint16_t>(
      kIntInsSwitchId | kIntInsQueueDepth);
  // 1 Gbps links: a ~100B INT frame serializes in ~1 µs — bursts queue up.
  config.data_link_shape = {.bandwidth_bps = 1'000'000'000, .queue_cap = 256};
  config.seed = 5;
  WireFabric fabric(config);
  const auto& topo = fabric.topology();

  // Victim: host 0 → host 15 (inter-pod, 5 hops).
  FiveTuple victim;
  victim.src_ip = topo.host_ip(0);
  victim.dst_ip = topo.host_ip(15);
  victim.src_port = 51000;
  victim.dst_port = 443;
  victim.protocol = 6;

  // Elephant: same host pair, bursty — pick a source port whose ECMP hash
  // lands on the *same* 5-hop path as the victim, so they share every queue.
  FiveTuple elephant = victim;
  elephant.dst_port = 80;
  {
    const auto victim_path = topo.path(
        0, 15, xxhash64(victim.key_bytes(), 0xECB9));
    for (std::uint16_t port = 52000;; ++port) {
      elephant.src_port = port;
      const auto p = topo.path(0, 15, xxhash64(elephant.key_bytes(), 0xECB9));
      if (p == victim_path) break;
    }
  }

  // Second elephant from the rack-mate host 1, ECMP'd onto the same uplink
  // as the victim: two ingress ports converging on one 1 Gbps egress is what
  // actually builds a switch queue.
  FiveTuple elephant2;
  elephant2.src_ip = topo.host_ip(1);
  elephant2.dst_ip = topo.host_ip(15);
  elephant2.dst_port = 80;
  elephant2.protocol = 6;
  {
    const auto victim_path =
        topo.path(0, 15, xxhash64(victim.key_bytes(), 0xECB9));
    for (std::uint16_t port = 53000;; ++port) {
      elephant2.src_port = port;
      const auto p = topo.path(1, 15, xxhash64(elephant2.key_bytes(), 0xECB9));
      if (p[1] == victim_path[1]) break;  // same edge→agg uplink
    }
  }

  // Phase 1: calm network — victim alone.
  fabric.send_flow(victim, 0, 10);
  fabric.run();
  const auto calm_depth = fabric.stats().max_reported_queue_depth;

  // Phase 2: two elephant bursts + victim packets interleaved.
  fabric.send_flow(elephant, 0, 400, /*payload_bytes=*/1400);
  fabric.send_flow(elephant2, 1, 400, /*payload_bytes=*/1400);
  fabric.send_flow(victim, 0, 10);
  fabric.run();
  const auto busy_depth = fabric.stats().max_reported_queue_depth;

  std::printf("Max queue depth reported by INT: calm=%u, under burst=%u\n",
              calm_depth, busy_depth);

  // Operator: recover the victim's path from DART and name the shared hop.
  const auto path = fabric.query_path(victim);
  if (!path) {
    std::printf("victim path not queryable (unexpected at this load)\n");
    return 1;
  }
  std::printf("\nVictim path (from DART):\n  ");
  for (const auto sw : *path) {
    std::printf("%s ", topo.switch_name(sw).c_str());
  }
  const auto elephant_path = fabric.query_path(elephant);
  std::printf("\nElephant path (from DART):\n  ");
  if (elephant_path) {
    for (const auto sw : *elephant_path) {
      std::printf("%s ", topo.switch_name(sw).c_str());
    }
  }
  std::printf("\n\nShared switches (congestion suspects):\n");
  if (elephant_path) {
    for (const auto sw : *path) {
      for (const auto other : *elephant_path) {
        if (sw == other) {
          std::printf("  -> %s\n", topo.switch_name(sw).c_str());
        }
      }
    }
  }
  std::printf("\n(Queue depths on the wire came from the simulator's real\n"
              "egress queues — the data a production INT deployment gives an\n"
              "operator to localize exactly this kind of incident.)\n");
  return busy_depth > calm_depth ? 0 : 1;
}
