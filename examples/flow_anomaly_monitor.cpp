// Flow-anomaly monitoring (Table 1, row 5 — the FET/"flow event telemetry"
// use case [56]). Switches detect per-flow anomalies (retransmission bursts,
// RTT spikes, drop runs) with event-triggered reporting, and push each event
// into DART keyed by (5-tuple, anomaly id). The NOC then asks: "what
// happened to this flow recently?" — one query per anomaly kind, no log
// scanning, no collector CPU on the ingest path.
//
// Build & run:  ./build/examples/flow_anomaly_monitor
#include <cstdio>
#include <vector>

#include "common/random.hpp"
#include "core/cluster.hpp"
#include "switchsim/dart_switch.hpp"
#include "switchsim/topology.hpp"
#include "telemetry/backends.hpp"
#include "telemetry/workload.hpp"

int main() {
  using namespace dart;
  using namespace dart::telemetry;

  core::DartConfig config;
  config.n_slots = 1 << 16;
  config.n_addresses = 2;
  config.value_bytes = 16;  // timestamp(8) + magnitude(4) + pad
  config.master_seed = 0xA110;

  core::CollectorCluster cluster(config, 2);

  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = config;
  sc.write_mode = core::WriteMode::kAllSlots;
  switchsim::DartSwitchPipeline edge_switch(sc);
  for (const auto& row : cluster.directory()) edge_switch.load_collector(row);

  // A population of monitored flows with Zipf popularity (heavy hitters
  // anomalize more often, as in production traces).
  const switchsim::FatTree topo(8);
  FlowSampler sampler(topo, /*population=*/5'000, /*zipf=*/1.1, 42);
  Xoshiro256 rng(7);

  constexpr AnomalyKind kKinds[] = {
      AnomalyKind::kRetransmissionBurst, AnomalyKind::kRttSpike,
      AnomalyKind::kPacketDropRun, AnomalyKind::kPathChange};

  // Simulate an hour of event-triggered detections (latest event wins per
  // (flow, kind) — exactly the KV overwrite semantics DART provides).
  std::uint64_t now_ns = 0;
  int events = 0;
  for (int tick = 0; tick < 50'000; ++tick) {
    now_ns += 1 + rng.below(100'000);
    const auto& flow = sampler.sample();
    FlowAnomalyEvent event;
    event.flow = flow.tuple;
    event.kind = kKinds[rng.below(4)];
    event.timestamp_ns = now_ns;
    event.magnitude = 1 + static_cast<std::uint32_t>(rng.below(500));
    const auto record = make_anomaly_record(event, config.value_bytes);
    for (const auto& frame :
         edge_switch.on_telemetry(record.key, record.value)) {
      (void)cluster
          .collector(cluster.owner_of(record.key))
          .rnic()
          .process_frame(frame);
    }
    ++events;
  }
  std::printf("Ingested %d anomaly events for %zu flows across %u collectors "
              "(collector CPU writes: 0).\n",
              events, sampler.population(), cluster.size());

  // NOC investigation: check a heavy flow for each anomaly kind.
  const auto& suspect = sampler.flow(0);  // rank-1 flow
  std::printf("\nAnomaly record for heavy flow %s:\n",
              suspect.tuple.str().c_str());
  for (const auto kind : kKinds) {
    const auto key = anomaly_key(suspect.tuple, kind);
    const auto result = cluster.query(key);
    const char* names[] = {"", "retransmission-burst", "rtt-spike",
                           "packet-drop-run", "path-change"};
    if (result.outcome == core::QueryOutcome::kFound) {
      const auto data = decode_anomaly_value(result.value);
      std::printf("  %-21s last seen t=%.3f s, magnitude %u\n",
                  names[static_cast<int>(kind)],
                  static_cast<double>(data.timestamp_ns) / 1e9,
                  data.magnitude);
    } else {
      std::printf("  %-21s no recent event (empty return)\n",
                  names[static_cast<int>(kind)]);
    }
  }

  // Cold flows mostly have no events — empty returns are the expected
  // answer, not a failure.
  int cold_hits = 0;
  for (std::size_t r = sampler.population() - 500; r < sampler.population();
       ++r) {
    const auto key =
        anomaly_key(sampler.flow(r).tuple, AnomalyKind::kRttSpike);
    if (cluster.query(key).outcome == core::QueryOutcome::kFound) ++cold_hits;
  }
  std::printf("\nColdest 500 flows with an rtt-spike record: %d "
              "(heavy tail confirmed).\n",
              cold_hits);
  return 0;
}
