# Empty compiler generated dependencies file for dart_rdma.
# This may be replaced when dependencies are built.
