// Ablation: report loss robustness (§3.1's motivation for N-way redundancy
// without switch-side retransmission state). Runs the full INT fabric —
// switch pipelines, RoCEv2 frames, Bernoulli report loss, simulated RNICs —
// across loss rates and redundancy levels.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "telemetry/int_fabric.hpp"

namespace {

using namespace dart;
using namespace dart::telemetry;

double run(double loss, std::uint32_t n, std::uint64_t flows) {
  IntFabricConfig cfg;
  cfg.fat_tree_k = 8;
  cfg.dart.n_slots = 1 << 17;
  cfg.dart.n_addresses = n;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0x1055A;
  cfg.n_collectors = 2;
  cfg.switch_write_mode = core::WriteMode::kAllSlots;
  cfg.report_loss_rate = loss;
  cfg.seed = 23;
  IntFabric fabric(cfg);
  FlowGenerator gen(fabric.topology(), 31);

  std::vector<FlowEndpoints> flows_traced;
  flows_traced.reserve(flows);
  for (std::uint64_t i = 0; i < flows; ++i) {
    flows_traced.push_back(gen.next_flow());
    (void)fabric.trace_flow(flows_traced.back());
  }
  std::uint64_t found = 0;
  for (const auto& f : flows_traced) {
    if (fabric.query_path(f.tuple).has_value()) ++found;
  }
  return static_cast<double>(found) / static_cast<double>(flows);
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Ablation — queryability under switch→collector report loss",
      "switches keep no retransmission state; N redundant reports make a key "
      "survive unless ALL its reports are lost (§3.1)");

  const auto flows = bench::flag_u64(argc, argv, "flows", 4'000);

  Table t({"loss rate", "N=1", "N=2", "N=4", "1-p (theory N=1)",
           "1-p² (theory N=2)", "1-p⁴ (theory N=4)"});
  for (const double loss : {0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    t.row({fmt_percent(loss, 0), fmt_percent(run(loss, 1, flows), 1),
           fmt_percent(run(loss, 2, flows), 1),
           fmt_percent(run(loss, 4, flows), 1),
           fmt_percent(1.0 - loss, 1),
           fmt_percent(1.0 - loss * loss, 1),
           fmt_percent(1.0 - loss * loss * loss * loss, 1)});
  }
  t.print(std::cout);

  std::printf(
      "\nTakeaway: measured queryability tracks 1-p^N (loss dominates; slot\n"
      "collisions are negligible at this load). Redundancy bought for\n"
      "collision robustness doubles as loss robustness, with zero switch\n"
      "state — no retransmission, no acks.\n");
  return 0;
}
