// Microbenchmarks (google-benchmark) of every stage of the DART data path:
//
//   switch side:    hash/address computation, full RoCEv2 report crafting
//   collector side: RNIC frame validation + DMA (with/without iCRC),
//                   raw store writes, queries under each return policy
//   baselines:      socket-path and PMD-path per-report I/O for comparison
//
// These rates back §2's argument: the RNIC-model ingest path (parse +
// validate + memcpy) runs at tens of millions of ops/s per core, while a
// CPU collector must *additionally* pay the storage-insert cost Fig. 1b
// measures.
#include <benchmark/benchmark.h>

#include <array>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"

#include "baseline/dpdk_stack.hpp"
#include "baseline/report_gen.hpp"
#include "baseline/socket_stack.hpp"
#include "common/hash.hpp"
#include "core/collector.hpp"
#include "core/oracle.hpp"
#include "core/query.hpp"
#include "core/report_crafter.hpp"
#include "core/coding.hpp"
#include "core/store.hpp"
#include "switchsim/dart_switch.hpp"
#include "telemetry/event_detect.hpp"

namespace {

using namespace dart;
using namespace dart::core;

DartConfig config() {
  DartConfig cfg;
  cfg.n_slots = 1 << 20;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 20;
  cfg.master_seed = 0xB12C;
  return cfg;
}

CollectorEndpoint endpoint() {
  return {{2, 0, 0, 0, 0, 1}, net::Ipv4Addr::from_octets(10, 0, 100, 1)};
}

// Shared pre-materialized key pool (bench_util make_pool): big enough that
// cycling through it still touches the store cold (the pool spans every
// slot), while keeping sim_key synthesis out of every timed region.
constexpr std::size_t kKeyPoolSize = 1 << 20;
constexpr std::size_t kKeyPoolMask = kKeyPoolSize - 1;

const std::vector<std::array<std::byte, 8>>& key_pool() {
  static const auto pool = dart::bench::make_pool(
      kKeyPoolSize, [](std::size_t i) { return sim_key(i); });
  return pool;
}

// Raw CRC-32 kernel cost at datapath-relevant sizes: 44 B is the craft
// path's resumed iCRC region, 88 B the fused classifier buffer, 94 B a full
// report frame, 1500 B an MTU frame (streaming throughput).
void BM_Crc32(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> buf(len);
  for (std::size_t i = 0; i < len; ++i) {
    buf[i] = static_cast<std::byte>(i * 131u + 7u);
  }
  std::uint32_t s = 0xFFFF'FFFFu;
  for (auto _ : state) {
    s = detail::crc32_update_dispatch(s, buf.data(), len);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
  state.SetLabel(std::string(simd_backend_name()));
}
BENCHMARK(BM_Crc32)->Arg(44)->Arg(88)->Arg(94)->Arg(1500);

void BM_HashAddressing(benchmark::State& state) {
  const HashFamily family(2, 0xB12C);
  const auto& keys = key_pool();
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto& key = keys[i++ & kKeyPoolMask];
    benchmark::DoNotOptimize(family.address_of(key, 0, 1 << 20));
    benchmark::DoNotOptimize(family.address_of(key, 1, 1 << 20));
    benchmark::DoNotOptimize(family.checksum_of(key, 32));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashAddressing);

// Same addressing work through the batched N-way entry point: 32 keys per
// call, slot hashes 4 lanes at a time through the AVX2 XXH64 kernel.
void BM_HashAddressingBurst(benchmark::State& state) {
  constexpr std::size_t kBurst = 32;
  const HashFamily family(2, 0xB12C);
  const auto& keys = key_pool();
  std::vector<std::uint32_t> ns(kBurst);
  for (std::size_t b = 0; b < kBurst; ++b) {
    ns[b] = static_cast<std::uint32_t>(b & 1);
  }
  std::vector<std::uint64_t> addrs(kBurst);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::size_t base = i & (kKeyPoolMask & ~(kBurst - 1));
    family.address_of_batch(keys[base].data(), /*key_len=*/8, /*stride=*/8,
                            ns, /*n_slots=*/1 << 20, addrs.data());
    benchmark::DoNotOptimize(addrs.data());
    i += kBurst;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kBurst);
  state.SetLabel("burst=32");
}
BENCHMARK(BM_HashAddressingBurst);

void BM_StoreWrite(benchmark::State& state) {
  DartStore store(config());
  const auto& keys = key_pool();
  std::array<std::byte, 20> value{};
  std::uint64_t i = 0;
  for (auto _ : state) {
    store.write(keys[i++ & kKeyPoolMask], value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreWrite);

void BM_SwitchCraftReport(benchmark::State& state) {
  Collector collector(config(), 0, endpoint());
  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = config();
  sc.write_mode = WriteMode::kStochastic;
  switchsim::DartSwitchPipeline sw(sc);
  sw.load_collector(collector.remote_info());

  const auto& keys = key_pool();
  std::array<std::byte, 20> value{};
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.on_telemetry(keys[i++ & kKeyPoolMask], value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchCraftReport);

// RNIC ingest: the zero-CPU path's per-report cost (which in deployment is
// paid by NIC silicon, not the host CPU).
void BM_RnicIngest(benchmark::State& state) {
  const bool validate_icrc = state.range(0) != 0;
  Collector collector(config(), 0, endpoint());
  collector.rnic().set_validate_icrc(validate_icrc);

  // Pre-craft a pool of distinct report frames.
  const ReportCrafter crafter(config());
  ReporterEndpoint src;
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  std::vector<std::vector<std::byte>> frames;
  std::array<std::byte, 20> value{};
  for (std::uint64_t i = 0; i < 4096; ++i) {
    frames.push_back(crafter.craft_write(collector.remote_info(), src,
                                         sim_key(i), value,
                                         static_cast<std::uint32_t>(i % 2),
                                         static_cast<std::uint32_t>(i)));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        collector.rnic().process_frame(frames[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(validate_icrc ? "icrc=on" : "icrc=off");
}
BENCHMARK(BM_RnicIngest)->Arg(1)->Arg(0);

// Template-path crafting alone: craft_write_into through a cached
// FrameTemplate into a stack buffer — the zero-allocation deparse.
void BM_CraftWriteTemplate(benchmark::State& state) {
  Collector collector(config(), 0, endpoint());
  const ReportCrafter crafter(config());
  ReporterEndpoint src;
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  const auto tpl = crafter.make_write_template(collector.remote_info(), src);
  const auto& keys = key_pool();
  std::array<std::byte, 20> value{};
  std::array<std::byte, 128> out{};
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crafter.craft_write_into(
        tpl, keys[i & kKeyPoolMask], value, static_cast<std::uint32_t>(i % 2),
        static_cast<std::uint32_t>(i) & 0x00FF'FFFFu, out));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CraftWriteTemplate);

// Burst crafting alone: craft_write_into_n, 32 frames per call, slot
// addresses batch-hashed 4 lanes at a time.
void BM_CraftWriteBurst(benchmark::State& state) {
  constexpr std::size_t kBurst = 32;
  Collector collector(config(), 0, endpoint());
  const ReportCrafter crafter(config());
  ReporterEndpoint src;
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  const auto tpl = crafter.make_write_template(collector.remote_info(), src);
  const auto& keys = key_pool();
  std::array<std::byte, 20> value{};
  std::vector<ReportCrafter::WriteOp> ops(kBurst);
  std::vector<std::byte> out(kBurst * tpl.frame_size());
  std::uint64_t i = 0;
  for (auto _ : state) {
    for (std::size_t b = 0; b < kBurst; ++b, ++i) {
      ops[b] = {keys[i & kKeyPoolMask], value,
                static_cast<std::uint32_t>(i % 2),
                static_cast<std::uint32_t>(i) & 0x00FF'FFFFu};
    }
    benchmark::DoNotOptimize(crafter.craft_write_into_n(tpl, ops, out));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kBurst);
  state.SetLabel("burst=32");
}
BENCHMARK(BM_CraftWriteBurst);

// Burst ingest alone: process_frames over pre-crafted frame bursts — the
// staged validate→prefetch→apply pipeline with the MR/QP checks hoisted.
void BM_RnicIngestBurst(benchmark::State& state) {
  constexpr std::size_t kBurst = 32;
  Collector collector(config(), 0, endpoint());
  collector.rnic().set_validate_icrc(true);
  const ReportCrafter crafter(config());
  ReporterEndpoint src;
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  std::vector<std::vector<std::byte>> frames;
  std::array<std::byte, 20> value{};
  for (std::uint64_t i = 0; i < 4096; ++i) {
    frames.push_back(crafter.craft_write(collector.remote_info(), src,
                                         sim_key(i), value,
                                         static_cast<std::uint32_t>(i % 2),
                                         static_cast<std::uint32_t>(i)));
  }
  std::vector<std::span<const std::byte>> views(kBurst);
  std::uint64_t i = 0;
  for (auto _ : state) {
    for (std::size_t b = 0; b < kBurst; ++b) {
      views[b] = frames[(i + b) & 4095];
    }
    benchmark::DoNotOptimize(collector.rnic().process_frames(views));
    i += kBurst;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kBurst);
  state.SetLabel("burst=32 icrc=on");
}
BENCHMARK(BM_RnicIngestBurst);

// The headline number of the perf trajectory: the full simulated
// switch→collector cost per report through the optimized burst datapath —
// craft_write_into_n (batch-hashed addressing, template iCRC resume) into a
// frame block, then process_frames (burst-validated, prefetched DMA apply),
// 32 reports per round, iCRC validated. The per-frame variant of the same
// path is BM_CraftPlusIngestSingle.
void BM_CraftPlusIngest(benchmark::State& state) {
  constexpr std::size_t kBurst = 32;
  Collector collector(config(), 0, endpoint());
  const ReportCrafter crafter(config());
  ReporterEndpoint src;
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  const auto tpl = crafter.make_write_template(collector.remote_info(), src);
  const auto& keys = key_pool();
  std::array<std::byte, 20> value{};
  std::vector<ReportCrafter::WriteOp> ops(kBurst);
  std::vector<std::byte> out(kBurst * tpl.frame_size());
  std::vector<std::span<const std::byte>> views(kBurst);
  for (std::size_t b = 0; b < kBurst; ++b) {
    views[b] = std::span<const std::byte>(out).subspan(b * tpl.frame_size(),
                                                       tpl.frame_size());
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    for (std::size_t b = 0; b < kBurst; ++b, ++i) {
      ops[b] = {keys[i & kKeyPoolMask], value,
                static_cast<std::uint32_t>(i % 2),
                static_cast<std::uint32_t>(i) & 0x00FF'FFFFu};
    }
    (void)crafter.craft_write_into_n(tpl, ops, out);
    benchmark::DoNotOptimize(collector.rnic().process_frames(views));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kBurst);
  state.SetLabel("burst=32 icrc=on");
}
BENCHMARK(BM_CraftPlusIngest);

// Per-frame variant of the headline path: craft_write_into + process_frame,
// one report at a time (no burst amortization, no prefetch distance).
void BM_CraftPlusIngestSingle(benchmark::State& state) {
  Collector collector(config(), 0, endpoint());
  const ReportCrafter crafter(config());
  ReporterEndpoint src;
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  const auto tpl = crafter.make_write_template(collector.remote_info(), src);
  const auto& keys = key_pool();
  std::array<std::byte, 20> value{};
  std::array<std::byte, 128> out{};
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::size_t len = crafter.craft_write_into(
        tpl, keys[i & kKeyPoolMask], value, static_cast<std::uint32_t>(i % 2),
        static_cast<std::uint32_t>(i) & 0x00FF'FFFFu, out);
    benchmark::DoNotOptimize(collector.rnic().process_frame(
        std::span<const std::byte>(out.data(), len)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("icrc=on");
}
BENCHMARK(BM_CraftPlusIngestSingle);

void BM_Query(benchmark::State& state) {
  const auto policy = static_cast<ReturnPolicy>(state.range(0));
  DartStore store(config());
  std::array<std::byte, 20> value{};
  constexpr std::uint64_t kKeys = 1 << 18;
  for (std::uint64_t i = 0; i < kKeys; ++i) store.write(sim_key(i), value);
  const QueryEngine q(store, policy);
  const auto& keys = key_pool();
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.resolve(keys[i++ & (kKeys - 1)]));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(to_string(policy));
}
BENCHMARK(BM_Query)
    ->Arg(static_cast<int>(ReturnPolicy::kFirstMatch))
    ->Arg(static_cast<int>(ReturnPolicy::kPlurality))
    ->Arg(static_cast<int>(ReturnPolicy::kConsensusTwo));

// Baseline I/O paths for the §2 comparison.
void BM_SocketPathPerReport(benchmark::State& state) {
  baseline::SocketStack sock(2048, 1 << 16);
  baseline::ReportGenerator gen(baseline::ReportSpec{.packet_bytes = 64});
  std::vector<std::byte> wire(64);
  std::vector<std::byte> user(2048);
  gen.next(wire);
  for (auto _ : state) {
    (void)sock.kernel_receive(wire);
    benchmark::DoNotOptimize(sock.user_receive(user));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SocketPathPerReport);

void BM_DpdkPathPerReport(benchmark::State& state) {
  baseline::DpdkStack dpdk(1024);
  baseline::ReportGenerator gen(baseline::ReportSpec{.packet_bytes = 64});
  std::vector<std::byte> wire(64);
  gen.next(wire);
  std::array<baseline::Mbuf, 32> burst;
  for (auto _ : state) {
    (void)dpdk.nic_enqueue(wire);
    if (dpdk.pending() >= 32) {
      benchmark::DoNotOptimize(dpdk.rx_burst(burst));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpdkPathPerReport);

// §7 DTA multiwrite: one frame, N DMAs.
void BM_RnicMultiwriteIngest(benchmark::State& state) {
  Collector collector(config(), 0, endpoint());
  collector.rnic().set_dta_multiwrite(true);
  const ReportCrafter crafter(config());
  ReporterEndpoint src;
  std::vector<std::vector<std::byte>> frames;
  std::array<std::byte, 20> value{};
  for (std::uint64_t i = 0; i < 4096; ++i) {
    frames.push_back(crafter.craft_multiwrite(
        collector.remote_info(), src, sim_key(i), value,
        static_cast<std::uint32_t>(i)));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        collector.rnic().process_frame(frames[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RnicMultiwriteIngest);

// §4 coding-theory slot hardening: write+query with mask + per-location csum.
void BM_CodedStoreQuery(benchmark::State& state) {
  CodedStore store(config(), {});
  std::array<std::byte, 20> value{};
  constexpr std::uint64_t kKeys = 1 << 16;
  for (std::uint64_t i = 0; i < kKeys; ++i) store.write(sim_key(i), value);
  const auto& keys = key_pool();
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.query(keys[i++ & (kKeys - 1)]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodedStoreQuery);

// §2 event detector: per-packet filtering cost at the switch.
void BM_ChangeDetectorObserve(benchmark::State& state) {
  telemetry::ChangeDetector detector(
      {.table_size = 1 << 16, .threshold = 8});
  const auto& keys = key_pool();
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto& key = keys[i & 0xFFF];  // 4K-flow working set
    benchmark::DoNotOptimize(
        detector.observe(key, static_cast<std::uint32_t>(i >> 6), i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChangeDetectorObserve);

// Console reporter that additionally captures every run's throughput so the
// custom main below can emit BENCH_micro_datapath.json.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double items_per_sec = 0.0;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      Entry e;
      e.name = run.benchmark_name();
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        e.items_per_sec = static_cast<double>(it->second);
      }
      entries_.push_back(std::move(e));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  const DartConfig cfg = config();
  dart::bench::BenchJson json("micro_datapath");
  json.config("n_slots", static_cast<double>(cfg.n_slots));
  json.config("n_addresses", static_cast<double>(cfg.n_addresses));
  json.config("checksum_bits", static_cast<double>(cfg.checksum_bits));
  json.config("value_bytes", static_cast<double>(cfg.value_bytes));
  json.config("simd_backend", std::string(dart::simd_backend_name()));
  // Legend for numeric benchmark-name suffixes (google-benchmark encodes
  // Arg(v) as "<name>/<v>", which becomes "<name>_<v>" in the result keys):
  json.config("BM_RnicIngest_0", "icrc=off");
  json.config("BM_RnicIngest_1", "icrc=on");
  json.config("BM_Crc32_N", "buffer length in bytes");
  json.config("BM_Query_N", "ReturnPolicy enum value");
  json.config("BM_CraftPlusIngest", "burst=32 craft_write_into_n + process_frames, icrc=on");

  double headline_ips = 0.0;
  for (const auto& e : reporter.entries()) {
    std::string key = e.name;
    for (char& c : key) {
      if (c == '/' || c == ':') c = '_';
    }
    json.result(key + "_items_per_sec", e.items_per_sec);
    // Per-stage latency alongside every throughput number, so EXPERIMENTS.md
    // stage tables read straight out of the JSON.
    if (e.items_per_sec > 0.0) {
      json.result(key + "_ns_per_item", 1e9 / e.items_per_sec);
    }
    if (e.name == "BM_CraftPlusIngest") headline_ips = e.items_per_sec;
  }
  // Headline: full craft+ingest datapath, what the ≥2× acceptance tracks.
  json.result("reports_per_sec", headline_ips);
  json.result("ns_per_report", headline_ips > 0.0 ? 1e9 / headline_ips : 0.0);
  json.write();

  benchmark::Shutdown();
  return 0;
}
