// Shared helpers for the bench binaries: minimal flag parsing and common
// headers/footers so all figures print uniformly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace dart::bench {

// Parses "--name=value" style flags; returns fallback when absent.
inline double flag_double(int argc, char** argv, const char* name,
                          double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline std::uint64_t flag_u64(int argc, char** argv, const char* name,
                              std::uint64_t fallback) {
  const double v = flag_double(argc, argv, name,
                               static_cast<double>(fallback));
  return static_cast<std::uint64_t>(v);
}

inline void banner(const char* experiment, const char* paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

}  // namespace dart::bench
