// Shared helpers for the bench binaries: minimal flag parsing and common
// headers/footers so all figures print uniformly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace dart::bench {

// Parses "--name=value" style flags; returns fallback when absent.
inline double flag_double(int argc, char** argv, const char* name,
                          double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline std::uint64_t flag_u64(int argc, char** argv, const char* name,
                              std::uint64_t fallback) {
  const double v = flag_double(argc, argv, name,
                               static_cast<double>(fallback));
  return static_cast<std::uint64_t>(v);
}

// Pre-materializes `n` values of gen(0..n-1) before the timed region starts.
// Benchmarks index into the pool instead of synthesizing inputs (keys,
// payloads) per iteration, so items_per_sec measures the stage under test
// rather than the harness's input generation. Pools for write-path
// benchmarks should be large enough (≥ number of store slots) that cycling
// through them preserves the cold-slot behavior of a live feed.
template <typename Fn>
[[nodiscard]] auto make_pool(std::size_t n, Fn&& gen) {
  std::vector<decltype(gen(std::size_t{0}))> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pool.push_back(gen(i));
  return pool;
}

inline void banner(const char* experiment, const char* paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

// Machine-readable benchmark output: collects config and result key/value
// pairs and writes them as BENCH_<name>.json so successive PRs can diff
// perf numbers without scraping console tables. The schema is deliberately
// flat: {"name": ..., "config": {...}, "results": {...}}.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void config(const std::string& key, double value) {
    config_num_.emplace_back(key, value);
  }
  void config(const std::string& key, const std::string& value) {
    config_str_.emplace_back(key, value);
  }
  void result(const std::string& key, double value) {
    results_.emplace_back(key, value);
  }

  // Writes BENCH_<name>.json into `dir`; returns false on I/O failure.
  bool write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"config\": {", name_.c_str());
    bool first = true;
    for (const auto& [k, v] : config_str_) {
      std::fprintf(f, "%s\n    \"%s\": \"%s\"", first ? "" : ",", k.c_str(),
                   v.c_str());
      first = false;
    }
    for (const auto& [k, v] : config_num_) {
      std::fprintf(f, "%s\n    \"%s\": %.17g", first ? "" : ",", k.c_str(), v);
      first = false;
    }
    std::fprintf(f, "\n  },\n  \"results\": {");
    first = true;
    for (const auto& [k, v] : results_) {
      std::fprintf(f, "%s\n    \"%s\": %.17g", first ? "" : ",", k.c_str(), v);
      first = false;
    }
    std::fprintf(f, "\n  }\n}\n");
    const bool ok = std::fclose(f) == 0;
    std::printf("[bench-json] wrote %s\n", path.c_str());
    return ok;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_str_;
  std::vector<std::pair<std::string, double>> config_num_;
  std::vector<std::pair<std::string, double>> results_;
};

}  // namespace dart::bench
