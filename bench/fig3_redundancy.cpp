// Figure 3: average query success rate vs collector load factor, for
// redundancy N ∈ {1, 2, 4, 8}, with the optimal N marked per load interval
// (the figure's background shading).
//
// Protocol (matches §5.1): write K = α·M distinct keys once each into an
// M-slot store, query every key, count ground-truth-correct answers. Theory
// overlay: the §4 average over ages. Crossover loads between N values are
// printed exactly (by bisection on the closed form).
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/analysis.hpp"
#include "core/oracle.hpp"
#include "core/query.hpp"
#include "core/store.hpp"

namespace {

using namespace dart;
using namespace dart::core;

double simulate_success(double alpha, std::uint32_t n, std::uint64_t n_slots,
                        std::uint64_t seed) {
  DartConfig cfg;
  cfg.n_slots = n_slots;
  cfg.n_addresses = n;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 8;
  cfg.master_seed = seed;
  DartStore store(cfg);
  Oracle oracle;

  const auto keys = static_cast<std::uint64_t>(alpha * n_slots);
  std::array<std::byte, 8> value{};
  for (std::uint64_t i = 0; i < keys; ++i) {
    std::memcpy(value.data(), &i, 8);
    store.write(sim_key(i), value);
    oracle.record(i, value);
  }
  const QueryEngine q(store);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)oracle.classify(i, q.resolve(sim_key(i)));
  }
  return oracle.counts().success_rate();
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Figure 3 — query success rate vs load factor and redundancy N",
      "N>1 wins at low load; N=2 is a good general compromise; optimal N "
      "shrinks as load grows");

  const auto n_slots = bench::flag_u64(argc, argv, "slots", 1 << 18);
  const std::vector<std::uint32_t> ns{1, 2, 4, 8};
  const std::vector<double> alphas{0.0078125, 0.015625, 0.03125, 0.0625,
                                   0.125,     0.25,     0.5,     1.0,
                                   2.0,       4.0,      8.0};

  Table t({"load α", "N=1 sim", "N=1 thr", "N=2 sim", "N=2 thr", "N=4 sim",
           "N=4 thr", "N=8 sim", "N=8 thr", "best N"});
  for (const double alpha : alphas) {
    // Cap the work at high α by shrinking the table, keeping α exact.
    const std::uint64_t slots =
        alpha >= 2.0 ? std::max<std::uint64_t>(n_slots / 4, 1 << 14) : n_slots;
    std::vector<std::string> row{fmt_double(alpha, 4)};
    for (const auto n : ns) {
      const double sim = simulate_success(alpha, n, slots, 0x516 + n);
      const double thr = average_success_over_ages(
          alpha * static_cast<double>(slots), static_cast<double>(slots), n);
      row.push_back(fmt_percent(sim, 2));
      row.push_back(fmt_percent(thr, 2));
    }
    row.push_back(std::to_string(optimal_n(alpha, 8)));
    t.row(std::move(row));
  }
  t.print(std::cout);

  std::printf("\nOptimal-N crossover loads (bisection on §4 closed forms):\n");
  std::printf("  N=8 -> N=4 at α = %.4f\n", crossover_alpha(4, 8, 0.01, 1.0));
  std::printf("  N=4 -> N=2 at α = %.4f\n", crossover_alpha(2, 4, 0.05, 1.0));
  std::printf("  N=2 -> N=1 at α = %.4f\n", crossover_alpha(1, 2, 0.2, 1.0));
  std::printf(
      "\nShape check vs paper: higher N dominates at low load, N=1 wins past\n"
      "α≈0.5, and N=2 tracks within a few points of best almost everywhere —\n"
      "the paper's rationale for N=2 as the practical default (§5.1).\n");
  return 0;
}
