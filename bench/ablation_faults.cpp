// Ablation: collection and query availability under injected faults
// (docs/FAULTS.md). One fabric run per fault class, identical workload and
// seeds, measuring what fraction of emitted reports still executed at an
// RNIC, what fraction of operator queries were answered, and how many of
// those answers carried the degraded flag. The kill scenario runs twice —
// with and without the recovery control plane — which is the ablation: the
// failover machinery is what turns "answers lost" into "answers flagged".
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "telemetry/wire_fabric.hpp"
#include "telemetry/workload.hpp"

namespace {

using namespace dart;

constexpr std::uint64_t kMs = 1'000'000;
constexpr std::uint32_t kCollectors = 3;

struct Outcome {
  double delivery = 0.0;  // reports executed / reports emitted
  double answered = 0.0;  // query responses / queries sent
  double degraded = 0.0;  // degraded responses / responses
};

enum class Scenario {
  kHealthy,
  kRnicStall,
  kQpError,
  kPartition,
  kCorruption,
  kKillNoRecovery,
  kKillRecovery,
};

Outcome run(Scenario scenario, std::uint64_t flows_per_wave) {
  telemetry::WireFabricConfig cfg;
  cfg.fat_tree_k = 4;
  cfg.dart.n_slots = 1 << 14;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0x0B5;
  cfg.n_collectors = kCollectors;
  cfg.report_loss_rate = 0.0;  // isolate the injected fault
  cfg.seed = 41;

  telemetry::WireFabric fabric(cfg);
  auto& op = fabric.attach_operator();
  auto& sim = fabric.simulator();

  // Recovery only in the scenario that ablates it in.
  const bool with_recovery = scenario == Scenario::kKillRecovery;
  fault::RecoveryManager recovery(fabric, fault::RecoveryConfig{});
  fault::FaultInjector injector(fabric,
                                with_recovery ? &recovery : nullptr);

  // Fault window 8–16ms; kills revive at 22ms so every scenario converges.
  fault::FaultPlan plan;
  switch (scenario) {
    case Scenario::kHealthy:
      break;
    case Scenario::kRnicStall:
      plan.stall_rnic(8 * kMs, 1, /*frames=*/200);
      break;
    case Scenario::kQpError:
      plan.error_qp(8 * kMs, 1, /*drain_ns=*/8 * kMs);
      break;
    case Scenario::kPartition:
      for (std::uint32_t s = 0; s < fabric.n_switches(); ++s) {
        plan.partition_link(8 * kMs, fabric.monitoring_link(s, 1));
        plan.heal_link(16 * kMs, fabric.monitoring_link(s, 1));
      }
      break;
    case Scenario::kCorruption:
      for (std::uint32_t s = 0; s < fabric.n_switches(); ++s) {
        plan.corrupt_link(8 * kMs, fabric.monitoring_link(s, 1), 0.5);
        plan.clear_corruption(16 * kMs, fabric.monitoring_link(s, 1));
      }
      break;
    case Scenario::kKillNoRecovery:
    case Scenario::kKillRecovery:
      plan.kill_collector(8 * kMs, 1).revive_collector(22 * kMs, 1);
      break;
  }
  injector.arm(plan);
  if (with_recovery) recovery.start(/*horizon_ns=*/40 * kMs);

  telemetry::FlowGenerator gen(fabric.topology(), 53);
  std::vector<telemetry::FiveTuple> tuples;
  for (const std::uint64_t at :
       {std::uint64_t{0}, 5 * kMs, 10 * kMs, 14 * kMs, 20 * kMs, 30 * kMs}) {
    sim.schedule(at, [&fabric, &gen, &tuples, flows_per_wave] {
      for (std::uint64_t i = 0; i < flows_per_wave; ++i) {
        const auto fe = gen.next_flow();
        tuples.push_back(fe.tuple);
        fabric.send_flow(fe.tuple, fe.src_host, 2);
      }
    });
  }
  // Query everything sent so far: once mid-fault, once after convergence.
  for (const std::uint64_t at : {18 * kMs, 35 * kMs}) {
    sim.schedule(at, [&op, &tuples] {
      for (const auto& tup : tuples) (void)op.query(tup.key_bytes());
    });
  }
  fabric.run();

  std::uint64_t executed = 0;
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    executed += fabric.cluster().collector(c).rnic().counters().executed.load();
  }
  Outcome out;
  const auto emitted = fabric.stats().reports_emitted;
  out.delivery = emitted == 0 ? 0.0
                              : static_cast<double>(executed) /
                                    static_cast<double>(emitted);
  out.answered = op.queries_sent() == 0
                     ? 0.0
                     : static_cast<double>(op.responses_received()) /
                           static_cast<double>(op.queries_sent());
  out.degraded = op.responses_received() == 0
                     ? 0.0
                     : static_cast<double>(op.degraded_responses()) /
                           static_cast<double>(op.responses_received());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Ablation — availability under injected faults, with/without recovery",
      "zero-CPU collection keeps no switch state to retry with; the failure "
      "model (docs/FAULTS.md) loses windows, detects deaths, and degrades "
      "explicitly instead of answering wrong");

  const auto flows = bench::flag_u64(argc, argv, "flows", 25);

  const std::pair<const char*, Scenario> scenarios[] = {
      {"healthy", Scenario::kHealthy},
      {"rnic_stall", Scenario::kRnicStall},
      {"qp_error", Scenario::kQpError},
      {"partition", Scenario::kPartition},
      {"corruption", Scenario::kCorruption},
      {"kill_no_recovery", Scenario::kKillNoRecovery},
      {"kill_recovery", Scenario::kKillRecovery},
  };

  bench::BenchJson json("ablation_faults");
  json.config("fat_tree_k", 4);
  json.config("n_collectors", kCollectors);
  json.config("flows_per_wave", static_cast<double>(flows));

  Table t({"fault class", "report delivery", "queries answered",
           "answers degraded"});
  for (const auto& [name, scenario] : scenarios) {
    const auto out = run(scenario, flows);
    t.row({name, fmt_percent(out.delivery, 1), fmt_percent(out.answered, 1),
           fmt_percent(out.degraded, 1)});
    json.result(std::string(name) + "_delivery", out.delivery);
    json.result(std::string(name) + "_answered", out.answered);
    json.result(std::string(name) + "_degraded", out.degraded);
  }
  t.print(std::cout);
  if (!json.write()) return 1;

  std::printf(
      "\nTakeaway: every fault class costs a bounded report window (stall /\n"
      "error / partition / corruption all land in an explicit ledger\n"
      "column), but only an unhandled collector kill costs query\n"
      "availability. With the recovery plane, the dead key range fails over\n"
      "within the detection timeout and its answers come back flagged\n"
      "degraded — reduced certainty, never silent loss or wrong data.\n");
  return 0;
}
