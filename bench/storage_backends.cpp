// Storage backends — accuracy vs memory at matched budgets.
//
// The KV store answers "what was this flow's last value" exactly (up to
// collision loss priced by §4); the count-min SketchBackend answers "how
// often was this flow seen" approximately but in far less memory per flow.
// This bench pins both to the SAME byte budget at several KV load factors
// and measures what each buys:
//
//   - KV: exact-retrieval rate (resolve returns the flow's true final count)
//   - sketch: per-flow relative error (mean / p99), mean absolute
//     overestimate, the fraction of flows inside the classic e/cols bound,
//     and top-32 heavy-hitter recall through the read-side tracker
//   - both: local apply-path throughput over the identical Zipf stream
//
// Wire-path equivalence of the apply path used here is pinned by
// tests/core/test_store_backend.cpp and tests/check/test_prop_backend.cpp,
// so the accuracy numbers transfer to the RDMA ingest path unchanged.
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/oracle.hpp"
#include "core/store_backend.hpp"

namespace {

using namespace dart;
using namespace dart::core;

constexpr std::size_t kTopK = 32;

struct LfResult {
  double load_factor = 0;
  std::uint64_t kv_slots = 0;
  std::uint64_t kv_bytes = 0;
  std::uint64_t sketch_cols = 0;
  std::uint64_t sketch_bytes = 0;
  double kv_exact_rate = 0;
  double kv_updates_per_sec = 0;
  double sketch_mean_rel_err = 0;
  double sketch_p99_rel_err = 0;
  double sketch_mean_overestimate = 0;
  double sketch_error_bound = 0;        // e/cols * total_updates
  double sketch_within_bound_rate = 0;
  double sketch_topk_recall = 0;
  double sketch_updates_per_sec = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

LfResult run_load_factor(double lf, std::uint64_t flows,
                         std::uint64_t updates, std::uint32_t rows,
                         double zipf_s, std::uint64_t seed) {
  LfResult out;
  out.load_factor = lf;

  DartConfig dart;
  dart.n_addresses = 2;
  dart.value_bytes = 8;
  dart.checksum_bits = 32;
  dart.master_seed = seed;
  // lf = keys·N / slots — the §4 convention — so both backends shrink as
  // the operator loads the same flow population into less memory.
  dart.n_slots = std::max<std::uint64_t>(
      16, static_cast<std::uint64_t>(
              std::ceil(static_cast<double>(flows) * dart.n_addresses / lf)));
  out.kv_slots = dart.n_slots;

  StoreBackendConfig kv_choice;  // default kind == kKv
  auto kv = make_backend(dart, kv_choice);
  out.kv_bytes = kv->memory_bytes();

  // Sketch sized to the SAME byte budget: rows fixed, cols = budget/(rows·8).
  StoreBackendConfig sk_choice;
  sk_choice.kind = StoreBackendKind::kSketch;
  sk_choice.sketch.rows = rows;
  sk_choice.sketch.cols = std::max<std::uint64_t>(
      4, out.kv_bytes / (static_cast<std::uint64_t>(rows) * 8));
  sk_choice.sketch.seed = seed ^ 0x5EED'0000;
  sk_choice.sketch.topk_capacity = 2 * kTopK;
  auto sketch = make_backend(dart, sk_choice);
  auto& sk = static_cast<SketchBackend&>(*sketch);
  out.sketch_cols = sk_choice.sketch.cols;
  out.sketch_bytes = sketch->memory_bytes();

  // One Zipf update stream drives both backends identically.
  Xoshiro256 rng(seed);
  const ZipfSampler zipf(flows, zipf_s);
  std::vector<std::uint32_t> stream(updates);
  std::vector<std::uint64_t> truth(flows, 0);
  for (auto& f : stream) {
    f = static_cast<std::uint32_t>(zipf.sample(rng));
    ++truth[f];
  }

  // Keys and running-count values pre-materialized (bench_util pool rule).
  const auto keys = bench::make_pool(flows, [](std::size_t i) {
    return sim_key(static_cast<std::uint64_t>(i));
  });

  // KV ingest: every update writes the flow's running count, so the final
  // bytes are exactly what a live last-write-wins feed leaves behind.
  {
    std::vector<std::uint64_t> running(flows, 0);
    std::array<std::byte, 8> value{};
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto f : stream) {
      const std::uint64_t c = ++running[f];
      std::memcpy(value.data(), &c, 8);
      kv->apply_report(keys[f], value);
    }
    out.kv_updates_per_sec = static_cast<double>(updates) / seconds_since(t0);
  }

  // Sketch ingest: one unit increment per update (the FETCH_ADD fan-out's
  // local twin).
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto f : stream) sketch->apply_report(keys[f], {});
    out.sketch_updates_per_sec =
        static_cast<double>(updates) / seconds_since(t0);
  }

  // --- KV accuracy: exact final-count retrieval ---------------------------
  std::uint64_t kv_exact = 0;
  for (std::uint64_t f = 0; f < flows; ++f) {
    if (truth[f] == 0) continue;
    const auto r = kv->resolve(keys[f], ReturnPolicy::kPlurality);
    std::uint64_t got = 0;
    if (r.outcome == QueryOutcome::kFound && r.value.size() == 8) {
      std::memcpy(&got, r.value.data(), 8);
    }
    if (got == truth[f]) ++kv_exact;
  }
  std::uint64_t active_flows = 0;
  for (const auto c : truth) active_flows += (c != 0);
  out.kv_exact_rate =
      static_cast<double>(kv_exact) / static_cast<double>(active_flows);

  // --- sketch accuracy ----------------------------------------------------
  std::vector<double> rel_errs;
  rel_errs.reserve(active_flows);
  double overestimate_sum = 0;
  std::uint64_t within_bound = 0;
  out.sketch_error_bound = std::exp(1.0) /
                           static_cast<double>(sk_choice.sketch.cols) *
                           static_cast<double>(updates);
  for (std::uint64_t f = 0; f < flows; ++f) {
    if (truth[f] == 0) continue;
    const std::uint64_t est = sk.estimate(keys[f]);
    sk.offer(keys[f]);  // read-side tracker feed, as the query path does
    const double over = static_cast<double>(est - truth[f]);  // est >= truth
    overestimate_sum += over;
    rel_errs.push_back(over / static_cast<double>(truth[f]));
    if (over <= out.sketch_error_bound) ++within_bound;
  }
  std::sort(rel_errs.begin(), rel_errs.end());
  out.sketch_mean_rel_err =
      std::accumulate(rel_errs.begin(), rel_errs.end(), 0.0) /
      static_cast<double>(rel_errs.size());
  out.sketch_p99_rel_err =
      rel_errs[static_cast<std::size_t>(0.99 * (rel_errs.size() - 1))];
  out.sketch_mean_overestimate =
      overestimate_sum / static_cast<double>(active_flows);
  out.sketch_within_bound_rate =
      static_cast<double>(within_bound) / static_cast<double>(active_flows);

  // --- heavy-hitter recall ------------------------------------------------
  std::vector<std::uint64_t> order(flows);
  for (std::uint64_t f = 0; f < flows; ++f) order[f] = f;
  std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
    return truth[a] > truth[b];
  });
  const std::size_t k = std::min<std::size_t>(kTopK, active_flows);
  // Tie-robust truth set: everything with count >= the k-th count qualifies.
  const std::uint64_t kth = truth[order[k - 1]];
  std::unordered_set<std::uint64_t> true_top;
  for (std::uint64_t f = 0; f < flows; ++f) {
    if (truth[f] >= kth && truth[f] > 0) true_top.insert(f);
  }
  std::size_t hits = 0;
  for (const auto& hh : sk.top_k(k)) {
    for (std::uint64_t f = 0; f < flows; ++f) {
      const auto key = sim_key(f);
      if (hh.key.size() == key.size() &&
          std::memcmp(hh.key.data(), key.data(), key.size()) == 0) {
        if (true_top.count(f) != 0) ++hits;
        break;
      }
    }
  }
  out.sketch_topk_recall = static_cast<double>(hits) / static_cast<double>(k);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Storage backends — accuracy vs memory at matched byte budgets",
      "sketch-backed compact storage trades exactness for graceful accuracy "
      "decay where the KV store's exact rate collapses with load");

  const auto flows = bench::flag_u64(argc, argv, "flows", 3000);
  const auto updates = bench::flag_u64(argc, argv, "updates", 300000);
  const auto rows = static_cast<std::uint32_t>(
      bench::flag_u64(argc, argv, "rows", 4));
  const double zipf_s = bench::flag_double(argc, argv, "zipf", 1.05);
  const auto seed = bench::flag_u64(argc, argv, "seed", 0xBE9C'0008);
  const std::vector<double> lfs{0.5, 1.5, 3.0};

  bench::BenchJson json("storage_backends");
  json.config("flows", static_cast<double>(flows));
  json.config("updates", static_cast<double>(updates));
  json.config("rows", static_cast<double>(rows));
  json.config("zipf_s", zipf_s);
  json.config("topk", static_cast<double>(kTopK));

  Table t({"load α", "bytes", "KV exact", "KV upd/s", "sk mean err",
           "sk p99 err", "sk ≤bound", "sk top-32 recall", "sk upd/s"});
  for (const double lf : lfs) {
    const auto r = run_load_factor(lf, flows, updates, rows, zipf_s, seed);
    t.row({fmt_double(lf, 1), format_count(static_cast<double>(r.kv_bytes)),
           fmt_percent(r.kv_exact_rate, 2),
           format_count(r.kv_updates_per_sec),
           fmt_double(r.sketch_mean_rel_err, 4),
           fmt_double(r.sketch_p99_rel_err, 4),
           fmt_percent(r.sketch_within_bound_rate, 2),
           fmt_percent(r.sketch_topk_recall, 2),
           format_count(r.sketch_updates_per_sec)});

    const std::string p = "lf" + fmt_double(lf, 1) + "_";
    json.result(p + "kv_slots", static_cast<double>(r.kv_slots));
    json.result(p + "kv_bytes", static_cast<double>(r.kv_bytes));
    json.result(p + "sketch_cols", static_cast<double>(r.sketch_cols));
    json.result(p + "sketch_bytes", static_cast<double>(r.sketch_bytes));
    json.result(p + "kv_exact_rate", r.kv_exact_rate);
    json.result(p + "kv_updates_per_sec", r.kv_updates_per_sec);
    json.result(p + "sketch_mean_rel_err", r.sketch_mean_rel_err);
    json.result(p + "sketch_p99_rel_err", r.sketch_p99_rel_err);
    json.result(p + "sketch_mean_overestimate", r.sketch_mean_overestimate);
    json.result(p + "sketch_error_bound", r.sketch_error_bound);
    json.result(p + "sketch_within_bound_rate", r.sketch_within_bound_rate);
    json.result(p + "sketch_topk_recall", r.sketch_topk_recall);
    json.result(p + "sketch_updates_per_sec", r.sketch_updates_per_sec);
  }
  t.print(std::cout);
  std::printf(
      "\nEqual byte budgets per row; the sketch converts the KV store's\n"
      "collision-driven exactness cliff into bounded overestimates plus\n"
      "heavy-hitter recall through the read-side tracker.\n");

  if (!json.write()) std::fprintf(stderr, "warning: BENCH json write failed\n");
  return 0;
}
