// Scale-up: single-collector ingest throughput vs pipeline thread count.
//
// The paper's collector does ingest in NIC hardware; simulating that NIC in
// software turns every DMA into CPU work, so the simulator's report rate is
// bounded by how well that work parallelizes. This bench drives the sharded
// ingest pipeline (T feeder threads → T shard workers over SPSC rings into
// ONE collector's memory) and reports Mreports/s versus T. The shard workers
// share one RNIC and one slot array — the scaling comes from slot-range
// sharding keeping every memory byte single-writer, not from partitioning
// the collector.
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/ingest_pipeline.hpp"

namespace {

using namespace dart;
using namespace dart::core;

IngestPipelineStats run(std::uint32_t threads, std::uint64_t total_reports,
                        bool validate_icrc) {
  IngestPipelineConfig cfg;
  cfg.dart.n_slots = 1 << 18;
  cfg.dart.n_addresses = 2;
  cfg.dart.value_bytes = 20;
  cfg.dart.master_seed = 0x5CA1E;
  cfg.n_feeders = threads;
  cfg.n_shards = threads;
  cfg.ring_capacity = 4096;
  cfg.reports_per_feeder = total_reports / threads;
  cfg.seed = 42;
  cfg.validate_icrc = validate_icrc;
  IngestPipeline pipeline(cfg);
  return pipeline.run();
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Scale-up — one collector's ingest rate vs pipeline threads",
      "zero-CPU collection means the NIC does this work; when the NIC is "
      "simulated, slot-range sharding lets the simulation use every core");

  const auto reports = bench::flag_u64(argc, argv, "reports", 400'000);
  const auto icrc = bench::flag_u64(argc, argv, "icrc", 1) != 0;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads available: %u, iCRC validation: %s\n", hw,
              icrc ? "on" : "off");

  std::vector<std::uint32_t> sweep{1, 2, 4};
  for (std::uint32_t t = 8; t <= hw; t *= 2) sweep.push_back(t);

  bench::BenchJson json("scaling_ingest_threads");
  json.config("reports", static_cast<double>(reports));
  json.config("icrc", icrc ? 1.0 : 0.0);
  json.config("hardware_threads", static_cast<double>(hw));

  Table table({"threads (feeders=shards)", "Mreports/s", "speedup vs 1",
               "ring backpressure spins"});
  double base = 0;
  double best = 0;
  for (const auto t : sweep) {
    const auto stats = run(t, reports, icrc);
    const double rate = stats.mreports_per_sec();
    if (t == 1) base = rate;
    if (rate > best) best = rate;
    table.row({std::to_string(t), fmt_double(rate, 3),
               fmt_double(base > 0 ? rate / base : 0.0, 2) + "x",
               std::to_string(stats.ring_full_spins)});
    const std::string prefix = "t" + std::to_string(t);
    json.result(prefix + "_mreports_per_sec", rate);
    json.result(prefix + "_ring_full_spins",
                static_cast<double>(stats.ring_full_spins));
  }
  table.print(std::cout);

  json.result("reports_per_sec", best * 1e6);
  json.result("ns_per_report", best > 0 ? 1e3 / best : 0.0);
  json.write();

  if (hw < 4) {
    std::printf(
        "\nNOTE: this host exposes %u hardware thread(s), so the sweep cannot\n"
        "show parallel speedup here (all pipeline threads time-share the same\n"
        "core, and the >=2x-at-4-threads property needs >=4 cores). The\n"
        "pipeline's scaling structure is still exercised end to end: per-\n"
        "thread RNG streams, SPSC rings, and single-writer slot shards mean\n"
        "the only shared mutable state is relaxed statistics counters, so on\n"
        "a multicore host per-report work (frame craft + iCRC + validation\n"
        "pipeline) scales with the core count.\n",
        hw);
  } else {
    std::printf(
        "\nTakeaway: crafting and validating reports dominates (iCRC over\n"
        "~100B per frame), and that work is embarrassingly parallel across\n"
        "feeders and shard workers until the host runs out of cores (%u).\n",
        hw);
  }
  return 0;
}
