// Table 1: measurement techniques mapped onto DART's key-value collection
// structure — exercised END TO END: each backend's records are crafted by a
// DART switch pipeline as real RoCEv2 frames, ingested by the simulated RNIC
// into collector memory, and queried back. The table reports key/value
// geometry, ingest rate through the full frame path, and query success.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cluster.hpp"
#include "switchsim/dart_switch.hpp"
#include "telemetry/backends.hpp"
#include "telemetry/int_fabric.hpp"
#include "telemetry/workload.hpp"

namespace {

using namespace dart;
using namespace dart::core;
using namespace dart::telemetry;

struct BackendRow {
  const char* backend;
  const char* key_desc;
  const char* data_desc;
  std::size_t key_bytes;
  std::uint64_t delivered;
  std::uint64_t queried_ok;
  std::uint64_t queries;
  double seconds;
};

constexpr std::uint32_t kValueBytes = 20;

DartConfig config() {
  DartConfig cfg;
  cfg.n_slots = 1 << 16;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = kValueBytes;
  cfg.master_seed = 0x7AB1E;
  return cfg;
}

// Pushes `records` through switch → RNIC and queries them back.
template <typename MakeRecord>
BackendRow run_backend(const char* name, const char* key_desc,
                       const char* data_desc, std::uint64_t count,
                       MakeRecord&& make_record) {
  CollectorCluster cluster(config(), 2);
  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = config();
  sc.write_mode = WriteMode::kAllSlots;
  sc.rng_seed = 5;
  switchsim::DartSwitchPipeline sw(sc);
  for (const auto& info : cluster.directory()) sw.load_collector(info);

  std::vector<TelemetryRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    records.push_back(make_record(i));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t delivered = 0;
  for (const auto& rec : records) {
    for (const auto& frame : sw.on_telemetry(rec.key, rec.value)) {
      const auto parsed = net::parse_udp_frame(frame);
      for (const auto& info : cluster.directory()) {
        if (info.ip == parsed->ip.dst) {
          if (cluster.collector(info.collector_id)
                  .rnic()
                  .process_frame(frame)
                  .has_value()) {
            ++delivered;
          }
        }
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  std::uint64_t ok = 0;
  for (const auto& rec : records) {
    const auto r = cluster.query(rec.key);
    if (r.outcome == QueryOutcome::kFound && r.value == rec.value) ++ok;
  }

  BackendRow row{name,      key_desc,
                 data_desc, records.empty() ? 0 : records[0].key.size(),
                 delivered, ok,
                 count,     std::chrono::duration<double>(t1 - t0).count()};
  return row;
}

FiveTuple flow_i(std::uint64_t i) {
  FiveTuple t;
  t.src_ip = net::Ipv4Addr::from_octets(10, (i >> 8) & 0xFF, i & 0xFF, 1);
  t.dst_ip = net::Ipv4Addr::from_octets(10, 200, (i >> 4) & 0xFF, 2);
  t.src_port = static_cast<std::uint16_t>(49152 + i % 16000);
  t.dst_port = 443;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Table 1 — measurement techniques on the DART key-value structure",
      "DART is oblivious to the monitoring technology: in-band INT, "
      "postcards, query mirroring, trace analysis, anomalies, failures");

  const auto count = bench::flag_u64(argc, argv, "records", 10'000);

  std::vector<BackendRow> rows;
  rows.push_back(run_backend(
      "In-band INT", "flow 5-tuple", "packet-carried hop stack", count,
      [&](std::uint64_t i) {
        IntStack stack;
        for (std::uint32_t h = 0; h < 5; ++h) {
          stack.push_hop({.switch_id = static_cast<std::uint32_t>(
                              1 + (i * 7 + h) % 320)});
        }
        return make_inband_record(flow_i(i), stack, kValueBytes);
      }));
  rows.push_back(run_backend(
      "Postcards", "switchID + 5-tuple", "local measurement", count,
      [&](std::uint64_t i) {
        return make_postcard_record(
            static_cast<std::uint32_t>(1 + i % 320), flow_i(i),
            {.switch_id = static_cast<std::uint32_t>(1 + i % 320),
             .queue_depth = static_cast<std::uint32_t>(i % 128),
             .hop_latency_ns = 1000},
            kValueBytes);
      }));
  rows.push_back(run_backend(
      "Query-based mirroring", "queryID", "query answer", count,
      [&](std::uint64_t i) {
        std::vector<std::byte> answer(8, static_cast<std::byte>(i & 0xFF));
        return make_query_mirror_record(static_cast<std::uint32_t>(i), answer,
                                        kValueBytes);
      }));
  rows.push_back(run_backend(
      "Trace analysis", "analysisID + objectID", "analysis output", count,
      [&](std::uint64_t i) {
        std::vector<std::byte> output(12, static_cast<std::byte>(i & 0xFF));
        return make_trace_analysis_record(static_cast<std::uint32_t>(i % 16),
                                          i, output, kValueBytes);
      }));
  rows.push_back(run_backend(
      "Flow anomalies", "5-tuple + anomalyID", "time + event data", count,
      [&](std::uint64_t i) {
        FlowAnomalyEvent ev;
        ev.flow = flow_i(i);
        ev.kind = static_cast<AnomalyKind>(1 + i % 4);
        ev.timestamp_ns = 1'000'000 + i;
        ev.magnitude = static_cast<std::uint32_t>(i % 1000);
        return make_anomaly_record(ev, kValueBytes);
      }));
  rows.push_back(run_backend(
      "Network failures", "failureID + location", "time + debug info", count,
      [&](std::uint64_t i) {
        NetworkFailureEvent ev;
        ev.failure_id = static_cast<std::uint32_t>(i);
        ev.location = static_cast<std::uint32_t>(i % 640);
        ev.timestamp_ns = 2'000'000 + i;
        ev.debug_code = 0xD0D0;
        return make_failure_record(ev, kValueBytes);
      }));

  Table t({"backend", "key", "data", "key bytes", "reports ingested",
           "ingest rate", "query success"});
  for (const auto& r : rows) {
    t.row({r.backend, r.key_desc, r.data_desc, std::to_string(r.key_bytes),
           format_count(static_cast<double>(r.delivered)),
           format_count(static_cast<double>(r.delivered) / r.seconds) + "/s",
           fmt_percent(static_cast<double>(r.queried_ok) /
                           static_cast<double>(r.queries),
                       2)});
  }
  t.print(std::cout);

  std::printf(
      "\nShape check vs paper: every Table-1 technique maps onto the same\n"
      "key-value collection path with no backend-specific collector logic;\n"
      "query success is limited only by the §4 load factor, not the backend.\n");
  return 0;
}
