// Ablation: §3.1's placement trade-off — all copies on one collector (the
// paper's design) vs copies spread across collectors.
//
// "Distributing the N copies of per-key telemetry data across N physical
//  collectors could improve the system resiliency, at the cost of
//  potentially reduced querying speed."
//
// Measures queryability with 0 or 1 failed collector (of C), and the
// per-query collector fan-out (the "querying speed" cost), for both modes.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/oracle.hpp"
#include "core/spread.hpp"

namespace {

using namespace dart;
using namespace dart::core;

struct SpreadResult {
  double success_healthy = 0;
  double success_one_failed = 0;
  double reads_per_query = 0;
};

SpreadResult run(PlacementMode mode, std::uint32_t collectors,
                 std::uint64_t keys) {
  DartConfig cfg;
  cfg.n_slots = 1 << 14;
  cfg.n_addresses = 2;
  cfg.value_bytes = 8;
  cfg.master_seed = 0x5B2;

  SpreadCluster cluster(cfg, collectors, mode);
  std::vector<std::byte> value(8);
  for (std::uint64_t i = 0; i < keys; ++i) {
    std::memcpy(value.data(), &i, 8);
    cluster.write(sim_key(i), value);
  }

  auto measure = [&]() {
    Oracle oracle;
    for (std::uint64_t i = 0; i < keys; ++i) {
      std::memcpy(value.data(), &i, 8);
      oracle.record(i, value);
      (void)oracle.classify(i, cluster.query(sim_key(i)));
    }
    return oracle.counts().success_rate();
  };

  SpreadResult r;
  r.success_healthy = measure();
  // Fan-out cost measured on the healthy cluster only.
  r.reads_per_query = static_cast<double>(cluster.query_stats().collector_reads) /
                      static_cast<double>(cluster.query_stats().queries);
  cluster.fail_collector(0);
  r.success_one_failed = measure();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Ablation — §3.1 placement: single-collector vs spread copies",
      "spreading copies buys resiliency to collector failure at the cost of "
      "N-way query fan-out; DART's default keeps queries local");

  const auto keys = bench::flag_u64(argc, argv, "keys", 8'000);

  Table t({"collectors", "placement", "healthy success", "1 failed success",
           "collector reads/query"});
  for (const std::uint32_t c : {2u, 4u, 8u}) {
    for (const auto mode :
         {PlacementMode::kSingleCollector, PlacementMode::kSpreadCopies}) {
      const auto r = run(mode, c, keys);
      t.row({std::to_string(c),
             mode == PlacementMode::kSingleCollector ? "single (paper)"
                                                     : "spread",
             fmt_percent(r.success_healthy, 2),
             fmt_percent(r.success_one_failed, 2),
             fmt_double(r.reads_per_query, 2)});
    }
  }
  t.print(std::cout);

  std::printf(
      "\nTakeaway: with one of C collectors down, the single-collector\n"
      "design loses ~1/C of keys outright; spread placement keeps nearly\n"
      "everything queryable via the surviving copy — but every query now\n"
      "contacts N collectors instead of one, which is precisely the\n"
      "trade-off §3.1 calls out (and why the paper chooses locality).\n");
  return 0;
}
