// Figure 4: telemetry data aging — INT 5-hop path-tracing queryability vs
// report age at various storage sizes.
//
// Paper setting: 100M flows, 160-bit values + 32-bit checksums (24 B slots),
// redundancy N=2, storage 3 GB…30 GB (i.e. 30…300 bytes per flow). We run
// the identical experiment at a scaled flow count (default 2M — the math
// depends only on bytes-per-flow, i.e. the load factor α = 24·flows/storage)
// and report queryability per age decile, for the oldest reports, and on
// average, against the §4 theory. `--flows=100000000` reproduces full scale
// given ~128 GB of RAM.
//
// Values are real INT path encodings: each key's value is the 5-hop fat-tree
// path of a generated flow, and a "correct" query must decode back the exact
// switch sequence.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/analysis.hpp"
#include "core/query.hpp"
#include "core/store.hpp"
#include "switchsim/topology.hpp"
#include "telemetry/int_path.hpp"
#include "telemetry/workload.hpp"

namespace {

using namespace dart;
using namespace dart::core;
using namespace dart::telemetry;

struct AgingResult {
  std::vector<double> decile_success;  // index 0 = oldest 10%
  double oldest_2pct = 0;
  double average = 0;
};

// The flow's INT value: its 5-hop (or shorter) path, encoded as the sink
// switch would encode it.
std::vector<std::byte> path_value(const switchsim::FatTree& topo,
                                  const FlowEndpoints& flow,
                                  std::uint32_t value_bytes) {
  const auto key = flow.tuple.key_bytes();
  const auto path =
      topo.path(flow.src_host, flow.dst_host, xxhash64(key, 0xECB9));
  IntStack stack;
  for (const auto sw : path) stack.push_hop({.switch_id = sw + 1});
  auto v = stack.encode_value(value_bytes);
  return v ? *v : std::vector<std::byte>(value_bytes, std::byte{0});
}

AgingResult run(std::uint64_t flows, double bytes_per_flow,
                std::uint32_t n_addresses) {
  DartConfig cfg;
  cfg.value_bytes = 20;  // 160-bit INT value
  cfg.checksum_bits = 32;
  cfg.n_addresses = n_addresses;
  cfg.n_slots = static_cast<std::uint64_t>(
      static_cast<double>(flows) * bytes_per_flow / cfg.slot_bytes());
  cfg.master_seed = 0xF16'4;

  DartStore store(cfg);
  const switchsim::FatTree topo(16);
  const FlowGenerator gen(topo, 0);

  // Write every flow's path once, in age order (flow i is the i-th oldest).
  for (std::uint64_t i = 0; i < flows; ++i) {
    const auto flow = gen.flow_at(i);
    const auto key = flow.tuple.key_bytes();
    store.write(key, path_value(topo, flow, cfg.value_bytes));
  }

  // Query a sample per decile (sampling keeps full-scale runs tractable).
  const QueryEngine q(store);
  const std::uint64_t sample_per_decile = std::min<std::uint64_t>(
      flows / 10, 200'000);
  AgingResult result;
  TrialCounter overall;
  for (int decile = 0; decile < 10; ++decile) {
    TrialCounter counter;
    const std::uint64_t base = flows / 10 * decile;
    const std::uint64_t step = std::max<std::uint64_t>(
        1, (flows / 10) / sample_per_decile);
    for (std::uint64_t i = base; i < base + flows / 10; i += step) {
      const auto flow = gen.flow_at(i);
      const auto key = flow.tuple.key_bytes();
      const auto want = path_value(topo, flow, cfg.value_bytes);
      const auto r = q.resolve(key);
      const bool ok =
          r.outcome == QueryOutcome::kFound && r.value == want;
      counter.record(ok);
      overall.record(ok);
    }
    result.decile_success.push_back(counter.rate());
  }
  // Oldest 2%.
  {
    TrialCounter counter;
    const std::uint64_t step =
        std::max<std::uint64_t>(1, (flows / 50) / sample_per_decile);
    for (std::uint64_t i = 0; i < flows / 50; i += step) {
      const auto flow = gen.flow_at(i);
      const auto r = q.resolve(flow.tuple.key_bytes());
      counter.record(r.outcome == QueryOutcome::kFound &&
                     r.value == path_value(topo, flow, 20));
    }
    result.oldest_2pct = counter.rate();
  }
  result.average = overall.rate();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Figure 4 — data aging: INT path queryability vs report age & storage",
      "100M flows, 24B slots, N=2: 30B/flow → 71.4% avg / 39.0% oldest "
      "(theory 38.7%); 300B/flow → 99.3% avg; N=4 → 99.9%");

  const auto flows = bench::flag_u64(argc, argv, "flows", 1'000'000);
  std::printf("Scaled run: %s flows (paper: 100M; load factors identical — "
              "pass --flows=100000000 for full scale).\n",
              format_count(static_cast<double>(flows)).c_str());

  const std::vector<double> bytes_per_flow{30, 60, 120, 300};

  Table t({"storage (100M-flow equiv)", "B/flow", "N", "oldest 2%",
           "oldest 2% theory", "average", "avg theory"});
  for (const double bpf : bytes_per_flow) {
    for (const std::uint32_t n : {2u, 4u}) {
      const auto r = run(flows, bpf, n);
      const double slots = static_cast<double>(flows) * bpf / 24.0;
      t.row({format_bytes(bpf * 100e6), fmt_double(bpf, 0),
             std::to_string(n), fmt_percent(r.oldest_2pct, 1),
             fmt_percent(oldest_success(static_cast<double>(flows), slots, n), 1),
             fmt_percent(r.average, 1),
             fmt_percent(average_success_over_ages(static_cast<double>(flows),
                                                   slots, n),
                         1)});
    }
  }
  t.print(std::cout);

  // Age-decile series for the paper's two highlighted sizes at N=2.
  std::printf("\nQueryability by report age (decile 1 = oldest), N=2:\n");
  Table ages({"B/flow", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9",
              "d10"});
  for (const double bpf : {30.0, 300.0}) {
    const auto r = run(flows, bpf, 2);
    std::vector<std::string> row{fmt_double(bpf, 0)};
    for (const double d : r.decile_success) row.push_back(fmt_percent(d, 1));
    ages.row(std::move(row));
  }
  ages.print(std::cout);

  std::printf(
      "\nShape check vs paper: 30B/flow shows steep aging toward ~39%% for\n"
      "the oldest reports and ~71%% on average; 300B/flow holds ~99%%; N=4 at\n"
      "300B/flow reaches ~99.9%% — and tracked flows scale linearly with\n"
      "storage (each row's α, and thus its success curve, is storage/flows).\n");
  return 0;
}
