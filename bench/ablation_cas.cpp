// Ablation: §7's Compare&Swap insertion — "for N = 2 ... an RDMA write with
// one hash and Compare & Swap with another (writing to a second slot only if
// it is empty), which simulations show can potentially improve queryability."
// This bench runs those simulations: plain 2-slot writes vs write+CAS across
// load factors, plus the CAS success rate (how often the second slot was
// still empty).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/atomics_store.hpp"
#include "core/oracle.hpp"
#include "core/query.hpp"
#include "core/store.hpp"

namespace {

using namespace dart;
using namespace dart::core;

struct CasRun {
  double plain_success = 0;
  double cas_success = 0;
  double cas_hit_rate = 0;  // fraction of CAS attempts that landed
};

CasRun run(std::uint64_t n_slots, double alpha) {
  DartConfig cfg;
  cfg.n_slots = n_slots;
  cfg.n_addresses = 2;
  cfg.checksum_bits = 32;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xCA5;

  DartStore plain(cfg);
  DartStore with_cas(cfg);
  CasInsertStore cas(with_cas);
  Oracle plain_oracle, cas_oracle;

  const auto keys = static_cast<std::uint64_t>(alpha * n_slots);
  std::array<std::byte, 8> value{};
  for (std::uint64_t i = 0; i < keys; ++i) {
    std::memcpy(value.data(), &i, 8);
    plain.write(sim_key(i), value);
    cas.write(sim_key(i), value);
    plain_oracle.record(i, value);
    cas_oracle.record(i, value);
  }
  const QueryEngine pq(plain);
  const QueryEngine cq(with_cas);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)plain_oracle.classify(i, pq.resolve(sim_key(i)));
    (void)cas_oracle.classify(i, cq.resolve(sim_key(i)));
  }
  CasRun r;
  r.plain_success = plain_oracle.counts().success_rate();
  r.cas_success = cas_oracle.counts().success_rate();
  r.cas_hit_rate = cas.cas_attempts()
                       ? static_cast<double>(cas.cas_successes()) /
                             static_cast<double>(cas.cas_attempts())
                       : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Ablation — §7 Compare&Swap second-slot insertion vs plain writes",
      "write+CAS protects early keys' second copies from churn, improving "
      "queryability on an initially empty table");

  const auto n_slots = bench::flag_u64(argc, argv, "slots", 1 << 17);

  Table t({"load α", "plain N=2 success", "write+CAS success", "Δ",
           "CAS landed"});
  for (const double alpha :
       {0.125, 0.25, 0.5, 0.745, 1.0, 1.5, 2.0, 4.0}) {
    const auto r = run(n_slots, alpha);
    t.row({fmt_double(alpha, 3), fmt_percent(r.plain_success, 2),
           fmt_percent(r.cas_success, 2),
           fmt_double((r.cas_success - r.plain_success) * 100, 2) + " pp",
           fmt_percent(r.cas_hit_rate, 1)});
  }
  t.print(std::cout);

  std::printf(
      "\nShape check vs paper (§7): CAS insertion matches plain writes at\n"
      "trivial load and increasingly wins as load grows — the second slot,\n"
      "once claimed, stops being overwritten, halving effective churn.\n"
      "Caveat: the gain applies to an initially empty table / fresh epoch.\n");
  return 0;
}
