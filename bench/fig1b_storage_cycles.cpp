// Figure 1(b): CPU-cycle breakdown of telemetry collection — packet I/O vs
// insertion into queryable storage — for the two stacks the paper measures:
//
//   sockets + Kafka      (socket-based packet I/O feeding a commit log)
//   DPDK    + Confluo    (PMD burst I/O feeding an atomic multilog)
//
// We run our baseline implementations on a scaled report count (default 2M)
// and extrapolate to the paper's 100M reports. Absolute cycles differ from
// the authors' hardware/software; the claims we reproduce are the *shape*:
//   - socket I/O  ≫  DPDK I/O            (paper: DPDK = 2.7% of sockets)
//   - storage     ≫  packet I/O          (paper: Kafka = 11.5x socket I/O,
//                                         Confluo = 114x DPDK I/O)
#include <array>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "baseline/confluo_like.hpp"
#include "baseline/dpdk_stack.hpp"
#include "baseline/kafka_like.hpp"
#include "baseline/report_gen.hpp"
#include "baseline/socket_stack.hpp"
#include "bench_util.hpp"
#include "common/cycles.hpp"
#include "common/table.hpp"

namespace {

struct StackCycles {
  double io_per_report = 0;
  double storage_per_report = 0;
};

using namespace dart;
using namespace dart::baseline;

StackCycles run_socket_kafka(std::size_t packet_bytes, std::uint64_t reports) {
  SocketStack sock(2048, 1 << 16);
  KafkaLike kafka(KafkaLike::Config{});
  ReportGenerator gen(ReportSpec{.packet_bytes = packet_bytes});

  std::vector<std::byte> wire(packet_bytes);
  std::vector<std::byte> user(2048);
  std::uint64_t io_cycles = 0;
  std::uint64_t storage_cycles = 0;

  for (std::uint64_t i = 0; i < reports; ++i) {
    gen.next(wire);
    std::size_t n;
    {
      CycleTimer t(io_cycles);
      (void)sock.kernel_receive(wire);
      n = sock.user_receive(user);
    }
    {
      CycleTimer t(storage_cycles);
      const auto view = ReportGenerator::parse(std::span{user.data(), n});
      std::array<std::byte, 8> key;
      std::memcpy(key.data(), &view.flow_id, 8);
      (void)kafka.produce(key, std::span{user.data(), n}, view.timestamp_ns);
    }
  }
  return {static_cast<double>(io_cycles) / reports,
          static_cast<double>(storage_cycles) / reports};
}

StackCycles run_dpdk_confluo(std::size_t packet_bytes, std::uint64_t reports) {
  DpdkStack dpdk(4096);
  ConfluoLike confluo(ConfluoLike::Config{});
  ReportGenerator gen(ReportSpec{.packet_bytes = packet_bytes});

  std::vector<std::byte> wire(packet_bytes);
  std::array<Mbuf, 32> burst;
  std::uint64_t io_cycles = 0;
  std::uint64_t storage_cycles = 0;
  std::uint64_t done = 0;
  std::uint64_t fed = 0;

  while (done < reports) {
    while (fed - done < 2048 && fed < reports) {
      gen.next(wire);
      (void)dpdk.nic_enqueue(wire);
      ++fed;
    }
    std::size_t n;
    {
      CycleTimer t(io_cycles);
      n = dpdk.rx_burst(burst);
    }
    {
      CycleTimer t(storage_cycles);
      for (std::size_t i = 0; i < n; ++i) {
        const std::span<const std::byte> pkt{burst[i].data, burst[i].len};
        const auto view = ReportGenerator::parse(pkt);
        (void)confluo.append(pkt.subspan(kReportHeaderBytes), view.flow_id,
                             view.switch_id, view.timestamp_ns);
      }
    }
    done += n;
  }
  return {static_cast<double>(io_cycles) / reports,
          static_cast<double>(storage_cycles) / reports};
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Figure 1(b) — CPU cycles: packet I/O vs telemetry storage insert",
      "sockets: 504G cycles/100M reports; Kafka adds 11.5x; DPDK I/O = 2.7% "
      "of sockets; Confluo insert = 114x DPDK I/O");

  const auto reports = bench::flag_u64(argc, argv, "reports", 2'000'000);
  std::printf("Measuring %llu reports per stack (extrapolating to 100M)...\n",
              static_cast<unsigned long long>(reports));

  Table t({"stack", "pkt size", "I/O cyc/report", "storage cyc/report",
           "storage/I/O ratio", "total cycles @100M"});
  double socket_io_64 = 0, dpdk_io_64 = 0;
  for (const std::size_t bytes : {std::size_t{64}, std::size_t{128}}) {
    const auto sk = run_socket_kafka(bytes, reports);
    if (bytes == 64) socket_io_64 = sk.io_per_report;
    t.row({"sockets+Kafka", std::to_string(bytes) + "B",
           fmt_double(sk.io_per_report, 0),
           fmt_double(sk.storage_per_report, 0),
           fmt_double(sk.storage_per_report / sk.io_per_report, 1) + "x",
           fmt_sci((sk.io_per_report + sk.storage_per_report) * 100e6, 2)});

    const auto dc = run_dpdk_confluo(bytes, reports);
    if (bytes == 64) dpdk_io_64 = dc.io_per_report;
    t.row({"DPDK+Confluo", std::to_string(bytes) + "B",
           fmt_double(dc.io_per_report, 0),
           fmt_double(dc.storage_per_report, 0),
           fmt_double(dc.storage_per_report / dc.io_per_report, 1) + "x",
           fmt_sci((dc.io_per_report + dc.storage_per_report) * 100e6, 2)});
  }
  t.print(std::cout);

  std::printf(
      "\nShape check vs paper: DPDK I/O is %.1f%% of socket I/O per report\n"
      "(paper: 2.7%%), and in both stacks queryable-storage insertion costs a\n"
      "large multiple of packet I/O — the collector bottleneck DART removes.\n",
      100.0 * dpdk_io_64 / socket_io_64);
  std::printf(
      "DART's collector-side cost for the same reports: 0 CPU cycles (RNIC\n"
      "writes directly to memory; see micro_datapath for RNIC-model rates).\n");
  return 0;
}
