// Figure 1(a): CPU cores required by a collection cluster for *pure DPDK
// packet I/O* of telemetry reports, as a function of datacenter size.
//
// The paper computes this figure from published constants ("based on
// official DPDK PMD performance numbers [47] and generated events per second
// in 6.5Tbps switches [56]"); we do the same via baseline::CollectionCostModel,
// and additionally cross-check the per-core packet rate assumption against a
// live measurement of our DPDK-PMD-style receive loop.
//
// Series: packet sizes {64 B, 128 B} × event sampling {100%, 10%, 1%}.
#include <cstdio>
#include <iostream>
#include <vector>

#include "baseline/cost_model.hpp"
#include "baseline/dpdk_stack.hpp"
#include "baseline/report_gen.hpp"
#include "bench_util.hpp"
#include "common/cycles.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

// Live cross-check: packets/sec one core of *this* machine sustains through
// the PMD-style burst loop (consumer side only, as in the DPDK reports).
double measured_pps(std::size_t packet_bytes, std::uint64_t reports) {
  using namespace dart::baseline;
  DpdkStack dpdk(4096);
  ReportGenerator gen(ReportSpec{.packet_bytes = packet_bytes});
  std::vector<std::byte> pkt(packet_bytes);
  std::array<Mbuf, 32> burst;

  std::uint64_t cycles = 0;
  std::uint64_t got = 0;
  std::uint64_t fed = 0;
  while (got < reports) {
    while (fed - got < 2048 && fed < reports) {
      gen.next(pkt);
      (void)dpdk.nic_enqueue(pkt);
      ++fed;
    }
    dart::CycleTimer t(cycles);
    got += dpdk.rx_burst(burst);
  }
  const double seconds =
      static_cast<double>(cycles) / (dart::tsc_ghz() * 1e9);
  return static_cast<double>(reports) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dart;
  using namespace dart::baseline;
  bench::banner(
      "Figure 1(a) — CPU cores for pure packet I/O at the collector",
      "10K-switch datacenters need O(1000) I/O cores; storage costs 114x more "
      "(Fig 1b); one RNIC does >200M msg/s (§2)");

  const auto reports = bench::flag_u64(argc, argv, "reports", 2'000'000);

  CollectionCostModel model;
  std::printf(
      "Model constants: %.1fM reports/s per 6.5Tbps switch [56]; DPDK PMD "
      "%.1f/%.1f Mpps per core at 64/128B [47].\n",
      model.reports_per_switch_per_sec / 1e6, model.per_core.pps_64b / 1e6,
      model.per_core.pps_128b / 1e6);
  std::printf(
      "Live cross-check of this host's PMD-style burst loop: %.1f Mpps (64B), "
      "%.1f Mpps (128B) per core.\n",
      measured_pps(64, reports) / 1e6, measured_pps(128, reports) / 1e6);

  Table t({"switches", "64B cores", "128B cores", "64B cores (10% smp)",
           "64B cores (1% smp)", "RNIC equivalents (64B)"});
  for (const double switches :
       {1e3, 1e4, 3e4, 1e5, 2e5, 3e5}) {
    CollectionCostModel sampled10 = model;
    sampled10.sampling = 0.10;
    CollectionCostModel sampled1 = model;
    sampled1.sampling = 0.01;
    const double rnics =
        switches * model.reports_per_switch_per_sec / kRnicMessagesPerSec;
    t.row({format_count(switches), fmt_double(model.io_cores(switches, 64), 0),
           fmt_double(model.io_cores(switches, 128), 0),
           fmt_double(sampled10.io_cores(switches, 64), 0),
           fmt_double(sampled1.io_cores(switches, 64), 0),
           fmt_double(rnics, 0)});
  }
  t.print(std::cout);

  std::printf(
      "\nShape check vs paper: cores grow linearly with switch count; a 10K-\n"
      "switch datacenter already needs ~%d cores for I/O alone, and with the\n"
      "Fig 1(b) storage multiplier (~114x DPDK I/O) the cluster needs\n"
      "O(10^4-10^5) cores — while the same load is %d RNIC-equivalents.\n",
      static_cast<int>(CollectionCostModel{}.io_cores(1e4, 64)),
      static_cast<int>(1e4 * 2e6 / kRnicMessagesPerSec));
  return 0;
}
