// Ablation: load-adaptive redundancy (§5.1's proposed future work) vs fixed
// N, across a load sweep. The adaptive reporter estimates the load factor by
// sampling slot occupancy and picks N* = argmax of the §4 survival formula.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/adaptive.hpp"
#include "core/oracle.hpp"
#include "core/query.hpp"

namespace {

using namespace dart;
using namespace dart::core;

struct Outcome {
  double success = 0;
  double copies_per_key = 0;
};

Outcome run_fixed(std::uint32_t n, std::uint64_t slots, std::uint64_t keys) {
  DartConfig cfg;
  cfg.n_slots = slots;
  cfg.n_addresses = n;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xF1D;
  DartStore store(cfg);
  Oracle oracle;
  std::vector<std::byte> value(8);
  for (std::uint64_t i = 0; i < keys; ++i) {
    std::memcpy(value.data(), &i, 8);
    store.write(sim_key(i), value);
    oracle.record(i, value);
  }
  const QueryEngine q(store);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)oracle.classify(i, q.resolve(sim_key(i)));
  }
  return {oracle.counts().success_rate(), static_cast<double>(n)};
}

Outcome run_adaptive(std::uint32_t n_max, std::uint64_t slots,
                     std::uint64_t keys) {
  DartConfig cfg;
  cfg.n_slots = slots;
  cfg.n_addresses = n_max;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xF1D;
  DartStore store(cfg);
  AdaptiveReporter reporter(store, 0xE57, /*reestimate_every=*/512);
  Oracle oracle;
  std::vector<std::byte> value(8);
  for (std::uint64_t i = 0; i < keys; ++i) {
    std::memcpy(value.data(), &i, 8);
    reporter.report(sim_key(i), value);
    oracle.record(i, value);
  }
  const QueryEngine q(store);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)oracle.classify(i, q.resolve(sim_key(i)));
  }
  return {oracle.counts().success_rate(),
          static_cast<double>(reporter.stats().copies_written) /
              static_cast<double>(reporter.stats().keys_written)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Ablation — §5.1 future work: dynamically adjusting N with load",
      "\"dynamically adjusting N as the load fluctuates could improve "
      "queryability and efficiency\"");

  const auto slots = bench::flag_u64(argc, argv, "slots", 1 << 16);

  Table t({"load α", "N=1", "N=2", "N=8", "adaptive(≤8)",
           "adaptive copies/key"});
  for (const double alpha : {0.05, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const auto keys = static_cast<std::uint64_t>(alpha * slots);
    const auto f1 = run_fixed(1, slots, keys);
    const auto f2 = run_fixed(2, slots, keys);
    const auto f8 = run_fixed(8, slots, keys);
    const auto ad = run_adaptive(8, slots, keys);
    t.row({fmt_double(alpha, 3), fmt_percent(f1.success, 2),
           fmt_percent(f2.success, 2), fmt_percent(f8.success, 2),
           fmt_percent(ad.success, 2), fmt_double(ad.copies_per_key, 2)});
  }
  t.print(std::cout);

  std::printf(
      "\nTakeaway: fixed N=8 wins at low load but collapses past α≈0.3;\n"
      "fixed N=1 is the reverse. The adaptive reporter tracks the winning\n"
      "envelope by shedding copies as the table fills — and its copies/key\n"
      "column shows the write-bandwidth efficiency gained at high load.\n");
  return 0;
}
