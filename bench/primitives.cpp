// Microbenchmark — DTA translator primitives (Append / Key-Increment /
// Postcarding) through the real datapath: switch pipeline event → deparsed
// RoCEv2 frame → simulated RNIC → primitive region memory. Measures per-
// primitive crafting+ingest throughput and the collector-side drain rate,
// and emits BENCH_primitives.json for the perf-trajectory gate
// (tools/check_bench.sh).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/collector.hpp"
#include "core/oracle.hpp"
#include "core/primitives.hpp"
#include "switchsim/dart_switch.hpp"

namespace {

using namespace dart;
using namespace dart::core;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Fixture {
  DartConfig cfg;
  DtaPrimitivesConfig prim;
  Collector collector;
  switchsim::DartSwitchPipeline sw;

  explicit Fixture(std::uint64_t ring_entries)
      : cfg(make_cfg()),
        prim(make_prim(ring_entries)),
        collector(cfg, 0, {{2, 0, 0, 0, 0, 1},
                           net::Ipv4Addr::from_octets(10, 0, 100, 1)}),
        sw(make_switch(cfg, prim)) {
    (void)collector.enable_primitives(prim);
    sw.load_primitives(collector.remote_ring_info(),
                       collector.remote_counter_info(),
                       collector.remote_postcard_info());
  }

  static DartConfig make_cfg() {
    DartConfig cfg;
    cfg.n_slots = 1 << 16;
    cfg.n_addresses = 2;
    cfg.value_bytes = 16;
    cfg.master_seed = 0xD7A1;
    return cfg;
  }
  static DtaPrimitivesConfig make_prim(std::uint64_t ring_entries) {
    auto prim = default_primitives(0xD7A1);
    prim.ring.n_entries = ring_entries;
    prim.ring.value_bytes = 16;
    return prim;
  }
  static switchsim::DartSwitchPipeline::Config make_switch(
      const DartConfig& cfg, const DtaPrimitivesConfig& prim) {
    switchsim::DartSwitchPipeline::Config sc;
    sc.dart = cfg;
    sc.mac = {0x02, 0, 0, 0, 0, 0xBE};
    sc.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
    sc.rng_seed = 99;
    sc.primitives = prim;
    return sc;
  }
};

struct RunResult {
  double reports_per_sec = 0;
  double wire_bytes_per_report = 0;
};

// Emits `n` events through `emit` and ingests each frame; returns the
// end-to-end rate (the zero-CPU claim means ingest is RNIC work, but the
// simulation executes it inline, so this measures the whole translator path).
template <typename Emit>
RunResult run_events(Fixture& fx, std::uint64_t n, Emit&& emit) {
  RunResult r;
  std::uint64_t bytes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto frame = emit(i);
    bytes += frame.size();
    (void)fx.collector.rnic().process_frame(frame);
  }
  const double dt = seconds_since(t0);
  r.reports_per_sec = static_cast<double>(n) / dt;
  r.wire_bytes_per_report =
      static_cast<double>(bytes) / static_cast<double>(n);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Microbench — DTA translator primitives datapath",
      "Append / Key-Increment / Postcarding keep the collector CPU out of "
      "the ingest path; the switch translator does the addressing");

  const auto events = bench::flag_u64(argc, argv, "events", 200'000);
  const auto ring_entries = bench::flag_u64(argc, argv, "ring", 1 << 14);

  Fixture fx(ring_entries);
  std::vector<std::byte> ring_value(fx.prim.ring.value_bytes);
  std::vector<std::byte> pc_value(fx.prim.postcards.value_bytes);

  // Append: every event bumps the switch tail and lands in the ring.
  const auto append = run_events(fx, events, [&](std::uint64_t i) {
    std::memcpy(ring_value.data(), &i, 8);
    return fx.sw.on_append_event(sim_key(i & 0xFF), ring_value);
  });

  // Drain rate: collector-side consumption of what Append just wrote. Only
  // the last `ring_entries` survive; drain until dry in page-size chunks.
  std::uint64_t drained = 0;
  const auto t_drain = std::chrono::steady_clock::now();
  for (;;) {
    const auto d = fx.collector.ring().drain(4096);
    drained += d.entries.size();
    if (d.entries.empty()) break;
  }
  const double drain_dt = seconds_since(t_drain);

  const auto increment = run_events(fx, events, [&](std::uint64_t i) {
    return fx.sw.on_increment_event(sim_key(i & 0xFFF), i + 1);
  });

  const auto postcard = run_events(fx, events, [&](std::uint64_t i) {
    std::memcpy(pc_value.data(), &i, pc_value.size() < 8 ? pc_value.size() : 8);
    return fx.sw.on_postcard_event(sim_key(i & 0xFF),
                                   static_cast<std::uint32_t>(i & 0x7),
                                   pc_value);
  });

  const auto& c = fx.sw.counters();
  Table t({"primitive", "events", "reports/s", "ns/report", "wire B/report"});
  auto row = [&](const char* name, const RunResult& r) {
    t.row({name, std::to_string(events),
           fmt_double(r.reports_per_sec, 0),
           fmt_double(1e9 / r.reports_per_sec, 1),
           fmt_double(r.wire_bytes_per_report, 1)});
  };
  row("append", append);
  row("key-increment", increment);
  row("postcard", postcard);
  t.print(std::cout);

  const double drain_rate = static_cast<double>(drained) / drain_dt;
  std::printf("\ndrain: %llu entries at %.0f entries/s (missed %llu — ring "
              "kept the newest %llu of %llu appends)\n",
              static_cast<unsigned long long>(drained), drain_rate,
              static_cast<unsigned long long>(fx.collector.ring().missed_total()),
              static_cast<unsigned long long>(ring_entries),
              static_cast<unsigned long long>(events));

  // Aggregate rate across the three primitives — the headline trajectory
  // number (reports_per_sec / ns_per_report are the keys the bench gate
  // requires of every BENCH_*.json).
  const double total = static_cast<double>(3 * events);
  const double total_dt = static_cast<double>(events) / append.reports_per_sec +
                          static_cast<double>(events) / increment.reports_per_sec +
                          static_cast<double>(events) / postcard.reports_per_sec;
  bench::BenchJson json("primitives");
  json.config("events_per_primitive", static_cast<double>(events));
  json.config("ring_entries", static_cast<double>(ring_entries));
  json.config("counter_cells", static_cast<double>(fx.prim.counters.n_counters));
  json.config("postcard_groups", static_cast<double>(fx.prim.postcards.n_groups));
  json.result("reports_per_sec", total / total_dt);
  json.result("ns_per_report", 1e9 * total_dt / total);
  json.result("append_reports_per_sec", append.reports_per_sec);
  json.result("increment_reports_per_sec", increment.reports_per_sec);
  json.result("postcard_reports_per_sec", postcard.reports_per_sec);
  json.result("append_wire_bytes_per_report", append.wire_bytes_per_report);
  json.result("increment_wire_bytes_per_report", increment.wire_bytes_per_report);
  json.result("postcard_wire_bytes_per_report", postcard.wire_bytes_per_report);
  json.result("drain_entries_per_sec", drain_rate);
  json.result("appends_emitted", static_cast<double>(c.appends_emitted));
  json.result("increments_emitted", static_cast<double>(c.increments_emitted));
  json.result("postcards_emitted", static_cast<double>(c.postcards_emitted));
  if (!json.write()) return 1;
  return 0;
}
