// Query-plane saturation: operator clients vs the QueryGateway.
//
// DTA frees the collector CPU from ingest, so in production the query plane
// is what saturates first (§3.2). This bench drives C concurrent operator
// sessions (1 → 4096) through one QueryGateway over a 4-collector pool in a
// closed loop: every round, each session issues one read (KV / counter /
// sketch mix) over a shared key pool, then the simulator drains. The small
// pool is deliberate — it makes coalescing and the epoch-bounded result
// cache do real work, exactly as dashboards hammering the same hot keys do.
//
// Reported per client count: wall-clock ops/s through the gateway, sim-time
// p50/p99 from the gateway's own SLO histograms (cache hits are recorded as
// 0 ns — that IS the served latency story), cache hit rate, and the
// inflight high-water mark (the saturation signal). Emits
// BENCH_scaling_query_clients.json, validated by tools/check_bench.sh.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cluster.hpp"
#include "core/primitives.hpp"
#include "core/query_service.hpp"
#include "net/netsim.hpp"
#include "query/gateway.hpp"

namespace {

using namespace dart;

constexpr std::uint32_t kCollectors = 4;

struct SweepPoint {
  std::uint64_t clients = 0;
  double ops_per_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  double hit_rate = 0;
  double coalesce_rate = 0;
  std::uint64_t inflight_highwater = 0;
};

core::DartConfig config() {
  core::DartConfig cfg;
  cfg.n_slots = 1 << 12;
  cfg.n_addresses = 2;
  cfg.value_bytes = 8;
  cfg.master_seed = 0x6A7E57;
  return cfg;
}

std::vector<std::byte> key_of(std::uint64_t k) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &k, 8);
  return out;
}

SweepPoint run(std::uint64_t n_clients, std::uint64_t rounds,
               std::uint64_t key_pool) {
  const auto cfg = config();
  core::CollectorCluster cluster(cfg, kCollectors);
  const auto prim = core::default_primitives(cfg.master_seed);
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    if (!cluster.collector(c).enable_primitives(prim).ok()) std::abort();
  }

  net::Simulator sim{1};
  std::vector<std::pair<net::Ipv4Addr, net::NodeId>> arp;
  auto resolver = [&arp](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
    for (const auto& [addr, node] : arp) {
      if (addr == ip) return node;
    }
    return std::nullopt;
  };

  query::QueryGatewayConfig gcfg;
  gcfg.gateway_ip = net::Ipv4Addr::from_octets(10, 9, 2, 254);
  // Tight histogram range: management RTTs here are a few µs of sim time.
  gcfg.latency_hist_max_ns = 1'000'000.0;
  gcfg.latency_hist_buckets = 1000;
  gcfg.cache_capacity = key_pool * 4;
  std::vector<std::unique_ptr<core::QueryServiceNode>> services;
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    const auto svc_ip =
        net::Ipv4Addr::from_octets(10, 0, 50, static_cast<std::uint8_t>(c));
    gcfg.service_ips.push_back(svc_ip);
    gcfg.virtual_ips.push_back(
        net::Ipv4Addr::from_octets(10, 9, 2, static_cast<std::uint8_t>(c)));
    services.push_back(std::make_unique<core::QueryServiceNode>(
        cluster.collector(c), svc_ip, resolver));
  }
  query::QueryGateway gateway(gcfg, cluster.crafter(), resolver);

  const auto gw_node = sim.add_node(gateway);
  arp.emplace_back(gcfg.gateway_ip, gw_node);
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    const auto node = sim.add_node(*services[c]);
    arp.emplace_back(gcfg.service_ips[c], node);
    arp.emplace_back(gcfg.virtual_ips[c], gw_node);
    sim.connect(gw_node, node, /*latency_ns=*/1000);
  }

  // Pre-populate the pool: every key has a KV value and a counter.
  std::vector<std::vector<std::byte>> keys;
  keys.reserve(key_pool);
  for (std::uint64_t k = 0; k < key_pool; ++k) {
    keys.push_back(key_of(0xB000'0000 + k));
    cluster.write(keys.back(), key_of(k * 3 + 1));
    (void)cluster.collector(cluster.owner_of(keys.back()))
        .counters()
        .fetch_add(keys.back(), k + 1);
  }

  std::vector<query::GatewaySession*> sessions;
  sessions.reserve(n_clients);
  for (std::uint64_t s = 0; s < n_clients; ++s) {
    sessions.push_back(&gateway.open_session());
  }

  std::uint64_t epoch = 0;
  std::uint64_t issued = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // Epoch tick every other round: half the rounds re-read through the
    // cache, half invalidate it and go upstream — a live rotation cadence.
    if (r % 2 == 1) gateway.on_epoch(++epoch);
    for (std::uint64_t s = 0; s < sessions.size(); ++s) {
      const auto& key = keys[(s * 17 + r * 31) % key_pool];
      std::uint64_t id = 0;
      switch ((s + r) % 3) {
        case 0:
          id = sessions[s]->query(key);
          break;
        case 1:
          id = sessions[s]->read_counter(key);
          break;
        default:
          id = sessions[s]->sketch_estimate(key);
          break;
      }
      if (id != 0) ++issued;
    }
    sim.run();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  SweepPoint point;
  point.clients = n_clients;
  point.ops_per_sec = static_cast<double>(issued) / seconds;
  // Merge the three per-family histograms into one served-latency view.
  auto merged = gateway.latency_kv();
  for (const auto& snap :
       {gateway.latency_primitive(), gateway.latency_sketch()}) {
    for (std::size_t b = 0; b < merged.counts.size(); ++b) {
      merged.counts[b] += snap.counts[b];
    }
    merged.total += snap.total;
    merged.sum += snap.sum;
  }
  point.p50_ns = merged.quantile(0.50);
  point.p99_ns = merged.quantile(0.99);
  const auto gets = gateway.cache().hits() + gateway.cache().misses();
  point.hit_rate =
      gets == 0 ? 0.0
                : static_cast<double>(gateway.cache().hits()) /
                      static_cast<double>(gets);
  point.coalesce_rate =
      issued == 0 ? 0.0
                  : static_cast<double>(gateway.coalesced_total()) /
                        static_cast<double>(issued);
  point.inflight_highwater = gateway.inflight_highwater();

  // Sanity: a closed loop must drain completely, or the numbers are noise.
  for (const auto* s : sessions) {
    if (s->pending() != 0) std::abort();
  }
  if (gateway.inflight() != 0) std::abort();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Query-plane saturation — concurrent operator clients vs the gateway",
      "collector CPU goes to query answering, not ingest; the gateway "
      "multiplexes, coalesces, and caches operator load (§3.2)");

  const auto max_clients = bench::flag_u64(argc, argv, "max-clients", 4096);
  const auto rounds = bench::flag_u64(argc, argv, "rounds", 16);
  const auto key_pool = bench::flag_u64(argc, argv, "keys", 256);

  bench::BenchJson json("scaling_query_clients");
  json.config("collectors", kCollectors);
  json.config("rounds", static_cast<double>(rounds));
  json.config("key_pool", static_cast<double>(key_pool));
  json.config("max_clients", static_cast<double>(max_clients));

  Table t({"clients", "ops/s", "p50 ns", "p99 ns", "cache hit", "coalesced",
           "inflight hw"});
  std::uint64_t sustained = 0;
  for (std::uint64_t c = 1; c <= max_clients; c *= 4) {
    const auto p = run(c, rounds, key_pool);
    sustained = c;
    t.row({std::to_string(c), format_count(p.ops_per_sec) + "/s",
           fmt_double(p.p50_ns, 0), fmt_double(p.p99_ns, 0),
           fmt_double(p.hit_rate * 100, 1) + "%",
           fmt_double(p.coalesce_rate * 100, 1) + "%",
           std::to_string(p.inflight_highwater)});
    const std::string prefix = "c" + std::to_string(c) + "_";
    json.result(prefix + "ops_per_sec", p.ops_per_sec);
    json.result(prefix + "p50_ns", p.p50_ns);
    json.result(prefix + "p99_ns", p.p99_ns);
    json.result(prefix + "cache_hit_rate", p.hit_rate);
    json.result(prefix + "coalesce_rate", p.coalesce_rate);
    json.result(prefix + "inflight_highwater",
                static_cast<double>(p.inflight_highwater));
  }
  t.print(std::cout);
  json.result("max_clients_sustained", static_cast<double>(sustained));
  if (!json.write()) std::fprintf(stderr, "WARN: could not write bench json\n");

  std::printf(
      "\nTakeaway: one gateway front-ends thousands of operator sessions —\n"
      "identical hot reads coalesce onto single upstream requests and the\n"
      "epoch-bounded cache absorbs re-reads, so upstream load grows with the\n"
      "key pool and the rotation cadence, not with the client count.\n");
  return 0;
}
