// Scale-out: aggregate ingest throughput vs collector count.
//
// DART's scalability story (§1, §3): collection capacity grows by adding
// collectors, because switches shard keys across them statelessly and no
// collector ever coordinates with another. Here C collectors ingest
// pre-crafted RoCEv2 report frames on C independent threads (each RNIC and
// its memory are private — exactly the shared-nothing property the design
// guarantees), and we report aggregate frames/s versus C.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cluster.hpp"
#include "core/ingest_pipeline.hpp"
#include "core/oracle.hpp"
#include "core/report_crafter.hpp"

namespace {

using namespace dart;
using namespace dart::core;

DartConfig config() {
  DartConfig cfg;
  cfg.n_slots = 1 << 16;
  cfg.n_addresses = 2;
  cfg.value_bytes = 20;
  cfg.master_seed = 0x5CA1E;
  return cfg;
}

double run(std::uint32_t n_collectors, std::uint64_t frames_per_collector) {
  CollectorCluster cluster(config(), n_collectors);
  const ReportCrafter crafter(config());
  ReporterEndpoint src;
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);

  // Pre-craft per-collector frame pools (keys owned by that collector).
  std::vector<std::vector<std::vector<std::byte>>> pools(n_collectors);
  std::uint64_t key_id = 0;
  std::array<std::byte, 20> value{};
  for (std::uint32_t c = 0; c < n_collectors; ++c) {
    auto& pool = pools[c];
    while (pool.size() < 2048) {
      const auto key = sim_key(key_id++);
      if (crafter.collector_of(key, n_collectors) != c) continue;
      pool.push_back(crafter.craft_write(cluster.directory()[c], src, key,
                                         value, 0,
                                         static_cast<std::uint32_t>(pool.size())));
    }
  }

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(n_collectors);
  for (std::uint32_t c = 0; c < n_collectors; ++c) {
    threads.emplace_back([&, c] {
      while (!go.load(std::memory_order_acquire)) {
      }
      auto& rnic = cluster.collector(c).rnic();
      const auto& pool = pools[c];
      for (std::uint64_t i = 0; i < frames_per_collector; ++i) {
        (void)rnic.process_frame(pool[i & 2047]);
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(frames_per_collector) * n_collectors / seconds;
}

// --pipeline=1 variant: each collector is a full sharded ingest pipeline
// (feeder crafts frames live, shard worker validates + DMAs), so the bench
// also covers the frame-crafting half of the data path instead of replaying
// a pre-crafted pool.
double run_pipelines(std::uint32_t n_collectors,
                     std::uint64_t frames_per_collector) {
  std::vector<std::unique_ptr<IngestPipeline>> pipelines;
  pipelines.reserve(n_collectors);
  for (std::uint32_t c = 0; c < n_collectors; ++c) {
    IngestPipelineConfig cfg;
    cfg.dart = config();
    cfg.n_feeders = 1;
    cfg.n_shards = 1;
    // N=2 addresses → 2 frames per report: keep frame counts comparable.
    cfg.reports_per_feeder = frames_per_collector / cfg.dart.n_addresses;
    cfg.seed = 0x5CA1E + c;
    pipelines.push_back(std::make_unique<IngestPipeline>(cfg));
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (auto& p : pipelines) p->start();
  std::uint64_t frames = 0;
  for (auto& p : pipelines) frames += p->finish().frames_applied;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(frames) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Scale-out — aggregate report ingest vs collector count",
      "stateless sharding + shared-nothing collectors: capacity grows with "
      "the pool, no coordination (§1, §3)");

  const auto frames = bench::flag_u64(argc, argv, "frames", 400'000);
  const bool pipeline = bench::flag_u64(argc, argv, "pipeline", 0) != 0;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads available: %u, ingest: %s\n", hw,
              pipeline ? "sharded pipeline (frames crafted live)"
                       : "pre-crafted frame replay");

  Table t({"collectors", "aggregate frames/s", "speedup vs 1"});
  double base = 0;
  for (const std::uint32_t c : {1u, 2u, 4u, 8u}) {
    const double rate =
        pipeline ? run_pipelines(c, frames) : run(c, frames);
    if (c == 1) base = rate;
    t.row({std::to_string(c), format_count(rate) + "/s",
           fmt_double(rate / base, 2) + "x"});
  }
  t.print(std::cout);

  if (hw <= 1) {
    std::printf(
        "\nNOTE: this host exposes a single hardware thread, so the aggregate\n"
        "rate is flat by construction (C threads share one core). The bench\n"
        "still demonstrates the architectural property: C collectors ingest\n"
        "with zero cross-collector coordination or shared state, so on C\n"
        "machines the aggregate is C times a single collector's rate.\n");
  } else {
    std::printf(
        "\nTakeaway: ingest scales with the collector pool until the host\n"
        "runs out of cores (this box has %u) — in deployment each collector\n"
        "is its own machine and the NIC, not a core, does this work.\n",
        hw);
  }
  return 0;
}
