// Scale-out: collector pools from 10 to 100.
//
// DART's scalability story (§1, §3): collection capacity grows by adding
// collectors, because switches shard keys across them statelessly and no
// collector ever coordinates with another. Two observables per pool size C:
//
//   ingest     C collectors ingest pre-crafted RoCEv2 report frames on C
//              independent threads (each RNIC and its memory are private —
//              the shared-nothing property), reported as aggregate reports/s.
//   movement   one streamed hash pass over the full --flows key universe
//              (default 1e8) histograms keys into the consistent-hash ring's
//              buckets, then removes a single member: the keys that change
//              owner must be ≤ 2·K/C (the ring's minimal-movement bound),
//              re-adding the member must restore the exact table, and the
//              same pass counts how many keys the legacy modulo policy would
//              have moved (~K·(1-1/C)) for contrast.
//
// Results land in BENCH_scaling_collectors.json (validated by
// tools/check_bench.sh) alongside the console table.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cluster.hpp"
#include "core/collector_ring.hpp"
#include "core/oracle.hpp"
#include "core/report_crafter.hpp"

namespace {

using namespace dart;
using namespace dart::core;

constexpr std::array<std::uint32_t, 4> kCounts{10, 25, 50, 100};

DartConfig config() {
  DartConfig cfg;
  cfg.n_slots = 1 << 12;
  cfg.n_addresses = 2;
  cfg.value_bytes = 20;
  cfg.master_seed = 0x5CA1E;
  cfg.selection = CollectorSelection::kRing;
  cfg.ring_height_per_member = 64;
  return cfg;
}

// Key-movement stats for one pool size, filled by the shared hash pass.
struct MoveStats {
  std::uint32_t n_collectors = 0;
  std::uint32_t victim = 0;
  std::uint64_t keys_total = 0;
  std::uint64_t keys_moved_ring = 0;    // single leave, kRing
  std::uint64_t keys_moved_modulo = 0;  // single leave, legacy modulo
  std::uint64_t movement_violations = 0;  // buckets moved that victim didn't own
  std::uint64_t restore_mismatch = 0;     // buckets differing after re-add
  double balance_ratio = 0;               // max/min per-collector key share
};

// One streamed pass over the key universe serves every pool size at once:
// the 64-bit collector hash is policy- and pool-size-independent, so each
// key is hashed once and then folded into a per-C bucket histogram (ring
// movement is decided bucket-by-bucket) plus the modulo-policy move count.
std::vector<MoveStats> movement_pass(std::uint64_t flows) {
  struct PerCount {
    std::unique_ptr<CollectorSelector> selector;
    std::vector<std::uint64_t> bucket_keys;  // histogram over ring height H
    std::uint64_t modulo_moved = 0;
    std::uint32_t victim = 0;
  };
  std::vector<PerCount> per;
  per.reserve(kCounts.size());
  for (const std::uint32_t c : kCounts) {
    PerCount p;
    p.selector = std::make_unique<CollectorSelector>(config(), c);
    p.bucket_keys.assign(p.selector->ring().height(), 0);
    p.victim = c / 2;
    per.push_back(std::move(p));
  }
  const HashFamily& hashes = per.front().selector->hashes();

  constexpr std::size_t kBatch = 8192;
  std::vector<std::byte> keybuf(kBatch * 8);
  std::vector<std::uint64_t> hashbuf(kBatch);
  for (std::uint64_t base = 0; base < flows; base += kBatch) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kBatch, flows - base));
    for (std::size_t i = 0; i < n; ++i) {
      const auto key = sim_key(base + i);
      std::copy(key.begin(), key.end(), keybuf.begin() + i * 8);
    }
    hashes.collector_hashes(keybuf.data(), 8, 8, n, hashbuf.data());
    for (auto& p : per) {
      const std::uint32_t c = p.selector->capacity();
      const std::uint64_t height = p.bucket_keys.size();
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t h = hashbuf[i];
        ++p.bucket_keys[h % height];
        // Modulo policy after the victim leaves: index into the sorted
        // C-1 survivors, i.e. ids [0,victim) keep their index and ids
        // (victim, C) shift down by one.
        const std::uint32_t before = static_cast<std::uint32_t>(h % c);
        const std::uint32_t idx = static_cast<std::uint32_t>(h % (c - 1));
        const std::uint32_t after = idx < p.victim ? idx : idx + 1;
        p.modulo_moved += before != after ? 1 : 0;
      }
    }
  }

  std::vector<MoveStats> out;
  out.reserve(per.size());
  for (auto& p : per) {
    MoveStats s;
    s.n_collectors = p.selector->capacity();
    s.victim = p.victim;
    s.keys_total = flows;
    s.keys_moved_modulo = p.modulo_moved;

    const auto before = p.selector->ring().owner_table();
    std::vector<std::uint64_t> share(s.n_collectors, 0);
    for (std::size_t b = 0; b < before.size(); ++b) {
      share[before[b]] += p.bucket_keys[b];
    }
    const auto [lo, hi] = std::minmax_element(share.begin(), share.end());
    s.balance_ratio =
        *lo == 0 ? 0.0 : static_cast<double>(*hi) / static_cast<double>(*lo);

    p.selector->remove_member(p.victim);
    const auto after = p.selector->ring().owner_table();
    for (std::size_t b = 0; b < before.size(); ++b) {
      if (after[b] != before[b]) {
        s.keys_moved_ring += p.bucket_keys[b];
        s.movement_violations += before[b] != p.victim ? 1 : 0;
      }
    }

    p.selector->add_member(p.victim);
    const auto restored = p.selector->ring().owner_table();
    for (std::size_t b = 0; b < before.size(); ++b) {
      s.restore_mismatch += restored[b] != before[b] ? 1 : 0;
    }
    out.push_back(s);
  }
  return out;
}

double run_ingest(std::uint32_t n_collectors,
                  std::uint64_t frames_per_collector) {
  CollectorCluster cluster(config(), n_collectors);
  const CollectorSelector selector(config(), n_collectors);
  const ReportCrafter crafter(config());
  ReporterEndpoint src;
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);

  // Pre-craft per-collector frame pools, keys routed by the ring selector
  // (one pass over the key stream, appended to each key's owner).
  constexpr std::size_t kPoolSize = 1024;
  std::vector<std::vector<std::vector<std::byte>>> pools(n_collectors);
  std::array<std::byte, 20> value{};
  std::uint32_t full = 0;
  for (std::uint64_t key_id = 0; full < n_collectors; ++key_id) {
    const auto key = sim_key(key_id);
    const std::uint32_t c = selector.owner_of(key);
    auto& pool = pools[c];
    if (pool.size() >= kPoolSize) continue;
    pool.push_back(crafter.craft_write(cluster.directory()[c], src, key, value,
                                       0,
                                       static_cast<std::uint32_t>(pool.size())));
    if (pool.size() == kPoolSize) ++full;
  }

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(n_collectors);
  for (std::uint32_t c = 0; c < n_collectors; ++c) {
    threads.emplace_back([&, c] {
      while (!go.load(std::memory_order_acquire)) {
      }
      auto& rnic = cluster.collector(c).rnic();
      const auto& pool = pools[c];
      for (std::uint64_t i = 0; i < frames_per_collector; ++i) {
        (void)rnic.process_frame(pool[i & (kPoolSize - 1)]);
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(frames_per_collector) * n_collectors / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Scale-out — collector pools 10 to 100",
      "stateless sharding + shared-nothing collectors: capacity grows with "
      "the pool, a membership change moves only ~K/C keys (§1, §3)");

  const auto flows = bench::flag_u64(argc, argv, "flows", 100'000'000);
  const auto frames = bench::flag_u64(argc, argv, "frames", 100'000);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads available: %u, key universe: %s flows\n", hw,
              format_count(static_cast<double>(flows)).c_str());

  std::printf("\n[movement] one hash pass over the key universe...\n");
  const auto moves = movement_pass(flows);

  bench::BenchJson json("scaling_collectors");
  json.config("flows", static_cast<double>(flows));
  json.config("frames_per_collector", static_cast<double>(frames));
  json.config("height_per_member", 64);
  json.config("policy", "ring");
  json.config("hardware_threads", hw);

  Table t({"collectors", "aggregate reports/s", "keys moved (1 leave)",
           "bound 2K/C", "modulo would move", "balance"});
  std::uint64_t restore_mismatch = 0;
  for (std::size_t i = 0; i < kCounts.size(); ++i) {
    const std::uint32_t c = kCounts[i];
    const MoveStats& m = moves[i];
    const double rate = run_ingest(c, frames);
    const double expected_share =
        static_cast<double>(flows) / static_cast<double>(c);
    restore_mismatch += m.restore_mismatch + m.movement_violations;

    t.row({std::to_string(c), format_count(rate) + "/s",
           format_count(static_cast<double>(m.keys_moved_ring)),
           format_count(2 * expected_share),
           format_count(static_cast<double>(m.keys_moved_modulo)),
           fmt_double(m.balance_ratio, 3)});

    const std::string p = "c" + std::to_string(c) + "_";
    json.result(p + "aggregate_reports_per_sec", rate);
    json.result(p + "expected_share", expected_share);
    json.result(p + "keys_moved_single_leave",
                static_cast<double>(m.keys_moved_ring));
    json.result(p + "keys_moved_modulo",
                static_cast<double>(m.keys_moved_modulo));
    json.result(p + "balance_ratio", m.balance_ratio);
    json.result(p + "restore_mismatch",
                static_cast<double>(m.restore_mismatch));
    json.result(p + "movement_violations",
                static_cast<double>(m.movement_violations));
  }
  json.result("restore_mismatch", static_cast<double>(restore_mismatch));
  t.print(std::cout);
  json.write();

  std::printf(
      "\nTakeaway: a single leave in a C-collector ring moves ≤ 2·K/C keys\n"
      "(modulo would reshuffle ~K·(1-1/C)), re-admission restores the exact\n"
      "mapping, and aggregate ingest grows with the pool until the host runs\n"
      "out of cores (this box has %u) — in deployment each collector is its\n"
      "own machine and the NIC, not a core, does this work.\n",
      hw);
  return 0;
}
