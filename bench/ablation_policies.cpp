// Ablation: return policies (§4). The paper suggests "a 32-bit checksum and
// a plurality vote" as the default, and notes stricter per-query policies
// trade empty returns for fewer return errors. This bench quantifies the
// trade across load factors and checksum widths, with ground truth.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/oracle.hpp"
#include "core/reporter.hpp"
#include "core/query.hpp"
#include "core/store.hpp"

namespace {

using namespace dart;
using namespace dart::core;

VerdictCounts run(std::uint64_t n_slots, double alpha, std::uint32_t bits,
                  std::uint32_t n, ReturnPolicy policy,
                  std::uint32_t reports_per_key, WriteMode mode) {
  DartConfig cfg;
  cfg.n_slots = n_slots;
  cfg.n_addresses = n;
  cfg.checksum_bits = bits;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xAB1A;
  cfg.write_mode = mode;
  DartStore store(cfg);
  DartReporter reporter(store, 0x9);
  Oracle oracle;

  const auto keys = static_cast<std::uint64_t>(alpha * n_slots);
  std::array<std::byte, 8> value{};
  for (std::uint64_t i = 0; i < keys; ++i) {
    std::memcpy(value.data(), &i, 8);
    reporter.report(sim_key(i), value, reports_per_key);
    oracle.record(i, value);
  }
  const QueryEngine q(store);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)oracle.classify(i, q.resolve(sim_key(i), policy));
  }
  return oracle.counts();
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Ablation — return policies: success vs empty vs wrong answers",
      "§4: plurality as default; consensus-of-two choosable per query to "
      "trade empty returns against return errors");

  const auto n_slots = bench::flag_u64(argc, argv, "slots", 1 << 16);
  const std::vector<ReturnPolicy> policies{
      ReturnPolicy::kFirstMatch, ReturnPolicy::kSingleDistinct,
      ReturnPolicy::kPlurality, ReturnPolicy::kConsensusTwo};

  for (const std::uint32_t bits : {8u, 32u}) {
    std::printf("\nChecksum b = %u bits, N = 4, all slots written:\n", bits);
    Table t({"load α", "policy", "success", "empty", "error"});
    for (const double alpha : {0.25, 1.0, 2.0}) {
      for (const auto policy : policies) {
        const auto c = run(n_slots, alpha, bits, 4, policy, 1,
                           WriteMode::kAllSlots);
        t.row({fmt_double(alpha, 2), to_string(policy),
               fmt_percent(c.success_rate(), 2), fmt_percent(c.empty_rate(), 2),
               fmt_sci(c.error_rate(), 2)});
      }
    }
    t.print(std::cout);
  }

  // Stochastic single-write reports (the RDMA-standard switch behaviour):
  // consensus-2 suffers when only one slot per key is populated.
  std::printf(
      "\nStochastic reporting (1 report/key over N=2 slots), b = 32:\n");
  Table s({"load α", "policy", "success", "empty"});
  for (const double alpha : {0.25, 1.0}) {
    for (const auto policy :
         {ReturnPolicy::kPlurality, ReturnPolicy::kConsensusTwo}) {
      const auto c = run(n_slots, alpha, 32, 2, policy, 1,
                         WriteMode::kStochastic);
      s.row({fmt_double(alpha, 2), to_string(policy),
             fmt_percent(c.success_rate(), 2), fmt_percent(c.empty_rate(), 2)});
    }
  }
  s.print(std::cout);

  std::printf(
      "\nTakeaway: plurality ≈ first-match on success but cuts errors at\n"
      "small b; consensus-2 nearly eliminates errors at the cost of empty\n"
      "returns — and is only usable when re-reports fill multiple slots.\n");
  return 0;
}
