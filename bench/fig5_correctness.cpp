// Figure 5: probability of returning a WRONG answer (a "return error", §4)
// due to address + checksum collisions, as a function of storage size and
// checksum width.
//
// Protocol (matches §5.3): fill a store with distinct keys at several load
// factors, query every key with ground truth, and count answers that are
// returned but wrong. Small checksum widths make errors measurable; at
// b=32 the paper "fail[s] to reproduce return-error cases, due to their very
// low probability" — we reproduce that too, and print the §4 bounds so the
// measured rates can be checked against theory.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/analysis.hpp"
#include "core/oracle.hpp"
#include "core/query.hpp"
#include "core/store.hpp"

namespace {

using namespace dart;
using namespace dart::core;

VerdictCounts run(std::uint64_t n_slots, double alpha, std::uint32_t bits,
                  ReturnPolicy policy) {
  DartConfig cfg;
  cfg.n_slots = n_slots;
  cfg.n_addresses = 2;
  cfg.checksum_bits = bits;
  cfg.value_bytes = 8;
  cfg.master_seed = 0xF15'0000 + bits;
  DartStore store(cfg);
  Oracle oracle;

  const auto keys = static_cast<std::uint64_t>(alpha * n_slots);
  std::array<std::byte, 8> value{};
  for (std::uint64_t i = 0; i < keys; ++i) {
    std::memcpy(value.data(), &i, 8);
    store.write(sim_key(i), value);
    oracle.record(i, value);
  }
  const QueryEngine q(store);
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)oracle.classify(i, q.resolve(sim_key(i), policy));
  }
  return oracle.counts();
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Figure 5 — probability of wrong answers vs checksum width & storage",
      "longer checksums sharply cut return errors; 32-bit checksums produce "
      "no observable errors in 100M-key simulations");

  const auto n_slots = bench::flag_u64(argc, argv, "slots", 1 << 17);
  const std::vector<std::uint32_t> widths{4, 8, 12, 16, 32};
  const std::vector<double> alphas{0.5, 1.0, 2.0};

  Table t({"checksum b", "load α", "keys", "error rate (sim)",
           "§4 lower bnd", "§4 upper bnd", "empty rate (sim)"});
  for (const auto bits : widths) {
    for (const double alpha : alphas) {
      const auto counts =
          run(n_slots, alpha, bits, ReturnPolicy::kFirstMatch);
      t.row({std::to_string(bits), fmt_double(alpha, 1),
             format_count(static_cast<double>(counts.total())),
             fmt_sci(counts.error_rate(), 2),
             fmt_sci(p_return_error_lower(alpha, 2, bits), 2),
             fmt_sci(p_return_error_upper(alpha, 2, bits), 2),
             fmt_percent(counts.empty_rate(), 2)});
    }
  }
  t.print(std::cout);

  // Policy hardening: plurality / consensus-2 cut errors further (§4's
  // suggested default is 32-bit checksum + plurality).
  std::printf("\nReturn-policy hardening at b=8, α=1.0:\n");
  Table p({"policy", "error rate", "empty rate", "success rate"});
  for (const auto policy :
       {ReturnPolicy::kFirstMatch, ReturnPolicy::kSingleDistinct,
        ReturnPolicy::kPlurality, ReturnPolicy::kConsensusTwo}) {
    const auto counts = run(n_slots, 1.0, 8, policy);
    p.row({to_string(policy), fmt_sci(counts.error_rate(), 2),
           fmt_percent(counts.empty_rate(), 2),
           fmt_percent(counts.success_rate(), 2)});
  }
  p.print(std::cout);

  std::printf(
      "\nShape check vs paper: measured error rates sit between the §4 bounds\n"
      "and fall ~2^-Δb per extra checksum bit; b=32 rows show zero errors, as\n"
      "in the paper's simulations (§5.3). Stricter return policies trade\n"
      "empty returns for fewer wrong answers (§4).\n");
  return 0;
}
