// Ablation: §7's DTA multiwrite primitive vs standard RDMA reporting.
//
// "The RDMA standard requires multiple packets with a single write
//  instruction each, with SmartNICs showing promise to circumvent this
//  limitation (§7) by batching them together."
//
// Measures, through the real switch-pipeline → RNIC path:
//   - packets and wire bytes per reported key,
//   - collector-memory outcome equivalence (same slots, same queryability),
// for (a) RDMA stochastic single-report, (b) RDMA all-slots (N frames),
// (c) one DTA multiwrite frame, across N ∈ {2, 4, 8}.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/collector.hpp"
#include "core/oracle.hpp"
#include "rdma/multiwrite.hpp"
#include "switchsim/dart_switch.hpp"

namespace {

using namespace dart;
using namespace dart::core;

struct ModeResult {
  std::uint64_t frames = 0;
  std::uint64_t wire_bytes = 0;
  double success = 0;
};

DartConfig config(std::uint32_t n) {
  DartConfig cfg;
  cfg.n_slots = 1 << 16;
  cfg.n_addresses = n;
  cfg.value_bytes = 20;
  cfg.master_seed = 0xD7A0 + n;
  return cfg;
}

ModeResult run(std::uint32_t n, WriteMode mode, bool dta,
               std::uint64_t keys) {
  const auto cfg = config(n);
  const CollectorEndpoint ep{{2, 0, 0, 0, 0, 1},
                             net::Ipv4Addr::from_octets(10, 0, 100, 1)};
  Collector collector(cfg, 0, ep);
  collector.rnic().set_dta_multiwrite(dta);

  switchsim::DartSwitchPipeline::Config sc;
  sc.dart = cfg;
  sc.write_mode = mode;
  sc.use_dta_multiwrite = dta;
  sc.rng_seed = 99;
  switchsim::DartSwitchPipeline sw(sc);
  sw.load_collector(collector.remote_info());

  ModeResult r;
  Oracle oracle;
  std::vector<std::byte> value(20);
  for (std::uint64_t i = 0; i < keys; ++i) {
    const auto key = sim_key(i);
    std::memcpy(value.data(), &i, 8);
    for (const auto& frame : sw.on_telemetry(key, value)) {
      ++r.frames;
      r.wire_bytes += frame.size();
      (void)collector.rnic().process_frame(frame);
    }
    oracle.record(i, value);
  }
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)oracle.classify(i, collector.query(sim_key(i)));
  }
  r.success = oracle.counts().success_rate();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Ablation — §7 DTA multiwrite vs standard RDMA reporting",
      "one SmartNIC frame fills all N slots, cutting per-key network "
      "overhead that RDMA's one-write-per-packet rule imposes");

  const auto keys = bench::flag_u64(argc, argv, "keys", 20'000);

  Table t({"N", "mode", "frames/key", "wire B/key", "vs RDMA N-frames",
           "query success"});
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    const auto stochastic = run(n, WriteMode::kStochastic, false, keys);
    const auto all = run(n, WriteMode::kAllSlots, false, keys);
    const auto dta = run(n, WriteMode::kAllSlots, true, keys);

    const double all_bytes =
        static_cast<double>(all.wire_bytes) / static_cast<double>(keys);
    auto row = [&](const char* name, const ModeResult& r) {
      const double bytes_per_key =
          static_cast<double>(r.wire_bytes) / static_cast<double>(keys);
      t.row({std::to_string(n), name,
             fmt_double(static_cast<double>(r.frames) / static_cast<double>(keys), 2),
             fmt_double(bytes_per_key, 1),
             fmt_percent(bytes_per_key / all_bytes, 0),
             fmt_percent(r.success, 2)});
    };
    row("RDMA stochastic (1 report)", stochastic);
    row("RDMA all-slots (N frames)", all);
    row("DTA multiwrite (1 frame)", dta);
  }
  t.print(std::cout);

  std::printf(
      "\nShape check vs paper (§7): the multiwrite reaches all-slots\n"
      "queryability at a fraction of the wire cost — each extra slot costs\n"
      "8 B of addressing instead of a whole %zu B report frame — while the\n"
      "stochastic single-report mode saves bandwidth but fills one slot.\n",
      rdma::roce_write_frame_bytes(24));
  return 0;
}
