// Ablation: the telemetry *pipeline* rates of §2 — per-packet INT versus
// switch-side event-triggered reporting, and what each costs downstream.
//
//   "event detection is typically implemented at switches in an effort to
//    send reports to a collector only when things change [25]. This helps in
//    reducing the rate of switch-to-collector communication down to a few
//    million telemetry reports per second per switch [56]."
//
// A synthetic per-packet measurement stream (Zipf flows, occasional value
// changes) runs through a ChangeDetector; surviving events become DART
// reports. The table shows the packet→report reduction across detector
// configurations and the resulting collector-side load, connecting Fig. 1's
// per-switch report-rate assumption to its source.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "rdma/multiwrite.hpp"
#include "switchsim/topology.hpp"
#include "telemetry/event_detect.hpp"
#include "telemetry/workload.hpp"

namespace {

using namespace dart;
using namespace dart::telemetry;

struct PipelineResult {
  std::uint64_t packets = 0;
  std::uint64_t reports = 0;
  std::uint64_t evictions = 0;
  double report_bytes_per_sec_at_line_rate = 0;
};

PipelineResult run(const ChangeDetectorConfig& det_cfg, double change_rate,
                   std::uint64_t packets) {
  const switchsim::FatTree topo(8);
  FlowSampler sampler(topo, 50'000, 1.05, 11);
  ChangeDetector detector(det_cfg);
  Xoshiro256 rng(21);

  std::vector<std::uint32_t> flow_value(50'000, 1000);
  PipelineResult r;
  r.packets = packets;
  for (std::uint64_t p = 0; p < packets; ++p) {
    const auto idx = rng.below(50'000);
    if (rng.chance(change_rate)) {
      flow_value[idx] += 40 + static_cast<std::uint32_t>(rng.below(100));
    }
    const auto key = sampler.flow(idx).tuple.key_bytes();
    if (detector.observe(key, flow_value[idx], p * 100)) {
      ++r.reports;
    }
  }
  r.evictions = detector.stats().evictions;
  // At 6.5 Tbps ≈ 1B small packets/s, scale the measured report fraction to
  // per-second report bandwidth (N=2 RoCEv2 frames of ~98 B per report).
  const double reports_per_sec =
      1e9 * static_cast<double>(r.reports) / static_cast<double>(packets);
  r.report_bytes_per_sec_at_line_rate =
      reports_per_sec * 2.0 *
      static_cast<double>(rdma::roce_write_frame_bytes(24));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Ablation — §2 event-triggered reporting: packets in, reports out",
      "per-packet INT is unshippable; change detection reduces the stream to "
      "a few million reports/s per switch [25, 56]");

  const auto packets = bench::flag_u64(argc, argv, "packets", 2'000'000);

  Table t({"detector", "change rate", "reports/packets", "reduction",
           "est. reports/s @1Gpps", "DART report BW"});
  struct Case {
    const char* name;
    ChangeDetectorConfig cfg;
    double change_rate;
  };
  const std::vector<Case> cases{
      {"none (per-packet INT)", {.table_size = 1, .threshold = 0}, 0.01},
      {"change-only", {.table_size = 1 << 18, .threshold = 0}, 0.01},
      {"threshold=16", {.table_size = 1 << 18, .threshold = 16}, 0.01},
      {"threshold=16 + 1ms rate cap",
       {.table_size = 1 << 18, .threshold = 16, .min_interval_ns = 1'000'000},
       0.01},
      {"threshold=16, calmer traffic",
       {.table_size = 1 << 18, .threshold = 16},
       0.001},
  };
  for (const auto& c : cases) {
    PipelineResult r;
    if (std::string(c.name) == "none (per-packet INT)") {
      r.packets = packets;
      r.reports = packets;  // every packet reports
      r.report_bytes_per_sec_at_line_rate =
          1e9 * 2.0 * static_cast<double>(rdma::roce_write_frame_bytes(24));
    } else {
      r = run(c.cfg, c.change_rate, packets);
    }
    const double frac =
        static_cast<double>(r.reports) / static_cast<double>(r.packets);
    t.row({c.name, fmt_percent(c.change_rate, 1), fmt_percent(frac, 2),
           fmt_double(1.0 / frac, 0) + "x",
           format_count(frac * 1e9) + "/s",
           format_bytes(r.report_bytes_per_sec_at_line_rate) + "/s"});
  }
  t.print(std::cout);

  std::printf(
      "\nShape check vs paper: event triggering turns ~1e9 packet\n"
      "observations/s into a few 1e6-1e7 reports/s (the rate §2 cites from\n"
      "[56]) — still enough, across 10K+ switches, to saturate CPU-based\n"
      "collectors (Fig. 1) and motivate DART's zero-CPU ingest.\n");
  return 0;
}
