#include "core/query.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace dart::core {

const char* to_string(ReturnPolicy policy) noexcept {
  switch (policy) {
    case ReturnPolicy::kFirstMatch:
      return "first-match";
    case ReturnPolicy::kSingleDistinct:
      return "single-distinct";
    case ReturnPolicy::kPlurality:
      return "plurality";
    case ReturnPolicy::kConsensusTwo:
      return "consensus-2";
  }
  return "?";
}

namespace {

[[nodiscard]] bool values_equal(std::span<const std::byte> a,
                                std::span<const std::byte> b) noexcept {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size()) == 0;
}

}  // namespace

QueryResult QueryEngine::resolve(std::span<const std::byte> key,
                                 ReturnPolicy policy) const {
  const std::uint32_t want = store_->key_checksum(key);

  // Collect surviving values with multiplicities. N is small (≤ ~8), so a
  // flat vector beats any map.
  struct Candidate {
    std::span<const std::byte> value;
    std::uint32_t count = 0;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(store_->config().n_addresses);

  // All N coded addresses from one batched hash pass (the common N ≤ 16
  // fits on the stack; larger families hash per copy below).
  std::array<std::uint64_t, 16> addrs;
  const std::uint32_t n_addresses = store_->config().n_addresses;
  const bool batched = n_addresses <= addrs.size();
  if (batched) {
    store_->slot_indices(key, std::span(addrs.data(), n_addresses));
  }

  QueryResult result;
  for (std::uint32_t n = 0; n < n_addresses; ++n) {
    const SlotView slot = store_->read_slot(
        batched ? addrs[n] : store_->slot_index(key, n));
    if (slot.checksum != want) continue;
    ++result.checksum_matches;
    bool merged = false;
    for (auto& c : candidates) {
      if (values_equal(c.value, slot.value)) {
        ++c.count;
        merged = true;
        break;
      }
    }
    if (!merged) candidates.push_back(Candidate{slot.value, 1});
  }
  result.distinct_values = static_cast<std::uint32_t>(candidates.size());
  if (candidates.empty()) return result;  // kEmpty: nothing survived

  const auto commit = [&](std::span<const std::byte> value) {
    result.outcome = QueryOutcome::kFound;
    result.value.assign(value.begin(), value.end());
  };

  switch (policy) {
    case ReturnPolicy::kFirstMatch:
      commit(candidates.front().value);
      break;

    case ReturnPolicy::kSingleDistinct:
      if (candidates.size() == 1) commit(candidates.front().value);
      break;

    case ReturnPolicy::kPlurality: {
      const auto best = std::max_element(
          candidates.begin(), candidates.end(),
          [](const Candidate& a, const Candidate& b) { return a.count < b.count; });
      const auto ties = std::count_if(
          candidates.begin(), candidates.end(),
          [&](const Candidate& c) { return c.count == best->count; });
      if (ties == 1) commit(best->value);
      break;
    }

    case ReturnPolicy::kConsensusTwo: {
      // Highest-count value having count >= 2; ties at the top → empty.
      const auto best = std::max_element(
          candidates.begin(), candidates.end(),
          [](const Candidate& a, const Candidate& b) { return a.count < b.count; });
      if (best->count < 2) break;
      const auto ties = std::count_if(
          candidates.begin(), candidates.end(),
          [&](const Candidate& c) { return c.count == best->count; });
      if (ties == 1) commit(best->value);
      break;
    }
  }
  return result;
}

}  // namespace dart::core
