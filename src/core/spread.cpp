#include "core/spread.hpp"

#include <algorithm>
#include <cstring>

namespace dart::core {

SpreadCluster::SpreadCluster(const DartConfig& config,
                             std::uint32_t n_collectors, PlacementMode mode)
    : config_(config), mode_(mode), crafter_(config) {
  if (n_collectors == 0) n_collectors = 1;
  collectors_.reserve(n_collectors);
  for (std::uint32_t id = 0; id < n_collectors; ++id) {
    CollectorEndpoint ep;
    ep.mac = {0x02, 0x00, 0xC0, 0x22, 0, static_cast<std::uint8_t>(id)};
    ep.ip = net::Ipv4Addr::from_octets(10, 0, 101, static_cast<std::uint8_t>(id));
    collectors_.push_back(std::make_unique<Collector>(config, id, ep));
  }
  failed_.assign(n_collectors, false);
}

std::uint32_t SpreadCluster::collector_for_copy(std::span<const std::byte> key,
                                                std::uint32_t n) const noexcept {
  const std::uint32_t owner = crafter_.collector_of(key, size());
  if (mode_ == PlacementMode::kSingleCollector) return owner;
  return (owner + n) % size();
}

void SpreadCluster::write(std::span<const std::byte> key,
                          std::span<const std::byte> value) {
  for (std::uint32_t n = 0; n < config_.n_addresses; ++n) {
    const std::uint32_t c = collector_for_copy(key, n);
    if (failed_[c]) continue;  // reports to a dead collector are lost
    collectors_[c]->store().write_one(key, value, n);
  }
}

QueryResult SpreadCluster::query(std::span<const std::byte> key,
                                 ReturnPolicy policy) {
  ++stats_.queries;

  // Gather the N candidate slots from live collectors.
  struct Candidate {
    std::vector<std::byte> value;
    std::uint32_t count = 0;
  };
  std::vector<Candidate> candidates;
  std::vector<std::uint32_t> contacted;

  QueryResult result;
  const std::uint32_t want =
      crafter_.hashes().checksum_of(key, config_.checksum_bits);
  for (std::uint32_t n = 0; n < config_.n_addresses; ++n) {
    const std::uint32_t c = collector_for_copy(key, n);
    if (failed_[c]) continue;
    if (std::find(contacted.begin(), contacted.end(), c) == contacted.end()) {
      contacted.push_back(c);
    }
    const auto& store = collectors_[c]->store();
    const SlotView slot = store.read_slot(store.slot_index(key, n));
    if (slot.checksum != want) continue;
    ++result.checksum_matches;
    bool merged = false;
    for (auto& cand : candidates) {
      if (cand.value.size() == slot.value.size() &&
          std::memcmp(cand.value.data(), slot.value.data(),
                      slot.value.size()) == 0) {
        ++cand.count;
        merged = true;
        break;
      }
    }
    if (!merged) {
      candidates.push_back(
          Candidate{{slot.value.begin(), slot.value.end()}, 1});
    }
  }
  stats_.collector_reads += contacted.size();
  result.distinct_values = static_cast<std::uint32_t>(candidates.size());
  if (candidates.empty()) return result;

  const auto commit = [&](const std::vector<std::byte>& value) {
    result.outcome = QueryOutcome::kFound;
    result.value = value;
  };
  const auto best = std::max_element(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) { return a.count < b.count; });
  const auto top_ties = std::count_if(
      candidates.begin(), candidates.end(),
      [&](const Candidate& c) { return c.count == best->count; });

  switch (policy) {
    case ReturnPolicy::kFirstMatch:
      commit(candidates.front().value);
      break;
    case ReturnPolicy::kSingleDistinct:
      if (candidates.size() == 1) commit(candidates.front().value);
      break;
    case ReturnPolicy::kPlurality:
      if (top_ties == 1) commit(best->value);
      break;
    case ReturnPolicy::kConsensusTwo:
      if (best->count >= 2 && top_ties == 1) commit(best->value);
      break;
  }
  return result;
}

}  // namespace dart::core
