// Sharded multi-threaded ingest pipeline.
//
// The paper's collector never spends CPU on ingest — the RNIC DMAs reports
// into memory. When the RNIC is simulated in software, that DMA engine *is*
// CPU work, and a single thread caps the achievable report rate. This module
// parallelizes the simulated data path the same way hardware does:
//
//   feeder 0 ──ring──▶ shard worker 0 ──▶ slots [0,    M/S)
//   feeder 1 ──ring──▶ shard worker 1 ──▶ slots [M/S, 2M/S)      (× S shards)
//     ⋮     ╲─ring──▶    ⋮
//
// - N FEEDER threads play the switch fleet: each owns a set of simulated
//   switches (ReporterEndpoints with per-switch PSN counters), a private
//   Xoshiro256 stream (Xoshiro256::stream — decorrelated but reproducible
//   from one master seed), and an optional clone() of a LossModel, and
//   crafts byte-exact RoCEv2 report frames.
// - S SHARD WORKERS play the RNIC's DMA engines: worker s executes only
//   frames whose target slot lies in shard s's contiguous slot range
//   (store.hpp shard_of_slot). Keying frames to workers by slot-address
//   range makes every slot byte single-writer, so concurrent
//   SimulatedRnic::process_frame calls never race on store memory.
// - Each (feeder, shard) pair is connected by a wait-free SPSC ring whose
//   items are fixed-size inline frame buffers — no cross-thread allocation
//   on the hot path.
//
// The pipeline ingests into a RotatingCollector, so live epoch flips are
// part of the design: feeders refresh their directory row every
// `directory_refresh` reports through the rotation seqlock, which guarantees
// they never observe a torn {region, epoch} pair mid-flip.
//
// Read-your-ingest discipline: query() is safe only when no worker is
// executing (before start() or after finish()); during ingest, slot memory
// is being DMAed into and reads would race. This mirrors the paper's
// deployment, where queries hit a sealed epoch or tolerate live churn.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_counter.hpp"
#include "common/result.hpp"
#include "common/spsc_ring.hpp"
#include "core/collector.hpp"
#include "core/config.hpp"
#include "core/epoch_rotation.hpp"
#include "core/query.hpp"
#include "core/report_crafter.hpp"
#include "net/netsim.hpp"
#include "obs/metric.hpp"

namespace dart::core {

// Largest report frame the inline ring buffers can carry. Eth+IP+UDP+BTH+
// RETH+iCRC is 74 bytes, so this supports slot payloads up to 182 bytes —
// far beyond the paper's 24-byte INT reports.
inline constexpr std::size_t kMaxFrameBytes = 256;

struct IngestPipelineConfig {
  DartConfig dart;
  std::uint32_t n_feeders = 2;
  std::uint32_t n_shards = 2;
  std::uint32_t switches_per_feeder = 4;
  std::size_t ring_capacity = 1024;
  std::uint64_t reports_per_feeder = 10'000;
  // Distinct keys each feeder cycles through; 0 = every report a fresh key.
  std::uint64_t unique_keys_per_feeder = 0;
  std::uint64_t seed = 1;
  bool validate_icrc = true;
  // §7 CAS-insert wire mode: copy 0 is a WRITE, copy 1 a CAS-if-empty.
  // Requires n_addresses == 2 and slot_bytes() == 8 so the 64-bit CAS word
  // covers the whole slot.
  bool second_copy_cas = false;
  // Feeders re-read the collector's directory row (through the rotation
  // seqlock) every this-many reports.
  std::uint32_t directory_refresh = 64;
  // Frames moved per ring operation: feeders stage up to this many frames
  // per shard before publishing them with one try_push_n, and shard workers
  // drain up to this many per try_pop_n and hand them to the RNIC as one
  // process_frames batch. 1 degenerates to the unbatched per-frame path.
  std::size_t batch_size = 32;
  // One in every this-many crafted frames carries a TSC stamp that the shard
  // worker turns into a craft→ingest latency sample (only when a metrics
  // registry is bound via bind_metrics; otherwise no frame is ever stamped).
  std::uint32_t latency_sample_every = 64;
  // Optional report-loss process; each feeder works on its own clone().
  const net::LossModel* loss_model = nullptr;

  [[nodiscard]] bool valid() const noexcept {
    const bool cas_ok = !second_copy_cas ||
                        (dart.n_addresses == 2 && dart.slot_bytes() == 8);
    return dart.valid() && n_feeders >= 1 && n_shards >= 1 &&
           switches_per_feeder >= 1 && ring_capacity >= 2 &&
           directory_refresh >= 1 && batch_size >= 1 &&
           latency_sample_every >= 1 && cas_ok &&
           74 + dart.slot_bytes() <= kMaxFrameBytes;
  }
};

struct IngestPipelineStats {
  double seconds = 0.0;
  std::uint64_t reports_generated = 0;
  std::uint64_t frames_crafted = 0;
  std::uint64_t frames_dropped = 0;   // feeder-side loss-model drops
  std::uint64_t frames_applied = 0;   // RNIC returned a completion
  std::uint64_t frames_rejected = 0;  // RNIC rejected (counters say why)
  std::uint64_t ring_full_spins = 0;  // backpressure events at full rings
  std::vector<std::uint64_t> per_shard_applied;

  [[nodiscard]] double mreports_per_sec() const noexcept {
    return seconds > 0.0
               ? static_cast<double>(reports_generated) / seconds / 1e6
               : 0.0;
  }
};

class IngestPipeline {
 public:
  explicit IngestPipeline(const IngestPipelineConfig& config);
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  // Launches feeders and shard workers. Call finish() to join.
  void start();

  // Joins all threads and returns aggregated statistics.
  IngestPipelineStats finish();

  // start() + finish().
  IngestPipelineStats run();

  // Live epoch flip — safe while feeders are running (rotation seqlock).
  void rotate() { collector_.flip(); }
  [[nodiscard]] Result<std::uint64_t> seal_previous(const std::string& path) {
    return collector_.seal_previous(path);
  }

  // Query the active region. Only call while the pipeline is quiescent
  // (before start() / after finish()) — see the header comment.
  [[nodiscard]] QueryResult query(
      std::span<const std::byte> key,
      ReturnPolicy policy = ReturnPolicy::kPlurality) const {
    return collector_.query(key, policy);
  }

  [[nodiscard]] RotatingCollector& collector() noexcept { return collector_; }
  [[nodiscard]] const RotatingCollector& collector() const noexcept {
    return collector_;
  }
  [[nodiscard]] const IngestPipelineConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const ReportCrafter& crafter() const noexcept {
    return crafter_;
  }

  // Registers the pipeline's live counters under `<prefix>_ingest_*`
  // (aggregates plus per-shard applied/rejected) and creates the sampled
  // craft→ingest latency histogram `<prefix>_ingest_craft_to_ingest_ns`.
  // Call before start(); the registry must outlive the pipeline. Tallies are
  // RelaxedCounter, so snapshotting mid-run is race-free and the pull-based
  // adapters add no hot-path cost beyond the per-thread relaxed increments
  // the tallies already pay.
  void bind_metrics(obs::MetricRegistry& registry, const std::string& prefix);

  // Deterministic workload: the key and value of report k from `feeder` are
  // pure functions of (feeder, k), so tests can predict exactly what any
  // query must return after a run.
  [[nodiscard]] static std::array<std::byte, 8> make_key(
      std::uint32_t feeder, std::uint64_t k) noexcept;
  static void make_value(std::span<const std::byte> key,
                         std::uint32_t value_bytes,
                         std::vector<std::byte>& out);

 private:
  // Fixed-size ring item: length-prefixed inline frame bytes. Copying one is
  // a short memcpy; no allocator crosses the feeder→worker boundary.
  // craft_tsc != 0 marks a latency-sampled frame: the feeder stamps rdtsc()
  // at craft time and the shard worker records the delta after ingest.
  struct FrameSlot {
    std::uint16_t len = 0;
    std::uint64_t craft_tsc = 0;
    std::array<std::byte, kMaxFrameBytes> bytes;
  };
  using Ring = SpscRing<FrameSlot>;

  // Per-thread tallies, cache-line separated so threads never share a line.
  // RelaxedCounter cells: each is written by exactly one thread but may be
  // read live by a metrics snapshot on another.
  struct alignas(64) FeederTally {
    RelaxedCounter reports;
    RelaxedCounter crafted;
    RelaxedCounter dropped;
    RelaxedCounter full_spins;
  };
  struct alignas(64) WorkerTally {
    RelaxedCounter applied;
    RelaxedCounter rejected;
  };

  [[nodiscard]] Ring& ring(std::uint32_t feeder, std::uint32_t shard) noexcept {
    return *rings_[static_cast<std::size_t>(feeder) * config_.n_shards + shard];
  }

  void feeder_main(std::uint32_t feeder_id);
  void worker_main(std::uint32_t shard_id);

  IngestPipelineConfig config_;
  RotatingCollector collector_;
  ReportCrafter crafter_;
  std::vector<std::unique_ptr<Ring>> rings_;  // [feeder × shard]
  std::vector<FeederTally> feeder_tallies_;
  std::vector<WorkerTally> worker_tallies_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint32_t> feeders_done_{0};
  std::chrono::steady_clock::time_point started_at_{};
  bool running_ = false;
  obs::Histogram* craft_ingest_hist_ = nullptr;  // owned by the bound registry
};

}  // namespace dart::core
